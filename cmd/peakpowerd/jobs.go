package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/internal/jobstore"
)

// Submission failures the handlers map to backpressure statuses (429 with
// Retry-After, 503 while draining) rather than hard errors.
var (
	errQueueFull = errors.New("job queue full")
	errDraining  = errors.New("server is draining")
)

// runFunc executes one job's analysis and returns the terminal payload
// (the Report's canonical JSON). Tests substitute it to exercise queueing,
// backpressure, panic isolation, and drain without real explorations.
type runFunc func(ctx context.Context, j *jobstore.Job) (json.RawMessage, error)

// jobRunner owns the async job lifecycle: a bounded queue feeding a fixed
// worker pool, an in-memory view of every job this process life has seen,
// and (optionally) a durable store that lets queued and mid-run jobs
// survive a crash. All map/queue state is guarded by mu; the queue channel
// is only sent to under mu after a depth check, so sends never block.
type jobRunner struct {
	store *jobstore.Store // nil = ephemeral: jobs die with the process
	run   runFunc
	// notify, when set, observes every job snapshot that reaches a
	// terminal state (after it is persisted) — the webhook hook. It must
	// not block: deliveries happen on the calling worker goroutine.
	notify func(j *jobstore.Job)

	queue         chan string
	dequeueCtx    context.Context // canceled first on drain: stop taking new jobs
	dequeueCancel context.CancelFunc
	runCtx        context.Context // canceled at the drain deadline: abandon in-flight jobs
	runCancel     context.CancelFunc
	wg            sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*jobstore.Job
	inFlight int
	draining bool
}

func newJobRunner(store *jobstore.Store, workers, queueCap int, run runFunc) *jobRunner {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	r := &jobRunner{
		store: store,
		run:   run,
		queue: make(chan string, queueCap),
		jobs:  make(map[string]*jobstore.Job),
	}
	r.dequeueCtx, r.dequeueCancel = context.WithCancel(context.Background())
	r.runCtx, r.runCancel = context.WithCancel(context.Background())
	r.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go r.worker()
	}
	return r
}

// recover re-enqueues every non-terminal job the previous process life
// left behind (the store has already flipped mid-run jobs back to queued).
// Their exploration checkpoints, if any, make the re-runs incremental.
// Damaged records are logged, never silently dropped.
func (r *jobRunner) recover() error {
	if r.store == nil {
		return nil
	}
	if _, damaged, err := r.store.List(); err == nil && len(damaged) > 0 {
		log.Printf("peakpowerd: %d damaged job record(s) in %s: %v", len(damaged), r.store.Dir(), damaged)
	}
	jobs, err := r.store.Recover()
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, j := range jobs {
		if len(r.queue) == cap(r.queue) {
			log.Printf("peakpowerd: queue full during recovery, leaving job %s on disk", j.ID)
			continue
		}
		r.jobs[j.ID] = j
		r.queue <- j.ID
	}
	if n := len(jobs); n > 0 {
		log.Printf("peakpowerd: recovered %d interrupted job(s)", n)
	}
	return nil
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("peakpowerd: crypto/rand: %v", err))
	}
	return "j" + hex.EncodeToString(b[:])
}

// submit registers a validated request and enqueues it, persisting the
// queued record first so an accepted job survives an immediate crash. A
// full queue or a draining server is reported without blocking — the
// caller answers within the backpressure deadline, not after it.
func (r *jobRunner) submit(raw json.RawMessage) (*jobstore.Job, error) {
	j := &jobstore.Job{
		ID:          newJobID(),
		State:       jobstore.StateQueued,
		Request:     raw,
		SubmittedAt: time.Now().UTC(),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.draining {
		return nil, errDraining
	}
	if len(r.queue) == cap(r.queue) {
		return nil, errQueueFull
	}
	if r.store != nil {
		if err := r.store.Put(j); err != nil {
			return nil, err
		}
	}
	r.jobs[j.ID] = j
	r.queue <- j.ID
	mJobsAccepted.Add(1)
	snap := *j
	return &snap, nil
}

// get returns a snapshot of a job's current state — from memory for this
// life's jobs, falling back to the store for jobs submitted to a previous
// life. A missing job returns (nil, nil).
func (r *jobRunner) get(id string) (*jobstore.Job, error) {
	r.mu.Lock()
	j := r.jobs[id]
	var snap *jobstore.Job
	if j != nil {
		c := *j
		snap = &c
	}
	r.mu.Unlock()
	if snap != nil {
		return snap, nil
	}
	if r.store == nil || !jobstore.ValidID(id) {
		return nil, nil
	}
	j, err := r.store.Get(id)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	return j, nil
}

// stats is the runner's contribution to the readiness probe.
type runnerStats struct {
	QueueDepth    int  `json:"queue_depth"`
	QueueCapacity int  `json:"queue_capacity"`
	InFlight      int  `json:"in_flight"`
	Draining      bool `json:"draining"`
	Durable       bool `json:"durable"`
}

func (r *jobRunner) stats() runnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return runnerStats{
		QueueDepth:    len(r.queue),
		QueueCapacity: cap(r.queue),
		InFlight:      r.inFlight,
		Draining:      r.draining,
		Durable:       r.store != nil,
	}
}

func (r *jobRunner) worker() {
	defer r.wg.Done()
	for {
		// Checked alone first: a two-way select with both cases ready picks
		// randomly, and a draining worker must never prefer new work.
		select {
		case <-r.dequeueCtx.Done():
			return
		default:
		}
		select {
		case <-r.dequeueCtx.Done():
			return
		case id := <-r.queue:
			r.runJob(id)
		}
	}
}

func (r *jobRunner) runJob(id string) {
	select {
	case <-r.runCtx.Done():
		// Dequeued after the drain deadline: leave the job queued (in
		// memory and on disk) for the next process life.
		return
	default:
	}
	r.mu.Lock()
	j := r.jobs[id]
	if j == nil || j.State != jobstore.StateQueued {
		r.mu.Unlock()
		return
	}
	j.State = jobstore.StateRunning
	j.Attempts++
	r.inFlight++
	snap := *j
	r.mu.Unlock()
	r.persist(&snap)

	result, err := r.safeRun(r.runCtx, &snap)

	r.mu.Lock()
	r.inFlight--
	switch {
	case err == nil:
		j.State = jobstore.StateDone
		j.Result = result
		j.FinishedAt = time.Now().UTC()
		mJobsCompleted.Add(1)
	case errors.Is(err, context.Canceled) && r.draining:
		// Abandoned at the drain deadline, not failed: the queued record
		// (plus its exploration checkpoint) resumes it next life.
		j.State = jobstore.StateQueued
	default:
		j.State = jobstore.StateFailed
		j.Error = err.Error()
		j.FinishedAt = time.Now().UTC()
		mJobsFailed.Add(1)
	}
	snap = *j
	r.mu.Unlock()
	r.persist(&snap)
	if r.notify != nil && snap.State.Terminal() {
		r.notify(&snap)
	}
}

// safeRun confines a panicking analysis to its own job: the worker
// survives, the job fails with a diagnosable error.
func (r *jobRunner) safeRun(ctx context.Context, j *jobstore.Job) (result json.RawMessage, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("internal: analysis panicked: %v", p)
		}
	}()
	return r.run(ctx, j)
}

// persist writes a job snapshot through to the store, best effort: a full
// disk degrades durability, it does not wedge the worker pool.
func (r *jobRunner) persist(j *jobstore.Job) {
	if r.store == nil {
		return
	}
	if err := r.store.Put(j); err != nil {
		log.Printf("peakpowerd: persisting job %s: %v", j.ID, err)
	}
}

// drain stops intake (submissions and dequeues), waits up to timeout for
// in-flight jobs, then cancels the stragglers — which persist themselves
// back as queued, so nothing accepted is lost. Always returns with the
// worker pool stopped.
func (r *jobRunner) drain(timeout time.Duration) {
	r.mu.Lock()
	r.draining = true
	r.mu.Unlock()
	r.dequeueCancel()
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		r.runCancel()
		<-done
	}
	r.runCancel()
}
