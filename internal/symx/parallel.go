// Work-stealing parallel symbolic exploration.
//
// ExploreParallel runs Algorithm 1 over a bounded pool of worker
// goroutines, each owning a private System and sink. Work is partitioned
// at fork points: when a worker forks it continues depth-first down the
// not-taken direction (exactly like the sequential engine) and either
// keeps the taken direction on a worker-local LIFO stack (cheap
// journal-relative snapshot, per-worker free pool) or — when the shared
// queue is starving — publishes it as a portable task any worker can
// steal (self-contained ulp430.PortableState, O(memory) capture). A
// worker whose local stack still holds old forks donates its oldest one
// when it notices idle peers: the oldest fork roots the largest
// unexplored subtree, the classic steal-granularity rule.
//
// Determinism. The sealed Report must be bit-identical to the sequential
// walk at any worker count, which two mechanisms guarantee:
//
//  1. Every fork key (pre-branch state hash x accumulated forces) is
//     CLAIMED in a sharded concurrent table before either direction is
//     explored. Exactly one encounter — whichever raced first — wins and
//     explores both children; every other encounter records the key and
//     stops. No subtree is ever explored twice, so total simulated
//     cycles and node counts equal the sequential run's exactly (which
//     is also what lets the cycle/node budgets be enforced with plain
//     global atomics and sequential error semantics).
//
//  2. Which encounter *canonically* owns the subtree is decided after
//     the workers join, by re-walking the fork graph in the sequential
//     engine's exact order (not-taken first, LIFO resumption of taken
//     directions) with a fresh seen-map: the canonically-first encounter
//     of each key becomes the KindBranch node — grafting the claimant's
//     children if a later encounter had won the race — and the rest
//     become KindMerge nodes pointing at it. Because gate simulation is
//     deterministic, a subtree's segments depend only on the (state,
//     forces) pair at its root, so grafting is exact: the assembled
//     tree, including creation-order node IDs, Paths, and Cycles, is
//     bit-identical to what Explore would have built.
//
// The same canonical order also serializes the sink: observations are
// ordered by (final node ID, within-task stream index), which is exactly
// the sequential observation order, so an order-sensitive reduction
// (peak records with first-wins tie-breaking, top-k insertion) replays
// per-task candidates in canonical order and reproduces the sequential
// result bit for bit. See power.MergeParallel.
package symx

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ulp430"
)

// WorkerSink extends Sink with the task protocol of the parallel engine.
// A worker's sink observes many tasks, one at a time; positions handed to
// the Sink methods stay absolute path positions (cycles since the
// exploration root), so BeginTask tells the sink where on the path the
// task starts and hands it the opaque seed captured from the spawning
// sink by SpawnSeed (the per-path context — in-flight instruction,
// interrupt depth — that a mid-path observer needs).
type WorkerSink interface {
	Sink
	// BeginTask resets per-path state for a new task rooted at absolute
	// path position basePos, identified by task for candidate tagging.
	// It implies NewSegment.
	BeginTask(task, basePos int, seed interface{})
	// EndTask marks the current task complete (flushing any pending
	// per-task reduction candidates).
	EndTask()
	// NewSegment marks a tree-segment boundary in the observation
	// stream. Fork boundaries are invisible to a Sink (the engine does
	// not rewind when it continues into the not-taken child), but the
	// deterministic reduction is only allowed to pre-filter candidates
	// within a single segment — across segments, canonical order can
	// differ from this task's exploration order.
	NewSegment()
	// SpawnSeed captures the path context just before absolute position
	// pos, to seed a task that will resume there.
	SpawnSeed(pos int) interface{}
}

// ParallelOptions configures ExploreParallel.
type ParallelOptions struct {
	Options
	// Workers is the worker-goroutine count (values < 1 mean 1).
	Workers int
	// NewWorker builds one worker's private System (freshly created in
	// SymbolicInputs mode on the shared netlist) and sink. It is called
	// once per worker, possibly concurrently.
	NewWorker func(worker int) (*ulp430.System, WorkerSink, error)
	// Checkpoint, when non-nil, journals the exploration so a killed run
	// resumes from its last synced record instead of restarting (see
	// checkpoint.go). Requires merging (DisableMerge unset) and sinks
	// implementing TaskMarshaler. In checkpoint mode every fork is
	// published as a durable task — the worker-local fork stacks are
	// bypassed so the journal alone reconstructs the exploration
	// frontier.
	Checkpoint *Checkpointer
}

// ParallelResult is the assembled exploration plus the observation-order
// index the sink reduction needs.
type ParallelResult struct {
	// Tree is the canonical execution tree, bit-identical to the
	// sequential Explore result.
	Tree *Tree
	// order maps a task ID to its segments' (streamStart, final node ID)
	// pairs, sorted by streamStart.
	order map[int]taskOrder
	// Replayed maps task ID to the serialized sink observations of tasks
	// restored from a checkpoint journal instead of executed this run
	// (nil unless a resume replayed work). The sink's package folds these
	// into its canonical merge (e.g. power.MergeParallelReplay).
	Replayed map[int][]byte
}

type taskOrder struct {
	starts []int
	ids    []int
}

// NodeID resolves a task-local observation stream index to the final
// (canonical) ID of the tree node whose segment contains it. Canonical
// observation order — the order the sequential engine would have visited
// observations in — is ascending (NodeID, stream index).
func (r *ParallelResult) NodeID(task, stream int) int {
	o, ok := r.order[task]
	if !ok {
		return -1
	}
	// Rightmost segment starting at or before stream; zero-length
	// segments are not indexed, so the match is the containing one.
	i := sort.SearchInts(o.starts, stream+1) - 1
	if i < 0 {
		return -1
	}
	return o.ids[i]
}

// snapPool is a free list of fork snapshots with a double-free guard:
// returning a snapshot that is already pooled is the classic symptom of a
// fork bookkeeping bug (two owners of one pending fork), and silently
// recycling it would corrupt an unrelated branch's restore state. The
// pool is small (bounded by fork-stack depth), so the linear scan is
// noise next to the snapshot copy itself.
type snapPool []*ulp430.SysSnapshot

func (p *snapPool) take() *ulp430.SysSnapshot {
	if n := len(*p); n > 0 {
		sn := (*p)[n-1]
		*p = (*p)[:n-1]
		sn.MarkTaken()
		return sn
	}
	return &ulp430.SysSnapshot{}
}

func (p *snapPool) put(sn *ulp430.SysSnapshot) {
	for _, q := range *p {
		if q == sn {
			panic("symx: snapshot double-freed to pool")
		}
	}
	// The pooled mark turns any lingering alias into a loud panic on its
	// next Restore/CapturePortableAt instead of a silent state corruption
	// (the pool may hand the snapshot's buffers to an unrelated fork).
	sn.MarkPooled()
	*p = append(*p, sn)
}

// claimTable is the sharded seen-state table. The first encounter of a
// key claims it and explores its children; later encounters merge.
type claimTable struct {
	shards [64]struct {
		mu sync.Mutex
		m  map[ForkKey]*Node
		_  [40]byte // keep shards off one another's cache line
	}
}

func newClaimTable() *claimTable {
	t := &claimTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[ForkKey]*Node)
	}
	return t
}

// claim records n as the owner of key if the key is unclaimed, returning
// whether n won. The claimant pointer is only read again during assembly
// (after all workers join), so the map value never needs updating.
func (t *claimTable) claim(key ForkKey, n *Node) bool {
	s := &t.shards[key.Lo&63]
	s.mu.Lock()
	_, taken := s.m[key]
	if !taken {
		s.m[key] = n
	}
	s.mu.Unlock()
	return !taken
}

func (t *claimTable) owner(key ForkKey) *Node {
	s := &t.shards[key.Lo&63]
	s.mu.Lock()
	n := s.m[key]
	s.mu.Unlock()
	return n
}

// ptask is one unit of stealable work: explore the subtree rooted at the
// still-unexplored taken direction of a fork (or the whole tree, for the
// root task).
type ptask struct {
	id      int
	state   *ulp430.PortableState // nil for the root task (Reset instead)
	forces  forkForces
	branch  *Node // fork node whose Taken child this task creates
	basePos int
	seed    interface{}
}

// sched is the shared scheduler: a queue of published tasks plus the
// bookkeeping that detects termination (no queued work and no task being
// executed) and propagates the first error.
type sched struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*ptask
	active  int
	nextID  int
	done    bool
	err     error
	stopped atomic.Bool
	queued  atomic.Int64 // len(queue) mirror, read lock-free by workers
	waiting atomic.Int64 // workers blocked in take()

	cycles atomic.Int64 // total simulated cycles, all workers
	nodes  atomic.Int64 // total tree nodes created
	paths  atomic.Int64 // total terminals reached

	progMu       sync.Mutex
	nextProgress atomic.Int64
}

// reserveID allocates a task ID. IDs are reserved before publication so a
// checkpoint journal can record the task under its final identity before
// any worker can steal it.
func (s *sched) reserveID() int {
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.mu.Unlock()
	return id
}

func (s *sched) publish(t *ptask) {
	s.mu.Lock()
	s.queue = append(s.queue, t)
	s.queued.Store(int64(len(s.queue)))
	s.mu.Unlock()
	s.cond.Signal()
}

// take blocks until a task is available, all work is finished, or an
// error stops the run. Stolen tasks come from the queue front: the
// longest-queued fork roots the largest remaining subtree.
func (s *sched) take() *ptask {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.done || s.err != nil {
			return nil
		}
		if len(s.queue) > 0 {
			t := s.queue[0]
			s.queue = s.queue[1:]
			s.queued.Store(int64(len(s.queue)))
			s.active++
			return t
		}
		if s.active == 0 {
			s.done = true
			s.cond.Broadcast()
			return nil
		}
		s.waiting.Add(1)
		s.cond.Wait()
		s.waiting.Add(-1)
	}
}

func (s *sched) finish() {
	s.mu.Lock()
	s.active--
	if s.active == 0 && len(s.queue) == 0 {
		s.done = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

func (s *sched) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.done = true
	s.stopped.Store(true)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// hungry reports whether publishing (rather than keeping a fork local)
// would feed an underfed queue: fewer queued tasks than workers, or
// workers already blocked waiting.
func (s *sched) hungry(workers int) bool {
	return s.queued.Load() < int64(workers) || s.waiting.Load() > 0
}

// worker drives one goroutine: steal a task, explore its subtree
// depth-first with the exact sequential mechanics (shared atomics for
// budgets/progress, claim table instead of a private seen-map), repeat.
type worker struct {
	id    int
	sys   *ulp430.System
	sink  WorkerSink
	opts  ParallelOptions
	sc    *sched
	seen  *claimTable
	nodes *[]*Node // worker-local node list, merged for assembly

	roll  *ulp430.SysSnapshot
	pool  snapPool
	local []pendingFork // worker-local LIFO of unpublished forks

	task       *ptask
	stream     int // observations made by the current task
	nextCancel int
	ownCycles  int // cycles simulated by this worker (cancel pacing)

	taskCycles int     // cycles simulated by the current task (checkpointing)
	taskNodes  []*Node // current task's nodes in creation order
	taskKids   []int   // IDs of tasks the current task published, in branch order
}

func (w *worker) newNode() *Node {
	n := &Node{task: w.task.id, streamStart: w.stream, seq: len(w.taskNodes)}
	*w.nodes = append(*w.nodes, n)
	w.taskNodes = append(w.taskNodes, n)
	w.sc.nodes.Add(1)
	return n
}

// publishTask reserves an identity for the task rooted at st, journals it
// if checkpointing, and hands it to the scheduler — in that order, so the
// journal's pub record always precedes any record a stealer could write.
func (w *worker) publishTask(st *ulp430.PortableState, sinkPos int, branch *Node, forces forkForces) error {
	t := &ptask{
		id:      w.sc.reserveID(),
		state:   st,
		forces:  forces,
		branch:  branch,
		basePos: sinkPos,
		seed:    w.sink.SpawnSeed(sinkPos),
	}
	if ck := w.opts.Checkpoint; ck != nil {
		if err := ck.writePub(t, branch.task, branch.seq); err != nil {
			return err
		}
		w.taskKids = append(w.taskKids, t.id)
	}
	w.sc.publish(t)
	return nil
}

// publishFork captures pf as a portable task. pf's snapshot must still be
// LIFO-reachable on w.sys (it is: published forks come from the current
// journal position or from the bottom of the local stack).
func (w *worker) publishFork(pf pendingFork) error {
	st := &ulp430.PortableState{}
	w.sys.CapturePortableAt(pf.snap, st)
	w.pool.put(pf.snap)
	return w.publishTask(st, pf.sinkPos, pf.branch, pf.forces)
}

// runTask explores one task's whole subtree (minus published forks). It
// mirrors Explore's loop statement for statement; divergences are the
// claim table, the shared budgets, and the publish/donate policy.
func (w *worker) runTask(t *ptask) error {
	w.task = t
	w.stream = 0
	w.taskCycles = 0
	w.taskNodes = w.taskNodes[:0]
	w.taskKids = w.taskKids[:0]
	if t.state != nil {
		w.sys.RestorePortable(t.state)
	} else {
		w.sys.Reset()
	}
	w.sink.BeginTask(t.id, t.basePos, t.seed)

	var cur *Node
	if t.branch != nil {
		cur = w.newNode()
		t.branch.Taken = cur
	} else {
		cur = w.newNode() // root segment
	}
	segStart := t.basePos
	pending := t.forces
	opts := w.opts

	sys, sink, sc := w.sys, w.sink, w.sc

	finishSegment := func(kind NodeKind) {
		cur.Kind = kind
		cur.Len = sink.Pos() - segStart
		cur.Data = sink.Segment(segStart)
	}
	applyForces := func() {
		if pending.brEn {
			sys.ForceBranch(pending.brVal)
		}
		if pending.irqEn {
			sys.ForceIRQ(pending.irqVal)
		}
	}
	pop := func() bool {
		if len(w.local) == 0 {
			return false
		}
		pf := w.local[len(w.local)-1]
		w.local = w.local[:len(w.local)-1]
		sys.Restore(pf.snap)
		w.pool.put(pf.snap)
		sink.Rewind(pf.sinkPos)
		sink.NewSegment()
		child := w.newNode()
		pf.branch.Taken = child
		cur = child
		segStart = pf.sinkPos
		pending = pf.forces
		return true
	}

outer:
	for {
		if sc.stopped.Load() {
			// Another worker failed; it holds the error. The current task is
			// abandoned mid-segment — the sentinel keeps it out of the
			// checkpoint journal (it must not be recorded as done).
			return errWorkerStopped
		}
		if err := sys.Err(); err != nil {
			return err
		}
		if opts.Ctx != nil && w.ownCycles >= w.nextCancel {
			w.nextCancel = w.ownCycles + cancelCheckEvery
			if err := opts.Ctx.Err(); err != nil {
				return fmt.Errorf("symx: exploration aborted after %d cycles (%d paths): %w",
					sc.cycles.Load(), sc.paths.Load(), err)
			}
		}
		if opts.Progress != nil {
			if c := sc.cycles.Load(); c >= sc.nextProgress.Load() {
				if sc.nextProgress.CompareAndSwap(sc.nextProgress.Load(), c+int64(opts.ProgressEvery)) {
					sc.progMu.Lock()
					opts.Progress(Progress{Cycles: int(c), Nodes: int(sc.nodes.Load()), Paths: int(sc.paths.Load())})
					sc.progMu.Unlock()
				}
			}
		}
		if sys.Halted() {
			finishSegment(KindEnd)
			sc.paths.Add(1)
			if !pop() {
				return nil
			}
			continue
		}
		// Budgets mirror the sequential engine exactly: claim-first work
		// partitioning makes the parallel totals equal the sequential
		// ones, and budgets are exact (fail iff the total exceeds the
		// cap), so the shared atomic counters reach the same
		// success-or-failure decision at any worker count.
		if sc.cycles.Load() > int64(opts.MaxCycles) {
			return cycleBudgetErr(opts.MaxCycles)
		}
		if sc.nodes.Load() > int64(opts.MaxNodes) {
			return nodeBudgetErr(opts.MaxNodes)
		}

		sys.SnapshotInto(w.roll)
		rollPos := sink.Pos()

		for {
			applyForces()
			sys.Step()
			sys.ClearForce()
			if sc.cycles.Add(1) > int64(opts.MaxCycles) {
				return cycleBudgetErr(opts.MaxCycles)
			}
			w.ownCycles++
			w.taskCycles++

			isIRQ := false
			if sys.JumpCondUnknown() {
			} else if sys.IRQCondUnknown() {
				isIRQ = true
			} else {
				break // fully resolved
			}

			sys.Restore(w.roll)
			pc, _ := sys.PC()
			key := stateKey(sys, pending)
			cur.key = key
			cur.BranchPC = pc
			cur.IRQ = isIRQ
			if !opts.DisableMerge && !w.seen.claim(key, cur) {
				// Someone owns this subtree. Provisionally a merge;
				// assembly decides the canonical winner.
				finishSegment(KindMerge)
				sc.paths.Add(1)
				if !pop() {
					return nil
				}
				continue outer
			}
			finishSegment(KindBranch)
			branch := cur

			pf := pendingFork{
				sinkPos: rollPos, branch: branch,
				forces: pending.with(isIRQ, true),
			}
			if w.opts.Checkpoint != nil || sc.hungry(opts.Workers) {
				// The taken direction becomes stealable work. The system
				// sits exactly at the rolled-back fork state, so the
				// capture is a plain memory copy (empty journal suffix).
				// Checkpoint mode always takes this path: only published
				// tasks reach the journal, so a worker-local fork would
				// be invisible to a resume.
				st := &ulp430.PortableState{}
				sys.CapturePortableAt(w.roll, st)
				if err := w.publishTask(st, pf.sinkPos, pf.branch, pf.forces); err != nil {
					return err
				}
			} else {
				// The system sits at the rolled-back fork state, so the
				// capture is a copy-on-write delta against the current
				// anchor — O(words changed), not O(nets).
				pf.snap = w.pool.take()
				sys.CaptureFork(pf.snap)
				w.local = append(w.local, pf)
			}
			sink.NewSegment()
			child := w.newNode()
			branch.NotTaken = child
			cur = child
			segStart = rollPos
			pending = pending.with(isIRQ, false)
		}

		sink.OnCycle(sys)
		w.stream++
		pending = forkForces{}

		if _, known := sys.Sim.PortUint("pc"); !known {
			return fmt.Errorf("symx: PC became X at cycle %d — input-dependent branch target (computed jump/call on input data) is not supported", sys.Sim.Cycle())
		}

		// Donate the oldest local fork — the biggest pending subtree —
		// when peers are starving.
		if len(w.local) > 0 && sc.hungry(opts.Workers) {
			pf := w.local[0]
			w.local = w.local[1:]
			if err := w.publishFork(pf); err != nil {
				return err
			}
		}
	}
}

// taskDone journals the finished task: the sink's per-task observations
// plus the segment chain and cycle count runTask accumulated.
func (w *worker) taskDone(t *ptask) error {
	blob, err := w.sink.(TaskMarshaler).MarshalTask()
	if err != nil {
		return fmt.Errorf("symx: checkpoint sink marshal: %w", err)
	}
	return w.opts.Checkpoint.writeDone(t.id, w.taskCycles, w.taskNodes, w.taskKids, blob)
}

// errWorkerStopped marks a task abandoned because a peer already failed
// the run: not an error of its own, but not a completed task either.
var errWorkerStopped = errors.New("symx: internal: worker stopped")

func (w *worker) run() {
	for {
		t := w.sc.take()
		if t == nil {
			return
		}
		err := w.runTask(t)
		if err == nil && w.opts.Checkpoint != nil {
			err = w.taskDone(t)
		}
		w.sink.EndTask()
		if err == errWorkerStopped {
			w.sc.finish()
			return
		}
		if err != nil {
			w.sc.fail(err)
			return
		}
		w.sc.finish()
	}
}

// ExploreParallel runs Algorithm 1 across opts.Workers goroutines and
// assembles a tree bit-identical to the sequential Explore result (same
// node IDs, kinds, merge targets, payloads, Paths, and Cycles — asserted
// continuously by the determinism suite and FuzzExplore). Budget, bus,
// and cancellation errors carry the sequential error text and wrap the
// same sentinels.
func ExploreParallel(opts ParallelOptions) (*ParallelResult, error) {
	opts.Options = opts.Options.withDefaults()
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	ck := opts.Checkpoint
	if ck != nil && opts.DisableMerge {
		return nil, fmt.Errorf("symx: checkpointing requires state merging (DisableMerge must be unset)")
	}

	sc := &sched{}
	sc.cond = sync.NewCond(&sc.mu)
	sc.nextProgress.Store(int64(opts.ProgressEvery))
	seen := newClaimTable()

	var rs *resumeState
	if ck != nil {
		var err error
		rs, err = ck.open()
		if err != nil {
			return nil, err
		}
		defer ck.close()
		// Seed the run with the journal's live history: counters resume at
		// the replayed totals (keeping the shared budgets exact), and the
		// replayed branch nodes pre-claim their fork keys so re-executed
		// work merges into replayed subtrees instead of re-exploring them.
		sc.nextID = rs.nextID
		sc.cycles.Store(rs.cycles)
		sc.nodes.Store(int64(len(rs.nodes)))
		sc.paths.Store(rs.paths)
		for key, n := range rs.claims {
			seen.claim(key, n)
		}
	}

	if opts.Progress != nil {
		defer func() {
			opts.Progress(Progress{Cycles: int(sc.cycles.Load()), Nodes: int(sc.nodes.Load()), Paths: int(sc.paths.Load())})
		}()
	}

	if rs != nil && rs.rootPub {
		// Resumed run: the journal owns every live task identity. Pending
		// live tasks re-enter the queue under their recorded IDs.
		for _, t := range rs.pending {
			sc.publish(t)
		}
	} else {
		// The root task: whole-program exploration from reset.
		root := &ptask{id: sc.reserveID()}
		if ck != nil {
			if err := ck.writePub(root, -1, 0); err != nil {
				return nil, err
			}
		}
		sc.publish(root)
	}

	nodeLists := make([][]*Node, opts.Workers)
	var wg sync.WaitGroup
	for i := 0; i < opts.Workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sys, sink, err := opts.NewWorker(i)
			if err != nil {
				sc.fail(fmt.Errorf("symx: worker %d: %w", i, err))
				return
			}
			if ck != nil {
				if _, ok := sink.(TaskMarshaler); !ok {
					sc.fail(fmt.Errorf("symx: checkpointing requires the sink to implement TaskMarshaler (%T does not)", sink))
					return
				}
			}
			w := &worker{
				id: i, sys: sys, sink: sink, opts: opts, sc: sc, seen: seen,
				nodes: &nodeLists[i], roll: &ulp430.SysSnapshot{},
				nextCancel: cancelCheckEvery,
			}
			w.run()
		}(i)
	}
	wg.Wait()

	sc.mu.Lock()
	err := sc.err
	sc.mu.Unlock()
	if err != nil {
		return nil, err
	}

	var all []*Node
	if rs != nil {
		all = append(all, rs.nodes...)
	}
	for _, l := range nodeLists {
		all = append(all, l...)
	}
	res, err := assemble(all, seen, opts)
	if err != nil {
		return nil, err
	}
	if rs != nil && len(rs.replayed) > 0 {
		res.Replayed = rs.replayed
	}
	return res, nil
}

// assemble canonicalizes the provisional fork graph: a fresh walk in the
// sequential engine's exact order (not-taken first, LIFO resumption)
// decides branch-versus-merge per key with a fresh seen-map, reassigns
// creation-order IDs, and recomputes Paths and Cycles. Every simulated
// segment appears exactly once, so the totals equal the parallel run's
// live counters — checked, since a mismatch means the claim discipline
// was violated.
func assemble(all []*Node, seen *claimTable, opts ParallelOptions) (*ParallelResult, error) {
	if len(all) == 0 {
		return nil, fmt.Errorf("symx: internal: empty parallel exploration")
	}
	// The root is task 0's first-created node: task IDs are assigned at
	// publish time and the root task is published first.
	var root *Node
	for _, n := range all {
		if n.task == 0 {
			root = n
			break
		}
	}
	if root == nil {
		return nil, fmt.Errorf("symx: internal: root task produced no nodes")
	}

	tree := &Tree{Root: root}
	canon := make(map[ForkKey]*Node)
	var stack []*Node
	cur := root
	for {
		cur.ID = len(tree.Nodes)
		tree.Nodes = append(tree.Nodes, cur)
		tree.Cycles += cur.Len
		isFork := cur.Kind == KindBranch || cur.Kind == KindMerge
		if isFork {
			tree.Cycles++ // the rewound fork-detection step
			winner, dup := canon[cur.key]
			if dup && !opts.DisableMerge {
				cur.Kind = KindMerge
				cur.MergeTo = winner
				cur.NotTaken, cur.Taken = nil, nil
				tree.Paths++
			} else {
				if !opts.DisableMerge {
					canon[cur.key] = cur
				}
				owner := cur
				if !opts.DisableMerge {
					owner = seen.owner(cur.key)
				}
				cur.Kind = KindBranch
				cur.MergeTo = nil
				if owner != cur {
					cur.NotTaken, cur.Taken = owner.NotTaken, owner.Taken
				}
				if cur.NotTaken == nil || cur.Taken == nil {
					return nil, fmt.Errorf("symx: internal: fork key %#x:%#x has unexplored children", cur.key.Lo, cur.key.Hi)
				}
				stack = append(stack, cur)
				cur = cur.NotTaken
				continue
			}
		} else {
			tree.Paths++ // KindEnd
		}
		if len(stack) == 0 {
			break
		}
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cur = b.Taken
	}

	if len(tree.Nodes) != len(all) {
		return nil, fmt.Errorf("symx: internal: canonical walk reached %d of %d explored segments", len(tree.Nodes), len(all))
	}

	// Observation-order index: per task, (streamStart, final ID) of every
	// segment that recorded observations, sorted by stream position.
	order := make(map[int]taskOrder)
	byTask := make(map[int][]*Node)
	for _, n := range tree.Nodes {
		if n.Len > 0 {
			byTask[n.task] = append(byTask[n.task], n)
		}
	}
	for task, nodes := range byTask {
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].streamStart < nodes[j].streamStart })
		o := taskOrder{starts: make([]int, len(nodes)), ids: make([]int, len(nodes))}
		for i, n := range nodes {
			o.starts[i] = n.streamStart
			o.ids[i] = n.ID
		}
		order[task] = o
	}
	return &ParallelResult{Tree: tree, order: order}, nil
}
