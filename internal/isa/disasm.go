package isa

import (
	"fmt"
	"strings"
)

// DisasmAt decodes and formats the instruction at byte address addr in
// the image; it returns the rendered text and the instruction length in
// words (1 on failure).
func DisasmAt(img *Image, addr uint16) (string, int) {
	w, ok := img.Words[addr]
	if !ok {
		return fmt.Sprintf(".word 0x0000 ; uninitialized @%#04x", addr), 1
	}
	ins := Decode(w)
	if ins.Format == FmtIllegal {
		return fmt.Sprintf(".word %#04x", w), 1
	}
	exts := make([]uint16, 0, 2)
	for k := 0; k < ins.NumExtWords(); k++ {
		exts = append(exts, img.Words[addr+2+uint16(2*k)])
	}
	if err := ins.AttachExt(exts); err != nil {
		return fmt.Sprintf(".word %#04x", w), 1
	}
	return FormatInstr(ins, addr), ins.Len()
}

// FormatInstr renders a decoded instruction as assembler text. addr is
// the instruction's own address (used for jump targets).
func FormatInstr(ins Instr, addr uint16) string {
	switch ins.Format {
	case FmtJump:
		target := addr + 2 + uint16(2*ins.Off)
		return fmt.Sprintf("%s %#04x", strings.ToLower(ins.Op.String()), target)
	case FmtII:
		return fmt.Sprintf("%s %s", strings.ToLower(ins.Op.String()),
			formatOperand(ins.Dst, ins.As, ins.SrcExt))
	case FmtI:
		src := formatOperand(ins.Src, ins.As, ins.SrcExt)
		var dst string
		if ins.Ad == 0 {
			dst = regName(ins.Dst)
		} else if ins.Dst == SR {
			dst = fmt.Sprintf("&%#04x", ins.DstExt)
		} else {
			dst = fmt.Sprintf("%d(%s)", int16(ins.DstExt), regName(ins.Dst))
		}
		return fmt.Sprintf("%s %s, %s", strings.ToLower(ins.Op.String()), src, dst)
	}
	return ".word ?"
}

func formatOperand(reg, as uint8, ext uint16) string {
	if v, ok := ConstGen(reg, as); ok {
		return fmt.Sprintf("#%d", int16(v))
	}
	switch as {
	case AmReg:
		return regName(reg)
	case AmIndexed:
		if reg == SR {
			return fmt.Sprintf("&%#04x", ext)
		}
		return fmt.Sprintf("%d(%s)", int16(ext), regName(reg))
	case AmIndirect:
		return "@" + regName(reg)
	case AmIndirectInc:
		if reg == PC {
			return fmt.Sprintf("#%#04x", ext)
		}
		return "@" + regName(reg) + "+"
	}
	return "?"
}

func regName(r uint8) string {
	switch r {
	case 0:
		return "pc"
	case 1:
		return "sp"
	case 2:
		return "sr"
	case 3:
		return "cg"
	}
	return fmt.Sprintf("r%d", r)
}

// Mnemonic returns just the lower-case mnemonic of the instruction at
// addr, or "?" if undecodable — the label used in COI pipeline displays
// (Figure 3.6).
func Mnemonic(img *Image, addr uint16) string {
	w, ok := img.Words[addr]
	if !ok {
		return "?"
	}
	ins := Decode(w)
	if ins.Format == FmtIllegal {
		return "?"
	}
	// Recognize common emulated forms for readability.
	switch {
	case w == 0x4303:
		return "nop"
	case ins.Format == FmtI && ins.Op == MOV && ins.Src == SP && ins.As == AmIndirectInc && ins.Ad == 0 && ins.Dst == PC:
		return "ret"
	case ins.Format == FmtI && ins.Op == MOV && ins.Src == SP && ins.As == AmIndirectInc:
		return "pop"
	case ins.Format == FmtI && ins.Op == MOV && ins.SrcIsLoad():
		return "load"
	case ins.Format == FmtI && ins.Op == MOV && ins.Ad == 1:
		return "store"
	}
	return strings.ToLower(ins.Op.String())
}

// SrcIsLoad reports whether the instruction's source operand reads data
// memory.
func (i Instr) SrcIsLoad() bool {
	if i.Format != FmtI {
		return false
	}
	return SrcIsMem(i.Src, i.As)
}
