package peakpower

import (
	"fmt"
	"time"

	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/symx"
)

// Result is the co-analysis output for one application: the serializable
// Report (the guaranteed requirements, resolved attribution, and run
// metadata — everything that persists and compares across runs) plus the
// live handles a same-process caller can keep digging into: the annotated
// execution tree, the raw cell-index attribution, the analyzed image, and
// the wall-clock time. Report fields are promoted, so result.PeakPowerMW,
// result.COIs, result.Paths, etc. read directly.
//
// Results are read-only once returned; analyses served from a Cache share
// one Result across callers.
type Result struct {
	Report

	// Peaks are the raw cycles of interest with cell-index attribution
	// (power.Peak), sorted descending by power; Peaks[0] is the global
	// peak. Report.COIs is the resolved rendering of the same list.
	Peaks []power.Peak
	// Best is the global peak's full attribution, including the active
	// cell set (Figures 1.5/3.4).
	Best power.Peak
	// UnionActive marks cells that can possibly toggle (per cell index).
	UnionActive []bool
	// Modules names the per-module breakdown columns (the index space of
	// power.Peak.ByModuleMW).
	Modules []string
	// Elapsed is the wall-clock analysis time. It lives outside the
	// Report so that reports stay deterministic and content-addressable.
	Elapsed time.Duration
	// MemoHits / MemoMisses count the packed engine's memoization
	// lookups (whole-step table, plus the per-level table when enabled)
	// during this analysis, summed across explore workers. Like Elapsed they live outside the Report: the memo is a
	// pure execution-speed mechanism (Reports are byte-identical with it
	// on or off), while the counters vary with engine, worker count, and
	// checkpoint replay.
	MemoHits   int64
	MemoMisses int64
	// Tree is the annotated symbolic execution tree.
	Tree *symx.Tree

	img *isa.Image
}

// Image returns the analyzed binary.
func (r *Result) Image() *Image { return r.img }

// Attribution returns the cycles of interest with instruction mnemonics and
// named module splits; entry 0 is the global peak. It is a deep copy of the
// resolved Report.COIs list (retained for compatibility), so callers may
// sort or edit it without corrupting the sealed Report — which may be
// shared through a Cache.
func (r *Result) Attribution() []COI {
	out := make([]COI, len(r.COIs))
	for i, c := range r.COIs {
		by := make(map[string]float64, len(c.ByModuleMW))
		for m, mw := range c.ByModuleMW {
			by[m] = mw
		}
		c.ByModuleMW = by
		out[i] = c
	}
	return out
}

// Mnemonic renders the instruction at an image address.
func (r *Result) Mnemonic(addr uint16) string {
	if r.img == nil {
		return "?"
	}
	return isa.Mnemonic(r.img, addr)
}

// ConcreteRun is an input-based execution's power characterization.
type ConcreteRun struct {
	// PeakMW is the run's observed peak power (steady state).
	PeakMW float64
	// Trace is the per-cycle power (mW).
	Trace []float64
	// EnergyJ integrates the trace.
	EnergyJ float64
	// NPEJPerCycle is EnergyJ / cycles.
	NPEJPerCycle float64
	// UnionActive marks cells that toggled.
	UnionActive []bool
}

// Combine implements the paper's Chapter 6 rule for multi-programmed
// systems (including dynamic linking): the processor's requirement is the
// union over all co-resident applications — the maximum of the peak power
// and energy bounds, and the union of the potentially-toggled sets.
//
// The rule is only sound for requirements of one design at one operating
// point, so Combine rejects results that disagree on target, library,
// clock, or engine. The combined Result carries a sealed Report (app
// "combined"); its COI attribution is the peak-power winner's, and
// ActiveByModule is left empty (module splits do not union meaningfully).
func Combine(results ...*Result) (*Result, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("peakpower: no results to combine")
	}
	first := results[0]
	out := &Result{
		Report: Report{
			Schema:    SchemaVersion,
			Target:    first.Target,
			App:       "combined",
			Library:   first.Library,
			FeatureNM: first.FeatureNM,
			ClockHz:   first.ClockHz,
			Engine:    first.Engine,
		},
		Modules:     first.Modules,
		UnionActive: make([]bool, len(first.UnionActive)),
	}
	for i, r := range results {
		if r.Target != first.Target || r.Library != first.Library ||
			r.ClockHz != first.ClockHz || r.Engine != first.Engine {
			return nil, fmt.Errorf(
				"peakpower: cannot combine results from different operating points: result %d (%s) is %s/%s @ %g Hz on %s engine, result 0 (%s) is %s/%s @ %g Hz on %s engine",
				i, r.App, r.Target, r.Library, r.ClockHz, r.Engine,
				first.App, first.Target, first.Library, first.ClockHz, first.Engine)
		}
		if len(r.UnionActive) != len(out.UnionActive) {
			return nil, fmt.Errorf("peakpower: results from different designs cannot be combined")
		}
		if r.PeakPowerMW > out.PeakPowerMW {
			out.PeakPowerMW = r.PeakPowerMW
			out.Best = r.Best
			out.Peaks = r.Peaks
			out.COIs = r.Report.COIs
			out.img = r.img
		}
		if r.PeakEnergyJ > out.PeakEnergyJ {
			out.PeakEnergyJ = r.PeakEnergyJ
			out.BoundingCycles = r.BoundingCycles
		}
		if r.NPEJPerCycle > out.NPEJPerCycle {
			out.NPEJPerCycle = r.NPEJPerCycle
		}
		for i, a := range r.UnionActive {
			if a {
				out.UnionActive[i] = true
			}
		}
		out.Paths += r.Paths
		out.Nodes += r.Nodes
		out.SimCycles += r.SimCycles
		out.Elapsed += r.Elapsed
	}
	out.TotalGates = len(out.UnionActive)
	for _, a := range out.UnionActive {
		if a {
			out.ActiveGates++
		}
	}
	out.Seal()
	return out, nil
}
