// Command peakpower is the co-analysis tool: it takes an application (a
// built-in benchmark or an assembly file) and reports the guaranteed,
// input-independent peak power and energy requirements of the ULP430
// processor running it, with cycle-of-interest attribution.
//
// Usage:
//
//	peakpower -bench mult
//	peakpower -src app.s [-coi 4] [-trace]
//	peakpower -dump-netlist ulp430.v
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/symx"
)

func main() {
	benchName := flag.String("bench", "", "built-in benchmark name (see -list)")
	src := flag.String("src", "", "ULP430 assembly file to analyze")
	list := flag.Bool("list", false, "list built-in benchmarks")
	coi := flag.Int("coi", 4, "cycles of interest to report")
	trace := flag.Bool("trace", false, "print the per-cycle peak power trace")
	dumpNetlist := flag.String("dump-netlist", "", "write the ULP430 gate-level netlist as structural Verilog and exit")
	maxCycles := flag.Int("max-cycles", 2_000_000, "symbolic exploration cycle budget")
	flag.Parse()

	if *list {
		for _, b := range bench.All() {
			fmt.Printf("%-10s %-16s %s\n", b.Name, b.Suite, b.Desc)
		}
		return
	}

	an, err := core.NewAnalyzer()
	if err != nil {
		fatal(err)
	}

	if *dumpNetlist != "" {
		f, err := os.Create(*dumpNetlist)
		if err != nil {
			fatal(err)
		}
		if err := an.Netlist.WriteVerilog(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st := an.Netlist.Stats(an.Model.Lib)
		fmt.Printf("wrote %s: %d cells (%d flip-flops), %d nets, %.0f um2\n",
			*dumpNetlist, st.Cells, st.Seq, st.Nets, st.AreaUM2)
		return
	}

	var img *isa.Image
	opts := symx.Options{MaxCycles: *maxCycles}
	switch {
	case *benchName != "":
		b := bench.ByName(*benchName)
		if b == nil {
			fatal(fmt.Errorf("unknown benchmark %q (try -list)", *benchName))
		}
		img, err = b.Image()
		if err != nil {
			fatal(err)
		}
		if b.MaxCycles > 0 {
			opts.MaxCycles = b.MaxCycles * 2
		}
	case *src != "":
		text, err := os.ReadFile(*src)
		if err != nil {
			fatal(err)
		}
		img, err = isa.Assemble(*src, string(text))
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need -bench or -src (or -list / -dump-netlist)"))
	}

	req, err := an.Analyze(img, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("application:          %s\n", img.Name)
	fmt.Printf("operating point:      %s @ %.0f MHz\n", an.Model.Lib.Name, an.Model.ClockHz/1e6)
	fmt.Printf("peak power bound:     %.3f mW (guaranteed for all inputs)\n", req.PeakPowerMW)
	fmt.Printf("peak energy bound:    %.3e J over %.0f cycles\n", req.PeakEnergyJ, req.BoundingCycles)
	fmt.Printf("normalized peak energy: %.3e J/cycle\n", req.NPEJPerCycle)
	fmt.Printf("exploration:          %d paths, %d tree nodes, %d simulated cycles\n",
		req.Paths, req.Nodes, req.SimCycles)

	fmt.Printf("\ncycles of interest (peak power attribution):\n")
	n := len(req.COIs)
	if n > *coi {
		n = *coi
	}
	for _, pk := range req.COIs[:n] {
		fmt.Printf("  cycle %-6d %.3f mW  %-8s (after %-8s) state=%-6s",
			pk.PathPos, pk.PowerMW, isa.Mnemonic(img, pk.FetchAddr),
			isa.Mnemonic(img, pk.PrevFetch), pk.State)
		type mp struct {
			name string
			mw   float64
		}
		var mods []mp
		for mi, mw := range pk.ByModuleMW {
			mods = append(mods, mp{req.Modules[mi], mw})
		}
		sort.Slice(mods, func(i, j int) bool { return mods[i].mw > mods[j].mw })
		for _, m := range mods[:3] {
			fmt.Printf("  %s=%.2f", m.name, m.mw)
		}
		fmt.Println()
	}

	active := 0
	for _, a := range req.UnionActive {
		if a {
			active++
		}
	}
	fmt.Printf("\npotentially-toggled gates: %d of %d\n", active, len(req.UnionActive))
	by := c2sorted(an.ActiveByModule(req.UnionActive))
	for _, kv := range by {
		fmt.Printf("  %-16s %d\n", kv.k, kv.v)
	}

	if *trace {
		fmt.Printf("\nper-cycle peak power trace (mW):\n")
		for i, p := range req.PeakTrace {
			fmt.Printf("%d %.4f\n", i, p)
		}
	}
}

type kv struct {
	k string
	v int
}

func c2sorted(m map[string]int) []kv {
	out := make([]kv, 0, len(m))
	for k, v := range m {
		out = append(out, kv{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].v > out[j].v })
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "peakpower:", err)
	os.Exit(1)
}
