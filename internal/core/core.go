// Package core is the tool's public face: hardware–software co-analysis
// that takes an application binary and a gate-level processor netlist and
// returns guaranteed, input-independent, application-specific peak power
// and peak energy requirements (the paper's headline contribution,
// Figure 3.1).
//
// The pipeline: symbolic gate-activity analysis (Algorithm 1, package
// symx) drives the streaming peak-power computation (Algorithm 2, package
// power) to annotate an execution tree, from which the peak-power
// requirement (maximum over every cycle of every path) and the
// peak-energy requirement (maximum-energy path, package energy) are
// derived, along with cycle-of-interest attribution for optimization
// guidance (Section 3.5).
package core

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/symx"
	"repro/internal/ulp430"
)

// Analyzer binds a processor design and operating point.
type Analyzer struct {
	// Netlist is the gate-level design under analysis.
	Netlist *netlist.Netlist
	// Model is the power model / operating point.
	Model power.Model
}

// NewAnalyzer builds the default analyzer: the ULP430 processor in the
// ULP65 library at 1 V / 100 MHz (the paper's openMSP430 operating
// point).
func NewAnalyzer() (*Analyzer, error) {
	nl, err := ulp430.BuildCPU()
	if err != nil {
		return nil, err
	}
	return &Analyzer{
		Netlist: nl,
		Model:   power.Model{Lib: cell.ULP65(), ClockHz: 100e6},
	}, nil
}

// Requirements is the co-analysis output for one application.
type Requirements struct {
	// PeakPowerMW is the input-independent peak power requirement: no
	// execution of the application, on any input, can exceed it.
	PeakPowerMW float64
	// PeakEnergyJ is the input-independent peak energy requirement (the
	// maximum-energy execution path, loop bounds applied).
	PeakEnergyJ float64
	// NPEJPerCycle is the normalized peak energy (J/cycle): the maximum
	// average rate at which the application can consume energy.
	NPEJPerCycle float64
	// BoundingCycles is the runtime of the bounding path.
	BoundingCycles float64
	// PeakTrace is the per-cycle peak-power trace along the
	// maximum-energy path (Figure 3.3's series).
	PeakTrace []float64
	// COIs are the top cycles of interest with microarchitectural
	// attribution (Figure 3.6).
	COIs []power.Peak
	// Best is the global peak's full attribution, including the active
	// cell set (Figures 1.5/3.4).
	Best power.Peak
	// UnionActive marks cells that can possibly toggle (per cell index).
	UnionActive []bool
	// Modules names the per-module breakdown columns.
	Modules []string
	// Paths, Nodes, and SimCycles summarize the exploration.
	Paths, Nodes, SimCycles int
	// Tree is the annotated symbolic execution tree.
	Tree *symx.Tree
}

// Analyze runs the full co-analysis on an application binary.
func (a *Analyzer) Analyze(img *isa.Image, opts symx.Options) (*Requirements, error) {
	sys, err := ulp430.NewSystem(a.Netlist, a.Model.Lib, img, ulp430.SymbolicInputs, nil)
	if err != nil {
		return nil, err
	}
	sink := power.NewSink(sys, a.Model, img, 8)
	tree, err := symx.Explore(sys, sink, opts)
	if err != nil {
		return nil, fmt.Errorf("core: symbolic analysis of %s: %w", img.Name, err)
	}
	res, err := energy.PeakEnergy(tree, img, a.Model.ClockHz)
	if err != nil {
		return nil, fmt.Errorf("core: peak energy of %s: %w", img.Name, err)
	}
	req := &Requirements{
		PeakPowerMW:    sink.PeakMW(),
		PeakEnergyJ:    res.EnergyJ,
		NPEJPerCycle:   res.NPEJPerCycle,
		BoundingCycles: res.Cycles,
		PeakTrace:      maxEnergyPathTrace(tree),
		COIs:           sink.TopK,
		Best:           sink.Best,
		UnionActive:    sink.UnionActive,
		Modules:        sink.Modules(),
		Paths:          tree.Paths,
		Nodes:          len(tree.Nodes),
		SimCycles:      tree.Cycles,
		Tree:           tree,
	}
	return req, nil
}

// maxEnergyPathTrace concatenates segment traces greedily along the
// higher-energy child, stopping at merges (one loop pass shown).
func maxEnergyPathTrace(tree *symx.Tree) []float64 {
	var out []float64
	seen := make(map[int]bool)
	n := tree.Root
	for n != nil && !seen[n.ID] {
		seen[n.ID] = true
		if seg, ok := n.Data.([]float64); ok {
			out = append(out, seg...)
		}
		switch n.Kind {
		case symx.KindBranch:
			a, b := n.Taken, n.NotTaken
			if segSum(a) >= segSum(b) {
				n = a
			} else {
				n = b
			}
		case symx.KindMerge:
			n = n.MergeTo
		default:
			n = nil
		}
	}
	return out
}

func segSum(n *symx.Node) float64 {
	if n == nil {
		return -1
	}
	seg, ok := n.Data.([]float64)
	if !ok {
		return -1
	}
	s := 0.0
	for _, v := range seg {
		s += v
	}
	return s
}

// ConcreteRun is an input-based execution's power characterization.
type ConcreteRun struct {
	// PeakMW is the run's observed peak power (steady state).
	PeakMW float64
	// Trace is the per-cycle power (mW).
	Trace []float64
	// EnergyJ integrates the trace.
	EnergyJ float64
	// NPEJPerCycle is EnergyJ / cycles.
	NPEJPerCycle float64
	// UnionActive marks cells that toggled.
	UnionActive []bool
}

// RunConcrete executes the binary with concrete inputs and measures its
// power — the "input-based" view used for profiling and validation.
func (a *Analyzer) RunConcrete(img *isa.Image, inputs []uint16, portIn func() uint16, maxCycles int) (*ConcreteRun, error) {
	sys, err := ulp430.NewSystem(a.Netlist, a.Model.Lib, img, ulp430.ConcreteInputs, inputs)
	if err != nil {
		return nil, err
	}
	sys.PortIn = portIn
	sink := power.NewSink(sys, a.Model, img, 0)
	sys.Reset()
	for c := 0; c < maxCycles && !sys.Halted(); c++ {
		sys.Step()
		sink.OnCycle(sys)
	}
	if !sys.Halted() {
		return nil, fmt.Errorf("core: %s did not halt within %d cycles", img.Name, maxCycles)
	}
	if err := sys.Err(); err != nil {
		return nil, err
	}
	run := &ConcreteRun{
		PeakMW:      sink.PeakMW(),
		Trace:       sink.Trace,
		UnionActive: sink.UnionActive,
	}
	for _, mw := range sink.Trace {
		run.EnergyJ += mw * 1e-3 / a.Model.ClockHz
	}
	run.NPEJPerCycle = run.EnergyJ / float64(len(sink.Trace))
	return run, nil
}

// ActiveByModule counts cells from the given activity set per top-level
// module — the data behind the activity-profile figures (1.5, 3.4).
func (a *Analyzer) ActiveByModule(active []bool) map[string]int {
	out := make(map[string]int)
	for ci, act := range active {
		if act {
			out[a.Netlist.Modules()[a.Netlist.ModuleIndex(netlist.CellID(ci))]]++
		}
	}
	return out
}

// ActiveCellsByModule groups an explicit cell list per module.
func (a *Analyzer) ActiveCellsByModule(cells []netlist.CellID) map[string]int {
	out := make(map[string]int)
	for _, ci := range cells {
		out[a.Netlist.Modules()[a.Netlist.ModuleIndex(ci)]]++
	}
	return out
}

// CombineMultiProgrammed implements the paper's Chapter 6 rule for
// multi-programmed systems (including dynamic linking): the processor's
// requirement is the union over all co-resident applications — the
// maximum of the peak power and energy bounds, and the union of the
// potentially-toggled sets.
func CombineMultiProgrammed(reqs ...*Requirements) (*Requirements, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("core: no requirements to combine")
	}
	out := &Requirements{
		Modules:     reqs[0].Modules,
		UnionActive: make([]bool, len(reqs[0].UnionActive)),
	}
	for _, r := range reqs {
		if len(r.UnionActive) != len(out.UnionActive) {
			return nil, fmt.Errorf("core: requirements from different designs cannot be combined")
		}
		if r.PeakPowerMW > out.PeakPowerMW {
			out.PeakPowerMW = r.PeakPowerMW
			out.Best = r.Best
			out.COIs = r.COIs
		}
		if r.PeakEnergyJ > out.PeakEnergyJ {
			out.PeakEnergyJ = r.PeakEnergyJ
			out.BoundingCycles = r.BoundingCycles
		}
		if r.NPEJPerCycle > out.NPEJPerCycle {
			out.NPEJPerCycle = r.NPEJPerCycle
		}
		for i, a := range r.UnionActive {
			if a {
				out.UnionActive[i] = true
			}
		}
		out.Paths += r.Paths
		out.Nodes += r.Nodes
		out.SimCycles += r.SimCycles
	}
	return out, nil
}
