package sizing

import (
	"repro/internal/cell"
	"repro/internal/ulp430"
)

// SizedTarget returns the down-sized ULP430 design point of the Chapter 5
// design-optimization story: once the co-analysis proves the application's
// peak power is far below the guardbanded worst case, the excess drive
// strength provisioned for that guardband can be recovered by shrinking
// cell sizes. The variant models the re-sized core as a scaled library —
// per-transition and clock-tree energies drop with the smaller devices,
// leakage drops with gate width — closing timing at a reduced 80 MHz clock.
//
// It satisfies peakpower.Target (structurally), so it registers alongside
// the standard core and the same program can sweep both design points —
// exactly the harvester/battery re-sizing workflow this package's
// Tables 5.1/5.2 models quantify.
func SizedTarget() *ulp430.DesignVariant {
	lib := cell.ULP65().Scaled(0.82, 0.60)
	lib.Name = "ULP65-sized"
	return ulp430.NewDesignVariant("ulp430-sized",
		"down-sized ULP430: peak-power-driven cell sizing (0.82x transition energy, 0.60x leakage) @ 80 MHz",
		lib, 80e6)
}
