// Package periph models the memory-mapped peripheral subsystem of the
// ULP430 sensor node: a declarative address-area map (the single source
// of truth for what lives where on the bus), three devices — a one-shot
// timer with compare interrupt, a sensor/ADC front end whose completed
// samples read as symbolic X, and a radio stub with a busy flag — and
// the interrupt controller that turns the ADC's nondeterministic
// conversion latency into the three-valued IRQ line the symbolic
// exploration forks on.
//
// The address map is deliberately generic: internal/soc reuses it to
// describe the whole SoC layout (SRAM, ROM, core registers, device
// space), so region predicates and bus routing share one declaration
// instead of parallel hard-coded switches.
package periph

import (
	"fmt"
	"sort"
)

// Area is one contiguous address range with a stable name and a
// caller-defined classification tag. Start and End are byte addresses;
// End is exclusive and is a uint32 so an area may extend to the top of
// the 16-bit address space (End = 0x10000).
type Area struct {
	// Name identifies the area in diagnostics ("sram", "timer", ...).
	Name string
	// Start is the first byte address of the area.
	Start uint32
	// End is one past the last byte address.
	End uint32
	// Tag classifies the area; its meaning belongs to the map's owner
	// (internal/soc uses region tags, the Bus uses device indices).
	Tag int
}

// Contains reports whether byte address a lies inside the area.
func (a Area) Contains(addr uint16) bool {
	u := uint32(addr)
	return u >= a.Start && u < a.End
}

// Map is an ordered, non-overlapping set of address areas supporting
// O(log n) lookup. It is immutable after construction and safe for
// concurrent readers.
type Map struct {
	areas []Area
}

// NewMap validates and indexes a set of areas: every area must be
// non-empty and no two areas may overlap. The declaration order does not
// matter; areas are sorted by start address.
func NewMap(areas ...Area) (*Map, error) {
	sorted := make([]Area, len(areas))
	copy(sorted, areas)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	for i, a := range sorted {
		if a.End <= a.Start || a.End > 0x10000 {
			return nil, fmt.Errorf("periph: area %q has invalid range [%#x, %#x)", a.Name, a.Start, a.End)
		}
		if i > 0 && a.Start < sorted[i-1].End {
			return nil, fmt.Errorf("periph: area %q [%#x, %#x) overlaps %q [%#x, %#x)",
				a.Name, a.Start, a.End, sorted[i-1].Name, sorted[i-1].Start, sorted[i-1].End)
		}
	}
	return &Map{areas: sorted}, nil
}

// MustMap is NewMap for static layouts; it panics on invalid input.
func MustMap(areas ...Area) *Map {
	m, err := NewMap(areas...)
	if err != nil {
		panic(err)
	}
	return m
}

// Lookup finds the area containing byte address addr.
func (m *Map) Lookup(addr uint16) (Area, bool) {
	u := uint32(addr)
	i := sort.Search(len(m.areas), func(i int) bool { return m.areas[i].End > u })
	if i < len(m.areas) && m.areas[i].Start <= u {
		return m.areas[i], true
	}
	return Area{}, false
}

// Areas returns the areas in ascending address order. The slice is shared;
// callers must treat it as read-only.
func (m *Map) Areas() []Area { return m.areas }
