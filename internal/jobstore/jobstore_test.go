package jobstore

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultfs"
)

func openT(t *testing.T, fs faultfs.FS) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), fs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mkJob(id string, state State, at time.Time) *Job {
	return &Job{
		ID:          id,
		State:       state,
		Request:     json.RawMessage(`{"bench":"` + id + `"}`),
		SubmittedAt: at,
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openT(t, nil)
	at := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	j := mkJob("job-1", StateQueued, at)
	j.Attempts = 2
	if err := s.Put(j); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "job-1" || got.State != StateQueued || got.Attempts != 2 ||
		!got.SubmittedAt.Equal(at) || string(got.Request) != `{"bench":"job-1"}` {
		t.Fatalf("round trip: %+v", got)
	}
	if !got.FinishedAt.IsZero() {
		t.Fatalf("FinishedAt should stay zero, got %v", got.FinishedAt)
	}

	// Terminal transition overwrites in place.
	j.State = StateDone
	j.Result = json.RawMessage(`{"peak":1}`)
	j.FinishedAt = at.Add(time.Second)
	if err := s.Put(j); err != nil {
		t.Fatal(err)
	}
	got, err = s.Get("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone || string(got.Result) != `{"peak":1}` || got.FinishedAt.IsZero() {
		t.Fatalf("after overwrite: %+v", got)
	}
}

func TestGetMissingAndInvalidIDs(t *testing.T) {
	s := openT(t, nil)
	if _, err := s.Get("nope"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing job: %v", err)
	}
	for _, id := range []string{"", "a/b", `a\b`, "..", "a b", "x.job"} {
		if ValidID(id) {
			t.Fatalf("ValidID(%q) = true", id)
		}
		if err := s.Put(mkJob(id, StateQueued, time.Time{})); err == nil {
			t.Fatalf("Put accepted ID %q", id)
		}
		if _, err := s.Get(id); err == nil {
			t.Fatalf("Get accepted ID %q", id)
		}
	}
}

// TestRecoverRequeuesInterrupted is the restart contract: queued jobs come
// back queued, a job that died mid-run comes back queued (and is
// re-persisted that way), terminal jobs stay put — all in submission order.
func TestRecoverRequeuesInterrupted(t *testing.T) {
	s := openT(t, nil)
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	running := mkJob("mid-run", StateRunning, base)
	running.Attempts = 1
	for _, j := range []*Job{
		mkJob("late-queued", StateQueued, base.Add(2*time.Second)),
		running,
		mkJob("finished", StateDone, base.Add(time.Second)),
		mkJob("broken", StateFailed, base.Add(3*time.Second)),
	} {
		if err := s.Put(j); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "mid-run" || got[1].ID != "late-queued" {
		t.Fatalf("recovered %v", ids(got))
	}
	if got[0].State != StateQueued || got[0].Attempts != 1 {
		t.Fatalf("mid-run job: %+v", got[0])
	}
	// The flip was persisted: a second crash-before-run changes nothing.
	onDisk, err := s.Get("mid-run")
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State != StateQueued {
		t.Fatalf("mid-run state on disk: %s", onDisk.State)
	}
}

func ids(jobs []*Job) []string {
	out := make([]string, len(jobs))
	for i, j := range jobs {
		out[i] = j.ID
	}
	return out
}

// TestDamagedRecordsReportedAndScrubbed: torn or foreign bytes in the
// store directory never hide healthy jobs; List names them, Scrub removes
// them (plus leftover temp files), healthy records survive.
func TestDamagedRecordsReportedAndScrubbed(t *testing.T) {
	s := openT(t, nil)
	if err := s.Put(mkJob("good", StateQueued, time.Time{})); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string]string{
		"torn.job":     `{"id":"torn","sta`,
		"badid.job":    `{"id":"../evil","state":"queued","request":{}}`,
		"renamed.job":  `{"id":"other","state":"queued","request":{}}`,
		"badstate.job": `{"id":"badstate","state":"melting","request":{}}`,
		"leftover.tmp": "partial write",
	} {
		if err := os.WriteFile(filepath.Join(s.Dir(), name), []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	jobs, damaged, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "good" {
		t.Fatalf("healthy jobs: %v", ids(jobs))
	}
	want := []string{"badid.job", "badstate.job", "renamed.job", "torn.job"}
	if len(damaged) != len(want) {
		t.Fatalf("damaged %v, want %v", damaged, want)
	}
	for i := range want {
		if damaged[i] != want[i] {
			t.Fatalf("damaged %v, want %v", damaged, want)
		}
	}
	if err := s.Scrub(damaged); err != nil {
		t.Fatal(err)
	}
	jobs, damaged, err = s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || len(damaged) != 0 {
		t.Fatalf("after scrub: jobs %v damaged %v", ids(jobs), damaged)
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), "leftover.tmp")); !os.IsNotExist(err) {
		t.Fatalf("temp file not scrubbed: %v", err)
	}
	if err := s.Scrub([]string{"../escape.job"}); err == nil {
		t.Fatal("Scrub accepted a path-escaping name")
	}
}

// TestDeleteRemovesCheckpoint: a job's exploration journal dies with it.
func TestDeleteRemovesCheckpoint(t *testing.T) {
	s := openT(t, nil)
	if err := s.Put(mkJob("j", StateDone, time.Time{})); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.CheckpointPath("j"), []byte("journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("j"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("j"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("record survived delete: %v", err)
	}
	if _, err := os.Stat(s.CheckpointPath("j")); !os.IsNotExist(err) {
		t.Fatalf("checkpoint survived delete: %v", err)
	}
	if err := s.Delete("j"); err != nil {
		t.Fatalf("deleting a missing job: %v", err)
	}
}

// TestCrashDuringPutLeavesOldRecord: a write fault mid-Put (the rename
// never happens) must leave the previous record intact and readable —
// the atomic-replace contract the recovery path depends on.
func TestCrashDuringPutLeavesOldRecord(t *testing.T) {
	var fail bool
	fs := faultfs.Hooked{Hook: func(op faultfs.Op, path string) error {
		if fail && (op == faultfs.OpWrite || op == faultfs.OpRename) {
			return errors.New("injected: crash mid-write")
		}
		return nil
	}}
	s := openT(t, fs)
	j := mkJob("j", StateQueued, time.Time{})
	if err := s.Put(j); err != nil {
		t.Fatal(err)
	}
	fail = true
	j.State = StateDone
	if err := s.Put(j); err == nil {
		t.Fatal("Put succeeded under write fault")
	}
	fail = false
	got, err := s.Get("j")
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateQueued {
		t.Fatalf("old record clobbered by failed write: state %s", got.State)
	}
}
