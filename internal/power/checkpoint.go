// Checkpoint support for the power sink: serializing one exploration
// task's observations for the symx checkpoint journal, and replaying
// journaled tasks through the canonical merge on resume.
//
// The serialized record is everything a crashed run's finished task
// contributed to the final Report that cannot be re-derived without
// re-execution: its Best/TopK candidates (replayed by MergeParallelReplay
// in canonical order exactly like live candidates), its ISR peak, and the
// FULL set of cells active during its cycles. Activity is deliberately the
// task's complete set rather than "new since the worker's last task": a
// worker-relative delta would depend on which earlier tasks shared that
// worker — information a resume discards — while per-task sets make the
// union a plain order-independent fold over any mix of replayed and
// re-executed tasks.
//
// Every float crosses the journal as JSON, which Go encodes at shortest
// round-trip precision, so replayed candidates fold bit-identically to
// live ones — the property the resumed-Report byte-identity tests pin.
package power

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// EnableCheckpoint switches a task-mode sink to also record per-task
// observation records for the exploration checkpoint journal. Must be
// called after EnableTasks and before any observation.
func (s *Sink) EnableCheckpoint() {
	s.ckpt = true
	s.taskAccum = make([]uint64, len(s.actAccum))
	s.taskVisit = func(ci netlist.CellID) { s.taskActive = append(s.taskActive, ci) }
}

// peakWire is Peak, flattened for the journal.
type peakWire struct {
	P     float64   `json:"p"`
	Pos   int       `json:"pos"`
	Fetch uint16    `json:"f"`
	Prev  uint16    `json:"pf,omitempty"`
	State string    `json:"st,omitempty"`
	ISR   bool      `json:"isr,omitempty"`
	Mod   []float64 `json:"mod,omitempty"`
	Cells []int32   `json:"cells,omitempty"`
}

// candWire is one Best/TopK candidate: a peak plus its stream coordinate
// (the task coordinate is the record's).
type candWire struct {
	Stream int `json:"s"`
	peakWire
}

// taskWire is one task's serialized observations.
type taskWire struct {
	Best   []candWire `json:"best,omitempty"`
	TopK   []candWire `json:"topk,omitempty"`
	ISR    float64    `json:"isrmw,omitempty"`
	Active []int32    `json:"active,omitempty"`
}

func toWire(pk Peak) peakWire {
	w := peakWire{
		P: pk.PowerMW, Pos: pk.PathPos, Fetch: pk.FetchAddr, Prev: pk.PrevFetch,
		State: pk.State, ISR: pk.InISR, Mod: pk.ByModuleMW,
	}
	if pk.ActiveCells != nil {
		w.Cells = make([]int32, len(pk.ActiveCells))
		for i, c := range pk.ActiveCells {
			w.Cells[i] = int32(c)
		}
	}
	return w
}

func fromWire(w peakWire) Peak {
	pk := Peak{
		PowerMW: w.P, PathPos: w.Pos, FetchAddr: w.Fetch, PrevFetch: w.Prev,
		State: w.State, InISR: w.ISR, ByModuleMW: w.Mod,
	}
	if w.Cells != nil {
		pk.ActiveCells = make([]netlist.CellID, len(w.Cells))
		for i, c := range w.Cells {
			pk.ActiveCells[i] = netlist.CellID(c)
		}
	}
	return pk
}

// MarshalTask implements symx.TaskMarshaler: serialize the observations of
// the task begun by the last BeginTask.
func (s *Sink) MarshalTask() ([]byte, error) {
	if !s.ckpt {
		return nil, fmt.Errorf("power: MarshalTask without EnableCheckpoint")
	}
	w := taskWire{ISR: s.taskISR}
	for _, c := range s.bestCands[s.taskBest0:] {
		w.Best = append(w.Best, candWire{Stream: c.Stream, peakWire: toWire(c.Peak)})
	}
	for _, c := range s.topkCands[s.taskTopk0:] {
		w.TopK = append(w.TopK, candWire{Stream: c.Stream, peakWire: toWire(c.Peak)})
	}
	if len(s.taskActive) > 0 {
		w.Active = make([]int32, len(s.taskActive))
		for i, c := range s.taskActive {
			w.Active[i] = int32(c)
		}
		sort.Slice(w.Active, func(i, j int) bool { return w.Active[i] < w.Active[j] })
	}
	return json.Marshal(w)
}

// MergeParallelReplay is MergeParallel plus replayed observations: blobs
// journaled by MarshalTask in a previous (crashed) run, keyed by task ID.
// Replayed candidates carry their recorded (task, stream) coordinates, so
// the canonical sort interleaves them with this run's live candidates
// exactly where the uninterrupted run would have produced them, and the
// order-insensitive folds (activity union, ISR peak) absorb the replayed
// per-task sets directly.
func MergeParallelReplay(sinks []*Sink, k int, nodeID func(task, stream int) int, replayed map[int][]byte) (best Peak, topK []Peak, isrPeakMW float64, union []bool, err error) {
	var bestC, topC []PeakCand
	for _, s := range sinks {
		bestC = append(bestC, s.bestCands...)
		topC = append(topC, s.topkCands...)
		if s.ISRPeakMW > isrPeakMW {
			isrPeakMW = s.ISRPeakMW
		}
		if union == nil {
			union = make([]bool, len(s.UnionActive))
		}
		for i, b := range s.UnionActive {
			if b {
				union[i] = true
			}
		}
	}
	for task, blob := range replayed {
		var w taskWire
		if len(blob) > 0 {
			if uerr := json.Unmarshal(blob, &w); uerr != nil {
				return best, topK, isrPeakMW, union, fmt.Errorf("power: replay of task %d: %w", task, uerr)
			}
		}
		for _, c := range w.Best {
			bestC = append(bestC, PeakCand{Peak: fromWire(c.peakWire), Task: task, Stream: c.Stream})
		}
		for _, c := range w.TopK {
			topC = append(topC, PeakCand{Peak: fromWire(c.peakWire), Task: task, Stream: c.Stream})
		}
		if w.ISR > isrPeakMW {
			isrPeakMW = w.ISR
		}
		for _, ci := range w.Active {
			if int(ci) < len(union) {
				union[ci] = true
			}
		}
	}
	sortCanonical(bestC, nodeID)
	sortCanonical(topC, nodeID)
	for _, c := range bestC {
		if c.Peak.PowerMW > best.PowerMW {
			best = c.Peak
		}
	}
	for _, c := range topC {
		pk := c.Peak
		topK = insertTopK(topK, k, pk.PowerMW, pk.FetchAddr, func() Peak { return pk })
	}
	return best, topK, isrPeakMW, union, nil
}

// Codec implements symx.CheckpointCodec for power sinks: seeds are
// TaskSeeds and segment payloads are per-cycle power traces ([]float64),
// both JSON-encoded (floats at shortest round-trip precision).
type Codec struct{}

type seedWire struct {
	Fetch uint16 `json:"f,omitempty"`
	Prev  uint16 `json:"pf,omitempty"`
	Depth int8   `json:"d,omitempty"`
}

// MarshalSeed implements symx.CheckpointCodec.
func (Codec) MarshalSeed(seed interface{}) ([]byte, error) {
	if seed == nil {
		return nil, nil
	}
	ts, ok := seed.(TaskSeed)
	if !ok {
		return nil, fmt.Errorf("power: checkpoint seed has type %T, want power.TaskSeed", seed)
	}
	return json.Marshal(seedWire{Fetch: ts.Fetch, Prev: ts.Prev, Depth: ts.Depth})
}

// UnmarshalSeed implements symx.CheckpointCodec.
func (Codec) UnmarshalSeed(data []byte) (interface{}, error) {
	if len(data) == 0 {
		return nil, nil
	}
	var w seedWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, err
	}
	return TaskSeed{Fetch: w.Fetch, Prev: w.Prev, Depth: w.Depth}, nil
}

// MarshalPayload implements symx.CheckpointCodec.
func (Codec) MarshalPayload(data interface{}) ([]byte, error) {
	trace, ok := data.([]float64)
	if !ok && data != nil {
		return nil, fmt.Errorf("power: checkpoint payload has type %T, want []float64", data)
	}
	return json.Marshal(trace)
}

// UnmarshalPayload implements symx.CheckpointCodec.
func (Codec) UnmarshalPayload(data []byte) (interface{}, error) {
	var trace []float64
	if err := json.Unmarshal(data, &trace); err != nil {
		return nil, err
	}
	return trace, nil
}
