// Package isim is the behavioral instruction-set simulator for the
// ULP430: a golden reference model used to differentially validate the
// gate-level processor (every benchmark runs on both; architectural state
// and cycle counts must agree), to debug benchmarks, and to provide fast
// functional runs where gate-level power fidelity is not needed.
package isim

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/soc"
)

// Machine is one ULP430 behavioral instance.
type Machine struct {
	// R is the register file; R[0] is the PC.
	R [16]uint16
	// Halted is set by a write to the HALT register.
	Halted bool
	// Cycles accumulates the multi-cycle implementation's cycle cost.
	Cycles uint64
	// Insns counts executed instructions.
	Insns uint64
	// PortIn supplies values for P1IN reads; nil makes P1IN reads an
	// error (benchmarks must declare their input channels).
	PortIn func() uint16
	// TracePC, when non-nil, receives the PC of every executed
	// instruction (used by differential tests).
	TracePC func(pc uint16)

	mem     [1 << 15]uint16 // word-indexed
	written [1 << 15]bool

	mpyOp1, resLo, resHi uint16
	wdtCtl, wdtCount     uint16
	p1out                uint16
}

// New creates a machine with the image loaded, input regions filled from
// inputs (word values applied to the declared .input regions in order),
// and the PC at the reset vector target.
func New(img *isa.Image, inputs []uint16) (*Machine, error) {
	m := &Machine{}
	for addr, w := range img.Words {
		if addr%2 != 0 {
			return nil, fmt.Errorf("isim: odd image address %#04x", addr)
		}
		m.mem[addr/2] = w
		m.written[addr/2] = true
	}
	k := 0
	for _, r := range img.Inputs {
		for i := 0; i < r.Words; i++ {
			var v uint16
			if k < len(inputs) {
				v = inputs[k]
			}
			k++
			m.mem[(r.Addr+uint16(2*i))/2] = v
		}
	}
	m.R[isa.PC] = img.Entry
	return m, nil
}

// Mem reads a word of memory directly (for test assertions).
func (m *Machine) Mem(addr uint16) uint16 { return m.mem[addr/2] }

// P1Out returns the output-port register value.
func (m *Machine) P1Out() uint16 { return m.p1out }

// WatchdogCount returns the watchdog counter value.
func (m *Machine) WatchdogCount() uint16 { return m.wdtCount }

func (m *Machine) load(addr uint16) (uint16, error) {
	if addr%2 != 0 {
		return 0, fmt.Errorf("isim: unaligned load at %#04x (pc %#04x)", addr, m.R[isa.PC])
	}
	switch addr {
	case soc.WDTCTL:
		return m.wdtCtl, nil
	case soc.P1IN:
		if m.PortIn == nil {
			return 0, fmt.Errorf("isim: P1IN read with no input source (pc %#04x)", m.R[isa.PC])
		}
		return m.PortIn(), nil
	case soc.P1OUT:
		return m.p1out, nil
	case soc.HALTREG:
		return 0, nil
	case soc.MPY, soc.MPYS:
		return m.mpyOp1, nil
	case soc.OP2:
		return 0, nil
	case soc.RESLO:
		return m.resLo, nil
	case soc.RESHI:
		return m.resHi, nil
	}
	if !soc.InRAM(addr) && !soc.InROM(addr) {
		return 0, fmt.Errorf("isim: load from unmapped address %#04x (pc %#04x)", addr, m.R[isa.PC])
	}
	if soc.InRAM(addr) && !m.written[addr/2] {
		return 0, fmt.Errorf("isim: load from uninitialized RAM %#04x (pc %#04x)", addr, m.R[isa.PC])
	}
	return m.mem[addr/2], nil
}

func (m *Machine) store(addr, v uint16) error {
	if addr%2 != 0 {
		return fmt.Errorf("isim: unaligned store at %#04x (pc %#04x)", addr, m.R[isa.PC])
	}
	switch addr {
	case soc.WDTCTL:
		m.wdtCtl = v
		return nil
	case soc.P1OUT:
		m.p1out = v
		return nil
	case soc.P1IN:
		return fmt.Errorf("isim: store to input port (pc %#04x)", m.R[isa.PC])
	case soc.HALTREG:
		if v != 0 {
			m.Halted = true
		}
		return nil
	case soc.MPY, soc.MPYS:
		m.mpyOp1 = v
		return nil
	case soc.OP2:
		p := uint32(m.mpyOp1) * uint32(v)
		m.resLo = uint16(p)
		m.resHi = uint16(p >> 16)
		return nil
	case soc.RESLO, soc.RESHI:
		return fmt.Errorf("isim: multiplier result registers are read-only (pc %#04x)", m.R[isa.PC])
	}
	if !soc.InRAM(addr) {
		return fmt.Errorf("isim: store to non-RAM address %#04x (pc %#04x)", addr, m.R[isa.PC])
	}
	m.mem[addr/2] = v
	m.written[addr/2] = true
	return nil
}

// flags applies Z/N/C/V updates to SR.
func (m *Machine) setFlags(c, z, n, v bool) {
	sr := m.R[isa.SR] &^ (isa.FlagC | isa.FlagZ | isa.FlagN | isa.FlagV)
	if c {
		sr |= isa.FlagC
	}
	if z {
		sr |= isa.FlagZ
	}
	if n {
		sr |= isa.FlagN
	}
	if v {
		sr |= isa.FlagV
	}
	m.R[isa.SR] = sr
}

func (m *Machine) flag(bit uint16) bool { return m.R[isa.SR]&bit != 0 }

// addWithFlags computes a+b+cin and the MSP430 flags.
func addWithFlags(a, b, cin uint16) (r uint16, c, z, n, v bool) {
	sum := uint32(a) + uint32(b) + uint32(cin)
	r = uint16(sum)
	c = sum > 0xFFFF
	z = r == 0
	n = r&0x8000 != 0
	v = (a&0x8000 == b&0x8000) && (r&0x8000 != a&0x8000)
	return
}

// fetchWord reads the word at PC and advances PC by 2.
func (m *Machine) fetchWord() (uint16, error) {
	w, err := m.load(m.R[isa.PC])
	if err != nil {
		return 0, err
	}
	m.R[isa.PC] += 2
	return w, nil
}

// srcOperand resolves the source operand (register reg, mode as),
// consuming extension words and applying autoincrement. It returns the
// value and, for memory operands, their address.
func (m *Machine) srcOperand(reg, as uint8) (val uint16, err error) {
	if c, ok := isa.ConstGen(reg, as); ok {
		return c, nil
	}
	switch as {
	case isa.AmReg:
		return m.R[reg], nil
	case isa.AmIndexed:
		off, err := m.fetchWord()
		if err != nil {
			return 0, err
		}
		base := m.R[reg]
		if reg == isa.SR { // absolute
			base = 0
		}
		return m.load(base + off)
	case isa.AmIndirect:
		return m.load(m.R[reg])
	case isa.AmIndirectInc:
		if reg == isa.PC { // immediate
			return m.fetchWord()
		}
		v, err := m.load(m.R[reg])
		if err != nil {
			return 0, err
		}
		m.R[reg] += 2
		return v, nil
	}
	return 0, fmt.Errorf("isim: bad addressing mode %d", as)
}

// Step executes one instruction.
func (m *Machine) Step() error {
	if m.Halted {
		return nil
	}
	pc0 := m.R[isa.PC]
	if m.TracePC != nil {
		m.TracePC(pc0)
	}
	w, err := m.fetchWord()
	if err != nil {
		return err
	}
	ins := isa.Decode(w)
	if ins.Format == isa.FmtIllegal {
		return fmt.Errorf("isim: illegal instruction %#04x at %#04x", w, pc0)
	}
	m.Insns++
	m.Cycles += uint64(cyclesOf(ins))
	m.tickWatchdog(cyclesOf(ins))

	switch ins.Format {
	case isa.FmtJump:
		taken := false
		switch ins.Op {
		case isa.JNE:
			taken = !m.flag(isa.FlagZ)
		case isa.JEQ:
			taken = m.flag(isa.FlagZ)
		case isa.JNC:
			taken = !m.flag(isa.FlagC)
		case isa.JC:
			taken = m.flag(isa.FlagC)
		case isa.JN:
			taken = m.flag(isa.FlagN)
		case isa.JGE:
			taken = m.flag(isa.FlagN) == m.flag(isa.FlagV)
		case isa.JL:
			taken = m.flag(isa.FlagN) != m.flag(isa.FlagV)
		case isa.JMP:
			taken = true
		}
		if taken {
			m.R[isa.PC] += uint16(2 * ins.Off)
		}
		return nil

	case isa.FmtII:
		return m.execFmtII(ins)

	case isa.FmtI:
		return m.execFmtI(ins)
	}
	return nil
}

// cyclesOf returns the cycle cost; extension-word presence is already in
// the decoded instruction.
func cyclesOf(ins isa.Instr) int { return ins.Cycles() }

func (m *Machine) tickWatchdog(n int) {
	if m.wdtCtl&soc.WDTHold == 0 {
		m.wdtCount += uint16(n)
	}
}

func (m *Machine) execFmtI(ins isa.Instr) error {
	srcVal, err := m.srcOperand(ins.Src, ins.As)
	if err != nil {
		return err
	}
	// Destination resolution.
	var dstAddr uint16
	var dstVal uint16
	if ins.Ad == 1 {
		off, err := m.fetchWord()
		if err != nil {
			return err
		}
		base := m.R[ins.Dst]
		if ins.Dst == isa.SR { // absolute
			base = 0
		}
		dstAddr = base + off
		if isa.ReadsDst(ins.Op) {
			dstVal, err = m.load(dstAddr)
			if err != nil {
				return err
			}
		}
	} else {
		dstVal = m.R[ins.Dst]
	}

	var res uint16
	write := isa.WritesDst(ins.Op)
	switch ins.Op {
	case isa.MOV:
		res = srcVal
	case isa.ADD:
		var c, z, n, v bool
		res, c, z, n, v = addWithFlags(dstVal, srcVal, 0)
		m.setFlags(c, z, n, v)
	case isa.ADDC:
		cin := uint16(0)
		if m.flag(isa.FlagC) {
			cin = 1
		}
		var c, z, n, v bool
		res, c, z, n, v = addWithFlags(dstVal, srcVal, cin)
		m.setFlags(c, z, n, v)
	case isa.SUB, isa.CMP:
		var c, z, n, v bool
		res, c, z, n, v = addWithFlags(dstVal, ^srcVal, 1)
		m.setFlags(c, z, n, v)
	case isa.SUBC:
		cin := uint16(0)
		if m.flag(isa.FlagC) {
			cin = 1
		}
		var c, z, n, v bool
		res, c, z, n, v = addWithFlags(dstVal, ^srcVal, cin)
		m.setFlags(c, z, n, v)
	case isa.BIT, isa.AND:
		res = srcVal & dstVal
		m.setFlags(res != 0, res == 0, res&0x8000 != 0, false)
	case isa.BIC:
		res = ^srcVal & dstVal
	case isa.BIS:
		res = srcVal | dstVal
	case isa.XOR:
		res = srcVal ^ dstVal
		m.setFlags(res != 0, res == 0, res&0x8000 != 0,
			srcVal&0x8000 != 0 && dstVal&0x8000 != 0)
	default:
		return fmt.Errorf("isim: unhandled op %v", ins.Op)
	}
	if !write {
		return nil
	}
	if ins.Ad == 1 {
		return m.store(dstAddr, res)
	}
	m.R[ins.Dst] = res
	return nil
}

func (m *Machine) execFmtII(ins isa.Instr) error {
	// Operand (in the "dst" field, addressed by As).
	var addr uint16
	var val uint16
	var inMem bool
	var err error
	switch ins.Op {
	case isa.PUSH, isa.CALL:
		val, err = m.srcOperand(ins.Dst, ins.As)
		if err != nil {
			return err
		}
	default:
		if ins.As == isa.AmReg {
			val = m.R[ins.Dst]
		} else {
			inMem = true
			switch ins.As {
			case isa.AmIndexed:
				off, ferr := m.fetchWord()
				if ferr != nil {
					return ferr
				}
				base := m.R[ins.Dst]
				if ins.Dst == isa.SR {
					base = 0
				}
				addr = base + off
			case isa.AmIndirect:
				addr = m.R[ins.Dst]
			case isa.AmIndirectInc:
				addr = m.R[ins.Dst]
				m.R[ins.Dst] += 2
			}
			val, err = m.load(addr)
			if err != nil {
				return err
			}
		}
	}

	writeBack := func(res uint16) error {
		if inMem {
			return m.store(addr, res)
		}
		m.R[ins.Dst] = res
		return nil
	}

	switch ins.Op {
	case isa.RRC:
		cin := uint16(0)
		if m.flag(isa.FlagC) {
			cin = 0x8000
		}
		res := val>>1 | cin
		m.setFlags(val&1 != 0, res == 0, res&0x8000 != 0, false)
		return writeBack(res)
	case isa.RRA:
		res := val>>1 | val&0x8000
		m.setFlags(val&1 != 0, res == 0, res&0x8000 != 0, false)
		return writeBack(res)
	case isa.SWPB:
		return writeBack(val<<8 | val>>8)
	case isa.SXT:
		res := val & 0xFF
		if res&0x80 != 0 {
			res |= 0xFF00
		}
		m.setFlags(res != 0, res == 0, res&0x8000 != 0, false)
		return writeBack(res)
	case isa.PUSH:
		m.R[isa.SP] -= 2
		return m.store(m.R[isa.SP], val)
	case isa.CALL:
		m.R[isa.SP] -= 2
		if err := m.store(m.R[isa.SP], m.R[isa.PC]); err != nil {
			return err
		}
		m.R[isa.PC] = val
		return nil
	}
	return fmt.Errorf("isim: unhandled op %v", ins.Op)
}

// Run executes until halt or maxInsns instructions, whichever first.
func (m *Machine) Run(maxInsns int) error {
	for i := 0; i < maxInsns && !m.Halted; i++ {
		if err := m.Step(); err != nil {
			return err
		}
	}
	if !m.Halted {
		return fmt.Errorf("isim: did not halt within %d instructions", maxInsns)
	}
	return nil
}
