package main

import (
	"expvar"
	"sync"
)

// Operational counters exported on /debug/vars. expvar.Publish (and the
// expvar.New* constructors built on it) panic on duplicate names, and one
// process routinely constructs several servers — tests, and a
// -coordinator with an embedded worker — so every registration here goes
// through an idempotent lookup-or-create: the counters are process-global
// and shared by all servers, and the gauges are registered once, reading
// whichever server most recently called registerMetrics.
var (
	mJobsAccepted  = metricInt("peakpowerd_jobs_accepted")
	mJobsCompleted = metricInt("peakpowerd_jobs_completed")
	mJobsFailed    = metricInt("peakpowerd_jobs_failed")
	mWebhooksOK    = metricInt("peakpowerd_webhooks_delivered")
	mWebhooksFail  = metricInt("peakpowerd_webhooks_failed")
)

var (
	metricsMu  sync.Mutex
	metricsSrv *server
)

// metricInt returns the existing expvar.Int published under name, or
// publishes a fresh one — never panicking on a duplicate.
func metricInt(name string) *expvar.Int {
	if v, ok := expvar.Get(name).(*expvar.Int); ok {
		return v
	}
	return expvar.NewInt(name)
}

// publishGauge publishes f under name unless the name is already taken.
// Callers serialize through metricsMu, closing the check-then-publish
// race.
func publishGauge(name string, f expvar.Func) {
	if expvar.Get(name) == nil {
		expvar.Publish(name, f)
	}
}

// metricsServer returns the server the gauges read, if any.
func metricsServer() *server {
	metricsMu.Lock()
	defer metricsMu.Unlock()
	return metricsSrv
}

// registerMetrics points the /debug/vars gauges at s and publishes them
// if this process has not yet done so. Safe to call once per server,
// any number of servers per process.
func registerMetrics(s *server) {
	metricsMu.Lock()
	defer metricsMu.Unlock()
	metricsSrv = s
	publishGauge("peakpowerd_queue_depth", expvar.Func(func() any {
		if s := metricsServer(); s != nil {
			return s.jobs.stats().QueueDepth
		}
		return 0
	}))
	publishGauge("peakpowerd_in_flight", expvar.Func(func() any {
		if s := metricsServer(); s != nil {
			return s.jobs.stats().InFlight
		}
		return 0
	}))
	publishGauge("peakpowerd_cache", expvar.Func(func() any {
		if s := metricsServer(); s != nil {
			return s.cache.Stats()
		}
		return nil
	}))
	publishGauge("peakpowerd_disk", expvar.Func(func() any {
		if s := metricsServer(); s != nil && s.disk != nil {
			return s.disk.Stats()
		}
		return nil
	}))
	publishGauge("peakpowerd_fleet_tasks_leased", expvar.Func(func() any {
		if s := metricsServer(); s != nil && s.fleet != nil {
			leased, _ := s.fleet.Counters()
			return leased
		}
		return 0
	}))
	publishGauge("peakpowerd_fleet_tasks_reissued", expvar.Func(func() any {
		if s := metricsServer(); s != nil && s.fleet != nil {
			_, reissued := s.fleet.Counters()
			return reissued
		}
		return 0
	}))
}
