package peakpower

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// App names one application for batch analysis. Exactly one of Bench,
// Source, or Image selects the binary (checked in that order).
type App struct {
	// Name labels the application in results and diagnostics. Optional
	// for Bench apps (defaults to the benchmark name); required with
	// Source.
	Name string
	// Bench selects a built-in benchmark by name.
	Bench string
	// Source is ULP430 assembly text to assemble and analyze.
	Source string
	// Image is a pre-assembled binary.
	Image *Image
	// Opts are per-application option overrides (applied after the
	// options passed to AnalyzeAll).
	Opts []Option
}

// AnalyzeAll analyzes a batch of applications through a bounded worker
// pool that shares the analyzer's one-time netlist build — the batch
// form of the paper's multi-programmed workflow (combine the returned
// results with Combine for a co-resident requirement).
//
// The returned slice is aligned with apps: results[i] is app i's result
// or nil if it failed. The error is nil only if every app succeeded;
// otherwise it joins the per-app failures (each wrapping its sentinel
// class) and ctx.Err() when the batch was cut short. Worker count comes
// from WithWorkers.
func (a *Analyzer) AnalyzeAll(ctx context.Context, apps []App, opts ...Option) ([]*Result, error) {
	cfg := a.resolve(opts)
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]*Result, len(apps))
	errs := make([]error, len(apps))

	workers := cfg.workers
	if workers > len(apps) {
		workers = len(apps)
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = a.analyzeApp(ctx, apps[i], opts)
			}
		}()
	}
	fed := 0
feed:
	for i := range apps {
		select {
		case idx <- i:
			fed++
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	var joined []error
	for i, err := range errs {
		if err != nil {
			joined = append(joined, fmt.Errorf("app %d (%s): %w", i, appName(apps[i]), err))
		}
	}
	// Only a batch actually cut short reports the context error; a
	// deadline lapsing after the last app completed is not a failure.
	if fed < len(apps) {
		joined = append(joined, ctx.Err())
	}
	return results, errors.Join(joined...)
}

func appName(app App) string {
	switch {
	case app.Name != "":
		return app.Name
	case app.Bench != "":
		return app.Bench
	case app.Image != nil:
		return app.Image.Name
	default:
		return "?"
	}
}

// analyzeApp resolves one App and runs its analysis. callOpts are the
// batch-level overrides; the app's own Opts come last.
func (a *Analyzer) analyzeApp(ctx context.Context, app App, callOpts []Option) (*Result, error) {
	opts := append(append([]Option{}, callOpts...), app.Opts...)
	switch {
	case app.Bench != "":
		return a.AnalyzeBench(ctx, app.Bench, opts...)
	case app.Source != "":
		name := app.Name
		if name == "" {
			return nil, fmt.Errorf("%w: App.Source requires App.Name", ErrAssemble)
		}
		return a.Analyze(ctx, name, app.Source, opts...)
	case app.Image != nil:
		return a.AnalyzeImage(ctx, app.Image, opts...)
	default:
		return nil, fmt.Errorf("peakpower: empty App (set Bench, Source, or Image)")
	}
}
