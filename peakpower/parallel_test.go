package peakpower

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestExploreWorkersDeterminism is the package-level determinism stress
// suite for parallel exploration: the sealed Report — every byte of its
// canonical JSON, including the content hash — must not depend on the
// worker count. mult and tea8 exercise single-path reductions, adcSample
// and sensorDuty the interrupt-forking trees where work actually
// distributes across workers.
func TestExploreWorkersDeterminism(t *testing.T) {
	a := analyzer(t)
	for _, name := range []string{"mult", "tea8", "adcSample", "sensorDuty"} {
		t.Run(name, func(t *testing.T) {
			marshal := func(workers int) ([]byte, string) {
				t.Helper()
				res, err := a.AnalyzeBench(context.Background(), name, WithExploreWorkers(workers))
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if err := res.VerifyHash(); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				data, err := res.Report.MarshalJSON()
				if err != nil {
					t.Fatal(err)
				}
				return data, res.Hash
			}
			ref, refHash := marshal(1)
			for _, w := range []int{2, 4, 8} {
				got, gotHash := marshal(w)
				if gotHash != refHash {
					t.Fatalf("workers=%d: hash %s differs from sequential %s", w, gotHash, refHash)
				}
				if !bytes.Equal(ref, got) {
					t.Fatalf("workers=%d: sealed report not byte-identical to sequential:\nseq: %.400s\npar: %.400s", w, ref, got)
				}
			}
		})
	}
}

// TestExploreWorkersMatchGolden closes the loop against the pinned wire
// format: a parallel analysis must reproduce the golden report files
// byte for byte — the goldens were generated sequentially, so this is
// determinism across engine generations, not just across runs.
func TestExploreWorkersMatchGolden(t *testing.T) {
	a := analyzer(t)
	for _, name := range goldenBenches {
		t.Run(name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "report_"+name+".golden.json"))
			if err != nil {
				t.Fatalf("%v (regenerate with -update-golden)", err)
			}
			res, err := a.AnalyzeBench(context.Background(), name, WithCOI(4), WithExploreWorkers(4))
			if err != nil {
				t.Fatal(err)
			}
			got := marshalIndented(t, &res.Report)
			if !bytes.Equal(got, want) {
				t.Fatalf("parallel report for %s diverged from the sequentially generated golden file", name)
			}
		})
	}
}

// TestCacheKeyIgnoresExploreWorkers pins the cache-key contract stated
// on WithExploreWorkers: because the worker count cannot change the
// result, it must not partition the cache — a report computed at any
// worker count serves requests at every other.
func TestCacheKeyIgnoresExploreWorkers(t *testing.T) {
	a := analyzer(t)
	img, err := BenchImage("mult")
	if err != nil {
		t.Fatal(err)
	}
	ref := a.cacheKey(img, a.resolve([]Option{WithExploreWorkers(1)}))
	for _, w := range []int{2, 8, 64} {
		if key := a.cacheKey(img, a.resolve([]Option{WithExploreWorkers(w)})); key != ref {
			t.Fatalf("cache key depends on the explore worker count (%d): %s vs %s", w, key, ref)
		}
	}
	// Sanity: the key is not blind to options in general.
	if key := a.cacheKey(img, a.resolve([]Option{WithCOI(3)})); key == ref {
		t.Fatal("cache key ignored an option that changes the result")
	}
}

// TestCacheSharedAcrossWorkerCounts is the end-to-end consequence: an
// entry populated by a parallel analysis is hit by a sequential request
// for the same image and options.
func TestCacheSharedAcrossWorkerCounts(t *testing.T) {
	a := analyzer(t)
	cache := NewCache(4)
	ctx := context.Background()
	first, err := a.AnalyzeBench(ctx, "mult", WithCache(cache), WithExploreWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	second, err := a.AnalyzeBench(ctx, "mult", WithCache(cache), WithExploreWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats after cross-worker-count reuse: hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
	if first.Hash != second.Hash {
		t.Fatalf("cached result hash changed across worker counts: %s vs %s", first.Hash, second.Hash)
	}
}
