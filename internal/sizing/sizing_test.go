package sizing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTables1_1And1_2(t *testing.T) {
	bats := Batteries()
	if len(bats) != 6 || bats[0].Type != "Li-ion" || bats[0].SpecificEnergyJG != 460 {
		t.Fatalf("Table 1.1 wrong: %+v", bats)
	}
	hs := Harvesters()
	if len(hs) != 4 || hs[0].PowerDensityMWCM2 != 100 {
		t.Fatalf("Table 1.2 wrong: %+v", hs)
	}
	// Indoor PV is 1000x weaker than direct sun.
	if hs[1].PowerDensityMWCM2 != 0.1 {
		t.Fatalf("indoor PV density: %v", hs[1])
	}
}

func TestReductionPct(t *testing.T) {
	// 15% lower requirement at full contribution -> 15% smaller harvester.
	if got := ReductionPct(1.0, 100, 85); math.Abs(got-15) > 1e-12 {
		t.Fatalf("got %v", got)
	}
	// Linear in contribution (the structure of Tables 5.1/5.2).
	if got := ReductionPct(0.10, 100, 85); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("got %v", got)
	}
	if ReductionPct(0.5, 0, 10) != 0 {
		t.Fatal("zero baseline must not divide")
	}
}

func TestReductionRowShape(t *testing.T) {
	row := ReductionRow(2.0, 1.7) // 15% lower
	if len(row) != 6 {
		t.Fatalf("want 6 columns, got %d", len(row))
	}
	for i := 1; i < len(row); i++ {
		if row[i] <= row[i-1] {
			t.Fatal("row must increase with contribution")
		}
	}
	if math.Abs(row[5]-15.0) > 1e-9 {
		t.Fatalf("100%% column = %v, want 15", row[5])
	}
	// Paper's Table 5.1 structure: 10% column is a tenth of the 100% one.
	if math.Abs(row[0]-row[5]/10) > 1e-9 {
		t.Fatal("columns must scale linearly")
	}
}

func TestComponentSizing(t *testing.T) {
	sun := Harvesters()[0]
	if a := HarvesterAreaCM2(100, sun); a != 1.0 {
		t.Fatalf("100 mW on direct sun: %v cm²", a)
	}
	li := Batteries()[0]
	if v := BatteryVolumeMM3(1.152, li); math.Abs(v-1.0) > 1e-12 {
		t.Fatalf("1.152 J in Li-ion: %v mm³", v)
	}
	if m := BatteryMassG(460, li); math.Abs(m-1.0) > 1e-12 {
		t.Fatalf("460 J in Li-ion: %v g", m)
	}
}

func TestReferenceNodeSavings(t *testing.T) {
	n := Reference()
	if n.HarvesterAreaCM2 != 32.6 || n.BatteryVolumeMM3 != 6.95 {
		t.Fatalf("reference node: %+v", n)
	}
	// The paper's worked example: ~15% peak-power reduction vs GB-input
	// profiling gives 4.87 cm² of the 32.6 cm² harvester back.
	saving := n.HarvesterSavingCM2(1.0, 1.0-0.1494)
	if math.Abs(saving-4.87) > 0.01 {
		t.Fatalf("harvester saving %v cm², want ~4.87", saving)
	}
	bat := n.BatterySavingMM3(1.0, 1.0-0.0604)
	if bat <= 0 || bat > n.BatteryVolumeMM3 {
		t.Fatalf("battery saving %v mm³", bat)
	}
}

func TestMicroarchTable(t *testing.T) {
	rows := MicroarchTable()
	if len(rows) != 8 {
		t.Fatalf("Table 6.1 has 8 rows, got %d", len(rows))
	}
	// MSP430: no branch predictor, no cache (the fit for the technique).
	last := rows[len(rows)-1]
	if last.Processor != "TI MSP430" || last.BranchPredictor || last.Cache {
		t.Fatalf("MSP430 row wrong: %+v", last)
	}
	// Quark is the complex outlier.
	for _, r := range rows {
		if r.Processor == "Intel Quark-D1000" && (!r.BranchPredictor || !r.Cache) {
			t.Fatal("Quark row wrong")
		}
	}
}

// Property: reductions are bounded by the contribution percentage and
// positive exactly when our requirement beats the baseline.
func TestReductionProperties(t *testing.T) {
	f := func(c8, base16, ours16 uint16) bool {
		c := float64(c8%101) / 100
		base := 0.1 + float64(base16%1000)/100
		ours := 0.1 + float64(ours16%1000)/100
		got := ReductionPct(c, base, ours)
		if ours < base && got < 0 {
			return false
		}
		if ours > base && got > 0 {
			return false
		}
		return math.Abs(got) <= c*100+1e-9 || ours > 2*base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
