package ulp430

import (
	"repro/internal/bench"
	"repro/internal/cell"
	"repro/internal/gsim"
	"repro/internal/isa"
	"repro/internal/netlist"
)

// DesignVariant is one analyzable design point of the ULP430: the gate-level
// netlist paired with a characterized library, operating clock, exploration
// budgets, and a benchmark suite. It implements the public peakpower.Target
// interface (structurally — this package cannot import peakpower), so every
// variant plugs into the analyzer, the report pipeline, and the analysis
// service unchanged. The standard core is Standard(); internal/sizing and
// internal/opt derive the Chapter 5 design-optimization variants from it.
type DesignVariant struct {
	name      string
	desc      string
	lib       *cell.Library
	clockHz   float64
	maxCycles int
	maxNodes  int
	suite     []*bench.Benchmark
}

// NewDesignVariant describes a ULP430 design point. A nil lib defaults to
// ULP65; a nil suite defaults to the full Table 4.1 benchmark set; budgets
// default to the standard exploration limits.
func NewDesignVariant(name, desc string, lib *cell.Library, clockHz float64) *DesignVariant {
	if lib == nil {
		lib = cell.ULP65()
	}
	return &DesignVariant{
		name:      name,
		desc:      desc,
		lib:       lib,
		clockHz:   clockHz,
		maxCycles: 2_000_000,
		maxNodes:  10_000,
	}
}

// WithBudgets overrides the variant's default exploration budgets and
// returns the variant for chaining.
func (v *DesignVariant) WithBudgets(maxCycles, maxNodes int) *DesignVariant {
	if maxCycles > 0 {
		v.maxCycles = maxCycles
	}
	if maxNodes > 0 {
		v.maxNodes = maxNodes
	}
	return v
}

// WithSuite overrides the variant's benchmark set and returns the variant
// for chaining.
func (v *DesignVariant) WithSuite(suite []*bench.Benchmark) *DesignVariant {
	v.suite = suite
	return v
}

// Name returns the registry name of the design point (e.g. "ulp430").
func (v *DesignVariant) Name() string { return v.name }

// Description summarizes the design point for target listings.
func (v *DesignVariant) Description() string { return v.desc }

// Build constructs the variant's gate-level netlist.
func (v *DesignVariant) Build() (*netlist.Netlist, error) { return BuildCPU() }

// Library returns the variant's default standard-cell library.
func (v *DesignVariant) Library() *cell.Library { return v.lib }

// ClockHz returns the variant's default operating clock.
func (v *DesignVariant) ClockHz() float64 { return v.clockHz }

// Budgets returns the variant's default exploration budgets.
func (v *DesignVariant) Budgets() (maxCycles, maxNodes int) {
	return v.maxCycles, v.maxNodes
}

// Benchmarks returns the variant's benchmark suite: the paper suite plus
// the interrupt-driven ISR suite (unless a custom suite was configured).
func (v *DesignVariant) Benchmarks() []*bench.Benchmark {
	if v.suite != nil {
		return v.suite
	}
	return bench.Full()
}

// NewSystem couples the built netlist to behavioral memory under the chosen
// gate engine, library, and input mode.
func (v *DesignVariant) NewSystem(engine gsim.Engine, n *netlist.Netlist, lib *cell.Library, img *isa.Image, mode InputMode, inputs []uint16) (*System, error) {
	return NewSystemEngine(engine, n, lib, img, mode, inputs)
}

// Standard returns the baseline ULP430 design point: ULP65 cells at the
// paper's 1 V / 100 MHz operating point with the full Table 4.1 suite.
func Standard() *DesignVariant {
	return NewDesignVariant("ulp430",
		"baseline ULP430 core, ULP65 cells @ 100 MHz (the paper's openMSP430-class operating point)",
		cell.ULP65(), 100e6)
}
