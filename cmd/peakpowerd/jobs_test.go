package main

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jobstore"
	"repro/peakpower"
)

func postJob(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [4096]byte
	n, _ := resp.Body.Read(buf[:])
	return resp.StatusCode, resp.Header, buf[:n]
}

func pollJob(t *testing.T, url, id string, deadline time.Duration) jobStatusResponse {
	t.Helper()
	var st jobStatusResponse
	stop := time.Now().Add(deadline)
	for {
		code, body := get(t, url+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("poll %s: %d %s", id, code, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("poll %s: %v (%s)", id, err, body)
		}
		if st.State == string(jobstore.StateDone) || st.State == string(jobstore.StateFailed) {
			return st
		}
		if time.Now().After(stop) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobLifecycle: submit → 202 + poll URL → terminal state carrying the
// Report, bit-identical to the synchronous endpoint's response for the
// same request.
func TestJobLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)
	reqBody := `{"bench":"mult"}`

	code, syncBody := post(t, ts.URL+"/v1/analyze", reqBody)
	if code != http.StatusOK {
		t.Fatalf("sync analyze: %d %s", code, syncBody)
	}

	code, _, body := postJob(t, ts.URL, reqBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var acc struct {
		ID        string `json:"id"`
		State     string `json:"state"`
		StatusURL string `json:"status_url"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.ID == "" || acc.State != "queued" || acc.StatusURL != "/v1/jobs/"+acc.ID {
		t.Fatalf("accepted: %+v", acc)
	}

	st := pollJob(t, ts.URL, acc.ID, 30*time.Second)
	if st.State != "done" || st.Error != "" {
		t.Fatalf("job: %+v", st)
	}
	if string(st.Report) != string(syncBody) {
		t.Fatalf("async report differs from sync:\nasync: %.200s\nsync:  %.200s", st.Report, syncBody)
	}
	if st.FinishedAt == nil || st.Attempts != 1 {
		t.Fatalf("job metadata: %+v", st)
	}

	if code, _ := get(t, ts.URL+"/v1/jobs/nosuchjob"); code != http.StatusNotFound {
		t.Fatalf("unknown job: want 404, got %d", code)
	}
}

// TestJobSubmitValidation: malformed submissions are rejected at the door
// (400), never accepted into the queue to fail later.
func TestJobSubmitValidation(t *testing.T) {
	ts, srv := newTestServer(t)
	for _, body := range []string{
		`not json`,
		`{}`,
		`{"bench":"mult","source":"x"}`,
		`{"bench":"mult","options":{"engine":"quantum"}}`,
	} {
		if code, _, resp := postJob(t, ts.URL, body); code != http.StatusBadRequest {
			t.Errorf("submit %q: %d %s", body, code, resp)
		}
	}
	if st := srv.jobs.stats(); st.QueueDepth != 0 {
		t.Fatalf("rejected submissions queued: %+v", st)
	}
}

// TestJobBackpressure429Within100ms is the saturation contract: with the
// pool busy and the queue full, a submission is answered 429 +
// Retry-After within the backpressure deadline — intake never blocks
// behind the workers.
func TestJobBackpressure429Within100ms(t *testing.T) {
	ts, srv := newTestServerCfg(t, serverConfig{cacheSize: 4, timeout: time.Minute, workers: 1, queueCap: 2})
	block := make(chan struct{})
	defer close(block)
	srv.jobs.run = func(ctx context.Context, j *jobstore.Job) (json.RawMessage, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return json.RawMessage(`{}`), nil
	}

	// One job occupies the worker, two fill the queue (allow a few tries
	// for the worker to pick up the first).
	accepted := 0
	for i := 0; i < 20 && accepted < 3; i++ {
		code, _, body := postJob(t, ts.URL, `{"bench":"mult"}`)
		switch code {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			time.Sleep(2 * time.Millisecond)
		default:
			t.Fatalf("submit %d: %d %s", i, code, body)
		}
	}
	if accepted != 3 {
		t.Fatalf("accepted %d jobs, want 3", accepted)
	}
	// Wait until the worker has dequeued one so the queue depth is stable.
	for i := 0; ; i++ {
		if st := srv.jobs.stats(); st.InFlight == 1 && st.QueueDepth == 2 {
			break
		}
		if i > 1000 {
			t.Fatalf("runner never settled: %+v", srv.jobs.stats())
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	code, hdr, body := postJob(t, ts.URL, `{"bench":"mult"}`)
	elapsed := time.Since(start)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: %d %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("backpressure took %v, want <100ms", elapsed)
	}

	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("429 body not structured: %s", body)
	}
}

// TestJobPanicIsolation: a panicking analysis fails its own job with a
// diagnosable error; the worker pool survives and runs the next job.
func TestJobPanicIsolation(t *testing.T) {
	ts, srv := newTestServerCfg(t, serverConfig{cacheSize: 4, timeout: time.Minute, workers: 1, queueCap: 8})
	srv.jobs.run = func(ctx context.Context, j *jobstore.Job) (json.RawMessage, error) {
		var req analyzeRequest
		if err := json.Unmarshal(j.Request, &req); err != nil {
			return nil, err
		}
		if req.Bench == "boom" {
			panic("synthetic fault")
		}
		return json.RawMessage(`{"ok":true}`), nil
	}

	code, _, body := postJob(t, ts.URL, `{"bench":"boom"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	st := pollJob(t, ts.URL, acc.ID, 5*time.Second)
	if st.State != "failed" || !strings.Contains(st.Error, "panicked") {
		t.Fatalf("panicking job: %+v", st)
	}

	code, _, body = postJob(t, ts.URL, `{"bench":"mult"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit after panic: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if st := pollJob(t, ts.URL, acc.ID, 5*time.Second); st.State != "done" {
		t.Fatalf("worker did not survive the panic: %+v", st)
	}
}

// TestJobDurableRestartRecovery is the crash-recovery contract at the
// service level: jobs accepted by one server life (including one caught
// mid-run) are re-enqueued and completed by the next life on the same
// data directory, and their Reports match a clean run bit for bit.
func TestJobDurableRestartRecovery(t *testing.T) {
	dataDir := t.TempDir()
	reqBody := `{"bench":"mult"}`

	// Reference: a clean synchronous analysis on an independent server.
	tsRef, _ := newTestServer(t)
	code, want := post(t, tsRef.URL+"/v1/analyze", reqBody)
	if code != http.StatusOK {
		t.Fatalf("reference analyze: %d %s", code, want)
	}

	// Life 1: accept two jobs but never let them finish — one stuck
	// running, one still queued — then "crash" (drain with a zero budget;
	// the canceled in-flight job persists as queued).
	ts1, srv1 := newTestServerCfg(t, serverConfig{
		cacheSize: 4, timeout: time.Minute, workers: 1, queueCap: 8, dataDir: dataDir,
	})
	block := make(chan struct{})
	var blockOnce sync.Once
	srv1.jobs.run = func(ctx context.Context, j *jobstore.Job) (json.RawMessage, error) {
		blockOnce.Do(func() { close(block) })
		<-ctx.Done()
		return nil, ctx.Err()
	}
	var ids []string
	for i := 0; i < 2; i++ {
		code, _, body := postJob(t, ts1.URL, reqBody)
		if code != http.StatusAccepted {
			t.Fatalf("life-1 submit %d: %d %s", i, code, body)
		}
		var acc struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &acc); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, acc.ID)
	}
	<-block // the first job is mid-run
	ts1.Close()
	srv1.jobs.drain(0)

	// Life 2: same data directory, the real analysis path.
	ts2, _ := newTestServerCfg(t, serverConfig{
		cacheSize: 4, timeout: time.Minute, workers: 2, queueCap: 8, dataDir: dataDir,
	})
	retried := false
	for _, id := range ids {
		st := pollJob(t, ts2.URL, id, 30*time.Second)
		if st.State != "done" {
			t.Fatalf("recovered job %s: %+v", id, st)
		}
		if string(st.Report) != string(want) {
			t.Fatalf("recovered job %s report differs from clean run:\ngot:  %.200s\nwant: %.200s", id, st.Report, want)
		}
		retried = retried || st.Attempts >= 2
	}
	if !retried {
		t.Fatal("no job records a second attempt — the mid-run job was not re-executed")
	}

	// Life 3: terminal results themselves survive a further restart.
	ts3, _ := newTestServerCfg(t, serverConfig{
		cacheSize: 4, timeout: time.Minute, workers: 1, queueCap: 8, dataDir: dataDir,
	})
	for _, id := range ids {
		code, body := get(t, ts3.URL+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("life-3 poll %s: %d %s", id, code, body)
		}
		var st jobStatusResponse
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State != "done" || string(st.Report) != string(want) {
			t.Fatalf("life-3 job %s: %+v", id, st)
		}
	}
}

// TestReadyzReportsQueueAndDisk: the readiness probe exposes queue depth,
// in-flight count, durability, and the disk tier; a draining server
// answers 503 and refuses new jobs with Retry-After.
func TestReadyzReportsQueueAndDisk(t *testing.T) {
	ts, srv := newTestServerCfg(t, serverConfig{
		cacheSize: 4, timeout: time.Minute, workers: 1, queueCap: 8, dataDir: t.TempDir(),
	})
	code, body := get(t, ts.URL+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz: %d %s", code, body)
	}
	var ready struct {
		Status string                    `json:"status"`
		Jobs   runnerStats               `json:"jobs"`
		Disk   *peakpower.DiskStoreStats `json:"disk"`
	}
	if err := json.Unmarshal(body, &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "ok" || !ready.Jobs.Durable || ready.Jobs.QueueCapacity != 8 || ready.Disk == nil {
		t.Fatalf("readyz body: %+v (%s)", ready, body)
	}

	srv.jobs.drain(time.Second)
	code, body = get(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: %d %s", code, body)
	}
	code, hdr, body := postJob(t, ts.URL, `{"bench":"mult"}`)
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("draining submit: %d (Retry-After %q) %s", code, hdr.Get("Retry-After"), body)
	}
}
