package hwmeas

import (
	"math"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/netlist"
	"repro/internal/ulp430"
)

var (
	rigOnce sync.Once
	rigNet  *netlist.Netlist
)

func sharedRig(t *testing.T) *Rig {
	t.Helper()
	rigOnce.Do(func() {
		n, err := ulp430.BuildCPU()
		if err != nil {
			panic(err)
		}
		rigNet = n
	})
	rig, err := NewRig(rigNet)
	if err != nil {
		t.Fatal(err)
	}
	return rig
}

func TestRigOperatingPoint(t *testing.T) {
	rig := sharedRig(t)
	if rig.Model.ClockHz != 8e6 {
		t.Fatalf("clock %v, want 8 MHz", rig.Model.ClockHz)
	}
	if rig.Model.Lib.FeatureNM != 130 {
		t.Fatalf("process %d nm, want 130", rig.Model.Lib.FeatureNM)
	}
	if rig.RatedPeakMW <= 0 {
		t.Fatal("rated peak missing")
	}
}

func TestMeasureBasics(t *testing.T) {
	rig := sharedRig(t)
	m, err := rig.Measure(bench.ByName("mult"), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.PeakMW <= 0 || m.AvgMW <= 0 || m.PeakMW < m.AvgMW {
		t.Fatalf("implausible measurement: %+v", m)
	}
	if m.Cycles == 0 || len(m.TraceMW) != m.Cycles {
		t.Fatalf("trace length wrong")
	}
	if math.Abs(m.NPEJPerCycle-m.EnergyJ/float64(m.Cycles)) > 1e-18 {
		t.Fatal("NPE inconsistent")
	}
	// The measured peak sits well below the rated figure (the paper's
	// observation that datasheet ratings over-provision).
	if m.PeakMW >= rig.RatedPeakMW {
		t.Fatalf("measured %.3f mW not below rated %.3f mW", m.PeakMW, rig.RatedPeakMW)
	}
}

func TestRunToRunVariationUnder2Pct(t *testing.T) {
	rig := sharedRig(t)
	b := bench.ByName("tea8")
	m1, err := rig.Measure(b, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := rig.Measure(b, 5, 200) // same inputs, different noise
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(m1.PeakMW-m2.PeakMW) / m1.PeakMW
	if rel > 0.02 {
		t.Fatalf("run-to-run variation %.2f%% exceeds 2%%", rel*100)
	}
	if m1.PeakMW == m2.PeakMW {
		t.Fatal("noise model inactive")
	}
}

func TestInputVariationVisible(t *testing.T) {
	// Figure 2.2: input-induced peak variation for data-dependent
	// benchmarks.
	rig := sharedRig(t)
	sw, err := rig.Sweep(bench.ByName("div"), 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Runs != 6 {
		t.Fatalf("runs=%d", sw.Runs)
	}
	if sw.MaxPeakMW <= sw.MinPeakMW {
		t.Fatal("input sweep should show peak-power variation")
	}
	if sw.MeanPeakMW < sw.MinPeakMW || sw.MeanPeakMW > sw.MaxPeakMW {
		t.Fatal("mean outside range")
	}
	if sw.MaxNPE < sw.MinNPE {
		t.Fatal("NPE range inverted")
	}
}

func TestPeaksDifferAcrossApplications(t *testing.T) {
	rig := sharedRig(t)
	peaks := map[string]float64{}
	for _, name := range []string{"mult", "tea8", "tHold"} {
		sw, err := rig.Sweep(bench.ByName(name), 3, 9)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		peaks[name] = sw.MeanPeakMW
	}
	// The multiplier-heavy benchmark must out-peak the ALU-only ones
	// (Figure 2.2's application-specificity).
	if peaks["mult"] <= peaks["tHold"] {
		t.Errorf("mult peak %.3f should exceed tHold %.3f", peaks["mult"], peaks["tHold"])
	}
}
