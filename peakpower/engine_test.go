package peakpower

import (
	"context"
	"math"
	"testing"

	"repro/internal/bench"
)

// relClose reports |a-b| within rel of scale max(|a|,|b|). The two
// engines accumulate per-cycle energies in different cell orders, so
// bounds may differ by float association — nothing more.
func relClose(a, b, rel float64) bool {
	if a == b {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*m
}

// TestEnginesAgreeOnBenchmarkSuite is the acceptance-level differential
// test: every Table 4.1 benchmark analyzed by both the packed engine
// and the scalar oracle must produce the same exploration (cycles,
// nodes, paths — exact), the same toggle set (exact), and the same peak
// power / peak energy / NPE bounds (to float association).
func TestEnginesAgreeOnBenchmarkSuite(t *testing.T) {
	names := bench.Names()
	if testing.Short() {
		names = []string{"mult", "tHold", "binSearch", "tea8"}
	}
	a, err := New()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			packed, err := a.AnalyzeBench(context.Background(), name, WithEngine(EnginePacked))
			if err != nil {
				t.Fatal(err)
			}
			scalar, err := a.AnalyzeBench(context.Background(), name, WithEngine(EngineScalar))
			if err != nil {
				t.Fatal(err)
			}
			if packed.Engine != "packed" || scalar.Engine != "scalar" {
				t.Fatalf("engine labels: %q / %q", packed.Engine, scalar.Engine)
			}
			if packed.SimCycles != scalar.SimCycles || packed.Nodes != scalar.Nodes || packed.Paths != scalar.Paths {
				t.Fatalf("exploration diverged: packed %d cycles/%d nodes/%d paths, scalar %d/%d/%d",
					packed.SimCycles, packed.Nodes, packed.Paths,
					scalar.SimCycles, scalar.Nodes, scalar.Paths)
			}
			if !relClose(packed.PeakPowerMW, scalar.PeakPowerMW, 1e-9) {
				t.Fatalf("peak power: packed %v, scalar %v", packed.PeakPowerMW, scalar.PeakPowerMW)
			}
			if !relClose(packed.PeakEnergyJ, scalar.PeakEnergyJ, 1e-9) {
				t.Fatalf("peak energy: packed %v, scalar %v", packed.PeakEnergyJ, scalar.PeakEnergyJ)
			}
			if !relClose(packed.NPEJPerCycle, scalar.NPEJPerCycle, 1e-9) {
				t.Fatalf("NPE: packed %v, scalar %v", packed.NPEJPerCycle, scalar.NPEJPerCycle)
			}
			if packed.BoundingCycles != scalar.BoundingCycles {
				t.Fatalf("bounding cycles: packed %v, scalar %v", packed.BoundingCycles, scalar.BoundingCycles)
			}
			if len(packed.UnionActive) != len(scalar.UnionActive) {
				t.Fatal("toggle-set lengths differ")
			}
			for ci := range packed.UnionActive {
				if packed.UnionActive[ci] != scalar.UnionActive[ci] {
					t.Fatalf("toggle set diverged at cell %d", ci)
				}
			}
			if len(packed.PeakTrace) != len(scalar.PeakTrace) {
				t.Fatalf("peak trace lengths: %d vs %d", len(packed.PeakTrace), len(scalar.PeakTrace))
			}
			for i := range packed.PeakTrace {
				if !relClose(packed.PeakTrace[i], scalar.PeakTrace[i], 1e-9) {
					t.Fatalf("trace cycle %d: packed %v, scalar %v", i, packed.PeakTrace[i], scalar.PeakTrace[i])
				}
			}
			if packed.Best.State != scalar.Best.State || packed.Best.FetchAddr != scalar.Best.FetchAddr {
				t.Fatalf("peak attribution diverged: packed %+v, scalar %+v", packed.Best, scalar.Best)
			}
		})
	}
}

// TestEnginesAgreeOnConcreteRun checks the input-based profiling path
// through both engines.
func TestEnginesAgreeOnConcreteRun(t *testing.T) {
	a, err := New()
	if err != nil {
		t.Fatal(err)
	}
	b, img, err := benchImage("mult")
	if err != nil {
		t.Fatal(err)
	}
	inputs := []uint16{3, 5, 0xFFFF, 2, 1, 0, 7, 9}
	packed, err := a.RunConcrete(context.Background(), img, inputs, nil, 2*b.MaxCycles, WithEngine(EnginePacked))
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := a.RunConcrete(context.Background(), img, inputs, nil, 2*b.MaxCycles, WithEngine(EngineScalar))
	if err != nil {
		t.Fatal(err)
	}
	if len(packed.Trace) != len(scalar.Trace) {
		t.Fatalf("trace lengths: %d vs %d", len(packed.Trace), len(scalar.Trace))
	}
	for i := range packed.Trace {
		if !relClose(packed.Trace[i], scalar.Trace[i], 1e-9) {
			t.Fatalf("cycle %d: packed %v, scalar %v", i, packed.Trace[i], scalar.Trace[i])
		}
	}
	if !relClose(packed.PeakMW, scalar.PeakMW, 1e-9) {
		t.Fatalf("peak: packed %v, scalar %v", packed.PeakMW, scalar.PeakMW)
	}
}
