package symx

import (
	"sync"
	"testing"

	"repro/internal/cell"
	"repro/internal/isa"
	"repro/internal/netlist"
	"repro/internal/periph"
	"repro/internal/ulp430"
)

var (
	cpuOnce sync.Once
	cpuNet  *netlist.Netlist
)

func sharedCPU(t *testing.T) *netlist.Netlist {
	t.Helper()
	cpuOnce.Do(func() {
		n, err := ulp430.BuildCPU()
		if err != nil {
			t.Fatalf("BuildCPU: %v", err)
		}
		cpuNet = n
	})
	return cpuNet
}

// countSink records one int per cycle (the architectural PC when known).
type countSink struct {
	pcs []uint16
}

func (c *countSink) OnCycle(sys *ulp430.System) {
	pc, _ := sys.PC()
	c.pcs = append(c.pcs, pc)
}
func (c *countSink) Pos() int       { return len(c.pcs) }
func (c *countSink) Rewind(pos int) { c.pcs = c.pcs[:pos] }
func (c *countSink) Segment(from int) interface{} {
	return append([]uint16(nil), c.pcs[from:]...)
}

func explore(t *testing.T, src string, opts Options) (*Tree, *countSink) {
	t.Helper()
	img, err := isa.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	sys, err := ulp430.NewSystem(sharedCPU(t), cell.ULP65(), img, ulp430.SymbolicInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sink := &countSink{}
	tree, err := Explore(sys, sink, opts)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	return tree, sink
}

const haltSeq = `
    mov #1, &0x0126
spin: jmp spin
`

func TestStraightLineNoFork(t *testing.T) {
	tree, _ := explore(t, `
.org 0xf000
.entry main
main:
    mov #3, r4
    add #4, r4
`+haltSeq, Options{})
	if len(tree.Nodes) != 1 || tree.Root.Kind != KindEnd {
		t.Fatalf("nodes=%d kind=%v", len(tree.Nodes), tree.Root.Kind)
	}
	if tree.Paths != 1 {
		t.Fatalf("paths=%d", tree.Paths)
	}
	if tree.Root.Len == 0 || tree.Root.Len != tree.Cycles {
		t.Fatalf("len=%d cycles=%d", tree.Root.Len, tree.Cycles)
	}
}

func TestSingleInputBranchForksTwoPaths(t *testing.T) {
	tree, _ := explore(t, `
.org 0x0200
v: .input 1
.org 0xf000
.entry main
main:
    mov &v, r4
    cmp #5, r4
    jeq yes
    mov #111, r5
    jmp end
yes:
    mov #222, r5
end:
`+haltSeq, Options{})
	if tree.Paths != 2 {
		t.Fatalf("paths=%d", tree.Paths)
	}
	if tree.Root.Kind != KindBranch {
		t.Fatalf("root kind %v", tree.Root.Kind)
	}
	if tree.Root.Taken == nil || tree.Root.NotTaken == nil {
		t.Fatal("branch children missing")
	}
	if tree.Root.Taken.Kind != KindEnd || tree.Root.NotTaken.Kind != KindEnd {
		t.Fatalf("child kinds %v %v", tree.Root.Taken.Kind, tree.Root.NotTaken.Kind)
	}
	if tree.Root.BranchPC == 0 {
		t.Fatal("branch PC not recorded")
	}
	// Children paths have different lengths (different code executed).
	if tree.Root.Taken.Len == tree.Root.NotTaken.Len {
		t.Log("note: taken/not-taken lengths equal (acceptable but unexpected)")
	}
}

func TestInputWaitLoopMerges(t *testing.T) {
	// tHold-style: wait for port input to exceed threshold. The
	// not-exceeded path returns to an identical processor state, so the
	// second encounter of the branch merges instead of looping forever.
	tree, _ := explore(t, `
.org 0xf000
.entry main
main:
    mov #0x0080, &0x0120  ; hold watchdog (standard MSP430 practice);
                          ; its free-running counter would otherwise make
                          ; every loop iteration a distinct state
wait:
    mov &0x0122, r4   ; P1IN read: X
    cmp #100, r4
    jl wait           ; loop while r4 < 100
    mov #1, r5
`+haltSeq, Options{})
	if tree.CountKind(KindMerge) == 0 {
		t.Fatalf("expected a merge node; kinds: branch=%d end=%d merge=%d",
			tree.CountKind(KindBranch), tree.CountKind(KindEnd), tree.CountKind(KindMerge))
	}
	if tree.CountKind(KindEnd) == 0 {
		t.Fatal("expected an end node (threshold-exceeded path)")
	}
	// The merge must point back to an explored branch node.
	var merge *Node
	tree.Walk(func(n *Node) {
		if n.Kind == KindMerge {
			merge = n
		}
	})
	if merge.MergeTo == nil || merge.MergeTo.Kind != KindBranch {
		t.Fatal("merge target wrong")
	}
}

func TestCountedInputLoopForksPerIteration(t *testing.T) {
	// Loop over 3 input words, branching on each value: 2^3 leaf paths
	// (with shared prefixes).
	tree, _ := explore(t, `
.org 0x0200
vals: .input 3
cnt:  .space 1
.org 0xf000
.entry main
main:
    mov #vals, r6
    mov #3, r7
    clr r8
lp: mov @r6+, r4
    cmp #50, r4
    jl small
    inc r8
small:
    dec r7
    jnz lp
    mov r8, &cnt
`+haltSeq, Options{})
	// Iterations 1 and 2 fork fully (1+2 branch nodes). At iteration 3
	// the two orderings that produced r8=1 arrive in identical states, so
	// one of them merges: 3 distinct branch states + 1 merge, and the six
	// distinct (iteration-3 branch, outcome) suffixes halt.
	if got := tree.CountKind(KindBranch); got != 6 {
		t.Fatalf("branch nodes = %d, want 6", got)
	}
	if got := tree.CountKind(KindMerge); got != 1 {
		t.Fatalf("merge nodes = %d, want 1", got)
	}
	if tree.Paths != 7 {
		t.Fatalf("paths = %d, want 7", tree.Paths)
	}
}

func TestStateMergingCollapsesEquivalentPaths(t *testing.T) {
	// Two branches whose both outcomes rejoin with identical state: the
	// second branch is encountered in the same state on both paths of
	// the first → one merge.
	tree, _ := explore(t, `
.org 0x0200
v: .input 1
.org 0xf000
.entry main
main:
    mov &v, r4
    cmp #5, r4
    jeq j1           ; fork 1
j1: ; both outcomes land here with identical state
    cmp #9, r4
    jeq j2           ; fork 2: state same on both paths -> merge
    mov #1, r5
j2:
`+haltSeq, Options{})
	if got := tree.CountKind(KindMerge); got != 1 {
		t.Fatalf("merge nodes = %d, want 1 (kinds: branch=%d end=%d)",
			got, tree.CountKind(KindBranch), tree.CountKind(KindEnd))
	}
}

func TestDeterminism(t *testing.T) {
	src := `
.org 0x0200
vals: .input 2
.org 0xf000
.entry main
main:
    mov &vals, r4
    cmp #1, r4
    jeq a
a:  mov &vals+2, r5
    cmp #2, r5
    jl b
b:
` + haltSeq
	t1, s1 := explore(t, src, Options{})
	t2, s2 := explore(t, src, Options{})
	if len(t1.Nodes) != len(t2.Nodes) || t1.Paths != t2.Paths || t1.Cycles != t2.Cycles {
		t.Fatalf("nondeterministic: %d/%d/%d vs %d/%d/%d",
			len(t1.Nodes), t1.Paths, t1.Cycles, len(t2.Nodes), t2.Paths, t2.Cycles)
	}
	for i := range t1.Nodes {
		if t1.Nodes[i].Len != t2.Nodes[i].Len || t1.Nodes[i].Kind != t2.Nodes[i].Kind {
			t.Fatalf("node %d differs", i)
		}
	}
	_ = s1
	_ = s2
}

func TestSegmentPayloads(t *testing.T) {
	tree, _ := explore(t, `
.org 0x0200
v: .input 1
.org 0xf000
.entry main
main:
    mov &v, r4
    cmp #5, r4
    jeq yes
    mov #1, r5
    jmp end
yes:
    mov #2, r5
end:
`+haltSeq, Options{})
	tree.Walk(func(n *Node) {
		pcs, ok := n.Data.([]uint16)
		if !ok {
			t.Fatalf("node %d payload type %T", n.ID, n.Data)
		}
		if len(pcs) != n.Len {
			t.Fatalf("node %d payload len %d != Len %d", n.ID, len(pcs), n.Len)
		}
	})
}

func TestMaxCyclesGuard(t *testing.T) {
	img, err := isa.Assemble("t", `
.org 0xf000
.entry main
main: jmp main
`)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ulp430.NewSystem(sharedCPU(t), cell.ULP65(), img, ulp430.SymbolicInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Explore(sys, &countSink{}, Options{MaxCycles: 500}); err == nil {
		t.Fatal("expected cycle-limit error")
	}
}

func TestComputedBranchTargetRejected(t *testing.T) {
	img, err := isa.Assemble("t", `
.org 0x0200
v: .input 1
.org 0xf000
.entry main
main:
    mov &v, r4
    br r4            ; PC <- X
`+haltSeq)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ulp430.NewSystem(sharedCPU(t), cell.ULP65(), img, ulp430.SymbolicInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Explore(sys, &countSink{}, Options{MaxCycles: 5000}); err == nil {
		t.Fatal("expected PC-X error")
	}
}

// exploreIRQ is explore with the peripheral bus attached: the program
// runs under symbolic inputs with the given arrival window.
func exploreIRQ(t *testing.T, src string, cfg periph.Config, opts Options) *Tree {
	t.Helper()
	img, err := isa.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	sys, err := ulp430.NewSystem(sharedCPU(t), cell.ULP65(), img, ulp430.SymbolicInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableInterrupts(cfg)
	tree, err := Explore(sys, &countSink{}, opts)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	return tree
}

const irqIdleProg = `
.org 0xf000
.entry main
main:
    mov #0x0A00, r1
    mov #0x0080, &0x0120
    clr r10
    mov #3, &0x0150       ; start an ADC conversion
    eint
idle:
    tst r10
    jz  idle
    dint
` + haltSeq + `
timer_isr:
    reti
adc_isr:
    mov &0x0154, r11
    mov #1, r10
    reti
.org 0xfff8
.word timer_isr
.word adc_isr
`

// TestIRQWindowForkCount is the fork-accounting sanity check: a symbolic
// arrival window must fork at least once and at most once per cycle of
// the window, IRQForks must agree with a manual walk of the tree, and
// with no merges in the idle loop every fork contributes exactly one
// extra path (delivered-here vs not-yet chain).
func TestIRQWindowForkCount(t *testing.T) {
	const minLat, maxLat = 6, 14
	tree := exploreIRQ(t, irqIdleProg, periph.Config{MinLatency: minLat, MaxLatency: maxLat}, Options{})

	forks := tree.IRQForks()
	if forks == 0 {
		t.Fatal("symbolic arrival window produced no IRQ forks")
	}
	if window := maxLat - minLat + 1; forks > window {
		t.Fatalf("%d IRQ forks exceed the %d-cycle arrival window", forks, window)
	}
	manual := 0
	for _, n := range tree.Nodes {
		if n.Kind == KindBranch && n.IRQ {
			manual++
			if n.Taken == nil || n.NotTaken == nil {
				t.Fatal("IRQ fork node missing a child")
			}
		}
	}
	if manual != forks {
		t.Fatalf("IRQForks() = %d but the tree holds %d IRQ branch nodes", forks, manual)
	}
	if tree.Paths != forks+1 {
		t.Fatalf("paths = %d, want forks+1 = %d (one arrival cycle per fork plus the window-end delivery)",
			tree.Paths, forks+1)
	}
}

// TestIRQWindowWidthGrowsForks pins the monotone relation between the
// arrival window and exploration size: a wider window can only add
// arrival interleavings.
func TestIRQWindowWidthGrowsForks(t *testing.T) {
	narrow := exploreIRQ(t, irqIdleProg, periph.Config{MinLatency: 6, MaxLatency: 8}, Options{})
	wide := exploreIRQ(t, irqIdleProg, periph.Config{MinLatency: 6, MaxLatency: 22}, Options{})
	if narrow.IRQForks() >= wide.IRQForks() {
		t.Fatalf("window widening did not grow forks: narrow %d, wide %d",
			narrow.IRQForks(), wide.IRQForks())
	}
}

// TestDeterministicIRQDoesNotFork: a timer-only interrupt load is fully
// deterministic, so the exploration stays a single path.
func TestDeterministicIRQDoesNotFork(t *testing.T) {
	tree := exploreIRQ(t, `
.org 0xf000
.entry main
main:
    mov #0x0A00, r1
    mov #0x0080, &0x0120
    clr r10
    mov #12, &0x0144
    mov #3, &0x0140
    eint
wait:
    tst r10
    jz  wait
    dint
`+haltSeq+`
timer_isr:
    mov #1, r10
    reti
adc_isr:
    reti
.org 0xfff8
.word timer_isr
.word adc_isr
`, periph.Config{}, Options{})
	if tree.IRQForks() != 0 {
		t.Fatalf("deterministic timer arrival forked %d times", tree.IRQForks())
	}
	if tree.Paths != 1 {
		t.Fatalf("paths = %d, want 1", tree.Paths)
	}
}
