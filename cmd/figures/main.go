// Command figures regenerates the paper's tables and figures on the
// simulated substrate and prints them as text.
//
// Usage:
//
//	figures [-fig all|F2.2|F2.3|F1.5|F3.2|F3.3|F3.4|F3.5|F3.6|F4.1|F5.1|F5.2|T5.1|T5.2|F5.3|F5.4|F5.5|T1] [-runs N] [-bench a,b,c]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/figures"
)

func main() {
	fig := flag.String("fig", "all", "figure/table id to regenerate (or 'all')")
	runs := flag.Int("runs", 5, "input sets per profiling/measurement sweep")
	benches := flag.String("bench", "", "comma-separated benchmark subset (default: all 14)")
	flag.Parse()

	cfg, err := figures.NewConfig(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	cfg.ProfileRuns = *runs

	names := bench.Names()
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}

	run := func(id string) error {
		fmt.Printf("\n===== %s =====\n", id)
		switch id {
		case "F2.2":
			_, err := cfg.Fig22(names)
			return err
		case "F2.3":
			_, err := cfg.Fig23()
			return err
		case "F1.5":
			_, _, err := cfg.Fig15()
			return err
		case "F3.2":
			return cfg.Fig32()
		case "F3.3":
			_, err := cfg.Fig33(names)
			return err
		case "F3.4":
			_, err := cfg.Fig34("mult",
				[]uint16{1, 0, 2, 0, 1, 2, 0, 1},
				[]uint16{0xFFFF, 0xAAAA, 0xF731, 0x8001, 0x7FFF, 0x5555, 0xFF0F, 0xFFFE})
			return err
		case "F3.5":
			_, _, err := cfg.Fig35()
			return err
		case "F3.6":
			_, err := cfg.Fig36()
			return err
		case "F4.1":
			_, err := cfg.Fig41(names)
			return err
		case "F5.1":
			_, _, err := cfg.Fig51(names)
			return err
		case "F5.2":
			_, _, err := cfg.Fig52(names)
			return err
		case "T5.1":
			_, err := cfg.Table51(names)
			return err
		case "T5.2":
			_, err := cfg.Table52(names)
			return err
		case "F5.3":
			cfg.Fig53()
			return nil
		case "F5.4":
			_, err := cfg.Fig54(names)
			return err
		case "F5.5":
			_, _, err := cfg.Fig55()
			return err
		case "T1":
			cfg.Tables11_12_61()
			return nil
		default:
			return fmt.Errorf("unknown figure id %q", id)
		}
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = []string{"T1", "F2.2", "F2.3", "F1.5", "F3.2", "F3.3", "F3.4",
			"F3.5", "F3.6", "F4.1", "F5.1", "F5.2", "T5.1", "T5.2", "F5.3", "F5.4", "F5.5"}
	}
	for _, id := range ids {
		if err := run(id); err != nil {
			fmt.Fprintf(os.Stderr, "figures %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
