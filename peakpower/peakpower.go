package peakpower

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/energy"
	"repro/internal/faultfs"
	"repro/internal/isa"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/symx"
	"repro/internal/ulp430"
)

// Image is an assembled application binary (an alias of the internal
// representation; obtain one from Assemble or BenchImage).
type Image = isa.Image

// Assemble translates ULP430 assembly source into an application image.
// name labels the program in diagnostics and results. Failures wrap
// ErrAssemble.
func Assemble(name, source string) (*Image, error) {
	img, err := isa.Assemble(name, source)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrAssemble, err)
	}
	return img, nil
}

// Analyzer binds one target's gate-level design and the default analysis
// configuration. It is safe for concurrent use: the netlist is built once
// and never mutated afterwards; every analysis simulates on its own
// private state.
type Analyzer struct {
	nl     *netlist.Netlist
	target Target
	def    config
}

// New builds an Analyzer for the standard ULP430 processor (DefaultTarget).
// Options set the analyzer-wide defaults; every Analyze* method accepts the
// same options as per-call overrides. Use NewFor to analyze a different
// registered design point.
func New(opts ...Option) (*Analyzer, error) {
	return NewFor(context.Background(), DefaultTarget, opts...)
}

// Target returns the design point this analyzer was built for.
func (a *Analyzer) Target() Target { return a.target }

// resolve copies the analyzer defaults and applies per-call options.
func (a *Analyzer) resolve(opts []Option) config {
	cfg := a.def
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// model returns the power model for a resolved configuration.
func (cfg config) model() power.Model {
	return power.Model{Lib: cfg.lib, ClockHz: cfg.clockHz}
}

// Analyze assembles source and runs the full co-analysis. name labels
// the application in diagnostics and the Result. Assembly failures wrap
// ErrAssemble.
func (a *Analyzer) Analyze(ctx context.Context, name, source string, opts ...Option) (*Result, error) {
	img, err := Assemble(name, source)
	if err != nil {
		return nil, err
	}
	return a.AnalyzeImage(ctx, img, opts...)
}

// AnalyzeImage runs the full co-analysis on an assembled application:
// symbolic gate-activity analysis (Algorithm 1) drives the streaming
// peak-power computation (Algorithm 2) over every execution path, and
// the annotated execution tree yields the peak power requirement, the
// peak energy requirement, and cycle-of-interest attribution.
//
// ctx cancels or bounds the exploration; on cancellation the returned
// error wraps ctx.Err(). Budget exhaustion wraps ErrCycleBudget or
// ErrNodeBudget.
//
// With WithCache, a previously computed analysis of the same image and
// resolved options is returned without re-exploration — cache hits share
// the original *Result and skip progress reporting — and concurrent
// analyses of the same work single-flight behind one exploration.
func (a *Analyzer) AnalyzeImage(ctx context.Context, img *Image, opts ...Option) (*Result, error) {
	cfg := a.resolve(opts)
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("peakpower: analysis of %s: %w", img.Name, err)
	}
	if cfg.cache != nil {
		res, err := cfg.cache.do(ctx, a.cacheKey(img, cfg), func() (*Result, error) {
			return a.analyzeImage(ctx, img, cfg)
		})
		if err != nil && err == ctx.Err() {
			// The single-flight wait canceled before any analysis ran;
			// label it like every other analysis error.
			err = fmt.Errorf("peakpower: analysis of %s: %w", img.Name, err)
		}
		return res, err
	}
	return a.analyzeImage(ctx, img, cfg)
}

// analyzeImage is the cache-independent analysis body. The exploration
// runs sequentially or on the work-stealing parallel engine
// (WithExploreWorkers); the two produce bit-identical sealed Reports, so
// the choice is invisible downstream of the explore call.
func (a *Analyzer) analyzeImage(ctx context.Context, img *Image, cfg config) (*Result, error) {
	start := time.Now()
	model := cfg.model()
	sxOpts := symx.Options{
		MaxCycles:     cfg.maxCycles,
		MaxNodes:      cfg.maxNodes,
		Ctx:           ctx,
		ProgressEvery: cfg.progressEvery,
	}
	// Every system this analysis creates (sequential, or one per explore
	// worker) is tracked so the memo counters can be summed for progress
	// reporting and the final Result. MemoStats reads atomics, so summing
	// concurrently with running workers is safe.
	var (
		sysMu   sync.Mutex
		systems []*ulp430.System
	)
	memoTotals := func() (hits, misses int64) {
		sysMu.Lock()
		defer sysMu.Unlock()
		for _, s := range systems {
			h, m := s.Sim.MemoStats()
			hits += h
			misses += m
		}
		return hits, misses
	}
	newSystem := func() (*ulp430.System, error) {
		sys, err := a.newSystem(img, cfg)
		if err != nil {
			return nil, err
		}
		sysMu.Lock()
		systems = append(systems, sys)
		sysMu.Unlock()
		return sys, nil
	}

	if cfg.progress != nil {
		fn, app := cfg.progress, img.Name
		sxOpts.Progress = func(p symx.Progress) {
			h, m := memoTotals()
			fn(Progress{App: app, Cycles: p.Cycles, Nodes: p.Nodes, Paths: p.Paths,
				MemoHits: h, MemoMisses: m})
		}
	}

	var (
		tree    *symx.Tree
		best    power.Peak
		topK    []power.Peak
		union   []bool
		isrPeak float64
		modules []string
	)
	if cfg.exploreWorkers > 1 || cfg.checkpointPath != "" {
		// The parallel engine also carries checkpointed analyses (even at
		// one worker): only its published-task protocol maps onto the
		// durable journal.
		workers := cfg.exploreWorkers
		if workers < 1 {
			workers = 1
		}
		var ck *symx.Checkpointer
		if cfg.checkpointPath != "" {
			ck = symx.NewCheckpointer(symx.CheckpointConfig{
				Path:  cfg.checkpointPath,
				Tag:   a.cacheKey(img, cfg),
				Codec: power.Codec{},
			})
		}
		shared := power.NewShared()
		sinks := make([]*power.Sink, workers)
		pres, err := symx.ExploreParallel(symx.ParallelOptions{
			Options:    sxOpts,
			Workers:    workers,
			Checkpoint: ck,
			NewWorker: func(worker int) (*ulp430.System, symx.WorkerSink, error) {
				wsys, err := newSystem()
				if err != nil {
					return nil, nil, err
				}
				wsink := power.NewSink(wsys, model, img, cfg.coiK)
				wsink.EnableTasks(shared)
				if ck != nil {
					wsink.EnableCheckpoint()
				}
				sinks[worker] = wsink
				return wsys, wsink, nil
			},
		})
		if err != nil {
			return nil, fmt.Errorf("peakpower: symbolic analysis of %s: %w", img.Name, err)
		}
		tree = pres.Tree
		best, topK, isrPeak, union, err = power.MergeParallelReplay(sinks, cfg.coiK, pres.NodeID, pres.Replayed)
		if err != nil {
			return nil, fmt.Errorf("peakpower: symbolic analysis of %s: %w", img.Name, err)
		}
		modules = sinks[0].Modules()
		if ck != nil {
			// The analysis is complete; the journal has served its purpose
			// and must not shadow a later analysis at the same path.
			_ = faultfs.OS{}.Remove(cfg.checkpointPath)
		}
	} else {
		sys, err := newSystem()
		if err != nil {
			return nil, fmt.Errorf("peakpower: preparing %s: %w", img.Name, err)
		}
		sink := power.NewSink(sys, model, img, cfg.coiK)
		tree, err = symx.Explore(sys, sink, sxOpts)
		if err != nil {
			return nil, fmt.Errorf("peakpower: symbolic analysis of %s: %w", img.Name, err)
		}
		best, topK, isrPeak, union = sink.Best, sink.TopK, sink.ISRPeakMW, sink.UnionActive
		modules = sink.Modules()
	}

	eres, err := energy.PeakEnergy(tree, img, model.ClockHz)
	if err != nil {
		return nil, fmt.Errorf("peakpower: peak energy of %s: %w", img.Name, err)
	}
	res := &Result{
		Report: Report{
			Schema:         SchemaVersion,
			Target:         a.target.Name(),
			App:            img.Name,
			Library:        model.Lib.Name,
			FeatureNM:      model.Lib.FeatureNM,
			ClockHz:        model.ClockHz,
			Engine:         cfg.engine.String(),
			PeakPowerMW:    best.PowerMW,
			PeakEnergyJ:    eres.EnergyJ,
			NPEJPerCycle:   eres.NPEJPerCycle,
			BoundingCycles: eres.Cycles,
			PeakTrace:      maxEnergyPathTrace(tree),
			COIs:           resolveCOIs(topK, modules, img),
			TotalGates:     len(union),
			ActiveByModule: a.ActiveByModule(union),
			Paths:          tree.Paths,
			Nodes:          len(tree.Nodes),
			SimCycles:      tree.Cycles,
		},
		Peaks:       topK,
		Best:        best,
		UnionActive: union,
		Modules:     modules,
		Elapsed:     time.Since(start),
		Tree:        tree,
		img:         img,
	}
	res.MemoHits, res.MemoMisses = memoTotals()
	if cfg.irq != nil {
		res.Interrupts = &IRQReport{
			MinLatency: cfg.irq.MinLatency,
			MaxLatency: cfg.irq.MaxLatency,
			IRQForks:   tree.IRQForks(),
			ISRPeakMW:  isrPeak,
		}
	}
	for _, act := range union {
		if act {
			res.ActiveGates++
		}
	}
	res.Seal()
	return res, nil
}

// newSystem builds one private symbolic-mode System for a resolved
// analysis — the construction shared by the sequential engine, every
// parallel worker, and the fleet plan (ExplorePlan.NewWorker).
func (a *Analyzer) newSystem(img *Image, cfg config) (*ulp430.System, error) {
	sys, err := a.target.NewSystem(cfg.engine, a.nl, cfg.lib, img, ulp430.SymbolicInputs, nil)
	if err != nil {
		return nil, err
	}
	if cfg.irq != nil {
		sys.EnableInterrupts(*cfg.irq)
	}
	if cfg.memo {
		sys.Sim.EnableMemo(0) // no-op on the scalar engine
	}
	return sys, nil
}

// AnalyzeBench runs the co-analysis on one of the target's built-in
// benchmarks (see Analyzer.Benchmarks). Unknown names wrap ErrUnknownBench.
// Unless overridden by WithMaxCycles, the benchmark's calibrated cycle
// budget (doubled for margin) is used.
func (a *Analyzer) AnalyzeBench(ctx context.Context, name string, opts ...Option) (*Result, error) {
	b, img, err := targetBenchImage(a.target, name)
	if err != nil {
		return nil, err
	}
	var auto []Option
	if b.MaxCycles > 0 {
		auto = append(auto, WithMaxCycles(2*b.MaxCycles))
	}
	if b.IRQ != nil {
		// Interrupt-driven benchmarks carry their peripheral
		// configuration; explicit WithInterrupts options still override.
		auto = append(auto, WithInterrupts(*b.IRQ))
	}
	return a.AnalyzeImage(ctx, img, append(auto, opts...)...)
}

// maxEnergyPathTrace concatenates segment traces greedily along the
// higher-energy child, stopping at merges (one loop pass shown).
func maxEnergyPathTrace(tree *symx.Tree) []float64 {
	var out []float64
	seen := make(map[int]bool)
	n := tree.Root
	for n != nil && !seen[n.ID] {
		seen[n.ID] = true
		if seg, ok := n.Data.([]float64); ok {
			out = append(out, seg...)
		}
		switch n.Kind {
		case symx.KindBranch:
			a, b := n.Taken, n.NotTaken
			if segSum(a) >= segSum(b) {
				n = a
			} else {
				n = b
			}
		case symx.KindMerge:
			n = n.MergeTo
		default:
			n = nil
		}
	}
	return out
}

func segSum(n *symx.Node) float64 {
	if n == nil {
		return -1
	}
	seg, ok := n.Data.([]float64)
	if !ok {
		return -1
	}
	s := 0.0
	for _, v := range seg {
		s += v
	}
	return s
}

// concreteCancelEvery is the default interval (in cycles) at which
// RunConcrete polls its context and reports progress; WithProgressEvery
// (or WithProgress's interval) overrides it.
const concreteCancelEvery = 4096

// RunConcrete executes the binary with concrete inputs and measures its
// power — the "input-based" view used for profiling and validation.
// portIn, when non-nil, supplies P1IN port reads.
//
// RunConcrete honors WithProgress / WithProgressEvery: the callback is
// invoked from the running goroutine every progress interval (default
// 4096 cycles) with the cycle count, and once when the run finishes; the
// same interval paces context-cancellation polling.
func (a *Analyzer) RunConcrete(ctx context.Context, img *Image, inputs []uint16, portIn func() uint16, maxCycles int, opts ...Option) (*ConcreteRun, error) {
	cfg := a.resolve(opts)
	if ctx == nil {
		ctx = context.Background()
	}
	pollEvery := cfg.progressEvery
	if pollEvery <= 0 {
		pollEvery = concreteCancelEvery
	}
	model := cfg.model()
	sys, err := a.target.NewSystem(cfg.engine, a.nl, model.Lib, img, ulp430.ConcreteInputs, inputs)
	if err != nil {
		return nil, fmt.Errorf("peakpower: preparing %s: %w", img.Name, err)
	}
	if cfg.irq != nil {
		sys.EnableInterrupts(*cfg.irq)
	}
	if cfg.memo {
		sys.Sim.EnableMemo(0)
	}
	sys.PortIn = portIn
	sink := power.NewSink(sys, model, img, 0)
	sys.Reset()
	for c := 0; c < maxCycles && !sys.Halted(); c++ {
		if c%pollEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("peakpower: concrete run of %s aborted after %d cycles: %w", img.Name, c, err)
			}
			if cfg.progress != nil && c > 0 {
				cfg.progress(Progress{App: img.Name, Cycles: c})
			}
		}
		sys.Step()
		sink.OnCycle(sys)
	}
	if !sys.Halted() {
		return nil, fmt.Errorf("peakpower: %s did not halt within %d cycles", img.Name, maxCycles)
	}
	if err := sys.Err(); err != nil {
		return nil, err
	}
	if cfg.progress != nil {
		cfg.progress(Progress{App: img.Name, Cycles: len(sink.Trace)})
	}
	run := &ConcreteRun{
		PeakMW:      sink.PeakMW(),
		Trace:       sink.Trace,
		UnionActive: sink.UnionActive,
	}
	for _, mw := range sink.Trace {
		run.EnergyJ += mw * 1e-3 / model.ClockHz
	}
	run.NPEJPerCycle = run.EnergyJ / float64(len(sink.Trace))
	return run, nil
}

// ActiveByModule counts cells from the given activity set per top-level
// module — the data behind the activity-profile figures (1.5, 3.4).
func (a *Analyzer) ActiveByModule(active []bool) map[string]int {
	out := make(map[string]int)
	for ci, act := range active {
		if act {
			out[a.nl.Modules()[a.nl.ModuleIndex(netlist.CellID(ci))]]++
		}
	}
	return out
}

// ActiveCellsByModule groups an explicit cell list per module.
func (a *Analyzer) ActiveCellsByModule(cells []netlist.CellID) map[string]int {
	out := make(map[string]int)
	for _, ci := range cells {
		out[a.nl.Modules()[a.nl.ModuleIndex(ci)]]++
	}
	return out
}

// Netlist exposes the gate-level design under analysis. It must be
// treated as read-only; it is shared by every concurrent analysis. This
// is an escape hatch for in-repo tooling (figure generation, baselines,
// the measurement rig).
func (a *Analyzer) Netlist() *netlist.Netlist { return a.nl }

// Model returns the analyzer's default power model / operating point.
func (a *Analyzer) Model() power.Model { return a.def.model() }

// WriteVerilog writes the design as structural Verilog.
func (a *Analyzer) WriteVerilog(w io.Writer) error { return a.nl.WriteVerilog(w) }

// Stats summarizes the design (cells, flip-flops, nets, area) at the
// analyzer's default library.
func (a *Analyzer) Stats() netlist.Stats { return a.nl.Stats(a.def.lib) }
