package periph

import "fmt"

// Device register addresses (byte addresses; all accesses word-aligned).
// They sit above the core peripheral registers (0x0120–0x013C, see
// internal/soc) and below SRAM.
const (
	// TACTL is the timer control register: bit 0 TAEN (count enable),
	// bit 1 TAIE (interrupt enable), bit 2 TAIFG (interrupt flag).
	TACTL = 0x0140
	// TACNT is the timer's free-reading count register.
	TACNT = 0x0142
	// TACCR is the timer compare register: when the count reaches it the
	// timer raises TAIFG and stops (one-shot semantics — rearm by
	// rewriting TACTL with TAEN).
	TACCR = 0x0144

	// ADCTL is the ADC control register: bit 0 ADGO (writing 1 starts a
	// conversion; reads back 1 while one is in flight), bit 1 ADIE,
	// bit 2 ADIFG.
	ADCTL = 0x0150
	// ADSTAT is the read-only ADC status register: bit 0 busy, bit 2
	// conversion-complete flag (mirrors ADIFG).
	ADSTAT = 0x0152
	// ADDATA is the read-only conversion result. Under symbolic analysis
	// it reads as all X — the sampled value is application input the
	// bound must hold for (Algorithm 1's "set all peripheral port inputs
	// to Xs").
	ADDATA = 0x0154

	// RFCTL is the radio control register: writing bit 0 starts a
	// transmission of the RFTX word.
	RFCTL = 0x0160
	// RFSTAT is the read-only radio status register: bit 0 busy.
	RFSTAT = 0x0162
	// RFTX is the radio transmit data register.
	RFTX = 0x0164
)

// Control-register bits shared by the timer and the ADC.
const (
	// BitEN enables the timer (TACTL) / starts a conversion (ADCTL ADGO).
	BitEN = 0x0001
	// BitIE enables the device's interrupt.
	BitIE = 0x0002
	// BitIFG is the latched interrupt flag; cleared by hardware on vector
	// fetch or by software writing it back as 0.
	BitIFG = 0x0004
)

// Interrupt vector table entries (byte addresses inside ROM). A program
// places its handler addresses here with ".org 0xfff8 / .word isr". The
// timer outranks the ADC when both are pending.
const (
	// VecTimer holds the timer ISR address.
	VecTimer = 0xFFF8
	// VecADC holds the ADC ISR address.
	VecADC = 0xFFFA
)

// Device is one memory-mapped peripheral on the Bus: addressable
// registers, a per-cycle tick, and an interrupt side (devices that never
// interrupt report Pending false forever).
type Device interface {
	// Name identifies the device in diagnostics and the address map.
	Name() string
	// Reset returns the device to power-on state.
	Reset()
	// Tick advances the device one clock cycle. now is the simulator's
	// cycle counter at the time of the access.
	Tick(now uint64)
	// Read returns a register value in the three-valued domain: bit i is
	// X when xmask bit i is set, else val bit i.
	Read(addr uint16) (val, xmask uint16)
	// Write stores a concrete value to a register. It reports writes the
	// device rejects (read-only registers).
	Write(addr uint16, v uint16, now uint64) error
	// Pending reports a concrete asserted interrupt (flag set and
	// enabled).
	Pending() bool
	// Ack is the hardware interrupt acknowledge, invoked when the CPU
	// fetches this device's vector.
	Ack()
	// Vector is the ROM address of the device's vector-table entry.
	Vector() uint16
}

// Timer is a one-shot compare timer: while enabled it increments every
// cycle; on reaching the compare value it raises its flag and stops.
// Counting is fully deterministic, so a timer interrupt is a *concrete*
// event — it exercises the ISR entry/return path without forking the
// exploration.
type Timer struct {
	en, ie, ifg bool
	cnt, ccr    uint16
}

// Name implements Device.
func (t *Timer) Name() string { return "timer" }

// Reset implements Device.
func (t *Timer) Reset() { *t = Timer{} }

// Tick implements Device.
func (t *Timer) Tick(now uint64) {
	if t.en {
		t.cnt++
		if t.cnt >= t.ccr {
			t.ifg = true
			t.en = false
		}
	}
}

// Read implements Device.
func (t *Timer) Read(addr uint16) (uint16, uint16) {
	switch addr {
	case TACTL:
		return ctlBits(t.en, t.ie, t.ifg), 0
	case TACNT:
		return t.cnt, 0
	case TACCR:
		return t.ccr, 0
	}
	return 0, 0
}

// Write implements Device.
func (t *Timer) Write(addr uint16, v uint16, now uint64) error {
	switch addr {
	case TACTL:
		t.en = v&BitEN != 0
		t.ie = v&BitIE != 0
		t.ifg = v&BitIFG != 0
		return nil
	case TACNT:
		t.cnt = v
		return nil
	case TACCR:
		t.ccr = v
		return nil
	}
	return fmt.Errorf("periph: timer has no register at %#04x", addr)
}

// Pending implements Device.
func (t *Timer) Pending() bool { return t.ifg && t.ie }

// Ack implements Device.
func (t *Timer) Ack() { t.ifg = false }

// Vector implements Device.
func (t *Timer) Vector() uint16 { return VecTimer }

// ADC is the sensor front end. A conversion started by setting ADGO
// completes after a latency the application cannot know: anywhere in
// [MinLatency, MaxLatency] cycles under symbolic analysis (the window the
// exploration forks over), exactly ConcreteLatency cycles in concrete
// runs. The completed sample itself is symbolic X.
type ADC struct {
	symbolic                bool
	minLat, maxLat, concLat uint64

	ie, ifg, armed bool
	trig           uint64
	sample, seq    uint16
}

// Name implements Device.
func (a *ADC) Name() string { return "adc" }

// Reset implements Device.
func (a *ADC) Reset() {
	a.ie, a.ifg, a.armed = false, false, false
	a.trig, a.sample, a.seq = 0, 0, 0
}

// Tick implements Device: a conversion in flight completes on its own at
// the latency bound — MaxLatency under symbolic analysis (by then the
// sample has arrived on every possible interleaving), ConcreteLatency in
// concrete runs.
func (a *ADC) Tick(now uint64) {
	if !a.armed {
		return
	}
	lat := a.concLat
	if a.symbolic {
		lat = a.maxLat
	}
	if now >= a.trig+lat {
		a.complete()
	}
}

// complete latches a finished conversion: flag up, sample ready.
func (a *ADC) complete() {
	a.armed = false
	a.ifg = true
	a.seq++
	a.sample = a.seq*0x9E37 + 0x1234 // deterministic pseudo-sample stream
}

// MaybePending reports whether, at cycle now, conversion completion is
// possible but not certain — the symbolic window [trig+MinLatency,
// trig+MaxLatency] within which the IRQ line reads X.
func (a *ADC) MaybePending(now uint64) bool {
	return a.symbolic && a.armed && now >= a.trig+a.minLat
}

// ForceDeliver resolves the symbolic completion event as "arrived now";
// the exploration's taken fork direction.
func (a *ADC) ForceDeliver() {
	if a.armed {
		a.complete()
	}
}

// Read implements Device.
func (a *ADC) Read(addr uint16) (uint16, uint16) {
	switch addr {
	case ADCTL:
		return ctlBits(a.armed, a.ie, a.ifg), 0
	case ADSTAT:
		return ctlBits(a.armed, false, a.ifg), 0
	case ADDATA:
		if a.symbolic {
			return 0, 0xFFFF
		}
		return a.sample, 0
	}
	return 0, 0
}

// Write implements Device.
func (a *ADC) Write(addr uint16, v uint16, now uint64) error {
	switch addr {
	case ADCTL:
		a.ie = v&BitIE != 0
		a.ifg = v&BitIFG != 0
		if v&BitEN != 0 && !a.armed {
			a.armed = true
			a.trig = now
			a.ifg = false
		}
		return nil
	case ADSTAT, ADDATA:
		return fmt.Errorf("periph: write to read-only ADC register %#04x", addr)
	}
	return fmt.Errorf("periph: adc has no register at %#04x", addr)
}

// Pending implements Device.
func (a *ADC) Pending() bool { return a.ifg && a.ie }

// Ack implements Device.
func (a *ADC) Ack() { a.ifg = false }

// Vector implements Device.
func (a *ADC) Vector() uint16 { return VecADC }

// Radio is a transmit-only radio stub: writing RFCTL bit 0 sends the RFTX
// word and holds the busy flag for a fixed number of cycles. It is fully
// deterministic and raises no interrupt — it exists so benchmarks can
// model the post-ISR "ship the sample" phase and poll a busy peripheral.
type Radio struct {
	busyCycles uint16

	busy, tx, sent uint16
}

// Name implements Device.
func (r *Radio) Name() string { return "radio" }

// Reset implements Device.
func (r *Radio) Reset() { r.busy, r.tx, r.sent = 0, 0, 0 }

// Tick implements Device.
func (r *Radio) Tick(now uint64) {
	if r.busy > 0 {
		r.busy--
	}
}

// Read implements Device.
func (r *Radio) Read(addr uint16) (uint16, uint16) {
	switch addr {
	case RFSTAT:
		if r.busy > 0 {
			return 1, 0
		}
		return 0, 0
	case RFTX:
		return r.tx, 0
	}
	return 0, 0
}

// Write implements Device.
func (r *Radio) Write(addr uint16, v uint16, now uint64) error {
	switch addr {
	case RFCTL:
		if v&BitEN != 0 {
			r.busy = r.busyCycles
			r.sent++
		}
		return nil
	case RFTX:
		r.tx = v
		return nil
	case RFSTAT:
		return fmt.Errorf("periph: write to read-only radio register %#04x", addr)
	}
	return fmt.Errorf("periph: radio has no register at %#04x", addr)
}

// Pending implements Device.
func (r *Radio) Pending() bool { return false }

// Ack implements Device.
func (r *Radio) Ack() {}

// Vector implements Device.
func (r *Radio) Vector() uint16 { return 0 }

// Sent returns how many transmissions have been started (test hook).
func (r *Radio) Sent() uint16 { return r.sent }

// ctlBits packs the shared EN/IE/IFG control-register layout.
func ctlBits(en, ie, ifg bool) uint16 {
	var v uint16
	if en {
		v |= BitEN
	}
	if ie {
		v |= BitIE
	}
	if ifg {
		v |= BitIFG
	}
	return v
}
