package gsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// randomNetlist generates a well-formed random design: a layer of
// primary inputs and tie cells, a bank of mixed-kind flip-flops, and a
// sea of combinational cells each reading already-created nets (so the
// graph is acyclic by construction). Flip-flop inputs are wired last
// and may close sequential loops through arbitrary logic.
func randomNetlist(t *testing.T, r *rand.Rand) *netlist.Netlist {
	t.Helper()
	n := netlist.New("fuzz")

	numIn := 1 + r.Intn(12)
	ins := make([]netlist.NetID, numIn)
	for i := range ins {
		ins[i] = n.NewNet("")
		n.MarkInput(ins[i])
	}
	nets := append([]netlist.NetID(nil), ins...)

	if r.Intn(2) == 0 {
		t0 := n.NewNet("")
		n.AddCell(cell.Tie0, "m0", "", t0)
		nets = append(nets, t0)
	}
	if r.Intn(2) == 0 {
		t1 := n.NewNet("")
		n.AddCell(cell.Tie1, "m0", "", t1)
		nets = append(nets, t1)
	}

	// Flip-flop outputs come first so combinational logic can read them.
	seqKinds := []cell.Kind{cell.Dff, cell.Dffr, cell.Dffre}
	numSeq := r.Intn(10)
	seqOuts := make([]netlist.NetID, numSeq)
	seqKind := make([]cell.Kind, numSeq)
	for i := 0; i < numSeq; i++ {
		seqOuts[i] = n.NewNet("")
		seqKind[i] = seqKinds[r.Intn(len(seqKinds))]
		nets = append(nets, seqOuts[i])
	}

	combKinds := []cell.Kind{
		cell.Inv, cell.Buf, cell.Nand2, cell.Nor2, cell.And2,
		cell.Or2, cell.Xor2, cell.Xnor2, cell.Mux2,
	}
	numComb := 5 + r.Intn(120)
	for i := 0; i < numComb; i++ {
		k := combKinds[r.Intn(len(combKinds))]
		pins := make([]netlist.NetID, k.NumInputs())
		for p := range pins {
			pins[p] = nets[r.Intn(len(nets))]
		}
		out := n.NewNet("")
		n.AddCell(k, "m"+string(rune('0'+i%4)), "", out, pins...)
		nets = append(nets, out)
	}

	for i := 0; i < numSeq; i++ {
		pins := make([]netlist.NetID, seqKind[i].NumInputs())
		for p := range pins {
			pins[p] = nets[r.Intn(len(nets))]
		}
		n.AddCell(seqKind[i], "seq", "", seqOuts[i], pins...)
	}

	n.DefinePort("in", ins)
	if err := n.Build(); err != nil {
		t.Fatalf("random netlist build: %v", err)
	}
	return n
}

func randomTrit(r *rand.Rand) logic.Trit {
	switch r.Intn(4) {
	case 0:
		return logic.X // X weighted up: the symbolic regime is the hard one
	case 1:
		return logic.H
	default:
		return logic.L
	}
}

// compareEngines asserts the two simulators agree symbol for symbol on
// every net's value, previous value, and activity flag, plus the
// derived state hash and concrete dynamic energy.
func compareEngines(t *testing.T, n *netlist.Netlist, scalar, packed *Simulator, cycle int) {
	t.Helper()
	for id := 0; id < n.NumNets(); id++ {
		nid := netlist.NetID(id)
		if sv, pv := scalar.Val(nid), packed.Val(nid); sv != pv {
			t.Fatalf("cycle %d net %s: scalar val %v, packed val %v", cycle, n.NetName(nid), sv, pv)
		}
		if sv, pv := scalar.PrevVal(nid), packed.PrevVal(nid); sv != pv {
			t.Fatalf("cycle %d net %s: scalar prev %v, packed prev %v", cycle, n.NetName(nid), sv, pv)
		}
		if sa, pa := scalar.Active(nid), packed.Active(nid); sa != pa {
			t.Fatalf("cycle %d net %s (val %v, prev %v): scalar active %v, packed active %v",
				cycle, n.NetName(nid), scalar.Val(nid), scalar.PrevVal(nid), sa, pa)
		}
	}
	if sh, ph := scalar.StateHash(), packed.StateHash(); sh != ph {
		t.Fatalf("cycle %d: state hash mismatch %x vs %x", cycle, sh, ph)
	}
	if se, pe := scalar.DynamicEnergyFJ(), packed.DynamicEnergyFJ(); se != pe {
		t.Fatalf("cycle %d: dynamic energy %v vs %v", cycle, se, pe)
	}
}

// TestEnginesAgreeOnRandomNetlists is the packed engine's differential
// property test: many random designs, many cycles of random three-valued
// stimulus, bit-identical values and activity flags required throughout,
// including across snapshot/restore rewinds.
func TestEnginesAgreeOnRandomNetlists(t *testing.T) {
	designs := 60
	cycles := 80
	if testing.Short() {
		designs, cycles = 15, 40
	}
	for d := 0; d < designs; d++ {
		r := rand.New(rand.NewSource(int64(1_000_003 * (d + 1))))
		n := randomNetlist(t, r)
		scalar := NewEngine(n, cell.ULP65(), nil, EngineScalar)
		packed := NewEngine(n, cell.ULP65(), nil, EnginePacked)
		ins := n.Port("in")

		var snapS, snapP *Snapshot
		snapCycle := -1
		for c := 0; c < cycles; c++ {
			w := make(logic.Word, len(ins))
			for i := range w {
				w[i] = randomTrit(r)
			}
			scalar.SetPort("in", w)
			packed.SetPort("in", w)
			scalar.Step()
			packed.Step()
			compareEngines(t, n, scalar, packed, c)

			switch {
			case snapS == nil && r.Intn(10) == 0:
				snapS, snapP = scalar.Snapshot(), packed.Snapshot()
				snapCycle = c
			case snapS != nil && r.Intn(12) == 0:
				scalar.Restore(snapS)
				packed.Restore(snapP)
				compareEngines(t, n, scalar, packed, snapCycle)
				snapS, snapP = nil, nil
			}
		}
	}
}

// TestEnginesAgreeFromColdStart checks the initial all-X condition and
// the first settles, where the packed engine must force-evaluate every
// level (tie-cell constants have no fan-in to dirty).
func TestEnginesAgreeFromColdStart(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for d := 0; d < 10; d++ {
		n := randomNetlist(t, r)
		scalar := NewEngine(n, cell.ULP65(), nil, EngineScalar)
		packed := NewEngine(n, cell.ULP65(), nil, EnginePacked)
		// Before any Step both report the all-X initial condition.
		for id := 0; id < n.NumNets(); id++ {
			nid := netlist.NetID(id)
			if scalar.Val(nid) != logic.X || packed.Val(nid) != logic.X {
				t.Fatalf("net %s not X before first step", n.NetName(nid))
			}
		}
		// No inputs driven at all: constants must still propagate.
		scalar.Step()
		packed.Step()
		compareEngines(t, n, scalar, packed, 0)
	}
}

// TestPackedSkipsLevelsOnQuiescentInput pins down the dirty-level
// scheduler's observable contract: with inputs held constant, a design
// with no sequential feedback reaches a fixed point and keeps producing
// values identical to the scalar engine's full re-evaluation.
func TestPackedSkipsLevelsOnQuiescentInput(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := randomNetlist(t, r)
	scalar := NewEngine(n, cell.ULP65(), nil, EngineScalar)
	packed := NewEngine(n, cell.ULP65(), nil, EnginePacked)
	w := make(logic.Word, len(n.Port("in")))
	for i := range w {
		w[i] = randomTrit(r)
	}
	for c := 0; c < 30; c++ {
		scalar.SetPort("in", w)
		packed.SetPort("in", w)
		scalar.Step()
		packed.Step()
		compareEngines(t, n, scalar, packed, c)
	}
}

// TestBoundEnergyAfterRestore exercises the packed engine's on-demand
// energy-bound walk: Restore clears activity flags and invalidates the
// cached bound, so the next BoundEnergyFJ (before any Step) must take
// the standalone path and still agree with the scalar engine.
func TestBoundEnergyAfterRestore(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	n := randomNetlist(t, r)
	scalar := NewEngine(n, cell.ULP65(), nil, EngineScalar)
	packed := NewEngine(n, cell.ULP65(), nil, EnginePacked)
	w := make(logic.Word, len(n.Port("in")))
	step := func() {
		for i := range w {
			w[i] = randomTrit(r)
		}
		scalar.SetPort("in", w)
		packed.SetPort("in", w)
		scalar.Step()
		packed.Step()
	}
	for c := 0; c < 5; c++ {
		step()
	}
	snapS, snapP := scalar.Snapshot(), packed.Snapshot()
	for c := 0; c < 5; c++ {
		step()
	}
	// The engines sum identical per-gate energies in different orders
	// (per-cell vs popcount-grouped), so bounds agree to float
	// association, not bit-exactly.
	close := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
	}
	scalar.Restore(snapS)
	packed.Restore(snapP)
	if se, pe := scalar.BoundEnergyFJ(), packed.BoundEnergyFJ(); !close(se, pe) {
		t.Fatalf("post-restore bound: scalar %v, packed %v", se, pe)
	}
	// And the cached path re-engages after the next Step.
	step()
	compareEngines(t, n, scalar, packed, 0)
	if se, pe := scalar.BoundEnergyFJ(), packed.BoundEnergyFJ(); !close(se, pe) {
		t.Fatalf("post-step bound: scalar %v, packed %v", se, pe)
	}
}
