package peakpower

import (
	"errors"

	"repro/internal/symx"
)

// Sentinel errors classifying analysis failures; match with errors.Is.
// Returned errors wrap these with the concrete detail (file, limit,
// benchmark name).
var (
	// ErrAssemble reports that application source failed to assemble.
	ErrAssemble = errors.New("peakpower: assembly failed")
	// ErrUnknownBench reports a benchmark name not in the built-in suite.
	ErrUnknownBench = errors.New("peakpower: unknown benchmark")
	// ErrUnknownTarget reports a target name with no registered design
	// point (see Targets and RegisterTarget).
	ErrUnknownTarget = errors.New("peakpower: unknown target")
	// ErrCycleBudget reports that symbolic exploration exceeded its
	// simulated-cycle budget (WithMaxCycles). It is the same value the
	// exploration engine wraps, so it matches however deep the wrap.
	ErrCycleBudget = symx.ErrCycleBudget
	// ErrNodeBudget reports that the symbolic execution tree exceeded
	// its node budget (WithMaxNodes).
	ErrNodeBudget = symx.ErrNodeBudget
)
