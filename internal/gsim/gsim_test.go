package gsim

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// counterDesign builds a 4-bit counter with reset and an XOR-decoded
// output, plus an extra AND gate fed by a data input.
func counterDesign(t *testing.T) *netlist.Netlist {
	t.Helper()
	n := netlist.New("cnt")
	rst := n.NewNet("rst")
	n.MarkInput(rst)
	n.DefinePort("rst", []netlist.NetID{rst})
	din := n.NewNet("din")
	n.MarkInput(din)
	n.DefinePort("din", []netlist.NetID{din})

	q := n.NewNets("q", 4)
	// increment: ripple through half-adders (XOR + AND carry chain)
	carry := netlist.NetID(-1)
	d := make([]netlist.NetID, 4)
	for i := 0; i < 4; i++ {
		if i == 0 {
			// d0 = !q0
			d[0] = n.NewNet("")
			n.AddCell(cell.Inv, "core", "", d[0], q[0])
			carry = q[0]
		} else {
			d[i] = n.NewNet("")
			n.AddCell(cell.Xor2, "core", "", d[i], q[i], carry)
			nc := n.NewNet("")
			n.AddCell(cell.And2, "core", "", nc, q[i], carry)
			carry = nc
		}
	}
	for i := 0; i < 4; i++ {
		n.AddCell(cell.Dffr, "core", "", q[i], d[i], rst)
	}
	n.DefinePort("q", q)
	// decode: parity of q with din mixed in
	p1 := n.NewNet("")
	n.AddCell(cell.Xor2, "dec", "", p1, q[0], q[1])
	p2 := n.NewNet("")
	n.AddCell(cell.Xor2, "dec", "", p2, q[2], q[3])
	p3 := n.NewNet("")
	n.AddCell(cell.Xor2, "dec", "", p3, p1, p2)
	out := n.NewNet("out")
	n.AddCell(cell.And2, "dec", "", out, p3, din)
	n.DefinePort("out", []netlist.NetID{out})
	if err := n.Build(); err != nil {
		t.Fatal(err)
	}
	return n
}

func resetAndRun(s *Simulator) {
	s.SetPortUint("rst", 1)
	s.SetPortUint("din", 0)
	s.Step()
	s.Step()
	s.SetPortUint("rst", 0)
	s.Step()
}

func TestCounterCounts(t *testing.T) {
	n := counterDesign(t)
	s := New(n, cell.ULP65(), nil)
	resetAndRun(s)
	if v, ok := s.PortUint("q"); !ok || v != 0 {
		t.Fatalf("after reset q=%d ok=%v", v, ok)
	}
	for i := 1; i <= 20; i++ {
		s.Step()
		v, ok := s.PortUint("q")
		if !ok || v != uint64(i%16) {
			t.Fatalf("cycle %d: q=%d ok=%v want %d", i, v, ok, i%16)
		}
	}
	if s.Cycle() != 23 {
		t.Fatalf("cycle count %d", s.Cycle())
	}
}

func TestInitialStateIsAllX(t *testing.T) {
	n := counterDesign(t)
	s := New(n, cell.ULP65(), nil)
	if v := s.Port("q"); !v.HasX() {
		t.Fatal("uninitialized state should be X")
	}
	// Without reset, stepping keeps the counter X.
	s.SetPortUint("rst", 0)
	s.SetPortUint("din", 0)
	s.Step()
	s.Step()
	if v := s.Port("q"); !v.HasX() {
		t.Fatal("unreset counter should stay X")
	}
}

func TestXInputPropagatesAndMarksActive(t *testing.T) {
	n := counterDesign(t)
	s := New(n, cell.ULP65(), nil)
	resetAndRun(s)
	// Drive din with X: out = parity AND X.
	s.SetPort("din", logic.Word{logic.X})
	s.Step()
	out := n.Port("out")[0]
	par, _ := s.PortUint("q")
	_ = par
	if v := s.Val(out); v != logic.X && v != logic.L {
		t.Fatalf("out should be X or 0 (parity may be 0), got %v", v)
	}
	// Step until parity is 1 so the AND is X, and check activity marking.
	sawXActive := false
	for i := 0; i < 8; i++ {
		s.Step()
		if s.Val(out) == logic.X && s.Active(out) {
			sawXActive = true
		}
	}
	if !sawXActive {
		t.Fatal("X output fed by toggling parity should be marked active")
	}
}

func TestActivityOnToggle(t *testing.T) {
	n := counterDesign(t)
	s := New(n, cell.ULP65(), nil)
	resetAndRun(s)
	q0 := n.Port("q")[0]
	s.Step()
	if !s.Active(q0) {
		t.Fatal("q0 toggles every cycle and must be active")
	}
	q3 := n.Port("q")[3]
	// q3 changes only every 8 cycles; find an inactive cycle.
	inactive := false
	for i := 0; i < 4; i++ {
		s.Step()
		if !s.Active(q3) {
			inactive = true
		}
	}
	if !inactive {
		t.Fatal("q3 should be idle in most cycles")
	}
}

func TestSnapshotRestoreDeterminism(t *testing.T) {
	n := counterDesign(t)
	s := New(n, cell.ULP65(), nil)
	resetAndRun(s)
	s.Run(3)
	snap := s.Snapshot()
	v1, _ := s.PortUint("q")

	s.Run(5)
	v2, _ := s.PortUint("q")
	if v2 == v1 {
		t.Fatal("counter should have advanced")
	}
	s.Restore(snap)
	if v, _ := s.PortUint("q"); v != v1 {
		t.Fatalf("restore failed: q=%d want %d", v, v1)
	}
	if s.Cycle() != snap.Cycle {
		t.Fatal("cycle not restored")
	}
	// Re-running yields identical trajectory.
	s.Run(5)
	if v, _ := s.PortUint("q"); v != v2 {
		t.Fatalf("replay diverged: q=%d want %d", v, v2)
	}
}

func TestStateHashDistinguishesStates(t *testing.T) {
	n := counterDesign(t)
	s := New(n, cell.ULP65(), nil)
	resetAndRun(s)
	h0 := s.StateHash()
	s.Step()
	h1 := s.StateHash()
	if h0 == h1 {
		t.Fatal("different counter states should hash differently")
	}
	// Same state after 16 increments (mod-16 counter, din steady).
	for i := 0; i < 16; i++ {
		s.Step()
	}
	if s.StateHash() != h1 {
		t.Fatal("wrapped counter should reproduce the same hash")
	}
}

func TestHooks(t *testing.T) {
	n := counterDesign(t)
	s := New(n, cell.ULP65(), nil)
	var cycles []uint64
	s.AddHook(func(c uint64, _ *Simulator) { cycles = append(cycles, c) })
	resetAndRun(s)
	if len(cycles) != 3 || cycles[0] != 1 || cycles[2] != 3 {
		t.Fatalf("hook cycles %v", cycles)
	}
}

func TestDynamicEnergyAndLeakage(t *testing.T) {
	n := counterDesign(t)
	s := New(n, cell.ULP65(), nil)
	resetAndRun(s)
	s.Step()
	e := s.DynamicEnergyFJ()
	if e <= 0 {
		t.Fatal("a counting cycle must dissipate energy")
	}
	// Clock-pin floor: even a held design dissipates DFF clock energy.
	s.SetPortUint("rst", 1)
	s.Step()
	s.Step()
	s.Step() // held at zero now; only clock pins dissipate
	floor := s.DynamicEnergyFJ()
	lib := cell.ULP65()
	wantFloor := 4 * lib.Params(cell.Dffr).EnergyClk
	if floor < wantFloor {
		t.Fatalf("floor %v below clock-pin energy %v", floor, wantFloor)
	}
	if s.LeakagePowerNW() <= 0 {
		t.Fatal("leakage must be positive")
	}
}

func TestSetNetPanicsOnDrivenNet(t *testing.T) {
	n := counterDesign(t)
	s := New(n, cell.ULP65(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.SetNet(n.Port("q")[0], logic.H)
}

type recordingBus struct {
	addrs []uint64
	feed  logic.Trit
	port  []netlist.NetID
	din   netlist.NetID
}

func (b *recordingBus) Tick(s *Simulator) {
	if v, ok := s.Port("q").Uint(); ok {
		b.addrs = append(b.addrs, v)
	}
	s.SetNet(b.din, b.feed)
}

func TestBusSeesRegisteredOutputsAndDrivesInputs(t *testing.T) {
	n := counterDesign(t)
	bus := &recordingBus{feed: logic.H, din: n.Port("din")[0]}
	s := New(n, cell.ULP65(), bus)
	s.SetPortUint("rst", 1)
	s.SetPortUint("din", 0)
	s.Step()
	s.Step()
	s.SetPortUint("rst", 0)
	s.Step()
	s.Run(3)
	// Bus observed the counter's registered value each cycle and fed din
	// high; din is an input so SetNet from the bus must be immediate.
	if len(bus.addrs) < 3 {
		t.Fatalf("bus observations: %v", bus.addrs)
	}
	last := bus.addrs[len(bus.addrs)-1]
	prev := bus.addrs[len(bus.addrs)-2]
	if last != prev+1 && !(prev == 15 && last == 0) {
		t.Fatalf("bus should see consecutive counts: %v", bus.addrs)
	}
	if s.Val(n.Port("din")[0]) != logic.H {
		t.Fatal("bus-driven input lost")
	}
}

func TestActiveCells(t *testing.T) {
	n := counterDesign(t)
	s := New(n, cell.ULP65(), nil)
	resetAndRun(s)
	s.Step()
	ids := s.ActiveCells(nil)
	if len(ids) == 0 {
		t.Fatal("counting cycle must have active cells")
	}
	for _, ci := range ids {
		if !s.Active(n.Cell(ci).Out) {
			t.Fatal("ActiveCells returned inactive cell")
		}
	}
}

// Refinement property: for any input sequence, every net value in a
// concrete run refines the value in a run where din is X.
func TestConcreteRefinesSymbolic(t *testing.T) {
	n := counterDesign(t)
	conc := New(n, cell.ULP65(), nil)
	sym := New(n, cell.ULP65(), nil)
	for _, s := range []*Simulator{conc, sym} {
		s.SetPortUint("rst", 1)
		s.Step()
		s.Step()
		s.SetPortUint("rst", 0)
	}
	seq := []uint64{0, 1, 1, 0, 1, 0, 0, 1, 1, 1}
	for i, din := range seq {
		conc.SetPortUint("din", din)
		sym.SetPort("din", logic.Word{logic.X})
		conc.Step()
		sym.Step()
		for id := 0; id < n.NumNets(); id++ {
			sv := sym.Val(netlist.NetID(id))
			cv := conc.Val(netlist.NetID(id))
			if sv != logic.X && sv != cv {
				t.Fatalf("cycle %d: net %s symbolic %v but concrete %v",
					i, n.NetName(netlist.NetID(id)), sv, cv)
			}
		}
	}
}

// Containment property (the Figure 3.4 check in miniature): gates active
// in the concrete run are a subset of gates active in the symbolic run.
func TestActivityContainment(t *testing.T) {
	n := counterDesign(t)
	conc := New(n, cell.ULP65(), nil)
	sym := New(n, cell.ULP65(), nil)
	for _, s := range []*Simulator{conc, sym} {
		s.SetPortUint("rst", 1)
		s.Step()
		s.Step()
		s.SetPortUint("rst", 0)
	}
	seq := []uint64{1, 0, 1, 1, 0, 0, 1, 0}
	for i, din := range seq {
		conc.SetPortUint("din", din)
		sym.SetPort("din", logic.Word{logic.X})
		conc.Step()
		sym.Step()
		for ci := 0; ci < n.NumCells(); ci++ {
			out := n.Cell(netlist.CellID(ci)).Out
			if conc.Active(out) && !sym.Active(out) {
				t.Fatalf("cycle %d: cell %d active concretely but not symbolically", i, ci)
			}
		}
	}
}
