package peakpower

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// ckptTestApp forks enough (a 3-input classify loop) that a mid-run
// cancellation reliably lands before exploration finishes.
const ckptTestApp = `
.org 0x0200
vals: .input 3
cnt:  .space 1
.org 0xf000
.entry main
main:
    mov #0x0080, &0x0120
    mov #0x0a00, sp
    mov #vals, r6
    mov #3, r7
    clr r8
lp: mov @r6+, r4
    cmp #50, r4
    jl small
    inc r8
small:
    dec r7
    jnz lp
    mov r8, &cnt
    mov #1, &0x0126
spin: jmp spin
`

func reportBytes(t *testing.T, r *Report) []byte {
	t.Helper()
	data, err := r.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCheckpointedAnalysisMatchesBaseline: turning checkpointing on must
// not perturb the sealed Report — byte-identical JSON at any worker count
// — and a successful analysis removes its journal.
func TestCheckpointedAnalysisMatchesBaseline(t *testing.T) {
	a, err := New()
	if err != nil {
		t.Fatal(err)
	}
	img, err := Assemble("ckpt", ckptTestApp)
	if err != nil {
		t.Fatal(err)
	}
	base, err := a.AnalyzeImage(context.Background(), img)
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, &base.Report)
	for _, w := range []int{1, 2} {
		path := filepath.Join(t.TempDir(), "job.ckpt")
		res, err := a.AnalyzeImage(context.Background(), img,
			WithCheckpoint(path), WithExploreWorkers(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got := reportBytes(t, &res.Report); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: checkpointed report differs from baseline", w)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("workers=%d: journal not removed after success (stat err %v)", w, err)
		}
	}
}

// TestCheckpointResumeSealsIdenticalReport is the crash-recovery
// determinism contract end to end: an analysis killed mid-exploration and
// resumed from its journal seals a Report BYTE-IDENTICAL to an
// uninterrupted run, at multiple worker counts.
func TestCheckpointResumeSealsIdenticalReport(t *testing.T) {
	a, err := New()
	if err != nil {
		t.Fatal(err)
	}
	img, err := Assemble("ckpt", ckptTestApp)
	if err != nil {
		t.Fatal(err)
	}
	base, err := a.AnalyzeImage(context.Background(), img)
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, &base.Report)

	for _, w := range []int{1, 2} {
		path := filepath.Join(t.TempDir(), "job.ckpt")
		ctx, cancel := context.WithCancel(context.Background())
		_, err := a.AnalyzeImage(ctx, img,
			WithCheckpoint(path), WithExploreWorkers(w),
			WithProgress(func(p Progress) {
				if p.Cycles >= 40 {
					cancel()
				}
			}, 1))
		cancel()
		if err == nil {
			t.Fatalf("workers=%d: cancelled analysis did not fail", w)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", w, err)
		}
		if _, serr := os.Stat(path); serr != nil {
			t.Fatalf("workers=%d: no journal after crash: %v", w, serr)
		}

		res, err := a.AnalyzeImage(context.Background(), img,
			WithCheckpoint(path), WithExploreWorkers(w))
		if err != nil {
			t.Fatalf("workers=%d resume: %v", w, err)
		}
		if got := reportBytes(t, &res.Report); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: resumed report differs from uninterrupted baseline", w)
		}
		if res.Hash != base.Hash {
			t.Fatalf("workers=%d: resumed hash %s != baseline %s", w, res.Hash, base.Hash)
		}
	}
}

// TestCheckpointForeignJournalRefused: a journal recorded for a different
// analysis (different image content under the same path) must fail the
// analysis rather than resume from foreign state.
func TestCheckpointForeignJournalRefused(t *testing.T) {
	a, err := New()
	if err != nil {
		t.Fatal(err)
	}
	img, err := Assemble("ckpt", ckptTestApp)
	if err != nil {
		t.Fatal(err)
	}
	other, err := Assemble("other", cacheTestApp)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "job.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := a.AnalyzeImage(ctx, img, WithCheckpoint(path), WithExploreWorkers(2),
		WithProgress(func(p Progress) {
			if p.Cycles >= 40 {
				cancel()
			}
		}, 1)); err == nil {
		t.Fatal("cancelled analysis did not fail")
	}
	cancel()
	if _, err := a.AnalyzeImage(context.Background(), other, WithCheckpoint(path)); err == nil ||
		!strings.Contains(err.Error(), "different analysis") {
		t.Fatalf("want foreign-journal refusal, got %v", err)
	}
}
