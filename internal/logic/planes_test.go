package logic

import "testing"

var trits = []Trit{L, H, X}

// lane spreads scalar inputs over several bit positions so shift bugs
// (an op leaking across lanes) are caught, not just bit-0 behavior.
var lanePositions = []uint{0, 1, 31, 63}

func packLane(t Trit, bit uint) (v, k uint64) {
	v, k = PlaneFromTrit(t)
	return v << bit, k << bit
}

func TestPlaneCanonicalEncoding(t *testing.T) {
	for _, tr := range trits {
		v, k := PlaneFromTrit(tr)
		if v&^k != 0 {
			t.Fatalf("%v: non-canonical encoding v=%b k=%b", tr, v, k)
		}
		if got := TritFromPlane(v, k, 0); got != tr {
			t.Fatalf("round trip %v -> %v", tr, got)
		}
	}
}

// TestPlaneUnaryOpsExhaustive checks Not/Buf against the scalar ops on
// every trit at every probe lane, asserting canonical outputs and no
// cross-lane leakage.
func TestPlaneUnaryOpsExhaustive(t *testing.T) {
	ops := []struct {
		name   string
		plane  func(av, ak uint64) (uint64, uint64)
		scalar func(Trit) Trit
	}{
		{"not", PlaneNot, Not},
		{"buf", PlaneBuf, func(a Trit) Trit { return a }},
	}
	for _, op := range ops {
		for _, a := range trits {
			for _, bit := range lanePositions {
				av, ak := packLane(a, bit)
				v, k := op.plane(av, ak)
				if v&^k != 0 {
					t.Fatalf("%s(%v): non-canonical output", op.name, a)
				}
				if v&^(1<<bit) != 0 || k&^(1<<bit) != 0 {
					t.Fatalf("%s(%v) at lane %d leaked into other lanes", op.name, a, bit)
				}
				if got, want := TritFromPlane(v, k, bit), op.scalar(a); got != want {
					t.Fatalf("%s(%v) = %v, want %v", op.name, a, got, want)
				}
			}
		}
	}
}

// TestPlaneBinaryOpsExhaustive checks every two-input plane op against
// its scalar counterpart on all 9 trit pairs at every probe lane.
func TestPlaneBinaryOpsExhaustive(t *testing.T) {
	ops := []struct {
		name   string
		plane  func(av, ak, bv, bk uint64) (uint64, uint64)
		scalar func(a, b Trit) Trit
	}{
		{"and", PlaneAnd, And},
		{"or", PlaneOr, Or},
		{"xor", PlaneXor, Xor},
		{"xnor", PlaneXnor, Xnor},
		{"nand", PlaneNand, Nand},
		{"nor", PlaneNor, Nor},
	}
	for _, op := range ops {
		for _, a := range trits {
			for _, b := range trits {
				for _, bit := range lanePositions {
					av, ak := packLane(a, bit)
					bv, bk := packLane(b, bit)
					v, k := op.plane(av, ak, bv, bk)
					if v&^k != 0 {
						t.Fatalf("%s(%v,%v): non-canonical output", op.name, a, b)
					}
					if v&^(1<<bit) != 0 || k&^(1<<bit) != 0 {
						t.Fatalf("%s(%v,%v) leaked across lanes", op.name, a, b)
					}
					if got, want := TritFromPlane(v, k, bit), op.scalar(a, b); got != want {
						t.Fatalf("%s(%v,%v) = %v, want %v", op.name, a, b, got, want)
					}
				}
			}
		}
	}
}

// TestPlaneMuxExhaustive checks all 27 select/data combinations.
func TestPlaneMuxExhaustive(t *testing.T) {
	for _, s := range trits {
		for _, a := range trits {
			for _, b := range trits {
				for _, bit := range lanePositions {
					sv, sk := packLane(s, bit)
					av, ak := packLane(a, bit)
					bv, bk := packLane(b, bit)
					v, k := PlaneMux(sv, sk, av, ak, bv, bk)
					if v&^k != 0 {
						t.Fatalf("mux(%v,%v,%v): non-canonical output", s, a, b)
					}
					if got, want := TritFromPlane(v, k, bit), Mux(s, a, b); got != want {
						t.Fatalf("mux(%v,%v,%v) = %v, want %v", s, a, b, got, want)
					}
				}
			}
		}
	}
}

// TestPlaneOpsFullWords drives all 64 lanes at once with mixed symbols
// and checks lane independence against the scalar ops.
func TestPlaneOpsFullWords(t *testing.T) {
	mk := func(seed uint64) (w []Trit, v, k uint64) {
		w = make([]Trit, 64)
		for i := range w {
			w[i] = trits[(seed>>(uint(i)%61)+uint64(i))%3]
			lv, lk := PlaneFromTrit(w[i])
			v |= lv << uint(i)
			k |= lk << uint(i)
		}
		return
	}
	aw, av, ak := mk(0x9E3779B97F4A7C15)
	bw, bv, bk := mk(0xD1B54A32D192ED03)
	v, k := PlaneAnd(av, ak, bv, bk)
	for i := 0; i < 64; i++ {
		if got, want := TritFromPlane(v, k, uint(i)), And(aw[i], bw[i]); got != want {
			t.Fatalf("lane %d: and(%v,%v) = %v, want %v", i, aw[i], bw[i], got, want)
		}
	}
	v, k = PlaneMux(av, ak, bv, bk, av, ak)
	for i := 0; i < 64; i++ {
		if got, want := TritFromPlane(v, k, uint(i)), Mux(aw[i], bw[i], aw[i]); got != want {
			t.Fatalf("lane %d: mux = %v, want %v", i, got, want)
		}
	}
}
