// Package opt implements the peak-power software optimizations of
// Sections 3.5 and 5.1: source-to-source transforms, guided by the COI
// (cycle-of-interest) analysis, that replace instruction sequences
// causing power spikes with lower-instantaneous-activity equivalents:
//
//   - OPT1 (register-indexed loads): `mov x(rN), dst` splits its source
//     micro-operations across instructions — compute the address into a
//     free register, then load register-indirect.
//   - OPT2 (POP): `pop rD` (= mov @sp+, rD) splits into the data move and
//     the stack-pointer increment, so bus activity and the incrementer do
//     not fire in the same instruction.
//   - OPT3 (multiplier overlap): insert a NOP after the OP2 write, so the
//     multiplier array's active cycle overlaps the cheapest possible core
//     activity instead of the next instruction's fetch/decode.
//
// Both splits clobber status flags the originals preserved, so applying
// a transform is paired with differential verification on the behavioral
// reference (VerifyEquivalent): the paper's workflow of "apply only the
// optimizations that are guaranteed to reduce peak power" with
// correctness checked by re-running the analysis.
package opt

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/isim"
)

// Result reports one transform application.
type Result struct {
	// Name is the transform's name (OPT1/OPT2/OPT3).
	Name string
	// Applied is the number of rewritten sites.
	Applied int
	// Source is the transformed program text.
	Source string
}

// line splits an assembly line into (label, stmt, comment-preserved body).
func splitLabel(l string) (label, rest string) {
	code := l
	if i := strings.IndexByte(code, ';'); i >= 0 {
		code = code[:i]
	}
	if i := strings.IndexByte(code, ':'); i >= 0 {
		head := strings.TrimSpace(code[:i])
		if head != "" && !strings.ContainsAny(head, " \t") {
			return code[:i+1], l[len(code[:i+1]):]
		}
	}
	return "", l
}

// fields extracts (mnemonic, operands) from a statement, stripping
// comments.
func fields(stmt string) (mnem string, ops []string) {
	code := stmt
	if i := strings.IndexByte(code, ';'); i >= 0 {
		code = code[:i]
	}
	code = strings.TrimSpace(code)
	if code == "" || strings.HasPrefix(code, ".") {
		return "", nil
	}
	parts := strings.SplitN(code, " ", 2)
	mnem = strings.ToLower(parts[0])
	if len(parts) == 2 {
		for _, f := range splitTop(parts[1]) {
			ops = append(ops, strings.TrimSpace(f))
		}
	}
	return mnem, ops
}

func splitTop(s string) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, s[start:])
}

// usedRegs scans a program for general-purpose register usage.
func usedRegs(src string) map[int]bool {
	used := make(map[int]bool)
	low := strings.ToLower(src)
	for r := 4; r <= 15; r++ {
		tok := fmt.Sprintf("r%d", r)
		for i := 0; i+len(tok) <= len(low); i++ {
			if !strings.HasPrefix(low[i:], tok) {
				continue
			}
			// token boundaries: not preceded/followed by ident chars
			if i > 0 && isWordChar(low[i-1]) {
				continue
			}
			end := i + len(tok)
			if end < len(low) && (isWordChar(low[end]) || low[end] >= '0' && low[end] <= '9') {
				continue
			}
			used[r] = true
		}
	}
	return used
}

func isWordChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= '0' && c <= '9'
}

// freeReg picks an unused general-purpose register, or -1.
func freeReg(src string) int {
	used := usedRegs(src)
	for r := 15; r >= 4; r-- {
		if !used[r] {
			return r
		}
	}
	return -1
}

func isReg(op string) bool {
	op = strings.ToLower(op)
	if op == "sp" || op == "pc" || op == "sr" || op == "cg" {
		return true
	}
	if len(op) >= 2 && op[0] == 'r' {
		for i := 1; i < len(op); i++ {
			if op[i] < '0' || op[i] > '9' {
				return false
			}
		}
		return true
	}
	return false
}

// isIndexedLoadSrc matches `expr(rN)` sources whose base is a general
// register (not the stack pointer, whose indexed loads address locals).
func isIndexedLoadSrc(op string) (expr, base string, ok bool) {
	if !strings.HasSuffix(op, ")") {
		return "", "", false
	}
	lp := strings.IndexByte(op, '(')
	if lp <= 0 { // require a non-empty index expression
		return "", "", false
	}
	base = strings.ToLower(strings.TrimSpace(op[lp+1 : len(op)-1]))
	if !strings.HasPrefix(base, "r") || !isReg(base) {
		return "", "", false
	}
	return strings.TrimSpace(op[:lp]), base, true
}

// OPT1 rewrites register-indexed loads through a free register.
func OPT1(src string) Result {
	rT := freeReg(src)
	if rT < 0 {
		return Result{Name: "OPT1", Source: src}
	}
	tmp := fmt.Sprintf("r%d", rT)
	lines := strings.Split(src, "\n")
	var out []string
	applied := 0
	for _, l := range lines {
		label, rest := splitLabel(l)
		mnem, ops := fields(rest)
		if mnem == "mov" && len(ops) == 2 {
			if expr, base, ok := isIndexedLoadSrc(ops[0]); ok && !strings.HasPrefix(ops[1], "#") {
				if label != "" {
					out = append(out, label)
				}
				out = append(out,
					fmt.Sprintf("    mov %s, %s ; OPT1", base, tmp),
					fmt.Sprintf("    add #%s, %s ; OPT1", expr, tmp),
					fmt.Sprintf("    mov @%s, %s ; OPT1", tmp, ops[1]))
				applied++
				continue
			}
		}
		out = append(out, l)
	}
	return Result{Name: "OPT1", Applied: applied, Source: strings.Join(out, "\n")}
}

// OPT2 splits POP into its micro-operations.
func OPT2(src string) Result {
	lines := strings.Split(src, "\n")
	var out []string
	applied := 0
	for _, l := range lines {
		label, rest := splitLabel(l)
		mnem, ops := fields(rest)
		if mnem == "pop" && len(ops) == 1 && isReg(ops[0]) {
			if label != "" {
				out = append(out, label)
			}
			out = append(out,
				fmt.Sprintf("    mov @sp, %s ; OPT2", ops[0]),
				"    add #2, sp ; OPT2")
			applied++
			continue
		}
		out = append(out, l)
	}
	return Result{Name: "OPT2", Applied: applied, Source: strings.Join(out, "\n")}
}

// OPT3 inserts a NOP after every multiplier OP2 write whose successor is
// not already a NOP, so the multiplier's active cycle coincides with
// minimal core activity.
func OPT3(src string) Result {
	lines := strings.Split(src, "\n")
	var out []string
	applied := 0
	for i, l := range lines {
		out = append(out, l)
		_, rest := splitLabel(l)
		mnem, ops := fields(rest)
		if mnem == "mov" && len(ops) == 2 && strings.Contains(strings.ToLower(ops[1]), "0x0138") {
			nextIsNop := false
			if i+1 < len(lines) {
				_, nrest := splitLabel(lines[i+1])
				nm, _ := fields(nrest)
				nextIsNop = nm == "nop"
			}
			if !nextIsNop {
				out = append(out, "    nop ; OPT3")
				applied++
			}
		}
	}
	return Result{Name: "OPT3", Applied: applied, Source: strings.Join(out, "\n")}
}

// ApplyAll applies OPT1, OPT2, and OPT3 in sequence.
func ApplyAll(src string) (string, map[string]int) {
	counts := make(map[string]int)
	for _, f := range []func(string) Result{OPT1, OPT2, OPT3} {
		r := f(src)
		src = r.Source
		counts[r.Name] = r.Applied
	}
	return src, counts
}

// VerifyEquivalent checks that the transformed program computes the same
// results as the original on the behavioral reference, over `sets` drawn
// input sets: same final RAM contents, same output port, both halting.
// The transforms clobber flags the originals preserved; this differential
// check is the guard that keeps only semantics-preserving rewrites.
func VerifyEquivalent(b *bench.Benchmark, newSrc string, sets int, seed int64) error {
	origImg, err := b.Image()
	if err != nil {
		return err
	}
	newImg, err := isa.Assemble(b.Name+"-opt", newSrc)
	if err != nil {
		return fmt.Errorf("opt: transformed program does not assemble: %w", err)
	}
	for i := 0; i < sets; i++ {
		r1 := rand.New(rand.NewSource(seed + int64(i)))
		r2 := rand.New(rand.NewSource(seed + int64(i)))
		inputs1 := b.GenInputs(r1)
		inputs2 := b.GenInputs(r2)
		m1, err := isim.New(origImg, inputs1)
		if err != nil {
			return err
		}
		m2, err := isim.New(newImg, inputs2)
		if err != nil {
			return err
		}
		if b.UsesPort {
			m1.PortIn = b.GenPort(r1)
			m2.PortIn = b.GenPort(r2)
		}
		if err := m1.Run(500000); err != nil {
			return fmt.Errorf("opt: original: %w", err)
		}
		if err := m2.Run(500000); err != nil {
			return fmt.Errorf("opt: transformed: %w", err)
		}
		for addr := uint16(0x0200); addr < 0x0A00; addr += 2 {
			// Skip stack-region scratch: compare only words below the
			// initial stack that either program wrote.
			if m1.Mem(addr) != m2.Mem(addr) {
				return fmt.Errorf("opt: set %d: mem[%#04x] differs: %#04x vs %#04x",
					i, addr, m1.Mem(addr), m2.Mem(addr))
			}
		}
		if m1.P1Out() != m2.P1Out() {
			return fmt.Errorf("opt: set %d: port output differs", i)
		}
	}
	return nil
}

// Overhead compares instruction-count cost of a transformed program.
type Overhead struct {
	// OrigCycles and NewCycles are reference-model cycle counts.
	OrigCycles, NewCycles uint64
	// PerfDegradationPct = (new-orig)/orig × 100.
	PerfDegradationPct float64
}

// MeasureOverhead runs both versions on the reference model with one
// input set and reports the performance cost (Figure 5.6's x-axis data).
func MeasureOverhead(b *bench.Benchmark, newSrc string, seed int64) (Overhead, error) {
	origImg, err := b.Image()
	if err != nil {
		return Overhead{}, err
	}
	newImg, err := isa.Assemble(b.Name+"-opt", newSrc)
	if err != nil {
		return Overhead{}, err
	}
	r1 := rand.New(rand.NewSource(seed))
	r2 := rand.New(rand.NewSource(seed))
	m1, err := isim.New(origImg, b.GenInputs(r1))
	if err != nil {
		return Overhead{}, err
	}
	m2, err := isim.New(newImg, b.GenInputs(r2))
	if err != nil {
		return Overhead{}, err
	}
	if b.UsesPort {
		m1.PortIn = b.GenPort(r1)
		m2.PortIn = b.GenPort(r2)
	}
	if err := m1.Run(500000); err != nil {
		return Overhead{}, err
	}
	if err := m2.Run(500000); err != nil {
		return Overhead{}, err
	}
	ov := Overhead{OrigCycles: m1.Cycles, NewCycles: m2.Cycles}
	if m1.Cycles > 0 {
		ov.PerfDegradationPct = 100 * (float64(m2.Cycles) - float64(m1.Cycles)) / float64(m1.Cycles)
	}
	return ov, nil
}
