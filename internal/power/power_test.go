package power

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/cell"
	"repro/internal/gsim"
	"repro/internal/isa"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/symx"
	"repro/internal/ulp430"
)

var (
	cpuOnce sync.Once
	cpuNet  *netlist.Netlist
)

func sharedCPU(t *testing.T) *netlist.Netlist {
	t.Helper()
	cpuOnce.Do(func() {
		n, err := ulp430.BuildCPU()
		if err != nil {
			panic(err)
		}
		cpuNet = n
	})
	return cpuNet
}

func model() Model { return Model{Lib: cell.ULP65(), ClockHz: 100e6} }

const haltSeq = `
    mov #1, &0x0126
spin: jmp spin
`

// TestFigure3_2Example reproduces the paper's Figure 3.2: three gates
// with overlapping Xs assigned to maximize power in even vs odd cycles.
func TestFigure3_2Example(t *testing.T) {
	lib := cell.ULP65()
	x, l, h := logic.X, logic.L, logic.H
	// Nine cycles (paper's columns 1..9 map to Vals[1..9]; Vals[0] is a
	// preamble equal to column 1).
	g1 := []logic.Trit{l, l, l, h, x, x, x, l, l, l}
	g2 := []logic.Trit{l, l, x, x, x, x, x, x, l, l}
	g3 := []logic.Trit{l, l, l, l, h, x, x, x, x, l}
	w := &Window{
		Kinds: []cell.Kind{cell.Nand2, cell.Nand2, cell.Nand2},
		Names: []string{"g1", "g2", "g3"},
	}
	for c := 0; c < 10; c++ {
		w.Vals = append(w.Vals, []logic.Trit{g1[c], g2[c], g3[c]})
		act := make([]bool, 3)
		if c > 0 {
			for g, col := range [][]logic.Trit{g1, g2, g3} {
				act[g] = col[c] != col[c-1] || col[c] == x
			}
		}
		w.Act = append(w.Act, act)
	}
	m := model()
	peak, even, odd := AlgorithmTwo(w, m)

	// All Xs must be assigned in the parity cycles they maximize.
	for c := 1; c < 10; c++ {
		for g := 0; g < 3; g++ {
			if c%2 == 0 && w.Act[c][g] && even.Vals[c][g] == logic.X && w.Vals[c][g] == logic.X {
				t.Errorf("even assignment left X at cycle %d gate %d", c, g)
			}
		}
	}
	// NAND2's max transition is the rise (0->1): when both cycles are X,
	// the assignment must produce a rising edge in the target cycle.
	first, second, _ := lib.MaxTransition(cell.Nand2)
	if first != logic.L || second != logic.H {
		t.Fatalf("NAND2 max transition should be rise, got %v->%v", first, second)
	}
	// g2 is X at cycles 3,4 (both X): even assignment at cycle 4 must be
	// 0 -> 1.
	if even.Vals[3][1] != logic.L || even.Vals[4][1] != logic.H {
		t.Errorf("even both-X assignment: got %v->%v", even.Vals[3][1], even.Vals[4][1])
	}
	// Odd assignment maximizes odd cycles instead.
	if odd.Vals[4][1] != logic.L || odd.Vals[5][1] != logic.H {
		t.Errorf("odd both-X assignment: got %v->%v", odd.Vals[4][1], odd.Vals[5][1])
	}
	// Interleaved peak equals the streaming rule.
	stream := StreamingTrace(w, m)
	for c := 1; c < 10; c++ {
		if math.Abs(peak[c]-stream[c]) > 1e-9 {
			t.Errorf("cycle %d: interleaved %v != streaming %v", c, peak[c], stream[c])
		}
	}
}

// TestAlgorithmTwoMatchesStreamingOnCPU captures a real window with Xs
// flowing through the datapath and checks the literal even/odd
// construction against the streaming bound, cycle for cycle.
func TestAlgorithmTwoMatchesStreamingOnCPU(t *testing.T) {
	img, err := isa.Assemble("w", `
.org 0x0200
v: .input 2
.org 0xf000
.entry main
main:
    mov &v, r4        ; X
    mov &v+2, r5      ; X
    add r4, r5        ; X arithmetic
    xor r4, r5
    mov r5, &0x0204
    mov #0x0080, &0x0120
loop:
    add #1, r6
    jmp loop
`)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ulp430.NewSystem(sharedCPU(t), cell.ULP65(), img, ulp430.SymbolicInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.Reset()
	w, err := Capture(sys, 60)
	if err != nil {
		t.Fatal(err)
	}
	m := model()
	peak, _, _ := AlgorithmTwo(w, m)
	stream := StreamingTrace(w, m)
	for c := 1; c <= w.Cycles(); c++ {
		if math.Abs(peak[c]-stream[c]) > 1e-9 {
			t.Fatalf("cycle %d: literal %v != streaming %v", c, peak[c], stream[c])
		}
	}
	// The window must actually contain X activity for this test to mean
	// anything.
	sawX := false
	for c := 1; c < len(w.Vals); c++ {
		for g := range w.Kinds {
			if w.Act[c][g] && w.Vals[c][g] == logic.X {
				sawX = true
			}
		}
	}
	if !sawX {
		t.Fatal("window contained no active X gates")
	}
}

func exploreWithSink(t *testing.T, src string) (*symx.Tree, *Sink, *isa.Image) {
	t.Helper()
	img, err := isa.Assemble("p", src)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ulp430.NewSystem(sharedCPU(t), cell.ULP65(), img, ulp430.SymbolicInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sink := NewSink(sys, model(), img, 8)
	tree, err := symx.Explore(sys, sink, symx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tree, sink, img
}

const branchy = `
.org 0x0200
v: .input 2
.org 0xf000
.entry main
main:
    mov #0x0a00, sp
    mov &v, r4
    mov &v+2, r5
    cmp r4, r5
    jl less
    add r4, r5
    jmp done
less:
    sub r5, r4
done:
    mov r4, &0x0204
` + haltSeq

// TestXBoundDominatesConcrete: the symbolic per-cycle bound must be >=
// the concrete power of any input (Figures 3.5 and 5.1's containment).
func TestXBoundDominatesConcrete(t *testing.T) {
	_, sink, img := exploreWithSink(t, branchy)
	if sink.PeakMW() <= 0 {
		t.Fatal("no peak recorded")
	}
	for _, inputs := range [][]uint16{{0, 0}, {5, 9}, {9, 5}, {0xFFFF, 1}, {1, 0xFFFF}, {1234, 4321}} {
		sys, err := ulp430.NewSystem(sharedCPU(t), cell.ULP65(), img, ulp430.ConcreteInputs, inputs)
		if err != nil {
			t.Fatal(err)
		}
		csink := NewSink(sys, model(), img, 0)
		sys.Reset()
		for i := 0; i < 100000 && !sys.Halted(); i++ {
			sys.Step()
			csink.OnCycle(sys)
		}
		if !sys.Halted() {
			t.Fatal("concrete run did not halt")
		}
		if csink.PeakMW() > sink.PeakMW()+1e-9 {
			t.Errorf("inputs %v: concrete peak %.6f mW exceeds X-bound %.6f mW",
				inputs, csink.PeakMW(), sink.PeakMW())
		}
		// Toggle containment (Figure 3.4): every cell active in the
		// concrete run must be in the symbolic union.
		for ci, act := range csink.UnionActive {
			if act && !sink.UnionActive[ci] {
				t.Errorf("inputs %v: cell %d active concretely but not in X-based union", inputs, ci)
			}
		}
	}
}

// TestPerCycleTraceBound aligns the straight-line prefix of a concrete
// run with the symbolic trace (Figure 3.5's per-cycle bound).
func TestPerCycleTraceBound(t *testing.T) {
	straight := `
.org 0x0200
v: .input 1
.org 0xf000
.entry main
main:
    mov &v, r4
    add r4, r4
    xor #0x5a5a, r4
    mov r4, &0x0202
` + haltSeq
	_, sink, img := exploreWithSink(t, straight)
	symTrace := append([]float64(nil), sink.Trace...)

	sys, err := ulp430.NewSystem(sharedCPU(t), cell.ULP65(), img, ulp430.ConcreteInputs, []uint16{0xBEEF})
	if err != nil {
		t.Fatal(err)
	}
	csink := NewSink(sys, model(), img, 0)
	sys.Reset()
	for i := 0; i < 100000 && !sys.Halted(); i++ {
		sys.Step()
		csink.OnCycle(sys)
	}
	if len(csink.Trace) != len(symTrace) {
		t.Fatalf("trace lengths differ: %d vs %d (straight-line program)", len(csink.Trace), len(symTrace))
	}
	for c := range symTrace {
		if csink.Trace[c] > symTrace[c]+1e-9 {
			t.Errorf("cycle %d: concrete %.6f > bound %.6f", c, csink.Trace[c], symTrace[c])
		}
	}
}

func TestCOIAttribution(t *testing.T) {
	_, sink, _ := exploreWithSink(t, branchy)
	if len(sink.TopK) == 0 {
		t.Fatal("no COIs recorded")
	}
	for i := 1; i < len(sink.TopK); i++ {
		if sink.TopK[i].PowerMW > sink.TopK[i-1].PowerMW {
			t.Fatal("TopK not sorted")
		}
	}
	best := sink.TopK[0]
	if best.PowerMW != sink.Best.PowerMW {
		t.Errorf("TopK[0] %.6f != Best %.6f", best.PowerMW, sink.Best.PowerMW)
	}
	// Module breakdown sums to total minus leakage (within float noise).
	sum := 0.0
	for _, mw := range best.ByModuleMW {
		sum += mw
	}
	leak := model().LeakageMW(sharedCPU(t))
	if math.Abs(sum+leak-best.PowerMW) > 1e-6 {
		t.Errorf("module split %v + leak %v != total %v", sum, leak, best.PowerMW)
	}
	// Attribution renders.
	if sink.Instruction(best) == "" || best.State == "" {
		t.Error("missing attribution")
	}
	if len(sink.Modules()) == 0 {
		t.Error("no module names")
	}
	if len(sink.Best.ActiveCells) == 0 {
		t.Error("best peak has no active cells recorded")
	}
}

func TestWindowVCDEmission(t *testing.T) {
	img, err := isa.Assemble("w", `
.org 0xf000
.entry main
main:
    mov #5, r4
    add r4, r4
`+haltSeq)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ulp430.NewSystem(sharedCPU(t), cell.ULP65(), img, ulp430.ConcreteInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.Reset()
	w, err := Capture(sys, 10)
	if err != nil {
		t.Fatal(err)
	}
	var raw, evenBuf bytes.Buffer
	if err := w.WriteVCD(&raw, nil, "10ns"); err != nil {
		t.Fatal(err)
	}
	_, even, _ := AlgorithmTwo(w, model())
	if err := w.WriteVCD(&evenBuf, even, "10ns"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(raw.String(), "$enddefinitions") || raw.Len() == 0 {
		t.Fatal("raw VCD malformed")
	}
	if !strings.Contains(evenBuf.String(), "parity0") {
		t.Fatal("even VCD missing module tag")
	}
}

func TestLeakageIncluded(t *testing.T) {
	m := model()
	leak := m.LeakageMW(sharedCPU(t))
	if leak <= 0 {
		t.Fatal("leakage should be positive")
	}
	// Any cycle's power must be at least clock floor + leakage.
	_, sink, _ := exploreWithSink(t, `
.org 0xf000
.entry main
main:
`+haltSeq)
	clkFJ := 0.0
	nl := sharedCPU(t)
	for ci := 0; ci < nl.NumCells(); ci++ {
		clkFJ += m.Lib.Params(nl.Cell(netlist.CellID(ci)).Kind).EnergyClk
	}
	floor := m.PowerMW(clkFJ) + leak
	for c, p := range sink.Trace {
		if p < floor-1e-9 {
			t.Fatalf("cycle %d power %.6f below floor %.6f", c, p, floor)
		}
	}
}

// TestSinkFastPathMatchesCycleBoundFJ pins the streaming sink's
// O(active-cells) accumulation to the reference all-cells sum of
// CycleBoundFJ, per cycle and per module, on both gate engines with X
// values in flight.
func TestSinkFastPathMatchesCycleBoundFJ(t *testing.T) {
	img, err := isa.Assemble("fp", `
.org 0x0200
v: .input 2
.org 0xf000
.entry main
main:
    mov #0x0080, &0x0120
    mov &v, r4
    add &v+2, r4
    xor r4, r5
    mov r5, &0x0204
`+haltSeq)
	if err != nil {
		t.Fatal(err)
	}
	m := model()
	for _, engine := range []gsim.Engine{gsim.EnginePacked, gsim.EngineScalar} {
		sys, err := ulp430.NewSystemEngine(engine, sharedCPU(t), m.Lib, img, ulp430.SymbolicInputs, nil)
		if err != nil {
			t.Fatal(err)
		}
		sink := NewSink(sys, m, img, 4)
		sys.Reset()
		ref := make([]float64, len(sink.Modules()))
		for c := 0; c < 40; c++ {
			sys.Step()
			sink.OnCycle(sys)
			want := m.PowerMW(CycleBoundFJ(sys.Sim, ref)) + m.LeakageMW(sys.Sim.Netlist())
			got := sink.Trace[len(sink.Trace)-1]
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("%v cycle %d: sink %v, reference %v", engine, c, got, want)
			}
		}
		// The module split is materialized lazily on peak records; it
		// must still account for the peak's full dynamic power.
		sum := 0.0
		for _, mw := range sink.Best.ByModuleMW {
			sum += mw
		}
		if math.Abs(sum-(sink.Best.PowerMW-m.LeakageMW(sys.Sim.Netlist()))) > 1e-9 {
			t.Fatalf("%v: module split sums to %v, peak dynamic power is %v",
				engine, sum, sink.Best.PowerMW-m.LeakageMW(sys.Sim.Netlist()))
		}
	}
}
