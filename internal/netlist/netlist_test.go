package netlist

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cell"
)

// buildToy constructs a tiny 1-bit toggler: q' = q XOR en, with en a
// primary input, plus a tie and a buffered output.
func buildToy(t *testing.T) *Netlist {
	t.Helper()
	n := New("toy")
	en := n.NewNet("en")
	n.MarkInput(en)
	q := n.NewNet("q")
	d := n.NewNet("d")
	out := n.NewNet("out")
	zero := n.NewNet("zero")
	n.AddCell(cell.Xor2, "core", "x1", d, q, en)
	n.AddCell(cell.Dff, "core", "q_reg", q, d)
	n.AddCell(cell.Buf, "io", "ob", out, q)
	n.AddCell(cell.Tie0, "io", "t0", zero)
	n.DefinePort("en", []NetID{en})
	n.DefinePort("out", []NetID{out})
	if err := n.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n
}

func TestBuildToy(t *testing.T) {
	n := buildToy(t)
	if n.NumCells() != 4 || n.NumNets() != 5 {
		t.Fatalf("cells=%d nets=%d", n.NumCells(), n.NumNets())
	}
	if len(n.Sequential()) != 1 {
		t.Fatalf("seq=%d", len(n.Sequential()))
	}
	if !n.Built() {
		t.Fatal("not built")
	}
	// The XOR depends on a DFF output and a PI: level 0. Buf too.
	if len(n.Levels()) != 1 {
		t.Fatalf("levels=%d", len(n.Levels()))
	}
	if got := len(n.Port("en")); got != 1 {
		t.Fatalf("port en size %d", got)
	}
	if n.Port("nope") != nil {
		t.Fatal("undefined port should be nil")
	}
}

func TestLevelization(t *testing.T) {
	// Chain: a -> inv -> inv -> inv; three levels.
	n := New("chain")
	a := n.NewNet("a")
	n.MarkInput(a)
	b := n.NewNet("b")
	c := n.NewNet("c")
	d := n.NewNet("d")
	n.AddCell(cell.Inv, "m", "i1", b, a)
	n.AddCell(cell.Inv, "m", "i2", c, b)
	n.AddCell(cell.Inv, "m", "i3", d, c)
	if err := n.Build(); err != nil {
		t.Fatal(err)
	}
	if len(n.Levels()) != 3 {
		t.Fatalf("levels=%d, want 3", len(n.Levels()))
	}
	// Check ordering: each level's cells only read nets driven by earlier
	// levels or inputs.
	seen := map[NetID]bool{a: true}
	for _, level := range n.Levels() {
		outs := []NetID{}
		for _, ci := range level {
			cc := n.Cell(ci)
			for pin := 0; pin < cc.Kind.NumInputs(); pin++ {
				if !seen[cc.In[pin]] {
					t.Fatalf("cell %s reads not-yet-driven net", cc.Name)
				}
			}
			outs = append(outs, cc.Out)
		}
		for _, o := range outs {
			seen[o] = true
		}
	}
}

func TestBuildErrors(t *testing.T) {
	t.Run("multiply driven", func(t *testing.T) {
		n := New("bad")
		a := n.NewNet("a")
		n.MarkInput(a)
		b := n.NewNet("b")
		n.AddCell(cell.Inv, "m", "i1", b, a)
		n.AddCell(cell.Buf, "m", "i2", b, a)
		if err := n.Build(); err == nil || !strings.Contains(err.Error(), "multiply driven") {
			t.Fatalf("err=%v", err)
		}
	})
	t.Run("undriven", func(t *testing.T) {
		n := New("bad")
		a := n.NewNet("a")
		b := n.NewNet("b")
		n.AddCell(cell.Inv, "m", "i1", b, a)
		if err := n.Build(); err == nil || !strings.Contains(err.Error(), "no driver") {
			t.Fatalf("err=%v", err)
		}
	})
	t.Run("comb cycle", func(t *testing.T) {
		n := New("bad")
		a := n.NewNet("a")
		b := n.NewNet("b")
		n.AddCell(cell.Inv, "m", "i1", b, a)
		n.AddCell(cell.Inv, "m", "i2", a, b)
		if err := n.Build(); err == nil || !strings.Contains(err.Error(), "cycle") {
			t.Fatalf("err=%v", err)
		}
	})
	t.Run("input driven", func(t *testing.T) {
		n := New("bad")
		a := n.NewNet("a")
		n.MarkInput(a)
		b := n.NewNet("b")
		n.MarkInput(b)
		n.AddCell(cell.Inv, "m", "i1", b, a)
		if err := n.Build(); err == nil || !strings.Contains(err.Error(), "primary input") {
			t.Fatalf("err=%v", err)
		}
	})
	t.Run("seq loop ok", func(t *testing.T) {
		// A DFF in the loop breaks the combinational cycle: must build.
		n := New("ok")
		q := n.NewNet("q")
		d := n.NewNet("d")
		n.AddCell(cell.Inv, "m", "i1", d, q)
		n.AddCell(cell.Dff, "m", "q_reg", q, d)
		if err := n.Build(); err != nil {
			t.Fatalf("seq loop should build: %v", err)
		}
	})
}

func TestAddCellArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n := New("bad")
	a := n.NewNet("a")
	b := n.NewNet("b")
	n.AddCell(cell.Nand2, "m", "g", b, a) // needs 2 inputs
}

func TestStats(t *testing.T) {
	n := buildToy(t)
	s := n.Stats(cell.ULP65())
	if s.Cells != 4 || s.Seq != 1 || s.Nets != 5 {
		t.Fatalf("stats %+v", s)
	}
	if s.ByModule["core"] != 2 || s.ByModule["io"] != 2 {
		t.Fatalf("by module %v", s.ByModule)
	}
	if s.ByKind["XOR2"] != 1 || s.ByKind["DFF"] != 1 {
		t.Fatalf("by kind %v", s.ByKind)
	}
	if s.AreaUM2 <= 0 {
		t.Fatal("area must be positive")
	}
	got := SortedModuleCounts(s)
	if len(got) != 2 || got[0] != "core:2" || got[1] != "io:2" {
		t.Fatalf("SortedModuleCounts = %v", got)
	}
}

func TestModuleHierarchyGrouping(t *testing.T) {
	n := New("m")
	a := n.NewNet("a")
	n.MarkInput(a)
	b := n.NewNet("b")
	c := n.NewNet("c")
	n.AddCell(cell.Inv, "exec_unit.alu", "i1", b, a)
	n.AddCell(cell.Inv, "exec_unit.register_file", "i2", c, b)
	if err := n.Build(); err != nil {
		t.Fatal(err)
	}
	s := n.Stats(cell.ULP65())
	if s.ByModule["exec_unit"] != 2 {
		t.Fatalf("hierarchical paths should group under top module: %v", s.ByModule)
	}
	if len(n.Modules()) != 1 || n.Modules()[0] != "exec_unit" {
		t.Fatalf("Modules() = %v", n.Modules())
	}
	if n.ModuleIndex(0) != 0 || n.ModuleIndex(1) != 0 {
		t.Fatal("ModuleIndex wrong")
	}
}

func TestVerilogRoundTrip(t *testing.T) {
	n := buildToy(t)
	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"module toy", "XOR2", "DFF", "(* module = \"core\" *)", "endmodule", "// port en"} {
		if !strings.Contains(text, want) {
			t.Fatalf("verilog output missing %q:\n%s", want, text)
		}
	}
	p, err := ParseVerilog(&buf)
	if err != nil {
		t.Fatalf("ParseVerilog: %v", err)
	}
	if p.Name != "toy" || p.NumCells() != n.NumCells() {
		t.Fatalf("round trip mismatch: %s %d", p.Name, p.NumCells())
	}
	// Cell-by-cell comparison via name -> (kind, module, net names).
	type sig struct {
		kind   cell.Kind
		module string
		out    string
		ins    [3]string
	}
	sigOf := func(nl *Netlist, c *Cell) sig {
		s := sig{kind: c.Kind, module: c.Module, out: nl.NetName(c.Out)}
		for pin := 0; pin < c.Kind.NumInputs(); pin++ {
			s.ins[pin] = nl.NetName(c.In[pin])
		}
		return s
	}
	orig := map[string]sig{}
	for i := 0; i < n.NumCells(); i++ {
		c := n.Cell(CellID(i))
		orig[c.Name] = sigOf(n, c)
	}
	for i := 0; i < p.NumCells(); i++ {
		c := p.Cell(CellID(i))
		if got, want := sigOf(p, c), orig[c.Name]; got != want {
			t.Fatalf("cell %s mismatch: got %+v want %+v", c.Name, got, want)
		}
	}
	// Ports survive.
	if len(p.Port("en")) != 1 || len(p.Port("out")) != 1 {
		t.Fatal("ports lost in round trip")
	}
	// Inputs survive.
	if len(p.Inputs()) != len(n.Inputs()) {
		t.Fatal("inputs lost")
	}
	// Second round trip is stable.
	var buf2, buf3 bytes.Buffer
	if err := p.WriteVerilog(&buf2); err != nil {
		t.Fatal(err)
	}
	text2 := buf2.String()
	p2, err := ParseVerilog(strings.NewReader(text2))
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.WriteVerilog(&buf3); err != nil {
		t.Fatal(err)
	}
	if text2 != buf3.String() {
		t.Fatal("verilog writer not stable across round trips")
	}
}

func TestParseVerilogErrors(t *testing.T) {
	cases := map[string]string{
		"no module":    "wire a;\n",
		"bad instance": "module m ();\nFOO u1 (.Y(a));\nendmodule\n",
		"missing pin":  "module m (clk, a);\ninput a;\nwire b;\nNAND2 g (.Y(b), .A(a));\nendmodule\n",
		"bad port":     "module m (clk);\n// port p = nosuch\nendmodule\n",
	}
	for name, src := range cases {
		if _, err := ParseVerilog(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestEscapedIdentifiers(t *testing.T) {
	n := New("esc")
	a := n.NewNet("bus[3]") // needs escaping
	n.MarkInput(a)
	b := n.NewNet("weird.name")
	n.AddCell(cell.Inv, "top", "inv[0]", b, a)
	if err := n.Build(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := ParseVerilog(&buf)
	if err != nil {
		t.Fatalf("ParseVerilog: %v\n%s", err, buf.String())
	}
	if p.NetName(p.Cell(0).In[0]) != "bus[3]" || p.NetName(p.Cell(0).Out) != "weird.name" {
		t.Fatalf("escaped identifiers mangled: %q %q",
			p.NetName(p.Cell(0).In[0]), p.NetName(p.Cell(0).Out))
	}
}
