package baseline

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/symx"
	"repro/internal/ulp430"
)

var (
	cpuOnce sync.Once
	cpuNet  *netlist.Netlist
)

func sharedCPU(t *testing.T) *netlist.Netlist {
	t.Helper()
	cpuOnce.Do(func() {
		n, err := ulp430.BuildCPU()
		if err != nil {
			panic(err)
		}
		cpuNet = n
	})
	return cpuNet
}

func model() power.Model { return power.Model{Lib: cell.ULP65(), ClockHz: 100e6} }

func TestDesignToolRating(t *testing.T) {
	nl := sharedCPU(t)
	m := model()
	p := DesignToolPeakMW(nl, m, DefaultToggleRate)
	if p <= 0 {
		t.Fatal("rating must be positive")
	}
	// Monotone in toggle rate.
	if DesignToolPeakMW(nl, m, DefaultToggleRate+0.1) <= p {
		t.Error("rating should grow with toggle rate")
	}
	// NPE consistency.
	if npe := DesignToolNPE(nl, m, DefaultToggleRate); npe != p*1e-3/m.ClockHz {
		t.Error("NPE inconsistent with rating")
	}
	// The rating must exceed any application's X-based peak (it assumes
	// application-oblivious activity everywhere).
	b := bench.ByName("tea8")
	img, err := b.Image()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ulp430.NewSystem(nl, m.Lib, img, ulp430.SymbolicInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sink := power.NewSink(sys, m, img, 0)
	if _, err := symx.Explore(sys, sink, symx.Options{MaxCycles: b.MaxCycles}); err != nil {
		t.Fatal(err)
	}
	if p <= sink.PeakMW() {
		t.Errorf("design rating %.3f must exceed X-based peak %.3f", p, sink.PeakMW())
	}
}

func TestProfilingBaseline(t *testing.T) {
	nl := sharedCPU(t)
	m := model()
	for _, name := range []string{"mult", "tHold", "binSearch"} {
		b := bench.ByName(name)
		res, err := Profile(nl, m, b, 4, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Runs != 4 {
			t.Fatalf("%s: runs=%d", name, res.Runs)
		}
		if res.ObservedPeakMW <= 0 || res.ObservedNPE <= 0 {
			t.Fatalf("%s: empty result %+v", name, res)
		}
		if res.MinPeakMW > res.ObservedPeakMW || res.MinNPE > res.ObservedNPE {
			t.Fatalf("%s: min/max inverted", name)
		}
		if res.GuardbandedPeakMW != res.ObservedPeakMW*Guardband {
			t.Fatalf("%s: guardband wrong", name)
		}
	}
}

func TestProfilingDeterminism(t *testing.T) {
	nl := sharedCPU(t)
	m := model()
	b := bench.ByName("intAVG")
	r1, err := Profile(nl, m, b, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Profile(nl, m, b, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("profiling not deterministic: %+v vs %+v", r1, r2)
	}
}

func TestStressmarkSearch(t *testing.T) {
	nl := sharedCPU(t)
	m := model()
	res, err := Stressmark(nl, m, StressOptions{
		Genes: 12, Population: 6, Generations: 3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakMW <= 0 || res.AvgMW <= 0 || res.PeakMW < res.AvgMW {
		t.Fatalf("implausible stressmark power: %+v", res)
	}
	if res.Evals != 6*4 { // initial population + 3 generations
		t.Fatalf("evals=%d", res.Evals)
	}
	if !strings.Contains(res.Source, ".entry main") {
		t.Fatal("stressmark source malformed")
	}
	if res.GuardbandedPeakMW != res.PeakMW*Guardband {
		t.Fatal("guardband wrong")
	}
	// The evolved stressmark should beat a trivial all-NOP program's
	// peak: compare against the floor implicitly by requiring activity
	// above the idle clock power.
	idle := m.PowerMW(idleClockFJ(nl, m)) + m.LeakageMW(nl)
	if res.PeakMW <= idle {
		t.Fatalf("stressmark %.3f mW no better than idle %.3f mW", res.PeakMW, idle)
	}
}

func idleClockFJ(nl *netlist.Netlist, m power.Model) float64 {
	e := 0.0
	for ci := 0; ci < nl.NumCells(); ci++ {
		e += m.Lib.Params(nl.Cell(netlist.CellID(ci)).Kind).EnergyClk
	}
	return e
}

func TestStressmarkAverageTarget(t *testing.T) {
	nl := sharedCPU(t)
	m := model()
	res, err := Stressmark(nl, m, StressOptions{
		Genes: 10, Population: 4, Generations: 2, Seed: 3, TargetAverage: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgMW <= 0 || res.GuardbandedNPE != res.AvgMW*Guardband*1e-3/m.ClockHz {
		t.Fatalf("average-target result wrong: %+v", res)
	}
}

func TestStressmarkDeterminism(t *testing.T) {
	nl := sharedCPU(t)
	m := model()
	opts := StressOptions{Genes: 8, Population: 4, Generations: 2, Seed: 9}
	r1, err := Stressmark(nl, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Stressmark(nl, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.PeakMW != r2.PeakMW || r1.Source != r2.Source {
		t.Fatal("stressmark search not deterministic for fixed seed")
	}
}
