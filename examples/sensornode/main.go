// Sensornode: size the energy harvester of an interrupt-driven solar
// sensor node (the Figure 1.2/1.3 workflow) from the analyzed peak-power
// guarantee of its duty cycle — a timer interrupt kicks an ADC
// conversion, the ADC completion interrupt reads the sample and fires
// the radio — and demonstrate that the single symbolic analysis covers
// every possible interrupt arrival time in the ADC's latency window.
//
//	go run ./examples/sensornode
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/sizing"
	"repro/peakpower"
)

func main() {
	// The node runs the sensorDuty ISR benchmark forever: sleep-ish idle
	// loop, timer tick, ADC sample, radio burst — all in interrupt
	// handlers. Its IRQ config declares the ADC's nondeterministic
	// conversion-latency window; AnalyzeBench attaches the peripheral
	// bus automatically.
	b := bench.ByName("sensorDuty")
	if b == nil || b.IRQ == nil {
		log.Fatal("sensorDuty ISR benchmark missing")
	}
	analyzer, err := peakpower.New()
	if err != nil {
		log.Fatal(err)
	}
	req, err := analyzer.AnalyzeBench(context.Background(), b.Name)
	if err != nil {
		log.Fatal(err)
	}
	irq := req.Interrupts
	if irq == nil {
		log.Fatal("interrupt benchmark produced no interrupts section")
	}

	fmt.Printf("application: %s — %s\n\n", b.Name, b.Desc)
	fmt.Printf("symbolic co-analysis (one run, all inputs, all arrival times):\n")
	fmt.Printf("  peak power bound:  %.3f mW\n", req.PeakPowerMW)
	fmt.Printf("  ISR-context peak:  %.3f mW\n", irq.ISRPeakMW)
	fmt.Printf("  arrival window:    [%d, %d] cycles after ADGO (%d interleavings forked)\n",
		irq.MinLatency, irq.MaxLatency, irq.IRQForks)

	// The guarantee the harvester sizing rests on: re-run the node
	// concretely for EVERY arrival latency in the window and check each
	// measured peak against the single symbolic bound.
	img, err := peakpower.Assemble(b.Name, b.Source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\narrival sweep (concrete re-execution per ADC latency):\n")
	worst, worstLat := 0.0, 0
	for lat := irq.MinLatency; lat <= irq.MaxLatency; lat++ {
		cfg := *b.IRQ
		cfg.ConcreteLatency = lat
		run, err := analyzer.RunConcrete(context.Background(), img, nil, nil,
			2*b.MaxCycles, peakpower.WithInterrupts(cfg))
		if err != nil {
			log.Fatalf("arrival latency %d: %v", lat, err)
		}
		if run.PeakMW > req.PeakPowerMW {
			log.Fatalf("BOUND VIOLATED: arrival at %d cycles peaks at %.3f mW > bound %.3f mW",
				lat, run.PeakMW, req.PeakPowerMW)
		}
		if run.PeakMW > worst {
			worst, worstLat = run.PeakMW, lat
		}
	}
	fmt.Printf("  %d arrivals swept, worst concrete peak %.3f mW (latency %d)\n",
		irq.MaxLatency-irq.MinLatency+1, worst, worstLat)
	fmt.Printf("  bound %.3f mW covers every arrival (headroom %.1f%%)\n",
		req.PeakPowerMW, 100*(req.PeakPowerMW-worst)/req.PeakPowerMW)

	// Type 1 (harvester-powered): the harvester must cover the peak the
	// hardware can ever demand — which for an interrupt-driven node means
	// the peak over all arrival interleavings, exactly what the symbolic
	// bound guarantees. Sizing from any single profiled run would bet the
	// node on one arrival time.
	indoor := sizing.Harvesters()[1] // indoor photovoltaic
	areaBound := sizing.HarvesterAreaCM2(req.PeakPowerMW, indoor)
	areaOneRun := sizing.HarvesterAreaCM2(worst, indoor)
	fmt.Printf("\nType 1 node (indoor PV, %.1f uW/cm2):\n", indoor.PowerDensityMWCM2*1000)
	fmt.Printf("  harvester sized by guaranteed bound: %.1f cm2\n", areaBound)
	fmt.Printf("  (a single profiled arrival would size %.1f cm2 with no guarantee)\n", areaOneRun)

	// The paper's reference node (Figure 1.2) for scale.
	node := sizing.Reference()
	fmt.Printf("  reference node harvester: %.1f cm2\n", node.HarvesterAreaCM2)

	// Chapter 5 flavor: the same interrupt-driven workload swept across
	// the registered design points.
	fmt.Printf("\ndesign-point sweep (indoor PV harvester area for %s):\n", b.Name)
	for _, ti := range peakpower.Targets() {
		an, err := peakpower.NewFor(context.Background(), ti.Name)
		if err != nil {
			log.Fatal(err)
		}
		r, err := an.AnalyzeBench(context.Background(), b.Name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %-12s peak %.3f mW (ISR %.3f mW) -> %.1f cm2\n",
			ti.Name, r.Library, r.PeakPowerMW, r.Interrupts.ISRPeakMW,
			sizing.HarvesterAreaCM2(r.PeakPowerMW, indoor))
	}
}
