package ulp430

import (
	"bytes"
	"testing"

	"repro/internal/cell"
	"repro/internal/gsim"
	"repro/internal/isa"
	"repro/internal/periph"
)

// buildIRQSystem assembles the interrupt program on the given engine with
// the peripheral bus enabled, so a captured state exercises every codec
// section (planes or scalar vals, memory, staged inputs, bus state).
func buildIRQSystem(t *testing.T, engine gsim.Engine) *System {
	t.Helper()
	img, err := isa.Assemble("irq", irqProg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemEngine(engine, sharedCPU(t), cell.ULP65(), img, ConcreteInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableInterrupts(periph.Config{})
	sys.Reset()
	return sys
}

// TestPortableCodecRoundTrip pins the codec contract the checkpoint
// journal depends on: encode→decode→re-encode is byte-identical, and a
// decoded state restored on a fresh system is indistinguishable from the
// original — same state hash, and bit-identical execution from there on.
func TestPortableCodecRoundTrip(t *testing.T) {
	for _, engine := range []gsim.Engine{gsim.EnginePacked, gsim.EngineScalar} {
		t.Run(engine.String(), func(t *testing.T) {
			sys := buildIRQSystem(t, engine)
			// Step into the middle of the run so memory, the bus, and the
			// controller all hold non-reset state.
			for c := 0; c < 40; c++ {
				sys.Step()
			}
			sn := sys.Snapshot()
			// Keep mutating past the snapshot so CapturePortableAt has a
			// journal suffix to undo.
			for c := 0; c < 25; c++ {
				sys.Step()
			}
			var st PortableState
			sys.CapturePortableAt(sn, &st)

			enc := EncodePortable(&st)
			dec, err := DecodePortable(enc)
			if err != nil {
				t.Fatal(err)
			}
			if re := EncodePortable(dec); !bytes.Equal(enc, re) {
				t.Fatal("re-encoding a decoded state is not byte-identical")
			}

			// Restore the decoded state on a fresh system and the original
			// capture on the donor; they must be the same machine.
			fresh := buildIRQSystem(t, engine)
			fresh.RestorePortable(dec)
			sys.RestorePortable(&st)
			if fresh.StateHash() != sys.StateHash() {
				t.Fatal("state hash differs after decoded restore")
			}
			for c := 0; c < 400; c++ {
				sys.Step()
				fresh.Step()
				if fresh.StateHash() != sys.StateHash() {
					t.Fatalf("execution diverges %d cycles after restore", c)
				}
				if sys.Halted() && fresh.Halted() {
					return
				}
			}
			if !sys.Halted() || !fresh.Halted() {
				t.Fatal("restored runs never halted")
			}
		})
	}
}

// TestPortableCodecErrState checks the captured fault text survives the
// round trip (a resumed task that had already faulted must still fault).
func TestPortableCodecErrState(t *testing.T) {
	sys := buildIRQSystem(t, gsim.EnginePacked)
	sys.Step()
	sys.setErr("injected fault at %#04x", 0x1234)
	sn := sys.Snapshot()
	var st PortableState
	sys.CapturePortableAt(sn, &st)
	dec, err := DecodePortable(EncodePortable(&st))
	if err != nil {
		t.Fatal(err)
	}
	if dec.err == nil || dec.err.Error() != st.err.Error() {
		t.Fatalf("err round-trip: got %v, want %v", dec.err, st.err)
	}
}

// TestPortableCodecRejectsCorrupt ensures truncated or bit-flipped inputs
// fail decode instead of producing a plausible-looking wrong state.
func TestPortableCodecRejectsCorrupt(t *testing.T) {
	sys := buildIRQSystem(t, gsim.EnginePacked)
	for c := 0; c < 10; c++ {
		sys.Step()
	}
	sn := sys.Snapshot()
	var st PortableState
	sys.CapturePortableAt(sn, &st)
	enc := EncodePortable(&st)

	if _, err := DecodePortable(nil); err == nil {
		t.Fatal("decoding empty input succeeded")
	}
	if _, err := DecodePortable(enc[:len(enc)/3]); err == nil {
		t.Fatal("decoding truncated input succeeded")
	}
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xFF // magic
	if _, err := DecodePortable(bad); err == nil {
		t.Fatal("decoding with corrupt magic succeeded")
	}
	if _, err := DecodePortable(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("decoding with trailing garbage succeeded")
	}
}
