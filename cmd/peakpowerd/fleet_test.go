package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/peakpower"
)

// fleetTestReq is the job body the fleet tests distribute: the forking
// testApp kernel, so the exploration actually splits into several tasks.
func fleetTestReq(extra string) string {
	return `{"target":"ulp430","name":"served","source":` + mustJSON(testApp) + `,
		"options":{"max_cycles":100000,"coi":4}` + extra + `}`
}

// fleetGolden computes the single-node reference Report for fleetTestReq
// with an explicitly sequential exploration (one worker).
func fleetGolden(t *testing.T) []byte {
	t.Helper()
	an, err := peakpower.NewFor(context.Background(), "ulp430")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := an.Analyze(context.Background(), "served", testApp,
		peakpower.WithMaxCycles(100_000), peakpower.WithCOI(4),
		peakpower.WithExploreWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Report.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// startFleetWorkers runs n in-process fleet workers against the test
// coordinator, each with its own Systems and sinks (srv.planFor builds a
// private pair per worker), stopped at test cleanup.
func startFleetWorkers(t *testing.T, ts string, srv *server, n int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for i := 0; i < n; i++ {
		wk := fleet.NewWorker(fleet.WorkerConfig{
			Coordinator: ts,
			ID:          fmt.Sprintf("worker-%d", i),
			Plan:        srv.planFor,
			Poll:        5 * time.Millisecond,
		})
		go wk.Run(ctx)
	}
}

// TestFleetByteIdenticalAcrossWorkerCounts is the tentpole contract: a
// job explored by a coordinator plus 1, 2, or 3 fleet workers (zero
// local slots — every task crosses the HTTP protocol) seals a Report
// byte-identical to a sequential single-node analysis, regardless of
// how the tasks interleave across the fleet.
func TestFleetByteIdenticalAcrossWorkerCounts(t *testing.T) {
	want := fleetGolden(t)
	for _, workers := range []int{1, 2, 3} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ts, srv := newTestServerCfg(t, serverConfig{
				cacheSize: 16, timeout: time.Minute,
				dataDir:     t.TempDir(),
				coordinator: true, leaseTTL: 2 * time.Second, localSlots: 0,
			})
			startFleetWorkers(t, ts.URL, srv, workers)

			code, _, body := postJob(t, ts.URL, fleetTestReq(""))
			if code != http.StatusAccepted {
				t.Fatalf("submit: %d %s", code, body)
			}
			var acc struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(body, &acc); err != nil {
				t.Fatal(err)
			}
			st := pollJob(t, ts.URL, acc.ID, 120*time.Second)
			if st.State != "done" || st.Error != "" {
				t.Fatalf("fleet job: %+v", st)
			}
			if !bytes.Equal(st.Report, want) {
				t.Fatalf("fleet report (%d workers) differs from single-node:\nfleet: %.200s\nlocal: %.200s",
					workers, st.Report, want)
			}
			if leased, _ := srv.fleet.Counters(); leased == 0 {
				t.Fatal("no tasks were leased to the fleet")
			}
		})
	}
}

// TestFleetLeaseExpiryReissue is the fault-tolerance contract: a worker
// that leases a task and dies (no heartbeat, no completion) does not
// fail or wedge the job — the janitor re-issues the lease and a live
// worker completes the exploration, still byte-identical.
func TestFleetLeaseExpiryReissue(t *testing.T) {
	want := fleetGolden(t)
	ts, srv := newTestServerCfg(t, serverConfig{
		cacheSize: 16, timeout: time.Minute,
		dataDir:     t.TempDir(),
		coordinator: true, leaseTTL: 200 * time.Millisecond, localSlots: 0,
	})

	code, _, body := postJob(t, ts.URL, fleetTestReq(""))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}

	// A zombie worker grabs the first task over raw HTTP and vanishes:
	// it never heartbeats and never completes.
	if code, body := post(t, ts.URL+"/v1/fleet/register", `{"worker":"zombie"}`); code != http.StatusOK {
		t.Fatalf("register: %d %s", code, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body = post(t, ts.URL+"/v1/fleet/lease", `{"worker":"zombie"}`)
		if code == http.StatusOK {
			var l fleet.LeaseResponse
			if err := json.Unmarshal(body, &l); err != nil {
				t.Fatalf("lease: %v (%s)", err, body)
			}
			if l.JobID != acc.ID {
				t.Fatalf("leased job %q, want %q", l.JobID, acc.ID)
			}
			break
		}
		if code != http.StatusNoContent {
			t.Fatalf("lease: %d %s", code, body)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never offered a task to lease")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A live worker joins; the abandoned lease expires and its task is
	// re-issued to it.
	startFleetWorkers(t, ts.URL, srv, 1)
	st := pollJob(t, ts.URL, acc.ID, 120*time.Second)
	if st.State != "done" || st.Error != "" {
		t.Fatalf("job after worker death: %+v", st)
	}
	if !bytes.Equal(st.Report, want) {
		t.Fatalf("re-issued exploration differs from single-node:\nfleet: %.200s\nlocal: %.200s", st.Report, want)
	}
	if _, reissued := srv.fleet.Counters(); reissued == 0 {
		t.Fatal("abandoned lease was never re-issued")
	}

	// /readyz reports the fleet: membership and the re-issue counter.
	code, body = get(t, ts.URL+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz: %d %s", code, body)
	}
	var ready struct {
		Fleet *fleet.Stats `json:"fleet"`
	}
	if err := json.Unmarshal(body, &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Fleet == nil {
		t.Fatalf("readyz has no fleet section: %s", body)
	}
	if ready.Fleet.TasksReissued == 0 || ready.Fleet.TasksLeased == 0 {
		t.Fatalf("fleet stats: %+v", ready.Fleet)
	}
	found := false
	for _, w := range ready.Fleet.Workers {
		if w == "worker-0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("live worker missing from fleet membership: %+v", ready.Fleet.Workers)
	}

	// /debug/vars exports the operational counters.
	code, body = get(t, ts.URL+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("debug/vars: %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("debug/vars not JSON: %v", err)
	}
	for _, key := range []string{
		"peakpowerd_jobs_accepted", "peakpowerd_jobs_completed", "peakpowerd_jobs_failed",
		"peakpowerd_queue_depth", "peakpowerd_cache",
		"peakpowerd_fleet_tasks_leased", "peakpowerd_fleet_tasks_reissued",
	} {
		if _, ok := vars[key]; !ok {
			t.Errorf("debug/vars missing %q", key)
		}
	}
}

// TestFleetCoordinatorRequiresData: fleet mode without a durable journal
// substrate is a configuration error, refused at startup.
func TestFleetCoordinatorRequiresData(t *testing.T) {
	if _, err := newServer(serverConfig{coordinator: true}); err == nil {
		t.Fatal("coordinator without -data accepted")
	}
	if _, err := newServer(serverConfig{scrub: true}); err == nil {
		t.Fatal("-scrub without -data accepted")
	}
}
