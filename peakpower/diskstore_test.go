package peakpower

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/faultfs"
)

func diskTestAnalyzer(t *testing.T, cache *Cache) (*Analyzer, *Image) {
	t.Helper()
	a, err := New(WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	img, err := Assemble("disk", cacheTestApp)
	if err != nil {
		t.Fatal(err)
	}
	return a, img
}

func entryFile(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one store entry in %s, got %v (err %v)", dir, matches, err)
	}
	return matches[0]
}

// TestDiskStoreSurvivesRestart: an analysis cached with a disk tier is
// served from disk by a fresh process (modeled as a fresh memory cache on
// the same directory) — same sealed Report, no re-exploration.
func TestDiskStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	disk, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(16)
	cache.AttachDisk(disk)
	a, img := diskTestAnalyzer(t, cache)
	first, err := a.AnalyzeImage(context.Background(), img)
	if err != nil {
		t.Fatal(err)
	}
	if disk.Len() != 1 {
		t.Fatalf("store entries after analysis: %d, want 1", disk.Len())
	}

	// "Restart": new memory cache, same directory.
	disk2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache2 := NewCache(16)
	cache2.AttachDisk(disk2)
	a2, img2 := diskTestAnalyzer(t, cache2)
	second, err := a2.AnalyzeImage(context.Background(), img2)
	if err != nil {
		t.Fatal(err)
	}
	if second.Hash != first.Hash {
		t.Fatalf("disk-served report hash %s != original %s", second.Hash, first.Hash)
	}
	st := cache2.Stats()
	if st.DiskHits != 1 {
		t.Fatalf("stats after disk hit: %+v", st)
	}
	// The rehydrated entry now also serves from memory.
	third, err := a2.AnalyzeImage(context.Background(), img2)
	if err != nil {
		t.Fatal(err)
	}
	if third != second {
		t.Fatal("second lookup must hit the rehydrated memory entry")
	}
}

// TestDiskStoreCorruptEntryHeals is the corrupt-CAS acceptance case: a
// corrupted (or truncated) entry is a MISS — the defective file is
// deleted, the analysis re-runs, and the slot is re-written with a
// verified entry. Never a wrong bound from a bad sector.
func TestDiskStoreCorruptEntryHeals(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func(data []byte) []byte
	}{
		{"garbage", func([]byte) []byte { return []byte("not json{{{") }},
		{"truncated", func(data []byte) []byte { return data[:len(data)/2] }},
		{"bitflip", func(data []byte) []byte {
			// Flip inside the peak value: JSON stays valid, the content
			// hash does not.
			mut := append([]byte(nil), data...)
			for i := range mut {
				if mut[i] >= '1' && mut[i] <= '8' {
					mut[i]++
					return mut
				}
			}
			t.Fatal("no digit to flip")
			return nil
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			disk, err := NewDiskStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			cache := NewCache(16)
			cache.AttachDisk(disk)
			a, img := diskTestAnalyzer(t, cache)
			first, err := a.AnalyzeImage(context.Background(), img)
			if err != nil {
				t.Fatal(err)
			}
			p := entryFile(t, dir)
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, tc.mut(data), 0o644); err != nil {
				t.Fatal(err)
			}

			// Fresh memory tier so the lookup must go through disk.
			disk2, err := NewDiskStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			cache2 := NewCache(16)
			cache2.AttachDisk(disk2)
			a2, img2 := diskTestAnalyzer(t, cache2)
			res, err := a2.AnalyzeImage(context.Background(), img2)
			if err != nil {
				t.Fatal(err)
			}
			if res.Hash != first.Hash {
				t.Fatalf("re-analysis hash %s != original %s", res.Hash, first.Hash)
			}
			st := disk2.Stats()
			if st.Corrupt != 1 || st.Hits != 0 {
				t.Fatalf("disk stats after corruption: %+v", st)
			}
			// The slot healed: the re-written entry decodes and verifies.
			data, err = os.ReadFile(entryFile(t, dir))
			if err != nil {
				t.Fatalf("slot not re-written: %v", err)
			}
			rep, err := DecodeReport(data)
			if err != nil {
				t.Fatalf("re-written entry does not verify: %v", err)
			}
			if rep.Hash != first.Hash {
				t.Fatalf("re-written entry hash %s != original %s", rep.Hash, first.Hash)
			}
		})
	}
}

// TestDiskStoreWriteFaultDoesNotFailAnalysis: a full disk (every write
// fails) degrades the disk tier, not the analysis — concurrent callers
// still single-flight one exploration and all get the result; the fault
// is visible on Err/Stats for readiness probes.
func TestDiskStoreWriteFaultDoesNotFailAnalysis(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.Hooked{Hook: func(op faultfs.Op, path string) error {
		if op == faultfs.OpWrite {
			return errors.New("injected: disk full")
		}
		return nil
	}}
	disk, err := NewDiskStoreFS(dir, fs)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(16)
	cache.AttachDisk(disk)
	a, img := diskTestAnalyzer(t, cache)

	const callers = 8
	results := make([]*Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = a.AnalyzeImage(context.Background(), img)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d failed under disk write fault: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d did not share the single-flight result", i)
		}
	}
	if st := cache.Stats(); st.Misses != 1 {
		t.Fatalf("want exactly one analysis under single-flight, stats %+v", st)
	}
	if disk.Err() == nil {
		t.Fatal("write fault not surfaced on DiskStore.Err")
	}
	if st := disk.Stats(); st.WriteErrors == 0 || st.LastError == "" {
		t.Fatalf("disk stats after write fault: %+v", st)
	}
	if disk.Len() != 0 {
		t.Fatalf("failed writes must not leave entries, got %d", disk.Len())
	}
}

// TestDiskStoreRejectsBadInput: unsealed reports and path-escaping keys
// are refused outright.
func TestDiskStoreRejectsBadInput(t *testing.T) {
	disk, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := disk.Store("abc", &Report{Schema: SchemaVersion}); err == nil {
		t.Fatal("unsealed report stored")
	}
	sealed := &Report{Schema: SchemaVersion}
	sealed.Seal()
	for _, key := range []string{"", "../escape", "a/b", `a\b`} {
		if err := disk.Store(key, sealed); err == nil {
			t.Fatalf("key %q accepted", key)
		}
		if _, ok := disk.Load(key); ok {
			t.Fatalf("key %q loaded", key)
		}
	}
}
