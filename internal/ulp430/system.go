package ulp430

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/gsim"
	"repro/internal/isa"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/soc"
)

// memWord stores one 16-bit memory word in the three-valued domain as two
// bit-planes: bit i is X when xmask bit i is set, else val bit i.
type memWord struct {
	val   uint16
	xmask uint16
}

var allXWord = memWord{0, 0xFFFF}

func wordFromLogic(w logic.Word) memWord {
	var m memWord
	for i, t := range w {
		switch t {
		case logic.H:
			m.val |= 1 << uint(i)
		case logic.X:
			m.xmask |= 1 << uint(i)
		}
	}
	return m
}

func (m memWord) toLogic(dst logic.Word) {
	for i := range dst {
		switch {
		case m.xmask>>uint(i)&1 == 1:
			dst[i] = logic.X
		case m.val>>uint(i)&1 == 1:
			dst[i] = logic.H
		default:
			dst[i] = logic.L
		}
	}
}

// InputMode selects how application inputs are materialized.
type InputMode int

const (
	// SymbolicInputs drives every input region word and P1IN read with X
	// — Algorithm 1's input-independent mode.
	SymbolicInputs InputMode = iota
	// ConcreteInputs fills input regions from a vector and P1IN from a
	// callback — the profiling ("input-based") mode.
	ConcreteInputs
)

// System couples the gate-level CPU to behavioral memory and exposes the
// simulation controls the analyses need: reset, stepping, halting,
// branch forcing, snapshot/restore (with an O(1)-per-cycle memory undo
// journal), and architectural state inspection.
type System struct {
	// Sim is the underlying gate-level simulator.
	Sim *gsim.Simulator

	img  *isa.Image
	mode InputMode
	// PortIn supplies P1IN words in concrete mode; nil reads as zero.
	PortIn func() uint16

	mem     []memWord // 32768 words
	journal []journalEntry

	// Cached port nets.
	mabNets, mdbInNets, mdbOutNets  []netlist.NetID
	menNet, mwrNet, rstNet, haltNet netlist.NetID
	jumpExecNet, jumpTakenNet       netlist.NetID
	brForceEnNet, brForceValNet     netlist.NetID
	errState                        error
	lastDin                         memWord
	scratch                         logic.Word
}

type journalEntry struct {
	idx int32
	old memWord
}

// NewSystem builds (or reuses) a CPU netlist and loads the image. Pass a
// prebuilt netlist to share it across systems (it is read-only during
// simulation); pass nil to build a fresh one. The simulator uses the
// default (packed) gate engine; NewSystemEngine selects explicitly.
func NewSystem(n *netlist.Netlist, lib *cell.Library, img *isa.Image, mode InputMode, inputs []uint16) (*System, error) {
	return NewSystemEngine(gsim.EnginePacked, n, lib, img, mode, inputs)
}

// NewSystemEngine is NewSystem with an explicit gate-engine choice;
// gsim.EngineScalar selects the reference oracle used for differential
// testing.
func NewSystemEngine(engine gsim.Engine, n *netlist.Netlist, lib *cell.Library, img *isa.Image, mode InputMode, inputs []uint16) (*System, error) {
	if n == nil {
		var err error
		n, err = BuildCPU()
		if err != nil {
			return nil, err
		}
	}
	s := &System{
		img:     img,
		mode:    mode,
		mem:     make([]memWord, 1<<15),
		scratch: make(logic.Word, 16),
	}
	s.Sim = gsim.NewEngine(n, lib, s, engine)
	s.mabNets = n.Port("mab")
	s.mdbInNets = n.Port("mdb_in")
	s.mdbOutNets = n.Port("mdb_out")
	s.menNet = n.Port("men")[0]
	s.mwrNet = n.Port("mwr")[0]
	s.rstNet = n.Port("rst")[0]
	s.haltNet = n.Port("halt")[0]
	s.jumpExecNet = n.Port("jump_exec")[0]
	s.jumpTakenNet = n.Port("jump_taken")[0]
	s.brForceEnNet = n.Port("br_force_en")[0]
	s.brForceValNet = n.Port("br_force_val")[0]

	// All memory starts as X (the paper's initial condition), then the
	// binary is loaded and inputs are materialized per mode.
	for i := range s.mem {
		s.mem[i] = allXWord
	}
	for addr, w := range img.Words {
		if addr%2 != 0 {
			return nil, fmt.Errorf("ulp430: odd image address %#04x", addr)
		}
		s.mem[addr/2] = memWord{val: w}
	}
	k := 0
	for _, r := range img.Inputs {
		for i := 0; i < r.Words; i++ {
			idx := (r.Addr + uint16(2*i)) / 2
			switch mode {
			case SymbolicInputs:
				s.mem[idx] = allXWord
			case ConcreteInputs:
				var v uint16
				if k < len(inputs) {
					v = inputs[k]
				}
				s.mem[idx] = memWord{val: v}
			}
			k++
		}
	}
	return s, nil
}

// Image returns the loaded binary.
func (s *System) Image() *isa.Image { return s.img }

// Err returns the first bus-protocol error (write to X address, store to
// ROM, access to unmapped space), or nil.
func (s *System) Err() error { return s.errState }

func (s *System) setErr(format string, args ...interface{}) {
	if s.errState == nil {
		s.errState = fmt.Errorf(format, args...)
	}
}

// Reset holds reset for two cycles and releases it.
func (s *System) Reset() {
	s.Sim.SetNet(s.rstNet, logic.H)
	s.Sim.SetNet(s.brForceEnNet, logic.L)
	s.Sim.SetNet(s.brForceValNet, logic.L)
	s.Sim.Step()
	s.Sim.Step()
	s.Sim.SetNet(s.rstNet, logic.L)
}

// Step advances one clock cycle.
func (s *System) Step() { s.Sim.Step() }

// Halted reports whether the program has written the halt register.
func (s *System) Halted() bool { return s.Sim.Val(s.haltNet) == logic.H }

// JumpCondUnknown reports whether the current cycle is the EXEC cycle of
// a conditional jump whose condition is X — the fork point of Algorithm 1
// ("if an X symbol propagates to the inputs of the program counter").
func (s *System) JumpCondUnknown() bool {
	return s.Sim.Val(s.jumpExecNet) == logic.H && s.Sim.Val(s.jumpTakenNet) == logic.X
}

// ForceBranch arranges for the *next* evaluation of the jump condition to
// be forced to v; used by the symbolic engine when re-simulating a forked
// EXEC cycle. ClearForce removes the override.
func (s *System) ForceBranch(v bool) {
	s.Sim.SetNet(s.brForceEnNet, logic.H)
	s.Sim.SetNet(s.brForceValNet, logic.FromBool(v))
}

// ClearForce removes the branch override.
func (s *System) ClearForce() {
	s.Sim.SetNet(s.brForceEnNet, logic.L)
	s.Sim.SetNet(s.brForceValNet, logic.L)
}

// PC returns the architectural program counter; ok is false if any bit is
// X.
func (s *System) PC() (uint16, bool) {
	v, ok := s.Sim.Port("pc").Uint()
	return uint16(v), ok
}

// Reg returns an architectural register value by number (1, 4..15), plus
// PC (0) and SR (2).
func (s *System) Reg(r int) (uint16, bool) {
	var name string
	switch r {
	case 0:
		name = "pc"
	case 1:
		name = "sp"
	case 2:
		name = "sr"
	default:
		name = fmt.Sprintf("r%d", r)
	}
	v, ok := s.Sim.Port(name).Uint()
	return uint16(v), ok
}

// MemWord returns the current contents of a memory word as a logic.Word.
func (s *System) MemWord(addr uint16) logic.Word {
	w := make(logic.Word, 16)
	s.mem[addr/2].toLogic(w)
	return w
}

// Tick implements gsim.Bus: it services the registered memory access of
// the cycle in flight. It is per-cycle hot and must not allocate: port
// reads go through PortUint and the reusable scratch word.
func (s *System) Tick(sim *gsim.Simulator) {
	if sim.Val(s.menNet) != logic.H {
		return // no access: hold mdb_in to minimize bus toggling
	}
	wr := sim.Val(s.mwrNet)
	addr64, addrKnown := sim.PortUint("mab")
	addr := uint16(addr64)

	if wr == logic.H {
		if !addrKnown {
			s.setErr("ulp430: memory write with unknown (X) address at cycle %d — input-dependent store address; the analysis cannot bound this program", sim.Cycle())
			return
		}
		if soc.IsPeripheral(addr) {
			return // handled by gate-level peripheral logic
		}
		if !soc.InRAM(addr) {
			s.setErr("ulp430: store to non-RAM address %#04x at cycle %d", addr, sim.Cycle())
			return
		}
		for i, id := range s.mdbOutNets {
			s.scratch[i] = sim.Val(id)
		}
		data := wordFromLogic(s.scratch)
		idx := int32(addr / 2)
		s.journal = append(s.journal, journalEntry{idx: idx, old: s.mem[idx]})
		s.mem[idx] = data
		return
	}
	if wr == logic.X {
		s.setErr("ulp430: memory access with unknown write strobe at cycle %d", sim.Cycle())
		return
	}

	// Read.
	var out memWord
	switch {
	case !addrKnown:
		out = allXWord
	case addr == soc.P1IN:
		if s.mode == SymbolicInputs {
			out = allXWord
		} else if s.PortIn != nil {
			out = memWord{val: s.PortIn()}
		} else {
			out = memWord{val: 0}
		}
	case soc.IsPeripheral(addr):
		out = memWord{val: 0} // internal logic supplies the data
	case soc.InRAM(addr) || soc.InROM(addr):
		out = s.mem[addr/2]
	default:
		s.setErr("ulp430: load from unmapped address %#04x at cycle %d", addr, sim.Cycle())
		out = allXWord
	}
	if out != s.lastDin {
		s.lastDin = out
		out.toLogic(s.scratch)
		for i, id := range s.mdbInNets {
			sim.SetNet(id, s.scratch[i])
		}
	}
}

// SysSnapshot captures the full system state: simulator nets plus a
// memory journal position (memory restoration is O(writes since
// snapshot), not O(memory size)).
type SysSnapshot struct {
	sim     *gsim.Snapshot
	journal int
	lastDin memWord
	err     error
}

// Snapshot captures the current state. Snapshots form a LIFO discipline
// with Restore (depth-first exploration): restoring an older snapshot
// invalidates newer ones.
func (s *System) Snapshot() *SysSnapshot {
	sn := &SysSnapshot{}
	s.SnapshotInto(sn)
	return sn
}

// SnapshotInto captures the current state into sn, reusing its buffers.
func (s *System) SnapshotInto(sn *SysSnapshot) {
	if sn.sim == nil {
		sn.sim = &gsim.Snapshot{}
	}
	s.Sim.SnapshotInto(sn.sim)
	sn.journal = len(s.journal)
	sn.lastDin = s.lastDin
	sn.err = s.errState
}

// Clone returns an independent deep copy of a snapshot (needed when a
// rolling snapshot buffer must be retained across further reuse).
func (sn *SysSnapshot) Clone() *SysSnapshot {
	c := &SysSnapshot{}
	sn.CloneInto(c)
	return c
}

// CloneInto deep-copies sn into dst, reusing dst's buffers — the
// allocation-free form backing the symbolic engine's fork-snapshot
// pool.
func (sn *SysSnapshot) CloneInto(dst *SysSnapshot) {
	if dst.sim == nil {
		dst.sim = &gsim.Snapshot{}
	}
	sn.sim.CloneInto(dst.sim)
	dst.journal = sn.journal
	dst.lastDin = sn.lastDin
	dst.err = sn.err
}

// Restore rewinds to a snapshot taken earlier on this path.
func (s *System) Restore(sn *SysSnapshot) {
	if sn.journal > len(s.journal) {
		panic("ulp430: restoring a snapshot newer than current state")
	}
	for i := len(s.journal) - 1; i >= sn.journal; i-- {
		e := s.journal[i]
		s.mem[e.idx] = e.old
	}
	s.journal = s.journal[:sn.journal]
	s.Sim.Restore(sn.sim)
	s.lastDin = sn.lastDin
	s.errState = sn.err
}

// MemHash mixes the RAM contents (the part of memory that changes) into
// the state hash used for execution-tree merging.
func (s *System) MemHash() uint64 {
	h := uint64(1469598103934665603)
	lo := int32(soc.RAMStart / 2)
	hi := int32(soc.RAMEnd / 2)
	for i := lo; i < hi; i++ {
		w := s.mem[i]
		h ^= uint64(w.val) | uint64(w.xmask)<<16
		h *= 1099511628211
	}
	return h
}

// StateHash combines flip-flop state and RAM contents — Algorithm 1's
// "the processor state is the same as it was when the branch was
// previously encountered".
func (s *System) StateHash() uint64 {
	h := s.Sim.StateHash()
	h ^= s.MemHash()
	h *= 1099511628211
	return h
}

// RunToHalt drives the system (after Reset) until the halt register is
// set, an error occurs, or maxCycles elapse. It requires fully concrete
// execution (it refuses to run past an unknown branch condition).
func (s *System) RunToHalt(maxCycles int) error {
	for i := 0; i < maxCycles; i++ {
		if s.Halted() {
			return nil
		}
		if err := s.Err(); err != nil {
			return err
		}
		if s.JumpCondUnknown() {
			return fmt.Errorf("ulp430: unknown branch condition at cycle %d (symbolic execution required)", s.Sim.Cycle())
		}
		s.Step()
	}
	if s.Halted() {
		return nil
	}
	return fmt.Errorf("ulp430: did not halt within %d cycles", maxCycles)
}
