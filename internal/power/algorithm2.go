package power

import (
	"fmt"
	"io"

	"repro/internal/cell"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/ulp430"
	"repro/internal/vcd"
)

// Window is a captured stretch of per-cycle gate output values and
// activity annotations — the execution-trace slice Algorithm 2 operates
// on. Vals[0] holds the values preceding the window's first cycle;
// Vals[c] (c >= 1) the settled values of cycle c. Act[c] marks the gates
// the activity analysis considers toggled in cycle c (Act[0] is unused).
type Window struct {
	// Kinds is the cell kind of each gate column.
	Kinds []cell.Kind
	// Names is the gate instance name of each column (VCD emission).
	Names []string
	// Vals[c][g] is gate g's output in cycle c.
	Vals [][]logic.Trit
	// Act[c][g] is gate g's activity flag in cycle c.
	Act [][]bool
}

// Cycles returns the number of recorded cycles (excluding the preamble
// row).
func (w *Window) Cycles() int { return len(w.Vals) - 1 }

// Capture steps the system n cycles, recording every gate's output and
// activity flag. The system must not hit an unknown branch condition
// inside the window.
func Capture(sys *ulp430.System, n int) (*Window, error) {
	nl := sys.Sim.Netlist()
	w := &Window{
		Kinds: make([]cell.Kind, nl.NumCells()),
		Names: make([]string, nl.NumCells()),
	}
	for ci := 0; ci < nl.NumCells(); ci++ {
		w.Kinds[ci] = nl.Cell(netlist.CellID(ci)).Kind
		w.Names[ci] = nl.Cell(netlist.CellID(ci)).Name
	}
	row := func() []logic.Trit {
		r := make([]logic.Trit, nl.NumCells())
		for ci := 0; ci < nl.NumCells(); ci++ {
			r[ci] = sys.Sim.Val(nl.Cell(netlist.CellID(ci)).Out)
		}
		return r
	}
	w.Vals = append(w.Vals, row())
	w.Act = append(w.Act, make([]bool, nl.NumCells()))
	for c := 1; c <= n; c++ {
		sys.Step()
		if sys.JumpCondUnknown() {
			return nil, fmt.Errorf("power: unknown branch condition inside captured window (cycle %d)", c)
		}
		if err := sys.Err(); err != nil {
			return nil, err
		}
		w.Vals = append(w.Vals, row())
		act := make([]bool, nl.NumCells())
		for ci := 0; ci < nl.NumCells(); ci++ {
			act[ci] = sys.Sim.Active(nl.Cell(netlist.CellID(ci)).Out)
		}
		w.Act = append(w.Act, act)
	}
	return w, nil
}

// Assignment is one parity's fully assigned value trace (Algorithm 2's
// even or odd VCD).
type Assignment struct {
	// Vals is the value matrix after X assignment.
	Vals [][]logic.Trit
	// Parity is 0 for the even-maximizing assignment, 1 for odd.
	Parity int
}

// assign builds the VCD that maximizes power in cycles of the given
// parity (Algorithm 2 lines 4-17).
func assign(w *Window, lib *cell.Library, parity int) *Assignment {
	vals := make([][]logic.Trit, len(w.Vals))
	for c := range w.Vals {
		vals[c] = append([]logic.Trit(nil), w.Vals[c]...)
	}
	for c := 1; c < len(vals); c++ {
		if c%2 != parity {
			continue
		}
		for g := range w.Kinds {
			if !w.Act[c][g] {
				continue
			}
			prev, cur := w.Vals[c-1][g], w.Vals[c][g]
			switch {
			case prev == logic.X && cur == logic.X:
				first, second, _ := lib.MaxTransition(w.Kinds[g])
				vals[c-1][g] = first
				vals[c][g] = second
			case cur == logic.X && prev != logic.X:
				vals[c][g] = logic.Not(prev)
			case prev == logic.X && cur != logic.X:
				vals[c-1][g] = logic.Not(cur)
			}
		}
	}
	return &Assignment{Vals: vals, Parity: parity}
}

// powerTrace runs activity-based power analysis over an assignment,
// returning per-cycle power in mW (clock-pin energy and leakage
// included).
func powerTrace(w *Window, a *Assignment, m Model) []float64 {
	clkFJ := 0.0
	leakMW := 0.0
	for _, k := range w.Kinds {
		clkFJ += m.Lib.Params(k).EnergyClk
		leakMW += m.Lib.Params(k).LeakageNW * 1e-6
	}
	out := make([]float64, len(a.Vals))
	for c := 1; c < len(a.Vals); c++ {
		e := clkFJ
		for g, k := range w.Kinds {
			e += m.Lib.TransitionEnergy(k, a.Vals[c-1][g], a.Vals[c][g])
		}
		out[c] = m.PowerMW(e) + leakMW
	}
	return out
}

// AlgorithmTwo performs the paper's peak-power computation literally:
// build the even- and odd-maximizing assignments, run power analysis on
// each, and interleave even cycles from the even trace with odd cycles
// from the odd trace (Algorithm 2 lines 18-20). It returns the per-cycle
// peak power trace (index 0 unused) and the two assignments.
func AlgorithmTwo(w *Window, m Model) (peak []float64, even, odd *Assignment) {
	even = assign(w, m.Lib, 0)
	odd = assign(w, m.Lib, 1)
	pe := powerTrace(w, even, m)
	po := powerTrace(w, odd, m)
	peak = make([]float64, len(pe))
	for c := 1; c < len(pe); c++ {
		if c%2 == 0 {
			peak[c] = pe[c]
		} else {
			peak[c] = po[c]
		}
	}
	return peak, even, odd
}

// StreamingTrace computes the per-cycle bound the streaming analysis
// (CycleBoundFJ's rule) produces for a captured window — used to verify
// that the literal Algorithm 2 and the streaming form agree exactly.
func StreamingTrace(w *Window, m Model) []float64 {
	clkFJ := 0.0
	leakMW := 0.0
	for _, k := range w.Kinds {
		clkFJ += m.Lib.Params(k).EnergyClk
		leakMW += m.Lib.Params(k).LeakageNW * 1e-6
	}
	out := make([]float64, len(w.Vals))
	for c := 1; c < len(w.Vals); c++ {
		e := clkFJ
		for g, k := range w.Kinds {
			e += cellBoundFJ(m.Lib, k, w.Vals[c-1][g], w.Vals[c][g], w.Act[c][g])
		}
		out[c] = m.PowerMW(e) + leakMW
	}
	return out
}

// WriteVCD emits an assignment (or, with a == nil, the raw window) as a
// VCD stream, one scalar signal per gate output.
func (w *Window) WriteVCD(out io.Writer, a *Assignment, timescale string) error {
	vals := w.Vals
	module := "window"
	if a != nil {
		vals = a.Vals
		module = fmt.Sprintf("parity%d", a.Parity)
	}
	vw := vcd.NewWriter(out, module, timescale, w.Names)
	for c := range vals {
		vw.Tick(uint64(c), vals[c])
	}
	return vw.Close()
}
