package isim

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func run(t *testing.T, src string, inputs []uint16) *Machine {
	t.Helper()
	img, err := isa.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m, err := New(img, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

const halt = `
    mov #1, &0x0126
spin: jmp spin
`

func TestArithmeticAndFlags(t *testing.T) {
	m := run(t, `
.org 0xf000
.entry main
main:
    mov #100, r4
    add #55, r4      ; r4 = 155
    sub #56, r4      ; r4 = 99
    mov #0xffff, r5
    add #1, r5       ; r5 = 0, C=1, Z=1
    jc carry_ok
    mov #0xbad, &0x0200
carry_ok:
    adc_r6:
    mov #0, r6
    addc #0, r6      ; r6 = C = 1
    mov #0x7fff, r7
    add #1, r7       ; overflow: V=1, N=1
`+halt, nil)
	if m.R[4] != 99 {
		t.Errorf("r4 = %d", m.R[4])
	}
	if m.R[6] != 1 {
		t.Errorf("r6 (carry) = %d", m.R[6])
	}
	if m.R[7] != 0x8000 {
		t.Errorf("r7 = %#x", m.R[7])
	}
	if m.Mem(0x0200) == 0xbad {
		t.Error("carry branch not taken")
	}
	if !m.flag(isa.FlagV) || !m.flag(isa.FlagN) {
		t.Error("overflow flags not set")
	}
}

func TestLogicOps(t *testing.T) {
	m := run(t, `
.org 0xf000
.entry main
main:
    mov #0x0f0f, r4
    mov #0x00ff, r5
    and r5, r4       ; 0x000f
    mov #0x0f0f, r6
    bis r5, r6       ; 0x0fff
    mov #0x0f0f, r7
    xor r5, r7       ; 0x0ff0
    mov #0x0f0f, r8
    bic r5, r8       ; 0x0f00
    mov #0x0f0f, r9
    bit #0x0f00, r9  ; nonzero -> C=1, Z=0
`+halt, nil)
	if m.R[4] != 0x000F || m.R[6] != 0x0FFF || m.R[7] != 0x0FF0 || m.R[8] != 0x0F00 {
		t.Errorf("logic results: %#x %#x %#x %#x", m.R[4], m.R[6], m.R[7], m.R[8])
	}
	if !m.flag(isa.FlagC) || m.flag(isa.FlagZ) {
		t.Error("BIT flags wrong")
	}
}

func TestShiftsAndByteOps(t *testing.T) {
	m := run(t, `
.org 0xf000
.entry main
main:
    mov #0x8005, r4
    rra r4           ; 0xc002, C=1
    mov #0x8005, r5
    clrc
    rrc r5           ; 0x4002, C=1
    rrc r5           ; 0xa001 (C shifts in)
    mov #0x1234, r6
    swpb r6          ; 0x3412
    mov #0x0080, r7
    sxt r7           ; 0xff80
`+halt, nil)
	if m.R[4] != 0xC002 {
		t.Errorf("rra: %#x", m.R[4])
	}
	if m.R[5] != 0xA001 {
		t.Errorf("rrc: %#x", m.R[5])
	}
	if m.R[6] != 0x3412 {
		t.Errorf("swpb: %#x", m.R[6])
	}
	if m.R[7] != 0xFF80 {
		t.Errorf("sxt: %#x", m.R[7])
	}
}

func TestMemoryAddressingModes(t *testing.T) {
	m := run(t, `
.equ RAM, 0x0200
.org RAM
arr: .word 10, 20, 30, 40
dst: .space 4
.org 0xf000
.entry main
main:
    mov #arr, r4
    mov @r4+, r5        ; 10
    mov @r4+, r6        ; 20
    mov 2(r4), r7       ; arr[3] = 40
    mov &arr, r8        ; 10
    mov r5, &dst        ; dst[0] = 10
    mov r7, dst+2       ; dst[1] = 40 (bare = absolute)
    mov #dst, r9
    mov r6, 4(r9)       ; dst[2] = 20
`+halt, nil)
	if m.R[5] != 10 || m.R[6] != 20 || m.R[7] != 40 || m.R[8] != 10 {
		t.Errorf("loads: %d %d %d %d", m.R[5], m.R[6], m.R[7], m.R[8])
	}
	dst := m.Mem(0x0208)
	if dst != 10 || m.Mem(0x020A) != 40 || m.Mem(0x020C) != 20 {
		t.Errorf("stores: %d %d %d", dst, m.Mem(0x020A), m.Mem(0x020C))
	}
}

func TestStackCallRet(t *testing.T) {
	m := run(t, `
.org 0xf000
.entry main
main:
    mov #0x0a00, sp
    mov #3, r4
    push r4
    mov #7, r4
    call #double
    pop r5           ; 3
    mov r4, r6       ; 14
`+halt+`
double:
    add r4, r4
    ret
`, nil)
	if m.R[6] != 14 {
		t.Errorf("call result: %d", m.R[6])
	}
	if m.R[5] != 3 {
		t.Errorf("pop: %d", m.R[5])
	}
	if m.R[isa.SP] != 0x0A00 {
		t.Errorf("sp not balanced: %#x", m.R[isa.SP])
	}
}

func TestConditionalJumps(t *testing.T) {
	m := run(t, `
.org 0xf000
.entry main
main:
    mov #0, r10
    ; signed comparison: -5 < 3
    mov #-5, r4
    cmp #3, r4       ; r4 - 3
    jl lt_ok
    jmp fail
lt_ok:
    bis #1, r10
    ; unsigned: 0xfffb >= 3
    cmp #3, r4
    jhs hs_ok
    jmp fail
hs_ok:
    bis #2, r10
    ; equality
    mov #9, r5
    cmp #9, r5
    jeq eq_ok
    jmp fail
eq_ok:
    bis #4, r10
    ; jge: 3 >= 3
    mov #3, r6
    cmp #3, r6
    jge ge_ok
    jmp fail
ge_ok:
    bis #8, r10
    ; jn: negative result
    mov #1, r7
    sub #2, r7
    jn n_ok
    jmp fail
n_ok:
    bis #16, r10
`+halt+`
fail:
    mov #1, &0x0126
spin2: jmp spin2
`, nil)
	if m.R[10] != 31 {
		t.Errorf("jump ladder r10 = %#x, want 0x1f", m.R[10])
	}
}

func TestHardwareMultiplier(t *testing.T) {
	m := run(t, `
.org 0xf000
.entry main
main:
    mov #1234, &0x0130   ; MPY
    mov #567, &0x0138    ; OP2 triggers
    mov &0x013a, r4      ; RESLO
    mov &0x013c, r5      ; RESHI
`+halt, nil)
	p := uint32(1234) * 567
	if m.R[4] != uint16(p) || m.R[5] != uint16(p>>16) {
		t.Errorf("mult: lo=%#x hi=%#x want %#x", m.R[4], m.R[5], p)
	}
}

func TestInputRegions(t *testing.T) {
	m := run(t, `
.org 0x0200
vals: .input 3
.org 0xf000
.entry main
main:
    mov &vals, r4
    mov &vals+2, r5
    mov &vals+4, r6
`+halt, []uint16{111, 222, 333})
	if m.R[4] != 111 || m.R[5] != 222 || m.R[6] != 333 {
		t.Errorf("inputs: %d %d %d", m.R[4], m.R[5], m.R[6])
	}
}

func TestPortInput(t *testing.T) {
	vals := []uint16{5, 6}
	i := 0
	img, err := isa.Assemble("t", `
.org 0xf000
.entry main
main:
    mov &0x0122, r4
    mov &0x0122, r5
    mov r4, &0x0124
`+halt)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.PortIn = func() uint16 { v := vals[i%2]; i++; return v }
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if m.R[4] != 5 || m.R[5] != 6 || m.P1Out() != 5 {
		t.Errorf("port: %d %d out %d", m.R[4], m.R[5], m.P1Out())
	}
}

func TestWatchdog(t *testing.T) {
	m := run(t, `
.org 0xf000
.entry main
main:
    nop
    nop
    mov #0x0080, &0x0120  ; hold watchdog
    nop
    nop
`+halt, nil)
	if m.WatchdogCount() == 0 {
		t.Error("watchdog should count before hold")
	}
	c := m.WatchdogCount()
	// counting stopped: count only reflects cycles before the hold took
	// effect (2 nops + the store itself).
	if c > 20 {
		t.Errorf("watchdog kept counting: %d", c)
	}
}

func TestErrorPaths(t *testing.T) {
	cases := map[string]string{
		"uninit RAM":  ".org 0xf000\n.entry main\nmain: mov &0x0300, r4\n" + halt,
		"store ROM":   ".org 0xf000\n.entry main\nmain: mov r4, &0xf000\n" + halt,
		"unmapped":    ".org 0xf000\n.entry main\nmain: mov &0x0100, r4\n" + halt,
		"port no src": ".org 0xf000\n.entry main\nmain: mov &0x0122, r4\n" + halt,
	}
	for name, src := range cases {
		img, err := isa.Assemble("t", src)
		if err != nil {
			t.Fatalf("%s: assemble: %v", name, err)
		}
		m, err := New(img, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(1000); err == nil {
			t.Errorf("%s: expected runtime error", name)
		}
	}
}

func TestNoHaltTimesOut(t *testing.T) {
	img, _ := isa.Assemble("t", ".org 0xf000\n.entry main\nmain: jmp main\n")
	m, _ := New(img, nil)
	err := m.Run(100)
	if err == nil || !strings.Contains(err.Error(), "did not halt") {
		t.Fatalf("err = %v", err)
	}
}

func TestCycleAccounting(t *testing.T) {
	m := run(t, `
.org 0xf000
.entry main
main:
    mov r4, r5       ; 2 cycles
    mov #100, r5     ; 3
    nop              ; 2 (constant generator)
`+halt, nil)
	// halt block: mov #1,&0x0126 = 1(F)+1(SOFF imm)... #1 is CG, dst
	// absolute: FETCH+DOFF+DST_WR+EXEC = 5; spin jmp = 2.
	// halt block: mov #1,&0x0126 — #1 is the constant generator, the
	// absolute destination adds DOFF_RD + DST_WR (MOV skips the dst
	// read): FETCH+EXEC+DOFF+WR = 4 cycles. The spin jmp never executes
	// (Run observes Halted first). Total: 2+3+2+4 = 11.
	if m.Cycles != 11 {
		t.Errorf("cycles = %d, want 11", m.Cycles)
	}
	if m.Insns != 4 {
		t.Errorf("insns = %d, want 4", m.Insns)
	}
}
