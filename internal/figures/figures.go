// Package figures regenerates every table and figure of the paper's
// evaluation (the per-experiment index in DESIGN.md): each Fig*/Table*
// method computes the experiment's data on the simulated substrate,
// renders it as text, and returns it in structured form for the
// benchmark harness (bench_test.go at the repo root).
package figures

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"context"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/hwmeas"
	"repro/internal/isa"
	"repro/internal/opt"
	"repro/internal/power"
	"repro/internal/sizing"
	"repro/internal/ulp430"
	"repro/peakpower"
)

// Config carries the experimental setup and caches expensive results.
type Config struct {
	// Out receives rendered text.
	Out io.Writer
	// Analyzer is the 65nm/100MHz analysis setup.
	Analyzer *peakpower.Analyzer
	// Rig is the 130nm/8MHz measurement substitute.
	Rig *hwmeas.Rig
	// ProfileRuns is the number of input sets per profiling sweep.
	ProfileRuns int
	// Seed fixes all random draws.
	Seed int64

	reqs     map[string]*peakpower.Result
	profiles map[string]baseline.ProfileResult
	stress   *baseline.StressResult
	optReqs  map[string]*peakpower.Result
	optSrcs  map[string]string
}

// NewConfig builds the shared setup (one CPU netlist for everything).
func NewConfig(out io.Writer) (*Config, error) {
	an, err := peakpower.New()
	if err != nil {
		return nil, err
	}
	rig, err := hwmeas.NewRig(an.Netlist())
	if err != nil {
		return nil, err
	}
	return &Config{
		Out:         out,
		Analyzer:    an,
		Rig:         rig,
		ProfileRuns: 5,
		Seed:        42,
		reqs:        make(map[string]*peakpower.Result),
		profiles:    make(map[string]baseline.ProfileResult),
		optReqs:     make(map[string]*peakpower.Result),
		optSrcs:     make(map[string]string),
	}, nil
}

func (c *Config) printf(format string, args ...interface{}) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// Req returns (cached) co-analysis requirements for a benchmark.
func (c *Config) Req(name string) (*peakpower.Result, error) {
	if r, ok := c.reqs[name]; ok {
		return r, nil
	}
	b := bench.ByName(name)
	if b == nil {
		return nil, fmt.Errorf("figures: unknown benchmark %s", name)
	}
	img, err := b.Image()
	if err != nil {
		return nil, err
	}
	r, err := c.Analyzer.AnalyzeImage(context.Background(), img,
		peakpower.WithMaxCycles(b.MaxCycles), peakpower.WithMaxNodes(60000))
	if err != nil {
		return nil, err
	}
	c.reqs[name] = r
	return r, nil
}

// Prof returns (cached) input-based profiling results.
func (c *Config) Prof(name string) (baseline.ProfileResult, error) {
	if p, ok := c.profiles[name]; ok {
		return p, nil
	}
	b := bench.ByName(name)
	p, err := baseline.Profile(c.Analyzer.Netlist(), c.Analyzer.Model(), b, c.ProfileRuns, c.Seed)
	if err != nil {
		return ProfileZero, err
	}
	c.profiles[name] = p
	return p, nil
}

// ProfileZero is the zero profile value.
var ProfileZero baseline.ProfileResult

// Stress returns the (cached) evolved stressmark.
func (c *Config) Stress() (*baseline.StressResult, error) {
	if c.stress != nil {
		return c.stress, nil
	}
	res, err := baseline.Stressmark(c.Analyzer.Netlist(), c.Analyzer.Model(), baseline.StressOptions{Seed: c.Seed})
	if err != nil {
		return nil, err
	}
	c.stress = &res
	return c.stress, nil
}

// OptReq returns the (cached) guided-optimization result: following the
// paper's workflow ("choose to apply only the optimizations that are
// guaranteed to reduce peak power", Section 3.5), it tries every subset
// of {OPT1, OPT2, OPT3}, verifies each rewrite differentially, re-runs
// the co-analysis, and keeps the subset with the lowest peak-power bound
// — falling back to the unmodified program when nothing helps.
func (c *Config) OptReq(name string) (*peakpower.Result, string, error) {
	if r, ok := c.optReqs[name]; ok {
		return r, c.optSrcs[name], nil
	}
	b := bench.ByName(name)
	base, err := c.Req(name)
	if err != nil {
		return nil, "", err
	}
	bestReq, bestSrc := base, b.Source
	transforms := []func(string) opt.Result{opt.OPT1, opt.OPT2, opt.OPT3}
	tried := map[string]bool{b.Source: true}
	for mask := 1; mask < 8; mask++ {
		src := b.Source
		applied := 0
		for ti, f := range transforms {
			if mask>>ti&1 == 1 {
				r := f(src)
				src = r.Source
				applied += r.Applied
			}
		}
		if applied == 0 || tried[src] {
			continue
		}
		tried[src] = true
		if err := opt.VerifyEquivalent(b, src, 4, c.Seed); err != nil {
			return nil, "", fmt.Errorf("figures: %s optimization unsound: %w", name, err)
		}
		img, err := isa.Assemble(name+"-opt", src)
		if err != nil {
			return nil, "", err
		}
		r, err := c.Analyzer.AnalyzeImage(context.Background(), img,
			peakpower.WithMaxCycles(2*b.MaxCycles), peakpower.WithMaxNodes(120000))
		if err != nil {
			return nil, "", err
		}
		if r.PeakPowerMW < bestReq.PeakPowerMW {
			bestReq, bestSrc = r, src
		}
	}
	c.optReqs[name] = bestReq
	c.optSrcs[name] = bestSrc
	return bestReq, bestSrc, nil
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// sparkline renders a compact trace view.
func sparkline(xs []float64, width int) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	out := make([]rune, 0, width)
	for i := 0; i < width; i++ {
		j := i * len(xs) / width
		g := 0
		if hi > lo {
			g = int((xs[j] - lo) / (hi - lo) * float64(len(glyphs)-1))
		}
		out = append(out, glyphs[g])
	}
	return string(out)
}

// Fig22Row is one benchmark's measured peak/NPE with input range.
type Fig22Row struct {
	Bench                      string
	MeanPeak, MinPeak, MaxPeak float64
	MeanNPE, MinNPE, MaxNPE    float64
}

// Fig22 reproduces Figure 2.2 (7a/7b): measured peak power and
// normalized peak energy across benchmarks and input sets on the
// MSP430F1610-class rig, with input-induced ranges.
func (c *Config) Fig22(names []string) ([]Fig22Row, error) {
	c.printf("Figure 2.2 — measured peak power and NPE on the 130nm/8MHz rig (rated peak %.2f mW)\n", c.Rig.RatedPeakMW)
	c.printf("%-10s %28s %34s\n", "bench", "peak power mW (min..max)", "NPE J/cycle (min..max)")
	var rows []Fig22Row
	for _, name := range names {
		sw, err := c.Rig.Sweep(bench.ByName(name), c.ProfileRuns, c.Seed)
		if err != nil {
			return nil, err
		}
		row := Fig22Row{
			Bench: name, MeanPeak: sw.MeanPeakMW, MinPeak: sw.MinPeakMW, MaxPeak: sw.MaxPeakMW,
			MeanNPE: sw.MeanNPE, MinNPE: sw.MinNPE, MaxNPE: sw.MaxNPE,
		}
		rows = append(rows, row)
		c.printf("%-10s %10.4f (%.4f..%.4f) %14.3e (%.3e..%.3e)\n",
			name, row.MeanPeak, row.MinPeak, row.MaxPeak, row.MeanNPE, row.MinNPE, row.MaxNPE)
	}
	return rows, nil
}

// Fig23 reproduces Figure 2.3: the measured instantaneous power profile
// of mult, far below both rated and observed peak on average.
func (c *Config) Fig23() (hwmeas.Measurement, error) {
	m, err := c.Rig.Measure(bench.ByName("mult"), c.Seed, c.Seed+1)
	if err != nil {
		return m, err
	}
	c.printf("Figure 2.3 — mult instantaneous power (130nm/8MHz rig)\n")
	c.printf("  cycles=%d peak=%.4f mW avg=%.4f mW rated=%.4f mW\n", m.Cycles, m.PeakMW, m.AvgMW, c.Rig.RatedPeakMW)
	c.printf("  trace: %s\n", sparkline(m.TraceMW, 72))
	return m, nil
}

// Fig15 reproduces Figure 1.5/5: active gates at the peak cycle for
// tHold vs PI, per module.
func (c *Config) Fig15() (tholdCount, piCount int, err error) {
	rt, err := c.Req("tHold")
	if err != nil {
		return 0, 0, err
	}
	rp, err := c.Req("PI")
	if err != nil {
		return 0, 0, err
	}
	c.printf("Figure 1.5 — active gates at the peak cycle (application-specific activity)\n")
	for _, e := range []struct {
		name string
		req  *peakpower.Result
	}{{"tHold", rt}, {"PI", rp}} {
		by := c.Analyzer.ActiveCellsByModule(e.req.Best.ActiveCells)
		total := len(e.req.Best.ActiveCells)
		mods := make([]string, 0, len(by))
		for m := range by {
			mods = append(mods, m)
		}
		sort.Strings(mods)
		c.printf("  %-6s peak cycle: %4d active gates:", e.name, total)
		for _, m := range mods {
			c.printf(" %s:%d", m, by[m])
		}
		c.printf("\n")
	}
	return len(rt.Best.ActiveCells), len(rp.Best.ActiveCells), nil
}

// Fig33 reproduces Figure 3.3: per-cycle peak power traces for every
// benchmark.
func (c *Config) Fig33(names []string) (map[string][]float64, error) {
	c.printf("Figure 3.3 — per-cycle X-based peak power traces\n")
	out := make(map[string][]float64)
	for _, name := range names {
		r, err := c.Req(name)
		if err != nil {
			return nil, err
		}
		tr := r.PeakTrace
		out[name] = tr
		lo, hi := tr[0], tr[0]
		for _, v := range tr {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		c.printf("  %-10s [%5.2f..%5.2f mW] %s\n", name, lo, hi, sparkline(tr, 64))
	}
	return out, nil
}

// Fig34Result summarizes toggle-set containment for one benchmark.
type Fig34Result struct {
	XOnly, Common, InputOnly int
}

// Fig34 reproduces Figure 3.4: gates toggled under low- and high-activity
// inputs are contained in the X-based potentially-toggled set.
func (c *Config) Fig34(name string, lowInputs, highInputs []uint16) (Fig34Result, error) {
	r, err := c.Req(name)
	if err != nil {
		return Fig34Result{}, err
	}
	b := bench.ByName(name)
	img, _ := b.Image()
	res := Fig34Result{}
	c.printf("Figure 3.4 — toggled-gate containment for %s\n", name)
	for _, in := range [][]uint16{lowInputs, highInputs} {
		run, err := c.Analyzer.RunConcrete(context.Background(), img, in, nil, 2_000_000)
		if err != nil {
			return res, err
		}
		common, inputOnly := 0, 0
		for ci, act := range run.UnionActive {
			if !act {
				continue
			}
			if r.UnionActive[ci] {
				common++
			} else {
				inputOnly++
			}
		}
		res.Common = common
		res.InputOnly += inputOnly
		c.printf("  inputs %v: common=%d input-only=%d\n", in, common, inputOnly)
	}
	xonly := 0
	for _, act := range r.UnionActive {
		if act {
			xonly++
		}
	}
	res.XOnly = xonly
	c.printf("  X-based potentially-toggled set: %d gates (superset; input-only must be 0)\n", xonly)
	return res, nil
}

// Fig35 reproduces Figure 3.5: the X-based peak power trace upper-bounds
// the input-based trace cycle for cycle (shown for mult, which has a
// single execution path so the traces align exactly).
func (c *Config) Fig35() (xTrace, inTrace []float64, err error) {
	r, err := c.Req("mult")
	if err != nil {
		return nil, nil, err
	}
	b := bench.ByName("mult")
	img, _ := b.Image()
	run, err := c.Analyzer.RunConcrete(context.Background(), img, []uint16{0xFFFF, 0xAAAA, 0x1234, 0x8001, 0x7FFF, 0x5555, 0xF0F0, 0x0F0F}, nil, 1_000_000)
	if err != nil {
		return nil, nil, err
	}
	c.printf("Figure 3.5 — X-based trace bounds the input-based trace (mult)\n")
	c.printf("  X-based:     %s\n", sparkline(r.PeakTrace, 64))
	c.printf("  input-based: %s\n", sparkline(run.Trace, 64))
	return r.PeakTrace, run.Trace, nil
}

// Fig36 reproduces Figure 3.6: cycles of interest for mult with
// instruction and per-module power attribution.
func (c *Config) Fig36() ([]power.Peak, error) {
	r, err := c.Req("mult")
	if err != nil {
		return nil, err
	}
	c.printf("Figure 3.6 — mult cycles of interest (instruction + module attribution)\n")
	c.printf("%6s %8s %-8s %-6s  per-module mW\n", "cycle", "mW", "instr", "state")
	img, _ := bench.ByName("mult").Image()
	n := len(r.Peaks)
	if n > 4 {
		n = 4
	}
	for _, pk := range r.Peaks[:n] {
		c.printf("%6d %8.3f %-8s %-6s ", pk.PathPos, pk.PowerMW, isa.Mnemonic(img, pk.FetchAddr), pk.State)
		for mi, mw := range pk.ByModuleMW {
			if mw > 0.05 {
				c.printf(" %s:%.2f", r.Modules[mi], mw)
			}
		}
		c.printf("\n")
	}
	return r.Peaks, nil
}

// Fig41Row is one benchmark's concrete peak/NPE statistics at the
// 65nm/100MHz operating point.
type Fig41Row struct {
	Bench                      string
	MeanPeak, MinPeak, MaxPeak float64
	MeanNPE, MinNPE, MaxNPE    float64
}

// Fig41 reproduces Figure 4.1 (15a/15b): per-benchmark, per-input peak
// power and NPE on the openMSP430-class design.
func (c *Config) Fig41(names []string) ([]Fig41Row, error) {
	c.printf("Figure 4.1 — input-based peak power and NPE (ULP430 @ 65nm/100MHz)\n")
	var rows []Fig41Row
	for _, name := range names {
		p, err := c.Prof(name)
		if err != nil {
			return nil, err
		}
		row := Fig41Row{
			Bench: name, MinPeak: p.MinPeakMW, MaxPeak: p.ObservedPeakMW,
			MeanPeak: (p.MinPeakMW + p.ObservedPeakMW) / 2,
			MinNPE:   p.MinNPE, MaxNPE: p.ObservedNPE, MeanNPE: (p.MinNPE + p.ObservedNPE) / 2,
		}
		rows = append(rows, row)
		c.printf("  %-10s peak %.3f..%.3f mW   NPE %.3e..%.3e J/cyc\n",
			name, row.MinPeak, row.MaxPeak, row.MinNPE, row.MaxNPE)
	}
	return rows, nil
}

// Fig51Row is the peak-power comparison for one benchmark.
type Fig51Row struct {
	Bench      string
	DesignTool float64
	GBStress   float64
	InputBased float64 // highest observed
	GBInput    float64
	XBased     float64
}

// Fig51 reproduces Figure 5.1: peak power requirements by technique.
func (c *Config) Fig51(names []string) ([]Fig51Row, Aggregates, error) {
	design := baseline.DesignToolPeakMW(c.Analyzer.Netlist(), c.Analyzer.Model(), baseline.DefaultToggleRate)
	st, err := c.Stress()
	if err != nil {
		return nil, Aggregates{}, err
	}
	c.printf("Figure 5.1 — peak power requirements by technique (mW)\n")
	c.printf("%-10s %10s %10s %10s %10s %10s\n", "bench", "design", "GB-stress", "input-max", "GB-input", "X-based")
	var rows []Fig51Row
	for _, name := range names {
		r, err := c.Req(name)
		if err != nil {
			return nil, Aggregates{}, err
		}
		p, err := c.Prof(name)
		if err != nil {
			return nil, Aggregates{}, err
		}
		row := Fig51Row{
			Bench: name, DesignTool: design, GBStress: st.GuardbandedPeakMW,
			InputBased: p.ObservedPeakMW, GBInput: p.GuardbandedPeakMW, XBased: r.PeakPowerMW,
		}
		rows = append(rows, row)
		c.printf("%-10s %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			name, row.DesignTool, row.GBStress, row.InputBased, row.GBInput, row.XBased)
	}
	agg := aggregate(rows)
	c.printf("X-based is on average: %.0f%% below design tool, %.0f%% below GB-stressmark, %.0f%% below GB-input, %.0f%% above max observed input-based\n",
		agg.VsDesignPct, agg.VsStressPct, agg.VsGBInputPct, agg.AboveObservedPct)
	return rows, agg, nil
}

// Aggregates are the headline averages of Figure 5.1/5.2.
type Aggregates struct {
	VsDesignPct      float64 // X-based below design tool
	VsStressPct      float64 // X-based below GB stressmark
	VsGBInputPct     float64 // X-based below GB input-based
	AboveObservedPct float64 // X-based above max observed
}

func aggregate(rows []Fig51Row) Aggregates {
	var a Aggregates
	for _, r := range rows {
		a.VsDesignPct += 100 * (1 - r.XBased/r.DesignTool)
		a.VsStressPct += 100 * (1 - r.XBased/r.GBStress)
		a.VsGBInputPct += 100 * (1 - r.XBased/r.GBInput)
		a.AboveObservedPct += 100 * (r.XBased/r.InputBased - 1)
	}
	n := float64(len(rows))
	a.VsDesignPct /= n
	a.VsStressPct /= n
	a.VsGBInputPct /= n
	a.AboveObservedPct /= n
	return a
}

// Fig52Row is the NPE comparison for one benchmark.
type Fig52Row struct {
	Bench      string
	DesignTool float64
	GBStress   float64
	InputBased float64
	GBInput    float64
	XBased     float64
}

// Fig52 reproduces Figure 5.2: normalized peak energy by technique.
func (c *Config) Fig52(names []string) ([]Fig52Row, Aggregates, error) {
	design := baseline.DesignToolNPE(c.Analyzer.Netlist(), c.Analyzer.Model(), baseline.DefaultToggleRate)
	st, err := c.Stress()
	if err != nil {
		return nil, Aggregates{}, err
	}
	c.printf("Figure 5.2 — normalized peak energy by technique (J/cycle)\n")
	c.printf("%-10s %11s %11s %11s %11s %11s\n", "bench", "design", "GB-stress", "input-max", "GB-input", "X-based")
	var rows []Fig52Row
	for _, name := range names {
		r, err := c.Req(name)
		if err != nil {
			return nil, Aggregates{}, err
		}
		p, err := c.Prof(name)
		if err != nil {
			return nil, Aggregates{}, err
		}
		row := Fig52Row{
			Bench: name, DesignTool: design, GBStress: st.GuardbandedNPE,
			InputBased: p.ObservedNPE, GBInput: p.GuardbandedNPE, XBased: r.NPEJPerCycle,
		}
		rows = append(rows, row)
		c.printf("%-10s %11.3e %11.3e %11.3e %11.3e %11.3e\n",
			name, row.DesignTool, row.GBStress, row.InputBased, row.GBInput, row.XBased)
	}
	conv := make([]Fig51Row, len(rows))
	for i, r := range rows {
		conv[i] = Fig51Row{Bench: r.Bench, DesignTool: r.DesignTool, GBStress: r.GBStress,
			InputBased: r.InputBased, GBInput: r.GBInput, XBased: r.XBased}
	}
	agg := aggregate(conv)
	c.printf("X-based NPE is on average: %.0f%% below design tool, %.0f%% below GB-stressmark, %.0f%% below GB-input\n",
		agg.VsDesignPct, agg.VsStressPct, agg.VsGBInputPct)
	return rows, agg, nil
}

// Table51 reproduces Table 5.1: harvester-area reduction vs baselines
// across processor peak-power contribution fractions.
func (c *Config) Table51(names []string) (map[string][]float64, error) {
	rows, _, err := c.Fig51(names)
	if err != nil {
		return nil, err
	}
	var xs, gbin, gbst, des []float64
	for _, r := range rows {
		xs = append(xs, r.XBased)
		gbin = append(gbin, r.GBInput)
		gbst = append(gbst, r.GBStress)
		des = append(des, r.DesignTool)
	}
	out := map[string][]float64{
		"GB-Input":    sizing.ReductionRow(mean(gbin), mean(xs)),
		"GB-Stress":   sizing.ReductionRow(mean(gbst), mean(xs)),
		"Design Tool": sizing.ReductionRow(mean(des), mean(xs)),
	}
	c.printf("Table 5.1 — %% reduction in harvester area vs processor contribution\n")
	c.printf("%-12s", "Baseline")
	for _, p := range sizing.Contributions {
		c.printf(" %6.0f%%", p*100)
	}
	c.printf("\n")
	for _, k := range []string{"GB-Input", "GB-Stress", "Design Tool"} {
		c.printf("%-12s", k)
		for _, v := range out[k] {
			c.printf(" %6.2f ", v)
		}
		c.printf("\n")
	}
	return out, nil
}

// Table52 reproduces Table 5.2: battery-volume reduction vs baselines
// across processor energy contribution fractions.
func (c *Config) Table52(names []string) (map[string][]float64, error) {
	rows, _, err := c.Fig52(names)
	if err != nil {
		return nil, err
	}
	var xs, gbin, gbst, des []float64
	for _, r := range rows {
		xs = append(xs, r.XBased)
		gbin = append(gbin, r.GBInput)
		gbst = append(gbst, r.GBStress)
		des = append(des, r.DesignTool)
	}
	out := map[string][]float64{
		"GB-Input":    sizing.ReductionRow(mean(gbin), mean(xs)),
		"GB-Stress":   sizing.ReductionRow(mean(gbst), mean(xs)),
		"Design Tool": sizing.ReductionRow(mean(des), mean(xs)),
	}
	c.printf("Table 5.2 — %% reduction in battery volume vs processor contribution\n")
	for _, k := range []string{"GB-Input", "GB-Stress", "Design Tool"} {
		c.printf("%-12s", k)
		for _, v := range out[k] {
			c.printf(" %6.2f ", v)
		}
		c.printf("\n")
	}
	return out, nil
}

// Fig54Row reports the optimization outcome for one benchmark.
type Fig54Row struct {
	Bench              string
	PeakBefore         float64
	PeakAfter          float64
	PeakReductionPct   float64
	RangeReductionPct  float64
	PerfDegradationPct float64
	EnergyOverheadPct  float64
	Applied            bool
}

// Fig54 reproduces Figures 5.4 and 5.6: peak power reduction, dynamic
// range reduction, performance degradation, and energy overhead of the
// OPT1-3 transforms.
func (c *Config) Fig54(names []string) ([]Fig54Row, error) {
	c.printf("Figures 5.4/5.6 — peak power optimization results\n")
	c.printf("%-10s %9s %9s %8s %8s %8s %8s\n", "bench", "before", "after", "Δpeak%", "Δrange%", "perf%", "energy%")
	var rows []Fig54Row
	for _, name := range names {
		b := bench.ByName(name)
		before, err := c.Req(name)
		if err != nil {
			return nil, err
		}
		after, newSrc, err := c.OptReq(name)
		if err != nil {
			return nil, err
		}
		row := Fig54Row{
			Bench: name, PeakBefore: before.PeakPowerMW, PeakAfter: after.PeakPowerMW,
			Applied: newSrc != b.Source,
		}
		row.PeakReductionPct = 100 * (1 - after.PeakPowerMW/before.PeakPowerMW)
		avgB := mean(before.PeakTrace)
		avgA := mean(after.PeakTrace)
		rangeB := before.PeakPowerMW - avgB
		rangeA := after.PeakPowerMW - avgA
		if rangeB > 0 {
			row.RangeReductionPct = 100 * (1 - rangeA/rangeB)
		}
		if row.Applied {
			ov, err := opt.MeasureOverhead(b, newSrc, c.Seed)
			if err != nil {
				return nil, err
			}
			row.PerfDegradationPct = ov.PerfDegradationPct
		}
		row.EnergyOverheadPct = 100 * (after.PeakEnergyJ/before.PeakEnergyJ - 1)
		rows = append(rows, row)
		c.printf("%-10s %9.3f %9.3f %8.2f %8.2f %8.2f %8.2f\n",
			name, row.PeakBefore, row.PeakAfter, row.PeakReductionPct,
			row.RangeReductionPct, row.PerfDegradationPct, row.EnergyOverheadPct)
	}
	return rows, nil
}

// Fig55 reproduces Figure 5.5: mult's peak power trace before and after
// optimization.
func (c *Config) Fig55() (before, after []float64, err error) {
	rb, err := c.Req("mult")
	if err != nil {
		return nil, nil, err
	}
	ra, _, err := c.OptReq("mult")
	if err != nil {
		return nil, nil, err
	}
	c.printf("Figure 5.5 — mult X-based peak power trace before/after optimization\n")
	c.printf("  before (peak %.3f): %s\n", rb.PeakPowerMW, sparkline(rb.PeakTrace, 64))
	c.printf("  after  (peak %.3f): %s\n", ra.PeakPowerMW, sparkline(ra.PeakTrace, 64))
	return rb.PeakTrace, ra.PeakTrace, nil
}

// Fig53 reproduces Figure 5.3: the instruction transforms themselves.
func (c *Config) Fig53() map[string]map[string]int {
	c.printf("Figure 5.3 — instruction optimization transforms applied per benchmark\n")
	out := make(map[string]map[string]int)
	for _, b := range bench.All() {
		_, counts := opt.ApplyAll(b.Source)
		out[b.Name] = counts
		c.printf("  %-10s OPT1(indexed-load)=%d OPT2(pop-split)=%d OPT3(mult-nop)=%d\n",
			b.Name, counts["OPT1"], counts["OPT2"], counts["OPT3"])
	}
	return out
}

// Tables11_12_61 renders the constant tables.
func (c *Config) Tables11_12_61() {
	c.printf("Table 1.1 — battery energy characteristics\n")
	for _, b := range sizing.Batteries() {
		c.printf("  %-12s %6.0f J/g  %6.3f MJ/L\n", b.Type, b.SpecificEnergyJG, b.EnergyDensityMJL)
	}
	c.printf("Table 1.2 — harvester power density\n")
	for _, h := range sizing.Harvesters() {
		c.printf("  %-24s %8.3f mW/cm²\n", h.Type, h.PowerDensityMWCM2)
	}
	c.printf("Table 6.1 — microarchitectural features\n")
	for _, r := range sizing.MicroarchTable() {
		c.printf("  %-24s predictor=%v cache=%v\n", r.Processor, r.BranchPredictor, r.Cache)
	}
}

// Fig32 renders the Figure 3.2 even/odd assignment example.
func (c *Config) Fig32() error {
	img, err := isa.Assemble("fig32", `
.org 0x0200
v: .input 2
.org 0xf000
.entry main
main:
    mov #0x0080, &0x0120
    mov &v, r4
    add &v+2, r4
    xor r4, r5
    mov #1, &0x0126
spin: jmp spin
`)
	if err != nil {
		return err
	}
	sys, err := ulp430.NewSystem(c.Analyzer.Netlist(), c.Analyzer.Model().Lib, img, ulp430.SymbolicInputs, nil)
	if err != nil {
		return err
	}
	sys.Reset()
	w, err := power.Capture(sys, 30)
	if err != nil {
		return err
	}
	peak, even, odd := power.AlgorithmTwo(w, c.Analyzer.Model())
	stream := power.StreamingTrace(w, c.Analyzer.Model())
	c.printf("Figure 3.2 — Algorithm 2 even/odd assignment on a live window\n")
	c.printf("  interleaved peak: %s\n", sparkline(peak[1:], 29))
	c.printf("  streaming bound:  %s\n", sparkline(stream[1:], 29))
	_ = even
	_ = odd
	maxDiff := 0.0
	for i := 1; i < len(peak); i++ {
		maxDiff = math.Max(maxDiff, math.Abs(peak[i]-stream[i]))
	}
	c.printf("  max |interleaved-streaming| = %.2e mW (must be ~0)\n", maxDiff)
	return nil
}

// EnergyCrossCheck verifies that a benchmark's concrete energy stays
// within its bound — data backing the paper-vs-measured comparison.
func (c *Config) EnergyCrossCheck(name string) (boundJ, concreteJ float64, err error) {
	r, err := c.Req(name)
	if err != nil {
		return 0, 0, err
	}
	b := bench.ByName(name)
	img, err := b.Image()
	if err != nil {
		return 0, 0, err
	}
	rr := rand.New(rand.NewSource(c.Seed))
	var portIn func() uint16
	inputs := b.GenInputs(rr)
	if b.UsesPort {
		portIn = b.GenPort(rr)
	}
	run, err := c.Analyzer.RunConcrete(context.Background(), img, inputs, portIn, 2_000_000)
	if err != nil {
		return 0, 0, err
	}
	return r.PeakEnergyJ, run.EnergyJ, nil
}
