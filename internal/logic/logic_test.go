package logic

import (
	"testing"
	"testing/quick"
)

func TestTritBasics(t *testing.T) {
	if !H.Known() || !L.Known() || X.Known() {
		t.Fatal("Known misclassifies")
	}
	if H.Bit() != 1 || L.Bit() != 0 {
		t.Fatal("Bit wrong")
	}
	if FromBool(true) != H || FromBool(false) != L {
		t.Fatal("FromBool wrong")
	}
	if FromBit(3) != H || FromBit(2) != L {
		t.Fatal("FromBit wrong")
	}
	if L.String() != "0" || H.String() != "1" || X.String() != "x" {
		t.Fatal("String wrong")
	}
}

func TestBitPanicsOnX(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = X.Bit()
}

func TestParseTrit(t *testing.T) {
	for _, tc := range []struct {
		c    byte
		want Trit
	}{{'0', L}, {'1', H}, {'x', X}, {'X', X}, {'z', X}} {
		got, err := ParseTrit(tc.c)
		if err != nil || got != tc.want {
			t.Errorf("ParseTrit(%q) = %v, %v", tc.c, got, err)
		}
	}
	if _, err := ParseTrit('q'); err == nil {
		t.Error("expected error for 'q'")
	}
}

// Truth tables for all two-input ops over {0,1,X}.
func TestTruthTables(t *testing.T) {
	vals := []Trit{L, H, X}
	type tab struct {
		name string
		f    func(a, b Trit) Trit
		// rows indexed [a][b]
		want [3][3]Trit
	}
	tabs := []tab{
		{"And", And, [3][3]Trit{{L, L, L}, {L, H, X}, {L, X, X}}},
		{"Or", Or, [3][3]Trit{{L, H, X}, {H, H, H}, {X, H, X}}},
		{"Xor", Xor, [3][3]Trit{{L, H, X}, {H, L, X}, {X, X, X}}},
		{"Nand", Nand, [3][3]Trit{{H, H, H}, {H, L, X}, {H, X, X}}},
		{"Nor", Nor, [3][3]Trit{{H, L, X}, {L, L, L}, {X, L, X}}},
		{"Xnor", Xnor, [3][3]Trit{{H, L, X}, {L, H, X}, {X, X, X}}},
	}
	for _, tb := range tabs {
		for i, a := range vals {
			for j, b := range vals {
				if got := tb.f(a, b); got != tb.want[i][j] {
					t.Errorf("%s(%v,%v) = %v, want %v", tb.name, a, b, got, tb.want[i][j])
				}
			}
		}
	}
	if Not(L) != H || Not(H) != L || Not(X) != X {
		t.Error("Not wrong")
	}
}

func TestMux(t *testing.T) {
	if Mux(L, H, L) != H || Mux(H, H, L) != L {
		t.Fatal("mux select wrong")
	}
	// X select: agree -> known, disagree -> X
	if Mux(X, H, H) != H || Mux(X, L, L) != L {
		t.Fatal("mux X-select agreement wrong")
	}
	if Mux(X, H, L) != X || Mux(X, X, X) != X || Mux(X, H, X) != X {
		t.Fatal("mux X-select disagreement wrong")
	}
}

// Property: all gate functions are monotone in the information order:
// refining an X input to 0 or 1 must produce an output that refines the
// X-input output. This is the soundness core of the whole analysis.
func TestMonotonicityProperty(t *testing.T) {
	refines := func(c, s Trit) bool { return s == X || s == c }
	ops := map[string]func(a, b Trit) Trit{
		"And": And, "Or": Or, "Xor": Xor, "Nand": Nand, "Nor": Nor, "Xnor": Xnor,
	}
	vals := []Trit{L, H, X}
	concrete := []Trit{L, H}
	for name, f := range ops {
		for _, a := range vals {
			for _, b := range vals {
				sym := f(a, b)
				// enumerate all concretizations
				as := concrete
				if a != X {
					as = []Trit{a}
				}
				bs := concrete
				if b != X {
					bs = []Trit{b}
				}
				for _, ca := range as {
					for _, cb := range bs {
						if got := f(ca, cb); !refines(got, sym) {
							t.Errorf("%s not monotone: f(%v,%v)=%v but f(%v,%v)=%v", name, a, b, sym, ca, cb, got)
						}
					}
				}
			}
		}
	}
	// Mux too.
	for _, s := range vals {
		for _, a := range vals {
			for _, b := range vals {
				sym := Mux(s, a, b)
				ss := concrete
				if s != X {
					ss = []Trit{s}
				}
				as := concrete
				if a != X {
					as = []Trit{a}
				}
				bs := concrete
				if b != X {
					bs = []Trit{b}
				}
				for _, cs := range ss {
					for _, ca := range as {
						for _, cb := range bs {
							if got := Mux(cs, ca, cb); !refines(got, sym) {
								t.Errorf("Mux not monotone at (%v,%v,%v)", s, a, b)
							}
						}
					}
				}
			}
		}
	}
}

func TestWordRoundTrip(t *testing.T) {
	f := func(v uint16) bool {
		w := FromUint(uint64(v), 16)
		got, ok := w.Uint()
		return ok && got == uint64(v) && w.Known() && !w.HasX()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordStringParse(t *testing.T) {
	w, err := ParseWord("10x1")
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 4 || w[0] != H || w[1] != X || w[2] != L || w[3] != H {
		t.Fatalf("parse wrong: %v", w)
	}
	if w.String() != "10x1" {
		t.Fatalf("String = %q", w.String())
	}
	if _, err := ParseWord("10q1"); err == nil {
		t.Fatal("expected error")
	}
}

func TestWordHelpers(t *testing.T) {
	x := AllX(8)
	if x.Known() || !x.HasX() || len(x) != 8 {
		t.Fatal("AllX wrong")
	}
	if _, ok := x.Uint(); ok {
		t.Fatal("Uint on X should fail")
	}
	w := FromUint(0xA5, 8)
	c := w.Clone()
	c[0] = X
	if w[0] == X {
		t.Fatal("Clone aliases")
	}
	if !w.Equal(FromUint(0xA5, 8)) || w.Equal(c) || w.Equal(FromUint(0xA5, 9)) {
		t.Fatal("Equal wrong")
	}
	if w.MustUint() != 0xA5 {
		t.Fatal("MustUint wrong")
	}
}

func TestMustUintPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AllX(4).MustUint()
}

func TestRefines(t *testing.T) {
	s, _ := ParseWord("1x0x")
	for _, tc := range []struct {
		c    string
		want bool
	}{
		{"1000", true}, {"1100", true}, {"1001", true}, {"1101", true},
		{"0000", false}, {"1010", false},
	} {
		c, _ := ParseWord(tc.c)
		if got := Refines(c, s); got != tc.want {
			t.Errorf("Refines(%s, %s) = %v, want %v", tc.c, s, got, tc.want)
		}
	}
	// non-concrete c never refines
	if Refines(s, s) {
		t.Error("X word should not refine")
	}
	if Refines(FromUint(0, 3), FromUint(0, 4)) {
		t.Error("length mismatch should not refine")
	}
}

// Property: NewWord fill semantics.
func TestNewWordProperty(t *testing.T) {
	f := func(n uint8) bool {
		m := int(n%64) + 1
		w0 := NewWord(m, L)
		w1 := NewWord(m, H)
		v0, ok0 := w0.Uint()
		v1, ok1 := w1.Uint()
		return ok0 && v0 == 0 && ok1 && v1 == (uint64(1)<<uint(m))-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
