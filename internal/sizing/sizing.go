// Package sizing models how peak power and energy requirements translate
// into energy-harvester and battery sizes for the three ULP system
// classes of Chapter 1 (Type 1: harvester-powered; Type 2:
// harvester-charged battery; Type 3: battery-powered), and computes the
// reduction tables of Section 5 (Tables 5.1 and 5.2).
package sizing

// Battery characterizes one battery chemistry (Table 1.1).
type Battery struct {
	// Type is the chemistry name.
	Type string
	// SpecificEnergyJG is specific energy in J/g.
	SpecificEnergyJG float64
	// EnergyDensityMJL is energy density in MJ/L.
	EnergyDensityMJL float64
}

// Batteries returns Table 1.1.
func Batteries() []Battery {
	return []Battery{
		{"Li-ion", 460, 1.152},
		{"Alkaline", 400, 0.331},
		{"Carbon-zinc", 130, 1.080},
		{"Ni-MH", 340, 0.504},
		{"Ni-cad", 140, 0.828},
		{"Lead-acid", 146, 0.360},
	}
}

// Harvester characterizes one harvesting technology (Table 1.2).
type Harvester struct {
	// Type is the harvester technology.
	Type string
	// PowerDensityMWCM2 is power density in mW/cm².
	PowerDensityMWCM2 float64
}

// Harvesters returns Table 1.2.
func Harvesters() []Harvester {
	return []Harvester{
		{"Photovoltaic (sun)", 100},
		{"Photovoltaic (indoor)", 0.1},
		{"Thermoelectric", 0.06},
		{"Ambient airflow", 1},
	}
}

// ReductionPct returns the percentage reduction in a component sized by a
// requirement, when the processor's requirement drops from base to ours
// and the processor contributes fraction contrib (0..1) of the system
// requirement: contrib × (base-ours)/base × 100. This is the model behind
// Tables 5.1 (harvester area vs peak power) and 5.2 (battery volume vs
// peak energy).
func ReductionPct(contrib, base, ours float64) float64 {
	if base <= 0 {
		return 0
	}
	return contrib * (base - ours) / base * 100
}

// Contributions are the processor-share columns of Tables 5.1/5.2.
var Contributions = []float64{0.10, 0.25, 0.50, 0.75, 0.90, 1.00}

// ReductionRow computes one table row across the standard contribution
// columns.
func ReductionRow(base, ours float64) []float64 {
	out := make([]float64, len(Contributions))
	for i, c := range Contributions {
		out[i] = ReductionPct(c, base, ours)
	}
	return out
}

// HarvesterAreaCM2 sizes a Type 1 harvester for a peak power requirement.
func HarvesterAreaCM2(peakPowerMW float64, h Harvester) float64 {
	return peakPowerMW / h.PowerDensityMWCM2
}

// BatteryVolumeMM3 sizes a battery for a total energy requirement in
// joules (volume in mm³; 1 MJ/L = 1 J/mm³).
func BatteryVolumeMM3(energyJ float64, b Battery) float64 {
	return energyJ / b.EnergyDensityMJL
}

// BatteryMassG sizes a battery by mass for a total energy requirement.
func BatteryMassG(energyJ float64, b Battery) float64 {
	return energyJ / b.SpecificEnergyJG
}

// ReferenceNode is the eZ430-RF2500-SEH-class sensor node of Figure 1.2
// used in the paper's worked example (harvester area 32.6 cm², battery
// volume 6.95 mm³, thin-film battery 5.7 mm × 6.1 mm × 200 µm).
type ReferenceNode struct {
	// HarvesterAreaCM2 is the solar cell area.
	HarvesterAreaCM2 float64
	// BatteryVolumeMM3 is the storage volume.
	BatteryVolumeMM3 float64
	// BatteryAreaMM2 is the thin-film battery footprint.
	BatteryAreaMM2 float64
}

// Reference returns the paper's example node.
func Reference() ReferenceNode {
	return ReferenceNode{HarvesterAreaCM2: 32.6, BatteryVolumeMM3: 6.95, BatteryAreaMM2: 34.77}
}

// HarvesterSavingCM2 returns the harvester-area saving on the reference
// node when the processor peak-power requirement drops from base to ours
// and the processor dominates the node's peak power.
func (n ReferenceNode) HarvesterSavingCM2(base, ours float64) float64 {
	return n.HarvesterAreaCM2 * ReductionPct(1.0, base, ours) / 100
}

// BatterySavingMM3 returns the battery-volume saving on the reference
// node when the processor peak-energy requirement drops from base to
// ours.
func (n ReferenceNode) BatterySavingMM3(base, ours float64) float64 {
	return n.BatteryVolumeMM3 * ReductionPct(1.0, base, ours) / 100
}

// MicroarchRow is one row of Table 6.1 (microarchitectural features of
// recent embedded processors).
type MicroarchRow struct {
	Processor       string
	BranchPredictor bool
	Cache           bool
}

// MicroarchTable returns Table 6.1.
func MicroarchTable() []MicroarchRow {
	return []MicroarchRow{
		{"ARM Cortex-M0", false, false},
		{"ARM Cortex-M3", true, false},
		{"Atmel ATxmega128A4", false, false},
		{"Freescale/NXP MC13224v", false, false},
		{"Intel Quark-D1000", true, true},
		{"Jennic/NXP JN5169", false, false},
		{"SiLab Si2012", false, false},
		{"TI MSP430", false, false},
	}
}
