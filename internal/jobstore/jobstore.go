// Package jobstore persists a service's async analysis jobs: one JSON
// file per job, written atomically (same-directory temp file + rename),
// so the set of submitted jobs — and their terminal results — survives a
// crash or restart of the process that accepted them.
//
// The store is deliberately dumb: it records state transitions, it does
// not schedule. Recovery policy (which states re-enqueue, in what order)
// belongs to the service; Recover implements the standard one — queued
// jobs and jobs that died mid-run come back in submission order.
//
// Durability posture: every Put is an atomic replace, so a reader (or the
// next process life) sees either the previous record or the new one,
// never a torn file. A record that fails to parse or validate is reported
// by List as damaged rather than silently dropped, and Scrub deletes such
// records explicitly.
package jobstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faultfs"
)

// State is a job's lifecycle position.
type State string

// Job lifecycle: Queued -> Running -> Done | Failed. A crash can leave a
// job Running on disk; Recover re-queues it (its exploration checkpoint,
// if any, makes the re-run incremental).
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Job is one persisted analysis job.
type Job struct {
	// ID is the job's identity (also its filename); see ValidID.
	ID string `json:"id"`
	// State is the lifecycle position this record witnesses.
	State State `json:"state"`
	// Request is the submitted analysis request, opaque to the store.
	Request json.RawMessage `json:"request"`
	// Result is the terminal payload (the sealed Report JSON) for
	// StateDone.
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the failure text for StateFailed.
	Error string `json:"error,omitempty"`
	// Attempts counts executions started, including one in progress. A
	// job recovered from StateRunning re-enqueues with Attempts intact,
	// so a poison job (one that crashes its worker) is detectable.
	Attempts int `json:"attempts,omitempty"`
	// SubmittedAt orders recovery (RFC3339Nano).
	SubmittedAt time.Time `json:"submitted_at"`
	// FinishedAt stamps terminal records.
	FinishedAt time.Time `json:"finished_at,omitzero"`
}

var idRe = regexp.MustCompile(`^[a-zA-Z0-9_-]{1,64}$`)

// ValidID reports whether id is storable: short, filesystem-safe, no
// path structure.
func ValidID(id string) bool { return idRe.MatchString(id) }

// Store is a directory of job records. Safe for concurrent use.
type Store struct {
	dir string
	fs  faultfs.FS
	mu  sync.Mutex
}

// Open creates (if needed) and opens a job store rooted at dir. A nil fs
// means the real filesystem; tests inject faults through faultfs.Hooked.
func Open(dir string, fs faultfs.FS) (*Store, error) {
	if fs == nil {
		fs = faultfs.OS{}
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: opening %s: %w", dir, err)
	}
	return &Store{dir: dir, fs: fs}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(id string) (string, error) {
	if !ValidID(id) {
		return "", fmt.Errorf("jobstore: invalid job ID %q", id)
	}
	return filepath.Join(s.dir, id+".job"), nil
}

// CheckpointPath is where a job's exploration checkpoint journal lives —
// beside the record, deleted with it.
func (s *Store) CheckpointPath(id string) string {
	return filepath.Join(s.dir, id+".ckpt")
}

// Put persists j's current state (atomic replace of any prior record).
func (s *Store) Put(j *Job) error {
	p, err := s.path(j.ID)
	if err != nil {
		return err
	}
	data, err := json.Marshal(j)
	if err != nil {
		return fmt.Errorf("jobstore: encoding job %s: %w", j.ID, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := faultfs.WriteAtomic(s.fs, p, data, 0o644); err != nil {
		return fmt.Errorf("jobstore: writing job %s: %w", j.ID, err)
	}
	return nil
}

// Get loads one job record. A missing job returns os.ErrNotExist (wrapped).
func (s *Store) Get(id string) (*Job, error) {
	p, err := s.path(id)
	if err != nil {
		return nil, err
	}
	data, err := s.fs.ReadFile(p)
	if err != nil {
		return nil, fmt.Errorf("jobstore: job %s: %w", id, err)
	}
	j, err := decode(data)
	if err != nil {
		return nil, fmt.Errorf("jobstore: job %s: %w", id, err)
	}
	if j.ID != id {
		return nil, fmt.Errorf("jobstore: job file %s claims ID %q", id, j.ID)
	}
	return j, nil
}

func decode(data []byte) (*Job, error) {
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, err
	}
	if !ValidID(j.ID) {
		return nil, fmt.Errorf("invalid recorded ID %q", j.ID)
	}
	switch j.State {
	case StateQueued, StateRunning, StateDone, StateFailed:
	default:
		return nil, fmt.Errorf("unknown state %q", j.State)
	}
	return &j, nil
}

// Delete removes a job record and its checkpoint journal. Deleting a
// missing job is not an error.
func (s *Store) Delete(id string) error {
	p, err := s.path(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.fs.Remove(p); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("jobstore: deleting job %s: %w", id, err)
	}
	if err := s.fs.Remove(s.CheckpointPath(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("jobstore: deleting job %s checkpoint: %w", id, err)
	}
	return nil
}

// List loads every parseable record, sorted by submission time then ID.
// Damaged records (unreadable, torn rename leftovers aside, bad JSON) are
// returned by filename so the caller can alarm or Scrub; they never hide
// healthy jobs.
func (s *Store) List() (jobs []*Job, damaged []string, err error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("jobstore: listing %s: %w", s.dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".job") {
			continue
		}
		data, rerr := s.fs.ReadFile(filepath.Join(s.dir, name))
		if rerr != nil {
			damaged = append(damaged, name)
			continue
		}
		j, derr := decode(data)
		if derr != nil || j.ID+".job" != name {
			damaged = append(damaged, name)
			continue
		}
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, k int) bool {
		if !jobs[i].SubmittedAt.Equal(jobs[k].SubmittedAt) {
			return jobs[i].SubmittedAt.Before(jobs[k].SubmittedAt)
		}
		return jobs[i].ID < jobs[k].ID
	})
	sort.Strings(damaged)
	return jobs, damaged, nil
}

// Recover returns the jobs a restarting service must re-enqueue, in
// submission order: everything non-terminal. Jobs found mid-run
// (StateRunning — the previous process died under them) are flipped back
// to StateQueued and re-persisted, so a second crash before they run
// again changes nothing.
func (s *Store) Recover() ([]*Job, error) {
	jobs, _, err := s.List()
	if err != nil {
		return nil, err
	}
	var out []*Job
	for _, j := range jobs {
		if j.State.Terminal() {
			continue
		}
		if j.State == StateRunning {
			j.State = StateQueued
			if err := s.Put(j); err != nil {
				return nil, err
			}
		}
		out = append(out, j)
	}
	return out, nil
}

// Scrub deletes the named damaged records (as returned by List) and any
// leftover atomic-write temp files. It reclaims space; it never touches
// healthy records.
func (s *Store) Scrub(damaged []string) error {
	for _, name := range damaged {
		if strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
			return fmt.Errorf("jobstore: refusing to scrub %q", name)
		}
		if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
			if err := s.fs.Remove(filepath.Join(s.dir, e.Name())); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}
