package ulp430

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/gsim"
	"repro/internal/isa"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/periph"
	"repro/internal/soc"
)

// memWord stores one 16-bit memory word in the three-valued domain as two
// bit-planes: bit i is X when xmask bit i is set, else val bit i.
type memWord struct {
	val   uint16
	xmask uint16
}

var allXWord = memWord{0, 0xFFFF}

func wordFromLogic(w logic.Word) memWord {
	var m memWord
	for i, t := range w {
		switch t {
		case logic.H:
			m.val |= 1 << uint(i)
		case logic.X:
			m.xmask |= 1 << uint(i)
		}
	}
	return m
}

func (m memWord) toLogic(dst logic.Word) {
	for i := range dst {
		switch {
		case m.xmask>>uint(i)&1 == 1:
			dst[i] = logic.X
		case m.val>>uint(i)&1 == 1:
			dst[i] = logic.H
		default:
			dst[i] = logic.L
		}
	}
}

// InputMode selects how application inputs are materialized.
type InputMode int

const (
	// SymbolicInputs drives every input region word and P1IN read with X
	// — Algorithm 1's input-independent mode.
	SymbolicInputs InputMode = iota
	// ConcreteInputs fills input regions from a vector and P1IN from a
	// callback — the profiling ("input-based") mode.
	ConcreteInputs
)

// System couples the gate-level CPU to behavioral memory and exposes the
// simulation controls the analyses need: reset, stepping, halting,
// branch forcing, snapshot/restore (with an O(1)-per-cycle memory undo
// journal), and architectural state inspection.
type System struct {
	// Sim is the underlying gate-level simulator.
	Sim *gsim.Simulator

	img  *isa.Image
	mode InputMode
	// PortIn supplies P1IN words in concrete mode; nil reads as zero.
	PortIn func() uint16

	mem     []memWord // 32768 words
	journal []journalEntry

	// bus is the optional interrupt-capable peripheral subsystem
	// (EnableInterrupts); nil leaves the device address space unmapped.
	bus *periph.Bus

	// Cached port nets.
	mabNets, mdbInNets, mdbOutNets  []netlist.NetID
	menNet, mwrNet, rstNet, haltNet netlist.NetID
	jumpExecNet, jumpTakenNet       netlist.NetID
	brForceEnNet, brForceValNet     netlist.NetID
	irqNet, irqWinNet               netlist.NetID
	errState                        error
	lastDin                         memWord
	lastLine                        logic.Trit // value currently driven on the irq net
	irqForce                        uint8      // one-shot Line override for the next Step
	scratch                         logic.Word
}

// irqForce values: no override / force "not arrived" / force "arrived".
const (
	forceNone uint8 = iota
	forceLow
	forceHigh
)

type journalEntry struct {
	idx int32
	old memWord
}

// NewSystem builds (or reuses) a CPU netlist and loads the image. Pass a
// prebuilt netlist to share it across systems (it is read-only during
// simulation); pass nil to build a fresh one. The simulator uses the
// default (packed) gate engine; NewSystemEngine selects explicitly.
func NewSystem(n *netlist.Netlist, lib *cell.Library, img *isa.Image, mode InputMode, inputs []uint16) (*System, error) {
	return NewSystemEngine(gsim.EnginePacked, n, lib, img, mode, inputs)
}

// NewSystemEngine is NewSystem with an explicit gate-engine choice;
// gsim.EngineScalar selects the reference oracle used for differential
// testing.
func NewSystemEngine(engine gsim.Engine, n *netlist.Netlist, lib *cell.Library, img *isa.Image, mode InputMode, inputs []uint16) (*System, error) {
	if n == nil {
		var err error
		n, err = BuildCPU()
		if err != nil {
			return nil, err
		}
	}
	s := &System{
		img:     img,
		mode:    mode,
		mem:     make([]memWord, 1<<15),
		scratch: make(logic.Word, 16),
	}
	s.Sim = gsim.NewEngine(n, lib, s, engine)
	s.mabNets = n.Port("mab")
	s.mdbInNets = n.Port("mdb_in")
	s.mdbOutNets = n.Port("mdb_out")
	s.menNet = n.Port("men")[0]
	s.mwrNet = n.Port("mwr")[0]
	s.rstNet = n.Port("rst")[0]
	s.haltNet = n.Port("halt")[0]
	s.jumpExecNet = n.Port("jump_exec")[0]
	s.jumpTakenNet = n.Port("jump_taken")[0]
	s.brForceEnNet = n.Port("br_force_en")[0]
	s.brForceValNet = n.Port("br_force_val")[0]
	s.irqNet = n.Port("irq")[0]
	s.irqWinNet = n.Port("irq_win")[0]

	// All memory starts as X (the paper's initial condition), then the
	// binary is loaded and inputs are materialized per mode.
	for i := range s.mem {
		s.mem[i] = allXWord
	}
	for addr, w := range img.Words {
		if addr%2 != 0 {
			return nil, fmt.Errorf("ulp430: odd image address %#04x", addr)
		}
		s.mem[addr/2] = memWord{val: w}
	}
	k := 0
	for _, r := range img.Inputs {
		for i := 0; i < r.Words; i++ {
			idx := (r.Addr + uint16(2*i)) / 2
			switch mode {
			case SymbolicInputs:
				s.mem[idx] = allXWord
			case ConcreteInputs:
				var v uint16
				if k < len(inputs) {
					v = inputs[k]
				}
				s.mem[idx] = memWord{val: v}
			}
			k++
		}
	}
	return s, nil
}

// Image returns the loaded binary.
func (s *System) Image() *isa.Image { return s.img }

// Err returns the first bus-protocol error (write to X address, store to
// ROM, access to unmapped space), or nil.
func (s *System) Err() error { return s.errState }

func (s *System) setErr(format string, args ...interface{}) {
	if s.errState == nil {
		s.errState = fmt.Errorf(format, args...)
	}
}

// EnableInterrupts attaches the peripheral bus (timer, ADC, radio) and
// connects its aggregated request line to the CPU's irq input. Must be
// called before Reset. In SymbolicInputs mode the ADC becomes a windowed
// symbolic event source: while a conversion's arrival window is open the
// line reads X and the symbolic engine forks on it. The bus is returned
// for direct device access in tests and examples.
func (s *System) EnableInterrupts(cfg periph.Config) *periph.Bus {
	s.bus = periph.NewBus(cfg, s.mode == SymbolicInputs)
	return s.bus
}

// Bus returns the attached peripheral bus, or nil.
func (s *System) Bus() *periph.Bus { return s.bus }

// Reset holds reset for two cycles and releases it.
func (s *System) Reset() {
	s.Sim.SetNet(s.rstNet, logic.H)
	s.Sim.SetNet(s.brForceEnNet, logic.L)
	s.Sim.SetNet(s.brForceValNet, logic.L)
	s.Sim.SetNet(s.irqNet, logic.L)
	s.lastLine = logic.L
	s.irqForce = forceNone
	if s.bus != nil {
		s.bus.Reset()
	}
	s.Sim.Step()
	s.Sim.Step()
	s.Sim.SetNet(s.rstNet, logic.L)
}

// Step advances one clock cycle, first refreshing the IRQ line from the
// peripheral bus so the cycle observes the request state as of its start.
func (s *System) Step() {
	if s.bus != nil {
		s.driveIRQ()
	}
	s.Sim.Step()
}

// driveIRQ computes the interrupt line for the upcoming cycle and stages
// it onto the irq net. A pending one-shot force (ForceIRQ) resolves an
// open symbolic window into a definite arrival (delivering the event to
// the device) or a definite non-arrival for this cycle only.
func (s *System) driveIRQ() {
	line := s.bus.Line(s.Sim.Cycle())
	switch s.irqForce {
	case forceHigh:
		s.bus.Deliver()
		line = logic.H
	case forceLow:
		line = logic.L
	}
	s.irqForce = forceNone
	if line != s.lastLine {
		s.Sim.SetNet(s.irqNet, line)
		s.lastLine = line
	}
}

// IRQCondUnknown reports whether the current cycle is an interruptible
// instruction boundary (GIE set, no reset) whose request line is X — the
// asynchronous-arrival fork point. The symbolic engine resolves it like
// an unknown branch: rewind one cycle, ForceIRQ each way, re-step.
func (s *System) IRQCondUnknown() bool {
	return s.bus != nil && s.lastLine == logic.X && s.Sim.Val(s.irqWinNet) == logic.H
}

// ForceIRQ resolves the next Step's IRQ line: true delivers the open
// symbolic event (the "arrived" direction of a fork), false holds the
// line low for one cycle (arrival deferred past this boundary). The
// override is consumed by the next Step.
func (s *System) ForceIRQ(v bool) {
	if v {
		s.irqForce = forceHigh
	} else {
		s.irqForce = forceLow
	}
}

// Halted reports whether the program has written the halt register.
func (s *System) Halted() bool { return s.Sim.Val(s.haltNet) == logic.H }

// JumpCondUnknown reports whether the current cycle is the EXEC cycle of
// a conditional jump whose condition is X — the fork point of Algorithm 1
// ("if an X symbol propagates to the inputs of the program counter").
func (s *System) JumpCondUnknown() bool {
	return s.Sim.Val(s.jumpExecNet) == logic.H && s.Sim.Val(s.jumpTakenNet) == logic.X
}

// ForceBranch arranges for the *next* evaluation of the jump condition to
// be forced to v; used by the symbolic engine when re-simulating a forked
// EXEC cycle. ClearForce removes the override.
func (s *System) ForceBranch(v bool) {
	s.Sim.SetNet(s.brForceEnNet, logic.H)
	s.Sim.SetNet(s.brForceValNet, logic.FromBool(v))
}

// ClearForce removes the branch override.
func (s *System) ClearForce() {
	s.Sim.SetNet(s.brForceEnNet, logic.L)
	s.Sim.SetNet(s.brForceValNet, logic.L)
}

// PC returns the architectural program counter; ok is false if any bit is
// X.
func (s *System) PC() (uint16, bool) {
	v, ok := s.Sim.Port("pc").Uint()
	return uint16(v), ok
}

// Reg returns an architectural register value by number (1, 4..15), plus
// PC (0) and SR (2).
func (s *System) Reg(r int) (uint16, bool) {
	var name string
	switch r {
	case 0:
		name = "pc"
	case 1:
		name = "sp"
	case 2:
		name = "sr"
	default:
		name = fmt.Sprintf("r%d", r)
	}
	v, ok := s.Sim.Port(name).Uint()
	return uint16(v), ok
}

// MemWord returns the current contents of a memory word as a logic.Word.
func (s *System) MemWord(addr uint16) logic.Word {
	w := make(logic.Word, 16)
	s.mem[addr/2].toLogic(w)
	return w
}

// Tick implements gsim.Bus: it services the registered memory access of
// the cycle in flight. It is per-cycle hot and must not allocate: port
// reads go through PortUint and the reusable scratch word.
func (s *System) Tick(sim *gsim.Simulator) {
	if s.bus != nil {
		s.bus.Tick(sim.Cycle())
	}
	if sim.Val(s.menNet) != logic.H {
		return // no access: hold mdb_in to minimize bus toggling
	}
	wr := sim.Val(s.mwrNet)
	addr64, addrKnown := sim.PortUint("mab")
	addr := uint16(addr64)

	if wr == logic.H {
		if !addrKnown {
			s.setErr("ulp430: memory write with unknown (X) address at cycle %d — input-dependent store address; the analysis cannot bound this program", sim.Cycle())
			return
		}
		if soc.IsPeripheral(addr) {
			return // handled by gate-level peripheral logic
		}
		if s.bus != nil && s.bus.Claims(addr) {
			for i, id := range s.mdbOutNets {
				s.scratch[i] = sim.Val(id)
			}
			data := wordFromLogic(s.scratch)
			if data.xmask != 0 {
				s.setErr("ulp430: store of unknown (X) data to device register %#04x at cycle %d — device configuration must be input-independent", addr, sim.Cycle())
				return
			}
			if err := s.bus.Write(addr, data.val, sim.Cycle()); err != nil {
				s.setErr("ulp430: %v (cycle %d)", err, sim.Cycle())
			}
			return
		}
		if soc.InDeviceSpace(addr) {
			s.setErr("ulp430: store to device register %#04x with no peripheral bus attached at cycle %d", addr, sim.Cycle())
			return
		}
		if !soc.InRAM(addr) {
			s.setErr("ulp430: store to non-RAM address %#04x at cycle %d", addr, sim.Cycle())
			return
		}
		for i, id := range s.mdbOutNets {
			s.scratch[i] = sim.Val(id)
		}
		data := wordFromLogic(s.scratch)
		idx := int32(addr / 2)
		s.journal = append(s.journal, journalEntry{idx: idx, old: s.mem[idx]})
		s.mem[idx] = data
		return
	}
	if wr == logic.X {
		s.setErr("ulp430: memory access with unknown write strobe at cycle %d", sim.Cycle())
		return
	}

	// Read.
	var out memWord
	switch {
	case !addrKnown:
		out = allXWord
	case s.bus != nil && addr == soc.IRQVecFetch:
		// Interrupt-entry vector indirection: the bus picks the
		// highest-priority pending device, acknowledges it, and the read
		// returns that device's vector-table entry from ROM.
		vec, ok := s.bus.TakeVector()
		if !ok {
			s.setErr("ulp430: spurious interrupt vector fetch at cycle %d", sim.Cycle())
			out = allXWord
		} else {
			out = s.mem[vec/2]
		}
	case addr == soc.P1IN:
		if s.mode == SymbolicInputs {
			out = allXWord
		} else if s.PortIn != nil {
			out = memWord{val: s.PortIn()}
		} else {
			out = memWord{val: 0}
		}
	case soc.IsPeripheral(addr):
		out = memWord{val: 0} // internal logic supplies the data
	case s.bus != nil && s.bus.Claims(addr):
		v, xm, err := s.bus.Read(addr)
		if err != nil {
			s.setErr("ulp430: %v (cycle %d)", err, sim.Cycle())
			out = allXWord
		} else {
			out = memWord{val: v, xmask: xm}
		}
	case soc.InDeviceSpace(addr):
		s.setErr("ulp430: load from device register %#04x with no peripheral bus attached at cycle %d", addr, sim.Cycle())
		out = allXWord
	case soc.InRAM(addr) || soc.InROM(addr):
		out = s.mem[addr/2]
	default:
		s.setErr("ulp430: load from unmapped address %#04x at cycle %d", addr, sim.Cycle())
		out = allXWord
	}
	if out != s.lastDin {
		s.lastDin = out
		out.toLogic(s.scratch)
		for i, id := range s.mdbInNets {
			sim.SetNet(id, s.scratch[i])
		}
	}
}

// SysSnapshot captures the full system state: simulator nets plus a
// memory journal position (memory restoration is O(writes since
// snapshot), not O(memory size)). It has two forms: SnapshotInto
// produces a full plane copy, CaptureFork a copy-on-write word delta
// (isDelta selects which of sim/delta is live).
type SysSnapshot struct {
	sim      *gsim.Snapshot
	delta    *gsim.DeltaSnapshot
	isDelta  bool
	journal  int
	lastDin  memWord
	lastLine logic.Trit
	bus      periph.BusState
	err      error

	// pooled marks residence in a fork-snapshot free pool; any use of a
	// pooled snapshot is a use-after-free and panics.
	pooled bool
}

// MarkPooled flags the snapshot as returned to a free pool. Restoring
// or capturing from it before MarkTaken panics — turning silent
// recycled-buffer aliasing bugs into immediate failures.
func (sn *SysSnapshot) MarkPooled() { sn.pooled = true }

// MarkTaken flags the snapshot as checked out of its pool and usable.
func (sn *SysSnapshot) MarkTaken() { sn.pooled = false }

// Snapshot captures the current state. Snapshots form a LIFO discipline
// with Restore (depth-first exploration): restoring an older snapshot
// invalidates newer ones.
func (s *System) Snapshot() *SysSnapshot {
	sn := &SysSnapshot{}
	s.SnapshotInto(sn)
	return sn
}

// SnapshotInto captures the current state into sn, reusing its buffers.
func (s *System) SnapshotInto(sn *SysSnapshot) {
	if sn.sim == nil {
		sn.sim = &gsim.Snapshot{}
	}
	s.Sim.SnapshotInto(sn.sim)
	sn.isDelta = false
	s.captureMeta(sn)
}

// CaptureFork captures the current state as a fork snapshot, preferring
// a copy-on-write word delta (packed engine) over full plane copies —
// the O(changed words) form deep exploration trees fork with. On the
// scalar engine it degrades to a full snapshot.
func (s *System) CaptureFork(sn *SysSnapshot) {
	sn.pooled = false
	if sn.delta == nil {
		sn.delta = &gsim.DeltaSnapshot{}
	}
	if s.Sim.CaptureDelta(sn.delta) {
		sn.isDelta = true
	} else {
		if sn.sim == nil {
			sn.sim = &gsim.Snapshot{}
		}
		s.Sim.SnapshotInto(sn.sim)
		sn.isDelta = false
	}
	s.captureMeta(sn)
}

func (s *System) captureMeta(sn *SysSnapshot) {
	sn.journal = len(s.journal)
	sn.lastDin = s.lastDin
	sn.lastLine = s.lastLine
	if s.bus != nil {
		sn.bus = s.bus.State()
	}
	sn.err = s.errState
}

// Clone returns an independent deep copy of a snapshot (needed when a
// rolling snapshot buffer must be retained across further reuse).
func (sn *SysSnapshot) Clone() *SysSnapshot {
	c := &SysSnapshot{}
	sn.CloneInto(c)
	return c
}

// CloneInto deep-copies sn into dst, reusing dst's buffers — the
// allocation-free form backing the symbolic engine's fork-snapshot
// pool.
func (sn *SysSnapshot) CloneInto(dst *SysSnapshot) {
	dst.isDelta = sn.isDelta
	dst.pooled = false
	if sn.isDelta {
		if dst.delta == nil {
			dst.delta = &gsim.DeltaSnapshot{}
		}
		sn.delta.CloneInto(dst.delta)
	} else {
		if dst.sim == nil {
			dst.sim = &gsim.Snapshot{}
		}
		sn.sim.CloneInto(dst.sim)
	}
	dst.journal = sn.journal
	dst.lastDin = sn.lastDin
	dst.lastLine = sn.lastLine
	dst.bus = sn.bus
	dst.err = sn.err
}

// Restore rewinds to a snapshot taken earlier on this path.
func (s *System) Restore(sn *SysSnapshot) {
	if sn.pooled {
		panic("ulp430: restore from a pooled fork snapshot (use after free)")
	}
	if sn.journal > len(s.journal) {
		panic("ulp430: restoring a snapshot newer than current state")
	}
	for i := len(s.journal) - 1; i >= sn.journal; i-- {
		e := s.journal[i]
		s.mem[e.idx] = e.old
	}
	s.journal = s.journal[:sn.journal]
	if sn.isDelta {
		s.Sim.RestoreDelta(sn.delta)
	} else {
		s.Sim.Restore(sn.sim)
	}
	s.lastDin = sn.lastDin
	s.lastLine = sn.lastLine
	s.irqForce = forceNone
	if s.bus != nil {
		s.bus.SetState(sn.bus)
	}
	s.errState = sn.err
}

// PortableState is a self-contained capture of full system state — unlike
// SysSnapshot, whose memory component is a position in the owning system's
// undo journal, a PortableState carries the memory image itself and can be
// installed on a *different* System built on the same netlist, library,
// engine, image, and peripheral configuration. It is the unit of work
// transfer for parallel symbolic exploration: a pending fork captured on
// one worker's system resumes on another's.
type PortableState struct {
	sim      *gsim.Snapshot
	mem      []memWord
	lastDin  memWord
	lastLine logic.Trit
	bus      periph.BusState
	err      error
}

// CapturePortableAt materializes into dst the full system state as of sn,
// a snapshot taken earlier on this system's current path (its journal
// position must still be covered by the live journal — the usual LIFO
// discipline). The memory image is reconstructed by undoing the journal
// suffix onto a copy of current memory, so the cost is O(memory +
// writes-since-snapshot), independent of how the snapshot was taken.
func (s *System) CapturePortableAt(sn *SysSnapshot, dst *PortableState) {
	if sn.pooled {
		panic("ulp430: portable capture from a pooled fork snapshot (use after free)")
	}
	if sn.journal > len(s.journal) {
		panic("ulp430: capturing a snapshot newer than current state")
	}
	if dst.sim == nil {
		dst.sim = &gsim.Snapshot{}
	}
	if sn.isDelta {
		sn.delta.MaterializeInto(dst.sim)
	} else {
		sn.sim.CloneInto(dst.sim)
	}
	if dst.mem == nil {
		dst.mem = make([]memWord, len(s.mem))
	}
	copy(dst.mem, s.mem)
	for i := len(s.journal) - 1; i >= sn.journal; i-- {
		e := s.journal[i]
		dst.mem[e.idx] = e.old
	}
	dst.lastDin = sn.lastDin
	dst.lastLine = sn.lastLine
	dst.bus = sn.bus
	dst.err = sn.err
}

// RestorePortable installs a portable state captured on a compatible
// system (same netlist/engine/image/peripheral configuration). The memory
// undo journal restarts empty: a portable restore is a new exploration
// root, not a rewind.
func (s *System) RestorePortable(st *PortableState) {
	copy(s.mem, st.mem)
	s.journal = s.journal[:0]
	s.Sim.Restore(st.sim)
	s.lastDin = st.lastDin
	s.lastLine = st.lastLine
	s.irqForce = forceNone
	if s.bus != nil {
		s.bus.SetState(st.bus)
	}
	s.errState = st.err
}

// MemHash mixes the RAM contents (the part of memory that changes) into
// the state hash used for execution-tree merging.
func (s *System) MemHash() uint64 {
	h := uint64(1469598103934665603)
	lo := int32(soc.RAMStart / 2)
	hi := int32(soc.RAMEnd / 2)
	for i := lo; i < hi; i++ {
		w := s.mem[i]
		h ^= uint64(w.val) | uint64(w.xmask)<<16
		h *= 1099511628211
	}
	return h
}

// StateHash combines flip-flop state and RAM contents — Algorithm 1's
// "the processor state is the same as it was when the branch was
// previously encountered".
func (s *System) StateHash() uint64 {
	h := s.Sim.StateHash()
	h ^= s.MemHash()
	h *= 1099511628211
	if s.bus != nil {
		h ^= s.bus.Hash(s.Sim.Cycle())
		h *= 1099511628211
	}
	return h
}

// StateKey returns the exploration's 128-bit merge key: lo is StateHash
// and hi an independently mixed second hash over the same state walk
// (different basis and multiplier per component, a splitmix-finalized
// bus term). Merging two genuinely different states requires both words
// to collide — see DESIGN.md "Merge keys".
func (s *System) StateKey() (lo, hi uint64) {
	lo = s.Sim.StateHash()
	hi = s.Sim.StateHash2()
	m1, m2 := s.memHashes()
	lo ^= m1
	lo *= 1099511628211
	hi ^= m2
	hi *= 0x106689D45497DE35
	if s.bus != nil {
		bh := s.bus.Hash(s.Sim.Cycle())
		lo ^= bh
		lo *= 1099511628211
		hi ^= mix64(bh ^ 0xD6E8FEB86659FD93)
		hi *= 0x106689D45497DE35
	}
	return lo, hi
}

// memHashes computes both RAM hash accumulators in a single pass.
func (s *System) memHashes() (h1, h2 uint64) {
	h1 = 1469598103934665603
	h2 = 0x9E3779B97F4A7C15
	lo := int32(soc.RAMStart / 2)
	hi := int32(soc.RAMEnd / 2)
	for i := lo; i < hi; i++ {
		w := s.mem[i]
		v := uint64(w.val) | uint64(w.xmask)<<16
		h1 ^= v
		h1 *= 1099511628211
		h2 ^= v
		h2 *= 0x106689D45497DE35
	}
	return h1, h2
}

// mix64 is the splitmix64 finalizer, decorrelating the bus hash's
// second use from its first.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// RunToHalt drives the system (after Reset) until the halt register is
// set, an error occurs, or maxCycles elapse. It requires fully concrete
// execution (it refuses to run past an unknown branch condition).
func (s *System) RunToHalt(maxCycles int) error {
	for i := 0; i < maxCycles; i++ {
		if s.Halted() {
			return nil
		}
		if err := s.Err(); err != nil {
			return err
		}
		if s.JumpCondUnknown() {
			return fmt.Errorf("ulp430: unknown branch condition at cycle %d (symbolic execution required)", s.Sim.Cycle())
		}
		s.Step()
	}
	if s.Halted() {
		return nil
	}
	return fmt.Errorf("ulp430: did not halt within %d cycles", maxCycles)
}
