package vcd

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/logic"
)

func TestWriteParseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "dut", "10ns", []string{"a", "b", "c"})
	l, h, x := logic.L, logic.H, logic.X
	rows := [][]logic.Trit{
		{l, h, x},
		{l, h, x}, // no change: no emission, but parse must still see values
		{h, h, l},
		{h, l, l},
	}
	for i, row := range rows {
		w.Tick(uint64(i), row)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Names) != 3 || d.Names[0] != "a" {
		t.Fatalf("names %v", d.Names)
	}
	// Times recorded only when something changed: t=0 and t=2,3.
	if len(d.Times) != 3 || d.Times[0] != 0 || d.Times[1] != 2 || d.Times[2] != 3 {
		t.Fatalf("times %v", d.Times)
	}
	if !wordEq(d.Values[0], rows[0]) || !wordEq(d.Values[1], rows[2]) || !wordEq(d.Values[2], rows[3]) {
		t.Fatalf("values %v", d.Values)
	}
	if d.Signal("b") != 1 || d.Signal("nope") != -1 {
		t.Fatal("Signal lookup wrong")
	}
}

func wordEq(a, b []logic.Trit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestHeaderFormat(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "top", "125ns", []string{"sig"})
	w.Tick(0, []logic.Trit{logic.H})
	w.Close()
	text := buf.String()
	for _, want := range []string{"$timescale 125ns $end", "$scope module top $end", "$var wire 1 ! sig $end", "$enddefinitions"} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
}

func TestIDCodeUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		id := idCode(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
		for j := 0; j < len(id); j++ {
			if id[j] < 33 || id[j] > 126 {
				t.Fatalf("unprintable id byte %d", id[j])
			}
		}
	}
}

func TestManySignals(t *testing.T) {
	names := make([]string, 300)
	for i := range names {
		names[i] = strings.Repeat("s", 1) + string(rune('a'+i%26)) + itoa(i)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, "m", "1ns", names)
	row := make([]logic.Trit, 300)
	for i := range row {
		row[i] = logic.Trit(i % 3)
	}
	w.Tick(5, row)
	// flip everything known
	row2 := make([]logic.Trit, 300)
	for i := range row {
		switch row[i] {
		case logic.L:
			row2[i] = logic.H
		case logic.H:
			row2[i] = logic.L
		default:
			row2[i] = logic.X
		}
	}
	w.Tick(6, row2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Times) != 2 {
		t.Fatalf("times %v", d.Times)
	}
	if !wordEq(d.Values[0], row) || !wordEq(d.Values[1], row2) {
		t.Fatal("values corrupted with many signals")
	}
}

func itoa(i int) string {
	return string(rune('0'+i/100)) + string(rune('0'+(i/10)%10)) + string(rune('0'+i%10))
}

func TestTickLengthMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "m", "1ns", []string{"a", "b"})
	w.Tick(0, []logic.Trit{logic.H})
	if err := w.Close(); err == nil {
		t.Fatal("expected error on width mismatch")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"$var wire 1 ! a $end\n$enddefinitions $end\n#notanum\n",
		"$var wire 1 ! a $end\n$enddefinitions $end\n#0\n1?\n",
		"$var wire $end\n$enddefinitions $end\n",
	}
	for i, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
