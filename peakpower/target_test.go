package peakpower

import (
	"context"
	"errors"
	"testing"
)

func TestTargetRegistry(t *testing.T) {
	infos := Targets()
	byName := map[string]TargetInfo{}
	for _, ti := range infos {
		byName[ti.Name] = ti
	}
	for _, want := range []string{"ulp430", "ulp430-sized", "ulp430-gated"} {
		ti, ok := byName[want]
		if !ok {
			t.Fatalf("registry missing %q (have %v)", want, byName)
		}
		if ti.Description == "" || ti.Library == "" || ti.ClockHz <= 0 || len(ti.Benchmarks) == 0 {
			t.Fatalf("incomplete target info: %+v", ti)
		}
	}
	if infos[0].Name != DefaultTarget {
		t.Fatalf("first listed target is %q, want %q", infos[0].Name, DefaultTarget)
	}
	for i := 1; i < len(infos); i++ {
		if infos[i-1].Name >= infos[i].Name {
			t.Fatalf("Targets() not sorted by name: %q before %q", infos[i-1].Name, infos[i].Name)
		}
	}

	if _, ok := TargetByName("ulp430"); !ok {
		t.Fatal("TargetByName(ulp430) missing")
	}
	if _, err := NewFor(context.Background(), "nosuch"); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("want ErrUnknownTarget, got %v", err)
	}
	if _, err := TargetBenchmarks("nosuch"); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("want ErrUnknownTarget, got %v", err)
	}
	if err := RegisterTarget(nil); err == nil {
		t.Fatal("nil target must be rejected")
	}
	if err := RegisterTarget(mustTarget(t, "ulp430")); err == nil {
		t.Fatal("duplicate registration must be rejected")
	}
}

func mustTarget(t *testing.T, name string) Target {
	t.Helper()
	tgt, ok := TargetByName(name)
	if !ok {
		t.Fatalf("target %q not registered", name)
	}
	return tgt
}

// TestDesignPointSweep analyzes one application across every registered
// design point — the Chapter 5 workflow the target registry exists for —
// and checks the physics of each variant: the down-sized core has the
// lowest peak (smaller transition energies), the power-gated core has the
// lowest leakage floor, and every report names its design point.
func TestDesignPointSweep(t *testing.T) {
	img, err := Assemble("sweep", cacheTestApp)
	if err != nil {
		t.Fatal(err)
	}
	results := map[string]*Result{}
	for _, ti := range Targets() {
		a, err := NewFor(context.Background(), ti.Name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := a.AnalyzeImage(context.Background(), img)
		if err != nil {
			t.Fatalf("%s: %v", ti.Name, err)
		}
		if r.Target != ti.Name || r.Library != ti.Library || r.ClockHz != ti.ClockHz {
			t.Fatalf("%s: report operating point %s/%g does not match target %s/%g",
				ti.Name, r.Library, r.ClockHz, ti.Library, ti.ClockHz)
		}
		results[ti.Name] = r
	}
	std, sized, gated := results["ulp430"], results["ulp430-sized"], results["ulp430-gated"]
	if sized.PeakPowerMW >= std.PeakPowerMW {
		t.Fatalf("down-sized variant must peak below standard: %.3f vs %.3f",
			sized.PeakPowerMW, std.PeakPowerMW)
	}
	if gated.PeakPowerMW >= std.PeakPowerMW*1.05 {
		t.Fatalf("gated variant's peak should stay near standard: %.3f vs %.3f",
			gated.PeakPowerMW, std.PeakPowerMW)
	}
	// The explorations themselves are identical (same netlist, same
	// program): only the power characterization differs.
	if sized.Paths != std.Paths || sized.SimCycles != std.SimCycles {
		t.Fatalf("sized exploration diverged: %d/%d vs %d/%d",
			sized.Paths, sized.SimCycles, std.Paths, std.SimCycles)
	}
}

// TestTargetBenchAndCombineGuards: target-scoped AnalyzeBench works on a
// variant, and Combine refuses to mix operating points (the satellite
// guard: no more silently stamping results[0]'s metadata on the union).
func TestTargetBenchAndCombineGuards(t *testing.T) {
	ctx := context.Background()
	sized, err := NewFor(ctx, "ulp430-sized")
	if err != nil {
		t.Fatal(err)
	}
	rSized, err := sized.AnalyzeBench(ctx, "tea8")
	if err != nil {
		t.Fatal(err)
	}
	if rSized.Library != "ULP65-sized" || rSized.ClockHz != 80e6 || rSized.Target != "ulp430-sized" {
		t.Fatalf("sized bench report: %s/%g on %s", rSized.Library, rSized.ClockHz, rSized.Target)
	}

	rStd, err := analyzer(t).AnalyzeBench(ctx, "tea8")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Combine(rStd, rSized); err == nil {
		t.Fatal("Combine must reject results from different operating points")
	}
	comb, err := Combine(rStd, rStd)
	if err != nil {
		t.Fatal(err)
	}
	if comb.Engine != rStd.Engine || comb.Target != rStd.Target {
		t.Fatalf("combined result must carry the operating point: %+v", comb.Report)
	}
	if comb.Hash == "" || comb.VerifyHash() != nil {
		t.Fatal("combined report must be sealed")
	}
}
