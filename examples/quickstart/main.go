// Quickstart: analyze one application and print its guaranteed peak power
// and energy requirements.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"

	"repro/peakpower"
)

// A small sensor kernel: read two input words, combine them, store the
// result. The .input directive marks application inputs — symbolic
// analysis propagates X for them, so the reported bounds hold for every
// possible input.
const app = `
.org 0x0200
sensor: .input 2
result: .space 1

.org 0xf000
.entry main
main:
    mov #0x0080, &0x0120   ; stop the watchdog
    mov #0x0a00, sp
    mov &sensor, r4
    add &sensor+2, r4
    cmp #100, r4
    jl small
    rra r4                 ; large readings are halved
small:
    mov r4, &result
    mov #1, &0x0126        ; halt
spin:
    jmp spin
`

func main() {
	analyzer, err := peakpower.New()
	if err != nil {
		log.Fatal(err)
	}
	res, err := analyzer.Analyze(context.Background(), "quickstart", app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("peak power requirement:  %.3f mW (all inputs, all paths)\n", res.PeakPowerMW)
	fmt.Printf("peak energy requirement: %.3e J (%.0f cycles worst case)\n", res.PeakEnergyJ, res.BoundingCycles)
	fmt.Printf("explored %d execution paths in %d simulated cycles\n", res.Paths, res.SimCycles)
	best := res.Attribution()[0]
	fmt.Printf("hottest cycle: %.3f mW during %s in state %s\n",
		best.PowerMW, best.Instr, best.State)

	// Every result embeds a versioned, serializable Report: persist it,
	// diff it across runs, or serve it (see cmd/peakpowerd). The content
	// hash makes reports comparable by identity. Results are read-only, so
	// trim a copy for the short demo output.
	rep := res.Report
	rep.PeakTrace = nil
	rep.Seal()
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserialized report:\n%s\n", data)
}
