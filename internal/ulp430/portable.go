package ulp430

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/gsim"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// Binary codec for PortableState, used by the exploration checkpoint
// journal: a published fork survives a process kill by writing its
// portable state to disk, and a restarted process re-enqueues it via
// DecodePortable + RestorePortable. The encoding is deterministic
// (fixed field order, little-endian), so re-encoding a decoded state is
// byte-identical — the property the resume tests lean on.
//
// The codec carries no netlist or image data: like RestorePortable, a
// decoded state is only meaningful on a System built from the same
// netlist, engine, image, and peripheral configuration, which the
// journal's owning layer guarantees by keying checkpoint files to the
// analysis cache key.

// portableMagic identifies (and versions) the encoding. Bump on any
// layout change: stale checkpoint files must fail decode, not
// misinterpret.
var portableMagic = [4]byte{'u', 'p', 's', '1'}

// EncodePortable serializes st.
func EncodePortable(st *PortableState) []byte {
	var b bytes.Buffer
	b.Write(portableMagic[:])
	putTrits(&b, st.sim.Vals)
	putTrits(&b, st.sim.Prev)
	putU64s(&b, st.sim.PlaneV)
	putU64s(&b, st.sim.PlaneK)
	putU64s(&b, st.sim.PrevPlaneV)
	putU64s(&b, st.sim.PrevPlaneK)
	putBool(&b, st.sim.Settled)
	staged := st.sim.StagedRecs(nil)
	putU32(&b, uint32(len(staged)))
	for _, r := range staged {
		putU32(&b, uint32(r.ID))
		b.WriteByte(byte(r.V))
	}
	putU64(&b, st.sim.Cycle)
	putU32(&b, uint32(len(st.mem)))
	for _, w := range st.mem {
		putU16(&b, w.val)
		putU16(&b, w.xmask)
	}
	putU16(&b, st.lastDin.val)
	putU16(&b, st.lastDin.xmask)
	b.WriteByte(byte(st.lastLine))
	// BusState is a flat fixed-size struct; binary.Write over it cannot
	// fail on a bytes.Buffer.
	_ = binary.Write(&b, binary.LittleEndian, st.bus)
	if st.err != nil {
		putString(&b, st.err.Error())
	} else {
		putU32(&b, 0)
	}
	return b.Bytes()
}

// DecodePortable deserializes a state produced by EncodePortable.
func DecodePortable(data []byte) (*PortableState, error) {
	r := &byteReader{buf: data}
	var magic [4]byte
	r.read(magic[:])
	if r.err == nil && magic != portableMagic {
		return nil, fmt.Errorf("ulp430: portable state: bad magic %q", magic[:])
	}
	st := &PortableState{sim: &gsim.Snapshot{}}
	st.sim.Vals = getTrits(r)
	st.sim.Prev = getTrits(r)
	st.sim.PlaneV = getU64s(r)
	st.sim.PlaneK = getU64s(r)
	st.sim.PrevPlaneV = getU64s(r)
	st.sim.PrevPlaneK = getU64s(r)
	st.sim.Settled = getBool(r)
	n := int(getU32(r))
	if r.err == nil && n > r.remaining()/5 {
		return nil, errors.New("ulp430: portable state: truncated staged inputs")
	}
	staged := make([]gsim.StagedInputRec, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		id := getU32(r)
		v := getByte(r)
		staged = append(staged, gsim.StagedInputRec{ID: netlist.NetID(id), V: logic.Trit(v)})
	}
	st.sim.SetStagedRecs(staged)
	st.sim.Cycle = getU64(r)
	m := int(getU32(r))
	if r.err == nil && m > r.remaining()/4 {
		return nil, errors.New("ulp430: portable state: truncated memory image")
	}
	st.mem = make([]memWord, m)
	for i := 0; i < m && r.err == nil; i++ {
		st.mem[i].val = getU16(r)
		st.mem[i].xmask = getU16(r)
	}
	st.lastDin.val = getU16(r)
	st.lastDin.xmask = getU16(r)
	st.lastLine = logic.Trit(getByte(r))
	if r.err == nil {
		if err := binary.Read(bytes.NewReader(r.buf[r.off:]), binary.LittleEndian, &st.bus); err != nil {
			r.err = err
		} else {
			r.off += binary.Size(st.bus)
		}
	}
	if s := getString(r); s != "" {
		st.err = errors.New(s)
	}
	if r.err != nil {
		return nil, fmt.Errorf("ulp430: portable state: %w", r.err)
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("ulp430: portable state: %d trailing bytes", len(r.buf)-r.off)
	}
	return st, nil
}

func putU16(b *bytes.Buffer, v uint16) {
	var t [2]byte
	binary.LittleEndian.PutUint16(t[:], v)
	b.Write(t[:])
}

func putU32(b *bytes.Buffer, v uint32) {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], v)
	b.Write(t[:])
}

func putU64(b *bytes.Buffer, v uint64) {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], v)
	b.Write(t[:])
}

func putBool(b *bytes.Buffer, v bool) {
	if v {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
}

func putTrits(b *bytes.Buffer, ts []logic.Trit) {
	putU32(b, uint32(len(ts)))
	for _, t := range ts {
		b.WriteByte(byte(t))
	}
}

func putU64s(b *bytes.Buffer, vs []uint64) {
	putU32(b, uint32(len(vs)))
	for _, v := range vs {
		putU64(b, v)
	}
}

func putString(b *bytes.Buffer, s string) {
	putU32(b, uint32(len(s)))
	b.WriteString(s)
}

// byteReader is a bounds-checked cursor: the first short read latches an
// error and every later get returns zero, so decode paths need one error
// check at the end rather than one per field.
type byteReader struct {
	buf []byte
	off int
	err error
}

func (r *byteReader) remaining() int { return len(r.buf) - r.off }

func (r *byteReader) read(dst []byte) {
	if r.err != nil {
		return
	}
	if r.remaining() < len(dst) {
		r.err = errors.New("short read")
		return
	}
	copy(dst, r.buf[r.off:])
	r.off += len(dst)
}

func getByte(r *byteReader) byte {
	var t [1]byte
	r.read(t[:])
	return t[0]
}

func getBool(r *byteReader) bool { return getByte(r) != 0 }

func getU16(r *byteReader) uint16 {
	var t [2]byte
	r.read(t[:])
	return binary.LittleEndian.Uint16(t[:])
}

func getU32(r *byteReader) uint32 {
	var t [4]byte
	r.read(t[:])
	return binary.LittleEndian.Uint32(t[:])
}

func getU64(r *byteReader) uint64 {
	var t [8]byte
	r.read(t[:])
	return binary.LittleEndian.Uint64(t[:])
}

func getTrits(r *byteReader) []logic.Trit {
	n := int(getU32(r))
	if r.err != nil || n == 0 {
		return nil
	}
	if n > r.remaining() {
		r.err = errors.New("short read")
		return nil
	}
	ts := make([]logic.Trit, n)
	for i := range ts {
		ts[i] = logic.Trit(r.buf[r.off+i])
	}
	r.off += n
	return ts
}

func getU64s(r *byteReader) []uint64 {
	n := int(getU32(r))
	if r.err != nil || n == 0 {
		return nil
	}
	if n > r.remaining()/8 {
		r.err = errors.New("short read")
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = binary.LittleEndian.Uint64(r.buf[r.off+8*i:])
	}
	r.off += 8 * n
	return vs
}

func getString(r *byteReader) string {
	n := int(getU32(r))
	if r.err != nil || n == 0 {
		return ""
	}
	if n > r.remaining() {
		r.err = errors.New("short read")
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}
