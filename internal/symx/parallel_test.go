package symx

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cell"
	"repro/internal/isa"
	"repro/internal/periph"
	"repro/internal/ulp430"
)

// workerCountSink is countSink extended with the WorkerSink task
// protocol: positions stay absolute via the task base offset. It records
// no reduction candidates — the parallel tree tests compare trees, whose
// segment payloads carry the observations.
type workerCountSink struct {
	pcs  []uint16
	base int
}

func (c *workerCountSink) OnCycle(sys *ulp430.System) {
	pc, _ := sys.PC()
	c.pcs = append(c.pcs, pc)
}
func (c *workerCountSink) Pos() int       { return c.base + len(c.pcs) }
func (c *workerCountSink) Rewind(pos int) { c.pcs = c.pcs[:pos-c.base] }
func (c *workerCountSink) Segment(from int) interface{} {
	return append([]uint16(nil), c.pcs[from-c.base:]...)
}
func (c *workerCountSink) BeginTask(task, basePos int, seed interface{}) {
	c.base = basePos
	c.pcs = c.pcs[:0]
}
func (c *workerCountSink) EndTask()                      {}
func (c *workerCountSink) NewSegment()                   {}
func (c *workerCountSink) SpawnSeed(pos int) interface{} { return nil }

// exploreParallelTree runs ExploreParallel on src with the given worker
// count (irq non-nil attaches the peripheral bus).
func exploreParallelTree(t *testing.T, src string, irq *periph.Config, workers int, opts Options) (*Tree, error) {
	t.Helper()
	img, err := isa.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	res, err := ExploreParallel(ParallelOptions{
		Options: opts,
		Workers: workers,
		NewWorker: func(worker int) (*ulp430.System, WorkerSink, error) {
			sys, err := ulp430.NewSystem(sharedCPU(t), cell.ULP65(), img, ulp430.SymbolicInputs, nil)
			if err != nil {
				return nil, nil, err
			}
			if irq != nil {
				sys.EnableInterrupts(*irq)
			}
			return sys, &workerCountSink{}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	return res.Tree, nil
}

// requireTreesEqual asserts full structural equality: IDs, kinds, lengths,
// fork metadata, child/merge wiring, segment payloads, and the tree-level
// statistics.
func requireTreesEqual(t *testing.T, want, got *Tree, label string) {
	t.Helper()
	if len(want.Nodes) != len(got.Nodes) || want.Paths != got.Paths || want.Cycles != got.Cycles {
		t.Fatalf("%s: tree stats differ: nodes %d/%d paths %d/%d cycles %d/%d", label,
			len(want.Nodes), len(got.Nodes), want.Paths, got.Paths, want.Cycles, got.Cycles)
	}
	id := func(n *Node) int {
		if n == nil {
			return -1
		}
		return n.ID
	}
	for i := range want.Nodes {
		w, g := want.Nodes[i], got.Nodes[i]
		if w.ID != g.ID || w.Len != g.Len || w.Kind != g.Kind || w.IRQ != g.IRQ || w.BranchPC != g.BranchPC {
			t.Fatalf("%s: node %d differs: {id %d len %d kind %v irq %v pc %#x} vs {id %d len %d kind %v irq %v pc %#x}",
				label, i, w.ID, w.Len, w.Kind, w.IRQ, w.BranchPC, g.ID, g.Len, g.Kind, g.IRQ, g.BranchPC)
		}
		if id(w.Taken) != id(g.Taken) || id(w.NotTaken) != id(g.NotTaken) || id(w.MergeTo) != id(g.MergeTo) {
			t.Fatalf("%s: node %d wiring differs: taken %d/%d nottaken %d/%d merge %d/%d",
				label, i, id(w.Taken), id(g.Taken), id(w.NotTaken), id(g.NotTaken), id(w.MergeTo), id(g.MergeTo))
		}
		if !reflect.DeepEqual(w.Data, g.Data) {
			t.Fatalf("%s: node %d payload differs", label, i)
		}
	}
	if id(want.Root) != id(got.Root) {
		t.Fatalf("%s: root differs: %d vs %d", label, id(want.Root), id(got.Root))
	}
}

var parallelTreePrograms = []struct {
	name string
	src  string
}{
	{"straightLine", `
.org 0xf000
.entry main
main:
    mov #3, r4
    add #4, r4
` + haltSeq},
	{"singleBranch", `
.org 0x0200
v: .input 1
.org 0xf000
.entry main
main:
    mov &v, r4
    cmp #5, r4
    jeq yes
    mov #111, r5
    jmp end
yes:
    mov #222, r5
end:
` + haltSeq},
	{"waitLoopMerge", `
.org 0xf000
.entry main
main:
    mov #0x0080, &0x0120
wait:
    mov &0x0122, r4
    cmp #100, r4
    jl wait
    mov #1, r5
` + haltSeq},
	{"countedLoop", `
.org 0x0200
vals: .input 3
cnt:  .space 1
.org 0xf000
.entry main
main:
    mov #vals, r6
    mov #3, r7
    clr r8
lp: mov @r6+, r4
    cmp #50, r4
    jl small
    inc r8
small:
    dec r7
    jnz lp
    mov r8, &cnt
` + haltSeq},
	{"doubleBranchMerge", `
.org 0x0200
v: .input 1
.org 0xf000
.entry main
main:
    mov &v, r4
    cmp #5, r4
    jeq j1
j1:
    cmp #9, r4
    jeq j2
    mov #1, r5
j2:
` + haltSeq},
}

// TestParallelTreeMatchesSequential is the core determinism contract at
// the tree level: ExploreParallel must assemble a tree structurally
// identical to the sequential Explore result — same creation-order IDs,
// kinds, fork wiring, payloads, Paths, and Cycles — at every worker
// count.
func TestParallelTreeMatchesSequential(t *testing.T) {
	for _, prog := range parallelTreePrograms {
		seq, _ := explore(t, prog.src, Options{})
		for _, w := range []int{1, 2, 4, 8} {
			got, err := exploreParallelTree(t, prog.src, nil, w, Options{})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", prog.name, w, err)
			}
			requireTreesEqual(t, seq, got, fmt.Sprintf("%s workers=%d", prog.name, w))
		}
	}
}

// TestParallelIRQTreeMatchesSequential extends the contract to
// interrupt forks: the symbolic arrival window multiplies the tree, and
// the parallel walk must reproduce it exactly, including IRQ fork flags
// and arrival-order node IDs.
func TestParallelIRQTreeMatchesSequential(t *testing.T) {
	cfgs := []periph.Config{
		{MinLatency: 6, MaxLatency: 14},
		{MinLatency: 6, MaxLatency: 22},
		{MinLatency: 3, MaxLatency: 4},
	}
	for _, cfg := range cfgs {
		seq := exploreIRQ(t, irqIdleProg, cfg, Options{})
		for _, w := range []int{2, 4, 8} {
			got, err := exploreParallelTree(t, irqIdleProg, &cfg, w, Options{})
			if err != nil {
				t.Fatalf("window [%d,%d] workers=%d: %v", cfg.MinLatency, cfg.MaxLatency, w, err)
			}
			requireTreesEqual(t, seq, got,
				fmt.Sprintf("window [%d,%d] workers=%d", cfg.MinLatency, cfg.MaxLatency, w))
			if seq.IRQForks() != got.IRQForks() {
				t.Fatalf("IRQ fork counts differ: %d vs %d", seq.IRQForks(), got.IRQForks())
			}
		}
	}
}

// TestParallelRepeatedRunsIdentical re-runs the same parallel exploration
// several times at a fixed worker count: scheduler interleaving must not
// leak into the result.
func TestParallelRepeatedRunsIdentical(t *testing.T) {
	src := parallelTreePrograms[3].src // countedLoop: widest tree of the set
	first, err := exploreParallelTree(t, src, nil, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		got, err := exploreParallelTree(t, src, nil, 4, Options{})
		if err != nil {
			t.Fatal(err)
		}
		requireTreesEqual(t, first, got, fmt.Sprintf("repeat %d", i))
	}
}

// TestParallelBudgetErrorParity: budget exhaustion must fail identically
// — same sentinel, same message — at any worker count.
func TestParallelBudgetErrorParity(t *testing.T) {
	spin := `
.org 0xf000
.entry main
main: jmp main
`
	img, err := isa.Assemble("t", spin)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ulp430.NewSystem(sharedCPU(t), cell.ULP65(), img, ulp430.SymbolicInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, seqErr := Explore(sys, &countSink{}, Options{MaxCycles: 500})
	if !errors.Is(seqErr, ErrCycleBudget) {
		t.Fatalf("sequential: want ErrCycleBudget, got %v", seqErr)
	}
	for _, w := range []int{1, 2, 4} {
		_, parErr := exploreParallelTree(t, spin, nil, w, Options{MaxCycles: 500})
		if !errors.Is(parErr, ErrCycleBudget) {
			t.Fatalf("workers=%d: want ErrCycleBudget, got %v", w, parErr)
		}
		if parErr.Error() != seqErr.Error() {
			t.Fatalf("workers=%d: message differs:\nseq: %s\npar: %s", w, seqErr, parErr)
		}
	}

	// Node budget, on a forking program.
	forky := parallelTreePrograms[3].src
	img2, err := isa.Assemble("t", forky)
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := ulp430.NewSystem(sharedCPU(t), cell.ULP65(), img2, ulp430.SymbolicInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, seqErr = Explore(sys2, &countSink{}, Options{MaxNodes: 3})
	if !errors.Is(seqErr, ErrNodeBudget) {
		t.Fatalf("sequential: want ErrNodeBudget, got %v", seqErr)
	}
	for _, w := range []int{1, 2, 4} {
		_, parErr := exploreParallelTree(t, forky, nil, w, Options{MaxNodes: 3})
		if !errors.Is(parErr, ErrNodeBudget) {
			t.Fatalf("workers=%d: want ErrNodeBudget, got %v", w, parErr)
		}
		if parErr.Error() != seqErr.Error() {
			t.Fatalf("workers=%d: message differs:\nseq: %s\npar: %s", w, seqErr, parErr)
		}
	}
}

// TestParallelDisableMerge: with merging off the exploration degenerates
// to a pure tree in both modes; the countedLoop program stays finite.
func TestParallelDisableMerge(t *testing.T) {
	src := parallelTreePrograms[3].src
	seq, _ := explore(t, src, Options{DisableMerge: true})
	for _, w := range []int{2, 4} {
		got, err := exploreParallelTree(t, src, nil, w, Options{DisableMerge: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		requireTreesEqual(t, seq, got, fmt.Sprintf("disableMerge workers=%d", w))
	}
	if seq.CountKind(KindMerge) != 0 {
		t.Fatal("DisableMerge left merge nodes in the tree")
	}
}

// TestSnapPoolDoubleFreePanics pins the pool's ownership guard: putting
// the same snapshot twice is a fork bookkeeping bug and must panic
// rather than corrupt a restore.
func TestSnapPoolDoubleFreePanics(t *testing.T) {
	var p snapPool
	sn := p.take()
	p.put(sn)
	defer func() {
		if recover() == nil {
			t.Fatal("double put did not panic")
		}
	}()
	p.put(sn)
}
