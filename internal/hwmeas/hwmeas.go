// Package hwmeas is the substitute for the paper's Chapter 2 hardware
// measurement rig: an MSP430F1610 on a test board, sampled by an
// InfiniiVision DSO-X 2024A oscilloscope at 10 MHz while running at
// 8 MHz (at least one sample per cycle), with <2% run-to-run variation.
//
// The substitution (documented in DESIGN.md): the same gate-level design
// is "fabricated" at a 130 nm operating point (the ULP130 library) and
// clocked at 8 MHz; per-cycle power is computed by activity-based
// analysis (the scope's one-sample-per-cycle view); bounded multiplicative
// measurement noise reproduces the instrument's run-to-run variation.
// This preserves exactly the phenomena Chapter 2 establishes: peak power
// differs across applications, varies with inputs by tens of percent, and
// sits far below the datasheet rating.
package hwmeas

import (
	"fmt"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/ulp430"
)

// Rig is the simulated measurement setup.
type Rig struct {
	// Netlist is the device under test.
	Netlist *netlist.Netlist
	// Model is the 130nm/8MHz operating point.
	Model power.Model
	// NoisePct is the bounded measurement noise amplitude (fraction).
	NoisePct float64
	// RatedPeakMW is the datasheet peak power rating of the part, from
	// vectorless analysis at the design-tool toggle rate (the 4.8 mW
	// figure in the paper's measurements plays this role).
	RatedPeakMW float64
}

// NewRig builds the measurement setup around a (shared) CPU netlist.
func NewRig(nl *netlist.Netlist) (*Rig, error) {
	if nl == nil {
		var err error
		nl, err = ulp430.BuildCPU()
		if err != nil {
			return nil, err
		}
	}
	m := power.Model{Lib: cell.ULP130(), ClockHz: 8e6}
	rated := designRating(nl, m)
	return &Rig{Netlist: nl, Model: m, NoisePct: 0.008, RatedPeakMW: rated}, nil
}

func designRating(nl *netlist.Netlist, m power.Model) float64 {
	return baseline.DesignToolPeakMW(nl, m, baseline.DefaultToggleRate)
}

// Measurement is one scoped run.
type Measurement struct {
	// PeakMW is the highest sampled power.
	PeakMW float64
	// AvgMW is the mean sampled power.
	AvgMW float64
	// EnergyJ integrates power over the run.
	EnergyJ float64
	// NPEJPerCycle is energy normalized to runtime in cycles.
	NPEJPerCycle float64
	// Cycles is the run length.
	Cycles int
	// TraceMW is the sampled power trace (one sample per cycle).
	TraceMW []float64
}

// Measure runs one benchmark with one drawn input set on the rig.
// noiseSeed separates instrument noise from input draws so repeated
// measurements of the same input set vary by less than 2× NoisePct.
func (rig *Rig) Measure(b *bench.Benchmark, inputSeed, noiseSeed int64) (Measurement, error) {
	img, err := b.Image()
	if err != nil {
		return Measurement{}, err
	}
	ri := rand.New(rand.NewSource(inputSeed))
	inputs := b.GenInputs(ri)
	sys, err := ulp430.NewSystem(rig.Netlist, rig.Model.Lib, img, ulp430.ConcreteInputs, inputs)
	if err != nil {
		return Measurement{}, err
	}
	if b.UsesPort {
		sys.PortIn = b.GenPort(ri)
	}
	sink := power.NewSink(sys, rig.Model, img, 0)
	sys.Reset()
	for c := 0; c < 3_000_000 && !sys.Halted(); c++ {
		sys.Step()
		sink.OnCycle(sys)
	}
	if !sys.Halted() {
		return Measurement{}, fmt.Errorf("hwmeas: %s did not halt", b.Name)
	}
	rn := rand.New(rand.NewSource(noiseSeed))
	meas := Measurement{Cycles: len(sink.Trace), TraceMW: make([]float64, len(sink.Trace))}
	sum := 0.0
	for i, p := range sink.Trace {
		// Bounded multiplicative instrument noise.
		noisy := p * (1 + rig.NoisePct*(2*rn.Float64()-1))
		meas.TraceMW[i] = noisy
		sum += noisy
		// Peak over steady-state execution: the scope operator crops the
		// power-on transient, as the paper's measurements do.
		if i >= sink.WarmupCycles && noisy > meas.PeakMW {
			meas.PeakMW = noisy
		}
	}
	meas.AvgMW = sum / float64(meas.Cycles)
	meas.EnergyJ = sum * 1e-3 / rig.Model.ClockHz
	meas.NPEJPerCycle = meas.EnergyJ / float64(meas.Cycles)
	return meas, nil
}

// InputSweep measures a benchmark across n input sets and reports the
// per-benchmark mean and range of peak power and NPE — the data behind
// Figure 2.2.
type InputSweep struct {
	MeanPeakMW, MinPeakMW, MaxPeakMW float64
	MeanNPE, MinNPE, MaxNPE          float64
	Runs                             int
}

// Sweep runs n input sets.
func (rig *Rig) Sweep(b *bench.Benchmark, n int, seed int64) (InputSweep, error) {
	var sw InputSweep
	for i := 0; i < n; i++ {
		m, err := rig.Measure(b, seed+int64(i)*1000, seed+int64(i)*1000+7)
		if err != nil {
			return sw, err
		}
		if i == 0 {
			sw.MinPeakMW, sw.MaxPeakMW = m.PeakMW, m.PeakMW
			sw.MinNPE, sw.MaxNPE = m.NPEJPerCycle, m.NPEJPerCycle
		}
		sw.MeanPeakMW += m.PeakMW
		sw.MeanNPE += m.NPEJPerCycle
		if m.PeakMW < sw.MinPeakMW {
			sw.MinPeakMW = m.PeakMW
		}
		if m.PeakMW > sw.MaxPeakMW {
			sw.MaxPeakMW = m.PeakMW
		}
		if m.NPEJPerCycle < sw.MinNPE {
			sw.MinNPE = m.NPEJPerCycle
		}
		if m.NPEJPerCycle > sw.MaxNPE {
			sw.MaxNPE = m.NPEJPerCycle
		}
		sw.Runs++
	}
	sw.MeanPeakMW /= float64(sw.Runs)
	sw.MeanNPE /= float64(sw.Runs)
	return sw, nil
}
