package main

import (
	"expvar"
	"sync"
)

// Operational counters exported on /debug/vars. The cumulative counters
// are process-global expvar.Ints (expvar.Publish panics on duplicate
// names, and tests build several servers per process); the gauges are
// expvar.Funcs registered once, reading whichever server most recently
// called registerMetrics.
var (
	mJobsAccepted  = expvar.NewInt("peakpowerd_jobs_accepted")
	mJobsCompleted = expvar.NewInt("peakpowerd_jobs_completed")
	mJobsFailed    = expvar.NewInt("peakpowerd_jobs_failed")
	mWebhooksOK    = expvar.NewInt("peakpowerd_webhooks_delivered")
	mWebhooksFail  = expvar.NewInt("peakpowerd_webhooks_failed")
)

var (
	metricsMu   sync.Mutex
	metricsSrv  *server
	metricsOnce sync.Once
)

// metricsServer returns the server the gauges read, if any.
func metricsServer() *server {
	metricsMu.Lock()
	defer metricsMu.Unlock()
	return metricsSrv
}

// registerMetrics points the /debug/vars gauges at s and publishes them
// on first use.
func registerMetrics(s *server) {
	metricsMu.Lock()
	metricsSrv = s
	metricsMu.Unlock()
	metricsOnce.Do(func() {
		expvar.Publish("peakpowerd_queue_depth", expvar.Func(func() any {
			if s := metricsServer(); s != nil {
				return s.jobs.stats().QueueDepth
			}
			return 0
		}))
		expvar.Publish("peakpowerd_in_flight", expvar.Func(func() any {
			if s := metricsServer(); s != nil {
				return s.jobs.stats().InFlight
			}
			return 0
		}))
		expvar.Publish("peakpowerd_cache", expvar.Func(func() any {
			if s := metricsServer(); s != nil {
				return s.cache.Stats()
			}
			return nil
		}))
		expvar.Publish("peakpowerd_disk", expvar.Func(func() any {
			if s := metricsServer(); s != nil && s.disk != nil {
				return s.disk.Stats()
			}
			return nil
		}))
		expvar.Publish("peakpowerd_fleet_tasks_leased", expvar.Func(func() any {
			if s := metricsServer(); s != nil && s.fleet != nil {
				leased, _ := s.fleet.Counters()
				return leased
			}
			return 0
		}))
		expvar.Publish("peakpowerd_fleet_tasks_reissued", expvar.Func(func() any {
			if s := metricsServer(); s != nil && s.fleet != nil {
				_, reissued := s.fleet.Counters()
				return reissued
			}
			return 0
		}))
	})
}
