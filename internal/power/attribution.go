package power

import "repro/internal/isa"

// Resolved is a Peak with every internal index resolved to a stable,
// human-readable name: instruction mnemonics instead of image addresses and
// module names instead of module-table indices. It is the exported-safe
// form of a cycle of interest — free of netlist cell IDs and module-table
// positions, so it can be serialized, persisted, and compared across
// processes and runs (the public Report's COI representation converts
// directly from it).
type Resolved struct {
	// Cycle is the cycle's position along its exploration path.
	Cycle int
	// PowerMW is the cycle's bounded power.
	PowerMW float64
	// Instr is the mnemonic of the instruction in flight; PrevInstr the
	// one before it.
	Instr string
	// PrevInstr is the mnemonic of the preceding instruction.
	PrevInstr string
	// State is the controller state name at the peak.
	State string
	// InISR marks a cycle spent in interrupt context (entry sequence,
	// handler body, or RETI unwind).
	InISR bool
	// ByModuleMW is the per-module power split, keyed by module name.
	ByModuleMW map[string]float64
}

// Resolve renders the peak's attribution with instruction mnemonics and
// named module splits. modules indexes ByModuleMW (Netlist.Modules order);
// a nil img renders mnemonics as "?".
func (pk Peak) Resolve(modules []string, img *isa.Image) Resolved {
	r := Resolved{
		Cycle:      pk.PathPos,
		PowerMW:    pk.PowerMW,
		Instr:      "?",
		PrevInstr:  "?",
		State:      pk.State,
		InISR:      pk.InISR,
		ByModuleMW: make(map[string]float64, len(pk.ByModuleMW)),
	}
	if img != nil {
		r.Instr = isa.Mnemonic(img, pk.FetchAddr)
		r.PrevInstr = isa.Mnemonic(img, pk.PrevFetch)
	}
	for mi, mw := range pk.ByModuleMW {
		r.ByModuleMW[modules[mi]] = mw
	}
	return r
}
