// Package soc pins down the ULP430 system-on-chip memory map shared by
// the behavioral reference simulator (isim), the gate-level system
// (ulp430), and the benchmarks. The layout mirrors a small MSP430-class
// microcontroller: low peripheral space, 2 KiB of SRAM, 4 KiB of program
// ROM, and a reset vector at the top of the address space.
package soc

// Memory regions (byte addresses; all accesses are word-aligned).
const (
	// RAMStart is the first byte of SRAM.
	RAMStart = 0x0200
	// RAMEnd is one past the last byte of SRAM (2 KiB).
	RAMEnd = 0x0A00
	// ROMStart is the first byte of program ROM.
	ROMStart = 0xF000
	// ROMEnd is one past the last byte of ROM (the vector area is inside).
	ROMEnd = 0x10000
	// StackTop is the conventional initial stack pointer.
	StackTop = RAMEnd
)

// Peripheral registers.
const (
	// WDTCTL is the watchdog control register; bit 7 (WDTHOLD) stops the
	// free-running watchdog counter.
	WDTCTL = 0x0120
	// P1IN is the input port: reads return external input (X under
	// symbolic simulation — the paper's "set all peripheral port inputs
	// to Xs", Algorithm 1 line 11).
	P1IN = 0x0122
	// P1OUT is the output port register.
	P1OUT = 0x0124
	// HALTREG ends simulation when written with a non-zero value; it is
	// the SoC's "end of application" signal (Algorithm 1's END marker).
	HALTREG = 0x0126
	// MPY is the hardware multiplier's first operand (unsigned multiply).
	MPY = 0x0130
	// MPYS aliases MPY (the signed-multiply register of the MSP430
	// multiplier; this implementation treats it as unsigned — documented
	// simplification, the benchmarks use unsigned multiplies).
	MPYS = 0x0132
	// OP2 is the multiplier's second operand; writing it triggers the
	// multiplication.
	OP2 = 0x0138
	// RESLO holds the low 16 bits of the product.
	RESLO = 0x013A
	// RESHI holds the high 16 bits of the product.
	RESHI = 0x013C
)

// WDTHold is the WDTCTL bit that freezes the watchdog counter.
const WDTHold = 0x0080

// InRAM reports whether byte address a lies in SRAM.
func InRAM(a uint16) bool { return a >= RAMStart && a < RAMEnd }

// InROM reports whether byte address a lies in program ROM.
func InROM(a uint16) bool { return a >= ROMStart }

// IsPeripheral reports whether byte address a is a peripheral register.
func IsPeripheral(a uint16) bool {
	switch a {
	case WDTCTL, P1IN, P1OUT, HALTREG, MPY, MPYS, OP2, RESLO, RESHI:
		return true
	}
	return false
}
