package peakpower

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

const cacheTestApp = `
.org 0x0200
v: .input 1
.org 0xf000
.entry main
main:
    mov #0x0080, &0x0120
    mov #0x0a00, sp
    mov &v, r4
    cmp #10, r4
    jl done
    rra r4
done:
    mov #1, &0x0126
spin: jmp spin
`

// TestCacheServesSecondAnalyze proves the content-addressed cache: a
// second Analyze of the same image and options returns the first call's
// Result without re-exploration (same pointer, one miss then hits).
func TestCacheServesSecondAnalyze(t *testing.T) {
	cache := NewCache(16)
	a, err := NewFor(context.Background(), "ulp430", WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	img, err := Assemble("cached", cacheTestApp)
	if err != nil {
		t.Fatal(err)
	}
	first, err := a.AnalyzeImage(context.Background(), img)
	if err != nil {
		t.Fatal(err)
	}
	second, err := a.AnalyzeImage(context.Background(), img)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("second analysis of identical image+options must be served from the cache")
	}
	if st := cache.Stats(); st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats after hit: %+v", st)
	}

	// Different resolved options are a different analysis.
	other, err := a.AnalyzeImage(context.Background(), img, WithClockHz(50e6))
	if err != nil {
		t.Fatal(err)
	}
	if other == first {
		t.Fatal("changed options must not hit the cache")
	}
	// Result-invariant options (progress plumbing) still hit.
	again, err := a.AnalyzeImage(context.Background(), img, WithProgress(func(Progress) {}, 512))
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatal("progress options must not change the cache key")
	}
	if cache.Len() != 2 {
		t.Fatalf("cache entries: %d, want 2", cache.Len())
	}
}

// TestCacheContentAddressed: the key is the image content, not its name
// alone — same name with different code misses; and distinct targets
// sharing one cache never collide.
func TestCacheContentAddressed(t *testing.T) {
	cache := NewCache(0)
	a, err := NewFor(context.Background(), "ulp430", WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	img1, err := Assemble("app", cacheTestApp)
	if err != nil {
		t.Fatal(err)
	}
	// Same name, different code.
	img2, err := Assemble("app", `
.org 0xf000
.entry main
main:
    mov #0x0080, &0x0120
    mov #1, &0x0126
spin: jmp spin
`)
	if err != nil {
		t.Fatal(err)
	}
	if ImageHash(img1) == ImageHash(img2) {
		t.Fatal("distinct binaries must hash differently")
	}
	r1, err := a.AnalyzeImage(context.Background(), img1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.AnalyzeImage(context.Background(), img2)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Fatal("same-name different-content images must not share a cache entry")
	}

	// A second target sharing the cache computes its own result.
	sized, err := NewFor(context.Background(), "ulp430-sized", WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	r3, err := sized.AnalyzeImage(context.Background(), img1)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 || r3.Library == r1.Library {
		t.Fatalf("targets must not collide in a shared cache: %q vs %q", r3.Library, r1.Library)
	}
}

// TestCacheConcurrent hammers one cache entry from many goroutines; run
// under -race this is the cache's concurrency contract.
func TestCacheConcurrent(t *testing.T) {
	cache := NewCache(8)
	a, err := NewFor(context.Background(), "ulp430", WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	img, err := Assemble("cc", cacheTestApp)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	results := make([]*Result, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			r, err := a.AnalyzeImage(context.Background(), img)
			if err == nil {
				results[i] = r
			}
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r == nil {
			t.Fatalf("analysis %d failed", i)
		}
		if r.Hash != results[0].Hash {
			t.Fatalf("analysis %d produced a different report", i)
		}
	}
}

func TestCacheEviction(t *testing.T) {
	ctx := context.Background()
	c := NewCache(2)
	// fill stores a key through the public single-flight path; probe
	// reports whether a key is resident (its compute must not run on a
	// hit).
	fill := func(key string) *Result {
		r := &Result{}
		got, err := c.do(ctx, key, func() (*Result, error) { return r, nil })
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	resident := func(key string) bool {
		miss := false
		if _, err := c.do(ctx, key, func() (*Result, error) {
			miss = true
			return &Result{}, nil
		}); err != nil {
			t.Fatal(err)
		}
		return !miss
	}
	fill("a")
	fill("b")
	fill("c") // evicts a (capacity 2)
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
	// Hit-probes are harmless; a miss-probe re-inserts its key (evicting
	// the LRU), so the mutating probe of the evicted key goes last.
	if !resident("b") || !resident("c") {
		t.Fatal("recently used entries must survive eviction")
	}
	if resident("a") {
		t.Fatal("oldest entry should have been evicted")
	}
	// Recency: probing a re-inserted it ({a,c} remain, b evicted as LRU);
	// refreshing c then inserting d must evict a, not c.
	if !resident("c") {
		t.Fatal("c lost")
	}
	fill("d")
	if !resident("c") || !resident("d") {
		t.Fatal("LRU should have evicted the stale key, not the refreshed one")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
}

// TestCacheSharesDeterministicFailure: waiters blocked on a failing leader
// receive the leader's error instead of serially re-running the doomed
// analysis; cancellation, by contrast, elects a new leader.
func TestCacheSharesDeterministicFailure(t *testing.T) {
	ctx := context.Background()
	c := NewCache(4)
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})
	var leaderRuns, waiterRuns int32
	go func() {
		c.do(ctx, "k", func() (*Result, error) {
			atomic.AddInt32(&leaderRuns, 1)
			close(started)
			<-release
			return nil, boom
		})
	}()
	<-started
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.do(ctx, "k", func() (*Result, error) {
				atomic.AddInt32(&waiterRuns, 1)
				return nil, boom
			})
		}(i)
	}
	// Give the waiters time to park on the flight, then fail the leader.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	if n := atomic.LoadInt32(&waiterRuns); n != 0 {
		t.Fatalf("deterministic failure re-ran %d times in waiters", n)
	}

	// A canceled leader does not poison the key: the next caller recomputes.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := c.do(ctx, "k2", func() (*Result, error) { return nil, canceled.Err() }); err == nil {
		t.Fatal("leader must see its own cancellation")
	}
	r, err := c.do(ctx, "k2", func() (*Result, error) { return &Result{}, nil })
	if err != nil || r == nil {
		t.Fatalf("post-cancellation recompute: %v", err)
	}
}
