GO ?= go
BENCH_JSON ?= BENCH_$(shell date +%F).json

# The bench targets pipe `go test` into benchjson; without pipefail a
# failing benchmark run would still exit 0 via the converter.
SHELL := /usr/bin/env bash
.SHELLFLAGS := -o pipefail -c

.PHONY: all build vet test race bench bench-smoke profile ci clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector — exercises the peakpower
# package's concurrency contract (shared Analyzer, AnalyzeAll pool).
race:
	$(GO) test -race ./...

# The table/figure-regenerating benchmark harness plus the gate-engine
# benchmarks; results are captured as a BENCH_*.json trajectory point
# (see PERFORMANCE.md).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' . | tee /dev/stderr | $(GO) run ./cmd/benchjson -out $(BENCH_JSON)

# One-iteration smoke form of the same run — CI's per-commit artifact.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' . | tee /dev/stderr | $(GO) run ./cmd/benchjson -out $(BENCH_JSON)

# CPU/heap profile of the packed engine under the end-to-end macro
# benchmark; the recipe PERFORMANCE.md documents.
profile:
	$(GO) test -run='^$$' -bench='BenchmarkEngineCoAnalysis/packed' -benchtime=5x \
		-cpuprofile=cpu.prof -memprofile=mem.prof .
	$(GO) tool pprof -top -nodecount=20 cpu.prof

ci: build vet race

clean:
	$(GO) clean ./...
	rm -f cpu.prof mem.prof repro.test
