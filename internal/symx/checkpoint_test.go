package symx

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/faultfs"
	"repro/internal/isa"
	"repro/internal/periph"
	"repro/internal/ulp430"
)

// ckptCountSink is workerCountSink plus the TaskMarshaler capability
// checkpointing requires. It records no reduction candidates, so a task's
// serialized observations are empty.
type ckptCountSink struct{ workerCountSink }

func (c *ckptCountSink) MarshalTask() ([]byte, error) { return nil, nil }

// countCodec serializes workerCountSink's journal-crossing values: seeds
// are always nil and segment payloads are []uint16 PC traces.
type countCodec struct{}

func (countCodec) MarshalSeed(seed interface{}) ([]byte, error) {
	if seed != nil {
		return nil, fmt.Errorf("countCodec: unexpected seed %T", seed)
	}
	return nil, nil
}

func (countCodec) UnmarshalSeed(data []byte) (interface{}, error) {
	if len(data) != 0 {
		return nil, fmt.Errorf("countCodec: unexpected seed bytes")
	}
	return nil, nil
}

func (countCodec) MarshalPayload(data interface{}) ([]byte, error) {
	pcs, ok := data.([]uint16)
	if !ok && data != nil {
		return nil, fmt.Errorf("countCodec: unexpected payload %T", data)
	}
	return json.Marshal(pcs)
}

func (countCodec) UnmarshalPayload(data []byte) (interface{}, error) {
	var pcs []uint16
	if err := json.Unmarshal(data, &pcs); err != nil {
		return nil, err
	}
	return pcs, nil
}

// exploreCkpt runs a checkpointed ExploreParallel over src.
func exploreCkpt(t *testing.T, src string, irq *periph.Config, workers int, ck *Checkpointer, opts Options) (*ParallelResult, error) {
	t.Helper()
	img, err := isa.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return ExploreParallel(ParallelOptions{
		Options:    opts,
		Workers:    workers,
		Checkpoint: ck,
		NewWorker: func(worker int) (*ulp430.System, WorkerSink, error) {
			sys, err := ulp430.NewSystem(sharedCPU(t), cell.ULP65(), img, ulp430.SymbolicInputs, nil)
			if err != nil {
				return nil, nil, err
			}
			if irq != nil {
				sys.EnableInterrupts(*irq)
			}
			return sys, &ckptCountSink{}, nil
		},
	})
}

func testCkpt(path string, fs faultfs.FS) *Checkpointer {
	return NewCheckpointer(CheckpointConfig{
		Path: path, Tag: "test-tag", Codec: countCodec{}, FS: fs, SyncEvery: 1,
	})
}

// cancelAtCycles builds Options whose progress callback cancels the run's
// context once the shared cycle counter reaches n — a deterministic-enough
// stand-in for a crash (workers notice within their next cancellation
// poll, and the journal keeps only what was already appended).
func cancelAtCycles(n int) Options {
	ctx, cancel := context.WithCancel(context.Background())
	return Options{
		Ctx:           ctx,
		ProgressEvery: 1,
		Progress: func(p Progress) {
			if p.Cycles >= n {
				cancel()
			}
		},
	}
}

// TestCheckpointFreshRunTreeMatchesSequential: turning checkpointing on
// (which publishes every fork instead of using worker-local stacks) must
// not perturb the assembled tree at any worker count.
func TestCheckpointFreshRunTreeMatchesSequential(t *testing.T) {
	for _, prog := range parallelTreePrograms {
		seq, _ := explore(t, prog.src, Options{})
		for _, w := range []int{1, 2, 4} {
			path := filepath.Join(t.TempDir(), "ckpt.jsonl")
			res, err := exploreCkpt(t, prog.src, nil, w, testCkpt(path, nil), Options{})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", prog.name, w, err)
			}
			requireTreesEqual(t, seq, res.Tree, fmt.Sprintf("%s ckpt workers=%d", prog.name, w))
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("%s workers=%d: journal missing: %v", prog.name, w, err)
			}
		}
	}
}

// TestCheckpointFullReplay: resuming a COMPLETED journal re-executes
// nothing — the tree is reassembled purely from replayed records — and
// still matches the sequential result exactly, at any resuming worker
// count. Resuming twice from the same journal must also work (a resume of
// a complete journal appends nothing).
func TestCheckpointFullReplay(t *testing.T) {
	src := parallelTreePrograms[3].src // countedLoop: widest tree of the set
	seq, _ := explore(t, src, Options{})
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	if _, err := exploreCkpt(t, src, nil, 2, testCkpt(path, nil), Options{}); err != nil {
		t.Fatalf("recording run: %v", err)
	}
	for _, w := range []int{1, 4} {
		res, err := exploreCkpt(t, src, nil, w, testCkpt(path, nil), Options{})
		if err != nil {
			t.Fatalf("replay workers=%d: %v", w, err)
		}
		requireTreesEqual(t, seq, res.Tree, fmt.Sprintf("full replay workers=%d", w))
		if len(res.Replayed) == 0 {
			t.Fatalf("replay workers=%d: no replayed task records", w)
		}
	}
}

// TestCheckpointResumeAfterCancel: a run killed mid-exploration resumes
// from its journal and completes with the exact sequential tree.
func TestCheckpointResumeAfterCancel(t *testing.T) {
	src := parallelTreePrograms[3].src
	seq, _ := explore(t, src, Options{})
	for _, w := range []int{1, 2, 4} {
		path := filepath.Join(t.TempDir(), "ckpt.jsonl")
		_, err := exploreCkpt(t, src, nil, w, testCkpt(path, nil), cancelAtCycles(10))
		if err == nil {
			t.Fatalf("workers=%d: cancelled run did not fail", w)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", w, err)
		}
		res, err := exploreCkpt(t, src, nil, w, testCkpt(path, nil), Options{})
		if err != nil {
			t.Fatalf("workers=%d resume: %v", w, err)
		}
		requireTreesEqual(t, seq, res.Tree, fmt.Sprintf("resume workers=%d", w))
	}
}

// TestCheckpointMultiCrashResume: several crash/resume generations on one
// journal. This is the regression test for incarnation superseding — a
// task that crashed mid-flight in generation N re-runs in generation N+1
// and republishes its forks under fresh identities; the done record's
// explicit child naming must keep the stale generation-N children dead in
// every later generation, or subtrees get explored twice.
func TestCheckpointMultiCrashResume(t *testing.T) {
	src := parallelTreePrograms[3].src
	seq, _ := explore(t, src, Options{})
	for _, w := range []int{2, 4} {
		path := filepath.Join(t.TempDir(), "ckpt.jsonl")
		for gen, at := range []int{30, 60, 90} {
			_, err := exploreCkpt(t, src, nil, w, testCkpt(path, nil), cancelAtCycles(at))
			if err == nil {
				// The run got far enough to finish — fine, the remaining
				// generations become (partial) replays.
				continue
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d gen=%d: want context.Canceled, got %v", w, gen, err)
			}
		}
		res, err := exploreCkpt(t, src, nil, w, testCkpt(path, nil), Options{})
		if err != nil {
			t.Fatalf("workers=%d final resume: %v", w, err)
		}
		requireTreesEqual(t, seq, res.Tree, fmt.Sprintf("multi-crash workers=%d", w))
	}
}

// TestCheckpointIRQResume: resume must round-trip full peripheral-bus
// state through the journaled portable snapshots, on a tree multiplied by
// symbolic interrupt arrival.
func TestCheckpointIRQResume(t *testing.T) {
	cfg := periph.Config{MinLatency: 6, MaxLatency: 14}
	seq := exploreIRQ(t, irqIdleProg, cfg, Options{})
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	if _, err := exploreCkpt(t, irqIdleProg, &cfg, 2, testCkpt(path, nil), cancelAtCycles(40)); err == nil {
		t.Skip("run completed before the injected cancel; nothing to resume")
	}
	res, err := exploreCkpt(t, irqIdleProg, &cfg, 2, testCkpt(path, nil), Options{})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	requireTreesEqual(t, seq, res.Tree, "irq resume")
}

// TestCheckpointTornTail: a journal cut off mid-record (the unsynced tail
// a SIGKILL loses) loads as its consistent prefix; the resumed run
// re-explores the lost suffix and the result is unchanged. The torn bytes
// are also physically dropped on resume, so the resumed run's own records
// stay readable.
func TestCheckpointTornTail(t *testing.T) {
	src := parallelTreePrograms[3].src
	seq, _ := explore(t, src, Options{})
	record := func(t *testing.T) (string, []byte) {
		path := filepath.Join(t.TempDir(), "ckpt.jsonl")
		if _, err := exploreCkpt(t, src, nil, 2, testCkpt(path, nil), Options{}); err != nil {
			t.Fatalf("recording run: %v", err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return path, data
	}

	// Truncate the journal at arbitrary byte offsets (usually mid-line).
	path, data := record(t)
	for _, frac := range []int{1, 3, 6, 9} {
		cut := len(data) * frac / 10
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := exploreCkpt(t, src, nil, 2, testCkpt(path, nil), Options{})
		if err != nil {
			t.Fatalf("cut=%d/10: resume: %v", frac, err)
		}
		requireTreesEqual(t, seq, res.Tree, fmt.Sprintf("torn tail cut=%d/10", frac))
	}

	// Garbage appended after valid records (a torn multi-record write).
	path, data = record(t)
	if err := os.WriteFile(path, append(data, []byte(`{"t":"pub","id":99,"par`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := exploreCkpt(t, src, nil, 2, testCkpt(path, nil), Options{})
	if err != nil {
		t.Fatalf("garbage tail: resume: %v", err)
	}
	requireTreesEqual(t, seq, res.Tree, "garbage tail")
	// The resume replays everything and appends nothing, so the file must
	// be exactly the original journal: the garbage tail physically gone.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, data) {
		t.Fatal("torn tail survived the resume; later appends would be unreadable")
	}
}

// TestCheckpointTagMismatch: a journal recorded for a different analysis
// must refuse to resume rather than graft foreign state.
func TestCheckpointTagMismatch(t *testing.T) {
	src := parallelTreePrograms[1].src
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	if _, err := exploreCkpt(t, src, nil, 1, testCkpt(path, nil), Options{}); err != nil {
		t.Fatalf("recording run: %v", err)
	}
	other := NewCheckpointer(CheckpointConfig{Path: path, Tag: "other-tag", Codec: countCodec{}})
	_, err := exploreCkpt(t, src, nil, 1, other, Options{})
	if err == nil || !strings.Contains(err.Error(), "different analysis") {
		t.Fatalf("want tag-mismatch error, got %v", err)
	}
}

// TestCheckpointDisableMergeRejected: checkpointing depends on state
// merging for its claim accounting; the combination must be refused.
func TestCheckpointDisableMergeRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	_, err := exploreCkpt(t, parallelTreePrograms[0].src, nil, 1, testCkpt(path, nil), Options{DisableMerge: true})
	if err == nil || !strings.Contains(err.Error(), "DisableMerge") {
		t.Fatalf("want DisableMerge rejection, got %v", err)
	}
}

// TestCheckpointWriteFaultDegrades: a journal write failure mid-run must
// not fail (or corrupt) the exploration — the run completes with the
// correct tree, the failure is latched on Err(), and the journal's intact
// prefix still resumes.
func TestCheckpointWriteFaultDegrades(t *testing.T) {
	src := parallelTreePrograms[3].src
	seq, _ := explore(t, src, Options{})
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	var cnt faultfs.Counter
	fs := faultfs.Hooked{Hook: func(op faultfs.Op, p string) error {
		if op == faultfs.OpWrite && cnt.Next(op) > 3 {
			return errors.New("injected: disk full")
		}
		return nil
	}}
	ck := testCkpt(path, fs)
	res, err := exploreCkpt(t, src, nil, 2, ck, Options{})
	if err != nil {
		t.Fatalf("faulted run failed: %v", err)
	}
	requireTreesEqual(t, seq, res.Tree, "faulted run")
	if ck.Err() == nil {
		t.Fatal("write fault not latched on Err()")
	}

	res, err = exploreCkpt(t, src, nil, 2, testCkpt(path, nil), Options{})
	if err != nil {
		t.Fatalf("resume from faulted journal: %v", err)
	}
	requireTreesEqual(t, seq, res.Tree, "resume from faulted journal")
}
