// Package baseline implements the three conventional techniques the
// paper compares against (Section 4.2, Figure 1.4):
//
//   - design-tool rating: vectorless power analysis of the netlist at the
//     design tool's default input toggle rate (application-oblivious, the
//     most conservative),
//   - stressmark: a genetic algorithm in the style of Kim et al.'s AUDIT
//     framework, evolving instruction sequences that maximize measured
//     peak (or average) power on the gate-level design,
//   - input-based profiling: run the application with several concrete
//     input sets, take the highest observed peak power / energy, and
//     apply a 4/3 guardband (the factor used in prior studies and
//     appropriate for the ~25%+ input-induced variability of Chapter 2).
package baseline

import (
	"fmt"
	"math/rand"

	"repro/internal/bench"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/ulp430"
)

// Guardband is the profiling guardband factor from prior studies.
const Guardband = 4.0 / 3.0

// DefaultToggleRate is the vectorless analysis default activity factor
// used for the design-specification rating. Calibrated so the rating
// plays the role of the datasheet peak figure: comfortably above the
// strongest evolved stressmark and every application's X-based bound
// (the MSP430F1610's 4.8 mW rating sat ~2.2x above measured application
// peaks in Chapter 2).
const DefaultToggleRate = 0.68

// DesignToolPeakMW computes the design-specification peak power rating:
// every cell is assumed to toggle with the default input toggle rate at
// its maximum-power transition, plus clock and leakage. This is the
// "power and energy analysis of the design using the default input
// toggle rate used by our design tools" baseline.
func DesignToolPeakMW(nl *netlist.Netlist, m power.Model, toggleRate float64) float64 {
	eFJ := 0.0
	for ci := 0; ci < nl.NumCells(); ci++ {
		k := nl.Cell(netlist.CellID(ci)).Kind
		_, _, max := m.Lib.MaxTransition(k)
		eFJ += toggleRate*max + m.Lib.Params(k).EnergyClk
	}
	return m.PowerMW(eFJ) + m.LeakageMW(nl)
}

// DesignToolNPE returns the design-tool peak energy rating normalized to
// runtime (J/cycle): the rated power held for every cycle — it "does not
// consider dynamic variations in the energy requirements of an
// application" (Section 5).
func DesignToolNPE(nl *netlist.Netlist, m power.Model, toggleRate float64) float64 {
	return DesignToolPeakMW(nl, m, toggleRate) * 1e-3 / m.ClockHz
}

// ProfileResult is the outcome of input-based profiling of one
// application.
type ProfileResult struct {
	// ObservedPeakMW is the highest per-cycle power seen over all runs.
	ObservedPeakMW float64
	// MinPeakMW is the lowest per-run peak (the input-induced range).
	MinPeakMW float64
	// ObservedNPE is the highest per-run energy/cycles (J/cycle).
	ObservedNPE float64
	// MinNPE is the lowest per-run NPE.
	MinNPE float64
	// GuardbandedPeakMW = ObservedPeakMW * 4/3.
	GuardbandedPeakMW float64
	// GuardbandedNPE = ObservedNPE * 4/3.
	GuardbandedNPE float64
	// Runs is the number of input sets profiled.
	Runs int
}

// Profile performs input-based power and energy profiling of a benchmark
// with runs random input sets.
func Profile(nl *netlist.Netlist, m power.Model, b *bench.Benchmark, runs int, seed int64) (ProfileResult, error) {
	img, err := b.Image()
	if err != nil {
		return ProfileResult{}, err
	}
	res := ProfileResult{Runs: runs}
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < runs; i++ {
		sys, err := ulp430.NewSystem(nl, m.Lib, img, ulp430.ConcreteInputs, b.GenInputs(r))
		if err != nil {
			return ProfileResult{}, err
		}
		if b.UsesPort {
			sys.PortIn = b.GenPort(r)
		}
		sink := power.NewSink(sys, m, img, 0)
		sys.Reset()
		for c := 0; c < 3_000_000 && !sys.Halted(); c++ {
			sys.Step()
			sink.OnCycle(sys)
		}
		if !sys.Halted() {
			return ProfileResult{}, fmt.Errorf("baseline: %s run %d did not halt", b.Name, i)
		}
		if err := sys.Err(); err != nil {
			return ProfileResult{}, err
		}
		eJ := 0.0
		for _, mw := range sink.Trace {
			eJ += mw * 1e-3 / m.ClockHz
		}
		npe := eJ / float64(len(sink.Trace))
		pk := sink.PeakMW()
		if i == 0 || pk > res.ObservedPeakMW {
			res.ObservedPeakMW = pk
		}
		if i == 0 || pk < res.MinPeakMW {
			res.MinPeakMW = pk
		}
		if i == 0 || npe > res.ObservedNPE {
			res.ObservedNPE = npe
		}
		if i == 0 || npe < res.MinNPE {
			res.MinNPE = npe
		}
	}
	res.GuardbandedPeakMW = res.ObservedPeakMW * Guardband
	res.GuardbandedNPE = res.ObservedNPE * Guardband
	return res, nil
}
