package peakpower

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestInterruptAnalysis runs the interrupt-driven benchmarks end to end
// and checks the physics of each report: the windowed ADC benchmarks must
// fork on arrival, every interrupt analysis must enter the ISR, and the
// ISR-restricted peak can never exceed the global peak.
func TestInterruptAnalysis(t *testing.T) {
	a := analyzer(t)
	for _, tc := range []struct {
		name      string
		wantForks bool
	}{
		{"timerCount", false}, // deterministic arrival: no symbolic window
		{"adcSample", true},
		{"sensorDuty", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := a.AnalyzeBench(context.Background(), tc.name)
			if err != nil {
				t.Fatal(err)
			}
			irq := res.Interrupts
			if irq == nil {
				t.Fatal("interrupt benchmark produced a report without an Interrupts section")
			}
			if irq.MinLatency <= 0 || irq.MaxLatency < irq.MinLatency {
				t.Fatalf("bad normalized window [%d, %d]", irq.MinLatency, irq.MaxLatency)
			}
			if tc.wantForks && irq.IRQForks == 0 {
				t.Fatal("symbolic arrival window produced no IRQ forks")
			}
			if !tc.wantForks && irq.IRQForks != 0 {
				t.Fatalf("deterministic arrival forked %d times", irq.IRQForks)
			}
			if irq.ISRPeakMW <= 0 {
				t.Fatal("no ISR cycle was ever attributed (ISRPeakMW == 0)")
			}
			if irq.ISRPeakMW > res.PeakPowerMW {
				t.Fatalf("ISR peak %.4f mW exceeds global peak %.4f mW", irq.ISRPeakMW, res.PeakPowerMW)
			}
			if err := res.VerifyHash(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestInterruptEngineDifferential is the packed-vs-scalar oracle check
// for the interrupt path: both engines must produce byte-identical
// sealed Reports for an ISR benchmark with symbolic arrival forks.
func TestInterruptEngineDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("scalar engine is slow; skipping in -short")
	}
	a := analyzer(t)
	marshal := func(e Engine) []byte {
		t.Helper()
		res, err := a.AnalyzeBench(context.Background(), "adcSample", WithEngine(e), WithCOI(4))
		if err != nil {
			t.Fatalf("engine %s: %v", e, err)
		}
		rep := res.Report
		rep.Engine = "" // the one field that legitimately differs
		rep.Seal()
		data, err := json.Marshal(&rep)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	packed := marshal(EnginePacked)
	scalar := marshal(EngineScalar)
	if !bytes.Equal(packed, scalar) {
		t.Fatalf("packed and scalar engines disagree on adcSample:\npacked: %s\nscalar: %s", packed, scalar)
	}
}

// TestInterruptDeterminism asserts byte-reproducibility: two independent
// analyses of the same ISR benchmark seal to identical JSON.
func TestInterruptDeterminism(t *testing.T) {
	a := analyzer(t)
	run := func() []byte {
		res, err := a.AnalyzeBench(context.Background(), "sensorDuty")
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(&res.Report)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if x, y := run(), run(); !bytes.Equal(x, y) {
		t.Fatalf("repeated interrupt analysis is not byte-reproducible:\n%s\n%s", x, y)
	}
}

// TestDecodeV1Report pins backward compatibility: a version-1 report
// (pre-interrupt schema) must still decode, with a nil Interrupts
// section.
func TestDecodeV1Report(t *testing.T) {
	v1 := &Report{
		Schema:      1,
		Target:      "ulp430",
		App:         "legacy",
		Library:     "ULP65",
		FeatureNM:   65,
		ClockHz:     100e6,
		Engine:      "packed",
		PeakPowerMW: 1.25,
		COIs:        []COI{{Cycle: 10, PowerMW: 1.25, Instr: "mov", PrevInstr: "add", State: "EXEC"}},
	}
	v1.Seal()
	data, err := json.Marshal(v1)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "interrupts") || strings.Contains(string(data), "in_isr") {
		t.Fatalf("v1-shaped report must not serialize interrupt fields: %s", data)
	}
	back, err := DecodeReport(data)
	if err != nil {
		t.Fatalf("v1 report no longer decodes: %v", err)
	}
	if back.Schema != 1 || back.Interrupts != nil {
		t.Fatalf("v1 decode corrupted: schema=%d interrupts=%+v", back.Schema, back.Interrupts)
	}

	bad := *back
	bad.Schema = SchemaVersion + 1
	bad.Seal()
	future, _ := json.Marshal(&bad)
	if _, err := DecodeReport(future); err == nil {
		t.Fatal("future schema version must be rejected")
	}
}
