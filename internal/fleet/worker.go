package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/symx"
	"repro/internal/ulp430"
	"repro/peakpower"
)

// WorkerConfig configures a fleet worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (e.g. http://host:8080).
	Coordinator string
	// ID identifies this worker in leases and /readyz; required.
	ID string
	// Plan resolves leased job specs; required. It must resolve
	// identically to the coordinator's PlanFunc.
	Plan PlanFunc
	// Poll is the idle sleep between lease attempts. Default 250ms.
	Poll time.Duration
	// Client is the HTTP client; nil uses a 30s-timeout default.
	Client *http.Client
	// Logf logs worker events; nil discards.
	Logf func(format string, args ...any)
}

// Worker executes leased exploration tasks against a coordinator. Each
// worker holds one private System/sink pair per job it has seen, reused
// across that job's tasks; the sink's process-local candidate floor only
// tightens over a job's lifetime, which is lossless (see
// peakpower.ExplorePlan.NewWorker).
type Worker struct {
	cfg WorkerConfig
	ttl time.Duration

	jobs map[string]*jobRuntime
}

// jobRuntime is a worker's cached per-job execution state.
type jobRuntime struct {
	plan *peakpower.ExplorePlan
	sys  *ulp430.System
	sink symx.WorkerSink
}

// NewWorker builds a fleet worker. cfg.Coordinator, cfg.ID and cfg.Plan
// are required.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Poll <= 0 {
		cfg.Poll = 250 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Worker{cfg: cfg, jobs: map[string]*jobRuntime{}}
}

// post sends one fleet RPC and decodes a 200 response into out (when
// non-nil). It returns the HTTP status; transport failures return
// status 0 and the error.
func (w *Worker) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// register joins the fleet, retrying with backoff until the coordinator
// answers (it may not be up yet) or ctx ends.
func (w *Worker) register(ctx context.Context) error {
	backoff := 250 * time.Millisecond
	for {
		var resp RegisterResponse
		status, err := w.post(ctx, "/v1/fleet/register", RegisterRequest{Worker: w.cfg.ID}, &resp)
		if err == nil && status == http.StatusOK {
			w.ttl = time.Duration(resp.LeaseTTLMS) * time.Millisecond
			if w.ttl <= 0 {
				w.ttl = 10 * time.Second
			}
			w.cfg.Logf("fleet: joined %s (lease ttl %v)", w.cfg.Coordinator, w.ttl)
			return nil
		}
		if err != nil {
			w.cfg.Logf("fleet: register: %v (retrying)", err)
		} else {
			w.cfg.Logf("fleet: register: HTTP %d (retrying)", status)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// runtime resolves (building and caching on first use) the worker's
// execution state for a job.
func (w *Worker) runtime(ctx context.Context, jobID string, spec json.RawMessage) (*jobRuntime, error) {
	if rt, ok := w.jobs[jobID]; ok {
		return rt, nil
	}
	plan, err := w.cfg.Plan(ctx, spec)
	if err != nil {
		return nil, err
	}
	sys, sink, err := plan.NewWorker()
	if err != nil {
		return nil, err
	}
	rt := &jobRuntime{plan: plan, sys: sys, sink: sink}
	w.jobs[jobID] = rt
	return rt, nil
}

// Run registers with the coordinator and executes leased tasks until
// ctx ends. It only returns ctx's error: task-level failures are
// reported to the coordinator (failing the job there) and lost leases
// are abandoned silently — the worker itself stays up.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var leaseResp LeaseResponse
		status, err := w.post(ctx, "/v1/fleet/lease", LeaseRequest{Worker: w.cfg.ID}, &leaseResp)
		if err != nil || status != http.StatusOK {
			if err != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.cfg.Poll):
			}
			continue
		}
		w.runTask(ctx, &leaseResp)
	}
}

// runTask executes one leased task end to end: heartbeats for its
// lease, claims its forks, and reports its completion or failure.
func (w *Worker) runTask(ctx context.Context, l *LeaseResponse) {
	rt, err := w.runtime(ctx, l.JobID, l.Spec)
	if err != nil {
		// A worker that cannot rebuild the job's plan fails the job: the
		// two sides' PlanFuncs are supposed to resolve identically, so
		// this is a deployment error, not a transient.
		w.complete(ctx, l, CompleteRequest{Error: err.Error(), ErrKind: errKind(err)})
		return
	}

	ttl := time.Duration(l.LeaseTTLMS) * time.Millisecond
	if ttl <= 0 {
		ttl = w.ttl
	}
	taskCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Heartbeat until the task ends; a 410 means the lease was lost
	// (expired and re-issued) and the task must stop — its replacement
	// incarnation owns the subtree now.
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		tick := ttl / 3
		if tick < 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-taskCtx.Done():
				return
			case <-t.C:
				status, err := w.post(taskCtx, "/v1/fleet/heartbeat",
					HeartbeatRequest{Worker: w.cfg.ID, JobID: l.JobID, TaskID: l.Task.ID}, nil)
				if err == nil && status == http.StatusGone {
					w.cfg.Logf("fleet: job %s task %d lease lost", l.JobID, l.Task.ID)
					cancel()
					return
				}
			}
		}
	}()

	claimer := &httpClaimer{w: w, ctx: taskCtx, jobID: l.JobID}
	res, err := symx.RunRemoteTask(rt.sys, rt.sink, rt.plan.ExploreOptions(taskCtx), rt.plan.Codec(), l.Task, claimer, l.BaseCycles, l.BaseNodes)
	cancel()
	hb.Wait()

	switch {
	case err == nil:
		w.complete(ctx, l, CompleteRequest{Result: res})
	case errors.Is(err, symx.ErrStaleTask):
		// The coordinator disowned the task mid-flight; abandon.
	case taskCtx.Err() != nil && ctx.Err() == nil:
		// Lease lost (heartbeat 410): the replacement incarnation will
		// redo the work; abandon silently.
	case ctx.Err() != nil:
		// Worker shutting down; the lease expires and the task is
		// re-issued elsewhere.
	default:
		w.complete(ctx, l, CompleteRequest{Error: err.Error(), ErrKind: errKind(err)})
	}
}

// complete posts a completion with retries (transport errors only —
// completions are idempotent and first-wins on the coordinator).
func (w *Worker) complete(ctx context.Context, l *LeaseResponse, req CompleteRequest) {
	req.Worker = w.cfg.ID
	req.JobID = l.JobID
	req.TaskID = l.Task.ID
	for attempt := 0; attempt < 4; attempt++ {
		var resp CompleteResponse
		status, err := w.post(ctx, "/v1/fleet/complete", req, &resp)
		if err == nil {
			if status == http.StatusOK && !resp.Accepted {
				w.cfg.Logf("fleet: job %s task %d completion superseded", l.JobID, l.Task.ID)
			}
			return // 410/4xx/5xx: nothing useful left to do with the task
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Duration(attempt+1) * 100 * time.Millisecond):
		}
	}
	w.cfg.Logf("fleet: job %s task %d completion undeliverable", l.JobID, l.Task.ID)
}

// httpClaimer forwards a task's fork claims to the coordinator.
// Transport errors retry (claims are idempotent on (parent, seq)); a
// 410 surfaces as symx.ErrStaleTask, aborting the task.
type httpClaimer struct {
	w     *Worker
	ctx   context.Context
	jobID string
}

func (c *httpClaimer) Claim(key symx.ForkKey, parent, seq int, child symx.RemoteTask) (symx.RemoteClaim, error) {
	req := ClaimRequest{Worker: c.w.cfg.ID, JobID: c.jobID, Key: key.Lo, Key2: key.Hi, Parent: parent, Seq: seq, Child: child}
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		var cl symx.RemoteClaim
		status, err := c.w.post(c.ctx, "/v1/fleet/claim", req, &cl)
		switch {
		case err != nil:
			lastErr = err
		case status == http.StatusOK:
			return cl, nil
		case status == http.StatusGone:
			return symx.RemoteClaim{}, symx.ErrStaleTask
		default:
			lastErr = fmt.Errorf("fleet: claim: HTTP %d", status)
		}
		select {
		case <-c.ctx.Done():
			return symx.RemoteClaim{}, c.ctx.Err()
		case <-time.After(time.Duration(attempt+1) * 100 * time.Millisecond):
		}
	}
	return symx.RemoteClaim{}, lastErr
}
