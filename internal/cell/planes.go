package cell

import "repro/internal/logic"

// EvalPlanes is the word-parallel counterpart of Eval: it computes the
// three-valued output of up to 64 same-kind cells at once over the
// bit-plane encoding of package logic (value plane / known plane,
// canonical v&^k == 0). Lane i of the result is Eval applied to lane i
// of the inputs.
//
// For combinational kinds the q planes are ignored; for DFF variants
// (qv, qk) is the current state and the result is the next-state
// function, exactly as in Eval. Unused input pins may be passed as
// (0, 0) — all-X — since, as in Eval, they are ignored.
func EvalPlanes(kind Kind, av, ak, bv, bk, cv, ck, qv, qk uint64) (v, k uint64) {
	switch kind {
	case Tie0:
		return 0, ^uint64(0)
	case Tie1:
		return ^uint64(0), ^uint64(0)
	case Inv:
		return logic.PlaneNot(av, ak)
	case Buf:
		return av, ak
	case Nand2:
		return logic.PlaneNand(av, ak, bv, bk)
	case Nor2:
		return logic.PlaneNor(av, ak, bv, bk)
	case And2:
		return logic.PlaneAnd(av, ak, bv, bk)
	case Or2:
		return logic.PlaneOr(av, ak, bv, bk)
	case Xor2:
		return logic.PlaneXor(av, ak, bv, bk)
	case Xnor2:
		return logic.PlaneXnor(av, ak, bv, bk)
	case Mux2:
		return logic.PlaneMux(av, ak, bv, bk, cv, ck)
	case Dff:
		return av, ak
	case Dffr:
		// b = RST (sync, active high). Next state is 0 when RST is a
		// known 1 or D is a known 0 (reset or not, the state becomes 0);
		// 1 only when RST is a known 0 and D a known 1; else X.
		zero := bv | (ak &^ av)
		one := (bk &^ bv) & av
		return one, one | zero
	case Dffre:
		// b = RST, c = EN. The held-or-captured value is Mux(EN, q, D);
		// then the same reset collapse as Dffr applies to it.
		mv, mk := logic.PlaneMux(cv, ck, qv, qk, av, ak)
		zero := bv | (mk &^ mv)
		one := (bk &^ bv) & mv
		return one, one | zero
	}
	panic("cell: EvalPlanes on invalid kind")
}
