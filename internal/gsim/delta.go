package gsim

import "math/bits"

// Copy-on-write fork snapshots. A full packed Snapshot copies four
// plane arrays per fork; deep exploration trees fork every few cycles
// in tight loops, where only a handful of words changed since the last
// fork. A DeltaSnapshot instead records the simulator's state as a
// word-delta against a shared immutable anchor: fork cost becomes
// O(words changed since the anchor), not O(nets).
//
// The invariant that makes this sound (DESIGN.md "Memoization and
// copy-on-write soundness"): whenever p.anchor is non-nil, every plane
// word (in any of curV/curK/prevV/prevK) that differs from the anchor
// has its bit set in p.since. Maintenance:
//
//   - reAnchor copies the current planes into a fresh anchor and
//     records d0, the word mask where cur differs from prev; since
//     resets to zero (the planes equal the anchor exactly).
//   - Each Step ends with since |= dirty | d0: current-plane changes
//     are exactly the dirty words, and the prev <- cur latch can only
//     introduce a prev-vs-anchorPrev difference where the old cur
//     already differed from anchorCur (already in since) or where the
//     anchor's own cur and prev differ (d0).
//   - A full Restore keeps the anchor only when the snapshot was taken
//     against the same anchor at the same epoch — i.e. since has only
//     grown since the capture, so the restored words' anchor diffs are
//     still covered. Anything else (a portable state from another
//     process, a pre-anchor snapshot) nils the anchor; the next fork
//     capture re-anchors.
//   - Restoring a delta resets since (it shrinks to exactly the
//     delta's words), so the epoch increments, invalidating older
//     same-anchor full snapshots.
//
// Anchors are immutable once created and may be shared by any number
// of live DeltaSnapshots; restoring a delta whose anchor is not the
// simulator's current one falls back to a full-plane copy from the
// delta's own anchor and adopts it.

// planeAnchor is an immutable full-plane capture that deltas reference.
type planeAnchor struct {
	curV, curK   []uint64
	prevV, prevK []uint64
	d0           []uint64 // word mask: cur != prev at anchor time
}

// DeltaSnapshot is a compact restorable capture of packed-engine state:
// a shared anchor plus the plane words that differ from it (four values
// per word: curV, curK, prevV, prevK), along with the same cycle/staged
// metadata a full Snapshot carries.
type DeltaSnapshot struct {
	anchor  *planeAnchor
	words   []int32
	quads   []uint64
	settled bool
	staged  []stagedInput
	cycle   uint64
}

// Words reports how many plane words the delta carries — the fork-cost
// observable (tests assert deltas stay small in tight loops).
func (d *DeltaSnapshot) Words() int { return len(d.words) }

// CloneInto deep-copies d into dst, reusing dst's buffers. The anchor
// is shared, not copied: anchors are immutable by construction.
func (d *DeltaSnapshot) CloneInto(dst *DeltaSnapshot) {
	dst.anchor = d.anchor
	dst.words = append(dst.words[:0], d.words...)
	dst.quads = append(dst.quads[:0], d.quads...)
	dst.settled = d.settled
	dst.staged = append(dst.staged[:0], d.staged...)
	dst.cycle = d.cycle
}

// reAnchor makes the current planes the new anchor. O(Words), amortized
// across the cheap delta captures that follow.
func (p *packedSim) reAnchor() {
	a := &planeAnchor{
		curV:  append([]uint64(nil), p.curV...),
		curK:  append([]uint64(nil), p.curK...),
		prevV: append([]uint64(nil), p.prevV...),
		prevK: append([]uint64(nil), p.prevK...),
		d0:    make([]uint64, len(p.dirty)),
	}
	for w := range p.curV {
		if p.curV[w] != p.prevV[w] || p.curK[w] != p.prevK[w] {
			a.d0[w>>6] |= 1 << uint(w&63)
		}
	}
	p.anchor = a
	if p.since == nil {
		p.since = make([]uint64, len(p.dirty))
	} else {
		for i := range p.since {
			p.since[i] = 0
		}
	}
	p.epoch++
}

// sinceDense reports whether the since set has grown past the point
// where a delta stops being cheaper than a fresh anchor.
func (p *packedSim) sinceDense() bool {
	n := 0
	for _, m := range p.since {
		n += bits.OnesCount64(m)
	}
	return n > len(p.curV)/4
}

// CaptureDelta captures the current state as a copy-on-write delta into
// dst, reusing dst's buffers. It returns false on the scalar engine,
// where the caller must fall back to a full snapshot.
func (s *Simulator) CaptureDelta(dst *DeltaSnapshot) bool {
	p := s.pk
	if p == nil {
		return false
	}
	if p.anchor == nil || p.sinceDense() {
		p.reAnchor()
	}
	a := p.anchor
	dst.anchor = a
	dst.words = dst.words[:0]
	dst.quads = dst.quads[:0]
	for i, m := range p.since {
		base := int32(i) << 6
		for m != 0 {
			w := base + int32(bits.TrailingZeros64(m))
			m &= m - 1
			cv, ck, pv, pk := p.curV[w], p.curK[w], p.prevV[w], p.prevK[w]
			if cv != a.curV[w] || ck != a.curK[w] || pv != a.prevV[w] || pk != a.prevK[w] {
				dst.words = append(dst.words, w)
				dst.quads = append(dst.quads, cv, ck, pv, pk)
			}
		}
	}
	dst.settled = p.settled
	dst.staged = append(dst.staged[:0], s.staged...)
	dst.cycle = s.cycle
	return true
}

// RestoreDelta rewinds the simulator to a delta capture. Semantics
// match Restore of the materialized full snapshot exactly: planes,
// settled, staged, cycle restored; activity flags zeroed; the cached
// energy bound invalidated.
func (s *Simulator) RestoreDelta(d *DeltaSnapshot) {
	p := s.pk
	if p == nil {
		panic("gsim: RestoreDelta on scalar engine")
	}
	a := d.anchor
	if p.anchor == a {
		// Revert every word that may differ from the shared anchor,
		// then lay the delta over it. A delta word absent from the
		// current since set already equals the anchor (the invariant),
		// so the overwrite below is the only change it needs.
		for i, m := range p.since {
			base := int32(i) << 6
			for m != 0 {
				w := base + int32(bits.TrailingZeros64(m))
				m &= m - 1
				p.curV[w] = a.curV[w]
				p.curK[w] = a.curK[w]
				p.prevV[w] = a.prevV[w]
				p.prevK[w] = a.prevK[w]
			}
		}
	} else {
		copy(p.curV, a.curV)
		copy(p.curK, a.curK)
		copy(p.prevV, a.prevV)
		copy(p.prevK, a.prevK)
		p.anchor = a
		if p.since == nil {
			p.since = make([]uint64, len(p.dirty))
		}
	}
	for i := range p.since {
		p.since[i] = 0
	}
	for j, w := range d.words {
		q := d.quads[4*j:]
		p.curV[w], p.curK[w], p.prevV[w], p.prevK[w] = q[0], q[1], q[2], q[3]
		p.since[w>>6] |= 1 << uint(w&63)
	}
	p.epoch++ // since shrank: older same-anchor full snapshots are stale
	p.settled = d.settled
	p.boundValid = false
	p.actValid = false
	for i := range p.act {
		p.act[i] = 0
	}
	s.staged = append(s.staged[:0], d.staged...)
	s.cycle = d.cycle
}

// MaterializeInto expands the delta into a full Snapshot (for portable
// captures that must cross process boundaries), reusing sn's buffers.
func (d *DeltaSnapshot) MaterializeInto(sn *Snapshot) {
	a := d.anchor
	sn.PlaneV = append(sn.PlaneV[:0], a.curV...)
	sn.PlaneK = append(sn.PlaneK[:0], a.curK...)
	sn.PrevPlaneV = append(sn.PrevPlaneV[:0], a.prevV...)
	sn.PrevPlaneK = append(sn.PrevPlaneK[:0], a.prevK...)
	for j, w := range d.words {
		q := d.quads[4*j:]
		sn.PlaneV[w], sn.PlaneK[w] = q[0], q[1]
		sn.PrevPlaneV[w], sn.PrevPlaneK[w] = q[2], q[3]
	}
	sn.Vals = sn.Vals[:0]
	sn.Prev = sn.Prev[:0]
	sn.Settled = d.settled
	sn.Staged = append(sn.Staged[:0], d.staged...)
	sn.Cycle = d.cycle
	// The materialized snapshot's relationship to any live anchor is
	// unknown to a future restorer; force conservative invalidation.
	sn.anchor = nil
	sn.epoch = 0
}
