package main

import (
	"bytes"
	"crypto/hmac"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestWebhookDeliverySigned: a job submitted with callback_url receives
// exactly the GET /v1/jobs/{id} terminal body as a webhook POST, and the
// X-Peakpower-Signature header HMAC-verifies against the shared secret.
func TestWebhookDeliverySigned(t *testing.T) {
	const secret = "s3cret"
	type delivery struct {
		body []byte
		sig  string
		job  string
	}
	got := make(chan delivery, 1)
	recv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		got <- delivery{
			body: body,
			sig:  r.Header.Get(webhookSignatureHeader),
			job:  r.Header.Get("X-Peakpower-Job"),
		}
	}))
	defer recv.Close()

	ts, _ := newTestServerCfg(t, serverConfig{cacheSize: 16, timeout: time.Minute, webhookSecret: secret})
	req := `{"target":"ulp430","name":"served","source":` + mustJSON(testApp) + `,
		"options":{"max_cycles":100000,"coi":4},"callback_url":"` + recv.URL + `"}`
	code, _, body := postJob(t, ts.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	st := pollJob(t, ts.URL, acc.ID, 60*time.Second)
	if st.State != "done" {
		t.Fatalf("job: %+v", st)
	}

	var d delivery
	select {
	case d = <-got:
	case <-time.After(15 * time.Second):
		t.Fatal("webhook never delivered")
	}
	if d.job != acc.ID {
		t.Fatalf("X-Peakpower-Job = %q, want %q", d.job, acc.ID)
	}
	// The receiver-side verification the header exists for: recompute the
	// HMAC over the raw body with the shared secret, constant-time compare.
	if want := signWebhook(secret, d.body); !hmac.Equal([]byte(d.sig), []byte(want)) {
		t.Fatalf("signature %q does not verify (want %q)", d.sig, want)
	}
	var payload jobStatusResponse
	if err := json.Unmarshal(d.body, &payload); err != nil {
		t.Fatalf("delivery body: %v (%s)", err, d.body)
	}
	if payload.ID != acc.ID || payload.State != "done" {
		t.Fatalf("delivery payload: %+v", payload)
	}
	if !bytes.Equal(payload.Report, st.Report) {
		t.Fatalf("webhook report differs from polled report")
	}
}

// TestWebhookURLValidation: a bad callback_url is rejected at submission
// (400), never accepted to fail silently later.
func TestWebhookURLValidation(t *testing.T) {
	ts, srv := newTestServer(t)
	for _, cb := range []string{"notaurl", "ftp://host/x", "http://", "://x"} {
		code, _, body := postJob(t, ts.URL, `{"bench":"mult","callback_url":"`+cb+`"}`)
		if code != http.StatusBadRequest {
			t.Errorf("callback_url %q: %d %s", cb, code, body)
		}
	}
	if st := srv.jobs.stats(); st.QueueDepth != 0 {
		t.Fatalf("rejected submissions queued: %+v", st)
	}
}

// TestWebhookBackoffBounds table-tests the retry schedule: every attempt
// — including absurdly large ones that would overflow a naive shift —
// yields a wait inside [deterministic base, 2*base], never zero or
// negative (rand.Int63n panics on a non-positive argument).
func TestWebhookBackoffBounds(t *testing.T) {
	const cap = 30 * time.Second
	cases := []struct {
		attempt int
		base    time.Duration
	}{
		{1, 250 * time.Millisecond},
		{2, 500 * time.Millisecond},
		{3, time.Second},
		{4, 2 * time.Second},
		{8, cap},
		{62, cap},
		{63, cap}, // 250ms << 62 overflows int64
		{1 << 20, cap},
	}
	for _, tc := range cases {
		for i := 0; i < 100; i++ {
			d := webhookBackoff(tc.attempt)
			if d < tc.base || d >= 2*tc.base {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v)", tc.attempt, d, tc.base, 2*tc.base)
			}
		}
	}
}
