package bench

import "repro/internal/periph"

// The ISR suite: interrupt-driven sensor-node kernels exercising the
// peripheral bus (timer compare, ADC with a symbolic arrival window,
// radio busy flag), interrupt entry, handler execution, and RETI. The
// peripheral register addresses and bit layout are internal/periph's
// (timer 0x0140.., ADC 0x0150.., radio 0x0160..; ctl bits EN|IE|IFG);
// the interrupt vectors live at 0xFFF8 (timer) and 0xFFFA (ADC).

// isrVectors emits both device vectors; benchmarks that use only one
// device still provide both (the unused one points at a spin guard, so a
// spurious entry is caught as a non-halting run rather than wild
// execution).
const isrVectors = `
.org 0xfff8
.word timer_isr
.word adc_isr
`

var isrSuite = []*Benchmark{
	{
		Name:  "timerCount",
		Suite: "ISR",
		Desc:  "timer-compare interrupt ticks a counter while the main loop multiplies; deterministic arrival (no forks)",
		Source: prologue + `
.org 0xf100
.entry main
main:
` + setup + `
    clr r10               ; ticks delivered
    clr r8                ; accumulator
    mov #1, r9            ; multiplier operand
    mov #20, &0x0144      ; TACCR: compare in 20 cycles
    mov #3, &0x0140       ; TACTL: EN|IE - arm one-shot
    eint
wait:
    cmp #3, r10
    jz  done
    mov r9, &0x0130       ; MPY
    mov r9, &0x0138       ; OP2 (triggers multiply)
    add &0x013a, r8       ; RESLO
    inc r9
    jmp wait
done:
    dint
    mov r8, r11
` + epilogue + `
timer_isr:
    inc r10
    mov #0, &0x0142       ; TACNT: restart the count (one-shot holds it)
    mov #20, &0x0144      ; re-arm for the next tick
    mov #3, &0x0140
    reti
adc_isr:
    reti
` + isrVectors,
		MaxCycles: 20_000,
		IRQ:       &periph.Config{},
	},
	{
		Name:  "adcSample",
		Suite: "ISR",
		Desc:  "ADC conversion with a symbolic arrival window; the idle loop forks at every interruptible boundary in the window",
		Source: prologue + `
.org 0xf100
.entry main
main:
` + setup + `
    clr r10               ; conversion-complete flag
    mov #3, &0x0150       ; ADCTL: EN|IE - start conversion
    eint
idle:
    tst r10
    jz  idle              ; arrival can preempt either instruction
    dint
    mov r11, r12          ; consume the (unknown) sample
` + epilogue + `
timer_isr:
    reti
adc_isr:
    mov &0x0154, r11      ; ADDATA: X under symbolic analysis
    mov #1, r10
    reti
` + isrVectors,
		MaxCycles: 50_000,
		IRQ:       &periph.Config{MinLatency: 8, MaxLatency: 20},
	},
	{
		Name:  "sensorDuty",
		Suite: "ISR",
		Desc:  "full duty cycle: timer kicks the ADC, the ADC handler reads the sample and fires the radio; two rounds",
		Source: prologue + `
.org 0xf100
.entry main
main:
` + setup + `
    clr r10               ; samples transmitted
    mov #16, &0x0144      ; TACCR
    mov #3, &0x0140       ; TACTL: EN|IE
    eint
wait:
    cmp #2, r10
    jnz wait
    dint
` + epilogue + `
timer_isr:
    mov #3, &0x0150       ; ADCTL: start conversion (completes after RETI)
    reti
adc_isr:
    mov &0x0154, r11      ; sample (X under symbolic analysis)
    mov &0x0162, r12      ; RFSTAT: busy flag from the previous round
    mov #1, &0x0160       ; RFCTL: transmit
    inc r10
    mov #0, &0x0142       ; TACNT: restart the count
    mov #16, &0x0144      ; schedule the next duty cycle
    mov #3, &0x0140
    reti
` + isrVectors,
		MaxCycles: 100_000,
		IRQ:       &periph.Config{MinLatency: 8, MaxLatency: 16},
	},
}
