// Deterministic reduction for parallel symbolic exploration.
//
// In task mode (EnableTasks) a Sink serves one worker of
// symx.ExploreParallel. The per-cycle quantities whose reduction is
// order-insensitive fold locally exactly as in sequential mode: the
// activity union is a set union, ISRPeakMW a plain maximum, and the
// power trace itself is stored per segment on the tree. The
// order-SENSITIVE reductions — Best (strict-> fold, so a tie keeps the
// first cycle in sequential order, with its attribution metadata) and
// TopK (an insertion process whose displacement decisions depend on
// arrival order) — cannot be folded live without making the Report
// depend on worker interleaving. Instead each observation that could
// matter is materialized at observation time as a candidate tagged with
// its (task, stream) coordinates, and MergeParallel replays all
// candidates in canonical order — ascending (final tree-node ID,
// within-task stream index), which is exactly the order the sequential
// engine visits observations in — through the very same fold/insertion
// code, reproducing the sequential Best and TopK bit for bit.
//
// The candidate filters are provably lossless:
//
//   - Within one tree segment, canonical order equals the task's own
//     emission order (a segment is explored in one contiguous run), so
//     an observation preceded in its segment by one of equal-or-higher
//     power (same fetch address, for TopK) can never beat it in the
//     canonical fold — only strict per-segment records are kept. For
//     TopK this needs the insertion process's monotonicity: the list
//     minimum never decreases and a per-address entry never decreases,
//     so an observation dominated by an earlier same-segment same-address
//     one is a no-op wherever it lands in the replay.
//   - For Best, a shared monotone floor (the highest power any worker
//     has observed so far) additionally prunes candidates strictly below
//     it: the floor is always <= the final maximum, and only
//     observations attaining the final maximum can become Best. Ties
//     with the floor are kept, so the canonically-first attaining cycle
//     — whose metadata the sequential fold would keep — always survives.
package power

import (
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/gsim"
)

// TaskSeed is the path context a mid-path exploration task inherits from
// the path prefix explored by its spawning task: the instruction fetch
// pipeline and the interrupt nesting depth as of the cycle before the
// task's first.
type TaskSeed struct {
	// Fetch and Prev are the in-flight and previous instruction fetch
	// addresses.
	Fetch, Prev uint16
	// Depth is the interrupt nesting depth.
	Depth int8
}

// Shared is the cross-worker state of one parallel exploration: a
// monotone lower bound on the final peak used to prune Best candidates.
// One Shared instance is created per exploration and handed to every
// worker's sink via EnableTasks.
type Shared struct {
	bestBits atomic.Uint64 // float64 bits; only ever raised
}

// NewShared creates the shared reduction state for one exploration.
func NewShared() *Shared { return &Shared{} }

func (sh *Shared) floor() float64 { return math.Float64frombits(sh.bestBits.Load()) }

func (sh *Shared) raise(p float64) {
	for {
		old := sh.bestBits.Load()
		if math.Float64frombits(old) >= p {
			return
		}
		if sh.bestBits.CompareAndSwap(old, math.Float64bits(p)) {
			return
		}
	}
}

// PeakCand is a candidate peak observation awaiting the canonical merge,
// tagged with the coordinates that define its canonical position.
type PeakCand struct {
	// Peak is the observation, fully materialized at observation time
	// (module split, and the active-cell list for Best candidates).
	Peak Peak
	// Task and Stream locate the observation: the exploration task that
	// made it and its index in that task's observation stream.
	Task, Stream int
}

// EnableTasks switches the sink into task mode for one parallel
// exploration. Must be called before any observation; shared must be the
// exploration's common Shared instance.
func (s *Sink) EnableTasks(shared *Shared) {
	s.taskMode = true
	s.shared = shared
	s.segAddrMax = make(map[uint16]float64)
}

// BeginTask implements symx.WorkerSink: reset per-path state for a task
// rooted at absolute position basePos. seed is a TaskSeed (nil for the
// root task).
func (s *Sink) BeginTask(task, basePos int, seed interface{}) {
	s.task = task
	s.base = basePos
	s.stream = 0
	s.Trace = s.Trace[:0]
	s.fetches = s.fetches[:0]
	s.isrDepth = s.isrDepth[:0]
	if seed != nil {
		s.seed = seed.(TaskSeed)
	} else {
		s.seed = TaskSeed{}
	}
	if s.ckpt {
		s.taskBest0 = len(s.bestCands)
		s.taskTopk0 = len(s.topkCands)
		s.taskISR = 0
		for i := range s.taskAccum {
			s.taskAccum[i] = 0
		}
		s.taskActive = s.taskActive[:0]
	}
	s.NewSegment()
}

// EndTask implements symx.WorkerSink. Candidates are recorded as they
// arise, so there is nothing to flush.
func (s *Sink) EndTask() {}

// NewSegment implements symx.WorkerSink: reset the per-segment candidate
// filters at a tree-segment boundary.
func (s *Sink) NewSegment() {
	s.segBest = 0
	for a := range s.segAddrMax {
		delete(s.segAddrMax, a)
	}
}

// SpawnSeed implements symx.WorkerSink: the path context just before
// absolute position pos, used to seed a task resuming there.
func (s *Sink) SpawnSeed(pos int) interface{} {
	i := pos - s.base - 1
	if i < 0 {
		// The task forked on its very first cycle: pass through its own
		// inherited context.
		return s.seed
	}
	return TaskSeed{Fetch: s.fetches[i].fetch, Prev: s.fetches[i].prev, Depth: s.isrDepth[i]}
}

// recordCandidates applies the per-segment filters to one observation
// and materializes the surviving Best/TopK candidates (task mode's
// replacement for the live Best/TopK fold).
func (s *Sink) recordCandidates(p float64, pos int, fc fetchCtx, sim *gsim.Simulator) {
	segRecord := p > s.segBest
	if segRecord {
		s.segBest = p
	}
	bestKeep := segRecord && p >= s.shared.floor()
	topKeep := false
	if s.k > 0 {
		if prev, ok := s.segAddrMax[fc.fetch]; !ok || p > prev {
			s.segAddrMax[fc.fetch] = p
			topKeep = true
		}
	}
	if !bestKeep && !topKeep {
		return
	}
	pk := s.makePeak(p, pos, fc, bestKeep, sim)
	if bestKeep {
		s.shared.raise(p)
		s.bestCands = append(s.bestCands, PeakCand{Peak: pk, Task: s.task, Stream: s.curStream})
	}
	if topKeep {
		t := pk
		t.ActiveCells = nil
		s.topkCands = append(s.topkCands, PeakCand{Peak: t, Task: s.task, Stream: s.curStream})
	}
}

// MergeParallel folds the workers' sinks into the sequential result:
// Best and TopK by canonical-order replay of the recorded candidates
// through the sequential fold/insertion code, ISRPeakMW by maximum, and
// the activity union by set union. nodeID resolves a candidate's (task,
// stream) coordinates to its final tree-node ID (symx.ParallelResult
// provides it); k is the TopK capacity and must match the sinks'.
func MergeParallel(sinks []*Sink, k int, nodeID func(task, stream int) int) (best Peak, topK []Peak, isrPeakMW float64, union []bool) {
	// No replayed blobs, so the replay-capable form cannot fail.
	best, topK, isrPeakMW, union, _ = MergeParallelReplay(sinks, k, nodeID, nil)
	return best, topK, isrPeakMW, union
}

// sortCanonical orders candidates by (final node ID, stream index) —
// sequential observation order. Keys are unique within one candidate
// list: a node's observations belong to exactly one task, and a task
// records at most one candidate per observation per list.
func sortCanonical(cs []PeakCand, nodeID func(task, stream int) int) {
	sort.Slice(cs, func(i, j int) bool {
		ni, nj := nodeID(cs[i].Task, cs[i].Stream), nodeID(cs[j].Task, cs[j].Stream)
		if ni != nj {
			return ni < nj
		}
		return cs[i].Stream < cs[j].Stream
	})
}
