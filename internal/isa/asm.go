package isa

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Region is a contiguous word range in the address space.
type Region struct {
	// Addr is the starting byte address (even).
	Addr uint16
	// Words is the region length in 16-bit words.
	Words int
}

// Image is an assembled application binary plus the side-band metadata
// the co-analysis consumes: which memory words are application inputs
// (initialized to X by symbolic simulation, to concrete values by
// profiling) and user-supplied loop bounds for peak-energy analysis
// (Section 3.3: "the maximum number of iterations may be determined
// either by static analysis or user input").
type Image struct {
	// Name identifies the program.
	Name string
	// Words maps even byte addresses to initialized 16-bit words.
	Words map[uint16]uint16
	// Entry is the address the reset vector points to.
	Entry uint16
	// Inputs are the declared application-input regions.
	Inputs []Region
	// LoopBounds maps a branch-instruction address to the maximum number
	// of times the backward path through it can be taken.
	LoopBounds map[uint16]int
	// Symbols maps labels and .equ names to values.
	Symbols map[string]uint16
	// Listing records, per emitted instruction, its address and source.
	Listing []ListingEntry
}

// ListingEntry ties an emitted instruction to its source line.
type ListingEntry struct {
	// Addr is the instruction's byte address.
	Addr uint16
	// Words is the encoded instruction.
	Words []uint16
	// Line is the 1-based source line number.
	Line int
	// Source is the trimmed source text.
	Source string
}

// ResetVector is the address of the reset vector word.
const ResetVector = 0xFFFE

// SourceLine returns the source text of the instruction at addr, or "".
func (im *Image) SourceLine(addr uint16) string {
	for _, le := range im.Listing {
		if le.Addr == addr {
			return le.Source
		}
	}
	return ""
}

// Clone returns a deep copy of the image (used by binary-rewriting
// optimizations).
func (im *Image) Clone() *Image {
	c := &Image{
		Name:       im.Name,
		Words:      make(map[uint16]uint16, len(im.Words)),
		Entry:      im.Entry,
		Inputs:     append([]Region(nil), im.Inputs...),
		LoopBounds: make(map[uint16]int, len(im.LoopBounds)),
		Symbols:    make(map[string]uint16, len(im.Symbols)),
		Listing:    append([]ListingEntry(nil), im.Listing...),
	}
	for k, v := range im.Words {
		c.Words[k] = v
	}
	for k, v := range im.LoopBounds {
		c.LoopBounds[k] = v
	}
	for k, v := range im.Symbols {
		c.Symbols[k] = v
	}
	return c
}

// InInput reports whether byte address a falls inside an input region.
func (im *Image) InInput(a uint16) bool {
	for _, r := range im.Inputs {
		if a >= r.Addr && a < r.Addr+uint16(2*r.Words) {
			return true
		}
	}
	return false
}

// operand is a parsed assembler operand.
type operand struct {
	mode  uint8 // AmReg / AmIndexed / AmIndirect / AmIndirectInc, or immediate/absolute markers below
	reg   uint8
	expr  expr
	isImm bool // #expr
	isAbs bool // &expr or bare expr
}

// expr is a deferred expression: literal, or symbol ± literal.
type expr struct {
	sym string
	lit int64
}

func (e expr) isLiteral() bool { return e.sym == "" }

type asmLine struct {
	line    int
	src     string
	label   string
	mnem    string
	ops     []operand
	dir     string
	dirArgs []string
}

type patch struct {
	addr  uint16 // address of the word to patch
	e     expr
	pcRel uint16 // if non-zero: encode as jump offset relative to this PC
	line  int
	jop   Op // jump op for range checking
}

// Assembler assembles ULP430 source text.
type Assembler struct {
	img     *Image
	symbols map[string]uint16
	pc      uint16
	errs    []string
	pending []pendingBound
}

type pendingBound struct {
	label string
	e     expr
	n     int
	line  int
}

// Assemble assembles the given source into an Image. The source must
// declare `.entry <label>`; the reset vector is emitted automatically.
func Assemble(name, src string) (*Image, error) {
	a := &Assembler{
		img: &Image{
			Name:       name,
			Words:      make(map[uint16]uint16),
			LoopBounds: make(map[uint16]int),
			Symbols:    make(map[string]uint16),
		},
		symbols: make(map[string]uint16),
	}
	lines, err := a.parse(src)
	if err != nil {
		return nil, err
	}
	// Pass 1: addresses.
	a.pc = 0
	entrySym := ""
	for _, ln := range lines {
		if ln.label != "" {
			if _, dup := a.symbols[ln.label]; dup {
				a.errorf(ln.line, "duplicate label %q", ln.label)
			}
			a.symbols[ln.label] = a.pc
		}
		switch {
		case ln.dir != "":
			sz, es := a.directiveSize(ln)
			if es != "" && ln.dir == ".entry" {
				entrySym = es
			}
			a.pc += sz
		case ln.mnem != "":
			a.pc += uint16(2 * a.instrLen(ln))
		}
	}
	if entrySym == "" {
		return nil, fmt.Errorf("%s: missing .entry directive", name)
	}
	// Pass 2: emission.
	a.pc = 0
	var patches []patch
	for _, ln := range lines {
		switch {
		case ln.dir != "":
			a.emitDirective(ln, &patches)
		case ln.mnem != "":
			a.emitInstr(ln, &patches)
		}
	}
	// Resolve patches.
	for _, p := range patches {
		v, ok := a.eval(p.e)
		if !ok {
			a.errorf(p.line, "undefined symbol %q", p.e.sym)
			continue
		}
		if p.pcRel != 0 {
			diff := int32(v) - int32(p.pcRel)
			if diff%2 != 0 {
				a.errorf(p.line, "odd jump target %#x", v)
				continue
			}
			off := diff / 2
			if off < -512 || off > 511 {
				a.errorf(p.line, "jump target out of range (%d words)", off)
				continue
			}
			w := a.img.Words[p.addr]
			a.img.Words[p.addr] = w | uint16(off)&0x3FF
		} else {
			a.img.Words[p.addr] = v
		}
	}
	// Entry + reset vector.
	ev, ok := a.symbols[entrySym]
	if !ok {
		a.errorf(0, "entry label %q undefined", entrySym)
	}
	a.img.Entry = ev
	a.img.Words[ResetVector] = ev
	// Loop bounds.
	for _, pb := range a.pending {
		v, ok := a.eval(pb.e)
		if !ok {
			a.errorf(pb.line, "loopbound: undefined symbol %q", pb.e.sym)
			continue
		}
		a.img.LoopBounds[v] = pb.n
	}
	for k, v := range a.symbols {
		a.img.Symbols[k] = v
	}
	if len(a.errs) > 0 {
		sort.Strings(a.errs)
		return nil, fmt.Errorf("%s: %s", name, strings.Join(a.errs, "; "))
	}
	return a.img, nil
}

func (a *Assembler) errorf(line int, format string, args ...interface{}) {
	a.errs = append(a.errs, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

func (a *Assembler) parse(src string) ([]asmLine, error) {
	var out []asmLine
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		if idx := strings.IndexByte(line, ';'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		ln := asmLine{line: i + 1, src: line}
		// label?
		if idx := strings.IndexByte(line, ':'); idx >= 0 && isIdent(line[:idx]) {
			ln.label = strings.ToLower(line[:idx])
			line = strings.TrimSpace(line[idx+1:])
		}
		if line != "" {
			fields := strings.SplitN(line, " ", 2)
			head := strings.ToLower(fields[0])
			rest := ""
			if len(fields) == 2 {
				rest = strings.TrimSpace(fields[1])
			}
			if strings.HasPrefix(head, ".") {
				ln.dir = head
				if rest != "" {
					for _, f := range strings.Split(rest, ",") {
						ln.dirArgs = append(ln.dirArgs, strings.TrimSpace(f))
					}
				}
			} else {
				ln.mnem = head
				if rest != "" {
					for _, f := range splitOperands(rest) {
						op, err := a.parseOperand(strings.TrimSpace(f))
						if err != nil {
							a.errorf(ln.line, "%v", err)
							continue
						}
						ln.ops = append(ln.ops, op)
					}
				}
			}
		}
		out = append(out, ln)
	}
	return out, nil
}

// splitOperands splits at commas outside parentheses.
func splitOperands(s string) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, s[start:])
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' && i > 0) {
			return false
		}
	}
	return true
}

var regNames = map[string]uint8{
	"pc": 0, "sp": 1, "sr": 2, "cg": 3,
	"r0": 0, "r1": 1, "r2": 2, "r3": 3, "r4": 4, "r5": 5, "r6": 6, "r7": 7,
	"r8": 8, "r9": 9, "r10": 10, "r11": 11, "r12": 12, "r13": 13, "r14": 14, "r15": 15,
}

func (a *Assembler) parseOperand(s string) (operand, error) {
	low := strings.ToLower(s)
	if r, ok := regNames[low]; ok {
		return operand{mode: AmReg, reg: r}, nil
	}
	switch {
	case strings.HasPrefix(s, "#"):
		e, err := parseExpr(s[1:])
		if err != nil {
			return operand{}, err
		}
		return operand{isImm: true, expr: e}, nil
	case strings.HasPrefix(s, "&"):
		e, err := parseExpr(s[1:])
		if err != nil {
			return operand{}, err
		}
		return operand{isAbs: true, expr: e}, nil
	case strings.HasPrefix(s, "@"):
		rest := strings.ToLower(strings.TrimPrefix(s, "@"))
		inc := strings.HasSuffix(rest, "+")
		rest = strings.TrimSuffix(rest, "+")
		r, ok := regNames[rest]
		if !ok {
			return operand{}, fmt.Errorf("bad indirect register %q", s)
		}
		if inc {
			return operand{mode: AmIndirectInc, reg: r}, nil
		}
		return operand{mode: AmIndirect, reg: r}, nil
	case strings.HasSuffix(s, ")"):
		lp := strings.IndexByte(s, '(')
		if lp < 0 {
			return operand{}, fmt.Errorf("malformed indexed operand %q", s)
		}
		r, ok := regNames[strings.ToLower(strings.TrimSpace(s[lp+1:len(s)-1]))]
		if !ok {
			return operand{}, fmt.Errorf("bad index register in %q", s)
		}
		e, err := parseExpr(strings.TrimSpace(s[:lp]))
		if err != nil {
			return operand{}, err
		}
		return operand{mode: AmIndexed, reg: r, expr: e}, nil
	default:
		// Bare expression: absolute addressing (documented deviation
		// from MSP430 PC-relative symbolic mode; equivalent semantics).
		e, err := parseExpr(s)
		if err != nil {
			return operand{}, err
		}
		return operand{isAbs: true, expr: e}, nil
	}
}

func parseExpr(s string) (expr, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return expr{}, fmt.Errorf("empty expression")
	}
	// symbol±literal or literal
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			head := strings.TrimSpace(s[:i])
			if !isIdent(head) {
				break // negative literal handled below
			}
			lit, err := strconv.ParseInt(strings.TrimSpace(s[i+1:]), 0, 32)
			if err != nil {
				return expr{}, fmt.Errorf("bad expression %q", s)
			}
			if s[i] == '-' {
				lit = -lit
			}
			return expr{sym: strings.ToLower(head), lit: lit}, nil
		}
	}
	if isIdent(s) && !isNumber(s) {
		return expr{sym: strings.ToLower(s)}, nil
	}
	v, err := strconv.ParseInt(s, 0, 32)
	if err != nil {
		return expr{}, fmt.Errorf("bad expression %q", s)
	}
	return expr{lit: v}, nil
}

func isNumber(s string) bool {
	_, err := strconv.ParseInt(s, 0, 32)
	return err == nil
}

func (a *Assembler) eval(e expr) (uint16, bool) {
	if e.sym == "" {
		return uint16(e.lit), true
	}
	base, ok := a.symbols[e.sym]
	if !ok {
		return 0, false
	}
	return base + uint16(e.lit), true
}

// cgValue reports whether a literal immediate can use the constant
// generator, returning the (reg, as) encoding.
func cgValue(v int64) (reg, as uint8, ok bool) {
	switch uint16(v) {
	case 0:
		return CG, AmReg, true
	case 1:
		return CG, AmIndexed, true
	case 2:
		return CG, AmIndirect, true
	case 0xFFFF:
		return CG, AmIndirectInc, true
	case 4:
		return SR, AmIndirect, true
	case 8:
		return SR, AmIndirectInc, true
	}
	return 0, 0, false
}

// srcEncoding maps an operand to (reg, as, needsExt).
func srcEncoding(op operand) (reg, as uint8, ext bool) {
	switch {
	case op.isImm:
		if op.expr.isLiteral() {
			if r, m, ok := cgValue(op.expr.lit); ok {
				return r, m, false
			}
		}
		return PC, AmIndirectInc, true
	case op.isAbs:
		return SR, AmIndexed, true
	default:
		return op.reg, op.mode, op.mode == AmIndexed
	}
}

// dstEncoding maps an operand to (reg, ad, needsExt); only register and
// indexed/absolute are legal destinations.
func dstEncoding(op operand) (reg, ad uint8, ext bool, err error) {
	switch {
	case op.isImm:
		return 0, 0, false, fmt.Errorf("immediate destination")
	case op.isAbs:
		return SR, 1, true, nil
	case op.mode == AmReg:
		return op.reg, 0, false, nil
	case op.mode == AmIndexed:
		return op.reg, 1, true, nil
	default:
		return 0, 0, false, fmt.Errorf("indirect destination not encodable")
	}
}

// instrLen computes the instruction length in words during pass 1.
func (a *Assembler) instrLen(ln asmLine) int {
	mnem, ops, err := expandAlias(ln.mnem, ln.ops)
	if err != nil {
		return 1
	}
	if isJump(mnem) {
		return 1
	}
	n := 1
	switch len(ops) {
	case 2:
		_, _, e1 := srcEncoding(ops[0])
		if e1 {
			n++
		}
		_, _, e2, _ := dstEncoding(ops[1])
		if e2 {
			n++
		}
	case 1:
		_, _, e1 := srcEncoding(ops[0])
		if e1 {
			n++
		}
	}
	return n
}

var fmtIOps = map[string]Op{
	"mov": MOV, "add": ADD, "addc": ADDC, "subc": SUBC, "sub": SUB,
	"cmp": CMP, "bit": BIT, "bic": BIC, "bis": BIS, "xor": XOR, "and": AND,
}

var fmtIIOps = map[string]Op{
	"rrc": RRC, "swpb": SWPB, "rra": RRA, "sxt": SXT, "push": PUSH, "call": CALL,
}

var jumpOps = map[string]Op{
	"jne": JNE, "jnz": JNE, "jeq": JEQ, "jz": JEQ, "jnc": JNC, "jlo": JNC,
	"jc": JC, "jhs": JC, "jn": JN, "jge": JGE, "jl": JL, "jmp": JMP,
}

func isJump(m string) bool { _, ok := jumpOps[m]; return ok }

// expandAlias rewrites emulated mnemonics into core instructions.
func expandAlias(mnem string, ops []operand) (string, []operand, error) {
	imm := func(v int64) operand { return operand{isImm: true, expr: expr{lit: v}} }
	reg := func(r uint8) operand { return operand{mode: AmReg, reg: r} }
	switch mnem {
	case "nop":
		return "mov", []operand{reg(CG), reg(CG)}, nil
	case "pop":
		if len(ops) != 1 {
			return "", nil, fmt.Errorf("pop takes one operand")
		}
		return "mov", []operand{{mode: AmIndirectInc, reg: SP}, ops[0]}, nil
	case "ret":
		return "mov", []operand{{mode: AmIndirectInc, reg: SP}, reg(PC)}, nil
	case "br":
		if len(ops) != 1 {
			return "", nil, fmt.Errorf("br takes one operand")
		}
		return "mov", []operand{ops[0], reg(PC)}, nil
	case "clr":
		return "mov", append([]operand{imm(0)}, ops...), nil
	case "tst":
		return "cmp", append([]operand{imm(0)}, ops...), nil
	case "inc":
		return "add", append([]operand{imm(1)}, ops...), nil
	case "incd":
		return "add", append([]operand{imm(2)}, ops...), nil
	case "dec":
		return "sub", append([]operand{imm(1)}, ops...), nil
	case "decd":
		return "sub", append([]operand{imm(2)}, ops...), nil
	case "inv":
		return "xor", append([]operand{imm(-1)}, ops...), nil
	case "rla":
		if len(ops) != 1 {
			return "", nil, fmt.Errorf("rla takes one operand")
		}
		return "add", []operand{ops[0], ops[0]}, nil
	case "rlc":
		if len(ops) != 1 {
			return "", nil, fmt.Errorf("rlc takes one operand")
		}
		return "addc", []operand{ops[0], ops[0]}, nil
	case "setc":
		return "bis", []operand{imm(1), reg(SR)}, nil
	case "clrc":
		return "bic", []operand{imm(1), reg(SR)}, nil
	case "eint":
		return "bis", []operand{imm(FlagGIE), reg(SR)}, nil
	case "dint":
		return "bic", []operand{imm(FlagGIE), reg(SR)}, nil
	}
	return mnem, ops, nil
}

func (a *Assembler) emitWord(w uint16) uint16 {
	addr := a.pc
	a.img.Words[addr] = w
	a.pc += 2
	return addr
}

func (a *Assembler) emitInstr(ln asmLine, patches *[]patch) {
	start := a.pc
	mnem, ops, err := expandAlias(ln.mnem, ln.ops)
	if err != nil {
		a.errorf(ln.line, "%v", err)
		return
	}
	switch {
	case mnem == "reti":
		if len(ops) != 0 {
			a.errorf(ln.line, "reti takes no operands")
			return
		}
		a.emitWord(0b000100<<10 | uint16(RETI-16)<<7)
	case isJump(mnem):
		if len(ops) != 1 || !ops[0].isAbs {
			a.errorf(ln.line, "%s needs a label/address target", mnem)
			return
		}
		op := jumpOps[mnem]
		w := uint16(0b001<<13) | uint16(op-32)<<10
		addr := a.emitWord(w)
		*patches = append(*patches, patch{addr: addr, e: ops[0].expr, pcRel: addr + 2, line: ln.line, jop: op})
	case fmtIOps[mnem] != 0:
		if len(ops) != 2 {
			a.errorf(ln.line, "%s takes two operands", mnem)
			return
		}
		sreg, sas, sext := srcEncoding(ops[0])
		dreg, dad, dext, derr := dstEncoding(ops[1])
		if derr != nil {
			a.errorf(ln.line, "%s: %v", mnem, derr)
			return
		}
		w := uint16(fmtIOps[mnem])<<12 | uint16(sreg)<<8 | uint16(dad)<<7 |
			uint16(sas)<<4 | uint16(dreg)
		a.emitWord(w)
		if sext {
			addr := a.emitWord(0)
			*patches = append(*patches, patch{addr: addr, e: ops[0].expr, line: ln.line})
		}
		if dext {
			addr := a.emitWord(0)
			*patches = append(*patches, patch{addr: addr, e: ops[1].expr, line: ln.line})
		}
	case fmtIIOps[mnem] != 0:
		if len(ops) != 1 {
			a.errorf(ln.line, "%s takes one operand", mnem)
			return
		}
		op := fmtIIOps[mnem]
		sreg, sas, sext := srcEncoding(ops[0])
		if op != PUSH && op != CALL && (ops[0].isImm || (sreg == CG || sreg == SR && sas != AmReg && !ops[0].isAbs)) {
			a.errorf(ln.line, "%s: operand must be writable", mnem)
			return
		}
		w := uint16(0b000100)<<10 | uint16(op-16)<<7 | uint16(sas)<<4 | uint16(sreg)
		a.emitWord(w)
		if sext {
			addr := a.emitWord(0)
			*patches = append(*patches, patch{addr: addr, e: ops[0].expr, line: ln.line})
		}
	default:
		a.errorf(ln.line, "unknown mnemonic %q", ln.mnem)
		return
	}
	words := make([]uint16, 0, 3)
	for p := start; p < a.pc; p += 2 {
		words = append(words, a.img.Words[p])
	}
	a.img.Listing = append(a.img.Listing, ListingEntry{Addr: start, Words: words, Line: ln.line, Source: ln.src})
}

// directiveSize returns the size in bytes a directive occupies (pass 1)
// and, for .entry, the entry symbol.
func (a *Assembler) directiveSize(ln asmLine) (uint16, string) {
	switch ln.dir {
	case ".org":
		if len(ln.dirArgs) == 1 {
			if e, err := parseExpr(ln.dirArgs[0]); err == nil {
				if v, ok := a.eval(e); ok {
					// .org jumps, doesn't grow; handled by setting pc.
					a.pc = v
					return 0, ""
				}
			}
		}
		a.errorf(ln.line, ".org needs a literal or already-defined address")
		return 0, ""
	case ".word":
		return uint16(2 * len(ln.dirArgs)), ""
	case ".space", ".input":
		if len(ln.dirArgs) == 1 {
			if e, err := parseExpr(ln.dirArgs[0]); err == nil {
				if v, ok := a.eval(e); ok {
					return 2 * v, ""
				}
			}
		}
		a.errorf(ln.line, "%s needs a literal or already-defined word count", ln.dir)
		return 0, ""
	case ".equ":
		if len(ln.dirArgs) == 2 {
			if e, err := parseExpr(ln.dirArgs[1]); err == nil && e.isLiteral() {
				a.symbols[strings.ToLower(ln.dirArgs[0])] = uint16(e.lit)
				return 0, ""
			}
		}
		a.errorf(ln.line, ".equ needs NAME, literal")
		return 0, ""
	case ".entry":
		if len(ln.dirArgs) == 1 {
			return 0, strings.ToLower(ln.dirArgs[0])
		}
		a.errorf(ln.line, ".entry needs a label")
		return 0, ""
	case ".loopbound":
		return 0, ""
	default:
		a.errorf(ln.line, "unknown directive %q", ln.dir)
		return 0, ""
	}
}

func (a *Assembler) emitDirective(ln asmLine, patches *[]patch) {
	switch ln.dir {
	case ".org":
		if e, err := parseExpr(ln.dirArgs[0]); err == nil {
			if v, ok := a.eval(e); ok {
				a.pc = v
			}
		}
	case ".word":
		for _, arg := range ln.dirArgs {
			e, err := parseExpr(arg)
			if err != nil {
				a.errorf(ln.line, "%v", err)
				continue
			}
			addr := a.emitWord(0)
			*patches = append(*patches, patch{addr: addr, e: e, line: ln.line})
		}
	case ".space":
		e, _ := parseExpr(ln.dirArgs[0])
		v, _ := a.eval(e)
		for i := uint16(0); i < v; i++ {
			a.emitWord(0)
		}
	case ".input":
		e, _ := parseExpr(ln.dirArgs[0])
		v, _ := a.eval(e)
		a.img.Inputs = append(a.img.Inputs, Region{Addr: a.pc, Words: int(v)})
		for i := uint16(0); i < v; i++ {
			a.emitWord(0)
		}
	case ".equ", ".entry":
		// handled in pass 1
	case ".loopbound":
		if len(ln.dirArgs) != 2 {
			a.errorf(ln.line, ".loopbound needs LABEL, N")
			return
		}
		e, err := parseExpr(ln.dirArgs[0])
		if err != nil {
			a.errorf(ln.line, "%v", err)
			return
		}
		n, err := strconv.Atoi(ln.dirArgs[1])
		if err != nil || n < 0 {
			a.errorf(ln.line, ".loopbound needs a nonnegative count")
			return
		}
		a.pending = append(a.pending, pendingBound{e: e, n: n, line: ln.line})
	}
}
