package peakpower

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/faultfs"
)

// DiskStore is the disk tier of the analysis cache: a content-addressed
// store of sealed Reports, one file per analysis key. It makes analyses
// survive process restarts — attach one to a Cache (AttachDisk) and a
// re-analysis after a crash or redeploy is served from disk instead of
// re-exploring.
//
// Durability posture: writes go through a same-directory temp file and an
// atomic rename, so a crash mid-write never leaves a half-written entry —
// only an inert temp file. Reads re-verify the Report's content hash
// (DecodeReport); an unreadable, truncated, corrupted, or hash-mismatched
// entry is treated as a MISS and deleted, so one bad sector degrades to a
// re-analysis, never to serving a wrong bound. Store failures (full disk)
// are reported to the caller but latch nothing: the next Store attempt
// runs fresh.
//
// A DiskStore is safe for concurrent use. Multiple processes may share a
// directory: atomic renames make concurrent writers last-wins per key,
// and every reader verifies what it loads.
type DiskStore struct {
	dir string
	fs  faultfs.FS

	mu       sync.Mutex
	loads    uint64
	hits     uint64
	corrupt  uint64
	writes   uint64
	writeErr uint64
	lastErr  error
}

// NewDiskStore opens (creating if necessary) a Report store rooted at dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	return NewDiskStoreFS(dir, nil)
}

// NewDiskStoreFS is NewDiskStore on an explicit filesystem (nil means the
// real one) — the injection point for disk-fault tests.
func NewDiskStoreFS(dir string, fs faultfs.FS) (*DiskStore, error) {
	if fs == nil {
		fs = faultfs.OS{}
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("peakpower: opening report store %s: %w", dir, err)
	}
	return &DiskStore{dir: dir, fs: fs}, nil
}

// Dir returns the store's root directory.
func (d *DiskStore) Dir() string { return d.dir }

// path maps a cache key to its entry file. Keys are hex digests
// (Analyzer.cacheKey), but sanitize anyway: a key must never escape dir.
func (d *DiskStore) path(key string) (string, error) {
	if key == "" || strings.ContainsAny(key, "/\\") || strings.Contains(key, "..") {
		return "", fmt.Errorf("peakpower: invalid report store key %q", key)
	}
	return filepath.Join(d.dir, key+".json"), nil
}

// Load returns the stored Report for key, or (nil, false) on a miss. Any
// defect in the entry — unreadable, bad JSON, wrong schema, content-hash
// mismatch — counts as a miss, and the defective file is deleted so the
// slot heals on the next Store.
func (d *DiskStore) Load(key string) (*Report, bool) {
	p, err := d.path(key)
	if err != nil {
		return nil, false
	}
	d.count(&d.loads)
	data, err := d.fs.ReadFile(p)
	if err != nil {
		return nil, false
	}
	rep, err := DecodeReport(data)
	if err != nil {
		d.count(&d.corrupt)
		_ = d.fs.Remove(p)
		return nil, false
	}
	d.count(&d.hits)
	return rep, true
}

// Store persists a sealed Report under key (atomic temp+rename). Unsealed
// reports are rejected: an entry without a content hash could not be
// verified on the way back in.
func (d *DiskStore) Store(key string, rep *Report) error {
	p, err := d.path(key)
	if err != nil {
		return err
	}
	if rep.Hash == "" {
		return fmt.Errorf("peakpower: refusing to store unsealed report for %s", rep.App)
	}
	data, err := rep.MarshalJSON()
	if err != nil {
		return fmt.Errorf("peakpower: encoding report for store: %w", err)
	}
	if err := faultfs.WriteAtomic(d.fs, p, data, 0o644); err != nil {
		d.mu.Lock()
		d.writeErr++
		d.lastErr = err
		d.mu.Unlock()
		return fmt.Errorf("peakpower: storing report %s: %w", key, err)
	}
	d.count(&d.writes)
	return nil
}

// Len counts the stored entries (a directory scan).
func (d *DiskStore) Len() int {
	entries, err := d.fs.ReadDir(d.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}

// Err returns the most recent Store failure (nil if the last writes
// succeeded or none happened). Exposed so a service's readiness probe can
// report a degraded disk tier.
func (d *DiskStore) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastErr
}

func (d *DiskStore) count(f *uint64) {
	d.mu.Lock()
	*f++
	d.mu.Unlock()
}

// DiskStoreStats is a point-in-time snapshot of the disk tier.
type DiskStoreStats struct {
	// Loads counts lookups; Hits the ones served from disk.
	Loads uint64 `json:"loads"`
	// Hits counts verified loads.
	Hits uint64 `json:"hits"`
	// Corrupt counts entries that failed verification (each was deleted).
	Corrupt uint64 `json:"corrupt"`
	// Writes counts successful stores; WriteErrors failed ones.
	Writes uint64 `json:"writes"`
	// WriteErrors counts failed stores.
	WriteErrors uint64 `json:"write_errors"`
	// Entries is the current file count.
	Entries int `json:"entries"`
	// LastError is the most recent store failure, "" when healthy.
	LastError string `json:"last_error,omitempty"`
}

// Stats returns the store's counters.
func (d *DiskStore) Stats() DiskStoreStats {
	d.mu.Lock()
	st := DiskStoreStats{
		Loads: d.loads, Hits: d.hits, Corrupt: d.corrupt,
		Writes: d.writes, WriteErrors: d.writeErr,
	}
	if d.lastErr != nil {
		st.LastError = d.lastErr.Error()
	}
	d.mu.Unlock()
	st.Entries = d.Len()
	return st
}
