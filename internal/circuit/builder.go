// Package circuit is a structural synthesis toolkit: it builds gate-level
// datapath and control blocks (adders, muxes, decoders, registers, an
// array multiplier, ...) directly as ULP65 cells in a netlist. It plays
// the role of the synthesis flow (Design Compiler) in the paper's
// methodology: the ULP430 processor of package ulp430 is "synthesized"
// with this builder.
package circuit

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Builder constructs cells inside one module path of a shared netlist.
type Builder struct {
	// N is the underlying netlist.
	N *netlist.Netlist

	module string
	shared *sharedState
}

type sharedState struct {
	zero netlist.NetID
	one  netlist.NetID
	seq  int
}

// NewBuilder creates a netlist with the given top name and returns a
// builder rooted at the top module.
func NewBuilder(top string) *Builder {
	n := netlist.New(top)
	b := &Builder{N: n, module: top, shared: &sharedState{zero: netlist.None, one: netlist.None}}
	return b
}

// InModule returns a builder view that places new cells under the given
// module path (e.g. "exec_unit.alu"); the netlist is shared.
func (b *Builder) InModule(path string) *Builder {
	return &Builder{N: b.N, module: path, shared: b.shared}
}

// Module returns the builder's current module path.
func (b *Builder) Module() string { return b.module }

func (b *Builder) autoName(prefix string) string {
	b.shared.seq++
	return fmt.Sprintf("%s_%d", prefix, b.shared.seq)
}

// --- scalar primitives -------------------------------------------------

// Zero returns the shared constant-0 net (one TIE0 cell per design).
func (b *Builder) Zero() netlist.NetID {
	if b.shared.zero == netlist.None {
		b.shared.zero = b.N.NewNet("const0")
		b.N.AddCell(cell.Tie0, b.module, b.autoName("tie0"), b.shared.zero)
	}
	return b.shared.zero
}

// One returns the shared constant-1 net.
func (b *Builder) One() netlist.NetID {
	if b.shared.one == netlist.None {
		b.shared.one = b.N.NewNet("const1")
		b.N.AddCell(cell.Tie1, b.module, b.autoName("tie1"), b.shared.one)
	}
	return b.shared.one
}

func (b *Builder) gate2(k cell.Kind, prefix string, a, c netlist.NetID) netlist.NetID {
	out := b.N.NewNet("")
	b.N.AddCell(k, b.module, b.autoName(prefix), out, a, c)
	return out
}

// Not returns ¬a.
func (b *Builder) Not(a netlist.NetID) netlist.NetID {
	out := b.N.NewNet("")
	b.N.AddCell(cell.Inv, b.module, b.autoName("inv"), out, a)
	return out
}

// Buf returns a buffered copy of a.
func (b *Builder) Buf(a netlist.NetID) netlist.NetID {
	out := b.N.NewNet("")
	b.N.AddCell(cell.Buf, b.module, b.autoName("buf"), out, a)
	return out
}

// And returns a∧c.
func (b *Builder) And(a, c netlist.NetID) netlist.NetID { return b.gate2(cell.And2, "and", a, c) }

// Or returns a∨c.
func (b *Builder) Or(a, c netlist.NetID) netlist.NetID { return b.gate2(cell.Or2, "or", a, c) }

// Xor returns a⊕c.
func (b *Builder) Xor(a, c netlist.NetID) netlist.NetID { return b.gate2(cell.Xor2, "xor", a, c) }

// Nand returns ¬(a∧c).
func (b *Builder) Nand(a, c netlist.NetID) netlist.NetID { return b.gate2(cell.Nand2, "nand", a, c) }

// Nor returns ¬(a∨c).
func (b *Builder) Nor(a, c netlist.NetID) netlist.NetID { return b.gate2(cell.Nor2, "nor", a, c) }

// Xnor returns ¬(a⊕c).
func (b *Builder) Xnor(a, c netlist.NetID) netlist.NetID { return b.gate2(cell.Xnor2, "xnor", a, c) }

// Mux returns d0 when s=0, d1 when s=1.
func (b *Builder) Mux(s, d0, d1 netlist.NetID) netlist.NetID {
	out := b.N.NewNet("")
	b.N.AddCell(cell.Mux2, b.module, b.autoName("mux"), out, s, d0, d1)
	return out
}

// AndN reduces ins with a balanced AND tree; returns One for no inputs.
func (b *Builder) AndN(ins ...netlist.NetID) netlist.NetID { return b.reduce(cell.And2, "and", ins) }

// OrN reduces ins with a balanced OR tree; returns Zero for no inputs.
func (b *Builder) OrN(ins ...netlist.NetID) netlist.NetID { return b.reduce(cell.Or2, "or", ins) }

func (b *Builder) reduce(k cell.Kind, prefix string, ins []netlist.NetID) netlist.NetID {
	switch len(ins) {
	case 0:
		if k == cell.And2 {
			return b.One()
		}
		return b.Zero()
	case 1:
		return ins[0]
	}
	next := make([]netlist.NetID, 0, (len(ins)+1)/2)
	for i := 0; i+1 < len(ins); i += 2 {
		next = append(next, b.gate2(k, prefix, ins[i], ins[i+1]))
	}
	if len(ins)%2 == 1 {
		next = append(next, ins[len(ins)-1])
	}
	return b.reduce(k, prefix, next)
}

// --- vector helpers ----------------------------------------------------

// Input declares a width-bit primary-input port with the given name.
func (b *Builder) Input(name string, width int) []netlist.NetID {
	nets := b.N.NewNets(name, width)
	for _, id := range nets {
		b.N.MarkInput(id)
	}
	b.N.DefinePort(name, nets)
	return nets
}

// InputBit declares a 1-bit primary-input port.
func (b *Builder) InputBit(name string) netlist.NetID {
	id := b.N.NewNet(name)
	b.N.MarkInput(id)
	b.N.DefinePort(name, []netlist.NetID{id})
	return id
}

// Output declares name as an output port over existing nets.
func (b *Builder) Output(name string, nets []netlist.NetID) {
	b.N.DefinePort(name, nets)
}

// Const returns a width-bit vector wired to the constant v (reusing the
// shared tie nets).
func (b *Builder) Const(v uint64, width int) []netlist.NetID {
	out := make([]netlist.NetID, width)
	for i := 0; i < width; i++ {
		if v>>uint(i)&1 == 1 {
			out[i] = b.One()
		} else {
			out[i] = b.Zero()
		}
	}
	return out
}

// NotV returns the bitwise complement of a.
func (b *Builder) NotV(a []netlist.NetID) []netlist.NetID {
	out := make([]netlist.NetID, len(a))
	for i := range a {
		out[i] = b.Not(a[i])
	}
	return out
}

func (b *Builder) zip(k cell.Kind, prefix string, a, c []netlist.NetID) []netlist.NetID {
	if len(a) != len(c) {
		panic("circuit: vector width mismatch")
	}
	out := make([]netlist.NetID, len(a))
	for i := range a {
		out[i] = b.gate2(k, prefix, a[i], c[i])
	}
	return out
}

// AndV returns bitwise a∧c.
func (b *Builder) AndV(a, c []netlist.NetID) []netlist.NetID { return b.zip(cell.And2, "and", a, c) }

// OrV returns bitwise a∨c.
func (b *Builder) OrV(a, c []netlist.NetID) []netlist.NetID { return b.zip(cell.Or2, "or", a, c) }

// XorV returns bitwise a⊕c.
func (b *Builder) XorV(a, c []netlist.NetID) []netlist.NetID { return b.zip(cell.Xor2, "xor", a, c) }

// MuxV selects d0 (s=0) or d1 (s=1) element-wise.
func (b *Builder) MuxV(s netlist.NetID, d0, d1 []netlist.NetID) []netlist.NetID {
	if len(d0) != len(d1) {
		panic("circuit: mux width mismatch")
	}
	out := make([]netlist.NetID, len(d0))
	for i := range d0 {
		out[i] = b.Mux(s, d0[i], d1[i])
	}
	return out
}

// MuxTree selects options[sel] with a balanced mux tree. len(options) must
// be a power of two and match 1<<len(sel); sel[0] is the LSB.
func (b *Builder) MuxTree(sel []netlist.NetID, options [][]netlist.NetID) []netlist.NetID {
	if len(options) != 1<<uint(len(sel)) {
		panic(fmt.Sprintf("circuit: mux tree needs %d options, got %d", 1<<uint(len(sel)), len(options)))
	}
	if len(sel) == 0 {
		return options[0]
	}
	half := len(options) / 2
	lo := make([][]netlist.NetID, half)
	hi := make([][]netlist.NetID, half)
	for i := 0; i < half; i++ {
		lo[i] = options[2*i]
		hi[i] = options[2*i+1]
	}
	merged := make([][]netlist.NetID, half)
	for i := 0; i < half; i++ {
		merged[i] = b.MuxV(sel[0], lo[i], hi[i])
	}
	return b.MuxTree(sel[1:], merged)
}

// Decoder returns the 2^n one-hot decode of sel (with enable en; pass
// One() for always-on).
func (b *Builder) Decoder(sel []netlist.NetID, en netlist.NetID) []netlist.NetID {
	n := len(sel)
	out := make([]netlist.NetID, 1<<uint(n))
	inv := make([]netlist.NetID, n)
	for i, s := range sel {
		inv[i] = b.Not(s)
	}
	for v := range out {
		terms := make([]netlist.NetID, 0, n+1)
		for i := 0; i < n; i++ {
			if v>>uint(i)&1 == 1 {
				terms = append(terms, sel[i])
			} else {
				terms = append(terms, inv[i])
			}
		}
		terms = append(terms, en)
		out[v] = b.AndN(terms...)
	}
	return out
}

// EqualConst returns 1 when a equals the constant v.
func (b *Builder) EqualConst(a []netlist.NetID, v uint64) netlist.NetID {
	terms := make([]netlist.NetID, len(a))
	for i := range a {
		if v>>uint(i)&1 == 1 {
			terms[i] = a[i]
		} else {
			terms[i] = b.Not(a[i])
		}
	}
	return b.AndN(terms...)
}

// EqualV returns 1 when a == c bitwise.
func (b *Builder) EqualV(a, c []netlist.NetID) netlist.NetID {
	x := b.zip(cell.Xnor2, "xnor", a, c)
	return b.AndN(x...)
}

// IsZero returns 1 when all bits of a are 0.
func (b *Builder) IsZero(a []netlist.NetID) netlist.NetID {
	return b.Not(b.OrN(a...))
}

// --- arithmetic --------------------------------------------------------

// FullAdder returns (sum, carry) of a+c+ci.
func (b *Builder) FullAdder(a, c, ci netlist.NetID) (sum, co netlist.NetID) {
	axc := b.Xor(a, c)
	sum = b.Xor(axc, ci)
	co = b.Or(b.And(a, c), b.And(axc, ci))
	return sum, co
}

// Adder returns the width-len(a) sum a+c+ci and the carry out of every
// bit position (couts[i] is the carry out of bit i; couts[len-1] is the
// adder carry-out). Ripple-carry, as a small ULP core would use.
func (b *Builder) Adder(a, c []netlist.NetID, ci netlist.NetID) (sum []netlist.NetID, couts []netlist.NetID) {
	if len(a) != len(c) {
		panic("circuit: adder width mismatch")
	}
	sum = make([]netlist.NetID, len(a))
	couts = make([]netlist.NetID, len(a))
	carry := ci
	for i := range a {
		sum[i], carry = b.FullAdder(a[i], c[i], carry)
		couts[i] = carry
	}
	return sum, couts
}

// Sub returns a-c (two's complement: a + ¬c + 1) with per-bit carries;
// carry-out high means no borrow (a >= c unsigned).
func (b *Builder) Sub(a, c []netlist.NetID) (diff []netlist.NetID, couts []netlist.NetID) {
	return b.Adder(a, b.NotV(c), b.One())
}

// Inc returns a+k for a small constant k using an adder against Const.
func (b *Builder) Inc(a []netlist.NetID, k uint64) []netlist.NetID {
	sum, _ := b.Adder(a, b.Const(k, len(a)), b.Zero())
	return sum
}

// Multiplier builds a combinational unsigned array multiplier; the result
// has len(a)+len(c) bits. This is the paper's high-power peripheral: a
// 16x16 array dominates the design's per-cycle power when exercised
// (Section 5, "the multiplier is a relatively large, high-power module").
func (b *Builder) Multiplier(a, c []netlist.NetID) []netlist.NetID {
	w := len(a) + len(c)
	acc := make([]netlist.NetID, w)
	zero := b.Zero()
	for i := range acc {
		acc[i] = zero
	}
	for j := range c {
		// partial product: (a AND c[j]) << j
		pp := make([]netlist.NetID, w)
		for i := range pp {
			pp[i] = zero
		}
		for i := range a {
			pp[i+j] = b.And(a[i], c[j])
		}
		acc, _ = b.Adder(acc, pp, zero)
	}
	return acc
}

// --- state -------------------------------------------------------------

// Reg is a register (bank of flip-flops) whose Q nets exist before its D
// input is wired, enabling feedback paths.
type Reg struct {
	// Q is the register output vector.
	Q []netlist.NetID

	name   string
	driven bool
}

// Reg declares a width-bit register named name and returns its (not yet
// driven) output nets.
func (b *Builder) Reg(name string, width int) *Reg {
	return &Reg{Q: b.N.NewNets(name, width), name: name}
}

// DriveReg wires the register's input: next state is d, with synchronous
// reset rst (active high) and clock-enable en. Pass netlist.None for rst
// and/or en to omit those pins (plain DFF / DFFR).
func (b *Builder) DriveReg(r *Reg, d []netlist.NetID, rst, en netlist.NetID) {
	if r.driven {
		panic("circuit: register " + r.name + " driven twice")
	}
	if len(d) != len(r.Q) {
		panic("circuit: register " + r.name + " width mismatch")
	}
	r.driven = true
	for i := range d {
		name := fmt.Sprintf("%s_reg_%d", r.name, i)
		switch {
		case rst == netlist.None && en == netlist.None:
			b.N.AddCell(cell.Dff, b.module, name, r.Q[i], d[i])
		case en == netlist.None:
			b.N.AddCell(cell.Dffr, b.module, name, r.Q[i], d[i], rst)
		case rst == netlist.None:
			b.N.AddCell(cell.Dffre, b.module, name, r.Q[i], d[i], b.Zero(), en)
		default:
			b.N.AddCell(cell.Dffre, b.module, name, r.Q[i], d[i], rst, en)
		}
	}
}

// RegV is shorthand: declare and immediately drive a register.
func (b *Builder) RegV(name string, d []netlist.NetID, rst, en netlist.NetID) []netlist.NetID {
	r := b.Reg(name, len(d))
	b.DriveReg(r, d, rst, en)
	return r.Q
}

// ClockBuffers adds n clock-tree buffer cells fed by a toggling source to
// module "clk_module". Real designs dissipate clock-tree power every
// cycle; the DFF clock-pin energy in the cell library models the leaves,
// and these explicit buffers model the trunk. The source is a 1-bit
// divider register (reset by rst) that toggles each cycle once out of
// reset.
func (b *Builder) ClockBuffers(n int, rst netlist.NetID) {
	cb := b.InModule("clk_module")
	div := cb.Reg("clk_div", 1)
	cb.DriveReg(div, []netlist.NetID{cb.Not(div.Q[0])}, rst, netlist.None)
	prev := div.Q[0]
	for i := 0; i < n; i++ {
		prev = cb.Buf(prev)
	}
	cb.Output("clk_tree_leaf", []netlist.NetID{prev})
}
