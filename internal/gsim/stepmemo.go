package gsim

// Whole-step memoization. Loop-heavy explorations revisit whole
// processor states: a wait loop polling a symbolic input, a search loop
// whose live registers cycle through a short orbit. Per-level
// memoization (memo.go) replays such repeats one level at a time but
// still pays a hash per dirty level per cycle — ~96 overlapping read
// sets on the ULP430 plan. The step table instead keys the entire
// post-capture phase of a cycle — combinational settling plus the
// activity/energy pass — on one hash of the five planes that determine
// it, and replays the final planes, activity flags and energy bound in
// a single masked copy.
//
// Soundness (DESIGN.md "Memoization and copy-on-write soundness"):
//
//   - By the time the step table is consulted, every external input to
//     the cycle has already landed in the planes: staged inputs and bus
//     writes are in curV/curK, the clock edge has captured, and the
//     activity pass reads only curV/curK/prevV/prevK plus the previous
//     cycle's flags (act — prevAct is overwritten before first read).
//     The phase's output state is therefore a pure function of
//     (curV, curK, prevV, prevK, act).
//   - The dirty masks and the settled flag are deliberately NOT part of
//     the key: the engine's skip invariant (a level or batch whose
//     fan-in words are clean holds outputs equal to evaluating them)
//     means force-settling, dirty-driven settling, and replay all reach
//     the same fixpoint for identical planes. Replay therefore also
//     sets settled, exactly as the settle loop would.
//   - Replay reconstructs the cycle's observable bookkeeping: dirty and
//     actDirty are marked by compare-on-copy (exactly the words a live
//     settle/activity pass would have marked), prevAct receives the
//     pre-pass flags, and the cached energy bound is the very float64
//     the live pass produced for these planes. The one cache replay
//     cannot refresh is the per-batch energy array (eBatch), so a hit
//     sets eBatchStale and the next live activity pass runs full.
//   - Collisions cannot corrupt state: the full source planes are
//     compared before a hit is taken.
const (
	// stepProbationLookups / stepProbationHits mirror the per-level
	// probation: a simulator whose program never revisits a state
	// (straight-line code) must stop paying the hash-and-record tax.
	// The window is long enough to span several iterations of the
	// slowest loops in the benchmark suite. stepProbationEarly cuts a
	// simulator with no hits at all off sooner — path-divergent
	// explorations (a search loop narrowing symbolic bounds) never
	// revisit a state, and every recorded entry is ~6 KiB of wasted
	// copying; convergent workloads show their first replay well inside
	// the early window.
	stepProbationEarly   = 128
	stepProbationLookups = 512
	stepProbationHits    = 8

	// defaultStepMemoBytes bounds one simulator's step table. Entries
	// are large (eight plane-sized arrays), so the budget is above the
	// level table's; when full, existing entries still serve hits.
	defaultStepMemoBytes = 24 << 20
)

// stepEntry holds one recorded cycle phase: the exact five source
// planes (collision-proof verification) and the resulting current
// planes, activity flags and energy bound.
type stepEntry struct {
	src   []uint64 // curV ‖ curK ‖ prevV ‖ prevK ‖ act, 5×Words
	out   []uint64 // final curV ‖ curK ‖ act, 3×Words
	bound float64
}

// stepTable is a per-simulator (single-goroutine) whole-step store.
type stepTable struct {
	entries  map[uint64]*stepEntry
	bytes    int
	maxBytes int

	lookups, hits uint32
	disabled      bool

	// pending carries a miss from lookup to record across the live
	// settle and activity passes.
	pending   bool
	pendKey   uint64
	pendEntry *stepEntry
	src       []uint64 // capture scratch, 5×Words

	// Per-step counters drained into the Simulator's atomics.
	stepHits, stepMisses uint64
}

func newStepTable(words, maxBytes int) *stepTable {
	return &stepTable{
		entries:  make(map[uint64]*stepEntry),
		maxBytes: maxBytes,
		src:      make([]uint64, 0, 5*words),
	}
}

// lookup hashes the five source planes and replays a verified hit,
// returning true (the caller skips settling and the activity pass). On
// a miss it captures the planes and leaves them pending for record.
func (st *stepTable) lookup(p *packedSim) bool {
	st.pending = false
	if st.disabled {
		return false
	}
	h := uint64(memoBasis)
	for _, plane := range [5][]uint64{p.curV, p.curK, p.prevV, p.prevK, p.act} {
		for _, w := range plane {
			h = (h ^ w) * memoPrime
		}
	}
	st.lookups++
	e := st.entries[h]
	if e != nil && st.verify(p, e) {
		st.hits++
		st.stepHits++
		st.replay(p, e)
		return true
	}
	st.stepMisses++
	if st.lookups >= stepProbationLookups ||
		(st.lookups >= stepProbationEarly && st.hits == 0) {
		if st.hits < stepProbationHits {
			st.disabled = true
			st.entries = nil
			st.src = nil
			return false
		}
		st.lookups, st.hits = 0, 0
	}
	src := st.src[:0]
	src = append(src, p.curV...)
	src = append(src, p.curK...)
	src = append(src, p.prevV...)
	src = append(src, p.prevK...)
	src = append(src, p.act...)
	st.src = src
	st.pending = true
	st.pendKey = h
	st.pendEntry = e // stale or colliding entry to overwrite in place
	return false
}

// verify compares an entry's recorded source planes against the live
// planes — the collision-proof check a replay requires.
func (st *stepTable) verify(p *packedSim, e *stepEntry) bool {
	n := len(p.curV)
	s := e.src
	for w := 0; w < n; w++ {
		if s[w] != p.curV[w] || s[n+w] != p.curK[w] ||
			s[2*n+w] != p.prevV[w] || s[3*n+w] != p.prevK[w] ||
			s[4*n+w] != p.act[w] {
			return false
		}
	}
	return true
}

// replay applies a recorded cycle phase: final current planes with
// compare-on-copy dirty marking (the same dirt a live settle would
// produce), then the activity pass's bookkeeping — flag swap and
// prevAct latch — with compare-on-copy actDirty marking, and finally
// the cached energy bound. eBatch is not refreshed by a replay, so the
// next live activity pass must run full (eBatchStale).
func (st *stepTable) replay(p *packedSim, e *stepEntry) {
	n := len(p.curV)
	for w := 0; w < n; w++ {
		nv, nk := e.out[w], e.out[n+w]
		if nv != p.curV[w] || nk != p.curK[w] {
			p.curV[w] = nv
			p.curK[w] = nk
			p.markDirty(int32(w))
		}
	}
	p.settled = true
	p.actDirty, p.actDirtyPrev = p.actDirtyPrev, p.actDirty
	for i := range p.actDirty {
		p.actDirty[i] = 0
	}
	copy(p.prevAct, p.act)
	for w := 0; w < n; w++ {
		if na := e.out[2*n+w]; na != p.act[w] {
			p.act[w] = na
			p.markActDirty(int32(w))
		}
	}
	p.boundFJ = e.bound
	p.boundValid = true
	// The replayed cycle's dirty sets are exactly a live cycle's, so
	// next cycle's capture skip and activity replay proofs hold.
	p.actValid = true
	p.eBatchStale = true
}

// record stores the just-computed cycle phase for the pending miss.
// A full table overwrites colliding entries but admits no new ones.
func (st *stepTable) record(p *packedSim) {
	if !st.pending {
		return
	}
	st.pending = false
	e := st.pendEntry
	n := len(p.curV)
	if e == nil {
		size := (len(st.src) + 3*n) * 8
		if st.bytes+size > st.maxBytes {
			return
		}
		e = &stepEntry{
			src: make([]uint64, len(st.src)),
			out: make([]uint64, 3*n),
		}
		st.bytes += size
		st.entries[st.pendKey] = e
	}
	copy(e.src, st.src)
	copy(e.out[:n], p.curV)
	copy(e.out[n:2*n], p.curK)
	copy(e.out[2*n:], p.act)
	e.bound = p.boundFJ
}
