// Command benchjson converts `go test -bench` output on stdin into a
// BENCH_*.json document — the repository's benchmark-trajectory record.
// It parses standard benchmark result lines (name, iterations, then
// value/unit pairs, including custom ReportMetric units) plus the
// goos/goarch/pkg/cpu header, and emits one JSON object:
//
//	go test -bench=. -benchmem -run='^$' . | go run ./cmd/benchjson -out BENCH_$(date +%F).json
//
// The Makefile's bench target wires this up; CI runs the short form and
// uploads the result as an artifact so the performance trajectory
// accumulates per commit (see PERFORMANCE.md).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -N GOMAXPROCS suffix, e.g. "BenchmarkEngineCoAnalysis/packed-8".
	Name string `json:"name"`
	// Iterations is the measured iteration count (b.N).
	Iterations int64 `json:"iterations"`
	// Metrics maps unit to value, e.g. "ns/op", "B/op", "cycles/s".
	Metrics map[string]float64 `json:"metrics"`
}

// Document is the emitted file layout.
type Document struct {
	// Generated is the emission timestamp (RFC 3339).
	Generated string `json:"generated"`
	// Go is the toolchain version that produced the numbers.
	Go string `json:"go"`
	// GOOS/GOARCH/CPU/Pkg echo the benchmark header.
	GOOS   string `json:"goos,omitempty"`
	GOARCH string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	// Benchmarks lists every parsed result line in input order.
	Benchmarks []Result `json:"benchmarks"`
}

func parseLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	doc := Document{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		default:
			if r, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(doc.Benchmarks), *out)
}
