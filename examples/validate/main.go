// Validate: the Section 3.4 validation experiment — check that the
// X-based analysis bounds every input-based execution, both in which
// gates can toggle (Figure 3.4) and in per-cycle power (Figure 3.5).
//
//	go run ./examples/validate
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/peakpower"
)

func main() {
	ctx := context.Background()
	analyzer, err := peakpower.NewFor(ctx, peakpower.DefaultTarget)
	if err != nil {
		log.Fatal(err)
	}
	req, err := analyzer.AnalyzeBench(ctx, "mult")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("X-based analysis of %s: %d potentially-toggled gates, peak %.3f mW\n",
		req.App, req.ActiveGates, req.PeakPowerMW)

	img := req.Image()
	r := rand.New(rand.NewSource(7))
	for set := 1; set <= 5; set++ {
		inputs, err := peakpower.BenchInputs("mult", r)
		if err != nil {
			log.Fatal(err)
		}
		// RunConcrete honors the same progress/cancellation options as the
		// symbolic analyses (a large interval keeps this demo quiet).
		run, err := analyzer.RunConcrete(ctx, img, inputs, nil, 1_000_000,
			peakpower.WithProgressEvery(500_000))
		if err != nil {
			log.Fatal(err)
		}
		common, inputOnly := 0, 0
		for ci, act := range run.UnionActive {
			if !act {
				continue
			}
			if req.UnionActive[ci] {
				common++
			} else {
				inputOnly++
			}
		}
		// Per-cycle bound (mult is fork-free: traces align).
		violations := 0
		for c := range run.Trace {
			if c < len(req.PeakTrace) && run.Trace[c] > req.PeakTrace[c]+1e-9 {
				violations++
			}
		}
		fmt.Printf("input set %d: peak %.3f mW <= bound; toggled %4d gates (%d outside X-set, must be 0); %d per-cycle violations\n",
			set, run.PeakMW, common+inputOnly, inputOnly, violations)
		if inputOnly > 0 || violations > 0 || run.PeakMW > req.PeakPowerMW {
			log.Fatal("VALIDATION FAILED")
		}
	}
	fmt.Println("validation: PASS — the X-based analysis bounds every input-based execution")
}
