package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/peakpower"
)

func testClient(base string, attempts int) *client {
	c := newClient(base, attempts)
	c.poll = time.Millisecond
	return c
}

func TestBackoffHonorsRetryAfter(t *testing.T) {
	c := testClient("http://x", 5)
	if d := c.backoff(0, 3); d != 3*time.Second {
		t.Fatalf("Retry-After 3 -> %v", d)
	}
	// Without a hint: exponential with half-range jitter, capped at 5s.
	for attempt, base := range []time.Duration{250 * time.Millisecond, 500 * time.Millisecond, time.Second} {
		for i := 0; i < 50; i++ {
			if d := c.backoff(attempt, -1); d < base/2 || d > base {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, base/2, base)
			}
		}
	}
	for _, attempt := range []int{20, 40, 63, 200} { // large shifts must clamp, not overflow
		for i := 0; i < 50; i++ {
			if d := c.backoff(attempt, -1); d < 2500*time.Millisecond || d > 5*time.Second {
				t.Fatalf("attempt %d: capped backoff %v outside [2.5s, 5s]", attempt, d)
			}
		}
	}
}

// TestConcurrentRetries shares one client between goroutines that all hit
// a flapping server, so the retry path — including the jittered backoff —
// runs concurrently. Run under -race this is the regression test for the
// old per-client *rand.Rand, which is not safe for concurrent use.
func TestConcurrentRetries(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"draining"}`))
			return
		}
		w.Write([]byte(`{"fine":true}`))
	}))
	defer ts.Close()

	c := testClient(ts.URL, 5)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if body := c.do(context.Background(), http.MethodGet, "/", nil); string(body) != `{"fine":true}` {
				t.Errorf("unexpected body %s", body)
			}
		}()
	}
	wg.Wait()
}

// TestParseRetryAfter covers both RFC 9110 header forms: delay-seconds
// and HTTP-date (rounded up to whole seconds, clamped at zero when the
// date is already past); anything unparseable falls back to -1 (own
// backoff).
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		header string
		want   int
	}{
		{"", -1},
		{"3", 3},
		{"0", 0},
		{"-2", -1},
		{"soon", -1},
		{now.Add(10 * time.Second).Format(http.TimeFormat), 10},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0},
		{now.Format(time.RFC850), 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.header, now); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %d, want %d", tc.header, got, tc.want)
		}
	}
}

func TestRoundTripClassification(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/ok":
			w.Write([]byte(`{"fine":true}`))
		case "/full":
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"job queue full"}`))
		case "/bad":
			w.WriteHeader(http.StatusBadRequest)
			w.Write([]byte(`{"error":"nope"}`))
		}
	}))
	defer ts.Close()
	c := testClient(ts.URL, 5)
	ctx := context.Background()

	if _, body, err := c.roundTrip(ctx, http.MethodGet, "/ok", nil); err != nil || string(body) != `{"fine":true}` {
		t.Fatalf("ok: %s %v", body, err)
	}
	_, _, err := c.roundTrip(ctx, http.MethodGet, "/full", nil)
	re, ok := err.(*retryableError)
	if !ok || re.retryAfter != 2 {
		t.Fatalf("429: %#v", err)
	}
	_, _, err = c.roundTrip(ctx, http.MethodGet, "/bad", nil)
	if _, ok := err.(*retryableError); ok || err == nil {
		t.Fatalf("400 must not be retryable: %v", err)
	}
}

// TestAnalyzeRetriesThenVerifies drives the whole client path against a
// stub job API: the first submissions bounce with 429 + Retry-After, then
// a job is accepted, polls through "running", and completes with a sealed
// Report the client hash-verifies.
func TestAnalyzeRetriesThenVerifies(t *testing.T) {
	rep := &peakpower.Report{Schema: peakpower.SchemaVersion, Target: "ulp430", App: "stub", PeakPowerMW: 1.5}
	rep.Seal()
	repJSON, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}

	var submits, polls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/jobs":
			if submits.Add(1) <= 2 {
				w.Header().Set("Retry-After", "0")
				w.WriteHeader(http.StatusTooManyRequests)
				w.Write([]byte(`{"error":"job queue full"}`))
				return
			}
			w.WriteHeader(http.StatusAccepted)
			w.Write([]byte(`{"id":"jtest","state":"queued","status_url":"/v1/jobs/jtest"}`))
		case "/v1/jobs/jtest":
			if polls.Add(1) <= 2 {
				w.Write([]byte(`{"id":"jtest","state":"running"}`))
				return
			}
			resp, _ := json.Marshal(map[string]any{"id": "jtest", "state": "done", "report": json.RawMessage(repJSON)})
			w.Write(resp)
		default:
			t.Errorf("unexpected request %s", r.URL.Path)
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer ts.Close()

	c := testClient(ts.URL, 5)
	got := c.analyze(context.Background(), &serverRequest{Bench: "stub"})
	if got.Hash != rep.Hash || got.PeakPowerMW != 1.5 {
		t.Fatalf("served report: %+v", got)
	}
	if submits.Load() != 3 {
		t.Fatalf("submit attempts %d, want 3 (two 429s then accepted)", submits.Load())
	}
	if polls.Load() < 3 {
		t.Fatalf("polls %d, want >=3", polls.Load())
	}
}
