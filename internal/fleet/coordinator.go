package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/symx"
	"repro/peakpower"
)

// CoordinatorConfig configures a fleet coordinator.
type CoordinatorConfig struct {
	// LeaseTTL is how long a leased task survives without a heartbeat
	// before it is re-issued. Default 10s.
	LeaseTTL time.Duration
	// LocalSlots is how many tasks the coordinator executes itself, in
	// process, alongside the remote workers (0 = pure coordinator). A
	// coordinator with LocalSlots > 0 makes progress even with an empty
	// fleet, so a single -coordinator daemon still completes jobs.
	LocalSlots int
	// Plan resolves job specs; required.
	Plan PlanFunc
	// Logf logs coordinator events; nil discards.
	Logf func(format string, args ...any)
}

// Coordinator distributes jobs' exploration tasks to fleet workers. One
// Coordinator serves all of a daemon's concurrent jobs; each RunJob call
// registers one run for its duration.
type Coordinator struct {
	cfg CoordinatorConfig

	mu       sync.Mutex
	workers  map[string]time.Time // worker id -> last contact
	runs     map[string]*run      // job id -> active run
	leased   int64
	reissued int64
}

// lease is one outstanding remote lease.
type lease struct {
	worker  string
	expires time.Time
}

// run is one fleet-executed job.
type run struct {
	jobID string
	spec  json.RawMessage
	q     *symx.RemoteQueue
	ttl   time.Duration

	mu     sync.Mutex
	leases map[int]*lease // task id -> outstanding remote lease
}

// NewCoordinator builds a coordinator. cfg.Plan is required.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Coordinator{
		cfg:     cfg,
		workers: map[string]time.Time{},
		runs:    map[string]*run{},
	}
}

// LeaseTTL reports the configured lease TTL.
func (c *Coordinator) LeaseTTL() time.Duration { return c.cfg.LeaseTTL }

// touch records worker liveness on any RPC.
func (c *Coordinator) touch(worker string) {
	if worker == "" {
		return
	}
	c.mu.Lock()
	c.workers[worker] = time.Now()
	c.mu.Unlock()
}

// RunJob drives one job's exploration through the fleet: it opens (or
// resumes) the job's checkpoint journal as a remote task queue, serves
// leases/claims/completions to workers until every live task completes
// or a job-level error latches, then closes the journal. On success the
// journal holds a complete exploration; the caller seals it through the
// ordinary WithCheckpoint resume path, which replays it without
// executing anything — making the sealed Report byte-identical to a
// single-node run. spec is the job's journaled request body, handed
// verbatim to workers so they can rebuild the same plan.
func (c *Coordinator) RunJob(ctx context.Context, jobID string, spec json.RawMessage, plan *peakpower.ExplorePlan, journalPath string) error {
	q, err := symx.OpenRemoteQueue(symx.CheckpointConfig{
		Path:  journalPath,
		Tag:   plan.Key(),
		Codec: plan.Codec(),
	}, plan.ExploreOptions(ctx))
	if err != nil {
		return err
	}
	r := &run{jobID: jobID, spec: spec, q: q, ttl: c.cfg.LeaseTTL, leases: map[int]*lease{}}

	c.mu.Lock()
	if _, dup := c.runs[jobID]; dup {
		c.mu.Unlock()
		q.Close()
		return fmt.Errorf("fleet: job %s already running", jobID)
	}
	c.runs[jobID] = r
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.runs, jobID)
		c.mu.Unlock()
		q.Close()
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Janitor: expire remote leases that stopped heartbeating and
	// re-issue their tasks at the queue front.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := r.ttl / 4
		if tick < 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-t.C:
				for _, id := range r.expire(now) {
					q.Requeue(id)
					c.mu.Lock()
					c.reissued++
					c.mu.Unlock()
					c.cfg.Logf("fleet: job %s task %d lease expired, re-issued", jobID, id)
				}
			}
		}
	}()

	// Local runners: the coordinator is its own worker for LocalSlots
	// tasks at a time, claiming directly against the queue.
	for i := 0; i < c.cfg.LocalSlots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sys, sink, err := plan.NewWorker()
			if err != nil {
				q.Fail(err)
				return
			}
			for {
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				default:
				}
				t, baseCycles, baseNodes, ok := q.Lease()
				if !ok {
					if q.Err() != nil || q.Done() {
						return
					}
					time.Sleep(10 * time.Millisecond)
					continue
				}
				res, err := symx.RunRemoteTask(sys, sink, plan.ExploreOptions(ctx), plan.Codec(), t, q, baseCycles, baseNodes)
				if err != nil {
					if errors.Is(err, symx.ErrStaleTask) {
						continue
					}
					q.Fail(err)
					return
				}
				if _, err := q.Complete(t.ID, res); err != nil && !errors.Is(err, symx.ErrStaleTask) {
					return
				}
			}
		}()
	}

	// Wait for the journal to be complete (or the job to fail).
	wait := time.NewTicker(25 * time.Millisecond)
	defer wait.Stop()
	var jobErr error
loop:
	for {
		select {
		case <-ctx.Done():
			q.Fail(ctx.Err())
			jobErr = q.Err()
			break loop
		case <-wait.C:
			if err := q.Err(); err != nil {
				jobErr = err
				break loop
			}
			if q.Done() {
				break loop
			}
		}
	}
	close(stop)
	wg.Wait()
	return jobErr
}

// expire removes and returns the leases that lapsed before now.
func (r *run) expire(now time.Time) []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ids []int
	for id, l := range r.leases {
		if now.After(l.expires) {
			delete(r.leases, id)
			ids = append(ids, id)
		}
	}
	return ids
}

// addLease records a remote lease for the janitor to police.
func (r *run) addLease(id int, worker string) {
	r.mu.Lock()
	r.leases[id] = &lease{worker: worker, expires: time.Now().Add(r.ttl)}
	r.mu.Unlock()
}

// heartbeat extends a live lease; false means the lease is gone (the
// worker must cancel the task).
func (r *run) heartbeat(id int, worker string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.leases[id]
	if !ok || l.worker != worker {
		return false
	}
	l.expires = time.Now().Add(r.ttl)
	return true
}

// dropLease forgets a lease after its task completed (or failed).
func (r *run) dropLease(id int) {
	r.mu.Lock()
	delete(r.leases, id)
	r.mu.Unlock()
}

func (r *run) outstanding() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.leases)
}

// Routes mounts the fleet protocol on mux.
func (c *Coordinator) Routes(mux *http.ServeMux) {
	mux.HandleFunc("/v1/fleet/register", c.handleRegister)
	mux.HandleFunc("/v1/fleet/lease", c.handleLease)
	mux.HandleFunc("/v1/fleet/claim", c.handleClaim)
	mux.HandleFunc("/v1/fleet/complete", c.handleComplete)
	mux.HandleFunc("/v1/fleet/heartbeat", c.handleHeartbeat)
}

func decodeFleet(w http.ResponseWriter, req *http.Request, v any) bool {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(req.Body).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeFleet(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, req *http.Request) {
	var in RegisterRequest
	if !decodeFleet(w, req, &in) {
		return
	}
	c.touch(in.Worker)
	c.cfg.Logf("fleet: worker %s registered", in.Worker)
	writeFleet(w, RegisterResponse{LeaseTTLMS: c.cfg.LeaseTTL.Milliseconds()})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, req *http.Request) {
	var in LeaseRequest
	if !decodeFleet(w, req, &in) {
		return
	}
	c.touch(in.Worker)
	c.mu.Lock()
	runs := make([]*run, 0, len(c.runs))
	for _, r := range c.runs {
		runs = append(runs, r)
	}
	c.mu.Unlock()
	sort.Slice(runs, func(i, j int) bool { return runs[i].jobID < runs[j].jobID })
	for _, r := range runs {
		t, baseCycles, baseNodes, ok := r.q.Lease()
		if !ok {
			continue
		}
		r.addLease(t.ID, in.Worker)
		c.mu.Lock()
		c.leased++
		c.mu.Unlock()
		writeFleet(w, LeaseResponse{
			JobID:      r.jobID,
			Spec:       r.spec,
			Task:       t,
			BaseCycles: baseCycles,
			BaseNodes:  baseNodes,
			LeaseTTLMS: r.ttl.Milliseconds(),
		})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// runFor resolves a live run, answering 410 Gone (the stale-task signal)
// when the job is not running in this coordinator life.
func (c *Coordinator) runFor(w http.ResponseWriter, jobID string) *run {
	c.mu.Lock()
	r := c.runs[jobID]
	c.mu.Unlock()
	if r == nil {
		http.Error(w, "gone: job not running here", http.StatusGone)
	}
	return r
}

func (c *Coordinator) handleClaim(w http.ResponseWriter, req *http.Request) {
	var in ClaimRequest
	if !decodeFleet(w, req, &in) {
		return
	}
	c.touch(in.Worker)
	r := c.runFor(w, in.JobID)
	if r == nil {
		return
	}
	cl, err := r.q.Claim(symx.ForkKey{Lo: in.Key, Hi: in.Key2}, in.Parent, in.Seq, in.Child)
	if err != nil {
		if errors.Is(err, symx.ErrStaleTask) {
			http.Error(w, "gone: "+err.Error(), http.StatusGone)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeFleet(w, cl)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, req *http.Request) {
	var in CompleteRequest
	if !decodeFleet(w, req, &in) {
		return
	}
	c.touch(in.Worker)
	r := c.runFor(w, in.JobID)
	if r == nil {
		return
	}
	if in.Error != "" {
		r.q.Fail(wireError(in.Error, in.ErrKind))
		r.dropLease(in.TaskID)
		c.cfg.Logf("fleet: job %s task %d failed on worker %s: %s", in.JobID, in.TaskID, in.Worker, in.Error)
		writeFleet(w, CompleteResponse{Accepted: true})
		return
	}
	if in.Result == nil {
		http.Error(w, "bad request: completion carries neither result nor error", http.StatusBadRequest)
		return
	}
	accepted, err := r.q.Complete(in.TaskID, in.Result)
	if err != nil {
		if errors.Is(err, symx.ErrStaleTask) {
			http.Error(w, "gone: "+err.Error(), http.StatusGone)
			return
		}
		// Job-level failure (budget trip, journal write error): the worker
		// is done with the task either way; the run's wait loop surfaces
		// the latched error.
		r.dropLease(in.TaskID)
		writeFleet(w, CompleteResponse{Accepted: false})
		return
	}
	r.dropLease(in.TaskID)
	writeFleet(w, CompleteResponse{Accepted: accepted})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, req *http.Request) {
	var in HeartbeatRequest
	if !decodeFleet(w, req, &in) {
		return
	}
	c.touch(in.Worker)
	r := c.runFor(w, in.JobID)
	if r == nil {
		return
	}
	if !r.heartbeat(in.TaskID, in.Worker) {
		http.Error(w, "gone: lease lost", http.StatusGone)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// JobFleetStats is one active job's scheduling state.
type JobFleetStats struct {
	JobID       string `json:"job_id"`
	Pending     int    `json:"pending"`
	Outstanding int    `json:"outstanding"`
	Completed   int    `json:"completed"`
}

// Stats is the fleet snapshot /readyz reports.
type Stats struct {
	// Workers lists workers seen within three lease TTLs, sorted.
	Workers []string `json:"workers"`
	// Jobs lists the active fleet runs, sorted by job ID.
	Jobs []JobFleetStats `json:"jobs,omitempty"`
	// TasksLeased counts leases granted to remote workers.
	TasksLeased int64 `json:"tasks_leased"`
	// TasksReissued counts expired leases re-issued by the janitor.
	TasksReissued int64 `json:"tasks_reissued"`
}

// Stats snapshots fleet membership and per-job scheduling state.
func (c *Coordinator) Stats() Stats {
	cutoff := time.Now().Add(-3 * c.cfg.LeaseTTL)
	c.mu.Lock()
	s := Stats{Workers: []string{}, TasksLeased: c.leased, TasksReissued: c.reissued}
	for id, seen := range c.workers {
		if seen.After(cutoff) {
			s.Workers = append(s.Workers, id)
		}
	}
	runs := make([]*run, 0, len(c.runs))
	for _, r := range c.runs {
		runs = append(runs, r)
	}
	c.mu.Unlock()
	sort.Strings(s.Workers)
	sort.Slice(runs, func(i, j int) bool { return runs[i].jobID < runs[j].jobID })
	for _, r := range runs {
		pending, _, completed := r.q.Stats()
		s.Jobs = append(s.Jobs, JobFleetStats{
			JobID:       r.jobID,
			Pending:     pending,
			Outstanding: r.outstanding(),
			Completed:   completed,
		})
	}
	return s
}

// Counters reports the monotonic scheduling counters (for expvar).
func (c *Coordinator) Counters() (leased, reissued int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leased, c.reissued
}
