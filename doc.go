// Package repro is a from-scratch Go reproduction of "Determining
// Application-specific Peak Power and Energy Requirements for
// Ultra-low Power Processors" (ASPLOS 2017): symbolic gate-level
// co-analysis of an application binary and a ULP processor netlist that
// produces guaranteed, input-independent peak power and energy bounds.
//
// The public API is package repro/peakpower — a context-aware,
// option-driven, concurrency-safe Analyzer; start there. See README.md
// for the tour and DESIGN.md for the system inventory.
//
// Analyses run on a bit-packed, levelized gate engine (64 nets per
// word op, dirty-level skipping; PERFORMANCE.md documents the design
// and measurements). The original scalar engine is retained as a
// differential-testing oracle, selectable with peakpower.WithEngine.
// The benchmark harness in bench_test.go regenerates every table and
// figure and carries the engine micro/macro benchmarks behind the
// BENCH_*.json trajectory:
//
//	go test -bench=. -benchmem
package repro
