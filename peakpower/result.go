package peakpower

import (
	"fmt"
	"time"

	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/symx"
)

// Result is the co-analysis output for one application: the guaranteed
// requirements, their attribution, and run metadata.
type Result struct {
	// App is the analyzed application's name.
	App string
	// Library names the standard-cell library / operating point.
	Library string
	// ClockHz is the analysis clock frequency.
	ClockHz float64
	// Engine names the gate-level evaluation engine that produced the
	// result ("packed" or "scalar"; see WithEngine).
	Engine string

	// PeakPowerMW is the input-independent peak power requirement: no
	// execution of the application, on any input, can exceed it.
	PeakPowerMW float64
	// PeakEnergyJ is the input-independent peak energy requirement (the
	// maximum-energy execution path, loop bounds applied).
	PeakEnergyJ float64
	// NPEJPerCycle is the normalized peak energy (J/cycle): the maximum
	// average rate at which the application can consume energy.
	NPEJPerCycle float64
	// BoundingCycles is the runtime of the bounding path.
	BoundingCycles float64
	// PeakTrace is the per-cycle peak-power trace along the
	// maximum-energy path (Figure 3.3's series).
	PeakTrace []float64
	// COIs are the top cycles of interest with microarchitectural
	// attribution (Figure 3.6), sorted descending by power; COIs[0] is
	// the global peak. See Attribution for a resolved rendering.
	COIs []power.Peak
	// Best is the global peak's full attribution, including the active
	// cell set (Figures 1.5/3.4).
	Best power.Peak
	// UnionActive marks cells that can possibly toggle (per cell index).
	UnionActive []bool
	// Modules names the per-module breakdown columns (the index space of
	// power.Peak.ByModuleMW).
	Modules []string

	// Paths, Nodes, and SimCycles summarize the exploration.
	Paths, Nodes, SimCycles int
	// Elapsed is the wall-clock analysis time.
	Elapsed time.Duration
	// Tree is the annotated symbolic execution tree.
	Tree *symx.Tree

	img *isa.Image
}

// Image returns the analyzed binary.
func (r *Result) Image() *Image { return r.img }

// ActiveGates counts the potentially-toggled cells.
func (r *Result) ActiveGates() int {
	n := 0
	for _, a := range r.UnionActive {
		if a {
			n++
		}
	}
	return n
}

// COI is one cycle of interest with its attribution resolved to
// human-readable form.
type COI struct {
	// Cycle is the cycle's position along its exploration path.
	Cycle int
	// PowerMW is the cycle's bounded power.
	PowerMW float64
	// Instr is the mnemonic of the instruction in flight; PrevInstr the
	// one before it.
	Instr, PrevInstr string
	// State is the controller state name at the peak.
	State string
	// ByModuleMW is the per-module power split.
	ByModuleMW map[string]float64
}

// Attribution renders the cycles of interest with instruction mnemonics
// and named module splits; entry 0 is the global peak.
func (r *Result) Attribution() []COI {
	out := make([]COI, len(r.COIs))
	for i, pk := range r.COIs {
		c := COI{
			Cycle:      pk.PathPos,
			PowerMW:    pk.PowerMW,
			Instr:      r.Mnemonic(pk.FetchAddr),
			PrevInstr:  r.Mnemonic(pk.PrevFetch),
			State:      pk.State,
			ByModuleMW: make(map[string]float64, len(pk.ByModuleMW)),
		}
		for mi, mw := range pk.ByModuleMW {
			c.ByModuleMW[r.Modules[mi]] = mw
		}
		out[i] = c
	}
	return out
}

// Mnemonic renders the instruction at an image address.
func (r *Result) Mnemonic(addr uint16) string {
	if r.img == nil {
		return "?"
	}
	return isa.Mnemonic(r.img, addr)
}

// ConcreteRun is an input-based execution's power characterization.
type ConcreteRun struct {
	// PeakMW is the run's observed peak power (steady state).
	PeakMW float64
	// Trace is the per-cycle power (mW).
	Trace []float64
	// EnergyJ integrates the trace.
	EnergyJ float64
	// NPEJPerCycle is EnergyJ / cycles.
	NPEJPerCycle float64
	// UnionActive marks cells that toggled.
	UnionActive []bool
}

// Combine implements the paper's Chapter 6 rule for multi-programmed
// systems (including dynamic linking): the processor's requirement is
// the union over all co-resident applications — the maximum of the peak
// power and energy bounds, and the union of the potentially-toggled
// sets.
func Combine(results ...*Result) (*Result, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("peakpower: no results to combine")
	}
	out := &Result{
		App:         "combined",
		Library:     results[0].Library,
		ClockHz:     results[0].ClockHz,
		Modules:     results[0].Modules,
		UnionActive: make([]bool, len(results[0].UnionActive)),
	}
	for _, r := range results {
		if len(r.UnionActive) != len(out.UnionActive) {
			return nil, fmt.Errorf("peakpower: results from different designs cannot be combined")
		}
		if r.PeakPowerMW > out.PeakPowerMW {
			out.PeakPowerMW = r.PeakPowerMW
			out.Best = r.Best
			out.COIs = r.COIs
			out.img = r.img
		}
		if r.PeakEnergyJ > out.PeakEnergyJ {
			out.PeakEnergyJ = r.PeakEnergyJ
			out.BoundingCycles = r.BoundingCycles
		}
		if r.NPEJPerCycle > out.NPEJPerCycle {
			out.NPEJPerCycle = r.NPEJPerCycle
		}
		for i, a := range r.UnionActive {
			if a {
				out.UnionActive[i] = true
			}
		}
		out.Paths += r.Paths
		out.Nodes += r.Nodes
		out.SimCycles += r.SimCycles
		out.Elapsed += r.Elapsed
	}
	return out, nil
}
