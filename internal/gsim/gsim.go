// Package gsim is the cycle-based gate-level simulator at the heart of the
// co-analysis. It evaluates a built netlist in the three-valued domain of
// package logic, so the same engine performs both concrete ("input-based")
// simulation and the symbolic ("X-based") simulation of the paper's
// Section 3.1, in which unknown values are propagated for all inputs.
//
// Each Step models one clock cycle of a design with a registered bus
// interface:
//
//  1. flip-flops capture their next state (computed from last cycle's
//     settled values),
//  2. the external Bus observes the freshly captured, registered bus
//     outputs, services the access, and drives the read-data inputs,
//  3. combinational logic settles in one topologically ordered pass,
//  4. per-gate activity is derived by comparing against the previous
//     cycle's settled values.
//
// Activity follows the paper's definition: a gate is active in a cycle if
// its output value changed, or if its output is X and it is driven by an
// active gate (Section 3.1).
//
// # Engines
//
// Two interchangeable engines implement those semantics behind one
// Simulator API, selected at construction with NewEngine:
//
//   - EnginePacked (the default) holds net state as two bit-planes of
//     64-bit words (value/known, canonical v&^k == 0) and evaluates the
//     netlist's PackedPlan: same-kind gate batches, word-parallel
//     cell.EvalPlanes evaluation, and dirty-level scheduling that skips
//     any topological level whose fan-in words did not change this
//     cycle. Activity toggles fall out of a packed XOR of the previous
//     and current planes; only unchanged-X gates need the per-gate
//     driven-by-active cascade. Snapshots copy the planes — an eighth
//     of the scalar state — which is what makes the symbolic engine's
//     per-cycle rolling snapshot cheap.
//   - EngineScalar is the straightforward one-Trit-per-net,
//     one-cell.Eval-per-gate reference implementation. It is retained
//     as the differential-testing oracle: the property tests in this
//     package drive random netlists through both engines and require
//     bit-identical values, activity flags, and state hashes.
//
// Both engines are deterministic; a concrete execution is always a
// refinement of a symbolic one, and the two engines agree symbol for
// symbol on every net, every cycle.
package gsim

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cell"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// Engine selects the evaluation engine backing a Simulator.
type Engine uint8

const (
	// EnginePacked is the bit-packed, levelized, dirty-level-skipping
	// engine — the default.
	EnginePacked Engine = iota
	// EngineScalar is the per-gate reference engine, kept as the
	// differential-testing oracle.
	EngineScalar
)

// String names the engine ("packed" or "scalar").
func (e Engine) String() string {
	switch e {
	case EnginePacked:
		return "packed"
	case EngineScalar:
		return "scalar"
	}
	return fmt.Sprintf("Engine(%d)", uint8(e))
}

// ParseEngine resolves an engine name accepted by String.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "packed":
		return EnginePacked, nil
	case "scalar":
		return EngineScalar, nil
	}
	return 0, fmt.Errorf("gsim: unknown engine %q (want packed or scalar)", s)
}

// Bus services memory/peripheral accesses. Tick is called once per cycle
// after flip-flops have captured and before combinational settling; it
// may read registered output nets with s.Val and must drive read-data
// primary inputs with s.SetNet.
type Bus interface {
	Tick(s *Simulator)
}

// CycleHook observes every completed cycle; used by power analysis,
// activity recording, and VCD dumping. prev and cur are the settled net
// values of the previous and current cycle (do not retain or mutate).
type CycleHook func(cycle uint64, s *Simulator)

// Simulator simulates one netlist instance.
type Simulator struct {
	n      *netlist.Netlist
	lib    *cell.Library
	bus    Bus
	engine Engine

	// Scalar engine state (EngineScalar only).
	vals    []logic.Trit
	prev    []logic.Trit
	active  []bool
	prevAct []bool
	order   []netlist.CellID // combinational cells in topological order
	seqNx   []logic.Trit

	// Packed engine state (EnginePacked only).
	pk *packedSim

	seq []netlist.CellID

	staged []stagedInput
	inStep bool

	cycle uint64
	hooks []CycleHook

	// Memoization hit/miss totals, atomic so a progress reporter can
	// read them while another goroutine steps the simulator.
	memoHits, memoMisses atomic.Int64

	// Per-kind transition-energy tables and the design's total
	// clock-pin energy, precomputed from lib for BoundEnergyFJ.
	riseFJ, fallFJ, maxFJ [cell.NumKinds]float64
	clkTotalFJ            float64
}

// stagedInput is an input assignment made between Steps; it takes effect
// at the start of the next cycle, after the previous cycle's values have
// been latched as "previous" (so input changes register as activity).
type stagedInput struct {
	id netlist.NetID
	v  logic.Trit
}

// New creates a simulator for a built netlist using the default packed
// engine. All nets start at X — the paper's initial condition ("the
// states of all gates ... are initialized to Xs").
func New(n *netlist.Netlist, lib *cell.Library, bus Bus) *Simulator {
	return NewEngine(n, lib, bus, EnginePacked)
}

// NewEngine creates a simulator backed by the chosen engine. Both
// engines implement identical semantics; EngineScalar is the slow
// reference oracle.
func NewEngine(n *netlist.Netlist, lib *cell.Library, bus Bus, engine Engine) *Simulator {
	if !n.Built() {
		panic("gsim: netlist not built")
	}
	s := &Simulator{
		n: n, lib: lib, bus: bus, engine: engine,
		seq: n.Sequential(),
	}
	for _, k := range cell.Kinds() {
		p := lib.Params(k)
		s.riseFJ[k] = p.EnergyRise
		s.fallFJ[k] = p.EnergyFall
		_, _, s.maxFJ[k] = lib.MaxTransition(k)
	}
	for ci := 0; ci < n.NumCells(); ci++ {
		s.clkTotalFJ += lib.Params(n.Cell(netlist.CellID(ci)).Kind).EnergyClk
	}
	switch engine {
	case EnginePacked:
		s.pk = newPackedSim(n.Packed())
	case EngineScalar:
		order := make([]netlist.CellID, 0, n.NumCells())
		for _, level := range n.Levels() {
			order = append(order, level...)
		}
		s.vals = make([]logic.Trit, n.NumNets())
		s.prev = make([]logic.Trit, n.NumNets())
		s.active = make([]bool, n.NumNets())
		s.prevAct = make([]bool, n.NumNets())
		s.order = order
		s.seqNx = make([]logic.Trit, len(s.seq))
		for i := range s.vals {
			s.vals[i] = logic.X
			s.prev[i] = logic.X
		}
	default:
		panic("gsim: unknown engine")
	}
	return s
}

// Netlist returns the simulated design.
func (s *Simulator) Netlist() *netlist.Netlist { return s.n }

// Library returns the cell library used for power lookups.
func (s *Simulator) Library() *cell.Library { return s.lib }

// Engine reports which evaluation engine backs the simulator.
func (s *Simulator) Engine() Engine { return s.engine }

// Cycle returns the number of completed Steps.
func (s *Simulator) Cycle() uint64 { return s.cycle }

// AddHook registers a per-cycle observer.
func (s *Simulator) AddHook(h CycleHook) { s.hooks = append(s.hooks, h) }

// Val returns the settled value of a net in the current cycle.
func (s *Simulator) Val(id netlist.NetID) logic.Trit {
	if s.pk != nil {
		return s.pk.val(id)
	}
	return s.vals[id]
}

// PrevVal returns the settled value of a net in the previous cycle.
func (s *Simulator) PrevVal(id netlist.NetID) logic.Trit {
	if s.pk != nil {
		return s.pk.prevVal(id)
	}
	return s.prev[id]
}

// Active reports whether the net was active in the current cycle.
func (s *Simulator) Active(id netlist.NetID) bool {
	if s.pk != nil {
		return s.pk.isActive(id)
	}
	return s.active[id]
}

// SetNet drives a primary-input net. Outside Step the assignment is
// staged and takes effect at the start of the next cycle; a Bus calling
// SetNet from Tick drives the net immediately (read data for the cycle in
// flight). SetNet panics when applied to a driven net, which would
// silently desynchronize simulation from the netlist.
func (s *Simulator) SetNet(id netlist.NetID, v logic.Trit) {
	if !s.n.IsInput(id) {
		panic(fmt.Sprintf("gsim: SetNet on non-input net %s", s.n.NetName(id)))
	}
	if s.inStep {
		if s.pk != nil {
			s.pk.setTrit(id, v)
		} else {
			s.vals[id] = v
		}
		return
	}
	s.staged = append(s.staged, stagedInput{id, v})
}

// SetPort drives a named input port with a word (bit i of w drives net i
// of the port).
func (s *Simulator) SetPort(name string, w logic.Word) {
	nets := s.n.Port(name)
	if nets == nil {
		panic("gsim: unknown port " + name)
	}
	if len(nets) != len(w) {
		panic(fmt.Sprintf("gsim: port %s width %d, word width %d", name, len(nets), len(w)))
	}
	for i, id := range nets {
		s.SetNet(id, w[i])
	}
}

// SetPortUint drives a named input port with a concrete value.
func (s *Simulator) SetPortUint(name string, v uint64) {
	nets := s.n.Port(name)
	if nets == nil {
		panic("gsim: unknown port " + name)
	}
	s.SetPort(name, logic.FromUint(v, len(nets)))
}

// Port reads the current value of a named port as a word.
func (s *Simulator) Port(name string) logic.Word {
	nets := s.n.Port(name)
	if nets == nil {
		panic("gsim: unknown port " + name)
	}
	w := make(logic.Word, len(nets))
	for i, id := range nets {
		w[i] = s.Val(id)
	}
	return w
}

// PortUint reads a named port as a concrete value; ok is false if any bit
// is X. Unlike Port, it does not allocate — bus models and power sinks
// call it every cycle.
func (s *Simulator) PortUint(name string) (uint64, bool) {
	nets := s.n.Port(name)
	if nets == nil {
		panic("gsim: unknown port " + name)
	}
	var v uint64
	for i, id := range nets {
		t := s.Val(id)
		if t == logic.X {
			return 0, false
		}
		v |= uint64(t) << uint(i)
	}
	return v, true
}

// Step advances simulation by one clock cycle.
func (s *Simulator) Step() {
	if s.pk != nil {
		s.stepPacked()
	} else {
		s.stepScalar()
	}
	s.cycle++
	for _, h := range s.hooks {
		h(s.cycle, s)
	}
}

// Run advances n cycles.
func (s *Simulator) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Snapshot is a restorable copy of simulator state (net values only; bus
// state is snapshotted by the system owning the bus). Only the fields of
// the engine that produced it are populated.
type Snapshot struct {
	// Vals and Prev are the scalar engine's net values.
	Vals []logic.Trit
	Prev []logic.Trit
	// PlaneV/PlaneK and PrevPlaneV/PrevPlaneK are the packed engine's
	// current and previous value/known planes.
	PlaneV, PlaneK         []uint64
	PrevPlaneV, PrevPlaneK []uint64
	// Settled records whether the packed engine has settled at least
	// once (before the first Step, every level must be force-evaluated).
	Settled bool
	Staged  []stagedInput
	Cycle   uint64

	// anchor/epoch record the copy-on-write anchor state at capture
	// time: Restore keeps the simulator's anchor valid only when both
	// still match (see delta.go for the invariant).
	anchor *planeAnchor
	epoch  uint64
}

// Snapshot captures the current simulator state, including any staged
// input assignments not yet consumed by Step.
func (s *Simulator) Snapshot() *Snapshot {
	sn := &Snapshot{}
	s.SnapshotInto(sn)
	return sn
}

// SnapshotInto captures the current state into sn, reusing its buffers —
// the allocation-free form used by the symbolic engine's per-cycle
// rolling snapshot.
func (s *Simulator) SnapshotInto(sn *Snapshot) {
	if s.pk != nil {
		p := s.pk
		sn.PlaneV = append(sn.PlaneV[:0], p.curV...)
		sn.PlaneK = append(sn.PlaneK[:0], p.curK...)
		sn.PrevPlaneV = append(sn.PrevPlaneV[:0], p.prevV...)
		sn.PrevPlaneK = append(sn.PrevPlaneK[:0], p.prevK...)
		sn.Settled = p.settled
		sn.anchor = p.anchor
		sn.epoch = p.epoch
	} else {
		sn.Vals = append(sn.Vals[:0], s.vals...)
		sn.Prev = append(sn.Prev[:0], s.prev...)
	}
	sn.Staged = append(sn.Staged[:0], s.staged...)
	sn.Cycle = s.cycle
}

// CloneInto deep-copies sn into dst, reusing dst's buffers — used by the
// symbolic engine to retain fork snapshots from a recycled pool instead
// of allocating fresh state per fork.
func (sn *Snapshot) CloneInto(dst *Snapshot) {
	dst.Vals = append(dst.Vals[:0], sn.Vals...)
	dst.Prev = append(dst.Prev[:0], sn.Prev...)
	dst.PlaneV = append(dst.PlaneV[:0], sn.PlaneV...)
	dst.PlaneK = append(dst.PlaneK[:0], sn.PlaneK...)
	dst.PrevPlaneV = append(dst.PrevPlaneV[:0], sn.PrevPlaneV...)
	dst.PrevPlaneK = append(dst.PrevPlaneK[:0], sn.PrevPlaneK...)
	dst.Settled = sn.Settled
	dst.Staged = append(dst.Staged[:0], sn.Staged...)
	dst.Cycle = sn.Cycle
	dst.anchor = sn.anchor
	dst.epoch = sn.epoch
}

// Clone returns an independent deep copy of sn.
func (sn *Snapshot) Clone() *Snapshot {
	c := &Snapshot{}
	sn.CloneInto(c)
	return c
}

// StagedInputRec is the exported form of one staged input assignment.
// Snapshot.Staged's entry type has unexported fields, so serializers (the
// exploration checkpoint journal) round-trip staged inputs through these
// records instead.
type StagedInputRec struct {
	ID netlist.NetID
	V  logic.Trit
}

// StagedRecs appends the snapshot's staged input assignments to dst as
// exported records, in application order, and returns the extended slice.
func (sn *Snapshot) StagedRecs(dst []StagedInputRec) []StagedInputRec {
	for _, st := range sn.Staged {
		dst = append(dst, StagedInputRec{ID: st.id, V: st.v})
	}
	return dst
}

// SetStagedRecs replaces the snapshot's staged input assignments.
func (sn *Snapshot) SetStagedRecs(recs []StagedInputRec) {
	sn.Staged = sn.Staged[:0]
	for _, r := range recs {
		sn.Staged = append(sn.Staged, stagedInput{id: r.ID, v: r.V})
	}
}

// Restore rewinds the simulator to a snapshot.
func (s *Simulator) Restore(sn *Snapshot) {
	if s.pk != nil {
		p := s.pk
		copy(p.curV, sn.PlaneV)
		copy(p.curK, sn.PlaneK)
		copy(p.prevV, sn.PrevPlaneV)
		copy(p.prevK, sn.PrevPlaneK)
		p.settled = sn.Settled
		p.boundValid = false
		p.actValid = false
		for i := range p.act {
			p.act[i] = 0
		}
		// The anchor survives only when the snapshot was captured on
		// this simulator against the same anchor at the same epoch —
		// then since has only grown since the capture and still covers
		// the restored words' anchor diffs. Any other provenance
		// (portable state, pre-anchor capture) invalidates it; the next
		// fork capture re-anchors.
		if p.anchor != nil && (sn.anchor != p.anchor || sn.epoch != p.epoch) {
			p.anchor = nil
		}
	} else {
		copy(s.vals, sn.Vals)
		copy(s.prev, sn.Prev)
		for i := range s.active {
			s.active[i] = false
		}
	}
	s.staged = append(s.staged[:0], sn.Staged...)
	s.cycle = sn.Cycle
}

// ActiveCells appends to dst the IDs of cells whose outputs are active in
// the current cycle and returns the extended slice.
func (s *Simulator) ActiveCells(dst []netlist.CellID) []netlist.CellID {
	s.ForEachActiveCell(func(ci netlist.CellID) {
		dst = append(dst, ci)
	})
	return dst
}

// ForEachActiveCell calls f for every cell whose output is active in the
// current cycle. On the packed engine this scans the activity plane's
// set bits — O(active) rather than O(cells) — which is what keeps the
// streaming power sink off the all-cells path. Both engines visit cells
// in ascending plane position, so order-sensitive consumers (the power
// sink's per-module float accumulation) are engine-independent.
func (s *Simulator) ForEachActiveCell(f func(netlist.CellID)) {
	if s.pk != nil {
		s.pk.forEachActiveCell(f)
		return
	}
	for _, ci := range s.n.Packed().CellOfPos {
		if ci >= 0 && s.active[s.n.Cell(ci).Out] {
			f(ci)
		}
	}
}

// NewActiveAccumulator returns a zeroed union-activity accumulator for
// use with AccumulateNewActive. Its contents are engine-internal; treat
// it as opaque and per-Simulator.
func (s *Simulator) NewActiveAccumulator() []uint64 {
	return make([]uint64, s.n.Packed().Words)
}

// AccumulateNewActive ORs this cycle's activity into acc and calls f
// exactly once per cell the first cycle it turns active — the running
// "potentially toggled" union of the paper's Figures 1.5/3.4. On the
// packed engine the OR is word-parallel and per-cell work happens only
// on first activation, so a whole run costs O(distinct active cells)
// beyond the word ops.
func (s *Simulator) AccumulateNewActive(acc []uint64, f func(netlist.CellID)) {
	if s.pk != nil {
		s.pk.accumulateNewActive(acc, f)
		return
	}
	pos := s.n.Packed().Pos
	for ci := 0; ci < s.n.NumCells(); ci++ {
		out := s.n.Cell(netlist.CellID(ci)).Out
		if !s.active[out] {
			continue
		}
		p := pos[out]
		w, b := p>>6, uint(p&63)
		if acc[w]>>b&1 == 0 {
			acc[w] |= 1 << b
			f(netlist.CellID(ci))
		}
	}
}

// BoundEnergyFJ returns the cycle's maximum dynamic energy in
// femtojoules under the streaming Algorithm 2 rule: gates with known
// values contribute their actual transition energy, active X-involved
// gates the worst transition consistent with their known endpoint, and
// temporally constant X gates nothing; every flip-flop's clock pin
// dissipates unconditionally. This is the engine-accelerated form of
// power.CycleBoundFJ's sum (without the per-module split) — on the
// packed engine, known transitions are popcounts per same-kind batch.
//
// Both engines produce bit-identical sums: the scalar path walks the
// same packed plan, counts each 64-lane chunk's transitions as
// integers, and multiplies once per class in the packed engine's exact
// association order (see chunkBoundFJ). Sealed reports must not depend
// on which engine produced them.
func (s *Simulator) BoundEnergyFJ() float64 {
	if s.pk != nil {
		return s.pk.boundEnergyFJ(s)
	}
	plan := s.n.Packed()
	e := s.clkTotalFJ
	for bi := range plan.Seq {
		e += s.scalarBatchBoundFJ(&plan.Seq[bi])
	}
	for li := range plan.Levels {
		lv := &plan.Levels[li]
		for bi := range lv.Batches {
			e += s.scalarBatchBoundFJ(&lv.Batches[bi])
		}
	}
	return e
}

// scalarBatchBoundFJ is the scalar engine's per-batch bound: the
// per-cell rule of power's cellBoundFJ, accumulated as per-chunk
// integer counts so the float association matches chunkBoundFJ
// bit-for-bit.
func (s *Simulator) scalarBatchBoundFJ(b *netlist.PackedBatch) float64 {
	rise, fall, maxE := s.riseFJ[b.Kind], s.fallFJ[b.Kind], s.maxFJ[b.Kind]
	e := 0.0
	lanes := len(b.Cells)
	for lane0 := 0; lane0 < lanes; lane0 += 64 {
		n := min(64, lanes-lane0)
		var nRise, nFall, nMax, nXRise, nXFall int
		for i := 0; i < n; i++ {
			out := s.n.Cell(b.Cells[lane0+i]).Out
			prev, cur := s.prev[out], s.vals[out]
			switch {
			case prev.Known() && cur.Known():
				if prev != cur {
					if cur == logic.H {
						nRise++
					} else {
						nFall++
					}
				}
			case !s.active[out]:
				// Temporally constant unknown: cannot toggle.
			case prev == logic.X && cur == logic.X:
				nMax++
			case cur == logic.X:
				if prev == logic.L {
					nXRise++
				} else {
					nXFall++
				}
			default:
				if cur == logic.H {
					nXRise++
				} else {
					nXFall++
				}
			}
		}
		ce := 0.0
		ce += float64(nRise) * rise
		ce += float64(nFall) * fall
		ce += float64(nMax) * maxE
		ce += float64(nXRise) * rise
		ce += float64(nXFall) * fall
		e += ce
	}
	return e
}

// StateHash returns a hash of all flip-flop values — the processor-state
// component of Algorithm 1's "seen this state at this branch before"
// check. Memory contents are hashed by the system layer. Both engines
// produce identical hashes for identical symbolic states.
func (s *Simulator) StateHash() uint64 {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for _, ci := range s.seq {
		h ^= uint64(s.Val(s.n.Cell(ci).Out))
		h *= 1099511628211
	}
	return h
}

// StateHash2 is an independent second hash over the same flip-flop
// walk, with a different basis and multiplier, forming the high word of
// the exploration's 128-bit merge key. Two states must collide in both
// hashes (plus the memory and bus components) to be merged wrongly —
// see DESIGN.md "Merge keys". A second multiplier (not merely a second
// basis) matters: FNV with the same prime collides identically for
// equal-length inputs whenever the first hash does.
func (s *Simulator) StateHash2() uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, ci := range s.seq {
		h ^= uint64(s.Val(s.n.Cell(ci).Out))
		h *= 0x106689D45497DE35
	}
	return h
}

// EnableMemo turns on whole-step result memoization (stepmemo.go) with
// the given table byte budget (<= 0 selects the default). It reports
// false on the scalar engine, which has no packed planes to key on.
// Memoization never changes simulation results — only whether a cycle
// phase is evaluated or replayed — so it is safe to enable on any
// packed simulator.
func (s *Simulator) EnableMemo(maxBytes int) bool {
	if s.pk == nil {
		return false
	}
	if maxBytes <= 0 {
		maxBytes = defaultStepMemoBytes
	}
	s.pk.stepMemo = newStepTable(s.pk.plan.Words, maxBytes)
	return true
}

// EnableLevelMemo additionally turns on the fine-grained per-level memo
// tier (memo.go) with the given byte budget (<= 0 selects the default).
// The per-level grain catches partial state repeats the whole-step
// table misses, at a per-dirty-level hash cost that only pays off when
// replays dominate; see memo.go. Like EnableMemo it never changes
// simulation results and reports false on the scalar engine.
func (s *Simulator) EnableLevelMemo(maxBytes int) bool {
	if s.pk == nil {
		return false
	}
	if maxBytes <= 0 {
		maxBytes = defaultMemoBytes
	}
	s.pk.memo = newMemoTable(s.pk.plan, maxBytes)
	return true
}

// MemoStats returns the cumulative memoization hit/miss counters. Safe
// to call from any goroutine.
func (s *Simulator) MemoStats() (hits, misses int64) {
	return s.memoHits.Load(), s.memoMisses.Load()
}

// DynamicEnergyFJ returns the concrete dynamic energy, in femtojoules,
// dissipated by transitions in the current cycle: the sum of per-cell
// transition energies (X-involved transitions contribute nothing here;
// bounding their contribution is the power package's job) plus the
// clock-pin energy of every flip-flop.
func (s *Simulator) DynamicEnergyFJ() float64 {
	e := 0.0
	for ci := 0; ci < s.n.NumCells(); ci++ {
		c := s.n.Cell(netlist.CellID(ci))
		e += s.lib.TransitionEnergy(c.Kind, s.PrevVal(c.Out), s.Val(c.Out))
		e += s.lib.Params(c.Kind).EnergyClk
	}
	return e
}

// LeakagePowerNW returns the total leakage power of the design in
// nanowatts.
func (s *Simulator) LeakagePowerNW() float64 {
	p := 0.0
	for ci := 0; ci < s.n.NumCells(); ci++ {
		p += s.lib.Params(s.n.Cell(netlist.CellID(ci)).Kind).LeakageNW
	}
	return p
}
