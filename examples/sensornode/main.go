// Sensornode: size the energy harvester and battery of a solar sensor
// node (the Figure 1.2/1.3 workflow) from analyzed peak power and energy
// requirements, and compare against conventional sizing.
//
//	go run ./examples/sensornode
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/sizing"
	"repro/peakpower"
)

func main() {
	// The node runs the tHold benchmark (sensor thresholding) forever in
	// a compute/sleep cycle.
	analyzer, err := peakpower.New()
	if err != nil {
		log.Fatal(err)
	}
	req, err := analyzer.AnalyzeBench(context.Background(), "tHold")
	if err != nil {
		log.Fatal(err)
	}
	// The conventional baseline: guardbanded input-based profiling
	// (in-repo tooling, via the analyzer's netlist/model escape hatch).
	b := bench.ByName("tHold")
	prof, err := baseline.Profile(analyzer.Netlist(), analyzer.Model(), b, 5, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("application: %s — %s\n\n", b.Name, b.Desc)
	fmt.Printf("peak power:   X-based %.3f mW vs guardbanded profiling %.3f mW\n",
		req.PeakPowerMW, prof.GuardbandedPeakMW)

	// Type 1 (harvester-powered): the harvester must cover peak power.
	indoor := sizing.Harvesters()[1] // indoor photovoltaic
	areaX := sizing.HarvesterAreaCM2(req.PeakPowerMW, indoor)
	areaGB := sizing.HarvesterAreaCM2(prof.GuardbandedPeakMW, indoor)
	fmt.Printf("\nType 1 node (indoor PV, %.1f uW/cm2):\n", indoor.PowerDensityMWCM2*1000)
	fmt.Printf("  harvester sized by GB profiling: %.1f cm2\n", areaGB)
	fmt.Printf("  harvester sized by co-analysis:  %.1f cm2 (%.1f%% smaller)\n",
		areaX, sizing.ReductionPct(1, areaGB, areaX))

	// Type 3 (battery-powered): battery sized by energy over lifetime.
	// One compute burst per second for a 5-year lifetime.
	bursts := 5.0 * 365 * 24 * 3600
	liion := sizing.Batteries()[0]
	eX := req.PeakEnergyJ * bursts
	eGB := prof.GuardbandedNPE * req.BoundingCycles * bursts
	fmt.Printf("\nType 3 node (5-year lifetime, 1 burst/s, Li-ion):\n")
	fmt.Printf("  battery by GB profiling: %.0f mm3 (%.1f g)\n",
		sizing.BatteryVolumeMM3(eGB, liion), sizing.BatteryMassG(eGB, liion))
	fmt.Printf("  battery by co-analysis:  %.0f mm3 (%.1f g)  (%.1f%% smaller)\n",
		sizing.BatteryVolumeMM3(eX, liion), sizing.BatteryMassG(eX, liion),
		sizing.ReductionPct(1, eGB, eX))

	// The paper's reference node (Figure 1.2).
	node := sizing.Reference()
	fmt.Printf("\nreference node (32.6 cm2 harvester): saves %.2f cm2 of solar cell\n",
		node.HarvesterSavingCM2(prof.GuardbandedPeakMW, req.PeakPowerMW))

	// Chapter 5: sweep the registered design points (standard, down-sized,
	// power-gated) and re-size the harvester for each — the target registry
	// makes a design-space sweep a loop over Targets().
	fmt.Printf("\ndesign-point sweep (indoor PV harvester area for %s):\n", b.Name)
	for _, ti := range peakpower.Targets() {
		an, err := peakpower.NewFor(context.Background(), ti.Name)
		if err != nil {
			log.Fatal(err)
		}
		r, err := an.AnalyzeBench(context.Background(), "tHold")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %-12s peak %.3f mW -> %.1f cm2\n",
			ti.Name, r.Library, r.PeakPowerMW,
			sizing.HarvesterAreaCM2(r.PeakPowerMW, indoor))
	}
}
