package figures

import (
	"bytes"
	"strings"
	"testing"
)

// One shared config across tests (analysis results are cached in it).
var testCfg *Config

func config(t *testing.T) *Config {
	t.Helper()
	if testCfg == nil {
		c, err := NewConfig(nil)
		if err != nil {
			t.Fatal(err)
		}
		c.ProfileRuns = 2
		testCfg = c
	}
	return testCfg
}

var smokeSet = []string{"mult", "tea8"}

func TestFig22And23(t *testing.T) {
	c := config(t)
	var buf bytes.Buffer
	c.Out = &buf
	rows, err := c.Fig22(smokeSet)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].MaxPeak < rows[0].MinPeak {
		t.Fatalf("rows: %+v", rows)
	}
	m, err := c.Fig23()
	if err != nil {
		t.Fatal(err)
	}
	if m.AvgMW >= m.PeakMW {
		t.Fatal("average must sit below peak")
	}
	if !strings.Contains(buf.String(), "Figure 2.2") {
		t.Fatal("rendering missing")
	}
	c.Out = nil
}

func TestFig15ActivityOrdering(t *testing.T) {
	c := config(t)
	th, pi, err := c.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	if pi <= th {
		t.Fatalf("PI (%d) must exceed tHold (%d) at the peak cycle", pi, th)
	}
}

func TestFig32Equivalence(t *testing.T) {
	c := config(t)
	if err := c.Fig32(); err != nil {
		t.Fatal(err)
	}
}

func TestFig33And35Bounds(t *testing.T) {
	c := config(t)
	traces, err := c.Fig33(smokeSet)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces["mult"]) == 0 {
		t.Fatal("empty trace")
	}
	x, in, err := c.Fig35()
	if err != nil {
		t.Fatal(err)
	}
	for cyc := range in {
		if cyc < len(x) && in[cyc] > x[cyc]+1e-9 {
			t.Fatalf("cycle %d: concrete above bound", cyc)
		}
	}
}

func TestFig34Containment(t *testing.T) {
	c := config(t)
	res, err := c.Fig34("mult",
		[]uint16{1, 0, 2, 0, 1, 2, 0, 1},
		[]uint16{0xFFFF, 0xAAAA, 0xF731, 0x8001, 0x7FFF, 0x5555, 0xFF0F, 0xFFFE})
	if err != nil {
		t.Fatal(err)
	}
	if res.InputOnly != 0 {
		t.Fatalf("%d gates escaped the X-based set", res.InputOnly)
	}
	if res.XOnly < res.Common {
		t.Fatal("X set must be a superset")
	}
}

func TestFig51OrderingAndAggregates(t *testing.T) {
	c := config(t)
	rows, agg, err := c.Fig51(smokeSet)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !(r.DesignTool > r.GBStress && r.GBStress > r.XBased && r.XBased >= r.InputBased) {
			t.Fatalf("ordering violated: %+v", r)
		}
	}
	if agg.VsDesignPct <= 0 || agg.VsGBInputPct <= 0 || agg.AboveObservedPct < 0 {
		t.Fatalf("aggregates: %+v", agg)
	}
}

func TestFig52AndTables(t *testing.T) {
	c := config(t)
	rows, _, err := c.Fig52(smokeSet)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.XBased > r.GBInput || r.XBased < r.InputBased-1e-15 {
			t.Fatalf("NPE ordering: %+v", r)
		}
	}
	t51, err := c.Table51(smokeSet)
	if err != nil {
		t.Fatal(err)
	}
	t52, err := c.Table52(smokeSet)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range []map[string][]float64{t51, t52} {
		for base, row := range tab {
			if len(row) != 6 || row[5] <= 0 {
				t.Fatalf("%s row: %v", base, row)
			}
		}
	}
}

func TestFig54GuidedSelectionNeverWorsens(t *testing.T) {
	c := config(t)
	rows, err := c.Fig54([]string{"mult", "tea8"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PeakReductionPct < -1e-9 {
			t.Fatalf("%s: guided selection regressed the peak: %+v", r.Bench, r)
		}
	}
	before, after, err := c.Fig55()
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 || len(after) == 0 {
		t.Fatal("missing traces")
	}
}

func TestEnergyCrossCheck(t *testing.T) {
	c := config(t)
	bound, concrete, err := c.EnergyCrossCheck("tea8")
	if err != nil {
		t.Fatal(err)
	}
	if concrete > bound {
		t.Fatalf("concrete energy %.3e exceeds bound %.3e", concrete, bound)
	}
}

func TestFig53CountsTransforms(t *testing.T) {
	c := config(t)
	counts := c.Fig53()
	if counts["mult"]["OPT3"] == 0 || counts["rle"]["OPT2"] == 0 || counts["binSearch"]["OPT1"] == 0 {
		t.Fatalf("expected transform sites missing: %v", counts)
	}
}
