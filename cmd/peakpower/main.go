// Command peakpower is the co-analysis tool: it takes one or more
// applications (built-in benchmarks or an assembly file) and reports the
// guaranteed, input-independent peak power and energy requirements of
// a registered processor design point running them, with cycle-of-interest
// attribution.
//
// Usage:
//
//	peakpower -bench mult
//	peakpower -bench mult -json               (serialized versioned Report)
//	peakpower -bench mult,tea8,binSearch      (batch mode, concurrent)
//	peakpower -target ulp430-sized -bench mult  (sweep design points)
//	peakpower -src app.s [-coi 4] [-trace] [-timeout 30s] [-progress]
//	peakpower -src node.s -irq 8:24           (peripheral bus + symbolic interrupt window)
//	peakpower -dump-netlist ulp430.v
//	peakpower -list-targets
//
// Exit codes distinguish the failure class:
//
//	1  analysis failed (budget exhausted, unsupported construct, timeout)
//	2  usage error (bad flags, unknown benchmark or target)
//	3  the source file did not assemble
//	4  file I/O failed (reading -src, writing -dump-netlist)
//	5  a remote server kept backpressuring (429/503) past the retry budget
//
// With -server URL the analysis runs on a peakpowerd instead of
// in-process: the request is submitted to the async job API and polled to
// completion, with jittered-exponential-backoff retries that honor the
// server's Retry-After, and the served Report is hash-verified before it
// is rendered.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/peakpower"
)

// Exit codes (see the command doc).
const (
	exitAnalysis  = 1
	exitUsage     = 2
	exitAssemble  = 3
	exitIO        = 4
	exitRetryable = 5
)

func main() {
	benchName := flag.String("bench", "", "built-in benchmark name, or a comma-separated list for batch mode (see -list)")
	src := flag.String("src", "", "ULP430 assembly file to analyze")
	list := flag.Bool("list", false, "list the target's built-in benchmarks")
	listTargets := flag.Bool("list-targets", false, "list registered design points")
	target := flag.String("target", peakpower.DefaultTarget, "design point to analyze (see -list-targets)")
	coi := flag.Int("coi", 4, "cycles of interest to report")
	trace := flag.Bool("trace", false, "print the per-cycle peak power trace")
	jsonOut := flag.Bool("json", false, "emit the serialized Report (JSON) instead of text")
	dumpNetlist := flag.String("dump-netlist", "", "write the gate-level netlist as structural Verilog and exit")
	maxCycles := flag.Int("max-cycles", 2_000_000, "symbolic exploration cycle budget")
	timeout := flag.Duration("timeout", 0, "abort analysis after this long (0 = no limit)")
	progress := flag.Bool("progress", false, "report exploration progress on stderr")
	workers := flag.Int("workers", 0, "batch-mode worker count (0 = GOMAXPROCS)")
	exploreWorkers := flag.Int("explore-workers", 0, "parallel exploration workers per analysis; the result is bit-identical at any count (0 = GOMAXPROCS)")
	engine := flag.String("engine", "packed", "gate-level engine: packed (fast) or scalar (reference oracle)")
	irq := flag.String("irq", "", "attach the peripheral bus with a MIN:MAX interrupt arrival window (cycles), e.g. 8:24")
	server := flag.String("server", "", "run the analysis on a peakpowerd at this base URL instead of in-process")
	retries := flag.Int("retries", 5, "-server mode: attempts against a backpressuring server before exit code 5")
	flag.Parse()

	if *listTargets {
		for _, t := range peakpower.Targets() {
			fmt.Printf("%-14s %s\n", t.Name, t.Description)
		}
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	eng, err := peakpower.ParseEngine(*engine)
	if err != nil {
		fatal(exitUsage, err)
	}
	opts := []peakpower.Option{
		peakpower.WithMaxCycles(*maxCycles),
		peakpower.WithCOI(*coi),
		peakpower.WithEngine(eng),
	}
	// An explicit -max-cycles overrides even a benchmark's calibrated
	// budget; the flag's default only seeds the analyzer-wide default.
	var callOpts []peakpower.Option
	maxCyclesSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "max-cycles" {
			maxCyclesSet = true
			callOpts = append(callOpts, peakpower.WithMaxCycles(*maxCycles))
		}
	})
	var irqCfg *peakpower.InterruptConfig
	if *irq != "" {
		cfg, err := parseIRQ(*irq)
		if err != nil {
			fatal(exitUsage, err)
		}
		irqCfg = &cfg
		opts = append(opts, peakpower.WithInterrupts(cfg))
		callOpts = append(callOpts, peakpower.WithInterrupts(cfg))
	}
	if *workers > 0 {
		opts = append(opts, peakpower.WithWorkers(*workers))
	}
	if *exploreWorkers > 0 {
		opts = append(opts, peakpower.WithExploreWorkers(*exploreWorkers))
	}
	if *progress {
		opts = append(opts, peakpower.WithProgress(func(p peakpower.Progress) {
			fmt.Fprintf(os.Stderr, "peakpower: %s: %d cycles, %d nodes, %d paths\n",
				p.App, p.Cycles, p.Nodes, p.Paths)
		}, 0))
	}

	// Listing needs no netlist: resolve the suite straight off the registry.
	if *list {
		benches, err := peakpower.TargetBenchmarks(*target)
		if err != nil {
			fatal(exitUsage, err)
		}
		for _, b := range benches {
			fmt.Printf("%-10s %-16s %s\n", b.Name, b.Suite, b.Desc)
		}
		return
	}

	if *server != "" {
		req := &serverRequest{Target: *target, Options: serverOptions{
			COI:            *coi,
			Engine:         *engine,
			ExploreWorkers: *exploreWorkers,
			Interrupts:     irqCfg,
		}}
		if maxCyclesSet {
			req.Options.MaxCycles = *maxCycles
		}
		if *timeout > 0 {
			req.Options.TimeoutMS = int(*timeout / time.Millisecond)
		}
		switch {
		case *dumpNetlist != "":
			fatal(exitUsage, fmt.Errorf("-dump-netlist needs an in-process analyzer, not -server"))
		case *benchName != "" && strings.Contains(*benchName, ","):
			fatal(exitUsage, fmt.Errorf("-server mode analyzes one application per invocation"))
		case *benchName != "":
			req.Bench = *benchName
		case *src != "":
			text, err := os.ReadFile(*src)
			if err != nil {
				fatal(exitIO, fmt.Errorf("open -src %s: %w", *src, err))
			}
			req.Name, req.Source = *src, string(text)
		default:
			fatal(exitUsage, fmt.Errorf("need -bench or -src with -server"))
		}
		serverMain(ctx, *server, *retries, req, *coi, *trace, *jsonOut)
		return
	}

	an, err := peakpower.NewFor(ctx, *target, opts...)
	if err != nil {
		if errors.Is(err, peakpower.ErrUnknownTarget) {
			fatal(exitUsage, err)
		}
		fatal(exitAnalysis, err)
	}

	if *dumpNetlist != "" {
		f, err := os.Create(*dumpNetlist)
		if err != nil {
			fatal(exitIO, fmt.Errorf("create -dump-netlist %s: %w", *dumpNetlist, err))
		}
		if err := an.WriteVerilog(f); err != nil {
			fatal(exitIO, fmt.Errorf("write -dump-netlist %s: %w", *dumpNetlist, err))
		}
		if err := f.Close(); err != nil {
			fatal(exitIO, fmt.Errorf("close -dump-netlist %s: %w", *dumpNetlist, err))
		}
		st := an.Stats()
		fmt.Printf("wrote %s: %d cells (%d flip-flops), %d nets, %.0f um2\n",
			*dumpNetlist, st.Cells, st.Seq, st.Nets, st.AreaUM2)
		return
	}

	switch {
	case *benchName != "" && strings.Contains(*benchName, ","):
		analyzeBatch(ctx, an, strings.Split(*benchName, ","), callOpts, *jsonOut)
	case *benchName != "":
		res, err := an.AnalyzeBench(ctx, *benchName, callOpts...)
		if err != nil {
			fatal(classify(err), err)
		}
		report(res, *coi, *trace, *jsonOut)
	case *src != "":
		text, err := os.ReadFile(*src)
		if err != nil {
			fatal(exitIO, fmt.Errorf("open -src %s: %w", *src, err))
		}
		res, err := an.Analyze(ctx, *src, string(text))
		if err != nil {
			fatal(classify(err), err)
		}
		report(res, *coi, *trace, *jsonOut)
	default:
		fatal(exitUsage, fmt.Errorf("need -bench or -src (or -list / -list-targets / -dump-netlist)"))
	}
}

// parseIRQ parses the -irq window spec: "MIN:MAX" (cycles), or a bare
// "MIN" taking the default window width.
func parseIRQ(spec string) (peakpower.InterruptConfig, error) {
	var cfg peakpower.InterruptConfig
	lo, hi, found := strings.Cut(spec, ":")
	min, err := strconv.Atoi(strings.TrimSpace(lo))
	if err != nil || min <= 0 {
		return cfg, fmt.Errorf("-irq %q: window is MIN:MAX in positive cycles", spec)
	}
	cfg.MinLatency = min
	if found {
		max, err := strconv.Atoi(strings.TrimSpace(hi))
		if err != nil || max < min {
			return cfg, fmt.Errorf("-irq %q: MAX must be an integer >= MIN", spec)
		}
		cfg.MaxLatency = max
	}
	return cfg, nil
}

// classify maps an analysis error to the command's exit code.
func classify(err error) int {
	switch {
	case errors.Is(err, peakpower.ErrUnknownBench), errors.Is(err, peakpower.ErrUnknownTarget):
		return exitUsage
	case errors.Is(err, peakpower.ErrAssemble):
		return exitAssemble
	default:
		return exitAnalysis
	}
}

// printJSON writes a Report (or any JSON-marshalable value) to stdout.
func printJSON(v interface{}) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(exitAnalysis, err)
	}
	fmt.Printf("%s\n", data)
}

// analyzeBatch runs the comma-separated benchmarks concurrently through
// the shared analyzer, prints a summary table (or a JSON report array),
// and reports the combined multi-programmed requirement.
func analyzeBatch(ctx context.Context, an *peakpower.Analyzer, names []string, callOpts []peakpower.Option, jsonOut bool) {
	var apps []peakpower.App
	for _, n := range names {
		if n = strings.TrimSpace(n); n != "" {
			apps = append(apps, peakpower.App{Bench: n})
		}
	}
	if len(apps) == 0 {
		fatal(exitUsage, fmt.Errorf("-bench: no benchmark names in list"))
	}
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "trace" || f.Name == "coi" {
			fmt.Fprintf(os.Stderr, "peakpower: -%s is ignored in batch mode\n", f.Name)
		}
	})
	start := time.Now()
	results, err := an.AnalyzeAll(ctx, apps, callOpts...)
	if err != nil {
		fatal(classify(err), err)
	}
	comb, err := peakpower.Combine(results...)
	if err != nil {
		fatal(exitAnalysis, err)
	}
	if jsonOut {
		reports := make([]*peakpower.Report, len(results))
		for i, r := range results {
			reports[i] = &r.Report
		}
		printJSON(struct {
			Reports  []*peakpower.Report `json:"reports"`
			Combined *peakpower.Report   `json:"combined"`
		}{reports, &comb.Report})
		return
	}
	fmt.Printf("%-12s %12s %14s %16s %8s %10s\n",
		"application", "peak (mW)", "energy (J)", "NPE (J/cycle)", "paths", "elapsed")
	for _, r := range results {
		fmt.Printf("%-12s %12.3f %14.3e %16.3e %8d %10s\n",
			r.App, r.PeakPowerMW, r.PeakEnergyJ, r.NPEJPerCycle, r.Paths,
			r.Elapsed.Round(time.Millisecond))
	}
	fmt.Printf("\ncombined multi-programmed requirement: %.3f mW, %.3e J (%d apps, wall %s)\n",
		comb.PeakPowerMW, comb.PeakEnergyJ, len(results), time.Since(start).Round(time.Millisecond))
}

func report(res *peakpower.Result, coi int, trace bool, jsonOut bool) {
	if jsonOut {
		printJSON(&res.Report)
		return
	}
	fmt.Printf("application:          %s\n", res.App)
	fmt.Printf("target:               %s\n", res.Target)
	fmt.Printf("operating point:      %s @ %.0f MHz\n", res.Library, res.ClockHz/1e6)
	fmt.Printf("peak power bound:     %.3f mW (guaranteed for all inputs)\n", res.PeakPowerMW)
	fmt.Printf("peak energy bound:    %.3e J over %.0f cycles\n", res.PeakEnergyJ, res.BoundingCycles)
	fmt.Printf("normalized peak energy: %.3e J/cycle\n", res.NPEJPerCycle)
	fmt.Printf("exploration:          %d paths, %d tree nodes, %d simulated cycles (%s)\n",
		res.Paths, res.Nodes, res.SimCycles, res.Elapsed.Round(time.Millisecond))
	if irq := res.Interrupts; irq != nil {
		fmt.Printf("interrupts:           arrival window [%d, %d] cycles, %d arrival forks, ISR peak %.3f mW\n",
			irq.MinLatency, irq.MaxLatency, irq.IRQForks, irq.ISRPeakMW)
	}

	fmt.Printf("\ncycles of interest (peak power attribution):\n")
	att := res.Attribution()
	if len(att) > coi {
		att = att[:coi]
	}
	for _, pk := range att {
		fmt.Printf("  cycle %-6d %.3f mW  %-8s (after %-8s) state=%-6s",
			pk.Cycle, pk.PowerMW, pk.Instr, pk.PrevInstr, pk.State)
		type mp struct {
			name string
			mw   float64
		}
		var mods []mp
		for name, mw := range pk.ByModuleMW {
			mods = append(mods, mp{name, mw})
		}
		sort.Slice(mods, func(i, j int) bool { return mods[i].mw > mods[j].mw })
		for _, m := range mods[:3] {
			fmt.Printf("  %s=%.2f", m.name, m.mw)
		}
		fmt.Println()
	}

	fmt.Printf("\npotentially-toggled gates: %d of %d\n", res.ActiveGates, res.TotalGates)
	by := c2sorted(res.ActiveByModule)
	for _, kv := range by {
		fmt.Printf("  %-16s %d\n", kv.k, kv.v)
	}

	if trace {
		fmt.Printf("\nper-cycle peak power trace (mW):\n")
		for i, p := range res.PeakTrace {
			fmt.Printf("%d %.4f\n", i, p)
		}
	}
}

type kv struct {
	k string
	v int
}

func c2sorted(m map[string]int) []kv {
	out := make([]kv, 0, len(m))
	for k, v := range m {
		out = append(out, kv{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].v > out[j].v })
	return out
}

func fatal(code int, err error) {
	fmt.Fprintln(os.Stderr, "peakpower:", err)
	os.Exit(code)
}
