// Command asm430 assembles ULP430 (MSP430-subset) assembly into a binary
// image, printing a listing and optionally writing a hex image (one
// "addr: word" pair per line).
//
// Usage:
//
//	asm430 [-o out.hex] [-d] prog.s
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/isa"
)

func main() {
	out := flag.String("o", "", "write hex image to this file")
	disasm := flag.Bool("d", false, "print a disassembly listing")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: asm430 [-o out.hex] [-d] prog.s")
		os.Exit(2)
	}
	text, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	img, err := isa.Assemble(flag.Arg(0), string(text))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d words, entry %#04x, %d input regions, %d loop bounds\n",
		img.Name, len(img.Words), img.Entry, len(img.Inputs), len(img.LoopBounds))
	for _, r := range img.Inputs {
		fmt.Printf("  input region %#04x (%d words)\n", r.Addr, r.Words)
	}

	if *disasm {
		addrs := make([]int, 0, len(img.Words))
		for a := range img.Words {
			addrs = append(addrs, int(a))
		}
		sort.Ints(addrs)
		for i := 0; i < len(addrs); {
			a := uint16(addrs[i])
			if a < 0xF000 || a == isa.ResetVector {
				fmt.Printf("%04x: %04x\n", a, img.Words[a])
				i++
				continue
			}
			text, n := isa.DisasmAt(img, a)
			fmt.Printf("%04x: %-24s", a, text)
			if s := img.SourceLine(a); s != "" {
				fmt.Printf(" ; %s", s)
			}
			fmt.Println()
			i += n
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		addrs := make([]int, 0, len(img.Words))
		for a := range img.Words {
			addrs = append(addrs, int(a))
		}
		sort.Ints(addrs)
		for _, a := range addrs {
			fmt.Fprintf(w, "%04x: %04x\n", a, img.Words[uint16(a)])
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asm430:", err)
	os.Exit(1)
}
