package peakpower

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/isa"
	"repro/internal/power"
)

// SchemaVersion is the Report wire-format version. Version 2 added the
// optional interrupt section (Interrupts) and per-COI interrupt-context
// attribution (COI.InISR). DecodeReport accepts every version back to
// MinSchemaVersion; reports are always written at SchemaVersion.
const SchemaVersion = 2

// MinSchemaVersion is the oldest report version DecodeReport accepts.
// Version 1 reports (pre-interrupt) decode into the current struct with a
// nil Interrupts section and InISR false on every COI.
const MinSchemaVersion = 1

// COI is one cycle of interest with its attribution resolved to stable,
// human-readable form: instruction mnemonics instead of image addresses,
// module names instead of module-table indices.
type COI struct {
	// Cycle is the cycle's position along its exploration path.
	Cycle int `json:"cycle"`
	// PowerMW is the cycle's bounded power.
	PowerMW float64 `json:"power_mw"`
	// Instr is the mnemonic of the instruction in flight; PrevInstr the
	// one before it.
	Instr string `json:"instr"`
	// PrevInstr is the mnemonic of the preceding instruction.
	PrevInstr string `json:"prev_instr"`
	// State is the controller state name at the peak.
	State string `json:"state"`
	// InISR marks a cycle spent in interrupt context (entry sequence,
	// handler body, or RETI unwind). Always false without WithInterrupts.
	InISR bool `json:"in_isr,omitempty"`
	// ByModuleMW is the per-module power split, keyed by module name.
	ByModuleMW map[string]float64 `json:"by_module_mw"`
}

// IRQReport is the interrupt section of a Report, present only for
// analyses run with WithInterrupts.
type IRQReport struct {
	// MinLatency and MaxLatency delimit the ADC arrival window the bound
	// covers, in cycles after the trigger (normalized configuration).
	MinLatency int `json:"min_latency"`
	// MaxLatency is the end of the arrival window.
	MaxLatency int `json:"max_latency"`
	// IRQForks counts the distinct interrupt-arrival decisions the
	// symbolic exploration forked on — every arrival interleaving at
	// instruction-boundary granularity inside the window.
	IRQForks int `json:"irq_forks"`
	// ISRPeakMW is the peak power bound restricted to interrupt-context
	// cycles (0 if no interrupt was ever entered).
	ISRPeakMW float64 `json:"isr_peak_mw"`
}

// Report is the serializable co-analysis result for one application on one
// target: versioned schema, the operating point, the guaranteed peak power
// and energy requirements, resolved cycle-of-interest attribution, and
// compact run metadata. Unlike Result (which adds live handles — the
// execution tree, raw cell-index attribution, the analyzed image), a Report
// contains no internal references: it round-trips losslessly through JSON,
// persists across processes, and compares across runs.
//
// Reports are deterministic: the same target, application, and options
// produce byte-identical JSON (wall-clock metadata such as Result.Elapsed
// deliberately lives outside the Report). Hash is a content address over
// that canonical form.
type Report struct {
	// Schema is the wire-format version (SchemaVersion).
	Schema int `json:"schema"`
	// Target names the analyzed design point (see Targets).
	Target string `json:"target"`
	// App is the analyzed application's name.
	App string `json:"app"`
	// Library names the standard-cell library.
	Library string `json:"library"`
	// FeatureNM is the library's process feature size in nanometers.
	FeatureNM int `json:"feature_nm"`
	// ClockHz is the analysis clock frequency.
	ClockHz float64 `json:"clock_hz"`
	// Engine names the gate-level evaluation engine ("packed" or "scalar").
	Engine string `json:"engine"`

	// PeakPowerMW is the input-independent peak power requirement: no
	// execution of the application, on any input, can exceed it.
	PeakPowerMW float64 `json:"peak_power_mw"`
	// PeakEnergyJ is the input-independent peak energy requirement.
	PeakEnergyJ float64 `json:"peak_energy_j"`
	// NPEJPerCycle is the normalized peak energy (J/cycle).
	NPEJPerCycle float64 `json:"npe_j_per_cycle"`
	// BoundingCycles is the runtime of the bounding path.
	BoundingCycles float64 `json:"bounding_cycles"`
	// PeakTrace is the per-cycle peak-power trace along the maximum-energy
	// path (Figure 3.3's series).
	PeakTrace []float64 `json:"peak_trace,omitempty"`

	// COIs are the top cycles of interest sorted descending by power;
	// COIs[0] is the global peak.
	COIs []COI `json:"cois"`
	// ActiveGates counts the potentially-toggled cells; TotalGates the
	// design's cells.
	ActiveGates int `json:"active_gates"`
	// TotalGates is the number of cells in the design.
	TotalGates int `json:"total_gates"`
	// ActiveByModule counts potentially-toggled cells per module (the data
	// behind the activity-profile figures). Empty for combined reports,
	// which have no single module table.
	ActiveByModule map[string]int `json:"active_by_module,omitempty"`

	// Interrupts summarizes the interrupt analysis (WithInterrupts); nil
	// for interrupt-free analyses and for decoded version-1 reports.
	Interrupts *IRQReport `json:"interrupts,omitempty"`

	// Paths, Nodes, and SimCycles summarize the exploration.
	Paths int `json:"paths"`
	// Nodes is the execution-tree segment count.
	Nodes int `json:"nodes"`
	// SimCycles is the total number of simulated cycles.
	SimCycles int `json:"sim_cycles"`

	// Hash is the content address: "sha256:" + hex digest of the report's
	// canonical JSON with Hash itself empty. Set by Seal, checked by
	// VerifyHash and DecodeReport.
	Hash string `json:"hash,omitempty"`
}

// reportWire strips Report's methods so the JSON round-trip below cannot
// recurse; the wire form is exactly the struct's tagged fields.
type reportWire Report

// MarshalJSON encodes the report in its canonical form: tagged struct
// fields in declaration order, module maps in sorted key order. The
// encoding is deterministic — marshal, unmarshal, and re-marshal produce
// byte-identical output (asserted by the schema-stability tests).
func (r *Report) MarshalJSON() ([]byte, error) {
	return json.Marshal((*reportWire)(r))
}

// UnmarshalJSON decodes a report previously produced by MarshalJSON. It
// performs no validation; see DecodeReport for the checked form.
func (r *Report) UnmarshalJSON(data []byte) error {
	return json.Unmarshal(data, (*reportWire)(r))
}

// ComputeHash returns the report's content address: a sha256 over the
// canonical JSON with the Hash field empty.
func (r *Report) ComputeHash() string {
	c := *r
	c.Hash = ""
	data, err := json.Marshal((*reportWire)(&c))
	if err != nil {
		// Report contains only marshalable field types; reaching here
		// means the struct itself was corrupted (e.g. a NaN injected
		// post-analysis), which no hash can address.
		panic(fmt.Sprintf("peakpower: report not marshalable: %v", err))
	}
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// Seal stamps the report with its content hash.
func (r *Report) Seal() { r.Hash = ""; r.Hash = r.ComputeHash() }

// VerifyHash checks the content hash. An empty Hash (an unsealed report)
// verifies trivially.
func (r *Report) VerifyHash() error {
	if r.Hash == "" {
		return nil
	}
	if got := r.ComputeHash(); got != r.Hash {
		return fmt.Errorf("peakpower: report hash mismatch: stamped %s, computed %s", r.Hash, got)
	}
	return nil
}

// DecodeReport unmarshals and validates a serialized Report: the schema
// version must match SchemaVersion and a stamped content hash must verify.
func DecodeReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("peakpower: decoding report: %w", err)
	}
	if r.Schema < MinSchemaVersion || r.Schema > SchemaVersion {
		return nil, fmt.Errorf("peakpower: report schema %d not supported (want %d..%d)", r.Schema, MinSchemaVersion, SchemaVersion)
	}
	if err := r.VerifyHash(); err != nil {
		return nil, err
	}
	return &r, nil
}

// resolveCOIs renders raw peaks in exported-safe form (package power's
// Resolve), in the same descending-power order.
func resolveCOIs(peaks []power.Peak, modules []string, img *isa.Image) []COI {
	out := make([]COI, len(peaks))
	for i, pk := range peaks {
		out[i] = COI(pk.Resolve(modules, img))
	}
	return out
}
