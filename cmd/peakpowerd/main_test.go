package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/peakpower"
)

// testApp is a small input-dependent kernel: fast to analyze, but it forks
// (cmp/jl on an input), so a served analysis exercises the full pipeline.
const testApp = `
.org 0x0200
sensor: .input 2
result: .space 1

.org 0xf000
.entry main
main:
    mov #0x0080, &0x0120
    mov #0x0a00, sp
    mov &sensor, r4
    add &sensor+2, r4
    cmp #100, r4
    jl small
    rra r4
small:
    mov r4, &result
    mov #1, &0x0126
halt:
    jmp halt
`

func newTestServer(t *testing.T) (*httptest.Server, *server) {
	t.Helper()
	return newTestServerCfg(t, serverConfig{cacheSize: 64, timeout: time.Minute})
}

func newTestServerCfg(t *testing.T, cfg serverConfig) (*httptest.Server, *server) {
	t.Helper()
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.jobs.recover(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(func() {
		ts.Close()
		srv.jobs.drain(time.Second)
	})
	return ts, srv
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestHealthzAndListings(t *testing.T) {
	ts, _ := newTestServer(t)

	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, body)
	}
	var health struct {
		Status  string `json:"status"`
		Targets int    `json:"targets"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Targets < 3 {
		t.Fatalf("health: %+v", health)
	}

	code, body = get(t, ts.URL+"/v1/targets")
	if code != http.StatusOK {
		t.Fatalf("targets: %d %s", code, body)
	}
	var targets []peakpower.TargetInfo
	if err := json.Unmarshal(body, &targets); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, ti := range targets {
		names[ti.Name] = true
	}
	for _, want := range []string{"ulp430", "ulp430-sized", "ulp430-gated"} {
		if !names[want] {
			t.Fatalf("targets missing %q: %v", want, names)
		}
	}

	code, body = get(t, ts.URL+"/v1/benchmarks?target=ulp430")
	if code != http.StatusOK {
		t.Fatalf("benchmarks: %d %s", code, body)
	}
	var benches []peakpower.BenchInfo
	if err := json.Unmarshal(body, &benches); err != nil {
		t.Fatal(err)
	}
	if len(benches) < 10 {
		t.Fatalf("expected the Table 4.1 suite, got %d entries", len(benches))
	}

	if code, _ := get(t, ts.URL+"/v1/benchmarks?target=nope"); code != http.StatusNotFound {
		t.Fatalf("unknown target: want 404, got %d", code)
	}
}

// TestAnalyzeBitIdenticalAndConcurrent is the service's core contract:
// concurrent requests return Reports bit-identical to an in-process
// Analyze of the same target/application/options, and repeats are served
// from the cache without re-exploration.
func TestAnalyzeBitIdenticalAndConcurrent(t *testing.T) {
	ts, srv := newTestServer(t)

	// The in-process reference, under identical resolved options.
	an, err := peakpower.NewFor(context.Background(), "ulp430")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := an.Analyze(context.Background(), "served", testApp,
		peakpower.WithMaxCycles(100_000), peakpower.WithCOI(4))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Report.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}

	reqBody := `{"target":"ulp430","name":"served","source":` + mustJSON(testApp) + `,
		"options":{"max_cycles":100000,"coi":4}}`

	const clients = 8
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(reqBody))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i, body := range bodies {
		if !bytes.Equal(body, want) {
			t.Fatalf("client %d: served report differs from in-process analysis:\nserved: %.200s\nlocal:  %.200s", i, body, want)
		}
	}

	// Every response decodes as a valid sealed Report.
	rep, err := peakpower.DecodeReport(bodies[0])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != peakpower.SchemaVersion || rep.Target != "ulp430" || rep.App != "served" {
		t.Fatalf("report: %+v", rep)
	}

	// The 8 identical requests hit the analysis cache: at most one miss.
	stats := srv.cache.Stats()
	if stats.Misses != 1 || stats.Hits < clients-1 {
		t.Fatalf("cache stats: %+v (want 1 miss, >=%d hits)", stats, clients-1)
	}
}

func TestAnalyzeBenchAndErrors(t *testing.T) {
	ts, _ := newTestServer(t)

	code, body := post(t, ts.URL+"/v1/analyze", `{"bench":"mult"}`)
	if code != http.StatusOK {
		t.Fatalf("bench analyze: %d %s", code, body)
	}
	rep, err := peakpower.DecodeReport(body)
	if err != nil {
		t.Fatal(err)
	}
	if rep.App != "mult" || rep.PeakPowerMW <= 0 {
		t.Fatalf("report: app=%q peak=%g", rep.App, rep.PeakPowerMW)
	}

	cases := []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`{"bench":"mult","source":"x"}`, http.StatusBadRequest},
		{`{"bench":"nosuch"}`, http.StatusNotFound},
		{`{"target":"nosuch","bench":"mult"}`, http.StatusNotFound},
		{`{"name":"bad","source":"not an instruction"}`, http.StatusUnprocessableEntity},
		{`{"bench":"mult","options":{"max_cycles":50}}`, http.StatusUnprocessableEntity},
		{`{"bench":"mult","options":{"engine":"quantum"}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, body := post(t, ts.URL+"/v1/analyze", tc.body)
		if code != tc.want {
			t.Errorf("POST %q: status %d, want %d (%s)", tc.body, code, tc.want, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("POST %q: error body not structured: %s", tc.body, body)
		}
	}
}

func mustJSON(s string) string {
	data, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("marshal: %v", err))
	}
	return string(data)
}

// TestAnalyzeWithInterrupts exercises the interrupts request option: the
// served report must carry the schema-2 Interrupts section with the
// requested (normalized) arrival window, and the targets listing must be
// name-sorted for deterministic client consumption.
func TestAnalyzeWithInterrupts(t *testing.T) {
	ts, _ := newTestServer(t)

	code, body := post(t, ts.URL+"/v1/analyze",
		`{"bench":"adcSample","options":{"interrupts":{"min_latency":8,"max_latency":20}}}`)
	if code != http.StatusOK {
		t.Fatalf("interrupt analyze: %d %s", code, body)
	}
	rep, err := peakpower.DecodeReport(body)
	if err != nil {
		t.Fatal(err)
	}
	irq := rep.Interrupts
	if irq == nil {
		t.Fatal("served report has no interrupts section")
	}
	if irq.MinLatency != 8 || irq.MaxLatency != 20 {
		t.Fatalf("served window [%d, %d], want [8, 20]", irq.MinLatency, irq.MaxLatency)
	}
	if irq.IRQForks == 0 || irq.ISRPeakMW <= 0 {
		t.Fatalf("interrupt exploration empty: %+v", irq)
	}

	code, body = get(t, ts.URL+"/v1/targets")
	if code != http.StatusOK {
		t.Fatalf("targets: %d %s", code, body)
	}
	var targets []peakpower.TargetInfo
	if err := json.Unmarshal(body, &targets); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(targets); i++ {
		if targets[i-1].Name >= targets[i].Name {
			t.Fatalf("targets not name-sorted: %q before %q", targets[i-1].Name, targets[i].Name)
		}
	}
}
