package periph

import (
	"testing"

	"repro/internal/logic"
)

func TestMapRejectsOverlapAndEmpty(t *testing.T) {
	if _, err := NewMap(
		Area{Name: "a", Start: 0x100, End: 0x110},
		Area{Name: "b", Start: 0x108, End: 0x120},
	); err == nil {
		t.Fatal("overlapping areas accepted")
	}
	if _, err := NewMap(Area{Name: "empty", Start: 0x100, End: 0x100}); err == nil {
		t.Fatal("empty area accepted")
	}
	if _, err := NewMap(Area{Name: "wild", Start: 0x100, End: 0x20000}); err == nil {
		t.Fatal("area past the address space accepted")
	}
}

func TestMapLookupBoundaries(t *testing.T) {
	m := MustMap(
		Area{Name: "hi", Start: 0xF000, End: 0x10000, Tag: 2},
		Area{Name: "lo", Start: 0x0100, End: 0x0108, Tag: 1},
	)
	for _, tc := range []struct {
		addr uint16
		name string
		ok   bool
	}{
		{0x00FF, "", false},
		{0x0100, "lo", true},
		{0x0107, "lo", true},
		{0x0108, "", false},
		{0xEFFF, "", false},
		{0xF000, "hi", true},
		{0xFFFF, "hi", true},
	} {
		a, ok := m.Lookup(tc.addr)
		if ok != tc.ok || (ok && a.Name != tc.name) {
			t.Fatalf("Lookup(%#04x) = %q/%v, want %q/%v", tc.addr, a.Name, ok, tc.name, tc.ok)
		}
	}
	// Areas come back sorted regardless of declaration order.
	areas := m.Areas()
	if len(areas) != 2 || areas[0].Name != "lo" || areas[1].Name != "hi" {
		t.Fatalf("areas not sorted: %+v", areas)
	}
}

func TestConfigNormalized(t *testing.T) {
	c := Config{}.Normalized()
	if c.MinLatency != 8 || c.MaxLatency != 24 || c.RadioBusyCycles != 16 {
		t.Fatalf("zero-config defaults wrong: %+v", c)
	}
	if c.ConcreteLatency < c.MinLatency || c.ConcreteLatency > c.MaxLatency {
		t.Fatalf("concrete latency %d outside window [%d, %d]", c.ConcreteLatency, c.MinLatency, c.MaxLatency)
	}
	c = Config{MinLatency: 10, MaxLatency: 4, ConcreteLatency: 99}.Normalized()
	if c.MaxLatency != 26 || c.ConcreteLatency != 18 {
		t.Fatalf("inverted window not repaired: %+v", c)
	}
}

func TestTimerOneShot(t *testing.T) {
	b := NewBus(Config{}, false)
	if err := b.Write(TACCR, 3, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(TACTL, BitEN|BitIE, 0); err != nil {
		t.Fatal(err)
	}
	for now := uint64(1); now <= 2; now++ {
		b.Tick(now)
		if b.Line(now) != logic.L {
			t.Fatalf("timer fired early at tick %d", now)
		}
	}
	b.Tick(3)
	if b.Line(3) != logic.H {
		t.Fatal("timer did not fire at the compare value")
	}
	v, x, err := b.Read(TACTL)
	if err != nil || x != 0 {
		t.Fatalf("TACTL read: %v xmask %#x", err, x)
	}
	if v&BitEN != 0 || v&BitIFG == 0 {
		t.Fatalf("one-shot must stop with the flag up: TACTL=%#x", v)
	}
	// The count holds after firing: re-arming without a TACNT reset
	// refires immediately (MSP430-style free count).
	if cnt, _, _ := b.Read(TACNT); cnt != 3 {
		t.Fatalf("count not held after firing: %d", cnt)
	}
	vec, ok := b.TakeVector()
	if !ok || vec != VecTimer {
		t.Fatalf("TakeVector = %#x/%v, want timer vector", vec, ok)
	}
	if b.Line(4) != logic.L {
		t.Fatal("vector fetch must acknowledge the flag")
	}
}

func TestADCSymbolicWindow(t *testing.T) {
	cfg := Config{MinLatency: 4, MaxLatency: 8}
	b := NewBus(cfg, true)
	if err := b.Write(ADCTL, BitEN|BitIE, 10); err != nil {
		t.Fatal(err)
	}
	for now := uint64(11); now <= 13; now++ {
		b.Tick(now)
		if got := b.Line(now); got != logic.L {
			t.Fatalf("line %v before the window opens (cycle %d)", got, now)
		}
	}
	for now := uint64(14); now <= 17; now++ {
		b.Tick(now)
		if got := b.Line(now); got != logic.X {
			t.Fatalf("line %v inside the arrival window (cycle %d), want X", got, now)
		}
	}
	// At trig+MaxLatency the conversion completes on its own: the event
	// becomes a concrete pending interrupt.
	b.Tick(18)
	if got := b.Line(18); got != logic.H {
		t.Fatalf("line %v at window end, want H", got)
	}
	// The completed sample is symbolic.
	if _, x, err := b.Read(ADDATA); err != nil || x != 0xFFFF {
		t.Fatalf("symbolic ADDATA: err=%v xmask=%#x, want all-X", err, x)
	}
	vec, ok := b.TakeVector()
	if !ok || vec != VecADC {
		t.Fatalf("TakeVector = %#x/%v, want ADC vector", vec, ok)
	}
}

func TestADCDeliverResolvesFork(t *testing.T) {
	b := NewBus(Config{MinLatency: 4, MaxLatency: 20}, true)
	if err := b.Write(ADCTL, BitEN|BitIE, 0); err != nil {
		t.Fatal(err)
	}
	b.Tick(5)
	if b.Line(5) != logic.X {
		t.Fatal("window should be open")
	}
	b.Deliver()
	if b.Line(5) != logic.H {
		t.Fatal("Deliver must latch a concrete pending interrupt")
	}
}

func TestADCConcreteLatency(t *testing.T) {
	b := NewBus(Config{MinLatency: 4, MaxLatency: 8, ConcreteLatency: 6}, false)
	if err := b.Write(ADCTL, BitEN|BitIE, 100); err != nil {
		t.Fatal(err)
	}
	for now := uint64(101); now < 106; now++ {
		b.Tick(now)
		if b.Line(now) != logic.L {
			t.Fatalf("concrete conversion completed early (cycle %d)", now)
		}
	}
	b.Tick(106)
	if b.Line(106) != logic.H {
		t.Fatal("concrete conversion did not complete at ConcreteLatency")
	}
	v, x, err := b.Read(ADDATA)
	if err != nil || x != 0 {
		t.Fatalf("concrete ADDATA: err=%v xmask=%#x", err, x)
	}
	if v == 0 {
		t.Fatal("concrete sample stream should be non-trivial")
	}
}

func TestRadioBusyAndReadOnly(t *testing.T) {
	b := NewBus(Config{RadioBusyCycles: 3}, false)
	if err := b.Write(RFTX, 0xBEEF, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(RFCTL, BitEN, 0); err != nil {
		t.Fatal(err)
	}
	for now := uint64(1); now <= 3; now++ {
		if v, _, _ := b.Read(RFSTAT); v != 1 {
			t.Fatalf("radio not busy at tick %d", now)
		}
		b.Tick(now)
	}
	if v, _, _ := b.Read(RFSTAT); v != 0 {
		t.Fatal("radio busy flag did not clear")
	}
	if b.Radio().Sent() != 1 {
		t.Fatalf("sent count %d, want 1", b.Radio().Sent())
	}
	if err := b.Write(RFSTAT, 1, 0); err == nil {
		t.Fatal("write to read-only RFSTAT accepted")
	}
	if err := b.Write(ADSTAT, 1, 0); err == nil {
		t.Fatal("write to read-only ADSTAT accepted")
	}
	if err := b.Write(0x0170, 1, 0); err == nil {
		t.Fatal("write to unmapped device address accepted")
	}
	if _, _, err := b.Read(0x0170); err == nil {
		t.Fatal("read of unmapped device address accepted")
	}
}

func TestVectorPriorityTimerAboveADC(t *testing.T) {
	b := NewBus(Config{MinLatency: 1, MaxLatency: 1}, false)
	if err := b.Write(TACCR, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(TACTL, BitEN|BitIE, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(ADCTL, BitEN|BitIE, 0); err != nil {
		t.Fatal(err)
	}
	b.Tick(1)
	b.Tick(2)
	if !b.Timer().Pending() || !b.ADC().Pending() {
		t.Fatal("both devices should be pending")
	}
	if vec, ok := b.TakeVector(); !ok || vec != VecTimer {
		t.Fatalf("first vector %#x, want timer (priority)", vec)
	}
	if vec, ok := b.TakeVector(); !ok || vec != VecADC {
		t.Fatalf("second vector %#x, want adc", vec)
	}
	if _, ok := b.TakeVector(); ok {
		t.Fatal("spurious vector fetch must report !ok")
	}
}

func TestBusStateRoundTrip(t *testing.T) {
	b := NewBus(Config{MinLatency: 4, MaxLatency: 12}, true)
	for _, w := range []struct {
		addr, v uint16
	}{
		{TACCR, 40}, {TACTL, BitEN | BitIE}, {ADCTL, BitEN | BitIE}, {RFTX, 7}, {RFCTL, BitEN},
	} {
		if err := b.Write(w.addr, w.v, 2); err != nil {
			t.Fatal(err)
		}
	}
	for now := uint64(3); now <= 6; now++ {
		b.Tick(now)
	}
	st, h := b.State(), b.Hash(6)
	// Mutate, then restore.
	b.Deliver()
	b.Tick(40)
	if b.Hash(6) == h {
		t.Fatal("hash insensitive to device state change")
	}
	b.SetState(st)
	if b.State() != st {
		t.Fatal("SetState did not restore the captured state")
	}
	if b.Hash(6) != h {
		t.Fatal("hash not reproducible after restore")
	}
}

// TestHashMixesCycleInOpenWindow pins the soundness rule: identical
// device state at different cycles inside an open arrival window must
// hash differently (different distances to the forced completion mean
// different futures), while a quiet bus hashes cycle-independently.
func TestHashMixesCycleInOpenWindow(t *testing.T) {
	b := NewBus(Config{MinLatency: 4, MaxLatency: 12}, true)
	if b.Hash(10) != b.Hash(20) {
		t.Fatal("idle bus hash must not depend on the cycle")
	}
	if err := b.Write(ADCTL, BitEN|BitIE, 0); err != nil {
		t.Fatal(err)
	}
	if b.Hash(5) == b.Hash(6) {
		t.Fatal("armed-window hash must mix the cycle")
	}
}
