// Command peakpowerd serves the co-analysis over HTTP: clients POST an
// application (a built-in benchmark name or assembly source) plus options
// and receive the serialized, versioned peakpower.Report. Analyses are
// content-addressed-cached across requests — repeated analyses of the same
// image and options are served without re-exploration — and the server
// handles concurrent requests against shared per-target analyzers (the
// netlist is built once per design point).
//
// Usage:
//
//	peakpowerd [-addr :8090] [-cache 256] [-timeout 2m]
//
// Endpoints:
//
//	GET  /healthz        liveness + cache statistics
//	GET  /v1/targets     registered design points
//	GET  /v1/benchmarks  benchmark suite (?target=..., default ulp430)
//	POST /v1/analyze     run (or serve from cache) one analysis
//
// POST /v1/analyze request body:
//
//	{
//	  "target":  "ulp430",          // optional, default "ulp430"
//	  "bench":   "mult",            // either a built-in benchmark...
//	  "source":  "...", "name": "app",  // ...or assembly source + name
//	  "options": {                  // all optional
//	    "max_cycles": 0, "max_nodes": 0, "coi": 0,
//	    "clock_hz": 0, "engine": "packed", "timeout_ms": 0,
//	    "interrupts": {"min_latency": 8, "max_latency": 24}
//	  }
//	}
//
// The response is the Report's canonical JSON — bit-identical to an
// in-process Analyze of the same target, application, and options.
// Failures return {"error": "..."} with a classifying status code:
// 400 (malformed request), 404 (unknown target or benchmark),
// 422 (assembly failure or exhausted exploration budget),
// 504 (deadline), 500 (other analysis failures).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/peakpower"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	cacheSize := flag.Int("cache", 256, "analysis cache capacity in reports (0 = unbounded)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request analysis deadline cap")
	flag.Parse()

	srv := newServer(*cacheSize, *timeout)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("peakpowerd: listening on %s (%d targets, cache %d)",
		*addr, len(peakpower.Targets()), *cacheSize)

	select {
	case err := <-errCh:
		log.Fatalf("peakpowerd: %v", err)
	case <-ctx.Done():
		log.Printf("peakpowerd: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			log.Fatalf("peakpowerd: shutdown: %v", err)
		}
	}
}

// server holds the shared analysis state: one lazily built Analyzer per
// registered target and one content-addressed report cache across all of
// them. All fields are safe for concurrent request handling.
type server struct {
	cache   *peakpower.Cache
	timeout time.Duration

	mu        sync.Mutex
	analyzers map[string]*analyzerEntry
}

// analyzerEntry builds one target's analyzer exactly once, outside the
// server mutex, so a cold target's netlist construction never stalls
// requests for targets that are already built.
type analyzerEntry struct {
	once sync.Once
	an   *peakpower.Analyzer
	err  error
}

func newServer(cacheSize int, timeout time.Duration) *server {
	return &server{
		cache:     peakpower.NewCache(cacheSize),
		timeout:   timeout,
		analyzers: make(map[string]*analyzerEntry),
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/targets", s.handleTargets)
	mux.HandleFunc("/v1/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	return mux
}

// analyzer returns (building on first use) the shared Analyzer for a
// target. Only the map access holds the lock; the netlist build runs
// under the entry's once, per target. A failed build is retried on the
// next request (the entry is dropped) so a transient failure does not
// pin an error forever.
func (s *server) analyzer(ctx context.Context, target string) (*peakpower.Analyzer, error) {
	s.mu.Lock()
	e, ok := s.analyzers[target]
	if !ok {
		e = &analyzerEntry{}
		s.analyzers[target] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		e.an, e.err = peakpower.NewFor(ctx, target, peakpower.WithCache(s.cache))
	})
	if e.err != nil {
		s.mu.Lock()
		if s.analyzers[target] == e {
			delete(s.analyzers, target)
		}
		s.mu.Unlock()
		return nil, e.err
	}
	return e.an, nil
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status  string               `json:"status"`
		Targets int                  `json:"targets"`
		Cache   peakpower.CacheStats `json:"cache"`
	}{"ok", len(peakpower.Targets()), s.cache.Stats()})
}

func (s *server) handleTargets(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, peakpower.Targets())
}

func (s *server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	target := r.URL.Query().Get("target")
	if target == "" {
		target = peakpower.DefaultTarget
	}
	infos, err := peakpower.TargetBenchmarks(target)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, infos)
}

// analyzeRequest is the POST /v1/analyze body.
type analyzeRequest struct {
	Target  string         `json:"target,omitempty"`
	Bench   string         `json:"bench,omitempty"`
	Name    string         `json:"name,omitempty"`
	Source  string         `json:"source,omitempty"`
	Options analyzeOptions `json:"options"`
}

// analyzeOptions mirrors the peakpower functional options a client may
// override per request; zero values keep the target's defaults.
type analyzeOptions struct {
	MaxCycles int     `json:"max_cycles,omitempty"`
	MaxNodes  int     `json:"max_nodes,omitempty"`
	COI       int     `json:"coi,omitempty"`
	ClockHz   float64 `json:"clock_hz,omitempty"`
	Engine    string  `json:"engine,omitempty"`
	TimeoutMS int     `json:"timeout_ms,omitempty"`
	// ExploreWorkers sets the parallel-exploration worker count. Results
	// are bit-identical at any value, so it is excluded from the cache
	// key: tune it freely for latency without fragmenting the cache.
	ExploreWorkers int `json:"explore_workers,omitempty"`
	// Interrupts attaches the peripheral bus with the given symbolic
	// arrival window; the zero-valued config selects the documented
	// defaults (set it to {} to enable interrupts with defaults).
	Interrupts *peakpower.InterruptConfig `json:"interrupts,omitempty"`
}

func (s *server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req analyzeRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if (req.Bench == "") == (req.Source == "") {
		writeError(w, http.StatusBadRequest, fmt.Errorf(`exactly one of "bench" or "source" must be set`))
		return
	}
	target := req.Target
	if target == "" {
		target = peakpower.DefaultTarget
	}

	timeout := s.timeout
	if ms := req.Options.TimeoutMS; ms > 0 && time.Duration(ms)*time.Millisecond < timeout {
		timeout = time.Duration(ms) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	an, err := s.analyzer(ctx, target)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	var opts []peakpower.Option
	o := req.Options
	if o.MaxCycles > 0 {
		opts = append(opts, peakpower.WithMaxCycles(o.MaxCycles))
	}
	if o.MaxNodes > 0 {
		opts = append(opts, peakpower.WithMaxNodes(o.MaxNodes))
	}
	if o.COI > 0 {
		opts = append(opts, peakpower.WithCOI(o.COI))
	}
	if o.ClockHz > 0 {
		opts = append(opts, peakpower.WithClockHz(o.ClockHz))
	}
	if o.ExploreWorkers > 0 {
		opts = append(opts, peakpower.WithExploreWorkers(o.ExploreWorkers))
	}
	if o.Engine != "" {
		eng, err := peakpower.ParseEngine(o.Engine)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		opts = append(opts, peakpower.WithEngine(eng))
	}
	if o.Interrupts != nil {
		opts = append(opts, peakpower.WithInterrupts(*o.Interrupts))
	}

	var res *peakpower.Result
	if req.Bench != "" {
		res, err = an.AnalyzeBench(ctx, req.Bench, opts...)
	} else {
		name := req.Name
		if name == "" {
			name = "app"
		}
		res, err = an.Analyze(ctx, name, req.Source, opts...)
	}
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	data, err := res.Report.MarshalJSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// statusFor classifies an analysis error into an HTTP status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, peakpower.ErrUnknownTarget), errors.Is(err, peakpower.ErrUnknownBench):
		return http.StatusNotFound
	case errors.Is(err, peakpower.ErrAssemble),
		errors.Is(err, peakpower.ErrCycleBudget),
		errors.Is(err, peakpower.ErrNodeBudget):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	data, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}
