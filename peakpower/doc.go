// Package peakpower is the public entry point for hardware–software
// co-analysis: it takes an application binary and a gate-level processor
// design point and returns guaranteed, input-independent,
// application-specific peak power and peak energy requirements — the
// headline contribution of "Determining Application-specific Peak Power
// and Energy Requirements for Ultra-low Power Processors" (ASPLOS 2017).
//
// # Quickstart
//
//	a, err := peakpower.New()            // build the ULP430 once
//	if err != nil { ... }
//	res, err := a.Analyze(ctx, "app", src)
//	if err != nil { ... }
//	fmt.Printf("peak power %.3f mW, peak energy %.3e J\n",
//		res.PeakPowerMW, res.PeakEnergyJ)
//
// # Targets
//
// The co-analysis engine is target-pluggable: a Target packages a design
// point (netlist build, library, clock, budgets, benchmark suite), and a
// registry of them turns design-space exploration into a loop:
//
//	for _, ti := range peakpower.Targets() {
//		a, _ := peakpower.NewFor(ctx, ti.Name)
//		res, _ := a.AnalyzeBench(ctx, "mult")
//		...
//	}
//
// Registered out of the box: "ulp430" (the standard core), "ulp430-sized"
// (the Chapter 5 down-sized variant), and "ulp430-gated" (the power-gated
// variant). New always analyzes DefaultTarget.
//
// # Reports
//
// Every Result embeds a Report: a versioned, fully serializable record of
// the analysis — operating point, requirements, resolved (name-based)
// cycle-of-interest attribution, and run metadata — that round-trips
// losslessly through JSON and carries a content hash. Reports are
// deterministic: the same target, application, and options always produce
// byte-identical JSON (wall-clock timing lives on Result, outside the
// Report). Result adds the live, in-process handles on top: the execution
// tree, raw cell-index attribution, and the analyzed image.
//
// # Caching
//
// WithCache attaches a content-addressed analysis cache (NewCache): a
// repeated Analyze of the same image and resolved options is served
// without re-exploration, and concurrent analyses of identical work
// single-flight behind one exploration. cmd/peakpowerd wraps this package
// as an HTTP service serving cached Reports.
//
// # Options
//
// New/NewFor accept functional options establishing the analyzer's
// defaults, and every Analyze* method accepts the same options as
// per-call overrides:
//
//   - WithLibrary selects the standard-cell library (default: the target's).
//   - WithClockHz sets the operating clock (default: the target's).
//   - WithMaxCycles / WithMaxNodes bound the symbolic exploration.
//   - WithCOI sets how many cycles of interest are attributed.
//   - WithProgress / WithProgressEvery configure progress reporting for
//     long analyses (honored by both Analyze* and RunConcrete).
//   - WithWorkers sets the AnalyzeAll worker-pool size.
//   - WithEngine selects the gate-level evaluation engine.
//   - WithCache attaches a content-addressed analysis cache.
//
// # Engines
//
// Analyses default to EnginePacked, the bit-packed levelized gate
// engine (64 nets per word operation, dirty-level skipping — see
// PERFORMANCE.md). EngineScalar is the original one-gate-at-a-time
// implementation, retained as the verification oracle: differential
// tests hold the two engines to identical explorations, toggle sets,
// and bounds on the full benchmark suite, so EngineScalar exists to
// cross-check results and bisect suspected engine bugs, not for
// throughput. Report.Engine records which engine produced a result.
//
// # Error taxonomy
//
// Failures are classified by sentinel errors matchable with errors.Is:
// ErrAssemble (the source did not assemble), ErrUnknownBench (no such
// built-in benchmark), ErrUnknownTarget (no such registered design
// point), ErrCycleBudget and ErrNodeBudget (symbolic exploration exceeded
// its configured budget). Cancellation and deadlines surface as errors
// wrapping context.Canceled or context.DeadlineExceeded from the
// caller's context.
//
// # Concurrency
//
// An Analyzer is safe for concurrent use: the gate-level netlist is
// built once, is immutable afterwards, and every analysis simulates on
// its own private machine state. Run any number of Analyze* calls from
// different goroutines against one shared Analyzer, or use AnalyzeAll,
// which batches applications through a bounded worker pool sharing the
// one-time netlist build. A Cache may back any number of Analyzers.
package peakpower
