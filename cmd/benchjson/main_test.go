package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkEngineCoAnalysis/packed-8   \t      22\t 103028187 ns/op\t  12 B/op")
	if !ok {
		t.Fatal("line should parse")
	}
	if r.Name != "BenchmarkEngineCoAnalysis/packed-8" || r.Iterations != 22 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics["ns/op"] != 103028187 || r.Metrics["B/op"] != 12 {
		t.Fatalf("metrics %+v", r.Metrics)
	}
	if _, ok := parseLine("BenchmarkX 	 notanumber 	 1 ns/op"); ok {
		t.Fatal("bad iteration count should not parse")
	}
	if _, ok := parseLine("PASS"); ok {
		t.Fatal("non-benchmark line should not parse")
	}
	r, ok = parseLine("BenchmarkEngineStepConcrete/packed-8 \t 56392\t 55806 ns/op\t 17919 cycles/s")
	if !ok || r.Metrics["cycles/s"] != 17919 {
		t.Fatalf("custom metric: %+v ok=%v", r, ok)
	}
}
