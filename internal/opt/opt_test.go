package opt

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

func TestOPT1RewritesIndexedLoads(t *testing.T) {
	b := bench.ByName("binSearch")
	r := OPT1(b.Source)
	if r.Applied == 0 {
		t.Fatal("binSearch has an indexed load; OPT1 should fire")
	}
	if !strings.Contains(r.Source, "; OPT1") {
		t.Fatal("transform marker missing")
	}
	if strings.Contains(r.Source, "tab(r7)") {
		t.Fatal("indexed load survived")
	}
	if err := VerifyEquivalent(b, r.Source, 6, 11); err != nil {
		t.Fatalf("OPT1 broke binSearch: %v", err)
	}
}

func TestOPT1NeedsFreeRegister(t *testing.T) {
	// FFT uses r4..r15: no free register, transform must decline.
	b := bench.ByName("FFT")
	r := OPT1(b.Source)
	if r.Applied != 0 {
		t.Fatalf("FFT has no free register; OPT1 applied %d sites", r.Applied)
	}
	if r.Source != b.Source {
		t.Fatal("source must be unchanged")
	}
}

func TestOPT1SkipsStores(t *testing.T) {
	src := `
.org 0xf000
.entry main
main:
    mov r4, 2(r5)    ; store: not a load
    mov #1, &0x0126
spin: jmp spin
`
	r := OPT1(src)
	if r.Applied != 0 {
		t.Fatal("OPT1 must not rewrite indexed stores")
	}
}

func TestOPT2SplitsPop(t *testing.T) {
	b := bench.ByName("rle")
	r := OPT2(b.Source)
	if r.Applied != 1 {
		t.Fatalf("rle has one pop; applied=%d", r.Applied)
	}
	if !strings.Contains(r.Source, "mov @sp, r8 ; OPT2") ||
		!strings.Contains(r.Source, "add #2, sp ; OPT2") {
		t.Fatalf("split missing:\n%s", r.Source)
	}
	if err := VerifyEquivalent(b, r.Source, 6, 5); err != nil {
		t.Fatalf("OPT2 broke rle: %v", err)
	}
}

func TestOPT3InsertsNopAfterOP2(t *testing.T) {
	for _, name := range []string{"mult", "intFilt", "autoCorr", "FFT", "PI"} {
		b := bench.ByName(name)
		r := OPT3(b.Source)
		if r.Applied == 0 {
			t.Errorf("%s writes OP2; OPT3 should fire", name)
			continue
		}
		if err := VerifyEquivalent(b, r.Source, 4, 3); err != nil {
			t.Errorf("OPT3 broke %s: %v", name, err)
		}
	}
	// Idempotence: a second application finds the NOPs already present.
	b := bench.ByName("mult")
	once := OPT3(b.Source)
	twice := OPT3(once.Source)
	if twice.Applied != 0 {
		t.Error("OPT3 must be idempotent")
	}
}

func TestOPT3SkipsNonMultiplier(t *testing.T) {
	b := bench.ByName("tea8")
	r := OPT3(b.Source)
	if r.Applied != 0 {
		t.Fatal("tea8 has no multiplier writes")
	}
}

func TestApplyAllOnWholeSuite(t *testing.T) {
	anyApplied := false
	for _, b := range bench.All() {
		newSrc, counts := ApplyAll(b.Source)
		total := counts["OPT1"] + counts["OPT2"] + counts["OPT3"]
		if total > 0 {
			anyApplied = true
			if err := VerifyEquivalent(b, newSrc, 4, 17); err != nil {
				t.Errorf("%s: combined transforms broke semantics: %v", b.Name, err)
			}
		} else if newSrc != b.Source {
			t.Errorf("%s: no transforms but source changed", b.Name)
		}
	}
	if !anyApplied {
		t.Fatal("no transform fired on the whole suite")
	}
}

func TestMeasureOverhead(t *testing.T) {
	b := bench.ByName("mult")
	r := OPT3(b.Source)
	ov, err := MeasureOverhead(b, r.Source, 23)
	if err != nil {
		t.Fatal(err)
	}
	if ov.NewCycles <= ov.OrigCycles {
		t.Fatalf("inserting NOPs must cost cycles: %d -> %d", ov.OrigCycles, ov.NewCycles)
	}
	if ov.PerfDegradationPct <= 0 || ov.PerfDegradationPct > 25 {
		t.Fatalf("implausible degradation %.1f%%", ov.PerfDegradationPct)
	}
}

func TestVerifyCatchesBreakage(t *testing.T) {
	b := bench.ByName("intAVG")
	broken := strings.Replace(b.Source, "add @r4+, r8", "add @r4+, r9", 1)
	if broken == b.Source {
		t.Fatal("test setup: pattern not found")
	}
	if err := VerifyEquivalent(b, broken, 4, 29); err == nil {
		t.Fatal("verification must catch a broken rewrite")
	}
}

func TestFreeRegScan(t *testing.T) {
	if r := freeReg("mov r4, r5\nadd r15, r6"); r == 4 || r == 5 || r == 6 || r == 15 {
		t.Fatalf("freeReg picked a used register r%d", r)
	}
	all := "r4 r5 r6 r7 r8 r9 r10 r11 r12 r13 r14 r15"
	if r := freeReg(all); r != -1 {
		t.Fatalf("freeReg should fail, got r%d", r)
	}
	// r1 vs r10/r11... prefix confusion: r1 alone leaves r10+ free.
	if u := usedRegs("mov r1, r4"); u[10] || u[14] || !u[4] {
		t.Fatalf("token-boundary scan wrong: %v", u)
	}
}
