// Package netlist provides the gate-level netlist representation the
// co-analysis operates on: a flat sea of standard cells (instances of
// cell.Kind) connected by nets, annotated with the microarchitectural
// module each cell belongs to, plus topological levelization for
// cycle-based simulation and a structural-Verilog writer/parser.
//
// Build additionally compiles the PackedPlan consumed by the bit-packed
// gate engine (internal/gsim): a bit-position layout of every net over
// 64-bit value/known planes, same-kind cell batches grouped by
// topological level with run-length-compressed input gather programs,
// and per-level/per-batch read masks for dirty-level scheduling. The
// plan, like the netlist, is immutable after Build and shared by every
// concurrent simulation. See PERFORMANCE.md for the engine design.
//
// The paper's tool consumes "the gate-level netlist of the ULP processor"
// produced by synthesis and place-and-route (Section 4.1); this package is
// that artifact's in-memory form.
package netlist

import (
	"fmt"
	"sort"

	"repro/internal/cell"
)

// NetID identifies a net (a wire). Net 0 is valid.
type NetID int32

// None marks an unconnected input pin slot.
const None NetID = -1

// CellID identifies a cell instance within a netlist.
type CellID int32

// Cell is one standard-cell instance.
type Cell struct {
	// Kind is the library cell type.
	Kind cell.Kind
	// Name is the unique instance name (e.g. "U1423" or "pc_reg_5").
	Name string
	// Module is the hierarchical module path the instance belongs to,
	// e.g. "exec_unit.alu" or "frontend". Power breakdowns group by the
	// first path component.
	Module string
	// In holds the input net of each pin; unused slots are None.
	// Pin order: combinational cells use (A, B, C) with Mux2 as (S, D0, D1);
	// DFF variants use (D, RST, EN).
	In [3]NetID
	// Out is the output net (Q for DFF variants).
	Out NetID
}

// Netlist is a flat gate-level design.
type Netlist struct {
	// Name is the top module name.
	Name string

	cells    []Cell
	netNames []string
	inputs   []NetID
	isInput  []bool
	ports    map[string][]NetID

	built     bool
	levels    [][]CellID
	seq       []CellID
	driver    []CellID
	modules   []string
	modOfCell []uint16
	packed    *PackedPlan
}

// New returns an empty netlist with the given top-module name.
func New(name string) *Netlist {
	return &Netlist{Name: name, ports: make(map[string][]NetID)}
}

// NewNet allocates a net. The name may be empty; an automatic name is
// assigned. Names are used by the Verilog writer and VCD dumps.
func (n *Netlist) NewNet(name string) NetID {
	id := NetID(len(n.netNames))
	if name == "" {
		name = fmt.Sprintf("n%d", id)
	}
	n.netNames = append(n.netNames, name)
	n.isInput = append(n.isInput, false)
	return id
}

// NewNets allocates k nets named prefix[0..k-1].
func (n *Netlist) NewNets(prefix string, k int) []NetID {
	ids := make([]NetID, k)
	for i := range ids {
		ids[i] = n.NewNet(fmt.Sprintf("%s[%d]", prefix, i))
	}
	return ids
}

// MarkInput declares net id as a primary input, driven externally by the
// simulator each cycle (reset, port pins, memory read-data bus, ...).
func (n *Netlist) MarkInput(id NetID) {
	if !n.isInput[id] {
		n.isInput[id] = true
		n.inputs = append(n.inputs, id)
	}
}

// DefinePort records a named (vector) port for lookup by simulators and
// tools; it does not affect connectivity. Input ports must additionally be
// marked with MarkInput.
func (n *Netlist) DefinePort(name string, nets []NetID) {
	cp := make([]NetID, len(nets))
	copy(cp, nets)
	n.ports[name] = cp
}

// Port returns the nets of a named port, or nil if undefined.
func (n *Netlist) Port(name string) []NetID { return n.ports[name] }

// PortNames returns all defined port names, sorted.
func (n *Netlist) PortNames() []string {
	names := make([]string, 0, len(n.ports))
	for k := range n.ports {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// AddCell adds a cell instance driving out from ins. The number of ins
// must match k.NumInputs(). It returns the new cell's ID.
func (n *Netlist) AddCell(k cell.Kind, module, name string, out NetID, ins ...NetID) CellID {
	if len(ins) != k.NumInputs() {
		panic(fmt.Sprintf("netlist: %v takes %d inputs, got %d (cell %s)", k, k.NumInputs(), len(ins), name))
	}
	c := Cell{Kind: k, Name: name, Module: module, Out: out, In: [3]NetID{None, None, None}}
	copy(c.In[:], ins)
	id := CellID(len(n.cells))
	if name == "" {
		c.Name = fmt.Sprintf("U%d", id)
	}
	n.cells = append(n.cells, c)
	n.built = false
	return id
}

// NumNets returns the number of allocated nets.
func (n *Netlist) NumNets() int { return len(n.netNames) }

// NumCells returns the number of cell instances.
func (n *Netlist) NumCells() int { return len(n.cells) }

// Cell returns the cell with the given ID.
func (n *Netlist) Cell(id CellID) *Cell { return &n.cells[id] }

// Cells returns all cell instances (do not mutate).
func (n *Netlist) Cells() []Cell { return n.cells }

// NetName returns the name of net id.
func (n *Netlist) NetName(id NetID) string { return n.netNames[id] }

// Inputs returns the primary-input nets in declaration order.
func (n *Netlist) Inputs() []NetID { return n.inputs }

// IsInput reports whether id is a primary input.
func (n *Netlist) IsInput(id NetID) bool { return n.isInput[id] }

// Build validates the design and computes the topological levelization
// used by cycle-based simulation. It must be called (once) after
// construction and before Levels/Sequential/Driver are used. Build fails
// on multiply-driven nets, undriven non-input nets, pins connected to
// unallocated nets, and combinational cycles.
func (n *Netlist) Build() error {
	numNets := len(n.netNames)
	n.driver = make([]CellID, numNets)
	for i := range n.driver {
		n.driver[i] = -1
	}
	for ci := range n.cells {
		c := &n.cells[ci]
		if c.Out < 0 || int(c.Out) >= numNets {
			return fmt.Errorf("netlist: cell %s output net %d out of range", c.Name, c.Out)
		}
		for pin := 0; pin < c.Kind.NumInputs(); pin++ {
			in := c.In[pin]
			if in < 0 || int(in) >= numNets {
				return fmt.Errorf("netlist: cell %s input pin %d net %d out of range", c.Name, pin, in)
			}
		}
		if n.isInput[c.Out] {
			return fmt.Errorf("netlist: net %s is both a primary input and driven by cell %s", n.netNames[c.Out], c.Name)
		}
		if n.driver[c.Out] != -1 {
			return fmt.Errorf("netlist: net %s multiply driven (cells %s and %s)",
				n.netNames[c.Out], n.cells[n.driver[c.Out]].Name, c.Name)
		}
		n.driver[c.Out] = CellID(ci)
	}
	// Every net read by some pin must be driven or be a primary input.
	for ci := range n.cells {
		c := &n.cells[ci]
		for pin := 0; pin < c.Kind.NumInputs(); pin++ {
			in := c.In[pin]
			if n.driver[in] == -1 && !n.isInput[in] {
				return fmt.Errorf("netlist: net %s (read by %s) has no driver and is not an input",
					n.netNames[in], c.Name)
			}
		}
	}

	// Kahn levelization of combinational cells. Sources: primary inputs,
	// DFF outputs, and tie cells (zero-input).
	n.seq = n.seq[:0]
	indeg := make([]int, len(n.cells))
	// fanout: net -> combinational consumer cells
	fanout := make([][]CellID, numNets)
	for ci := range n.cells {
		c := &n.cells[ci]
		if c.Kind.Sequential() {
			n.seq = append(n.seq, CellID(ci))
			continue
		}
		deg := 0
		for pin := 0; pin < c.Kind.NumInputs(); pin++ {
			in := c.In[pin]
			d := n.driver[in]
			if d != -1 && !n.cells[d].Kind.Sequential() {
				deg++
				fanout[in] = append(fanout[in], CellID(ci))
			}
		}
		indeg[ci] = deg
	}
	var frontier []CellID
	for ci := range n.cells {
		if !n.cells[ci].Kind.Sequential() && indeg[ci] == 0 {
			frontier = append(frontier, CellID(ci))
		}
	}
	n.levels = n.levels[:0]
	placed := 0
	for len(frontier) > 0 {
		level := frontier
		n.levels = append(n.levels, level)
		placed += len(level)
		frontier = nil
		for _, ci := range level {
			out := n.cells[ci].Out
			for _, consumer := range fanout[out] {
				indeg[consumer]--
				if indeg[consumer] == 0 {
					frontier = append(frontier, consumer)
				}
			}
		}
	}
	combCount := len(n.cells) - len(n.seq)
	if placed != combCount {
		for ci := range n.cells {
			if !n.cells[ci].Kind.Sequential() && indeg[ci] > 0 {
				return fmt.Errorf("netlist: combinational cycle through cell %s (module %s)",
					n.cells[ci].Name, n.cells[ci].Module)
			}
		}
		return fmt.Errorf("netlist: combinational cycle detected")
	}

	// Intern module names.
	modIdx := make(map[string]uint16)
	n.modules = n.modules[:0]
	n.modOfCell = make([]uint16, len(n.cells))
	for ci := range n.cells {
		m := topModule(n.cells[ci].Module)
		idx, ok := modIdx[m]
		if !ok {
			idx = uint16(len(n.modules))
			modIdx[m] = idx
			n.modules = append(n.modules, m)
		}
		n.modOfCell[ci] = idx
	}
	n.buildPacked()
	n.built = true
	return nil
}

func topModule(path string) string {
	for i := 0; i < len(path); i++ {
		if path[i] == '.' {
			return path[:i]
		}
	}
	return path
}

// Built reports whether Build has succeeded since the last mutation.
func (n *Netlist) Built() bool { return n.built }

// Levels returns combinational cells grouped by topological level; level 0
// cells depend only on primary inputs, flip-flop outputs, and tie cells.
func (n *Netlist) Levels() [][]CellID { return n.levels }

// Sequential returns all flip-flop cell IDs.
func (n *Netlist) Sequential() []CellID { return n.seq }

// Driver returns the cell driving net id, or -1 for primary inputs.
func (n *Netlist) Driver(id NetID) CellID { return n.driver[id] }

// Modules returns the distinct top-level module names in first-seen order.
func (n *Netlist) Modules() []string { return n.modules }

// ModuleIndex returns the interned index of cell ci's top-level module.
func (n *Netlist) ModuleIndex(ci CellID) int { return int(n.modOfCell[ci]) }

// Stats summarizes a built netlist.
type Stats struct {
	// Cells is the total number of instances.
	Cells int
	// Seq is the number of flip-flops.
	Seq int
	// Nets is the number of nets.
	Nets int
	// Levels is the combinational depth.
	Levels int
	// AreaUM2 is the summed cell area.
	AreaUM2 float64
	// ByModule counts cells per top-level module.
	ByModule map[string]int
	// ByKind counts cells per cell kind.
	ByKind map[string]int
}

// Stats computes summary statistics using lib for area.
func (n *Netlist) Stats(lib *cell.Library) Stats {
	s := Stats{
		Cells:    len(n.cells),
		Seq:      len(n.seq),
		Nets:     len(n.netNames),
		Levels:   len(n.levels),
		ByModule: make(map[string]int),
		ByKind:   make(map[string]int),
	}
	for ci := range n.cells {
		c := &n.cells[ci]
		s.AreaUM2 += lib.Params(c.Kind).AreaUM2
		s.ByModule[topModule(c.Module)]++
		s.ByKind[c.Kind.String()]++
	}
	return s
}
