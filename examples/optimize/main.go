// Optimize: use the co-analysis tool's cycle-of-interest attribution to
// guide the OPT1-3 peak-power software optimizations (Section 5.1),
// verify them, and measure the improvement.
//
//	go run ./examples/optimize
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/opt"
	"repro/peakpower"
)

func main() {
	ctx := context.Background()
	// A content-addressed cache makes iterative optimize-and-re-analyze
	// loops cheap: re-analyzing an unchanged binary is served instantly.
	cache := peakpower.NewCache(16)
	analyzer, err := peakpower.NewFor(ctx, peakpower.DefaultTarget,
		peakpower.WithCache(cache))
	if err != nil {
		log.Fatal(err)
	}

	before, err := analyzer.AnalyzeBench(ctx, "mult")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: peak %.3f mW\n", before.PeakPowerMW)
	fmt.Println("cycles of interest:")
	for _, pk := range before.Attribution()[:3] {
		fmt.Printf("  cycle %-5d %.3f mW during %-6s — top module: %s\n",
			pk.Cycle, pk.PowerMW, pk.Instr, topModule(pk.ByModuleMW))
	}

	// The attribution points at multiplier overlap: apply the transforms.
	src, err := peakpower.BenchSource("mult")
	if err != nil {
		log.Fatal(err)
	}
	newSrc, counts := opt.ApplyAll(src)
	fmt.Printf("\napplied: OPT1=%d OPT2=%d OPT3=%d sites\n",
		counts["OPT1"], counts["OPT2"], counts["OPT3"])
	b := bench.ByName("mult")
	if err := opt.VerifyEquivalent(b, newSrc, 6, 1); err != nil {
		log.Fatalf("optimization broke the program: %v", err)
	}
	fmt.Println("differential verification: PASS (same outputs on 6 input sets)")

	after, err := analyzer.Analyze(ctx, "mult-opt", newSrc,
		peakpower.WithMaxCycles(4*b.MaxCycles))
	if err != nil {
		log.Fatal(err)
	}
	ov, err := opt.MeasureOverhead(b, newSrc, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter:  peak %.3f mW (%.2f%% lower), %.2f%% slower, energy %+.2f%%\n",
		after.PeakPowerMW,
		100*(1-after.PeakPowerMW/before.PeakPowerMW),
		ov.PerfDegradationPct,
		100*(after.PeakEnergyJ/before.PeakEnergyJ-1))

	// Re-checking the baseline costs nothing: the analysis cache serves
	// the identical image+options from memory.
	if _, err := analyzer.AnalyzeBench(ctx, "mult"); err != nil {
		log.Fatal(err)
	}
	st := cache.Stats()
	fmt.Printf("cache: %d analyses stored, %d served without re-exploration\n",
		st.Entries, st.Hits)
}

func topModule(byModule map[string]float64) string {
	best, name := 0.0, "?"
	for m, v := range byModule {
		if v > best {
			best, name = v, m
		}
	}
	return name
}
