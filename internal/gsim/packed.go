package gsim

import (
	"math/bits"

	"repro/internal/cell"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// packedSim is the bit-packed engine's state: net values live in two
// planes of 64-bit words (value/known, canonical v&^k == 0) laid out by
// the netlist's PackedPlan, so one word operation evaluates up to 64
// same-kind gates and a pair of XORs yields 64 toggle flags.
//
// The engine is event-driven at batch granularity: every value write
// (staged inputs, bus writes, flip-flop captures, batch outputs) marks
// its plane word dirty, and a level or batch whose ReadMask intersects
// no dirty word is skipped — its outputs provably equal last cycle's.
// Batch inputs are assembled by the plan's run-length-compressed gather
// programs (consecutive fan-in moves as multi-bit chunks, not single
// bits). Activity word ops still run for every batch each cycle (the
// driven-by-active X cascade depends on the current flags, not just on
// values), but they are cheap: one toggle word per 64 gates, with
// per-gate work only for unchanged-X outputs.
type packedSim struct {
	plan *netlist.PackedPlan

	curV, curK   []uint64 // settled values of the current cycle
	prevV, prevK []uint64 // settled values of the previous cycle
	act, prevAct []uint64 // activity flags, one bit per net position

	dirty     []uint64 // per-plane-word dirty bits for the cycle in flight
	dirtyPrev []uint64 // the previous cycle's settled dirty bits

	// actDirty marks act-plane words whose flags changed during the
	// current activity pass (relative to the previous cycle's flags);
	// actDirtyPrev is the previous pass's set. Together with the dirty
	// masks they let batchActivity replay a batch's cached energy
	// contribution when nothing it reads or writes moved (see activity).
	// eBatch caches each batch's last computed energy, indexed in
	// activity-pass order; actValid is false after Restore/reset, forcing
	// one full recomputing pass.
	actDirty     []uint64
	actDirtyPrev []uint64
	eBatch       []float64
	actValid     bool

	// eBatchStale is set by a whole-step replay (stepmemo.go), which
	// reproduces the pass's planes and bookkeeping but not eBatch; the
	// next live activity pass runs full to refresh it.
	eBatchStale bool

	// memo, when non-nil, replays per-level evaluations whose source
	// words have been seen before (see memo.go). stepMemo replays whole
	// settle+activity phases for revisited states (see stepmemo.go).
	memo     *memoTable
	stepMemo *stepTable

	// anchor/since/epoch back copy-on-write fork snapshots (delta.go):
	// since marks every plane word possibly differing from the anchor,
	// and epoch invalidates full snapshots taken before a since reset.
	anchor *planeAnchor
	since  []uint64
	epoch  uint64

	// settled is false until the first settle after New or a restore to
	// virgin state; the first settle force-evaluates every level so
	// constants (tie cells) and the all-X initial condition propagate.
	settled bool

	// boundFJ caches the cycle's Algorithm 2 energy bound, computed
	// for free during the activity pass (which already holds every
	// batch's extracted planes and fresh activity word). boundValid is
	// cleared by Restore; BoundEnergyFJ then recomputes on demand.
	boundFJ    float64
	boundValid bool
}

func newPackedSim(plan *netlist.PackedPlan) *packedSim {
	nw := plan.Words
	nb := len(plan.Seq)
	for li := range plan.Levels {
		nb += len(plan.Levels[li].Batches)
	}
	return &packedSim{
		plan:         plan,
		curV:         make([]uint64, nw),
		curK:         make([]uint64, nw), // known = 0 everywhere: all nets X
		prevV:        make([]uint64, nw),
		prevK:        make([]uint64, nw),
		act:          make([]uint64, nw),
		prevAct:      make([]uint64, nw),
		dirty:        make([]uint64, plan.MaskWords),
		dirtyPrev:    make([]uint64, plan.MaskWords),
		actDirty:     make([]uint64, plan.MaskWords),
		actDirtyPrev: make([]uint64, plan.MaskWords),
		eBatch:       make([]float64, nb),
	}
}

func (p *packedSim) val(id netlist.NetID) logic.Trit {
	pos := p.plan.Pos[id]
	return logic.TritFromPlane(p.curV[pos>>6], p.curK[pos>>6], uint(pos&63))
}

func (p *packedSim) prevVal(id netlist.NetID) logic.Trit {
	pos := p.plan.Pos[id]
	return logic.TritFromPlane(p.prevV[pos>>6], p.prevK[pos>>6], uint(pos&63))
}

func (p *packedSim) isActive(id netlist.NetID) bool {
	pos := p.plan.Pos[id]
	return p.act[pos>>6]>>uint(pos&63)&1 == 1
}

func (p *packedSim) markDirty(w int32) {
	p.dirty[w>>6] |= 1 << uint(w&63)
}

func (p *packedSim) markActDirty(w int32) {
	p.actDirty[w>>6] |= 1 << uint(w&63)
}

func (p *packedSim) maskDirty(mask []uint64) bool {
	for i, m := range mask {
		if p.dirty[i]&m != 0 {
			return true
		}
	}
	return false
}

// setTrit writes one net immediately (staged inputs at cycle start, bus
// writes mid-cycle), marking the word dirty only on a symbol change.
func (p *packedSim) setTrit(id netlist.NetID, t logic.Trit) {
	pos := p.plan.Pos[id]
	w, b := pos>>6, uint(pos&63)
	nv, nk := logic.PlaneFromTrit(t)
	mask := uint64(1) << b
	newV := p.curV[w]&^mask | nv<<b
	newK := p.curK[w]&^mask | nk<<b
	if newV != p.curV[w] || newK != p.curK[w] {
		p.curV[w] = newV
		p.curK[w] = newK
		p.markDirty(w)
	}
}

// laneMask returns the low-n-bits mask (n in 1..64).
func laneMask(n int) uint64 {
	return ^uint64(0) >> (64 - uint(n))
}

// extract reads n consecutive plane bits starting at pos into bits
// [0, n) of a word.
func extract(plane []uint64, pos int32, n int) uint64 {
	w, b := pos>>6, uint(pos&63)
	v := plane[w] >> b
	if b != 0 && int(b)+n > 64 {
		v |= plane[w+1] << (64 - b)
	}
	return v & laneMask(n)
}

// gatherPair assembles a chunk's input word pair by executing the
// plan's run-length-compressed gather programs against a plane pair:
// consecutive source bits move as one shifted chunk (runs), broadcast
// runs (bruns) replicate one bit across their lanes by multiplication.
// The two run classes are pre-split so each loop is branch-free.
func gatherPair(vp, kp []uint64, runs, bruns []netlist.GatherRun) (v, k uint64) {
	for _, r := range runs {
		w, b := r.Src>>6, uint(r.Src&63)
		n := uint(r.N)
		m := ^uint64(0) >> (64 - n)
		lv := vp[w] >> b
		lk := kp[w] >> b
		if b != 0 && b+n > 64 {
			lv |= vp[w+1] << (64 - b)
			lk |= kp[w+1] << (64 - b)
		}
		v |= lv & m << r.Off
		k |= lk & m << r.Off
	}
	for _, r := range bruns {
		w, b := r.Src>>6, uint(r.Src&63)
		m := ^uint64(0) >> (64 - uint(r.N))
		v |= vp[w] >> b & 1 * m << r.Off
		k |= kp[w] >> b & 1 * m << r.Off
	}
	return v, k
}

// gatherFlags is gatherPair for a single plane (the activity flags).
func gatherFlags(p []uint64, runs, bruns []netlist.GatherRun) (v uint64) {
	for _, r := range runs {
		w, b := r.Src>>6, uint(r.Src&63)
		n := uint(r.N)
		m := ^uint64(0) >> (64 - n)
		lv := p[w] >> b
		if b != 0 && b+n > 64 {
			lv |= p[w+1] << (64 - b)
		}
		v |= lv & m << r.Off
	}
	for _, r := range bruns {
		w, b := r.Src>>6, uint(r.Src&63)
		m := ^uint64(0) >> (64 - uint(r.N))
		v |= p[w] >> b & 1 * m << r.Off
	}
	return v
}

// store writes n result lanes (bits [0,n) of ov/ok) to plane positions
// [pos, pos+n), read-modify-write, marking changed words dirty.
func (p *packedSim) store(pos int32, n int, ov, ok uint64) {
	w, b := pos>>6, uint(pos&63)
	m := laneMask(n)
	lm := m << b
	newV := p.curV[w]&^lm | ov<<b&lm
	newK := p.curK[w]&^lm | ok<<b&lm
	if newV != p.curV[w] || newK != p.curK[w] {
		p.curV[w] = newV
		p.curK[w] = newK
		p.markDirty(w)
	}
	if b != 0 && int(b)+n > 64 {
		hm := m >> (64 - b)
		hv := p.curV[w+1]&^hm | ov>>(64-b)&hm
		hk := p.curK[w+1]&^hm | ok>>(64-b)&hm
		if hv != p.curV[w+1] || hk != p.curK[w+1] {
			p.curV[w+1] = hv
			p.curK[w+1] = hk
			p.markDirty(w + 1)
		}
	}
}

// storeAct writes n activity lanes to act positions [pos, pos+n),
// marking changed words act-dirty (each lane is written at most once
// per pass, so compare-on-write detects exactly the words whose flags
// differ from the previous cycle's).
func (p *packedSim) storeAct(pos int32, n int, a uint64) {
	w, b := pos>>6, uint(pos&63)
	m := laneMask(n)
	lm := m << b
	na := p.act[w]&^lm | a<<b&lm
	if na != p.act[w] {
		p.act[w] = na
		p.markActDirty(w)
	}
	if b != 0 && int(b)+n > 64 {
		hm := m >> (64 - b)
		ha := p.act[w+1]&^hm | a>>(64-b)&hm
		if ha != p.act[w+1] {
			p.act[w+1] = ha
			p.markActDirty(w + 1)
		}
	}
}

// evalBatch evaluates one combinational batch chunk-by-chunk against
// the current planes.
func (p *packedSim) evalBatch(b *netlist.PackedBatch) {
	nin := b.NIn
	lanes := len(b.Cells)
	for c, lane0 := 0, 0; lane0 < lanes; c, lane0 = c+1, lane0+64 {
		n := min(64, lanes-lane0)
		var av, ak, bv, bk, cv, ck uint64
		if nin > 0 {
			av, ak = gatherPair(p.curV, p.curK, b.Gather[0][c], b.GatherB[0][c])
		}
		if nin > 1 {
			bv, bk = gatherPair(p.curV, p.curK, b.Gather[1][c], b.GatherB[1][c])
		}
		if nin > 2 {
			cv, ck = gatherPair(p.curV, p.curK, b.Gather[2][c], b.GatherB[2][c])
		}
		ov, ok := cell.EvalPlanes(b.Kind, av, ak, bv, bk, cv, ck, 0, 0)
		p.store(b.FirstPos+int32(lane0), n, ov, ok)
	}
}

// captureBatch computes one flip-flop batch's next state from the
// previous cycle's planes (the clock edge) and writes it into the
// current planes.
func (p *packedSim) captureBatch(b *netlist.PackedBatch) {
	nin := b.NIn
	lanes := len(b.Cells)
	for c, lane0 := 0, 0; lane0 < lanes; c, lane0 = c+1, lane0+64 {
		n := min(64, lanes-lane0)
		av, ak := gatherPair(p.prevV, p.prevK, b.Gather[0][c], b.GatherB[0][c])
		var bv, bk, cv, ck uint64
		if nin > 1 {
			bv, bk = gatherPair(p.prevV, p.prevK, b.Gather[1][c], b.GatherB[1][c])
		}
		if nin > 2 {
			cv, ck = gatherPair(p.prevV, p.prevK, b.Gather[2][c], b.GatherB[2][c])
		}
		// q is the batch's own output region of the previous cycle.
		pos := b.FirstPos + int32(lane0)
		qv := extract(p.prevV, pos, n)
		qk := extract(p.prevK, pos, n)
		ov, ok := cell.EvalPlanes(b.Kind, av, ak, bv, bk, cv, ck, qv, qk)
		p.store(pos, n, ov, ok)
	}
}

// stepPacked is the packed engine's cycle. It mirrors stepScalar phase
// for phase; only the evaluation strategy differs.
func (s *Simulator) stepPacked() {
	p := s.pk
	copy(p.prevV, p.curV)
	copy(p.prevK, p.curK)
	p.dirty, p.dirtyPrev = p.dirtyPrev, p.dirty
	for i := range p.dirty {
		p.dirty[i] = 0
	}
	s.inStep = true

	// 0. Staged input assignments become the new cycle's input values.
	for _, si := range s.staged {
		p.setTrit(si.id, si.v)
	}
	s.staged = s.staged[:0]

	// 1. Clock edge: flip-flop batches capture from the previous planes.
	// A batch whose fan-in and output words took no write last cycle
	// reads exactly what its previous capture read and would re-store
	// the values its outputs already hold (nothing else writes flip-flop
	// positions between captures; a bus write there lands in dirtyPrev
	// and blocks the skip), so the gathers are elided. actValid is false
	// right after Restore/reset, when dirtyPrev predates the restored
	// planes and proves nothing.
	for bi := range p.plan.Seq {
		b := &p.plan.Seq[bi]
		if p.actValid && !p.seqTouched(b) {
			continue
		}
		p.captureBatch(b)
	}

	// 2. External bus observes registered outputs and drives read data.
	if s.bus != nil {
		s.bus.Tick(s)
	}

	// 3. The rest of the cycle — combinational settling and the
	// activity/energy pass — is a pure function of the five planes now
	// in hand (every external write has landed); a whole-step memo hit
	// replays it outright (see stepmemo.go).
	memo := p.memo
	st := p.stepMemo
	if st == nil || !st.lookup(p) {
		// Settle level by level in topological order, skipping any
		// level — and, within a dirty level, any batch — whose fan-in
		// words are all clean (outputs provably equal last cycle's).
		force := !p.settled
		for li := range p.plan.Levels {
			lv := &p.plan.Levels[li]
			if !force && !p.maskDirty(lv.ReadMask) {
				continue
			}
			if memo != nil && !force && memo.lookup(p, li) {
				continue // verified hit replayed the level's outputs
			}
			for bi := range lv.Batches {
				b := &lv.Batches[bi]
				if force || p.maskDirty(b.ReadMask) {
					p.evalBatch(b)
				}
			}
			if memo != nil && !force {
				memo.record(p)
			}
		}
		p.settled = true

		// 4. Activity, with the cycle's energy bound accumulated in
		// the same pass.
		p.activity(s)

		if st != nil {
			st.record(p)
		}
	}

	// Copy-on-write bookkeeping: the cycle's writes (dirty) plus the
	// anchor's own cur/prev skew (d0, introduced by the prev <- cur
	// latch) are the only words that can newly diverge from the anchor.
	if p.anchor != nil {
		d0 := p.anchor.d0
		for i, d := range p.dirty {
			p.since[i] |= d | d0[i]
		}
	}
	if memo != nil && memo.stepHits|memo.stepMisses != 0 {
		s.memoHits.Add(int64(memo.stepHits))
		s.memoMisses.Add(int64(memo.stepMisses))
		memo.stepHits, memo.stepMisses = 0, 0
	}
	if st != nil && st.stepHits|st.stepMisses != 0 {
		s.memoHits.Add(int64(st.stepHits))
		s.memoMisses.Add(int64(st.stepMisses))
		st.stepHits, st.stepMisses = 0, 0
	}

	s.inStep = false
}

// activity computes the per-net activity plane, mirroring the scalar
// rules: flip-flops first (X-activity from last cycle's flags), then
// primary inputs, then combinational gates in topological order
// (X-activity from current flags). Toggles are one packed XOR pair per
// word; only unchanged-X outputs need per-gate fan-in checks.
//
// Like the settle loop, the pass is change-driven: a batch whose output
// words stayed clean this cycle AND last cycle, and whose fan-in
// activity flags did not move since it last read them, provably
// reproduces last cycle's flags and energy, so it replays its cached
// contribution instead of re-running the gathers (the X cascade is by
// far the pass's dominant cost in the symbolic steady state, where the
// flags are static). actDirty tracks flag changes word-by-word, exactly
// as dirty tracks value changes; see DESIGN.md "Memoization and
// copy-on-write soundness" for why the skip is exact.
func (p *packedSim) activity(s *Simulator) {
	full := !p.actValid || p.eBatchStale
	p.actValid = true
	p.eBatchStale = false
	p.actDirty, p.actDirtyPrev = p.actDirtyPrev, p.actDirty
	for i := range p.actDirty {
		p.actDirty[i] = 0
	}
	copy(p.prevAct, p.act)
	plan := p.plan
	e := s.clkTotalFJ
	idx := 0

	for bi := range plan.Seq {
		e += p.batchActivity(s, &plan.Seq[bi], true, full, idx)
		idx++
	}

	// Primary inputs occupy positions [0, InputBits), word-aligned at
	// the plane's start: active when toggled or unknown.
	for w, bit := int32(0), 0; bit < plan.InputBits; w, bit = w+1, bit+64 {
		n := min(64, plan.InputBits-bit)
		mask := laneMask(n)
		t := (p.prevV[w] ^ p.curV[w]) | (p.prevK[w] ^ p.curK[w])
		na := p.act[w]&^mask | (t|^p.curK[w])&mask
		if na != p.act[w] {
			p.act[w] = na
			p.markActDirty(w)
		}
	}

	for li := range plan.Levels {
		lv := &plan.Levels[li]
		for bi := range lv.Batches {
			e += p.batchActivity(s, &lv.Batches[bi], false, full, idx)
			idx++
		}
	}
	p.boundFJ = e
	p.boundValid = true
}

// seqTouched reports whether any word a flip-flop batch's capture reads
// — its gather fan-in or its own output region (the q feedback) — was
// written during the previous cycle.
func (p *packedSim) seqTouched(b *netlist.PackedBatch) bool {
	lo := b.FirstPos >> 6
	hi := (b.FirstPos + int32(len(b.Cells)) - 1) >> 6
	for w := lo; w <= hi; w++ {
		if p.dirtyPrev[w>>6]>>uint(w&63)&1 != 0 {
			return true
		}
	}
	for i, m := range b.ReadMask {
		if p.dirtyPrev[i]&m != 0 {
			return true
		}
	}
	return false
}

// actReplayable reports whether a batch's activity flags and energy are
// provably last cycle's: its output words took no value write this
// cycle (toggles zero) or last cycle (the cached flags hold no stale
// toggle bits), and the activity flags its cascade gathers have not
// changed since the batch last read them — the current pass's changes
// for combinational batches (lower levels are final by the time the
// batch runs), the previous pass's for flip-flops (which read prevAct).
// Flip-flops also require their fan-in VALUE words unmoved last cycle:
// the Dffre held-enable refinement reads the previous planes.
func (p *packedSim) actReplayable(b *netlist.PackedBatch, seq bool) bool {
	lo := b.FirstPos >> 6
	hi := (b.FirstPos + int32(len(b.Cells)) - 1) >> 6
	for w := lo; w <= hi; w++ {
		if (p.dirty[w>>6]|p.dirtyPrev[w>>6])>>uint(w&63)&1 != 0 {
			return false
		}
	}
	if seq {
		for i, m := range b.ReadMask {
			if (p.actDirtyPrev[i]|p.dirtyPrev[i])&m != 0 {
				return false
			}
		}
	} else {
		for i, m := range b.ReadMask {
			if p.actDirty[i]&m != 0 {
				return false
			}
		}
	}
	return true
}

// batchActivity applies the activity rule to one batch, fully
// word-parallel: toggles from the packed XOR, then for unchanged-X
// outputs the driven-by-active cascade as an OR of the pins' gathered
// activity words. For flip-flops (seq true) the cascade reads last
// cycle's flags and is suppressed for lanes provably held (Dffre with
// known-idle enable and reset — no refinement can have toggled them).
//
// It returns the batch's Algorithm 2 energy bound for the cycle,
// computed from the words already in hand (see batchBoundFJ for the
// standalone form of the same classification) and cached under idx for
// the replay fast path (actReplayable).
func (p *packedSim) batchActivity(s *Simulator, b *netlist.PackedBatch, seq, full bool, idx int) float64 {
	if !full && p.actReplayable(b, seq) {
		return p.eBatch[idx]
	}
	nin := b.NIn
	lanes := len(b.Cells)
	rise, fall, maxE := s.riseFJ[b.Kind], s.fallFJ[b.Kind], s.maxFJ[b.Kind]
	e := 0.0
	for c, lane0 := 0, 0; lane0 < lanes; c, lane0 = c+1, lane0+64 {
		n := min(64, lanes-lane0)
		m := laneMask(n)
		pos := b.FirstPos + int32(lane0)
		cv := extract(p.curV, pos, n)
		ck := extract(p.curK, pos, n)
		pv := extract(p.prevV, pos, n)
		pk := extract(p.prevK, pos, n)
		t := ((pv ^ cv) | (pk ^ ck)) & m
		actW := t
		// Unchanged-X outputs: active iff driven by an active gate.
		if pend := ^t & ^ck & m; pend != 0 && nin > 0 {
			flags := p.act
			if seq {
				flags = p.prevAct
			}
			in := gatherFlags(flags, b.Gather[0][c], b.GatherB[0][c])
			if nin > 1 && pend&^in != 0 {
				in |= gatherFlags(flags, b.Gather[1][c], b.GatherB[1][c])
			}
			if nin > 2 && pend&^in != 0 {
				in |= gatherFlags(flags, b.Gather[2][c], b.GatherB[2][c])
			}
			casc := pend & in
			if seq && b.Kind == cell.Dffre && casc != 0 {
				rv, rk := gatherPair(p.prevV, p.prevK, b.Gather[1][c], b.GatherB[1][c])
				ev, ek := gatherPair(p.prevV, p.prevK, b.Gather[2][c], b.GatherB[2][c])
				held := (rk &^ rv) & (ek &^ ev)
				casc &^= held
			}
			actW |= casc
		}
		p.storeAct(pos, n, actW)

		// Energy bound, from the same words.
		e += chunkBoundFJ(pv, pk, cv, ck, actW, m, rise, fall, maxE)
	}
	p.eBatch[idx] = e
	return e
}

// chunkBoundFJ is the word-parallel Algorithm 2 classification for one
// chunk: known-to-known transitions by popcount, X-involved active
// gates (actW) classified by their known endpoint — both-X takes the
// library's max transition, "left a known 0" / "arrived at a known 1"
// is a rise, the mirror a fall. Canonical planes make "known 0" one
// AND-NOT. Shared by the fused activity pass and the standalone
// post-Restore walk so the rule cannot diverge.
func chunkBoundFJ(pv, pk, cv, ck, actW, m uint64, rise, fall, maxE float64) float64 {
	e := 0.0
	bothK := pk & ck
	if r := bothK &^ pv & cv & m; r != 0 {
		e += float64(bits.OnesCount64(r)) * rise
	}
	if f := bothK & pv &^ cv & m; f != 0 {
		e += float64(bits.OnesCount64(f)) * fall
	}
	if xa := actW & ^bothK & m; xa != 0 {
		e += float64(bits.OnesCount64(xa&^pk&^ck)) * maxE
		e += float64(bits.OnesCount64(xa&pk&^pv)+bits.OnesCount64(xa&ck&cv)) * rise
		e += float64(bits.OnesCount64(xa&pv)+bits.OnesCount64(xa&ck&^cv)) * fall
	}
	return e
}

// forEachActiveCell scans the activity plane's set bits and reports the
// driving cell of each active net position, skipping primary inputs.
func (p *packedSim) forEachActiveCell(f func(netlist.CellID)) {
	cells := p.plan.CellOfPos
	for w, a := range p.act {
		base := w * 64
		for a != 0 {
			bit := bits.TrailingZeros64(a)
			a &^= 1 << uint(bit)
			if ci := cells[base+bit]; ci >= 0 {
				f(ci)
			}
		}
	}
}

// accumulateNewActive ORs the activity plane into acc and calls f for
// every newly set position that maps to a cell. Work beyond the word
// ORs is proportional to positions never active before, so a whole-run
// union costs O(distinct active cells) total, not O(cells) per cycle.
func (p *packedSim) accumulateNewActive(acc []uint64, f func(netlist.CellID)) {
	cells := p.plan.CellOfPos
	for w, a := range p.act {
		fresh := a &^ acc[w]
		if fresh == 0 {
			continue
		}
		acc[w] |= a
		base := w * 64
		for fresh != 0 {
			bit := bits.TrailingZeros64(fresh)
			fresh &^= 1 << uint(bit)
			if ci := cells[base+bit]; ci >= 0 {
				f(ci)
			}
		}
	}
}

// boundEnergyFJ is the packed fast path of the streaming Algorithm 2
// bound (power.CycleBoundFJ's rule): known-to-known transitions are
// counted with popcounts per same-kind batch region and multiplied by
// the library's rise/fall energies; only active X-involved gates need
// word-classified popcounts. Clock-pin energy is the precomputed
// constant. The rule is cross-tested against the reference sum in
// package power. The activity pass computes the same sum for free each
// Step (batchActivity already holds every word), so this usually
// returns the cached value; the standalone walk below serves a
// simulator whose activity flags were cleared by Restore.
func (p *packedSim) boundEnergyFJ(s *Simulator) float64 {
	if p.boundValid {
		return p.boundFJ
	}
	e := s.clkTotalFJ
	for bi := range p.plan.Seq {
		e += p.batchBoundFJ(s, &p.plan.Seq[bi])
	}
	for li := range p.plan.Levels {
		lv := &p.plan.Levels[li]
		for bi := range lv.Batches {
			e += p.batchBoundFJ(s, &lv.Batches[bi])
		}
	}
	return e
}

func (p *packedSim) batchBoundFJ(s *Simulator, b *netlist.PackedBatch) float64 {
	rise, fall, maxE := s.riseFJ[b.Kind], s.fallFJ[b.Kind], s.maxFJ[b.Kind]
	e := 0.0
	lanes := len(b.Cells)
	for lane0 := 0; lane0 < lanes; lane0 += 64 {
		n := min(64, lanes-lane0)
		pos := b.FirstPos + int32(lane0)
		m := laneMask(n)
		cv := extract(p.curV, pos, n)
		ck := extract(p.curK, pos, n)
		pv := extract(p.prevV, pos, n)
		pk := extract(p.prevK, pos, n)
		e += chunkBoundFJ(pv, pk, cv, ck, extract(p.act, pos, n), m, rise, fall, maxE)
	}
	return e
}
