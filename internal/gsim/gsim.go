// Package gsim is the cycle-based gate-level simulator at the heart of the
// co-analysis. It evaluates a built netlist in the three-valued domain of
// package logic, so the same engine performs both concrete ("input-based")
// simulation and the symbolic ("X-based") simulation of the paper's
// Section 3.1, in which unknown values are propagated for all inputs.
//
// Each Step models one clock cycle of a design with a registered bus
// interface:
//
//  1. flip-flops capture their next state (computed from last cycle's
//     settled values),
//  2. the external Bus observes the freshly captured, registered bus
//     outputs, services the access, and drives the read-data inputs,
//  3. combinational logic settles in one topologically ordered pass,
//  4. per-gate activity is derived by comparing against the previous
//     cycle's settled values.
//
// Activity follows the paper's definition: a gate is active in a cycle if
// its output value changed, or if its output is X and it is driven by an
// active gate (Section 3.1).
package gsim

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// Bus services memory/peripheral accesses. Tick is called once per cycle
// after flip-flops have captured and before combinational settling; it
// may read registered output nets with s.Val and must drive read-data
// primary inputs with s.SetNet.
type Bus interface {
	Tick(s *Simulator)
}

// CycleHook observes every completed cycle; used by power analysis,
// activity recording, and VCD dumping. prev and cur are the settled net
// values of the previous and current cycle (do not retain or mutate).
type CycleHook func(cycle uint64, s *Simulator)

// Simulator simulates one netlist instance.
type Simulator struct {
	n   *netlist.Netlist
	lib *cell.Library
	bus Bus

	vals    []logic.Trit
	prev    []logic.Trit
	active  []bool
	prevAct []bool

	order []netlist.CellID // combinational cells in topological order
	seq   []netlist.CellID
	seqNx []logic.Trit

	staged []stagedInput
	inStep bool

	cycle uint64
	hooks []CycleHook
}

// stagedInput is an input assignment made between Steps; it takes effect
// at the start of the next cycle, after the previous cycle's values have
// been latched as "previous" (so input changes register as activity).
type stagedInput struct {
	id netlist.NetID
	v  logic.Trit
}

// New creates a simulator for a built netlist. All nets start at X — the
// paper's initial condition ("the states of all gates ... are initialized
// to Xs").
func New(n *netlist.Netlist, lib *cell.Library, bus Bus) *Simulator {
	if !n.Built() {
		panic("gsim: netlist not built")
	}
	order := make([]netlist.CellID, 0, n.NumCells())
	for _, level := range n.Levels() {
		order = append(order, level...)
	}
	s := &Simulator{
		n: n, lib: lib, bus: bus,
		vals:    make([]logic.Trit, n.NumNets()),
		prev:    make([]logic.Trit, n.NumNets()),
		active:  make([]bool, n.NumNets()),
		prevAct: make([]bool, n.NumNets()),
		order:   order,
		seq:     n.Sequential(),
		seqNx:   make([]logic.Trit, len(n.Sequential())),
	}
	for i := range s.vals {
		s.vals[i] = logic.X
		s.prev[i] = logic.X
	}
	return s
}

// Netlist returns the simulated design.
func (s *Simulator) Netlist() *netlist.Netlist { return s.n }

// Library returns the cell library used for power lookups.
func (s *Simulator) Library() *cell.Library { return s.lib }

// Cycle returns the number of completed Steps.
func (s *Simulator) Cycle() uint64 { return s.cycle }

// AddHook registers a per-cycle observer.
func (s *Simulator) AddHook(h CycleHook) { s.hooks = append(s.hooks, h) }

// Val returns the settled value of a net in the current cycle.
func (s *Simulator) Val(id netlist.NetID) logic.Trit { return s.vals[id] }

// PrevVal returns the settled value of a net in the previous cycle.
func (s *Simulator) PrevVal(id netlist.NetID) logic.Trit { return s.prev[id] }

// Active reports whether the net was active in the current cycle.
func (s *Simulator) Active(id netlist.NetID) bool { return s.active[id] }

// SetNet drives a primary-input net. Outside Step the assignment is
// staged and takes effect at the start of the next cycle; a Bus calling
// SetNet from Tick drives the net immediately (read data for the cycle in
// flight). SetNet panics when applied to a driven net, which would
// silently desynchronize simulation from the netlist.
func (s *Simulator) SetNet(id netlist.NetID, v logic.Trit) {
	if !s.n.IsInput(id) {
		panic(fmt.Sprintf("gsim: SetNet on non-input net %s", s.n.NetName(id)))
	}
	if s.inStep {
		s.vals[id] = v
		return
	}
	s.staged = append(s.staged, stagedInput{id, v})
}

// SetPort drives a named input port with a word (bit i of w drives net i
// of the port).
func (s *Simulator) SetPort(name string, w logic.Word) {
	nets := s.n.Port(name)
	if nets == nil {
		panic("gsim: unknown port " + name)
	}
	if len(nets) != len(w) {
		panic(fmt.Sprintf("gsim: port %s width %d, word width %d", name, len(nets), len(w)))
	}
	for i, id := range nets {
		s.SetNet(id, w[i])
	}
}

// SetPortUint drives a named input port with a concrete value.
func (s *Simulator) SetPortUint(name string, v uint64) {
	nets := s.n.Port(name)
	if nets == nil {
		panic("gsim: unknown port " + name)
	}
	s.SetPort(name, logic.FromUint(v, len(nets)))
}

// Port reads the current value of a named port as a word.
func (s *Simulator) Port(name string) logic.Word {
	nets := s.n.Port(name)
	if nets == nil {
		panic("gsim: unknown port " + name)
	}
	w := make(logic.Word, len(nets))
	for i, id := range nets {
		w[i] = s.vals[id]
	}
	return w
}

// PortUint reads a named port as a concrete value; ok is false if any bit
// is X.
func (s *Simulator) PortUint(name string) (uint64, bool) {
	return s.Port(name).Uint()
}

// Step advances simulation by one clock cycle.
func (s *Simulator) Step() {
	copy(s.prev, s.vals)
	s.inStep = true

	// 0. Staged input assignments become the new cycle's input values.
	for _, si := range s.staged {
		s.vals[si.id] = si.v
	}
	s.staged = s.staged[:0]

	// 1. Clock edge: flip-flops capture next state computed from the
	// previous cycle's settled values.
	for i, ci := range s.seq {
		c := s.n.Cell(ci)
		var a, b, cc logic.Trit
		a = s.prev[c.In[0]]
		if c.In[1] >= 0 {
			b = s.prev[c.In[1]]
		}
		if c.In[2] >= 0 {
			cc = s.prev[c.In[2]]
		}
		s.seqNx[i] = cell.Eval(c.Kind, a, b, cc, s.prev[c.Out])
	}
	for i, ci := range s.seq {
		s.vals[s.n.Cell(ci).Out] = s.seqNx[i]
	}

	// 2. External bus observes registered outputs and drives read data.
	if s.bus != nil {
		s.bus.Tick(s)
	}

	// 3. Combinational settling in topological order.
	for _, ci := range s.order {
		c := s.n.Cell(ci)
		var a, b, cc logic.Trit
		if c.In[0] >= 0 {
			a = s.vals[c.In[0]]
		}
		if c.In[1] >= 0 {
			b = s.vals[c.In[1]]
		}
		if c.In[2] >= 0 {
			cc = s.vals[c.In[2]]
		}
		s.vals[c.Out] = cell.Eval(c.Kind, a, b, cc, 0)
	}

	// 4. Activity: toggled, or X driven by an active gate (the paper's
	// Section 3.1 rule). Primary inputs are active when they changed or
	// are X (inputs are the unconstrained signals the analysis
	// abstracts). Flip-flop outputs changed at the clock edge as a
	// function of last cycle's inputs, so their X-activity derives from
	// last cycle's activity flags; combinational gates settle within the
	// cycle and use current flags in topological order.
	copy(s.prevAct, s.active)
	for _, ci := range s.seq {
		c := s.n.Cell(ci)
		out := c.Out
		if s.prev[out] != s.vals[out] {
			s.active[out] = true
			continue
		}
		act := false
		if s.vals[out] == logic.X && s.seqCanCapture(c) {
			for pin := 0; pin < c.Kind.NumInputs(); pin++ {
				if s.prevAct[c.In[pin]] {
					act = true
					break
				}
			}
		}
		s.active[out] = act
	}
	for _, id := range s.n.Inputs() {
		s.active[id] = s.prev[id] != s.vals[id] || s.vals[id] == logic.X
	}
	for _, ci := range s.order {
		c := s.n.Cell(ci)
		out := c.Out
		if s.prev[out] != s.vals[out] {
			s.active[out] = true
			continue
		}
		act := false
		if s.vals[out] == logic.X {
			for pin := 0; pin < c.Kind.NumInputs(); pin++ {
				if s.active[c.In[pin]] {
					act = true
					break
				}
			}
		}
		s.active[out] = act
	}

	s.inStep = false
	s.cycle++
	for _, h := range s.hooks {
		h(s.cycle, s)
	}
}

// seqCanCapture reports whether a flip-flop could have captured a new
// value at the edge that began this cycle. A Dffre whose enable was a
// known 0 (with reset known inactive) held its state in *every* concrete
// refinement, so an unchanged-X output cannot have toggled — this keeps
// idle X-holding register banks (e.g. the multiplier operands) from being
// conservatively marked active via their data-pin cones.
func (s *Simulator) seqCanCapture(c *netlist.Cell) bool {
	if c.Kind != cell.Dffre {
		return true
	}
	rst := s.prev[c.In[1]]
	en := s.prev[c.In[2]]
	return !(en == logic.L && rst == logic.L)
}

// Run advances n cycles.
func (s *Simulator) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Snapshot is a restorable copy of simulator state (net values only; bus
// state is snapshotted by the system owning the bus).
type Snapshot struct {
	Vals   []logic.Trit
	Prev   []logic.Trit
	Staged []stagedInput
	Cycle  uint64
}

// Snapshot captures the current simulator state, including any staged
// input assignments not yet consumed by Step.
func (s *Simulator) Snapshot() *Snapshot {
	sn := &Snapshot{}
	s.SnapshotInto(sn)
	return sn
}

// SnapshotInto captures the current state into sn, reusing its buffers —
// the allocation-free form used by the symbolic engine's per-cycle
// rolling snapshot.
func (s *Simulator) SnapshotInto(sn *Snapshot) {
	if cap(sn.Vals) < len(s.vals) {
		sn.Vals = make([]logic.Trit, len(s.vals))
		sn.Prev = make([]logic.Trit, len(s.prev))
	}
	sn.Vals = sn.Vals[:len(s.vals)]
	sn.Prev = sn.Prev[:len(s.prev)]
	copy(sn.Vals, s.vals)
	copy(sn.Prev, s.prev)
	sn.Staged = append(sn.Staged[:0], s.staged...)
	sn.Cycle = s.cycle
}

// Restore rewinds the simulator to a snapshot.
func (s *Simulator) Restore(sn *Snapshot) {
	copy(s.vals, sn.Vals)
	copy(s.prev, sn.Prev)
	s.staged = append(s.staged[:0], sn.Staged...)
	s.cycle = sn.Cycle
	for i := range s.active {
		s.active[i] = false
	}
}

// ActiveCells appends to dst the IDs of cells whose outputs are active in
// the current cycle and returns the extended slice.
func (s *Simulator) ActiveCells(dst []netlist.CellID) []netlist.CellID {
	for ci := 0; ci < s.n.NumCells(); ci++ {
		if s.active[s.n.Cell(netlist.CellID(ci)).Out] {
			dst = append(dst, netlist.CellID(ci))
		}
	}
	return dst
}

// StateHash returns a hash of all flip-flop values — the processor-state
// component of Algorithm 1's "seen this state at this branch before"
// check. Memory contents are hashed by the system layer.
func (s *Simulator) StateHash() uint64 {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for _, ci := range s.seq {
		h ^= uint64(s.vals[s.n.Cell(ci).Out])
		h *= 1099511628211
	}
	return h
}

// DynamicEnergyFJ returns the concrete dynamic energy, in femtojoules,
// dissipated by transitions in the current cycle: the sum of per-cell
// transition energies (X-involved transitions contribute nothing here;
// bounding their contribution is the power package's job) plus the
// clock-pin energy of every flip-flop.
func (s *Simulator) DynamicEnergyFJ() float64 {
	e := 0.0
	for ci := 0; ci < s.n.NumCells(); ci++ {
		c := s.n.Cell(netlist.CellID(ci))
		e += s.lib.TransitionEnergy(c.Kind, s.prev[c.Out], s.vals[c.Out])
		e += s.lib.Params(c.Kind).EnergyClk
	}
	return e
}

// LeakagePowerNW returns the total leakage power of the design in
// nanowatts.
func (s *Simulator) LeakagePowerNW() float64 {
	p := 0.0
	for ci := 0; ci < s.n.NumCells(); ci++ {
		p += s.lib.Params(s.n.Cell(netlist.CellID(ci)).Kind).LeakageNW
	}
	return p
}
