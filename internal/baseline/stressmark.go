package baseline

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/isa"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/ulp430"
)

// StressOptions configures the genetic stressmark search.
type StressOptions struct {
	// Genes is the instruction-slot count of each individual.
	Genes int
	// Population is the GA population size.
	Population int
	// Generations is the number of GA generations.
	Generations int
	// Seed makes the search reproducible.
	Seed int64
	// TargetAverage selects average-power fitness instead of peak
	// instantaneous power (the paper generates both variants).
	TargetAverage bool
}

func (o StressOptions) withDefaults() StressOptions {
	if o.Genes == 0 {
		o.Genes = 24
	}
	if o.Population == 0 {
		o.Population = 16
	}
	if o.Generations == 0 {
		o.Generations = 12
	}
	return o
}

// StressResult is the evolved stressmark and its measured power.
type StressResult struct {
	// Source is the winning stressmark's assembly.
	Source string
	// PeakMW / AvgMW are its measured peak and average power.
	PeakMW, AvgMW float64
	// GuardbandedPeakMW applies the 4/3 guardband (the stressmark is
	// still an empirical measurement and is guardbanded like profiling).
	GuardbandedPeakMW float64
	// GuardbandedNPE is the guardbanded average energy rate (J/cycle).
	GuardbandedNPE float64
	// Evals counts fitness evaluations performed.
	Evals int
}

// gene is one instruction slot: an opcode template plus operand fields.
type gene struct {
	op   int
	rd   int // 0..9 -> r4..r13
	rs   int
	imm  uint16
	slot int // scratch slot 0..7
}

const numTemplates = 14

func (g gene) render() string {
	rd := fmt.Sprintf("r%d", 4+g.rd%10)
	rs := fmt.Sprintf("r%d", 4+g.rs%10)
	switch g.op % numTemplates {
	case 0:
		return fmt.Sprintf("    mov #%d, %s", g.imm, rd)
	case 1:
		return fmt.Sprintf("    mov %s, %s", rs, rd)
	case 2:
		return fmt.Sprintf("    add %s, %s", rs, rd)
	case 3:
		return fmt.Sprintf("    xor %s, %s", rs, rd)
	case 4:
		return fmt.Sprintf("    and #%d, %s", g.imm, rd)
	case 5:
		return fmt.Sprintf("    bis %s, %s", rs, rd)
	case 6:
		return fmt.Sprintf("    swpb %s", rd)
	case 7:
		return fmt.Sprintf("    rra %s", rd)
	case 8:
		return fmt.Sprintf("    rlc %s", rd)
	case 9:
		return fmt.Sprintf("    mov &scratch+%d, %s", 2*(g.slot%8), rd)
	case 10:
		return fmt.Sprintf("    mov %s, &scratch+%d", rs, 2*(g.slot%8))
	case 11:
		return fmt.Sprintf("    mov %s, &0x0130", rs) // MPY operand 1
	case 12:
		return fmt.Sprintf("    mov %s, &0x0138", rs) // OP2: fire multiplier
	case 13:
		return "    mov &0x013a, " + rd // RESLO
	}
	return "    nop"
}

func renderProgram(genes []gene) string {
	var sb strings.Builder
	sb.WriteString(`
.org 0x0300
scratch: .space 8
.org 0xf100
.entry main
main:
    mov #0x0080, &0x0120
    mov #0x0a00, sp
    mov #0xaaaa, r4
    mov #0x5555, r5
    mov #0xff00, r6
    mov #0x00ff, r7
    mov #0xcccc, r8
    mov #0x3333, r9
    mov #0xf0f0, r10
    mov #0x0f0f, r11
    mov #0x9696, r12
    mov #0x6969, r13
`)
	// Two unrolled passes let evolved value patterns feed back once.
	for pass := 0; pass < 2; pass++ {
		for _, g := range genes {
			sb.WriteString(g.render())
			sb.WriteByte('\n')
		}
	}
	sb.WriteString(`
    mov #1, &0x0126
spin:
    jmp spin
`)
	return sb.String()
}

func randGene(r *rand.Rand) gene {
	return gene{
		op:   r.Intn(numTemplates),
		rd:   r.Intn(10),
		rs:   r.Intn(10),
		imm:  uint16(r.Uint32()),
		slot: r.Intn(8),
	}
}

// Stressmark evolves a power stressmark for the design (Kim et al.'s
// AUDIT approach retargeted at peak/average power, as the paper's
// methodology describes).
func Stressmark(nl *netlist.Netlist, m power.Model, opts StressOptions) (StressResult, error) {
	opts = opts.withDefaults()
	r := rand.New(rand.NewSource(opts.Seed))

	evaluate := func(genes []gene) (peak, avg float64, src string, err error) {
		src = renderProgram(genes)
		img, err := isa.Assemble("stressmark", src)
		if err != nil {
			return 0, 0, "", fmt.Errorf("baseline: stressmark render: %w", err)
		}
		sys, err := ulp430.NewSystem(nl, m.Lib, img, ulp430.ConcreteInputs, nil)
		if err != nil {
			return 0, 0, "", err
		}
		sink := power.NewSink(sys, m, img, 0)
		sys.Reset()
		for c := 0; c < 200000 && !sys.Halted(); c++ {
			sys.Step()
			sink.OnCycle(sys)
		}
		if !sys.Halted() {
			return 0, 0, "", fmt.Errorf("baseline: stressmark did not halt")
		}
		sum := 0.0
		for _, p := range sink.Trace {
			sum += p
		}
		return sink.PeakMW(), sum / float64(len(sink.Trace)), src, nil
	}

	pop := make([][]gene, opts.Population)
	for i := range pop {
		genes := make([]gene, opts.Genes)
		for j := range genes {
			genes[j] = randGene(r)
		}
		pop[i] = genes
	}

	type scored struct {
		genes     []gene
		peak, avg float64
		fit       float64
		src       string
	}
	evals := 0
	score := func(genes []gene) (scored, error) {
		peak, avg, src, err := evaluate(genes)
		if err != nil {
			return scored{}, err
		}
		evals++
		fit := peak
		if opts.TargetAverage {
			fit = avg
		}
		return scored{genes, peak, avg, fit, src}, nil
	}

	var best scored
	cur := make([]scored, len(pop))
	for i, genes := range pop {
		s, err := score(genes)
		if err != nil {
			return StressResult{}, err
		}
		cur[i] = s
		if s.fit > best.fit {
			best = s
		}
	}

	tournament := func() []gene {
		a, b := cur[r.Intn(len(cur))], cur[r.Intn(len(cur))]
		if a.fit >= b.fit {
			return a.genes
		}
		return b.genes
	}

	for gen := 0; gen < opts.Generations; gen++ {
		next := make([][]gene, 0, len(pop))
		next = append(next, best.genes) // elitism
		for len(next) < len(pop) {
			pa, pb := tournament(), tournament()
			cut := r.Intn(opts.Genes)
			child := make([]gene, opts.Genes)
			copy(child, pa[:cut])
			copy(child[cut:], pb[cut:])
			for j := range child {
				if r.Float64() < 0.10 {
					child[j] = randGene(r)
				}
			}
			next = append(next, child)
		}
		for i, genes := range next {
			s, err := score(genes)
			if err != nil {
				return StressResult{}, err
			}
			cur[i] = s
			if s.fit > best.fit {
				best = s
			}
		}
	}

	return StressResult{
		Source:            best.src,
		PeakMW:            best.peak,
		AvgMW:             best.avg,
		GuardbandedPeakMW: best.peak * Guardband,
		GuardbandedNPE:    best.avg * Guardband * 1e-3 / m.ClockHz,
		Evals:             evals,
	}, nil
}
