package peakpower

import (
	"runtime"

	"repro/internal/cell"
	"repro/internal/gsim"
	"repro/internal/periph"
)

// Library is a characterized standard-cell library (an alias of the
// internal representation, so external programs can hold and pass one
// without importing internal packages).
type Library = cell.Library

// ULP65 returns the synthetic 65 nm low-power library — the paper's
// openMSP430-class operating point (1 V / 100 MHz).
func ULP65() *Library { return cell.ULP65() }

// ULP130 returns the 130 nm variant used by the measurement-rig
// substitute for the MSP430F1610 experiments (8 MHz operating point).
func ULP130() *Library { return cell.ULP130() }

// Engine selects the gate-level evaluation engine backing an analysis
// (an alias of the internal representation).
type Engine = gsim.Engine

const (
	// EnginePacked is the bit-packed, levelized, dirty-level-skipping
	// engine — the default, and the fast path.
	EnginePacked = gsim.EnginePacked
	// EngineScalar is the straightforward one-gate-at-a-time reference
	// engine. It computes identical results to EnginePacked (this is
	// continuously verified by differential tests) and exists as the
	// verification oracle; select it to cross-check a result or to
	// bisect a suspected engine bug, not for throughput.
	EngineScalar = gsim.EngineScalar
)

// ParseEngine resolves "packed" or "scalar" — the names produced by
// Engine.String — for flag and config plumbing.
func ParseEngine(s string) (Engine, error) { return gsim.ParseEngine(s) }

// Progress is a snapshot of a running analysis, delivered to the
// WithProgress callback.
type Progress struct {
	// App is the name of the application being analyzed.
	App string
	// Cycles is the number of simulated cycles so far.
	Cycles int
	// Nodes is the number of execution-tree segments so far.
	Nodes int
	// Paths is the number of fully explored paths so far.
	Paths int
	// MemoHits / MemoMisses count the packed engine's memoization
	// lookups so far, summed across explore workers (zero with
	// WithMemo(false) or the scalar engine).
	MemoHits   int64
	MemoMisses int64
}

// config is the resolved option set. An Analyzer stores the defaults
// established at New; each Analyze* call copies them and applies its
// per-call options on top.
type config struct {
	lib            *cell.Library
	clockHz        float64
	maxCycles      int
	maxNodes       int
	coiK           int
	progress       func(Progress)
	progressEvery  int
	workers        int
	exploreWorkers int
	engine         Engine
	cache          *Cache
	irq            *periph.Config
	checkpointPath string
	memo           bool
}

func defaultConfig() config {
	return config{
		lib:            cell.ULP65(),
		clockHz:        100e6,
		maxCycles:      2_000_000,
		maxNodes:       10_000,
		coiK:           8,
		workers:        runtime.GOMAXPROCS(0),
		exploreWorkers: runtime.GOMAXPROCS(0),
		memo:           true,
	}
}

// Option configures an Analyzer (at New) or a single analysis (passed
// to an Analyze* method, overriding the Analyzer's defaults for that
// call only).
type Option func(*config)

// WithLibrary selects the standard-cell library / operating point.
// Default: ULP65().
func WithLibrary(lib *Library) Option {
	return func(c *config) {
		if lib != nil {
			c.lib = lib
		}
	}
}

// WithClockHz sets the clock frequency used to convert per-cycle energy
// to power. Default: 100 MHz.
func WithClockHz(hz float64) Option {
	return func(c *config) {
		if hz > 0 {
			c.clockHz = hz
		}
	}
}

// WithMaxCycles bounds total simulated cycles per analysis; exceeding
// it fails the analysis with ErrCycleBudget. Default: 2,000,000.
func WithMaxCycles(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.maxCycles = n
		}
	}
}

// WithMaxNodes bounds execution-tree segments per analysis; exceeding
// it fails the analysis with ErrNodeBudget. Default: 10,000.
func WithMaxNodes(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.maxNodes = n
		}
	}
}

// WithCOI sets how many cycles of interest (peak-power attribution
// entries) each analysis retains. Default: 8.
func WithCOI(k int) Option {
	return func(c *config) {
		if k >= 0 {
			c.coiK = k
		}
	}
}

// WithProgress registers a callback invoked from the analyzing
// goroutine roughly every interval cycles and once when the analysis
// finishes. An interval <= 0 leaves the reporting cadence unchanged
// (the default — 8192 cycles for symbolic exploration, 4096 for
// RunConcrete — or whatever WithProgressEvery set). The callback must
// be fast, and must be safe for concurrent invocation if the option is
// used with AnalyzeAll or a shared Analyzer.
func WithProgress(fn func(Progress), interval int) Option {
	return func(c *config) {
		c.progress = fn
		if interval > 0 {
			c.progressEvery = interval
		}
	}
}

// WithProgressEvery sets the progress-reporting (and cancellation-polling)
// interval in cycles without replacing the callback registered by
// WithProgress. Values <= 0 are ignored (the defaults stay: 8192 cycles for
// symbolic exploration, 4096 for RunConcrete).
func WithProgressEvery(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.progressEvery = n
		}
	}
}

// WithCache attaches a content-addressed analysis cache: an Analyze* call
// whose image and resolved options hash to a cached entry returns the
// cached Result without re-exploration. One Cache may serve many Analyzers
// concurrently. A nil cache disables caching (the default).
func WithCache(cache *Cache) Option {
	return func(c *config) { c.cache = cache }
}

// InterruptConfig parameterizes the interrupt-capable peripheral
// subsystem (timer, ADC, radio) attached by WithInterrupts — chiefly the
// ADC arrival window [MinLatency, MaxLatency] the peak-power bound must
// cover. The zero value selects the documented defaults.
type InterruptConfig = periph.Config

// WithInterrupts attaches the peripheral bus to the analyzed system and
// enables interrupt-aware analysis: symbolic exploration forks at every
// interruptible instruction boundary inside the ADC arrival window, so
// the resulting bound covers every arrival interleaving; the sealed
// Report gains an Interrupts section and per-COI interrupt-context
// attribution. Concrete runs (RunConcrete) deliver the interrupt at
// cfg.ConcreteLatency instead of forking.
func WithInterrupts(cfg InterruptConfig) Option {
	return func(c *config) {
		norm := cfg.Normalized()
		c.irq = &norm
	}
}

// WithWorkers sets the AnalyzeAll worker-pool size. Default: GOMAXPROCS.
//
// WithWorkers parallelizes ACROSS applications; WithExploreWorkers
// parallelizes WITHIN one application's symbolic exploration. Their
// product bounds the goroutines simulating at once — when batching many
// apps with AnalyzeAll, consider WithExploreWorkers(1) to avoid
// oversubscription.
func WithWorkers(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.workers = n
		}
	}
}

// WithExploreWorkers sets how many worker goroutines explore a single
// application's symbolic execution tree in parallel (work-stealing over
// pending fork points). Default: GOMAXPROCS. n == 1 selects the
// sequential engine.
//
// The worker count NEVER changes the analysis result: sealed Reports are
// bit-identical (equal Report.Hash) at any n — the parallel engine
// partitions work by claiming fork points and then reduces peaks,
// activity, and tree statistics in canonical fork order, not completion
// order. This invariance is continuously asserted by the determinism
// test suite, and is why the option is deliberately excluded from the
// analysis cache key.
func WithExploreWorkers(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.exploreWorkers = n
		}
	}
}

// WithCheckpoint journals the symbolic exploration to path so a killed
// analysis resumes from its last synced record instead of restarting:
// re-running the same analysis with the same checkpoint path replays the
// journaled work and seals a Report BYTE-IDENTICAL to an uninterrupted
// run (same Report.Hash — the crash-recovery determinism contract,
// asserted by the resume test suite at multiple worker counts). The
// journal is keyed to the analysis (image content + resolved options); a
// journal left by a different analysis fails rather than grafting foreign
// state. On success the journal is removed.
//
// The journal's directory must exist. Journal write failures never fail
// the analysis — it completes un-checkpointed (losing only resumability).
// Like the worker count, the option cannot change the analysis result and
// is excluded from the cache key. An empty path disables checkpointing
// (the default).
func WithCheckpoint(path string) Option {
	return func(c *config) { c.checkpointPath = path }
}

// WithMemo toggles the packed engine's whole-step memoization
// (default: enabled). The memo replays a cycle's settled planes,
// activity flags and energy bound when the planes entering the cycle
// recur — the common case when exploration paths converge, as in
// interrupt-driven duty loops — instead of re-executing the gather
// programs. It is a pure execution-speed mechanism: memo hits verify
// their source planes exactly (no reliance on hash uniqueness) and
// reproduce the evaluated dirty set bit for bit, so sealed Reports are
// byte-identical with the memo on or off. Like the worker count, the option cannot change the
// analysis result and is excluded from the cache key; the scalar engine
// ignores it. Result.MemoHits / MemoMisses and the Progress counters
// report its effectiveness.
func WithMemo(enabled bool) Option {
	return func(c *config) { c.memo = enabled }
}

// WithEngine selects the gate-level evaluation engine. Default:
// EnginePacked. EngineScalar is the slow reference oracle; both engines
// produce identical bounds. Values outside the two engines are ignored
// (like other options' invalid inputs), keeping the package's
// error-not-panic contract.
func WithEngine(e Engine) Option {
	return func(c *config) {
		if e == EnginePacked || e == EngineScalar {
			c.engine = e
		}
	}
}
