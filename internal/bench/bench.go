// Package bench provides the paper's benchmark suite (Table 4.1) as
// ULP430 assembly programs: the embedded sensor benchmarks (mult,
// binSearch, tea8, intFilt, tHold, div, inSort, rle, intAVG), the EEMBC
// class benchmarks (autoCorr, FFT, ConvEn, Viterbi), and the control
// systems benchmark (PI).
//
// Each benchmark declares its application inputs with .input directives
// (memory-resident input data) or reads the P1IN port (sensor-style
// streaming input); symbolic analysis treats both as X. Input generators
// provide concrete values for the profiling and validation experiments.
//
// Workload sizes are scaled to laptop-scale analysis (the paper ran its
// largest benchmark for 2 hours on a 16-core server); DESIGN.md documents
// the substitution. The kernels preserve the properties the paper's
// evaluation depends on: mult/intFilt/autoCorr/FFT/PI exercise the
// high-power hardware multiplier; tea8/ConvEn are shift/XOR-only
// (minimal input-dependent power variation); binSearch/inSort/rle/
// div/Viterbi/tHold have input-dependent control flow; tHold contains an
// input-dependent wait loop requiring a .loopbound for peak-energy
// analysis.
package bench

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/isa"
	"repro/internal/periph"
)

// Benchmark is one suite entry.
type Benchmark struct {
	// Name is the paper's benchmark name.
	Name string
	// Suite is the benchmark's group in Table 4.1.
	Suite string
	// Desc summarizes the kernel.
	Desc string
	// Source is the ULP430 assembly text.
	Source string
	// InputWords is the number of .input words the program declares.
	InputWords int
	// GenInputs draws one concrete input set for profiling runs.
	GenInputs func(r *rand.Rand) []uint16
	// UsesPort marks benchmarks that stream samples from P1IN.
	UsesPort bool
	// GenPort returns a port-read source for profiling runs; only set
	// when UsesPort.
	GenPort func(r *rand.Rand) func() uint16
	// MaxCycles bounds symbolic exploration for this benchmark.
	MaxCycles int
	// IRQ, when non-nil, marks an interrupt-driven benchmark: analysis
	// attaches the peripheral bus with this configuration
	// (peakpower.WithInterrupts). Interrupt-driven benchmarks live in the
	// ISR suite, not All — the behavioral reference simulator has no
	// interrupt support.
	IRQ *periph.Config

	once sync.Once
	img  *isa.Image
	err  error
}

// Image assembles (once) and returns the benchmark binary.
func (b *Benchmark) Image() (*isa.Image, error) {
	b.once.Do(func() { b.img, b.err = isa.Assemble(b.Name, b.Source) })
	if b.err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, b.err)
	}
	return b.img, nil
}

// All returns the paper's suite (Table 4.1) in the paper's order. It
// deliberately excludes the interrupt-driven ISR suite: All's programs
// run unmodified on the behavioral reference simulator, which has no
// interrupt support.
func All() []*Benchmark { return suite }

// ISR returns the interrupt-driven benchmark suite (timer/ADC/radio
// peripherals, ISR entry and RETI); each entry carries the peripheral
// configuration its analysis needs (Benchmark.IRQ).
func ISR() []*Benchmark { return isrSuite }

// Full returns every benchmark: the paper suite followed by the ISR
// suite.
func Full() []*Benchmark {
	out := make([]*Benchmark, 0, len(suite)+len(isrSuite))
	out = append(out, suite...)
	return append(out, isrSuite...)
}

// Names returns the benchmark names in order.
func Names() []string {
	out := make([]string, len(suite))
	for i, b := range suite {
		out[i] = b.Name
	}
	return out
}

// ByName returns a benchmark from either suite, or nil.
func ByName(name string) *Benchmark {
	for _, b := range suite {
		if b.Name == name {
			return b
		}
	}
	for _, b := range isrSuite {
		if b.Name == name {
			return b
		}
	}
	return nil
}

func words(r *rand.Rand, n int, mod int) func() []uint16 {
	return func() []uint16 {
		out := make([]uint16, n)
		for i := range out {
			if mod > 0 {
				out[i] = uint16(r.Intn(mod))
			} else {
				out[i] = uint16(r.Uint32())
			}
		}
		return out
	}
}

// scaledWords draws an input set from a per-set magnitude class: real
// sensor inputs have set-to-set amplitude structure, and this is what
// produces the input-induced peak-power variation of Figure 2.2 (small
// operands exercise far less of the multiplier array and datapath than
// large ones).
func scaledWords(r *rand.Rand, n int) []uint16 {
	masks := []uint16{0x000F, 0x00FF, 0x0FFF, 0xFFFF}
	mask := masks[r.Intn(len(masks))]
	out := make([]uint16, n)
	for i := range out {
		out[i] = uint16(r.Uint32()) & mask
	}
	return out
}

var suite = []*Benchmark{
	{
		Name:  "autoCorr",
		Suite: "EEMBC",
		Desc:  "autocorrelation of a 6-sample window for lags 0..2 (hardware multiplier, 32-bit accumulation)",
		Source: prologue + `
.org 0x0200
x:    .input 6
r0v:  .space 6
.org 0xf100
.entry main
main:
` + setup + `
    clr r11           ; lag = 0
lagloop:
    clr r8            ; acc lo
    clr r9            ; acc hi
    mov #6, r6
    sub r11, r6       ; n - lag iterations
    mov #x, r4        ; x[i]
    mov r11, r5
    rla r5
    add #x, r5        ; x[i+lag]
corr:
    mov @r4+, &0x0130
    mov @r5+, &0x0138
    add &0x013a, r8
    addc &0x013c, r9
    dec r6
    jnz corr
    mov r11, r7
    rla r7
    mov r8, r0v(r7)   ; store low word per lag
    inc r11
    cmp #3, r11
    jnz lagloop
` + epilogue,
		InputWords: 6,
		GenInputs:  func(r *rand.Rand) []uint16 { return scaledWords(r, 6) },
		MaxCycles:  200_000,
	},
	{
		Name:  "binSearch",
		Suite: "Embedded Sensor",
		Desc:  "binary search of an input key in an 8-entry sorted table",
		Source: prologue + `
.org 0x0200
key:  .input 1
res:  .space 1
tab:  .word 4, 9, 15, 23, 42, 77, 108, 200
.org 0xf100
.entry main
main:
` + setup + `
    mov &key, r10
    clr r4            ; lo
    mov #7, r5        ; hi
    mov #0xffff, r11  ; result: not found
bsloop:
    cmp r4, r5        ; hi - lo
    jl bsdone
    mov r4, r6
    add r5, r6
    rra r6            ; mid
    mov r6, r7
    rla r7
    mov tab(r7), r8
    cmp r8, r10       ; key - tab[mid]
    jeq bsfound
    jl bsleft
    mov r6, r4
    inc r4            ; lo = mid+1
    jmp bsloop
bsleft:
    mov r6, r5
    dec r5            ; hi = mid-1
    jmp bsloop
bsfound:
    mov r6, r11
bsdone:
    mov r11, &res
` + epilogue,
		InputWords: 1,
		GenInputs:  func(r *rand.Rand) []uint16 { return []uint16{uint16(r.Intn(256))} },
		MaxCycles:  400_000,
	},
	{
		Name:  "FFT",
		Suite: "EEMBC",
		Desc:  "radix-2 FFT butterfly stage: 2 complex butterflies with Q15 twiddle multiplies",
		Source: prologue + `
.org 0x0200
x:    .input 8        ; 4 complex pairs (re, im)
y:    .space 8
.org 0xf100
.entry main
main:
` + setup + `
    mov #2, r11       ; butterflies
    mov #x, r4
    mov #y, r5
fftloop:
    mov @r4+, r6      ; ar
    mov @r4+, r7      ; ai
    mov @r4+, r8      ; br
    mov @r4+, r9      ; bi
    ; t_re = (br*c - bi*s) >> 8, t_im = (br*s + bi*c) >> 8; c = s = 0x5a
    mov r8, &0x0130
    mov #0x5a, &0x0138
    mov &0x013a, r12  ; br*c lo
    mov r9, &0x0130
    mov #0x5a, &0x0138
    mov &0x013a, r13  ; bi*s lo
    mov r12, r10
    sub r13, r10      ; t_re (scaled)
    swpb r10          ; >> 8 (keep low byte of high)
    and #0xff, r10
    mov r12, r14
    add r13, r14      ; t_im (scaled)
    swpb r14
    and #0xff, r14
    ; out0 = a + t, out1 = a - t
    mov r6, r15
    add r10, r15
    mov r15, 0(r5)
    mov r7, r15
    add r14, r15
    mov r15, 2(r5)
    mov r6, r15
    sub r10, r15
    mov r15, 4(r5)
    mov r7, r15
    sub r14, r15
    mov r15, 6(r5)
    add #8, r5
    dec r11
    jnz fftloop
` + epilogue,
		InputWords: 8,
		GenInputs:  func(r *rand.Rand) []uint16 { return scaledWords(r, 8) },
		MaxCycles:  200_000,
	},
	{
		Name:  "intFilt",
		Suite: "Embedded Sensor",
		Desc:  "4-tap integer FIR filter over 8 input samples (hardware multiplier)",
		Source: prologue + `
.org 0x0200
x:    .input 8
y:    .space 5
coef: .word 3, 7, 7, 3
.org 0xf100
.entry main
main:
` + setup + `
    mov #3, r11       ; n = 3..7
fnloop:
    clr r8            ; acc
    clr r6            ; i = 0..3
ftap:
    ; acc += coef[i] * x[n-i]
    mov r6, r7
    rla r7
    mov coef(r7), &0x0130
    mov r11, r7
    sub r6, r7
    rla r7
    mov x(r7), &0x0138
    add &0x013a, r8
    inc r6
    cmp #4, r6
    jnz ftap
    mov r11, r7
    sub #3, r7
    rla r7
    mov r8, y(r7)
    inc r11
    cmp #8, r11
    jnz fnloop
` + epilogue,
		InputWords: 8,
		GenInputs:  func(r *rand.Rand) []uint16 { return scaledWords(r, 8) },
		MaxCycles:  200_000,
	},
	{
		Name:  "mult",
		Suite: "Embedded Sensor",
		Desc:  "4-element vector dot product on the memory-mapped hardware multiplier",
		Source: prologue + `
.org 0x0200
a:    .input 4
b:    .input 4
dot:  .space 2
.org 0xf100
.entry main
main:
` + setup + `
    mov #a, r4
    mov #b, r5
    clr r8
    clr r9
    mov #4, r7
mloop:
    mov @r4+, &0x0130
    mov @r5+, &0x0138
    add &0x013a, r8
    addc &0x013c, r9
    dec r7
    jnz mloop
    mov r8, &dot
    mov r9, &dot+2
` + epilogue,
		InputWords: 8,
		GenInputs:  func(r *rand.Rand) []uint16 { return scaledWords(r, 8) },
		MaxCycles:  100_000,
	},
	{
		Name:  "PI",
		Suite: "Control Systems",
		Desc:  "proportional-integral controller: 3 steps with multiplier gains and output saturation",
		Source: prologue + `
.org 0x0200
meas: .input 3
uout: .space 3
integ: .space 1
.org 0xf100
.entry main
main:
` + setup + `
    clr r11           ; integral
    clr r10           ; t
piloop:
    mov r10, r7
    rla r7
    mov meas(r7), r4  ; measured
    mov #512, r5      ; setpoint
    sub r4, r5        ; e = sp - x
    add r5, r11       ; integral += e
    ; u = (Kp*e + Ki*integ) >> 4
    mov r5, &0x0130
    mov #12, &0x0138  ; Kp
    mov &0x013a, r8
    mov r11, &0x0130
    mov #3, &0x0138   ; Ki
    add &0x013a, r8
    clrc
    rrc r8
    clrc
    rrc r8
    clrc
    rrc r8
    clrc
    rrc r8
    ; saturate to [0, 1000]
    cmp #0, r8
    jge pok1          ; signed >= 0
    clr r8
    jmp pstore
pok1:
    cmp #1001, r8
    jl pstore         ; < 1001
    mov #1000, r8
pstore:
    mov r10, r7
    rla r7
    mov r8, uout(r7)
    inc r10
    cmp #3, r10
    jnz piloop
    mov r11, &integ
` + epilogue,
		InputWords: 3,
		GenInputs:  func(r *rand.Rand) []uint16 { return words(r, 3, 1024)() },
		MaxCycles:  600_000,
	},
	{
		Name:  "tea8",
		Suite: "Embedded Sensor",
		Desc:  "8-round TEA-style block cipher on two input words (shift/XOR/add only)",
		Source: prologue + `
.org 0x0200
v:    .input 2
ct:   .space 2
.org 0xf100
.entry main
main:
` + setup + `
    mov &v, r4        ; v0
    mov &v+2, r5      ; v1
    clr r6            ; sum
    mov #8, r7
teal:
    add #0x9e37, r6
    ; v0 += ((v1<<4)+K0) ^ (v1+sum) ^ ((v1>>5)+K1)
    mov r5, r8
    rla r8
    rla r8
    rla r8
    rla r8
    add #0x1234, r8
    mov r5, r9
    add r6, r9
    xor r9, r8
    mov r5, r10
    clrc
    rrc r10
    clrc
    rrc r10
    clrc
    rrc r10
    clrc
    rrc r10
    clrc
    rrc r10
    add #0x5678, r10
    xor r10, r8
    add r8, r4
    ; v1 += ((v0<<4)+K2) ^ (v0+sum) ^ ((v0>>5)+K3)
    mov r4, r8
    rla r8
    rla r8
    rla r8
    rla r8
    add #0x9abc, r8
    mov r4, r9
    add r6, r9
    xor r9, r8
    mov r4, r10
    clrc
    rrc r10
    clrc
    rrc r10
    clrc
    rrc r10
    clrc
    rrc r10
    clrc
    rrc r10
    add #0xdef0, r10
    xor r10, r8
    add r8, r5
    dec r7
    jnz teal
    mov r4, &ct
    mov r5, &ct+2
` + epilogue,
		InputWords: 2,
		GenInputs:  func(r *rand.Rand) []uint16 { return scaledWords(r, 2) },
		MaxCycles:  100_000,
	},
	{
		Name:  "tHold",
		Suite: "Embedded Sensor",
		Desc:  "sensor thresholding: wait for a P1IN sample to cross the threshold, then count exceedances in a 3-sample window",
		Source: prologue + `
.org 0x0200
cnt:  .space 1
.org 0xf100
.entry main
main:
` + setup + `
wait:
    mov &0x0122, r4   ; sample the sensor port
    cmp #0x0100, r4
wjl: jl wait          ; input-dependent wait loop
.loopbound wjl, 8
    clr r8
    mov #3, r7
twin:
    mov &0x0122, r4
    cmp #0x0100, r4
    jl tskip
    inc r8
tskip:
    dec r7
    jnz twin
    mov r8, &cnt
` + epilogue,
		UsesPort: true,
		GenPort: func(r *rand.Rand) func() uint16 {
			// Below threshold for up to 5 reads, then crossing, then a
			// random window.
			low := r.Intn(5)
			n := 0
			return func() uint16 {
				n++
				if n <= low {
					return uint16(r.Intn(0x100))
				}
				if n == low+1 {
					return uint16(0x100 + r.Intn(0x100))
				}
				return uint16(r.Intn(0x200))
			}
		},
		GenInputs: func(r *rand.Rand) []uint16 { return nil },
		MaxCycles: 400_000,
	},
	{
		Name:  "div",
		Suite: "Embedded Sensor",
		Desc:  "restoring shift-subtract division, 8 quotient bits of an input dividend/divisor pair",
		Source: prologue + `
.org 0x0200
nd:   .input 1
dv:   .input 1
q:    .space 1
rem:  .space 1
.org 0xf100
.entry main
main:
` + setup + `
    mov &nd, r4
    mov &dv, r5
    clr r6            ; quotient
    clr r8            ; remainder
    mov #8, r7
dloop:
    rla r4            ; carry <- dividend msb
    rlc r8            ; remainder <<= 1 | bit
    rla r6            ; quotient <<= 1
    cmp r5, r8
    jl dnext          ; remainder < divisor
    sub r5, r8
    inc r6
dnext:
    dec r7
    jnz dloop
    mov r6, &q
    mov r8, &rem
` + epilogue,
		InputWords: 2,
		GenInputs: func(r *rand.Rand) []uint16 {
			nd := scaledWords(r, 1)
			return []uint16{nd[0], uint16(1 + r.Intn(255))}
		},
		MaxCycles: 1_500_000,
	},
	{
		Name:  "inSort",
		Suite: "Embedded Sensor",
		Desc:  "in-place insertion sort of 4 input words",
		Source: prologue + `
.org 0x0200
arr:  .input 4
.org 0xf100
.entry main
main:
` + setup + `
    mov #1, r4        ; i
souter:
    cmp #4, r4
    jeq sdone
    mov r4, r5
    rla r5
    mov arr(r5), r10  ; key
    mov r4, r6
    dec r6            ; j
sinner:
    tst r6
    jn splace
    mov r6, r7
    rla r7
    mov arr(r7), r8
    cmp r10, r8       ; arr[j] - key
    jl splace
    mov r8, arr+2(r7) ; arr[j+1] = arr[j]
    dec r6
    jmp sinner
splace:
    mov r6, r7
    rla r7
    mov r10, arr+2(r7)
    inc r4
    jmp souter
sdone:
` + epilogue,
		InputWords: 4,
		GenInputs:  func(r *rand.Rand) []uint16 { return words(r, 4, 0)() },
		MaxCycles:  1_500_000,
	},
	{
		Name:  "rle",
		Suite: "Embedded Sensor",
		Desc:  "run-length encoding of 6 input words into (value,count) pairs",
		Source: prologue + `
.org 0x0200
rin:  .input 6
rout: .space 12
rlen: .space 1
.org 0xf100
.entry main
main:
` + setup + `
    mov #rin, r4
    mov #rout, r5
    mov @r4+, r10     ; current value
    mov #1, r11       ; run count
    mov #5, r7
rloop:
    mov @r4+, r8
    cmp r10, r8
    jeq rsame
    call #rflush
    mov r8, r10
    mov #1, r11
    jmp rnext
rsame:
    inc r11
rnext:
    dec r7
    jnz rloop
    call #rflush
    sub #rout, r5
    clrc
    rrc r5
    mov r5, &rlen
` + epilogue + `
rflush:                   ; emit the (value, count) pair at the cursor
    push r8
    mov r10, 0(r5)
    mov r11, 2(r5)
    add #4, r5
    pop r8
    ret
`,
		InputWords: 6,
		GenInputs:  func(r *rand.Rand) []uint16 { return words(r, 6, 3)() },
		MaxCycles:  800_000,
	},
	{
		Name:  "intAVG",
		Suite: "Embedded Sensor",
		Desc:  "mean of 8 input samples (sum and arithmetic shift)",
		Source: prologue + `
.org 0x0200
s:    .input 8
avg:  .space 1
.org 0xf100
.entry main
main:
` + setup + `
    mov #s, r4
    clr r8
    mov #8, r7
aloop:
    add @r4+, r8
    dec r7
    jnz aloop
    clrc
    rrc r8
    clrc
    rrc r8
    clrc
    rrc r8
    mov r8, &avg
` + epilogue,
		InputWords: 8,
		GenInputs:  func(r *rand.Rand) []uint16 { return words(r, 8, 8192)() },
		MaxCycles:  100_000,
	},
	{
		Name:  "ConvEn",
		Suite: "EEMBC",
		Desc:  "rate-1/2 K=3 convolutional encoder over 8 input bits (branch-free parity)",
		Source: prologue + `
.org 0x0200
cin:  .input 1
cout: .space 1
.org 0xf100
.entry main
main:
` + setup + `
    mov &cin, r4
    clr r5            ; shift register
    clr r6            ; packed output
    mov #8, r7
cloop:
    clrc
    rrc r4            ; carry = next input bit
    rlc r5            ; state = state<<1 | bit
    ; g1 = parity(state & 7)
    mov r5, r8
    and #7, r8
    mov r8, r9
    clrc
    rrc r9
    mov r9, r10
    clrc
    rrc r10
    xor r9, r8
    xor r10, r8
    and #1, r8
    ; g2 = parity(state & 5)
    mov r5, r9
    and #5, r9
    mov r9, r10
    clrc
    rrc r10
    clrc
    rrc r10
    xor r10, r9
    and #1, r9
    ; pack two output bits
    rla r6
    rla r6
    rla r8
    bis r8, r6
    bis r9, r6
    dec r7
    jnz cloop
    mov r6, &cout
` + epilogue,
		InputWords: 1,
		GenInputs:  func(r *rand.Rand) []uint16 { return words(r, 1, 0)() },
		MaxCycles:  150_000,
	},
	{
		Name:  "Viterbi",
		Suite: "EEMBC",
		Desc:  "Viterbi add-compare-select: 2-state trellis over 3 input branch metrics",
		Source: prologue + `
.org 0x0200
bm:   .input 3
pm:   .space 2
surv: .space 1
.org 0xf100
.entry main
main:
` + setup + `
    clr r4            ; pm0
    mov #4, r5        ; pm1
    clr r11           ; survivors
    clr r10           ; t
vloop:
    mov r10, r7
    rla r7
    mov bm(r7), r6    ; branch metric
    and #0x00ff, r6
    ; candidate metrics for next state 0: pm0 + bm vs pm1 + (255-bm)
    mov r4, r8
    add r6, r8
    mov #255, r9
    sub r6, r9
    add r5, r9
    rla r11           ; make room for survivor bit
    cmp r9, r8        ; (pm0+bm) - (pm1+inv)
    jl v0keep         ; first smaller: survivor 0
    mov r9, r8
    bis #1, r11       ; survivor 1
v0keep:
    ; candidate metrics for next state 1: pm0 + (255-bm) vs pm1 + bm
    mov #255, r12
    sub r6, r12
    add r4, r12
    mov r5, r13
    add r6, r13
    rla r11
    cmp r13, r12
    jl v1keep
    mov r13, r12
    bis #1, r11
v1keep:
    mov r8, r4        ; pm0'
    mov r12, r5       ; pm1'
    inc r10
    cmp #3, r10
    jnz vloop
    mov r4, &pm
    mov r5, &pm+2
    mov r11, &surv
` + epilogue,
		InputWords: 3,
		GenInputs:  func(r *rand.Rand) []uint16 { return words(r, 3, 256)() },
		MaxCycles:  800_000,
	},
}

// prologue/setup/epilogue are shared scaffolding: stop the watchdog
// (standard MSP430 practice, and required for execution-tree merging of
// wait loops), set up the stack, and halt through the SoC halt register.
const prologue = `
; ULP430 benchmark (ulppeak suite)
`

const setup = `
    mov #0x0080, &0x0120  ; WDTCTL: hold watchdog
    mov #0x0a00, sp
`

const epilogue = `
    mov #1, &0x0126       ; halt
spin:
    jmp spin
`
