package peakpower

import (
	"context"

	"repro/internal/power"
	"repro/internal/symx"
	"repro/internal/ulp430"
)

// ExplorePlan is a fully resolved analysis ready to be executed by a
// fleet of cooperating processes (see internal/fleet): it exposes the
// pieces a coordinator or worker needs — the journal tag, the engine
// options, the checkpoint codec, and private System/sink construction —
// without re-deriving them per task. The plan's Key equals the tag the
// in-process WithCheckpoint path uses, so a journal filled by a fleet is
// sealed by the ordinary AnalyzeImage(..., WithCheckpoint(path)) call.
type ExplorePlan struct {
	a   *Analyzer
	img *Image
	cfg config
}

// PlanImage resolves an image analysis into a fleet-executable plan.
// opts are resolved against the analyzer defaults exactly as
// AnalyzeImage would resolve them.
func (a *Analyzer) PlanImage(img *Image, opts ...Option) *ExplorePlan {
	return &ExplorePlan{a: a, img: img, cfg: a.resolve(opts)}
}

// PlanBench is PlanImage for a named built-in benchmark, applying the
// same automatic cycle-budget and interrupt options AnalyzeBench applies
// — the plan's Key matches what AnalyzeBench would compute, which is
// what lets the sealing call and the fleet agree on the journal tag.
func (a *Analyzer) PlanBench(name string, opts ...Option) (*ExplorePlan, error) {
	b, img, err := targetBenchImage(a.target, name)
	if err != nil {
		return nil, err
	}
	var auto []Option
	if b.MaxCycles > 0 {
		auto = append(auto, WithMaxCycles(2*b.MaxCycles))
	}
	if b.IRQ != nil {
		auto = append(auto, WithInterrupts(*b.IRQ))
	}
	return a.PlanImage(img, append(auto, opts...)...), nil
}

// App returns the analyzed application's name (for logs).
func (p *ExplorePlan) App() string { return p.img.Name }

// Key is the analysis fingerprint: the checkpoint journal tag and the
// analysis cache key (identical by construction).
func (p *ExplorePlan) Key() string { return p.a.cacheKey(p.img, p.cfg) }

// ExploreOptions returns the symx engine options of this analysis. The
// budgets must be enforced fleet-wide against exactly these values for
// the job to fail identically to a local run.
func (p *ExplorePlan) ExploreOptions(ctx context.Context) symx.Options {
	return symx.Options{
		MaxCycles:     p.cfg.maxCycles,
		MaxNodes:      p.cfg.maxNodes,
		Ctx:           ctx,
		ProgressEvery: p.cfg.progressEvery,
	}
}

// Codec returns the checkpoint codec that serializes this analysis's
// sink seeds and segment payloads on the wire and in the journal.
func (p *ExplorePlan) Codec() symx.CheckpointCodec { return power.Codec{} }

// NewWorker builds one private System and checkpoint-capable sink for
// executing this plan's remote tasks. Each call returns an independent
// pair; a fleet worker creates one per job and reuses it across that
// job's tasks. The sink's shared Best floor is process-local — a lower
// bound on the in-process floor — so the candidate filters keep a
// superset of what a single-process run keeps, which the canonical
// replay then reduces identically (the filters are lossless at any
// floor below the final maximum).
func (p *ExplorePlan) NewWorker() (*ulp430.System, symx.WorkerSink, error) {
	sys, err := p.a.newSystem(p.img, p.cfg)
	if err != nil {
		return nil, nil, err
	}
	sink := power.NewSink(sys, p.cfg.model(), p.img, p.cfg.coiK)
	sink.EnableTasks(power.NewShared())
	sink.EnableCheckpoint()
	return sys, sink, nil
}

// Peek reports whether a result for the given analysis key is already
// available in the memory or disk tier, without recording a hit or a
// miss and without promoting the entry. The fleet coordinator uses it to
// skip distributing work whose sealed Report is already on hand.
func (c *Cache) Peek(key string) bool {
	c.mu.Lock()
	_, ok := c.byKey[key]
	d := c.disk
	c.mu.Unlock()
	if ok {
		return true
	}
	if d == nil {
		return false
	}
	_, ok = d.Load(key)
	return ok
}
