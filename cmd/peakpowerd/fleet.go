package main

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/jobstore"
	"repro/peakpower"
)

// plan resolves a validated analysis request into a fleet-executable
// ExplorePlan against the shared analyzers. Coordinator and workers both
// resolve plans through this one function (via planFor), which is what
// guarantees the two sides agree on the journal tag and the exploration
// options for any given job spec.
func (s *server) plan(ctx context.Context, req *analyzeRequest) (*peakpower.ExplorePlan, error) {
	target := req.Target
	if target == "" {
		target = peakpower.DefaultTarget
	}
	an, err := s.analyzer(ctx, target)
	if err != nil {
		return nil, err
	}
	opts, err := buildOpts(req.Options)
	if err != nil {
		return nil, err
	}
	if req.Bench != "" {
		return an.PlanBench(req.Bench, opts...)
	}
	name := req.Name
	if name == "" {
		name = "app"
	}
	img, err := peakpower.Assemble(name, req.Source)
	if err != nil {
		return nil, err
	}
	return an.PlanImage(img, opts...), nil
}

// planFor is the fleet.PlanFunc both fleet roles run on: a job's
// journaled request body in, an executable plan out.
func (s *server) planFor(ctx context.Context, spec json.RawMessage) (*peakpower.ExplorePlan, error) {
	var req analyzeRequest
	if err := json.Unmarshal(spec, &req); err != nil {
		return nil, fmt.Errorf("decoding job spec: %w", err)
	}
	return s.plan(ctx, &req)
}

// runFleet distributes one durable job's exploration across the fleet,
// filling the job's checkpoint journal to completion. The subsequent
// runAnalysis call (with WithCheckpoint on the same path) seals the
// Report from that journal without exploring anything — byte-identical
// to a single-node run. Jobs whose sealed Report is already in the
// memory or disk cache skip the fleet entirely.
func (s *server) runFleet(ctx context.Context, req *analyzeRequest, j *jobstore.Job) error {
	plan, err := s.plan(ctx, req)
	if err != nil {
		return err
	}
	if s.cache.Peek(plan.Key()) {
		return nil
	}
	timeout := s.timeout
	if ms := req.Options.TimeoutMS; ms > 0 && time.Duration(ms)*time.Millisecond < timeout {
		timeout = time.Duration(ms) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	if err := s.fleet.RunJob(ctx, j.ID, j.Request, plan, s.jobs.store.CheckpointPath(j.ID)); err != nil {
		// Same wrap runAnalysis's engine errors get, so a fleet-failed job
		// reports the same error text (and statusFor classification) a
		// single-node failure would.
		return fmt.Errorf("peakpower: symbolic analysis of %s: %w", plan.App(), err)
	}
	return nil
}
