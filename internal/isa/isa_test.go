package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDecodeEncodeRoundTrip(t *testing.T) {
	// Enumerate all decodable instruction words and check Encode∘Decode
	// is the identity on the instruction word.
	count := 0
	for w := 0; w <= 0xFFFF; w++ {
		ins := Decode(uint16(w))
		if ins.Format == FmtIllegal {
			continue
		}
		count++
		words, err := ins.Encode()
		if err != nil {
			t.Fatalf("encode %#04x: %v", w, err)
		}
		if words[0] != uint16(w) {
			t.Fatalf("round trip %#04x -> %#04x (%+v)", w, words[0], ins)
		}
		if len(words) != ins.Len() {
			t.Fatalf("%#04x: len %d != %d", w, len(words), ins.Len())
		}
	}
	if count < 30000 {
		t.Fatalf("implausibly few decodable words: %d", count)
	}
}

func TestDecodeSpecificEncodings(t *testing.T) {
	// Known MSP430 encodings.
	cases := []struct {
		w    uint16
		want string
	}{
		{0x4303, "MOV"},  // NOP = MOV R3,R3
		{0x4130, "MOV"},  // RET = MOV @SP+,PC
		{0x5515, "ADD"},  // ADD @R5, R5... fields differ; just op check
		{0x1204, "PUSH"}, // PUSH R4
		{0x3C00, "JMP"},
		{0x2000, "JNE"},
	}
	for _, tc := range cases {
		ins := Decode(tc.w)
		if ins.Op.String() != tc.want {
			t.Errorf("Decode(%#04x).Op = %v, want %s", tc.w, ins.Op, tc.want)
		}
	}
	// NOP details.
	nop := Decode(0x4303)
	if nop.Src != CG || nop.Dst != CG || nop.As != AmReg || nop.Ad != 0 {
		t.Errorf("NOP fields: %+v", nop)
	}
	// Byte mode and DADD are illegal in this subset, as are RETI
	// encodings with nonzero operand bits and the reserved FmtII opcode.
	for _, w := range []uint16{0x4343 /* mov.b */, 0xA000 /* dadd */, 0x1304 /* reti r4 */, 0x1380 /* reserved */} {
		if Decode(w).Format != FmtIllegal {
			t.Errorf("%#04x should be illegal", w)
		}
	}
	// RETI decodes as a zero-operand Format II instruction taking 4 cycles.
	reti := Decode(0x1300)
	if reti.Format != FmtII || reti.Op != RETI || reti.NumExtWords() != 0 {
		t.Errorf("RETI decode: %+v", reti)
	}
	if c := reti.Cycles(); c != 4 {
		t.Errorf("RETI cycles = %d, want 4", c)
	}
}

func TestJumpOffsets(t *testing.T) {
	// JMP with offset -1 (jump to self): 0x3FFF
	ins := Decode(0x3FFF)
	if ins.Format != FmtJump || ins.Op != JMP || ins.Off != -1 {
		t.Fatalf("jmp $: %+v", ins)
	}
	ins = Decode(0x3C0A)
	if ins.Off != 10 {
		t.Fatalf("offset: %+v", ins)
	}
	// Out-of-range encode.
	bad := Instr{Format: FmtJump, Op: JMP, Off: 600}
	if _, err := bad.Encode(); err == nil {
		t.Fatal("expected range error")
	}
}

func TestConstGen(t *testing.T) {
	cases := []struct {
		reg, as uint8
		v       uint16
		ok      bool
	}{
		{CG, AmReg, 0, true}, {CG, AmIndexed, 1, true},
		{CG, AmIndirect, 2, true}, {CG, AmIndirectInc, 0xFFFF, true},
		{SR, AmIndirect, 4, true}, {SR, AmIndirectInc, 8, true},
		{SR, AmReg, 0, false}, {SR, AmIndexed, 0, false},
		{4, AmIndirect, 0, false},
	}
	for _, tc := range cases {
		v, ok := ConstGen(tc.reg, tc.as)
		if ok != tc.ok || (ok && v != tc.v) {
			t.Errorf("ConstGen(%d,%d) = %d,%v", tc.reg, tc.as, v, ok)
		}
	}
}

func TestCyclesModel(t *testing.T) {
	asmOne := func(src string) Instr {
		t.Helper()
		img := mustAsm(t, ".org 0xf000\n.entry main\nmain: "+src+"\n")
		w := img.Words[img.Entry]
		ins := Decode(w)
		exts := []uint16{}
		for k := 0; k < ins.NumExtWords(); k++ {
			exts = append(exts, img.Words[img.Entry+2+uint16(2*k)])
		}
		ins.AttachExt(exts)
		return ins
	}
	cases := []struct {
		src  string
		want int
	}{
		{"mov r4, r5", 2},
		{"mov #0, r5", 2},      // constant generator
		{"mov #100, r5", 3},    // immediate word
		{"mov @r4, r5", 3},     // SRC_RD
		{"mov @r4+, r5", 3},    // SRC_RD
		{"mov 2(r4), r5", 4},   // SOFF + SRC_RD
		{"mov &0x0200, r5", 4}, // absolute = SOFF + SRC_RD
		{"mov r4, 2(r5)", 4},   // DOFF + DST_WR (no dst read for MOV)
		{"add r4, 2(r5)", 5},   // DOFF + DST_RD + DST_WR
		{"cmp r4, 2(r5)", 4},   // DOFF + DST_RD, no write
		{"add 2(r4), 4(r5)", 7},
		{"jmp main", 2},
		{"push r4", 3},
		{"push #1000", 4},
		{"call #0xf000", 4},
		{"rra r4", 2},
		{"rra 2(r4)", 5}, // SOFF + SRC_RD + EXEC + DST_WR
	}
	for _, tc := range cases {
		ins := asmOne(tc.src)
		if got := ins.Cycles(); got != tc.want {
			t.Errorf("%q cycles = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func mustAsm(t *testing.T, src string) *Image {
	t.Helper()
	img, err := Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return img
}

func TestAssembleBasics(t *testing.T) {
	img := mustAsm(t, `
; a tiny program
.equ RAM, 0x0200
.org RAM
counter: .space 1
invals:  .input 4
.org 0xf000
.entry main
main:
    mov #5, r4
    mov #invals, r5
loop:
    add @r5+, r6
    dec r4
    jnz loop
    mov r6, &counter
halt:
    jmp halt
.loopbound loop, 4
`)
	if img.Entry != 0xF000 {
		t.Fatalf("entry %#x", img.Entry)
	}
	if img.Words[ResetVector] != 0xF000 {
		t.Fatal("reset vector missing")
	}
	if len(img.Inputs) != 1 || img.Inputs[0].Addr != 0x0202 || img.Inputs[0].Words != 4 {
		t.Fatalf("inputs %+v", img.Inputs)
	}
	if !img.InInput(0x0202) || !img.InInput(0x0208) || img.InInput(0x020A) || img.InInput(0x0200) {
		t.Fatal("InInput ranges wrong")
	}
	loop := img.Symbols["loop"]
	if img.LoopBounds[loop] != 4 {
		t.Fatalf("loop bounds %v", img.LoopBounds)
	}
	// mov #5, r4 is 2 words (no CG for 5); decode it.
	ins := Decode(img.Words[0xF000])
	if ins.Op != MOV || ins.Src != PC || ins.As != AmIndirectInc {
		t.Fatalf("first instr %+v", ins)
	}
	if img.Words[0xF002] != 5 {
		t.Fatal("immediate word wrong")
	}
}

func TestConstantGeneratorSelection(t *testing.T) {
	img := mustAsm(t, `
.org 0xf000
.entry main
main:
    mov #0, r4
    mov #1, r4
    mov #2, r4
    mov #4, r4
    mov #8, r4
    mov #-1, r4
    mov #3, r4
halt: jmp halt
`)
	// First six are single-word (constant generator), #3 takes two.
	addr := uint16(0xF000)
	for i := 0; i < 6; i++ {
		ins := Decode(img.Words[addr])
		if ins.NumExtWords() != 0 {
			t.Fatalf("instr %d at %#x should use constant generator: %+v", i, addr, ins)
		}
		addr += 2
	}
	ins := Decode(img.Words[addr])
	if ins.NumExtWords() != 1 {
		t.Fatalf("#3 should need an immediate word: %+v", ins)
	}
}

func TestEmulatedMnemonics(t *testing.T) {
	img := mustAsm(t, `
.org 0xf000
.entry main
main:
    nop
    clr r4
    inc r4
    dec r4
    tst r4
    inv r4
    rla r4
    rlc r4
    setc
    clrc
    push r4
    pop r5
    br #main
halt: jmp halt
`)
	if img.Words[0xF000] != 0x4303 {
		t.Fatalf("nop encodes as %#04x, want 0x4303", img.Words[0xF000])
	}
	// pop r5 = mov @sp+, r5
	found := false
	for a := uint16(0xF000); a < 0xF040; a += 2 {
		ins := Decode(img.Words[a])
		if ins.Format == FmtI && ins.Op == MOV && ins.Src == SP && ins.As == AmIndirectInc && ins.Dst == 5 {
			found = true
		}
	}
	if !found {
		t.Fatal("pop expansion not found")
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := map[string]string{
		"no entry":      ".org 0xf000\nmain: nop\n",
		"dup label":     ".org 0xf000\n.entry main\nmain: nop\nmain: nop\n",
		"bad mnemonic":  ".org 0xf000\n.entry main\nmain: frob r4\n",
		"bad operand":   ".org 0xf000\n.entry main\nmain: mov r4\n",
		"imm dest":      ".org 0xf000\n.entry main\nmain: mov r4, #5\n",
		"indirect dest": ".org 0xf000\n.entry main\nmain: mov r4, @r5\n",
		"undef sym":     ".org 0xf000\n.entry main\nmain: jmp nowhere\n",
		"jump too far":  ".org 0xf000\n.entry main\nmain: jmp far\n.org 0xf900\nfar: nop\n",
		"bad directive": ".org 0xf000\n.entry main\n.frob 3\nmain: nop\n",
		"entry missing": ".org 0xf000\n.entry nowhere\nmain: nop\n",
		"rrc immediate": ".org 0xf000\n.entry main\nmain: rrc #4\n",
	}
	for name, src := range cases {
		if _, err := Assemble("t", src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDisassembler(t *testing.T) {
	img := mustAsm(t, `
.org 0xf000
.entry main
main:
    mov #100, r5
    add @r4+, r6
    mov 2(r4), r7
    mov r7, &0x0200
    push r4
    jeq main
    rra r8
halt: jmp halt
`)
	var got []string
	addr := uint16(0xF000)
	for i := 0; i < 8; i++ {
		text, n := DisasmAt(img, addr)
		got = append(got, text)
		addr += uint16(2 * n)
	}
	want := []string{
		"mov #0x0064, r5",
		"add @r4+, r6",
		"mov 2(r4), r7",
		"mov r7, &0x0200",
		"push r4",
		"jeq 0xf000",
		"rra r8",
		"jmp 0xf014",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("disasm[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestMnemonicClassification(t *testing.T) {
	img := mustAsm(t, `
.org 0xf000
.entry main
main:
    mov @r4, r5
    mov r5, 2(r4)
    pop r6
    ret
    nop
    add r4, r5
halt: jmp halt
`)
	addr := uint16(0xF000)
	want := []string{"load", "store", "pop", "ret", "nop", "add"}
	for _, w := range want {
		got := Mnemonic(img, addr)
		if got != w {
			t.Errorf("Mnemonic@%#x = %q, want %q", addr, got, w)
		}
		_, n := DisasmAt(img, addr)
		addr += uint16(2 * n)
	}
}

func TestImageClone(t *testing.T) {
	img := mustAsm(t, ".org 0xf000\n.entry main\nmain: nop\nhalt: jmp halt\n.loopbound halt, 1\n")
	c := img.Clone()
	c.Words[0xF000] = 0x1234
	c.LoopBounds[1] = 2
	c.Symbols["x"] = 3
	if img.Words[0xF000] == 0x1234 || img.LoopBounds[1] == 2 || img.Symbols["x"] == 3 {
		t.Fatal("Clone aliases")
	}
}

func TestSourceLineLookup(t *testing.T) {
	img := mustAsm(t, ".org 0xf000\n.entry main\nmain: mov #7, r4\nhalt: jmp halt\n")
	if s := img.SourceLine(0xF000); !strings.Contains(s, "mov #7, r4") {
		t.Fatalf("SourceLine = %q", s)
	}
	if s := img.SourceLine(0xEEEE); s != "" {
		t.Fatalf("missing addr should be empty, got %q", s)
	}
}

// Property: for random legal register/mode combinations, extension-word
// accounting is consistent between SrcNeedsExt and Decode.
func TestExtConsistencyProperty(t *testing.T) {
	f := func(op8, src, dst, as, ad uint8) bool {
		ops := []Op{MOV, ADD, ADDC, SUBC, SUB, CMP, BIT, BIC, BIS, XOR, AND}
		ins := Instr{
			Format: FmtI,
			Op:     ops[int(op8)%len(ops)],
			Src:    src % 16, Dst: dst % 16,
			As: as % 4, Ad: ad % 2,
		}
		ins.HasSrcExt = SrcNeedsExt(ins.Src, ins.As)
		ins.HasDstExt = DstNeedsExt(ins.Ad)
		words, err := ins.Encode()
		if err != nil {
			return false
		}
		dec := Decode(words[0])
		return dec.HasSrcExt == ins.HasSrcExt && dec.HasDstExt == ins.HasDstExt &&
			dec.NumExtWords() == ins.NumExtWords()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
