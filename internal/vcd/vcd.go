// Package vcd implements a value-change-dump (IEEE 1364 subset) writer
// and parser over the three-valued logic domain. Algorithm 2 of the paper
// materializes two VCD files — one maximizing power in even cycles, one in
// odd cycles — and feeds them to activity-based power analysis; this
// package provides that interchange format.
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/logic"
)

// Writer emits a VCD stream for a fixed set of scalar signals.
type Writer struct {
	w       *bufio.Writer
	ids     []string
	names   []string
	last    []logic.Trit
	started bool
	err     error
}

// NewWriter creates a VCD writer for the named signals, with the given
// timescale string (e.g. "10ns" for a 100 MHz clock).
func NewWriter(w io.Writer, module, timescale string, names []string) *Writer {
	vw := &Writer{
		w:     bufio.NewWriter(w),
		names: names,
		ids:   make([]string, len(names)),
		last:  make([]logic.Trit, len(names)),
	}
	for i := range vw.last {
		vw.last[i] = 0xFF // sentinel: force first dump
	}
	for i := range names {
		vw.ids[i] = idCode(i)
	}
	fmt.Fprintf(vw.w, "$date ulppeak $end\n$version ulppeak vcd 1.0 $end\n")
	fmt.Fprintf(vw.w, "$timescale %s $end\n", timescale)
	fmt.Fprintf(vw.w, "$scope module %s $end\n", module)
	for i, n := range names {
		fmt.Fprintf(vw.w, "$var wire 1 %s %s $end\n", vw.ids[i], n)
	}
	fmt.Fprintf(vw.w, "$upscope $end\n$enddefinitions $end\n")
	return vw
}

// idCode generates compact VCD identifier codes (printable ASCII 33..126).
func idCode(i int) string {
	var sb strings.Builder
	for {
		sb.WriteByte(byte(33 + i%94))
		i /= 94
		if i == 0 {
			break
		}
		i--
	}
	return sb.String()
}

// Tick records the signal values at time t (one entry per signal, in the
// order given to NewWriter); only changed values are emitted.
func (vw *Writer) Tick(t uint64, vals []logic.Trit) {
	if vw.err != nil {
		return
	}
	if len(vals) != len(vw.ids) {
		vw.err = fmt.Errorf("vcd: Tick with %d values, want %d", len(vals), len(vw.ids))
		return
	}
	wroteTime := false
	for i, v := range vals {
		if v == vw.last[i] {
			continue
		}
		if !wroteTime {
			fmt.Fprintf(vw.w, "#%d\n", t)
			wroteTime = true
		}
		fmt.Fprintf(vw.w, "%c%s\n", v.Rune(), vw.ids[i])
		vw.last[i] = v
	}
	vw.started = true
}

// Close flushes the stream and returns any accumulated error.
func (vw *Writer) Close() error {
	if vw.err != nil {
		return vw.err
	}
	return vw.w.Flush()
}

// Dump is a parsed VCD: per-signal sampled values at each recorded time.
type Dump struct {
	// Names are the declared signal names in declaration order.
	Names []string
	// Times are the recorded timestamps in ascending order.
	Times []uint64
	// Values[t][i] is signal i's value at Times[t].
	Values [][]logic.Trit
}

// Signal returns the index of the named signal, or -1.
func (d *Dump) Signal(name string) int {
	for i, n := range d.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Parse reads a VCD stream produced by Writer (scalar signals only).
func Parse(r io.Reader) (*Dump, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	d := &Dump{}
	idToIdx := make(map[string]int)
	cur := []logic.Trit(nil)
	inDefs := true
	flushTime := func(t uint64) {
		d.Times = append(d.Times, t)
		row := make([]logic.Trit, len(cur))
		copy(row, cur)
		d.Values = append(d.Values, row)
	}
	var pendingTime uint64
	havePending := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if inDefs {
			if strings.HasPrefix(line, "$var ") {
				f := strings.Fields(line)
				// $var wire 1 <id> <name> $end
				if len(f) < 6 {
					return nil, fmt.Errorf("vcd: malformed $var: %q", line)
				}
				idToIdx[f[3]] = len(d.Names)
				d.Names = append(d.Names, f[4])
				continue
			}
			if strings.HasPrefix(line, "$enddefinitions") {
				inDefs = false
				cur = make([]logic.Trit, len(d.Names))
				for i := range cur {
					cur[i] = logic.X
				}
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			var t uint64
			if _, err := fmt.Sscanf(line, "#%d", &t); err != nil {
				return nil, fmt.Errorf("vcd: bad timestamp %q", line)
			}
			if havePending {
				flushTime(pendingTime)
			}
			pendingTime = t
			havePending = true
			continue
		}
		v, err := logic.ParseTrit(line[0])
		if err != nil {
			return nil, fmt.Errorf("vcd: bad value line %q", line)
		}
		idx, ok := idToIdx[line[1:]]
		if !ok {
			return nil, fmt.Errorf("vcd: unknown id %q", line[1:])
		}
		cur[idx] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if havePending {
		flushTime(pendingTime)
	}
	return d, nil
}
