package peakpower

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/power"
)

var (
	testOnce     sync.Once
	testShared   *Analyzer
	testSharedMu sync.Mutex
	testErr      error
)

// analyzer returns one shared Analyzer — both a test fixture and the
// concurrency claim under test: every test in this package runs against
// the same instance.
func analyzer(t *testing.T) *Analyzer {
	t.Helper()
	testSharedMu.Lock()
	defer testSharedMu.Unlock()
	testOnce.Do(func() { testShared, testErr = New() })
	if testErr != nil {
		t.Fatal(testErr)
	}
	return testShared
}

func TestAnalyzeEndToEnd(t *testing.T) {
	a := analyzer(t)
	req, err := a.AnalyzeBench(context.Background(), "binSearch")
	if err != nil {
		t.Fatal(err)
	}
	if req.PeakPowerMW <= 0 || req.PeakEnergyJ <= 0 || req.NPEJPerCycle <= 0 {
		t.Fatalf("requirements: %+v", req)
	}
	if req.App != "binSearch" || req.Library != "ULP65" || req.ClockHz != 100e6 {
		t.Fatalf("metadata: app=%q lib=%q clock=%g", req.App, req.Library, req.ClockHz)
	}
	if req.Paths < 2 {
		t.Fatalf("binSearch must fork: %d paths", req.Paths)
	}
	if len(req.PeakTrace) == 0 {
		t.Fatal("missing peak trace")
	}
	// Past the measurement warmup, the trace's maximum cannot exceed the
	// global peak (the greedy path need not contain the peak cycle, but
	// never exceeds it; the first cycles hold the reset transient, which
	// peak reporting deliberately skips).
	for c, p := range req.PeakTrace {
		if c >= power.DefaultWarmup && p > req.PeakPowerMW+1e-9 {
			t.Fatalf("cycle %d: trace %.3f exceeds reported peak %.3f", c, p, req.PeakPowerMW)
		}
	}
	if len(req.COIs) == 0 || req.COIs[0].PowerMW != req.PeakPowerMW {
		t.Fatal("COIs inconsistent with peak")
	}
	if len(req.Modules) == 0 || len(req.UnionActive) != a.Netlist().NumCells() {
		t.Fatal("attribution metadata missing")
	}
	// NPE consistency.
	if got := req.PeakEnergyJ / req.BoundingCycles; got != req.NPEJPerCycle {
		t.Fatalf("NPE %.3e != E/cycles %.3e", req.NPEJPerCycle, got)
	}
	// Resolved attribution agrees with the raw COIs.
	att := req.Attribution()
	if len(att) != len(req.COIs) {
		t.Fatalf("attribution length %d != %d", len(att), len(req.COIs))
	}
	if att[0].PowerMW != req.PeakPowerMW || att[0].Instr == "" || att[0].Instr == "?" {
		t.Fatalf("attribution[0]: %+v", att[0])
	}
}

func TestRunConcreteBoundedByAnalyze(t *testing.T) {
	a := analyzer(t)
	req, err := a.AnalyzeBench(context.Background(), "tea8")
	if err != nil {
		t.Fatal(err)
	}
	run, err := a.RunConcrete(context.Background(), req.Image(), []uint16{0xDEAD, 0xBEEF}, nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if run.PeakMW > req.PeakPowerMW {
		t.Fatalf("concrete peak %.3f exceeds bound %.3f", run.PeakMW, req.PeakPowerMW)
	}
	if run.EnergyJ > req.PeakEnergyJ {
		t.Fatalf("concrete energy exceeds bound")
	}
	if run.NPEJPerCycle <= 0 || len(run.Trace) == 0 {
		t.Fatalf("run: %+v", run)
	}
}

// TestRunConcreteProgressAndCancel: RunConcrete honors the progress
// options (WithProgress / WithProgressEvery) and polls its context at the
// same cadence — the callback can cancel a run mid-flight.
func TestRunConcreteProgressAndCancel(t *testing.T) {
	a := analyzer(t)
	img, err := BenchImage("tea8")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var snaps []Progress
	run, err := a.RunConcrete(context.Background(), img, []uint16{1, 2}, nil, 1_000_000,
		WithProgress(func(p Progress) {
			mu.Lock()
			snaps = append(snaps, p)
			mu.Unlock()
		}, 0), WithProgressEvery(256))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("expected periodic progress from a %d-cycle run, got %d reports", len(run.Trace), len(snaps))
	}
	for i, p := range snaps {
		if p.App != "tea8" {
			t.Fatalf("progress %d: app %q", i, p.App)
		}
		if i > 0 && p.Cycles <= snaps[i-1].Cycles {
			t.Fatalf("progress cycles not increasing: %d then %d", snaps[i-1].Cycles, p.Cycles)
		}
	}
	// The final report carries the completed cycle count.
	if last := snaps[len(snaps)-1]; last.Cycles != len(run.Trace) {
		t.Fatalf("final progress %d != run length %d", last.Cycles, len(run.Trace))
	}

	// Cancel from the callback: the run must abort with the context error.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = a.RunConcrete(ctx, img, []uint16{1, 2}, nil, 1_000_000,
		WithProgress(func(Progress) { cancel() }, 0), WithProgressEvery(64))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestActiveByModule(t *testing.T) {
	a := analyzer(t)
	req, err := a.AnalyzeBench(context.Background(), "mult")
	if err != nil {
		t.Fatal(err)
	}
	by := a.ActiveByModule(req.UnionActive)
	if by["multiplier"] == 0 || by["exec_unit"] == 0 {
		t.Fatalf("module grouping: %v", by)
	}
	byCells := a.ActiveCellsByModule(req.Best.ActiveCells)
	total := 0
	for _, n := range byCells {
		total += n
	}
	if total != len(req.Best.ActiveCells) {
		t.Fatal("cell grouping lost cells")
	}
}

func TestAnalyzeErrorPropagation(t *testing.T) {
	a := analyzer(t)
	// A program with an input-dependent computed branch target must be
	// rejected with a diagnosis, not silence.
	_, err := a.Analyze(context.Background(), "computed-branch", `
.org 0x0200
v: .input 1
.org 0xf000
.entry main
main:
    mov &v, r4
    br r4
    mov #1, &0x0126
spin: jmp spin
`, WithMaxCycles(10000))
	if err == nil {
		t.Fatal("expected analysis error")
	}
}

func TestSentinelErrors(t *testing.T) {
	a := analyzer(t)
	ctx := context.Background()

	if _, err := a.AnalyzeBench(ctx, "nosuchbench"); !errors.Is(err, ErrUnknownBench) {
		t.Fatalf("want ErrUnknownBench, got %v", err)
	}
	if _, err := BenchImage("nosuchbench"); !errors.Is(err, ErrUnknownBench) {
		t.Fatalf("want ErrUnknownBench, got %v", err)
	}
	if _, err := a.Analyze(ctx, "broken", "not an instruction"); !errors.Is(err, ErrAssemble) {
		t.Fatalf("want ErrAssemble, got %v", err)
	}
	if _, err := a.AnalyzeBench(ctx, "tea8", WithMaxCycles(50)); !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("want ErrCycleBudget, got %v", err)
	}
	if _, err := a.AnalyzeBench(ctx, "binSearch", WithMaxNodes(2)); !errors.Is(err, ErrNodeBudget) {
		t.Fatalf("want ErrNodeBudget, got %v", err)
	}
}

// TestPerCallOptionsDoNotStick verifies per-call overrides never mutate
// the analyzer's defaults.
func TestPerCallOptionsDoNotStick(t *testing.T) {
	a := analyzer(t)
	ctx := context.Background()
	if _, err := a.AnalyzeBench(ctx, "mult", WithMaxCycles(50)); !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("want ErrCycleBudget, got %v", err)
	}
	if _, err := a.AnalyzeBench(ctx, "mult"); err != nil {
		t.Fatalf("default budget should still succeed: %v", err)
	}
}

func TestContextPreCanceled(t *testing.T) {
	a := analyzer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.AnalyzeBench(ctx, "mult"); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestContextCancelMidExploration cancels an in-flight analysis from its
// own progress callback — deterministically mid-exploration — and
// requires the analysis to abort with the context's error.
func TestContextCancelMidExploration(t *testing.T) {
	a := analyzer(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	var cancelAt int
	res, err := a.AnalyzeBench(ctx, "tea8", WithProgress(func(p Progress) {
		once.Do(func() {
			cancelAt = p.Cycles
			cancel()
		})
	}, 64))
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want canceled error, got res=%v err=%v", res, err)
	}
	// The cancellation must have landed mid-exploration: the full run
	// simulates many more cycles than the point where we canceled.
	full, err := a.AnalyzeBench(context.Background(), "tea8")
	if err != nil {
		t.Fatal(err)
	}
	if full.SimCycles <= cancelAt {
		t.Fatalf("cancellation landed after exploration finished (canceled at %d, full run %d)", cancelAt, full.SimCycles)
	}
}

func TestDeadlineExceeded(t *testing.T) {
	a := analyzer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 1)
	defer cancel()
	if _, err := a.AnalyzeBench(ctx, "tea8"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

func TestProgressReporting(t *testing.T) {
	a := analyzer(t)
	var mu sync.Mutex
	var snaps []Progress
	res, err := a.AnalyzeBench(context.Background(), "tea8", WithProgress(func(p Progress) {
		mu.Lock()
		snaps = append(snaps, p)
		mu.Unlock()
	}, 128))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("expected multiple progress reports, got %d", len(snaps))
	}
	for i, p := range snaps {
		if p.App != "tea8" {
			t.Fatalf("progress %d: app %q", i, p.App)
		}
		if i > 0 && p.Cycles < snaps[i-1].Cycles {
			t.Fatalf("progress cycles not monotonic: %d then %d", snaps[i-1].Cycles, p.Cycles)
		}
	}
	// The final (deferred) report carries the completed totals.
	last := snaps[len(snaps)-1]
	if last.Cycles != res.SimCycles || last.Paths != res.Paths {
		t.Fatalf("final progress %+v != result (%d cycles, %d paths)", last, res.SimCycles, res.Paths)
	}
}

func TestCombine(t *testing.T) {
	a := analyzer(t)
	var results []*Result
	for _, name := range []string{"tea8", "mult"} {
		r, err := a.AnalyzeBench(context.Background(), name)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	comb, err := Combine(results...)
	if err != nil {
		t.Fatal(err)
	}
	// The combined requirement dominates each application's.
	for i, r := range results {
		if comb.PeakPowerMW < r.PeakPowerMW || comb.PeakEnergyJ < r.PeakEnergyJ {
			t.Fatalf("combined bound below application %d", i)
		}
		for ci, act := range r.UnionActive {
			if act && !comb.UnionActive[ci] {
				t.Fatal("union lost an active cell")
			}
		}
	}
	// mult's multiplier activity must dominate the union peak.
	if comb.PeakPowerMW != results[1].PeakPowerMW {
		t.Fatalf("union peak %.3f, want mult's %.3f", comb.PeakPowerMW, results[1].PeakPowerMW)
	}
	if _, err := Combine(); err == nil {
		t.Fatal("empty combine must error")
	}
}
