// Package power implements the paper's input-independent peak power
// computation (Algorithm 2) and the supporting activity-based power
// analysis: per-cycle power bounds over three-valued activity, per-module
// breakdowns, cycle-of-interest (COI) attribution, and the literal
// even/odd VCD construction.
//
// The streaming form used during symbolic exploration computes, for every
// cycle, the maximum power consistent with the cycle's activity
// annotation: gates with known values contribute their actual transition
// energy; gates marked active whose values involve X contribute the
// worst-case transition consistent with the known endpoint (both-X gates
// contribute the standard-cell library's maximum-power transition —
// Algorithm 2's maxTransition lookup). Gates holding a temporally
// constant X (not marked active) contribute nothing: that is the
// tightness the activity analysis buys.
//
// The streaming Sink rides the gate engine's fast paths rather than
// walking every cell per cycle: the per-cycle bound comes from
// gsim.Simulator.BoundEnergyFJ (word-parallel popcounts on the packed
// engine), the potentially-toggled union from AccumulateNewActive
// (per-cell work only on first activation), and peak records — with
// their per-module split — materialize only for cycles that actually
// enter Best or the top-k list. CycleBoundFJ remains the all-cells
// reference sum, cross-tested against the fast path.
//
// The literal Algorithm 2 — materialize an even-maximizing and an
// odd-maximizing VCD, run power analysis on each, interleave — is
// implemented in algorithm2.go over captured windows; a property test
// asserts it agrees with the streaming form cycle for cycle.
package power

import (
	"repro/internal/cell"
	"repro/internal/gsim"
	"repro/internal/isa"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/ulp430"
)

// Model is an operating point for power analysis.
type Model struct {
	// Lib is the characterized cell library.
	Lib *cell.Library
	// ClockHz is the clock frequency.
	ClockHz float64
}

// PowerMW converts a per-cycle energy in femtojoules to milliwatts at the
// model's clock.
func (m Model) PowerMW(energyFJ float64) float64 {
	return energyFJ * m.ClockHz * 1e-12
}

// EnergyJ converts a per-cycle energy in femtojoules to joules.
func (m Model) EnergyJ(energyFJ float64) float64 { return energyFJ * 1e-15 }

// LeakageMW returns the design's total leakage power in milliwatts.
func (m Model) LeakageMW(nl *netlist.Netlist) float64 {
	total := 0.0
	for ci := 0; ci < nl.NumCells(); ci++ {
		total += m.Lib.Params(nl.Cell(netlist.CellID(ci)).Kind).LeakageNW
	}
	return total * 1e-6
}

// cellBoundFJ returns the maximum energy cell kind k can dissipate in a
// cycle with previous/current output values prev/cur and activity flag
// act (excluding the clock pin).
func cellBoundFJ(lib *cell.Library, k cell.Kind, prev, cur logic.Trit, act bool) float64 {
	if prev.Known() && cur.Known() {
		if prev != cur {
			return lib.TransitionEnergy(k, prev, cur)
		}
		return 0
	}
	if !act {
		return 0 // temporally constant unknown: cannot toggle
	}
	switch {
	case prev == logic.X && cur == logic.X:
		_, _, e := lib.MaxTransition(k)
		return e
	case cur == logic.X:
		// Assume it left the known previous value.
		if prev == logic.L {
			return lib.Params(k).EnergyRise
		}
		return lib.Params(k).EnergyFall
	default: // prev == X, cur known
		if cur == logic.H {
			return lib.Params(k).EnergyRise
		}
		return lib.Params(k).EnergyFall
	}
}

// CycleBoundFJ computes the cycle's maximum dynamic energy in
// femtojoules. If byModule is non-nil it must have length
// len(nl.Modules()) and receives the per-module split.
func CycleBoundFJ(sim *gsim.Simulator, byModule []float64) float64 {
	nl := sim.Netlist()
	lib := sim.Library()
	if byModule != nil {
		for i := range byModule {
			byModule[i] = 0
		}
	}
	total := 0.0
	for ci := 0; ci < nl.NumCells(); ci++ {
		c := nl.Cell(netlist.CellID(ci))
		e := cellBoundFJ(lib, c.Kind, sim.PrevVal(c.Out), sim.Val(c.Out), sim.Active(c.Out))
		e += lib.Params(c.Kind).EnergyClk
		total += e
		if byModule != nil {
			byModule[nl.ModuleIndex(netlist.CellID(ci))] += e
		}
	}
	return total
}

// Peak records one cycle of interest: a local power maximum with its
// microarchitectural attribution (Figure 3.6).
type Peak struct {
	// PowerMW is the bounded power of the cycle.
	PowerMW float64
	// PathPos is the cycle's position along its exploration path.
	PathPos int
	// FetchAddr is the address of the instruction in flight; PrevFetch
	// the one before it (the shallow "pipeline" of the multi-cycle core).
	FetchAddr, PrevFetch uint16
	// State is the controller state name at the peak.
	State string
	// InISR marks a cycle spent in interrupt context: the IRQ entry
	// sequence, the handler body, or the RETI unwind.
	InISR bool
	// ByModuleMW is the per-module power split (indexed like
	// Netlist.Modules()).
	ByModuleMW []float64
	// ActiveCells is the set of cells active in the peak cycle (recorded
	// for the global best peak only).
	ActiveCells []netlist.CellID
}

// Sink is the symx.Sink that performs streaming peak-power analysis
// during symbolic exploration. It also serves concrete runs (no X values
// present reduces the bound to exact measured power).
type Sink struct {
	// Trace is the per-cycle power bound (mW, leakage included) along the
	// current exploration path.
	Trace []float64
	// WarmupCycles suppresses peak/COI/activity-union tracking for the
	// first cycles of the run: the reset transient and the common
	// watchdog/stack prologue are identical for every application, and
	// the paper's measurements characterize steady-state application
	// execution. The power trace itself still records every cycle.
	WarmupCycles int
	// UnionActive marks cells active in at least one explored cycle —
	// the "potentially toggled" set of Figures 1.5 and 3.4.
	UnionActive []bool
	// Best is the global peak across all explored cycles.
	Best Peak
	// TopK holds the highest-power cycles with distinct fetch addresses
	// (COI candidates), sorted descending.
	TopK []Peak
	// ISRPeakMW is the peak power bound restricted to cycles spent in
	// interrupt context (0 when no interrupt was ever entered). Like
	// Best, it accumulates over every explored path.
	ISRPeakMW float64

	model   Model
	nl      *netlist.Netlist
	img     *isa.Image
	k       int
	modBuf  []float64
	leakMW  float64
	fetches []fetchCtx

	// actAccum is the engine's union-activity accumulator; unionVisit
	// marks a cell in UnionActive the first cycle it turns active.
	actAccum   []uint64
	unionVisit func(netlist.CellID)

	// clkModFJ is the per-module clock-pin energy constant; splitVisit
	// adds the active cells' bound on top when a peak materializes (an
	// O(active) pass — the same decomposition as the engine's
	// BoundEnergyFJ, since inactive cells bound to zero).
	clkModFJ   []float64
	splitVisit func(netlist.CellID)
	curSim     *gsim.Simulator

	stateNets []netlist.NetID
	mabNets   []netlist.NetID
	lastState string
	lastStIdx int

	// isrDepth tracks interrupt nesting along the current path, parallel
	// to Trace (rewound with it); curISR flags the cycle being recorded.
	isrDepth []int8
	curISR   bool

	// Task mode (EnableTasks): the sink serves one worker of a parallel
	// exploration. Trace/fetches/isrDepth become task-local (positions
	// stay absolute via base), the order-sensitive reductions (Best,
	// TopK) are deferred — candidate peaks are recorded with their
	// (task, stream) coordinates and folded canonically by
	// MergeParallel — and the path context at a task's start comes from
	// a TaskSeed instead of history.
	taskMode  bool
	shared    *Shared
	base      int
	task      int
	stream    int
	curStream int
	seed      TaskSeed
	// Per-segment candidate filters (see recordCandidates): canonical
	// order within one tree segment equals this task's exploration
	// order, so within a segment only strict running records can matter.
	segBest    float64
	segAddrMax map[uint16]float64
	bestCands  []PeakCand
	topkCands  []PeakCand

	// Checkpoint mode (EnableCheckpoint): per-task observation records
	// for the exploration journal. Candidate slices are sliced at task
	// boundaries; the activity union and ISR peak — order-insensitive
	// folds whose per-task contribution cannot be recovered from the
	// running fold — get task-local accumulators, so a resumed run can
	// replay exactly one task's contribution without its worker's
	// history (see MarshalTask / MergeParallelReplay).
	ckpt       bool
	taskBest0  int
	taskTopk0  int
	taskISR    float64
	taskAccum  []uint64
	taskActive []netlist.CellID
	taskVisit  func(netlist.CellID)
}

type fetchCtx struct {
	fetch, prev uint16
}

// DefaultWarmup covers the boot sequence and the shared watchdog/stack
// prologue (see Sink.WarmupCycles).
const DefaultWarmup = 12

// NewSink creates a power sink for the given system/model; k bounds the
// COI list length.
func NewSink(sys *ulp430.System, model Model, img *isa.Image, k int) *Sink {
	nl := sys.Sim.Netlist()
	s := &Sink{
		WarmupCycles: DefaultWarmup,
		model:        model,
		nl:           nl,
		img:          img,
		k:            k,
		UnionActive:  make([]bool, nl.NumCells()),
		modBuf:       make([]float64, len(nl.Modules())),
		leakMW:       model.LeakageMW(nl),
		actAccum:     sys.Sim.NewActiveAccumulator(),
		clkModFJ:     make([]float64, len(nl.Modules())),
		stateNets:    nl.Port("state"),
		mabNets:      nl.Port("mab"),
	}
	for ci := 0; ci < nl.NumCells(); ci++ {
		s.clkModFJ[nl.ModuleIndex(netlist.CellID(ci))] += model.Lib.Params(nl.Cell(netlist.CellID(ci)).Kind).EnergyClk
	}
	// One closure each for the whole run: the accumulate path is
	// per-cycle hot and must not allocate.
	s.unionVisit = func(ci netlist.CellID) { s.UnionActive[ci] = true }
	s.splitVisit = func(ci netlist.CellID) {
		c := s.nl.Cell(ci)
		s.modBuf[s.nl.ModuleIndex(ci)] += cellBoundFJ(
			s.model.Lib, c.Kind, s.curSim.PrevVal(c.Out), s.curSim.Val(c.Out), true)
	}
	return s
}

// Modules returns the module names indexing Peak.ByModuleMW.
func (s *Sink) Modules() []string { return s.nl.Modules() }

// OnCycle implements symx.Sink. The per-cycle bound comes from the
// engine's BoundEnergyFJ fast path (word-parallel popcounts on the
// packed engine); the O(cells) per-module split is deferred to makePeak
// and computed only when a cycle actually enters the peak records.
func (s *Sink) OnCycle(sys *ulp430.System) {
	sim := sys.Sim
	s.refreshState(sim)
	pos := s.base + len(s.Trace)
	if s.taskMode {
		s.curStream = s.stream
		s.stream++
	}

	p := s.model.PowerMW(sim.BoundEnergyFJ()) + s.leakMW
	s.Trace = append(s.Trace, p)

	// Track the instruction in flight.
	var fc fetchCtx
	if n := len(s.fetches); n > 0 {
		fc = s.fetches[n-1]
	} else if s.taskMode {
		fc = fetchCtx{fetch: s.seed.Fetch, prev: s.seed.Prev}
	}
	if sim.Val(s.stateNets[ulp430.StFetch]) == logic.H {
		if a, ok := sim.PortUint("mab"); ok {
			fc.prev = fc.fetch
			fc.fetch = uint16(a)
		}
	}
	s.fetches = append(s.fetches, fc)

	// ISR attribution: the entry sequence (IRQ1..IRQ3) flags the cycle
	// directly; IRQ3 raises the nesting depth for the handler body, and
	// RETI2 (the final unwind cycle, still in interrupt context) lowers
	// it back.
	var depth int8
	if n := len(s.isrDepth); n > 0 {
		depth = s.isrDepth[n-1]
	} else if s.taskMode {
		depth = s.seed.Depth
	}
	inISR := depth > 0 ||
		s.lastStIdx == ulp430.StIrq1 || s.lastStIdx == ulp430.StIrq2 || s.lastStIdx == ulp430.StIrq3
	if s.lastStIdx == ulp430.StIrq3 {
		depth++
	}
	if s.lastStIdx == ulp430.StReti2 && depth > 0 {
		depth--
	}
	s.isrDepth = append(s.isrDepth, depth)
	s.curISR = inISR

	if pos < s.WarmupCycles {
		return
	}
	if inISR && p > s.ISRPeakMW {
		s.ISRPeakMW = p
	}

	// Union of active cells: word-ORed accumulator, per-cell work only
	// on first activation.
	sim.AccumulateNewActive(s.actAccum, s.unionVisit)

	if s.taskMode {
		if s.ckpt {
			if inISR && p > s.taskISR {
				s.taskISR = p
			}
			sim.AccumulateNewActive(s.taskAccum, s.taskVisit)
		}
		s.recordCandidates(p, pos, fc, sim)
		return
	}

	if p > s.Best.PowerMW {
		s.Best = s.makePeak(p, pos, fc, true, sim)
		// A record-setting cycle always enters TopK too; reuse the
		// just-built peak (sans the cell list) instead of running the
		// module-split pass twice for the same state.
		pre := s.Best
		pre.ActiveCells = nil
		s.maybeInsertTopK(p, pos, fc, sim, &pre)
		return
	}
	s.maybeInsertTopK(p, pos, fc, sim, nil)
}

// makePeak materializes a cycle of interest, including the per-module
// power split (an O(active-cells) pass — peaks materialize rarely, not
// per cycle, and the split skips the all-cells walk entirely).
func (s *Sink) makePeak(p float64, pos int, fc fetchCtx, withCells bool, sim *gsim.Simulator) Peak {
	copy(s.modBuf, s.clkModFJ)
	s.curSim = sim
	sim.ForEachActiveCell(s.splitVisit)
	s.curSim = nil
	pk := Peak{
		PowerMW:    p,
		PathPos:    pos,
		FetchAddr:  fc.fetch,
		PrevFetch:  fc.prev,
		State:      s.stateName(),
		InISR:      s.curISR,
		ByModuleMW: make([]float64, len(s.modBuf)),
	}
	for i, e := range s.modBuf {
		pk.ByModuleMW[i] = s.model.PowerMW(e)
	}
	if withCells {
		pk.ActiveCells = sim.ActiveCells(nil)
	}
	return pk
}

func (s *Sink) stateName() string { return s.lastState }

// refreshState derives the controller state name from the one-hot state
// port; called once per OnCycle before peaks are recorded.
func (s *Sink) refreshState(sim *gsim.Simulator) {
	for i, id := range s.stateNets {
		if sim.Val(id) == logic.H {
			s.lastState = ulp430.StateName(i)
			s.lastStIdx = i
			return
		}
	}
	s.lastState = "?"
	s.lastStIdx = -1
}

// maybeInsertTopK keeps the top-k cycles with distinct fetch addresses,
// materializing a Peak (module split, allocations) only when the cycle
// actually displaces or extends the list. pre, when non-nil, is an
// already-materialized peak for this cycle to reuse.
func (s *Sink) maybeInsertTopK(p float64, pos int, fc fetchCtx, sim *gsim.Simulator, pre *Peak) {
	if s.k <= 0 {
		return
	}
	mk := func() Peak {
		if pre != nil {
			return *pre
		}
		return s.makePeak(p, pos, fc, false, sim)
	}
	s.TopK = insertTopK(s.TopK, s.k, p, fc.fetch, mk)
}

// insertTopK is the top-k insertion step, shared verbatim by the live
// sequential sink and MergeParallel's canonical replay — one algorithm,
// so the two paths cannot drift apart. It keeps at most one entry per
// fetch address, sorted descending, materializing (mk) only when the
// cycle actually enters the list.
func insertTopK(list []Peak, k int, p float64, fetch uint16, mk func() Peak) []Peak {
	if k <= 0 {
		return list
	}
	for i := range list {
		if list[i].FetchAddr == fetch {
			if p > list[i].PowerMW {
				list[i] = mk()
				bubbleTopK(list, i)
			}
			return list
		}
	}
	if len(list) < k {
		list = append(list, mk())
		bubbleTopK(list, len(list)-1)
		return list
	}
	if p > list[len(list)-1].PowerMW {
		list[len(list)-1] = mk()
		bubbleTopK(list, len(list)-1)
	}
	return list
}

func bubbleTopK(list []Peak, i int) {
	for i > 0 && list[i].PowerMW > list[i-1].PowerMW {
		list[i], list[i-1] = list[i-1], list[i]
		i--
	}
}

// Pos implements symx.Sink. Positions are absolute path positions even
// in task mode (base is 0 outside it).
func (s *Sink) Pos() int { return s.base + len(s.Trace) }

// Rewind implements symx.Sink.
func (s *Sink) Rewind(pos int) {
	n := pos - s.base
	s.Trace = s.Trace[:n]
	s.fetches = s.fetches[:n]
	s.isrDepth = s.isrDepth[:n]
}

// Segment implements symx.Sink: the payload is the per-cycle power bound
// (mW) of the segment.
func (s *Sink) Segment(from int) interface{} {
	return append([]float64(nil), s.Trace[from-s.base:]...)
}

// PeakMW returns the global peak power bound.
func (s *Sink) PeakMW() float64 { return s.Best.PowerMW }

// Instruction renders the mnemonic of a peak's in-flight instruction.
func (s *Sink) Instruction(pk Peak) string {
	if s.img == nil {
		return "?"
	}
	return isa.Mnemonic(s.img, pk.FetchAddr)
}

// PrevInstruction renders the mnemonic of the preceding instruction.
func (s *Sink) PrevInstruction(pk Peak) string {
	if s.img == nil {
		return "?"
	}
	return isa.Mnemonic(s.img, pk.PrevFetch)
}
