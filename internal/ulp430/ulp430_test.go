package ulp430

import (
	"sync"
	"testing"

	"repro/internal/cell"
	"repro/internal/isa"
	"repro/internal/isim"
	"repro/internal/logic"
	"repro/internal/netlist"
)

var (
	cpuOnce sync.Once
	cpuNet  *netlist.Netlist
	cpuErr  error
)

func sharedCPU(t *testing.T) *netlist.Netlist {
	t.Helper()
	cpuOnce.Do(func() { cpuNet, cpuErr = BuildCPU() })
	if cpuErr != nil {
		t.Fatalf("BuildCPU: %v", cpuErr)
	}
	return cpuNet
}

func TestBuildCPUStats(t *testing.T) {
	n := sharedCPU(t)
	st := n.Stats(cell.ULP65())
	t.Logf("cells=%d seq=%d nets=%d levels=%d area=%.0fum2 modules=%v",
		st.Cells, st.Seq, st.Nets, st.Levels, st.AreaUM2, st.ByModule)
	if st.Cells < 2000 {
		t.Fatalf("implausibly small CPU: %d cells", st.Cells)
	}
	// Every paper module must be present.
	for _, m := range []string{"frontend", "exec_unit", "mem_backbone", "multiplier", "watchdog", "sfr", "dbg", "clk_module"} {
		if st.ByModule[m] == 0 {
			t.Errorf("module %s missing from netlist", m)
		}
	}
}

const haltSeq = `
    mov #1, &0x0126
spin: jmp spin
`

// diff runs src on both the ISS and the gate-level system and compares
// architectural state, checked RAM words, and cycle counts.
func diff(t *testing.T, name, src string, inputs []uint16, checkMem []uint16) {
	t.Helper()
	img, err := isa.Assemble(name, src)
	if err != nil {
		t.Fatalf("%s: assemble: %v", name, err)
	}
	iss, err := isim.New(img, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := iss.Run(200000); err != nil {
		t.Fatalf("%s: iss: %v", name, err)
	}

	sys, err := NewSystem(sharedCPU(t), cell.ULP65(), img, ConcreteInputs, inputs)
	if err != nil {
		t.Fatal(err)
	}
	sys.Reset()
	start := sys.Sim.Cycle()
	if err := sys.RunToHalt(500000); err != nil {
		t.Fatalf("%s: gate-level: %v", name, err)
	}
	gateCycles := sys.Sim.Cycle() - start

	for r := 4; r <= 15; r++ {
		hw, ok := sys.Reg(r)
		if !ok {
			// Registers never written stay X in hardware; the ISS
			// zero-initializes. Only compare when the HW value is known.
			continue
		}
		if hw != iss.R[r] {
			t.Errorf("%s: r%d = %#04x (hw) vs %#04x (iss)", name, r, hw, iss.R[r])
		}
	}
	if hw, ok := sys.Reg(2); ok && hw != iss.R[2] {
		t.Errorf("%s: sr = %#04x (hw) vs %#04x (iss)", name, hw, iss.R[2])
	}
	for _, addr := range checkMem {
		hw := sys.MemWord(addr)
		v, ok := hw.Uint()
		if !ok {
			t.Errorf("%s: mem[%#04x] has X bits: %v", name, addr, hw)
			continue
		}
		if uint16(v) != iss.Mem(addr) {
			t.Errorf("%s: mem[%#04x] = %#04x (hw) vs %#04x (iss)", name, addr, v, iss.Mem(addr))
		}
	}
	// Cycle accounting: one BOOT cycle after reset release plus one cycle
	// of halt-latch latency.
	if gateCycles != iss.Cycles+2 {
		t.Errorf("%s: cycles = %d (hw) vs %d+2 (iss model)", name, gateCycles, iss.Cycles)
	}
}

func TestDiffBasicALU(t *testing.T) {
	diff(t, "alu", `
.org 0xf000
.entry main
main:
    mov #100, r4
    add #55, r4
    sub #16, r4
    mov #0x0f0f, r5
    and #0x00ff, r5
    bis #0x1000, r5
    xor #0x0011, r5
    bic #0x0001, r5
    mov #0xffff, r6
    add #1, r6
    addc #0, r6
    mov #10, r7
    subc #3, r7
    cmp #139, r4
    bit #1, r5
`+haltSeq, nil, nil)
}

func TestDiffShifts(t *testing.T) {
	diff(t, "shifts", `
.org 0xf000
.entry main
main:
    mov #0x8005, r4
    rra r4
    clrc
    rrc r4
    setc
    rrc r4
    mov #0x1234, r5
    swpb r5
    mov #0x0080, r6
    sxt r6
    mov #0x0040, r7
    sxt r7
    mov #3, r8
    rla r8
    rlc r8
`+haltSeq, nil, nil)
}

func TestDiffMemoryModes(t *testing.T) {
	diff(t, "mem", `
.equ RAM, 0x0200
.org RAM
arr:  .word 11, 22, 33, 44
out:  .space 6
.org 0xf000
.entry main
main:
    mov #arr, r4
    mov @r4+, r5
    add @r4+, r5        ; 33
    mov 2(r4), r6       ; 44
    mov &arr, r7        ; 11
    mov r5, &out
    mov r6, out+2
    mov #out, r9
    mov r7, 4(r9)
    add #1, out+2       ; 45 in memory
    cmp #45, out+2
`+haltSeq, nil, []uint16{0x0208, 0x020A, 0x020C})
}

// Regression: a memory source (SRC_RD) followed by an indexed/absolute
// destination must fetch the destination extension word at PC, not PC+2
// (the PC does not advance during SRC_RD).
func TestDiffMemSrcIndexedDst(t *testing.T) {
	diff(t, "memsrc-ixdst", `
.org 0x0200
src: .word 0x1111, 0x2222
dst: .space 4
.org 0xf000
.entry main
main:
    mov #src, r4
    mov #dst, r5
    mov @r4+, &dst      ; @Rn+ source, absolute destination
    mov @r4, 2(r5)      ; @Rn source, indexed destination
    add @r4, &dst       ; read-modify-write destination
    mov #1234, &0x0130  ; multiplier operand via absolute store
    mov #56, &0x0138
    nop
    mov &0x013a, r6
`+haltSeq, nil, []uint16{0x0204, 0x0206})
}

func TestDiffStackAndCall(t *testing.T) {
	diff(t, "stack", `
.org 0xf000
.entry main
main:
    mov #0x0a00, sp
    mov #5, r4
    push r4
    push #1234
    call #sum2
    pop r6
    pop r7
    mov r15, r8
`+haltSeq+`
sum2:
    mov #40, r15
    add #2, r15
    ret
`, nil, nil)
}

func TestDiffBranchLadder(t *testing.T) {
	diff(t, "branches", `
.org 0xf000
.entry main
main:
    mov #0, r10
    mov #-5, r4
    cmp #3, r4
    jl a1
    jmp end
a1: bis #1, r10
    cmp #3, r4
    jhs a2
    jmp end
a2: bis #2, r10
    mov #9, r5
    cmp #9, r5
    jeq a3
    jmp end
a3: bis #4, r10
    cmp #3, r5
    jge a4
    jmp end
a4: bis #8, r10
    mov #1, r7
    sub #2, r7
    jn a5
    jmp end
a5: bis #16, r10
    cmp #100, r5
    jnc a6          ; 9 - 100 borrows -> C=0
    jmp end
a6: bis #32, r10
end:
`+haltSeq, nil, nil)
}

func TestDiffLoopSum(t *testing.T) {
	diff(t, "loop", `
.org 0x0200
data: .input 6
sum:  .space 1
.org 0xf000
.entry main
main:
    mov #data, r4
    mov #6, r5
    clr r6
lp: add @r4+, r6
    dec r5
    jnz lp
    mov r6, &sum
`+haltSeq, []uint16{3, 9, 27, 81, 243, 729}, []uint16{0x020C})
}

func TestDiffMultiplier(t *testing.T) {
	diff(t, "mult", `
.org 0xf000
.entry main
main:
    mov #1234, &0x0130
    mov #567, &0x0138
    nop
    mov &0x013a, r4
    mov &0x013c, r5
    mov #40000, &0x0130
    mov #40000, &0x0138
    nop
    mov &0x013a, r6
    mov &0x013c, r7
`+haltSeq, nil, nil)
}

func TestDiffWatchdogAndPorts(t *testing.T) {
	img, err := isa.Assemble("wdt", `
.org 0xf000
.entry main
main:
    mov &0x0122, r4      ; read P1IN
    mov r4, &0x0124      ; echo to P1OUT
    mov #0x0080, &0x0120 ; hold watchdog
    mov &0x0120, r5
`+haltSeq)
	if err != nil {
		t.Fatal(err)
	}
	iss, _ := isim.New(img, nil)
	iss.PortIn = func() uint16 { return 0xA5C3 }
	if err := iss.Run(10000); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sharedCPU(t), cell.ULP65(), img, ConcreteInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.PortIn = func() uint16 { return 0xA5C3 }
	sys.Reset()
	if err := sys.RunToHalt(100000); err != nil {
		t.Fatal(err)
	}
	if hw, _ := sys.Reg(4); hw != 0xA5C3 {
		t.Errorf("P1IN read: %#04x", hw)
	}
	if hw, _ := sys.Reg(5); hw != 0x0080 {
		t.Errorf("WDTCTL readback: %#04x", hw)
	}
	p1, ok := sys.Sim.Port("p1out").Uint()
	if !ok || uint16(p1) != 0xA5C3 {
		t.Errorf("P1OUT = %#04x ok=%v", p1, ok)
	}
	// Watchdog must have counted, then stopped.
	w1, ok := sys.Sim.Port("wdtcnt").Uint()
	if !ok || w1 == 0 {
		t.Fatalf("wdtcnt = %d ok=%v", w1, ok)
	}
	sys.Step()
	sys.Step()
	w2, _ := sys.Sim.Port("wdtcnt").Uint()
	if w2 != w1 {
		t.Errorf("watchdog kept counting after hold: %d -> %d", w1, w2)
	}
}

func TestSymbolicInputsProduceXAndFork(t *testing.T) {
	img, err := isa.Assemble("sym", `
.org 0x0200
v: .input 1
.org 0xf000
.entry main
main:
    mov &v, r4
    cmp #5, r4
    jeq yes
    mov #1, r5
    jmp end
yes:
    mov #2, r5
end:
`+haltSeq)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sharedCPU(t), cell.ULP65(), img, SymbolicInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.Reset()
	sawFork := false
	for i := 0; i < 200 && !sys.Halted(); i++ {
		if sys.JumpCondUnknown() {
			sawFork = true
			break
		}
		sys.Step()
	}
	if !sawFork {
		t.Fatal("symbolic input should make the jeq condition X")
	}
	// r4 must be X (loaded from symbolic input).
	if _, ok := sys.Reg(4); ok {
		t.Fatal("r4 should be X")
	}
}

func TestForceBranchAndSnapshotRestore(t *testing.T) {
	img, err := isa.Assemble("fork", `
.org 0x0200
v: .input 1
.org 0xf000
.entry main
main:
    mov &v, r4
    cmp #5, r4
    jeq yes
    mov #111, r5
    jmp end
yes:
    mov #222, r5
end:
`+haltSeq)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sharedCPU(t), cell.ULP65(), img, SymbolicInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.Reset()
	var preFork *SysSnapshot
	for i := 0; i < 300; i++ {
		snap := sys.Snapshot()
		sys.Step()
		if sys.JumpCondUnknown() {
			preFork = snap
			break
		}
	}
	if preFork == nil {
		t.Fatal("no fork point found")
	}
	// Path A: branch not taken.
	sys.Restore(preFork)
	sys.ForceBranch(false)
	sys.Step()
	sys.ClearForce()
	for i := 0; i < 500 && !sys.Halted(); i++ {
		if sys.JumpCondUnknown() {
			t.Fatal("unexpected second fork")
		}
		sys.Step()
	}
	if !sys.Halted() {
		t.Fatal("path A did not halt")
	}
	r5a, ok := sys.Reg(5)
	if !ok || r5a != 111 {
		t.Fatalf("path A r5 = %d ok=%v", r5a, ok)
	}
	// Path B: restore and take the branch.
	sys.Restore(preFork)
	sys.ForceBranch(true)
	sys.Step()
	sys.ClearForce()
	for i := 0; i < 500 && !sys.Halted(); i++ {
		sys.Step()
	}
	r5b, ok := sys.Reg(5)
	if !ok || r5b != 222 {
		t.Fatalf("path B r5 = %d ok=%v", r5b, ok)
	}
}

func TestBusErrorDetection(t *testing.T) {
	cases := map[string]string{
		"store rom":  ".org 0xf000\n.entry main\nmain: mov r4, &0xf800\n" + haltSeq,
		"load unmap": ".org 0xf000\n.entry main\nmain: mov &0x1000, r4\n" + haltSeq,
	}
	for name, src := range cases {
		img, err := isa.Assemble(name, src)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := NewSystem(sharedCPU(t), cell.ULP65(), img, ConcreteInputs, nil)
		if err != nil {
			t.Fatal(err)
		}
		sys.Reset()
		if err := sys.RunToHalt(2000); err == nil {
			t.Errorf("%s: expected bus error", name)
		}
	}
}

func TestConcreteRunHasNoXInArchState(t *testing.T) {
	img, err := isa.Assemble("clean", `
.org 0xf000
.entry main
main:
    mov #0x0a00, sp
    mov #7, r4
    mov #9, r5
    add r4, r5
`+haltSeq)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sharedCPU(t), cell.ULP65(), img, ConcreteInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.Reset()
	if err := sys.RunToHalt(100000); err != nil {
		t.Fatal(err)
	}
	for _, port := range []string{"pc", "sr", "sp", "r4", "r5"} {
		if sys.Sim.Port(port).HasX() {
			t.Errorf("port %s has X after concrete run: %v", port, sys.Sim.Port(port))
		}
	}
	if v, _ := sys.Reg(5); v != 16 {
		t.Errorf("r5 = %d", v)
	}
}

func TestMemWordAndLogicRoundTrip(t *testing.T) {
	w := logic.Word{logic.H, logic.L, logic.X, logic.H, logic.L, logic.L, logic.X, logic.H,
		logic.L, logic.H, logic.L, logic.H, logic.X, logic.L, logic.H, logic.L}
	m := wordFromLogic(w)
	back := make(logic.Word, 16)
	m.toLogic(back)
	if !w.Equal(back) {
		t.Fatalf("round trip: %v -> %v", w, back)
	}
}
