// Package repro is a from-scratch Go reproduction of "Determining
// Application-specific Peak Power and Energy Requirements for
// Ultra-low Power Processors" (ASPLOS 2017): symbolic gate-level
// co-analysis of an application binary and a ULP processor netlist that
// produces guaranteed, input-independent peak power and energy bounds.
//
// See README.md for the tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmark harness in
// bench_test.go regenerates every table and figure:
//
//	go test -bench=. -benchmem
package repro
