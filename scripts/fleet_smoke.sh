#!/usr/bin/env bash
# Fleet smoke: a real coordinator peakpowerd plus two worker replicas
# split one benchmark exploration across processes over HTTP, and the
# sealed Report must hash-match a single-node sequential analysis
# (-explore-workers 1). Every task crosses the fleet protocol: the
# coordinator runs with zero local slots, so a hash match proves the
# lease/claim/complete path end to end.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
COORD=127.0.0.1:18090
W1=127.0.0.1:18091
W2=127.0.0.1:18092
TMP=$(mktemp -d /tmp/fleet-smoke.XXXXXX)
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

$GO build -o "$TMP/peakpowerd" ./cmd/peakpowerd
$GO build -o "$TMP/peakpower" ./cmd/peakpower

"$TMP/peakpowerd" -addr "$COORD" -data "$TMP/data" -coordinator \
    -fleet-local-slots 0 -fleet-lease-ttl 5s &
for i in $(seq 1 50); do
    curl -sf "http://$COORD/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done

"$TMP/peakpowerd" -addr "$W1" -join "http://$COORD" &
"$TMP/peakpowerd" -addr "$W2" -join "http://$COORD" &

# Wait until both workers appear in the coordinator's fleet membership.
for i in $(seq 1 100); do
    n=$(curl -sf "http://$COORD/readyz" | grep -o '18091\|18092' | sort -u | wc -l || true)
    [ "${n:-0}" -ge 2 ] && break
    sleep 0.2
done
if [ "${n:-0}" -lt 2 ]; then
    echo "fleet smoke: FAIL (workers never registered)" >&2
    curl -s "http://$COORD/readyz" >&2 || true
    exit 1
fi

# The fleet-executed analysis (the CLI's -server mode goes through
# POST /v1/jobs, which coordinator mode distributes) vs the single-node
# sequential reference.
"$TMP/peakpower" -server "http://$COORD" -bench binSearch -json > "$TMP/fleet.json"
"$TMP/peakpower" -bench binSearch -explore-workers 1 -json > "$TMP/local.json"

fleet_hash=$(grep -o '"hash": *"sha256:[^"]*"' "$TMP/fleet.json")
local_hash=$(grep -o '"hash": *"sha256:[^"]*"' "$TMP/local.json")
if [ -z "$fleet_hash" ] || [ "$fleet_hash" != "$local_hash" ]; then
    echo "fleet smoke: FAIL (fleet $fleet_hash != single-node $local_hash)" >&2
    exit 1
fi

# Prove the work actually crossed the fleet (zero local slots should
# force every task through a remote lease).
if ! curl -sf "http://$COORD/debug/vars" | grep -q '"peakpowerd_fleet_tasks_leased": [1-9]'; then
    echo "fleet smoke: FAIL (no tasks were leased to the workers)" >&2
    curl -s "http://$COORD/debug/vars" >&2 || true
    exit 1
fi

echo "fleet smoke: OK (2 workers, $fleet_hash)"
