package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/peakpower"
)

// crashApp classifies 8 symbolic inputs: 2^8 execution paths, enough
// exploration that a SIGKILL lands mid-run rather than after it.
const crashApp = `
.org 0x0200
vals: .input 8
cnt:  .space 1
.org 0xf000
.entry main
main:
    mov #0x0080, &0x0120
    mov #0x0a00, sp
    mov #vals, r6
    mov #8, r7
    clr r8
lp: mov @r6+, r4
    cmp #50, r4
    jl small
    inc r8
small:
    dec r7
    jnz lp
    mov r8, &cnt
    mov #1, &0x0126
spin: jmp spin
`

// buildDaemon compiles the actual peakpowerd binary the crash test will
// SIGKILL — the recovery contract is only meaningful against a real
// process, not an httptest handler.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "peakpowerd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building peakpowerd: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches the binary and waits for /healthz.
func startDaemon(t *testing.T, bin, addr, dataDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-data", dataDir, "-jobs", "1", "-drain-timeout", "2s")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	for i := 0; ; i++ {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		if i > 200 {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("daemon on %s never became healthy: %v", addr, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func killDaemon(cmd *exec.Cmd) {
	cmd.Process.Kill()
	cmd.Wait()
}

// TestDaemonCrashResumeByteIdentical is the ISSUE's crash-smoke
// acceptance, end to end: a real peakpowerd process is SIGKILLed while a
// job's exploration is underway (its checkpoint journal is visibly
// growing), a fresh process on the same data directory re-enqueues the
// job and resumes from the journal, and the sealed Report it serves is
// byte-identical to an uninterrupted in-process analysis — at two
// exploration worker counts.
func TestDaemonCrashResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real daemon processes")
	}
	bin := buildDaemon(t)

	// The uninterrupted reference, in-process.
	an, err := peakpower.NewFor(context.Background(), "ulp430")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := an.Analyze(context.Background(), "crashapp", crashApp)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Report.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dataDir := t.TempDir()
			addr := freeAddr(t)
			cmd := startDaemon(t, bin, addr, dataDir)
			defer killDaemon(cmd)
			base := "http://" + addr

			reqBody := fmt.Sprintf(`{"name":"crashapp","source":%s,"options":{"explore_workers":%d}}`,
				mustJSON(crashApp), workers)
			resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(reqBody))
			if err != nil {
				t.Fatal(err)
			}
			var acc struct {
				ID string `json:"id"`
			}
			err = json.NewDecoder(resp.Body).Decode(&acc)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusAccepted || acc.ID == "" {
				t.Fatalf("submit: %d %v %+v", resp.StatusCode, err, acc)
			}

			// Kill once the job's checkpoint journal is visibly growing —
			// proof the exploration is underway, not finished.
			ckpt := filepath.Join(dataDir, "jobs", acc.ID+".ckpt")
			midRun := false
			for i := 0; i < 2000; i++ {
				if fi, err := os.Stat(ckpt); err == nil && fi.Size() > 512 {
					midRun = true
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			killDaemon(cmd)
			if !midRun {
				// The exploration outran the watcher; the restart still must
				// serve the job, but say so — the resume path went untested.
				t.Logf("workers=%d: journal never observed mid-run; job may have completed before the kill", workers)
			}

			cmd2 := startDaemon(t, bin, addr, dataDir)
			defer killDaemon(cmd2)
			deadline := time.Now().Add(2 * time.Minute)
			var st jobStatusResponse
			for {
				code, body := get(t, base+"/v1/jobs/"+acc.ID)
				if code != http.StatusOK {
					t.Fatalf("poll after restart: %d %s", code, body)
				}
				if err := json.Unmarshal(body, &st); err != nil {
					t.Fatal(err)
				}
				if st.State == "done" || st.State == "failed" {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("job %s stuck in %s after restart", acc.ID, st.State)
				}
				time.Sleep(20 * time.Millisecond)
			}
			if st.State != "done" {
				t.Fatalf("recovered job: %+v", st)
			}
			if string(st.Report) != string(want) {
				t.Fatalf("resumed report differs from uninterrupted analysis:\ngot:  %.200s\nwant: %.200s", st.Report, want)
			}
			if midRun && st.Attempts < 2 {
				t.Fatalf("mid-run kill but attempts %d, want >=2", st.Attempts)
			}
		})
	}
}
