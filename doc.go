// Package repro is a from-scratch Go reproduction of "Determining
// Application-specific Peak Power and Energy Requirements for
// Ultra-low Power Processors" (ASPLOS 2017): symbolic gate-level
// co-analysis of an application binary and a ULP processor netlist that
// produces guaranteed, input-independent peak power and energy bounds.
//
// The public API is package repro/peakpower — a context-aware,
// option-driven, concurrency-safe Analyzer; start there. See README.md
// for the tour and DESIGN.md for the system inventory. The benchmark
// harness in bench_test.go regenerates every table and figure:
//
//	go test -bench=. -benchmem
package repro
