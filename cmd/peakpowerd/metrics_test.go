package main

import (
	"encoding/json"
	"expvar"
	"testing"
	"time"
)

// TestMetricsTwoServers is the regression test for duplicate expvar
// registration: every expvar name peakpowerd exports must survive
// constructing any number of servers in one process — exactly what this
// test binary, and a -coordinator with an embedded worker, do. A
// non-idempotent registration panics inside expvar.Publish here.
func TestMetricsTwoServers(t *testing.T) {
	_, s1 := newTestServerCfg(t, serverConfig{cacheSize: 4, timeout: time.Minute})
	_, s2 := newTestServerCfg(t, serverConfig{cacheSize: 4, timeout: time.Minute})

	if got := metricsServer(); got != s2 {
		t.Fatalf("gauges read server %p, want the most recently registered %p", got, s2)
	}
	// Explicit re-registration (beyond what newServer already did) must
	// also be a no-op, and must re-point the gauges.
	registerMetrics(s1)
	registerMetrics(s1)
	if got := metricsServer(); got != s1 {
		t.Fatalf("gauges read server %p, want %p after re-registration", got, s1)
	}

	// The counters must resolve to one shared process-global instance.
	if got := metricInt("peakpowerd_jobs_accepted"); got != mJobsAccepted {
		t.Fatal("metricInt returned a fresh counter for an existing name")
	}
	// Every gauge must be published and render valid JSON.
	for _, name := range []string{
		"peakpowerd_queue_depth", "peakpowerd_in_flight", "peakpowerd_cache",
		"peakpowerd_disk", "peakpowerd_fleet_tasks_leased", "peakpowerd_fleet_tasks_reissued",
	} {
		v := expvar.Get(name)
		if v == nil {
			t.Fatalf("gauge %s not published", name)
		}
		var out any
		if err := json.Unmarshal([]byte(v.String()), &out); err != nil {
			t.Fatalf("gauge %s renders invalid JSON %q: %v", name, v.String(), err)
		}
	}
}
