package symx

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cell"
	"repro/internal/isa"
	"repro/internal/periph"
	"repro/internal/power"
	"repro/internal/ulp430"
)

// FuzzExplore cross-checks the sequential and parallel exploration
// engines over generated programs and interrupt windows: the execution
// trees must match node for node and the full power reduction — Best,
// TopK, ISR peak, activity union — must agree exactly. Budget
// exhaustion must produce the identical error. Snapshot double-frees
// are caught as a side effect: the free pool panics on a repeated put,
// and a pooled snapshot panics on Restore/CapturePortableAt (use after
// free), either of which fails the fuzz run; fuzzPoolInvariants then
// asserts the pool and copy-on-write invariants explicitly on the
// fuzzed program's own state.
//
// The corpus entry layout: nIn selects 1-3 symbolic input words, t1/t2
// the two branch thresholds, lat/width the interrupt arrival window,
// workers the parallel worker count (1-4), useIRQ switches between the
// branchy arithmetic program and the interrupt-driven idle program.
func FuzzExplore(f *testing.F) {
	f.Add(uint8(2), uint8(40), uint8(60), uint8(6), uint8(8), uint8(2), false)
	f.Add(uint8(3), uint8(50), uint8(50), uint8(6), uint8(8), uint8(3), false)
	f.Add(uint8(1), uint8(0), uint8(255), uint8(3), uint8(1), uint8(4), true)
	f.Add(uint8(2), uint8(7), uint8(130), uint8(15), uint8(11), uint8(2), true)
	f.Add(uint8(1), uint8(200), uint8(10), uint8(1), uint8(0), uint8(1), false)

	f.Fuzz(func(t *testing.T, nIn, t1, t2, lat, width, workers uint8, useIRQ bool) {
		n := int(nIn)%3 + 1
		w := int(workers)%4 + 1
		var src string
		var irq *periph.Config
		if useIRQ {
			src = irqIdleProg
			minLat := int(lat)%20 + 1
			cfg := periph.Config{MinLatency: minLat, MaxLatency: minLat + int(width)%12}
			irq = &cfg
		} else {
			src = fmt.Sprintf(`
.org 0x0200
vals: .input %d
.org 0xf000
.entry main
main:
    mov #vals, r6
    mov #%d, r7
    clr r8
lp: mov @r6+, r4
    cmp #%d, r4
    jl skip1
    inc r8
skip1:
    cmp #%d, r4
    jeq skip2
    add r4, r8
skip2:
    dec r7
    jnz lp
`, n, n, int(t1), int(t2)) + haltSeq
		}
		img, err := isa.Assemble("fuzz", src)
		if err != nil {
			t.Fatalf("assemble: %v", err)
		}
		opts := Options{MaxCycles: 200_000, MaxNodes: 2_000}
		model := power.Model{Lib: cell.ULP65(), ClockHz: 100e6}
		const k = 4

		newSys := func() *ulp430.System {
			sys, err := ulp430.NewSystem(sharedCPU(t), cell.ULP65(), img, ulp430.SymbolicInputs, nil)
			if err != nil {
				t.Fatal(err)
			}
			if irq != nil {
				sys.EnableInterrupts(*irq)
			}
			return sys
		}

		seqSys := newSys()
		seqSink := power.NewSink(seqSys, model, img, k)
		seqTree, seqErr := Explore(seqSys, seqSink, opts)

		shared := power.NewShared()
		sinks := make([]*power.Sink, w)
		pres, parErr := ExploreParallel(ParallelOptions{
			Options: opts,
			Workers: w,
			NewWorker: func(worker int) (*ulp430.System, WorkerSink, error) {
				wsys := newSys()
				wsink := power.NewSink(wsys, model, img, k)
				wsink.EnableTasks(shared)
				sinks[worker] = wsink
				return wsys, wsink, nil
			},
		})

		if seqErr != nil {
			if parErr == nil || parErr.Error() != seqErr.Error() {
				t.Fatalf("error mismatch:\nseq: %v\npar: %v", seqErr, parErr)
			}
			return
		}
		if parErr != nil {
			t.Fatalf("parallel failed where sequential succeeded: %v", parErr)
		}

		got := pres.Tree
		if len(seqTree.Nodes) != len(got.Nodes) || seqTree.Paths != got.Paths ||
			seqTree.Cycles != got.Cycles || seqTree.IRQForks() != got.IRQForks() {
			t.Fatalf("tree mismatch: nodes %d/%d paths %d/%d cycles %d/%d irqForks %d/%d",
				len(seqTree.Nodes), len(got.Nodes), seqTree.Paths, got.Paths,
				seqTree.Cycles, got.Cycles, seqTree.IRQForks(), got.IRQForks())
		}

		best, topK, isrPeak, union := power.MergeParallel(sinks, k, pres.NodeID)
		if !reflect.DeepEqual(seqSink.Best, best) {
			t.Fatalf("Best mismatch:\nseq: %+v\npar: %+v", seqSink.Best, best)
		}
		if isrPeak != seqSink.ISRPeakMW {
			t.Fatalf("ISRPeakMW mismatch: seq %v par %v", seqSink.ISRPeakMW, isrPeak)
		}
		stripCells := func(ps []power.Peak) []power.Peak {
			out := make([]power.Peak, len(ps))
			for i, p := range ps {
				p.ActiveCells = nil
				out[i] = p
			}
			return out
		}
		if !reflect.DeepEqual(stripCells(seqSink.TopK), stripCells(topK)) {
			t.Fatalf("TopK mismatch:\nseq: %+v\npar: %+v", stripCells(seqSink.TopK), stripCells(topK))
		}
		if !reflect.DeepEqual(seqSink.UnionActive, union) {
			t.Fatalf("activity union mismatch")
		}

		fuzzPoolInvariants(t, newSys())
	})
}

// fuzzPoolInvariants drives the fork-snapshot free pool directly on the
// fuzzed program's state, asserting the copy-on-write invariants the
// explorations above rely on implicitly:
//
//   - interleaved delta captures restore independently (a recycled
//     snapshot must not share plane words with a live capture),
//   - a snapshot returned to the pool refuses Restore (use after free),
//   - a repeated put panics (double free),
//   - a re-taken snapshot is fully usable again.
func fuzzPoolInvariants(t *testing.T, sys *ulp430.System) {
	t.Helper()
	sys.Reset()
	roll := &ulp430.SysSnapshot{}
	// step advances one cycle, resolving any symbolic fork the way the
	// engine does (restore + force not-taken) so the state stays valid.
	step := func() {
		if sys.Halted() {
			return
		}
		sys.SnapshotInto(roll)
		sys.Step()
		if sys.JumpCondUnknown() {
			sys.Restore(roll)
			sys.ForceBranch(false)
			sys.Step()
			sys.ClearForce()
		} else if sys.IRQCondUnknown() {
			sys.Restore(roll)
			sys.ForceIRQ(false)
			sys.Step()
			sys.ClearForce()
		}
	}
	for i := 0; i < 40; i++ {
		step()
	}

	var pool snapPool
	a := pool.take()
	sys.CaptureFork(a)
	hashA, hashA2 := sys.StateKey()
	step()
	b := pool.take()
	sys.CaptureFork(b)
	hashB, hashB2 := sys.StateKey()

	sys.Restore(a)
	if lo, hi := sys.StateKey(); lo != hashA || hi != hashA2 {
		t.Fatal("pool: restoring capture A did not reproduce its state")
	}
	sys.Restore(b)
	if lo, hi := sys.StateKey(); lo != hashB || hi != hashB2 {
		t.Fatal("pool: restoring capture B after A corrupted B (aliased snapshots)")
	}

	// Recycle A; the reissued snapshot must capture fresh state without
	// disturbing the still-live B.
	pool.put(a)
	c := pool.take()
	step()
	sys.CaptureFork(c)
	sys.Restore(b)
	if lo, hi := sys.StateKey(); lo != hashB || hi != hashB2 {
		t.Fatal("pool: capture into a recycled snapshot corrupted a live capture")
	}
	sys.Restore(c)

	pool.put(b)
	mustPanic(t, "double free", func() { pool.put(b) })
	mustPanic(t, "use after free", func() { sys.Restore(b) })

	// Taking B back clears the pooled mark; it must be fully usable.
	d := pool.take()
	if d != b {
		t.Fatal("pool: expected LIFO reuse of the freed snapshot")
	}
	sys.CaptureFork(d)
	sys.Restore(d)
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("pool: %s was not caught", what)
		}
	}()
	fn()
}
