// Package faultfs abstracts the filesystem operations the durability
// layer performs (the report CAS, the job store, the exploration
// checkpoint journal) behind a small interface with a fault-injecting
// implementation, so crash-safety code is tested against injected
// write/sync/read failures instead of hoping the happy path generalizes.
//
// Two implementations are provided: OS, the passthrough used in
// production, and Hooked, which consults a caller-supplied hook before
// every operation — returning an error from the hook makes that one
// operation fail exactly as a full disk, a torn write, or an unreadable
// sector would. Fault schedules (fail the Nth write, fail every sync,
// fail reads of one path) are plain closures over the hook.
package faultfs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Op identifies the operation class a hook is consulted for.
type Op string

// Operation classes passed to a Hooked hook.
const (
	OpRead   Op = "read"   // ReadFile, ReadDir
	OpWrite  Op = "write"  // WriteFile, appends through File.Write
	OpSync   Op = "sync"   // File.Sync
	OpRename Op = "rename" // Rename (the atomic-commit step)
	OpRemove Op = "remove" // Remove
	OpOpen   Op = "open"   // OpenAppend, Create
	OpMkdir  Op = "mkdir"  // MkdirAll
)

// File is the append-handle subset the journal writers need.
type File interface {
	io.Writer
	// Sync flushes the file to stable storage.
	Sync() error
	io.Closer
}

// FS is the filesystem surface the durability layer uses. All paths are
// regular OS paths; implementations must be safe for concurrent use.
type FS interface {
	// ReadFile returns the full content of a file.
	ReadFile(name string) ([]byte, error)
	// WriteFile writes data to a file, creating or truncating it.
	WriteFile(name string, data []byte, perm os.FileMode) error
	// OpenAppend opens (creating if absent) a file for appending.
	OpenAppend(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(name string, perm os.FileMode) error
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
}

// OS is the passthrough production filesystem.
type OS struct{}

func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (OS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (OS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}
func (OS) Rename(oldname, newname string) error         { return os.Rename(oldname, newname) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) MkdirAll(name string, perm os.FileMode) error { return os.MkdirAll(name, perm) }
func (OS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }

// Hook decides whether an operation fails: return a non-nil error to
// inject it, nil to let the operation through to the base filesystem.
// Hooks may be called concurrently.
type Hook func(op Op, path string) error

// Hooked wraps a base FS with fault injection. The zero Base means OS.
type Hooked struct {
	Base FS
	// Hook is consulted before every operation; nil injects nothing.
	Hook Hook
}

func (h Hooked) base() FS {
	if h.Base != nil {
		return h.Base
	}
	return OS{}
}

func (h Hooked) check(op Op, path string) error {
	if h.Hook == nil {
		return nil
	}
	return h.Hook(op, path)
}

func (h Hooked) ReadFile(name string) ([]byte, error) {
	if err := h.check(OpRead, name); err != nil {
		return nil, err
	}
	return h.base().ReadFile(name)
}

func (h Hooked) WriteFile(name string, data []byte, perm os.FileMode) error {
	if err := h.check(OpWrite, name); err != nil {
		return err
	}
	return h.base().WriteFile(name, data, perm)
}

func (h Hooked) OpenAppend(name string) (File, error) {
	if err := h.check(OpOpen, name); err != nil {
		return nil, err
	}
	f, err := h.base().OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return hookedFile{f: f, name: name, h: h}, nil
}

func (h Hooked) Rename(oldname, newname string) error {
	if err := h.check(OpRename, newname); err != nil {
		return err
	}
	return h.base().Rename(oldname, newname)
}

func (h Hooked) Remove(name string) error {
	if err := h.check(OpRemove, name); err != nil {
		return err
	}
	return h.base().Remove(name)
}

func (h Hooked) MkdirAll(name string, perm os.FileMode) error {
	if err := h.check(OpMkdir, name); err != nil {
		return err
	}
	return h.base().MkdirAll(name, perm)
}

func (h Hooked) ReadDir(name string) ([]os.DirEntry, error) {
	if err := h.check(OpRead, name); err != nil {
		return nil, err
	}
	return h.base().ReadDir(name)
}

type hookedFile struct {
	f    File
	name string
	h    Hooked
}

func (f hookedFile) Write(p []byte) (int, error) {
	if err := f.h.check(OpWrite, f.name); err != nil {
		return 0, err
	}
	return f.f.Write(p)
}

func (f hookedFile) Sync() error {
	if err := f.h.check(OpSync, f.name); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f hookedFile) Close() error { return f.f.Close() }

// Counter is a concurrency-safe operation counter for building "fail the
// Nth operation" schedules.
type Counter struct {
	mu sync.Mutex
	n  map[Op]int
}

// Next increments and returns the per-op counter (first call returns 1).
func (c *Counter) Next(op Op) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n == nil {
		c.n = make(map[Op]int)
	}
	c.n[op]++
	return c.n[op]
}

// tmpSeq disambiguates concurrent atomic writes to the same target from
// one process; the pid disambiguates across processes sharing a store.
var tmpSeq atomic.Uint64

// WriteAtomic writes data to name via a temp file in the same directory
// and a rename — the commit point is the rename, so a crash (or an
// injected fault) mid-write never leaves a half-written name, only a
// leftover temp file. The shared helper for every atomic writer in the
// durability layer.
func WriteAtomic(fs FS, name string, data []byte, perm os.FileMode) error {
	tmp := fmt.Sprintf("%s.%d.%d.tmp", name, os.Getpid(), tmpSeq.Add(1))
	if err := fs.WriteFile(tmp, data, perm); err != nil {
		return err
	}
	if err := fs.Rename(tmp, name); err != nil {
		// Best effort: do not leave the temp file behind on a failed
		// commit (ignore a second fault here — the temp is inert).
		_ = fs.Remove(tmp)
		return err
	}
	return nil
}

// RemoveAll removes name and its children through fs primitives (ReadDir
// + Remove), so injected faults see every deletion. Missing files are
// not errors.
func RemoveAll(fs FS, name string) error {
	entries, err := fs.ReadDir(name)
	if err != nil {
		// Not a directory (or absent): try a plain remove.
		if rerr := fs.Remove(name); rerr != nil && !os.IsNotExist(rerr) {
			return rerr
		}
		return nil
	}
	for _, e := range entries {
		p := filepath.Join(name, e.Name())
		if e.IsDir() {
			if err := RemoveAll(fs, p); err != nil {
				return err
			}
		} else if err := fs.Remove(p); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	if err := fs.Remove(name); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
