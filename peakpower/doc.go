// Package peakpower is the public entry point for hardware–software
// co-analysis: it takes an application binary and the gate-level ULP430
// processor design and returns guaranteed, input-independent,
// application-specific peak power and peak energy requirements — the
// headline contribution of "Determining Application-specific Peak Power
// and Energy Requirements for Ultra-low Power Processors" (ASPLOS 2017).
//
// # Quickstart
//
//	a, err := peakpower.New()            // build the ULP430 once
//	if err != nil { ... }
//	res, err := a.Analyze(ctx, "app", src)
//	if err != nil { ... }
//	fmt.Printf("peak power %.3f mW, peak energy %.3e J\n",
//		res.PeakPowerMW, res.PeakEnergyJ)
//
// # Options
//
// New accepts functional options establishing the analyzer's defaults,
// and every Analyze* method accepts the same options as per-call
// overrides:
//
//   - WithLibrary selects the standard-cell library (default ULP65).
//   - WithClockHz sets the operating clock (default 100 MHz).
//   - WithMaxCycles / WithMaxNodes bound the symbolic exploration.
//   - WithCOI sets how many cycles of interest are attributed.
//   - WithProgress registers a progress callback for long analyses.
//   - WithWorkers sets the AnalyzeAll worker-pool size.
//   - WithEngine selects the gate-level evaluation engine.
//
// # Engines
//
// Analyses default to EnginePacked, the bit-packed levelized gate
// engine (64 nets per word operation, dirty-level skipping — see
// PERFORMANCE.md). EngineScalar is the original one-gate-at-a-time
// implementation, retained as the verification oracle: differential
// tests hold the two engines to identical explorations, toggle sets,
// and bounds on the full benchmark suite, so EngineScalar exists to
// cross-check results and bisect suspected engine bugs, not for
// throughput. Result.Engine records which engine produced a result.
//
// # Error taxonomy
//
// Failures are classified by sentinel errors matchable with errors.Is:
// ErrAssemble (the source did not assemble), ErrUnknownBench (no such
// built-in benchmark), ErrCycleBudget and ErrNodeBudget (symbolic
// exploration exceeded its configured budget). Cancellation and
// deadlines surface as errors wrapping context.Canceled or
// context.DeadlineExceeded from the caller's context.
//
// # Concurrency
//
// An Analyzer is safe for concurrent use: the gate-level netlist is
// built once, is immutable afterwards, and every analysis simulates on
// its own private machine state. Run any number of Analyze* calls from
// different goroutines against one shared Analyzer, or use AnalyzeAll,
// which batches applications through a bounded worker pool sharing the
// one-time netlist build.
package peakpower
