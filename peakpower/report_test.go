package peakpower

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Regenerate the golden reports after an intentional schema or analysis
// change with:
//
//	go test ./peakpower -run TestReportGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden report files")

// goldenBenches are the benchmarks pinned by golden files: mult
// exercises the high-power multiplier, tea8 the shift/XOR-only
// minimal-variation kernel, adcSample the interrupt path (schema v2
// Interrupts section, in_isr COI attribution, symbolic arrival forks),
// and sensorDuty the widest interrupt-forking tree — the main workload
// the parallel-exploration determinism suite replays.
var goldenBenches = []string{"mult", "tea8", "adcSample", "sensorDuty"}

// marshalIndented renders a report exactly as the golden files store it.
func marshalIndented(t *testing.T, rep *Report) []byte {
	t.Helper()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// goldenReport analyzes one benchmark with the fixed options the golden
// files were generated with.
func goldenReport(t *testing.T, name string) *Report {
	t.Helper()
	res, err := analyzer(t).AnalyzeBench(context.Background(), name, WithCOI(4))
	if err != nil {
		t.Fatal(err)
	}
	return &res.Report
}

// TestReportGolden pins the Report wire format: any schema change — a
// renamed field, a reordered struct, a numeric drift in the analysis —
// shows up as a golden diff and must be accompanied by a SchemaVersion
// decision.
func TestReportGolden(t *testing.T) {
	for _, name := range goldenBenches {
		t.Run(name, func(t *testing.T) {
			rep := goldenReport(t, name)
			got := marshalIndented(t, rep)
			path := filepath.Join("testdata", "report_"+name+".golden.json")
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update-golden)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("report for %s diverged from golden file %s;\nif the change is intentional, regenerate with -update-golden and review the diff", name, path)
			}
		})
	}
}

// TestReportRoundTrip asserts lossless, byte-identical serialization:
// marshal → unmarshal → re-marshal produces the original bytes, and the
// content hash survives the trip.
func TestReportRoundTrip(t *testing.T) {
	for _, name := range goldenBenches {
		t.Run(name, func(t *testing.T) {
			rep := goldenReport(t, name)
			first, err := rep.MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}
			var back Report
			if err := back.UnmarshalJSON(first); err != nil {
				t.Fatal(err)
			}
			second, err := back.MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("re-marshal not byte-identical:\nfirst:  %.300s\nsecond: %.300s", first, second)
			}
			if err := back.VerifyHash(); err != nil {
				t.Fatal(err)
			}
			dec, err := DecodeReport(first)
			if err != nil {
				t.Fatal(err)
			}
			if dec.App != rep.App || dec.PeakPowerMW != rep.PeakPowerMW {
				t.Fatalf("decode lost data: %+v", dec)
			}
		})
	}
}

func TestReportSealAndVerify(t *testing.T) {
	rep := goldenReport(t, "tea8")
	if rep.Hash == "" {
		t.Fatal("analysis must return a sealed report")
	}
	if err := rep.VerifyHash(); err != nil {
		t.Fatal(err)
	}
	// Deterministic: re-sealing computes the same content address.
	was := rep.Hash
	rep.Seal()
	if rep.Hash != was {
		t.Fatalf("re-seal changed hash: %s -> %s", was, rep.Hash)
	}
	// Tampering is detected.
	rep.PeakPowerMW *= 1.01
	if err := rep.VerifyHash(); err == nil {
		t.Fatal("tampered report must fail hash verification")
	}

	// Unsupported schema versions are rejected.
	rep = goldenReport(t, "tea8")
	rep.Schema = SchemaVersion + 1
	rep.Seal()
	data, err := rep.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeReport(data); err == nil {
		t.Fatal("future schema must be rejected")
	}
}

// TestReportResultConsistency pins the compatibility layer: the promoted
// Report fields and the live Result handles describe the same analysis.
func TestReportResultConsistency(t *testing.T) {
	res, err := analyzer(t).AnalyzeBench(context.Background(), "mult")
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Target != "ulp430" || res.Report.Schema != SchemaVersion {
		t.Fatalf("report identity: %+v", res.Report)
	}
	if len(res.COIs) != len(res.Peaks) {
		t.Fatalf("resolved COIs %d != raw peaks %d", len(res.COIs), len(res.Peaks))
	}
	for i, c := range res.COIs {
		if c.PowerMW != res.Peaks[i].PowerMW || c.Cycle != res.Peaks[i].PathPos {
			t.Fatalf("COI %d disagrees with raw peak: %+v vs %+v", i, c, res.Peaks[i])
		}
	}
	active := 0
	for _, a := range res.UnionActive {
		if a {
			active++
		}
	}
	if res.ActiveGates != active || res.TotalGates != len(res.UnionActive) {
		t.Fatalf("gate counts: %d/%d vs union %d/%d", res.ActiveGates, res.TotalGates, active, len(res.UnionActive))
	}
	sum := 0
	for _, n := range res.ActiveByModule {
		sum += n
	}
	if sum != active {
		t.Fatalf("ActiveByModule sums to %d, want %d", sum, active)
	}
}
