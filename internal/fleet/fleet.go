// Package fleet distributes one symbolic exploration across a fleet of
// peakpowerd replicas.
//
// A COORDINATOR (peakpowerd -coordinator) owns each job: it opens the
// job's checkpoint journal as a symx.RemoteQueue, leases pending
// exploration tasks to registered workers over a small HTTP protocol,
// answers fork-point claims (journaling newly published tasks before
// acknowledging them), and accepts first-wins completions. WORKERS
// (peakpowerd -join <coordinator-url>) poll for leases, rebuild the
// job's analysis plan from the leased spec, execute each task on a
// private System/sink pair with symx.RunRemoteTask, and stream claims
// and results back. When every live task has completed, the journal is
// a complete exploration and the coordinator seals the Report through
// the ordinary checkpoint-resume path — which is why a fleet-executed
// job's sealed Report is byte-identical to a single-node run at any
// fleet size and any task interleaving (the PR 7/8 determinism
// contract, extended across processes).
//
// Protocol (all POST, JSON bodies):
//
//	/v1/fleet/register   join the fleet; returns the lease TTL
//	/v1/fleet/lease      request work; 204 when none is pending
//	/v1/fleet/claim      claim a fork point, publishing its taken child
//	/v1/fleet/complete   deliver a task result (or a task-fatal error)
//	/v1/fleet/heartbeat  extend a lease; 410 when the lease was lost
//
// Fault tolerance: a worker that stops heartbeating loses its lease and
// the task is re-issued; because tasks are deterministic and claims are
// idempotent on (parent task, branch seq), a zombie incarnation and its
// replacement receive identical child identities and the first
// completion wins. 410 Gone tells a worker its task is stale (lease
// expired and re-issued past it, or the coordinator restarted); the
// worker abandons the task silently. A restarted coordinator reopens
// the journal and re-issues exactly the live pending tasks.
package fleet

import (
	"context"
	"encoding/json"
	"errors"

	"repro/internal/symx"
	"repro/peakpower"
)

// PlanFunc resolves a job's journaled request body into an executable
// exploration plan. Both sides supply one: the coordinator to open the
// job's queue, each worker to build private Systems and sinks for the
// job's tasks. The two must resolve identically (same target registry,
// same option translation) or the journal tags will disagree and the
// worker's exploration would diverge from the coordinator's.
type PlanFunc func(ctx context.Context, spec json.RawMessage) (*peakpower.ExplorePlan, error)

// Error kinds carried across the wire so the coordinator can rebuild an
// errors.Is-matchable error from a worker's task failure.
const (
	kindCycleBudget = "cycle_budget"
	kindNodeBudget  = "node_budget"
	kindCanceled    = "canceled"
	kindDeadline    = "deadline"
)

func errKind(err error) string {
	switch {
	case errors.Is(err, symx.ErrCycleBudget):
		return kindCycleBudget
	case errors.Is(err, symx.ErrNodeBudget):
		return kindNodeBudget
	case errors.Is(err, context.DeadlineExceeded):
		return kindDeadline
	case errors.Is(err, context.Canceled):
		return kindCanceled
	}
	return ""
}

// remoteError reattaches a sentinel to an error that crossed the wire
// as (text, kind), preserving both the original text and errors.Is.
type remoteError struct {
	msg  string
	kind error
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Unwrap() error { return e.kind }

func wireError(msg, kind string) error {
	var sentinel error
	switch kind {
	case kindCycleBudget:
		sentinel = symx.ErrCycleBudget
	case kindNodeBudget:
		sentinel = symx.ErrNodeBudget
	case kindDeadline:
		sentinel = context.DeadlineExceeded
	case kindCanceled:
		sentinel = context.Canceled
	default:
		return errors.New(msg)
	}
	return &remoteError{msg: msg, kind: sentinel}
}
