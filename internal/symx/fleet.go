// Cross-process work distribution for checkpointed parallel exploration.
//
// The checkpoint journal (checkpoint.go) already makes one exploration a
// stream of portable task records: in checkpoint mode every fork is
// published, so a task is exactly one linear segment chain from a
// ulp430.PortableState to one terminal, identified before any work
// happens. This file exposes that task stream over a process boundary:
//
//   - RemoteTask / RemoteResult are wire-encodable forms of the journal's
//     pub and done records (state bytes gzipped EncodePortable, seeds and
//     payloads pre-marshaled through the run's CheckpointCodec).
//   - RunRemoteTask executes one task on a remote worker's private System
//     and WorkerSink, mirroring the in-process worker.runTask loop in
//     checkpoint mode statement for statement — except that fork claims go
//     through a RemoteClaimer RPC instead of the in-process claim table,
//     and newly discovered fork points travel back inside the claim call.
//   - RemoteQueue is the coordinator side: it owns the journal (through
//     the ordinary Checkpointer), leases pending tasks out, registers
//     claims idempotently, and accepts first-wins completions. When every
//     live task is done the journal is a COMPLETE exploration, and the
//     ordinary resume path (ExploreParallel on the same journal) replays
//     it without executing anything — assembling the canonical tree and
//     candidate streams exactly as if the run had been local.
//
// Fault tolerance falls out of the claim discipline. A task re-issued
// after a lease expiry re-executes deterministically, so its claims
// arrive with the same (key, parent, seq) coordinates and are answered
// with the same child identities — a zombie first incarnation and its
// replacement produce interchangeable results, and the first completion
// wins. Claims from a task the current coordinator life never leased are
// rejected with ErrStaleTask: accepting them could let an unreachable
// subtree shadow a live claim key, wedging the final assembly.
package symx

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/ulp430"
)

// Exported budget-error constructors: the coordinator reconstructs a
// worker's budget failure with the engine's exact error text so the
// fleet-executed job fails byte-identically to a local run.
func CycleBudgetError(max int) error { return cycleBudgetErr(max) }

// NodeBudgetError is the node-budget counterpart of CycleBudgetError.
func NodeBudgetError(max int) error { return nodeBudgetErr(max) }

// ErrStaleTask rejects a fleet RPC referring to a task the current
// coordinator life does not consider leased — a zombie worker holding
// work from before a coordinator restart. The worker must abandon the
// task; its live incarnation is re-issued from the journal.
var ErrStaleTask = errors.New("symx: stale fleet task")

// RemoteForces is the wire form of the accumulated fork forces a task's
// first cycle is re-stepped under.
type RemoteForces struct {
	BrEn   bool `json:"bre,omitempty"`
	BrVal  bool `json:"brv,omitempty"`
	IrqEn  bool `json:"ire,omitempty"`
	IrqVal bool `json:"irv,omitempty"`
}

func (f RemoteForces) forces() forkForces {
	return forkForces{brEn: f.BrEn, brVal: f.BrVal, irqEn: f.IrqEn, irqVal: f.IrqVal}
}

func wireForces(f forkForces) RemoteForces {
	return RemoteForces{BrEn: f.brEn, BrVal: f.brVal, IrqEn: f.irqEn, IrqVal: f.irqVal}
}

// RemoteTask is one leased unit of exploration work — the wire form of a
// journal pub record. State is the gzipped ulp430.EncodePortable start
// state (empty for the root task, which resets instead); Seed is the
// sink seed marshaled through the run's CheckpointCodec.
type RemoteTask struct {
	ID      int          `json:"id"`
	BasePos int          `json:"base,omitempty"`
	Forces  RemoteForces `json:"forces"`
	Seed    []byte       `json:"seed,omitempty"`
	State   []byte       `json:"state,omitempty"`
}

// RemoteNode is one segment of a completed task's chain — the wire form
// of a journal done record's ckptNode, payload pre-marshaled through the
// codec.
type RemoteNode struct {
	Len         int    `json:"len"`
	Kind        int    `json:"kind"`
	IRQ         bool   `json:"irq,omitempty"`
	PC          uint16 `json:"pc,omitempty"`
	Key         uint64 `json:"key,omitempty"`
	Key2        uint64 `json:"key2,omitempty"` // ForkKey.Hi (Key is .Lo)
	StreamStart int    `json:"ss,omitempty"`
	Payload     []byte `json:"data,omitempty"`
}

// RemoteResult is a completed task: its segment chain in creation order,
// the IDs of the tasks it published (one per branch, in branch order),
// its simulated cycle count, and the sink's per-task observation blob.
type RemoteResult struct {
	Cycles int          `json:"cycles"`
	Nodes  []RemoteNode `json:"nodes"`
	Kids   []int        `json:"kids,omitempty"`
	Sink   []byte       `json:"sink,omitempty"`
}

// RemoteClaim answers a fork-point claim: whether the claiming task owns
// the subtree (and must keep exploring its not-taken direction), and the
// identity assigned to the published taken-direction child when it does.
type RemoteClaim struct {
	Won     bool `json:"won"`
	ChildID int  `json:"child_id,omitempty"`
}

// RemoteClaimer is the worker's view of the coordinator's claim table:
// claim fork key on behalf of task parent's seq-th chain segment,
// shipping the taken-direction child task for publication if the claim
// wins. Implementations must be idempotent on (parent, seq) — a
// re-executed task incarnation reaches identical forks and must receive
// identical child identities.
type RemoteClaimer interface {
	Claim(key ForkKey, parent, seq int, child RemoteTask) (RemoteClaim, error)
}

// RunRemoteTask executes one leased task to its terminal, mirroring the
// in-process checkpoint-mode worker loop: a linear segment chain (every
// fork is either claimed — chain continues down the not-taken direction,
// taken direction published via the claimer — or merged, ending the
// task). baseCycles/baseNodes are the coordinator's committed totals at
// lease time; they make the budget guards conservative (a trip implies
// the true total exceeds the cap — the coordinator's completion-time
// check is authoritative).
func RunRemoteTask(sys *ulp430.System, sink WorkerSink, opts Options, codec CheckpointCodec, t RemoteTask, claimer RemoteClaimer, baseCycles, baseNodes int64) (*RemoteResult, error) {
	opts = opts.withDefaults()

	if len(t.State) > 0 {
		raw, err := gunzipBytes(t.State)
		if err != nil {
			return nil, fmt.Errorf("symx: remote task %d state: %w", t.ID, err)
		}
		st, err := ulp430.DecodePortable(raw)
		if err != nil {
			return nil, fmt.Errorf("symx: remote task %d state: %w", t.ID, err)
		}
		sys.RestorePortable(st)
	} else {
		sys.Reset()
	}
	seed, err := codec.UnmarshalSeed(t.Seed)
	if err != nil {
		return nil, fmt.Errorf("symx: remote task %d seed: %w", t.ID, err)
	}
	sink.BeginTask(t.ID, t.BasePos, seed)
	defer sink.EndTask()

	marshaler, ok := sink.(TaskMarshaler)
	if !ok {
		return nil, fmt.Errorf("symx: remote tasks require the sink to implement TaskMarshaler (%T does not)", sink)
	}

	var (
		nodes      []*Node
		kids       []int
		stream     int
		taskCycles int
		nextCancel = cancelCheckEvery
	)
	newNode := func() *Node {
		n := &Node{task: t.ID, streamStart: stream, seq: len(nodes)}
		nodes = append(nodes, n)
		return n
	}
	cur := newNode()
	segStart := t.BasePos
	pending := t.Forces.forces()
	roll := &ulp430.SysSnapshot{}
	done := false

	finishSegment := func(kind NodeKind) {
		cur.Kind = kind
		cur.Len = sink.Pos() - segStart
		cur.Data = sink.Segment(segStart)
	}
	applyForces := func() {
		if pending.brEn {
			sys.ForceBranch(pending.brVal)
		}
		if pending.irqEn {
			sys.ForceIRQ(pending.irqVal)
		}
	}

outer:
	for !done {
		if err := sys.Err(); err != nil {
			return nil, err
		}
		if opts.Ctx != nil && taskCycles >= nextCancel {
			nextCancel = taskCycles + cancelCheckEvery
			if err := opts.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("symx: exploration aborted after %d cycles: %w",
					baseCycles+int64(taskCycles), err)
			}
		}
		if sys.Halted() {
			finishSegment(KindEnd)
			break
		}
		// Conservative budget guards (see the function comment): committed
		// base plus own work, ignoring in-flight peers.
		if baseCycles+int64(taskCycles) > int64(opts.MaxCycles) {
			return nil, cycleBudgetErr(opts.MaxCycles)
		}
		if baseNodes+int64(len(nodes)) > int64(opts.MaxNodes) {
			return nil, nodeBudgetErr(opts.MaxNodes)
		}

		sys.SnapshotInto(roll)
		rollPos := sink.Pos()

		for {
			applyForces()
			sys.Step()
			sys.ClearForce()
			taskCycles++
			if baseCycles+int64(taskCycles) > int64(opts.MaxCycles) {
				return nil, cycleBudgetErr(opts.MaxCycles)
			}

			isIRQ := false
			if sys.JumpCondUnknown() {
			} else if sys.IRQCondUnknown() {
				isIRQ = true
			} else {
				break // fully resolved
			}

			sys.Restore(roll)
			pc, _ := sys.PC()
			key := stateKey(sys, pending)
			cur.key = key
			cur.BranchPC = pc
			cur.IRQ = isIRQ

			// The taken direction travels inside the claim: if the claim
			// wins, the coordinator assigns it an identity and journals it
			// before answering, so the fork is durable before either
			// direction is explored (the pub-before-done invariant).
			st := &ulp430.PortableState{}
			sys.CapturePortableAt(roll, st)
			seedBytes, err := codec.MarshalSeed(sink.SpawnSeed(rollPos))
			if err != nil {
				return nil, fmt.Errorf("symx: checkpoint seed marshal: %w", err)
			}
			child := RemoteTask{
				BasePos: rollPos,
				Forces:  wireForces(pending.with(isIRQ, true)),
				Seed:    seedBytes,
				State:   gzipBytes(ulp430.EncodePortable(st)),
			}
			cl, err := claimer.Claim(key, t.ID, cur.seq, child)
			if err != nil {
				return nil, err
			}
			if !cl.Won {
				// Someone owns this subtree; the chain ends here.
				// Assembly decides the canonical winner.
				finishSegment(KindMerge)
				done = true
				break outer
			}
			finishSegment(KindBranch)
			kids = append(kids, cl.ChildID)
			sink.NewSegment()
			cur = newNode()
			segStart = rollPos
			pending = pending.with(isIRQ, false)
		}

		sink.OnCycle(sys)
		stream++
		pending = forkForces{}

		if _, known := sys.Sim.PortUint("pc"); !known {
			return nil, fmt.Errorf("symx: PC became X at cycle %d — input-dependent branch target (computed jump/call on input data) is not supported", sys.Sim.Cycle())
		}
	}

	blob, err := marshaler.MarshalTask()
	if err != nil {
		return nil, fmt.Errorf("symx: checkpoint sink marshal: %w", err)
	}
	res := &RemoteResult{Cycles: taskCycles, Kids: kids, Sink: blob}
	res.Nodes = make([]RemoteNode, len(nodes))
	for i, n := range nodes {
		payload, err := codec.MarshalPayload(n.Data)
		if err != nil {
			return nil, fmt.Errorf("symx: checkpoint payload marshal: %w", err)
		}
		res.Nodes[i] = RemoteNode{
			Len: n.Len, Kind: int(n.Kind), IRQ: n.IRQ, PC: n.BranchPC,
			Key: n.key.Lo, Key2: n.key.Hi,
			StreamStart: n.streamStart, Payload: payload,
		}
	}
	return res, nil
}

// writePubWire journals a task publication whose seed and state are
// already wire-encoded (they came off a worker's claim RPC in journal
// encoding).
func (ck *Checkpointer) writePubWire(t *RemoteTask, parent, seq int) {
	ck.append(&ckptRec{
		T: "pub", ID: t.ID, Parent: parent, Seq: seq, BasePos: t.BasePos,
		BrEn: t.Forces.BrEn, BrVal: t.Forces.BrVal,
		IrqEn: t.Forces.IrqEn, IrqVal: t.Forces.IrqVal,
		Seed: t.Seed, State: t.State,
	})
}

// writeDoneWire journals a completed task from its wire result.
func (ck *Checkpointer) writeDoneWire(id int, res *RemoteResult) {
	rec := &ckptRec{T: "done", ID: id, Cycles: res.Cycles, Sink: res.Sink}
	if len(res.Kids) > 0 {
		rec.Kids = append([]int(nil), res.Kids...)
	}
	rec.Nodes = make([]ckptNode, len(res.Nodes))
	for i, n := range res.Nodes {
		rec.Nodes[i] = ckptNode{
			Len: n.Len, Kind: n.Kind, IRQ: n.IRQ, PC: n.PC,
			Key: n.Key, Key2: n.Key2,
			StreamStart: n.StreamStart, Payload: n.Payload,
		}
	}
	ck.append(rec)
}

type remoteClaimRec struct {
	parent, seq, child int
}

// RemoteQueue is the coordinator's task scheduler for one fleet-executed
// exploration: it owns the checkpoint journal, leases pending tasks to
// workers, answers claims (registering and journaling new tasks), and
// accepts first-wins completions. Opening a queue on a journal left by a
// crashed coordinator resumes it: live pending tasks re-enter the queue
// under their recorded identities and the claim table is rebuilt from
// the live done records, exactly as ExploreParallel's own resume would.
type RemoteQueue struct {
	mu   sync.Mutex
	ck   *Checkpointer
	opts Options

	queue  []int // pending task IDs, FIFO
	tasks  map[int]RemoteTask
	queued map[int]bool
	leased map[int]bool // leased at least once THIS coordinator life
	done   map[int]bool
	claims map[ForkKey]*remoteClaimRec

	live   int // published live tasks not yet completed
	cycles int64
	nodes  int64
	nextID int
	err    error
}

// OpenRemoteQueue opens (or resumes) the journal at cfg.Path and returns
// the coordinator-side scheduler for it. opts must be the exploration
// options the final local seal will run under (the budgets are enforced
// against them). Close the queue before sealing: the seal re-opens the
// journal through the ordinary checkpoint resume path.
func OpenRemoteQueue(cfg CheckpointConfig, opts Options) (*RemoteQueue, error) {
	opts = opts.withDefaults()
	ck := NewCheckpointer(cfg)
	rs, err := ck.open()
	if err != nil {
		return nil, err
	}
	q := &RemoteQueue{
		ck:     ck,
		opts:   opts,
		tasks:  map[int]RemoteTask{},
		queued: map[int]bool{},
		leased: map[int]bool{},
		done:   map[int]bool{},
		claims: map[ForkKey]*remoteClaimRec{},
		cycles: rs.cycles,
		nodes:  int64(len(rs.nodes)),
		nextID: rs.nextID,
	}

	// Rebuild the claim table from the live done chains. The child task of
	// a claim is the one grafted onto the branch node: a done child is
	// reachable through Taken; a pending child is matched through its
	// ptask's branch pointer below.
	byBranch := map[*Node]*remoteClaimRec{}
	for key, n := range rs.claims {
		rec := &remoteClaimRec{parent: n.task, seq: n.seq, child: -1}
		if n.Taken != nil {
			rec.child = n.Taken.task
		}
		q.claims[key] = rec
		byBranch[n] = rec
	}

	for _, t := range rs.pending {
		wt := RemoteTask{
			ID:      t.id,
			BasePos: t.basePos,
			Forces:  wireForces(t.forces),
		}
		seed, err := cfg.Codec.MarshalSeed(t.seed)
		if err != nil {
			return nil, fmt.Errorf("symx: checkpoint seed marshal: %w", err)
		}
		wt.Seed = seed
		if t.state != nil {
			wt.State = gzipBytes(ulp430.EncodePortable(t.state))
		}
		q.enqueue(wt)
		if t.branch != nil {
			if rec := byBranch[t.branch]; rec != nil {
				rec.child = t.id
			}
		}
	}
	for key, rec := range q.claims {
		if rec.child < 0 {
			ck.close()
			return nil, fmt.Errorf("symx: checkpoint journal %s: fork key %#x:%#x has no live child task", cfg.Path, key.Lo, key.Hi)
		}
	}

	if !rs.rootPub {
		root := RemoteTask{ID: q.nextID}
		q.nextID++
		// Reuses the in-process pub writer so a fleet-started journal is
		// indistinguishable from a locally started one.
		if err := ck.writePub(&ptask{id: root.ID}, -1, 0); err != nil {
			ck.close()
			return nil, err
		}
		q.enqueue(root)
	}
	if werr := ck.Err(); werr != nil {
		ck.close()
		return nil, fmt.Errorf("symx: checkpoint journal write: %w", werr)
	}
	return q, nil
}

// enqueue registers a task as live and pending (push back). Caller holds
// no lock during Open; Lease/Claim callers hold q.mu.
func (q *RemoteQueue) enqueue(t RemoteTask) {
	q.tasks[t.ID] = t
	q.queue = append(q.queue, t.ID)
	q.queued[t.ID] = true
	q.live++
}

// Lease hands out the oldest pending task with the committed budget
// totals at lease time. ok is false when nothing is pending (the job may
// still have outstanding leases — check Done).
func (q *RemoteQueue) Lease() (t RemoteTask, baseCycles, baseNodes int64, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil || len(q.queue) == 0 {
		return RemoteTask{}, 0, 0, false
	}
	id := q.queue[0]
	q.queue = q.queue[1:]
	q.queued[id] = false
	q.leased[id] = true
	return q.tasks[id], q.cycles, q.nodes, true
}

// Requeue returns an expired lease's task to the queue front so it is
// re-issued before newer work. Completed or already-queued tasks are
// left alone (the zombie may still win the completion race).
func (q *RemoteQueue) Requeue(id int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil || q.done[id] || q.queued[id] || !q.leased[id] {
		return
	}
	q.queue = append([]int{id}, q.queue...)
	q.queued[id] = true
}

// Claim implements the coordinator side of RemoteClaimer. It is
// idempotent on (parent, seq): a re-executed task incarnation receives
// the identities its predecessor was assigned. A fresh winning claim
// journals and enqueues the child before answering.
func (q *RemoteQueue) Claim(key ForkKey, parent, seq int, child RemoteTask) (RemoteClaim, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil {
		return RemoteClaim{}, q.err
	}
	if !q.leased[parent] {
		return RemoteClaim{}, ErrStaleTask
	}
	if rec, ok := q.claims[key]; ok {
		if rec.parent == parent && rec.seq == seq {
			return RemoteClaim{Won: true, ChildID: rec.child}, nil
		}
		return RemoteClaim{}, nil
	}
	child.ID = q.nextID
	q.nextID++
	q.ck.writePubWire(&child, parent, seq)
	if werr := q.ck.Err(); werr != nil {
		// The journal is the fleet's only result substrate; a write
		// failure must fail the job rather than silently drop a task.
		q.failLocked(fmt.Errorf("symx: checkpoint journal write: %w", werr))
		return RemoteClaim{}, q.err
	}
	q.claims[key] = &remoteClaimRec{parent: parent, seq: seq, child: child.ID}
	q.enqueue(child)
	return RemoteClaim{Won: true, ChildID: child.ID}, nil
}

// Complete records a task's result, first completion wins. Completions
// for tasks this coordinator life never leased are rejected with
// ErrStaleTask (their claims were never registered, so their kids would
// be unreachable); duplicates are ignored with accepted=false. The
// authoritative budget check happens here, BEFORE the done record is
// written — an over-budget journal must never look complete.
func (q *RemoteQueue) Complete(id int, res *RemoteResult) (accepted bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil {
		return false, q.err
	}
	if !q.leased[id] {
		return false, ErrStaleTask
	}
	if q.done[id] {
		return false, nil
	}
	if q.cycles+int64(res.Cycles) > int64(q.opts.MaxCycles) {
		q.failLocked(cycleBudgetErr(q.opts.MaxCycles))
		return false, q.err
	}
	if q.nodes+int64(len(res.Nodes)) > int64(q.opts.MaxNodes) {
		q.failLocked(nodeBudgetErr(q.opts.MaxNodes))
		return false, q.err
	}
	q.ck.writeDoneWire(id, res)
	if werr := q.ck.Err(); werr != nil {
		q.failLocked(fmt.Errorf("symx: checkpoint journal write: %w", werr))
		return false, q.err
	}
	q.done[id] = true
	q.queued[id] = false
	q.cycles += int64(res.Cycles)
	q.nodes += int64(len(res.Nodes))
	q.live--
	return true, nil
}

// Fail latches the first job-level error; subsequent leases and claims
// are refused with it.
func (q *RemoteQueue) Fail(err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.failLocked(err)
}

func (q *RemoteQueue) failLocked(err error) {
	if q.err == nil && err != nil {
		q.err = err
	}
}

// Err returns the latched job-level error, if any.
func (q *RemoteQueue) Err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// Done reports whether every live task has completed (and no error is
// latched): the journal is a complete exploration, ready to seal.
func (q *RemoteQueue) Done() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err == nil && q.live == 0
}

// Stats reports the queue's scheduling state: tasks pending in the
// queue, tasks leased out and not yet completed, and tasks completed.
func (q *RemoteQueue) Stats() (pending, outstanding, completed int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	pending = len(q.queue)
	completed = len(q.done)
	outstanding = q.live - pending
	return pending, outstanding, completed
}

// Close syncs and closes the journal. The queue must not be used after.
func (q *RemoteQueue) Close() {
	q.ck.close()
}
