// Package symx implements Algorithm 1 of the paper: input-independent
// gate activity analysis by symbolic simulation of an application binary
// on the gate-level processor netlist.
//
// The engine drives a ulp430.System in SymbolicInputs mode. Unknown (X)
// values propagate from input regions and port reads; when an X reaches
// the jump-condition logic (the paper's "X propagates to the inputs of
// the program counter"), the engine forks: it rewinds one cycle, forces
// the condition each way in turn, and explores both successors
// depth-first, exactly as Algorithm 1's stack of un-processed execution
// paths. A fork whose pre-branch processor state (flip-flops + RAM) has
// been seen before is not re-explored — the merging rule that lets the
// analysis terminate on input-dependent loops.
//
// The result is the annotated symbolic execution tree: segments of
// straight-line cycles whose per-cycle observations are collected by a
// caller-supplied Sink (package power provides the peak-power sink), and
// branch/end/merge terminals.
//
// Exploration is engineered around the gate engine's snapshot costs:
// the one-cycle-back rolling snapshot reuses one buffer set
// (SnapshotInto), and fork snapshots are recycled through a
// per-exploration pool (CloneInto) the moment the pending direction has
// been restored — with the packed engine's bit-plane state, a fork
// costs a ~3 KB copy and no allocation in steady state.
package symx

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ulp430"
)

// Budget exhaustion sentinels, matchable with errors.Is. Explore wraps
// them with the concrete limit and a diagnosis.
var (
	// ErrCycleBudget reports that exploration exceeded Options.MaxCycles.
	ErrCycleBudget = errors.New("cycle budget exhausted")
	// ErrNodeBudget reports that the tree exceeded Options.MaxNodes.
	ErrNodeBudget = errors.New("node budget exhausted")
)

// Sink observes every simulated cycle along the current path, with
// rewind support for depth-first exploration. Positions are cycle counts
// along the current root-to-here path.
type Sink interface {
	// OnCycle is called after each simulated cycle (the system is settled).
	OnCycle(sys *ulp430.System)
	// Pos returns the current path position (cycles since the root).
	Pos() int
	// Rewind discards observations at positions >= pos.
	Rewind(pos int)
	// Segment extracts the payload of the half-open range [from, Pos()),
	// to be stored on the tree node covering it.
	Segment(from int) interface{}
}

// NodeKind classifies how a tree segment terminates.
type NodeKind uint8

const (
	// KindBranch ends at an input-dependent conditional jump; Taken and
	// NotTaken are its children.
	KindBranch NodeKind = iota
	// KindEnd ends with the application halting.
	KindEnd
	// KindMerge ends because the pre-branch state was already explored;
	// MergeTo is the equivalent branch node.
	KindMerge
)

// Node is one segment of the symbolic execution tree: Len straight-line
// cycles followed by a terminal.
type Node struct {
	// ID is the node's index in Tree.Nodes.
	ID int
	// Len is the number of cycles in the segment.
	Len int
	// Data is the sink payload for this segment.
	Data interface{}
	// Kind is the terminal classification.
	Kind NodeKind
	// BranchPC is the address of the forking jump (KindBranch/KindMerge).
	BranchPC uint16
	// Taken and NotTaken are the successors of a KindBranch node. The
	// branch EXEC cycle itself is the first cycle of each child segment.
	Taken, NotTaken *Node
	// MergeTo is the already-explored branch node (KindMerge).
	MergeTo *Node
}

// Tree is the symbolic execution tree of one application.
type Tree struct {
	// Root is the entry segment (starts at the first cycle after reset).
	Root *Node
	// Nodes lists all segments in creation order.
	Nodes []*Node
	// Paths counts explored terminals (KindEnd + KindMerge).
	Paths int
	// Cycles counts total simulated cycles (including re-simulated fork
	// cycles once per direction).
	Cycles int
}

// Progress is a snapshot of exploration statistics, delivered to the
// Options.Progress hook.
type Progress struct {
	// Cycles is the total simulated cycle count so far.
	Cycles int
	// Nodes is the number of tree segments created so far.
	Nodes int
	// Paths is the number of explored terminals so far.
	Paths int
}

// Options bound the exploration.
type Options struct {
	// MaxCycles caps total simulated cycles (default 2,000,000).
	MaxCycles int
	// MaxNodes caps tree nodes (default 10,000).
	MaxNodes int
	// DisableMerge turns off Algorithm 1's seen-state path merging —
	// exploration degenerates to a pure tree. Only useful for the
	// ablation study quantifying what merging saves; input-dependent
	// wait loops will not terminate with merging disabled.
	DisableMerge bool
	// Ctx, when non-nil, is polled every cancelCheckEvery simulated
	// cycles; once it is canceled or its deadline passes, Explore
	// returns promptly with an error wrapping Ctx.Err() (matchable via
	// errors.Is with context.Canceled / context.DeadlineExceeded).
	Ctx context.Context
	// Progress, when non-nil, is called from the exploring goroutine
	// roughly every ProgressEvery simulated cycles and once when
	// exploration finishes (on success or failure). It must be fast and
	// must not call back into the exploration.
	Progress func(Progress)
	// ProgressEvery is the Progress reporting period in simulated
	// cycles (default 8192).
	ProgressEvery int
}

// cancelCheckEvery is the context-poll period in simulated cycles. One
// simulated cycle costs ~0.25 ms of wall time (a full netlist settle),
// so even a fine period keeps Ctx.Err() invisible in profiles while
// bounding cancellation latency to a few milliseconds.
const cancelCheckEvery = 32

func (o Options) withDefaults() Options {
	if o.MaxCycles == 0 {
		o.MaxCycles = 2_000_000
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 10_000
	}
	if o.ProgressEvery <= 0 {
		o.ProgressEvery = 8192
	}
	return o
}

type pendingFork struct {
	snap    *ulp430.SysSnapshot // state before the branch EXEC cycle
	sinkPos int
	branch  *Node
	dir     bool // direction still to explore
}

// Explore runs Algorithm 1 to completion. The system must be freshly
// created in SymbolicInputs mode; Explore performs the reset itself.
func Explore(sys *ulp430.System, sink Sink, opts Options) (*Tree, error) {
	opts = opts.withDefaults()
	sys.Reset()

	tree := &Tree{}
	if opts.Progress != nil {
		// Final snapshot on every exit path, success or failure.
		defer func() {
			opts.Progress(Progress{Cycles: tree.Cycles, Nodes: len(tree.Nodes), Paths: tree.Paths})
		}()
	}
	nextProgress := opts.ProgressEvery
	nextCancel := cancelCheckEvery
	newNode := func() *Node {
		n := &Node{ID: len(tree.Nodes)}
		tree.Nodes = append(tree.Nodes, n)
		return n
	}
	tree.Root = newNode()

	seen := make(map[uint64]*Node)
	var stack []pendingFork

	cur := tree.Root
	segStart := sink.Pos()

	// Rolling one-cycle-back snapshot (reused buffers, cloned only at
	// fork points).
	roll := &ulp430.SysSnapshot{}

	// Fork snapshots come from a free pool: a pending fork's snapshot is
	// dead as soon as pop has restored it, so its buffers (the packed
	// engine's bit-planes) are recycled for the next fork instead of
	// reallocating per branch. The pool is local to this exploration —
	// per-goroutine state, never shared.
	var snapPool []*ulp430.SysSnapshot
	takeSnap := func() *ulp430.SysSnapshot {
		if n := len(snapPool); n > 0 {
			sn := snapPool[n-1]
			snapPool = snapPool[:n-1]
			return sn
		}
		return &ulp430.SysSnapshot{}
	}

	finishSegment := func(kind NodeKind) {
		cur.Kind = kind
		cur.Len = sink.Pos() - segStart
		cur.Data = sink.Segment(segStart)
	}

	// pop resumes the next pending fork direction, or returns false.
	pop := func() bool {
		for len(stack) > 0 {
			pf := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			sys.Restore(pf.snap)
			snapPool = append(snapPool, pf.snap)
			sink.Rewind(pf.sinkPos)
			sys.ForceBranch(pf.dir)
			sys.Step()
			sys.ClearForce()
			tree.Cycles++
			sink.OnCycle(sys)
			child := newNode()
			if pf.dir {
				pf.branch.Taken = child
			} else {
				pf.branch.NotTaken = child
			}
			cur = child
			segStart = pf.sinkPos
			return true
		}
		return false
	}

	for {
		if err := sys.Err(); err != nil {
			return nil, err
		}
		if opts.Ctx != nil && tree.Cycles >= nextCancel {
			nextCancel = tree.Cycles + cancelCheckEvery
			if err := opts.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("symx: exploration aborted after %d cycles (%d paths): %w",
					tree.Cycles, tree.Paths, err)
			}
		}
		if opts.Progress != nil && tree.Cycles >= nextProgress {
			nextProgress = tree.Cycles + opts.ProgressEvery
			opts.Progress(Progress{Cycles: tree.Cycles, Nodes: len(tree.Nodes), Paths: tree.Paths})
		}
		if sys.Halted() {
			finishSegment(KindEnd)
			tree.Paths++
			if !pop() {
				return tree, nil
			}
			continue
		}
		if tree.Cycles >= opts.MaxCycles {
			return nil, fmt.Errorf("symx: exceeded %d cycles (unbounded exploration? add smaller inputs or check for un-merged input-dependent loops): %w", opts.MaxCycles, ErrCycleBudget)
		}
		if len(tree.Nodes) >= opts.MaxNodes {
			return nil, fmt.Errorf("symx: exceeded %d tree nodes: %w", opts.MaxNodes, ErrNodeBudget)
		}

		sys.SnapshotInto(roll)
		sys.Step()
		tree.Cycles++

		if sys.JumpCondUnknown() {
			// The cycle just simulated is the EXEC of an input-dependent
			// jump: rewind it; this segment terminates at a branch.
			sys.Restore(roll)
			pc, _ := sys.PC()
			key := sys.StateHash()
			if prior, ok := seen[key]; ok && !opts.DisableMerge {
				finishSegment(KindMerge)
				cur.BranchPC = pc
				cur.MergeTo = prior
				tree.Paths++
				if !pop() {
					return tree, nil
				}
				continue
			}
			finishSegment(KindBranch)
			cur.BranchPC = pc
			seen[key] = cur
			branch := cur

			snap := takeSnap()
			roll.CloneInto(snap)
			stack = append(stack, pendingFork{
				snap: snap, sinkPos: sink.Pos(), branch: branch, dir: true,
			})
			// Continue depth-first down the not-taken direction.
			sys.ForceBranch(false)
			sys.Step()
			sys.ClearForce()
			tree.Cycles++
			sink.OnCycle(sys)
			child := newNode()
			branch.NotTaken = child
			cur = child
			segStart = sink.Pos() - 1
			continue
		}

		sink.OnCycle(sys)

		// A fully unknown PC that is not a forkable jump condition means
		// an input-dependent computed branch target — out of scope for
		// the fork rule, and an analysis error rather than silence.
		if _, known := sys.Sim.PortUint("pc"); !known {
			return nil, fmt.Errorf("symx: PC became X at cycle %d — input-dependent branch target (computed jump/call on input data) is not supported", sys.Sim.Cycle())
		}
	}
}

// CountKind returns the number of nodes with the given kind.
func (t *Tree) CountKind(k NodeKind) int {
	n := 0
	for _, nd := range t.Nodes {
		if nd.Kind == k {
			n++
		}
	}
	return n
}

// Walk visits every node (parents before children).
func (t *Tree) Walk(f func(*Node)) {
	var rec func(*Node)
	visited := make(map[int]bool)
	rec = func(n *Node) {
		if n == nil || visited[n.ID] {
			return
		}
		visited[n.ID] = true
		f(n)
		rec(n.NotTaken)
		rec(n.Taken)
	}
	rec(t.Root)
}
