GO ?= go

.PHONY: all build vet test race bench ci clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector — exercises the peakpower
# package's concurrency contract (shared Analyzer, AnalyzeAll pool).
race:
	$(GO) test -race ./...

# The table/figure-regenerating benchmark harness.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

ci: build vet race

clean:
	$(GO) clean ./...
