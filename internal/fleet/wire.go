package fleet

import (
	"encoding/json"

	"repro/internal/symx"
)

// RegisterRequest joins a worker to the fleet. Registration is advisory
// (leases are granted to any worker that asks) but lets /readyz report
// membership and tells the worker the coordinator's lease TTL.
type RegisterRequest struct {
	Worker string `json:"worker"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
}

// LeaseRequest asks for one task to execute.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse grants one task lease. Spec is the job's journaled
// request body, which the worker resolves through its own PlanFunc into
// the System/sink pair the task runs on. BaseCycles/BaseNodes are the
// coordinator's committed budget totals at lease time (see
// symx.RunRemoteTask).
type LeaseResponse struct {
	JobID      string          `json:"job_id"`
	Spec       json.RawMessage `json:"spec"`
	Task       symx.RemoteTask `json:"task"`
	BaseCycles int64           `json:"base_cycles"`
	BaseNodes  int64           `json:"base_nodes"`
	LeaseTTLMS int64           `json:"lease_ttl_ms"`
}

// ClaimRequest claims fork point Key on behalf of task Parent's Seq-th
// chain segment, carrying the taken-direction child task for publication
// if the claim wins. Claims are idempotent on (Parent, Seq).
type ClaimRequest struct {
	Worker string          `json:"worker"`
	JobID  string          `json:"job_id"`
	Key    uint64          `json:"key"`            // symx.ForkKey.Lo
	Key2   uint64          `json:"key2,omitempty"` // symx.ForkKey.Hi
	Parent int             `json:"parent"`
	Seq    int             `json:"seq"`
	Child  symx.RemoteTask `json:"child"`
}

// CompleteRequest delivers a finished task. Exactly one of Result or
// Error is set; ErrKind carries the error's sentinel category so the
// coordinator can rebuild an errors.Is-matchable failure.
type CompleteRequest struct {
	Worker  string             `json:"worker"`
	JobID   string             `json:"job_id"`
	TaskID  int                `json:"task_id"`
	Result  *symx.RemoteResult `json:"result,omitempty"`
	Error   string             `json:"error,omitempty"`
	ErrKind string             `json:"err_kind,omitempty"`
}

// CompleteResponse reports whether the completion was recorded (false
// when a faster incarnation of the task already completed it, or the
// result tripped a job-level failure — either way the worker is done
// with the task).
type CompleteResponse struct {
	Accepted bool `json:"accepted"`
}

// HeartbeatRequest extends a task lease. A 410 response means the lease
// was lost (expired and re-issued, or the coordinator restarted); the
// worker must cancel the task.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	JobID  string `json:"job_id"`
	TaskID int    `json:"task_id"`
}
