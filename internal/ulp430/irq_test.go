package ulp430

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/isa"
	"repro/internal/logic"
	"repro/internal/periph"
	"repro/internal/soc"
)

const irqProg = `
.org 0xf000
.entry main
main:
    mov #0x0A00, r1       ; stack at top of SRAM
    mov #0x0080, &0x0120  ; hold the watchdog
    clr r10
    mov #10, &0x0144      ; TACCR: fire in 10 cycles
    mov #3, &0x0140       ; TACTL: EN|IE
    eint
wait:
    cmp #1, r10
    jnz wait
    mov #1, &0x0126       ; halt with GIE still set
spin: jmp spin
timer_isr:
    inc r10
    reti
adc_isr:
    reti
.org 0xfff8
.word timer_isr
.word adc_isr
`

// TestInterruptEntryAndReturn steps a concrete timer-interrupt run cycle
// by cycle and checks the hardware entry/return protocol: the entry
// sequence pushes the continuation PC and SR (with GIE still set in the
// pushed copy), clears GIE for the handler, dispatches through the
// vector table, and RETI restores SR and PC with the stack pointer back
// where it started.
func TestInterruptEntryAndReturn(t *testing.T) {
	img, err := isa.Assemble("irq", irqProg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sharedCPU(t), cell.ULP65(), img, ConcreteInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableInterrupts(periph.Config{})
	sys.Reset()

	stateNets := sys.Sim.Netlist().Port("state")
	stateIs := func(i int) bool { return sys.Sim.Val(stateNets[i]) == logic.H }
	seen := make(map[int]bool)
	entered := false
	prevIrq3 := false

	for c := 0; c < 2000 && !sys.Halted(); c++ {
		sys.Step()
		if err := sys.Err(); err != nil {
			t.Fatalf("cycle %d: %v", c, err)
		}
		for _, st := range []int{StIrq1, StIrq2, StIrq3, StReti1, StReti2} {
			if stateIs(st) {
				seen[st] = true
			}
		}
		// First instruction boundary after the vector fetch: the frame
		// is complete on the stack and GIE is down for the handler.
		if prevIrq3 && !entered {
			entered = true
			sp, ok := sys.Reg(1)
			if !ok || sp != 0x0A00-4 {
				t.Fatalf("SP after interrupt entry = %#04x, want %#04x", sp, 0x0A00-4)
			}
			retPC, ok := sys.MemWord(sp + 2).Uint()
			if !ok || uint16(retPC) < soc.ROMStart {
				t.Fatalf("pushed continuation PC = %#04x (known %v), want a ROM address", retPC, ok)
			}
			pushedSR, ok := sys.MemWord(uint16(sp)).Uint()
			if !ok || pushedSR&uint64(isa.FlagGIE) == 0 {
				t.Fatalf("pushed SR = %#04x (known %v), want GIE set in the saved copy", pushedSR, ok)
			}
			sr, ok := sys.Reg(2)
			if !ok || sr&isa.FlagGIE != 0 {
				t.Fatalf("live SR during handler = %#04x, want GIE cleared", sr)
			}
			pc, ok := sys.PC()
			if !ok || pc < soc.ROMStart {
				t.Fatalf("handler PC = %#04x, want vector-dispatched ROM address", pc)
			}
		}
		prevIrq3 = stateIs(StIrq3)
	}

	if !sys.Halted() {
		t.Fatal("interrupt program never halted")
	}
	for _, st := range []int{StIrq1, StIrq2, StIrq3, StReti1, StReti2} {
		if !seen[st] {
			t.Fatalf("controller state %s never visited", StateName(st))
		}
	}
	if !entered {
		t.Fatal("handler entry checkpoint never reached")
	}
	if r10, ok := sys.Reg(10); !ok || r10 != 1 {
		t.Fatalf("r10 = %d, want exactly one delivered tick", r10)
	}
	if sp, ok := sys.Reg(1); !ok || sp != 0x0A00 {
		t.Fatalf("final SP = %#04x, want the stack fully unwound", sp)
	}
	if sr, ok := sys.Reg(2); !ok || sr&isa.FlagGIE == 0 {
		t.Fatalf("final SR = %#04x, want GIE restored by RETI", sr)
	}
}

// TestInterruptMasking pins GIE gating: with interrupts never enabled,
// an armed, fired timer must not preempt the main loop.
func TestInterruptMasking(t *testing.T) {
	img, err := isa.Assemble("masked", `
.org 0xf000
.entry main
main:
    mov #0x0A00, r1
    mov #0x0080, &0x0120
    clr r10
    mov #5, &0x0144
    mov #3, &0x0140       ; armed and interrupt-enabled, but GIE stays 0
    mov #200, r9
wait:
    dec r9
    jnz wait
    mov #1, &0x0126
spin: jmp spin
timer_isr:
    inc r10
    reti
adc_isr:
    reti
.org 0xfff8
.word timer_isr
.word adc_isr
`)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sharedCPU(t), cell.ULP65(), img, ConcreteInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableInterrupts(periph.Config{})
	sys.Reset()
	if err := sys.RunToHalt(20000); err != nil {
		t.Fatal(err)
	}
	if r10, ok := sys.Reg(10); ok && r10 != 0 {
		t.Fatalf("masked interrupt was delivered: r10 = %d", r10)
	}
	// The flag itself must still be latched in the device.
	if v, _, _ := sys.Bus().Read(periph.TACTL); v&periph.BitIFG == 0 {
		t.Fatal("timer flag lost while masked")
	}
}

// TestSpuriousVectorFetchFaults pins the error path: a read of the
// vector indirection port with nothing pending is a bus error, not a
// silent X dispatch.
func TestSpuriousVectorFetchFaults(t *testing.T) {
	img, err := isa.Assemble("spurious", `
.org 0xf000
.entry main
main:
    mov #0x0A00, r1
    mov #0x0080, &0x0120
    mov &0xfff0, r4       ; vector port read with no pending interrupt
    mov #1, &0x0126
spin: jmp spin
`)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sharedCPU(t), cell.ULP65(), img, ConcreteInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableInterrupts(periph.Config{})
	sys.Reset()
	err = sys.RunToHalt(20000)
	if err == nil {
		t.Fatal("spurious vector fetch did not fault")
	}
}
