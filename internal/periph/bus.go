package periph

import (
	"fmt"

	"repro/internal/logic"
)

// Config parameterizes the peripheral subsystem, chiefly the ADC arrival
// window the symbolic exploration must cover. The zero value selects the
// documented defaults.
type Config struct {
	// MinLatency is the earliest possible conversion completion, in
	// cycles after the ADGO trigger. Default 8.
	MinLatency int `json:"min_latency,omitempty"`
	// MaxLatency is the latest possible completion — the end of the
	// arrival window. The peak-power bound holds for every arrival cycle
	// in [MinLatency, MaxLatency]. Default MinLatency + 16.
	MaxLatency int `json:"max_latency,omitempty"`
	// ConcreteLatency is the latency used by concrete (input-based) runs;
	// it must lie inside the window. Default: the window midpoint.
	ConcreteLatency int `json:"concrete_latency,omitempty"`
	// RadioBusyCycles is how long the radio's busy flag holds after a
	// transmission starts. Default 16.
	RadioBusyCycles int `json:"radio_busy_cycles,omitempty"`
}

// Normalized fills defaults and clamps ConcreteLatency into the window.
// Bus construction and cache keying both use the normalized form, so two
// configs that normalize equally are the same analysis.
func (c Config) Normalized() Config {
	if c.MinLatency <= 0 {
		c.MinLatency = 8
	}
	if c.MaxLatency < c.MinLatency {
		c.MaxLatency = c.MinLatency + 16
	}
	if c.ConcreteLatency < c.MinLatency || c.ConcreteLatency > c.MaxLatency {
		c.ConcreteLatency = (c.MinLatency + c.MaxLatency) / 2
	}
	if c.RadioBusyCycles <= 0 {
		c.RadioBusyCycles = 16
	}
	return c
}

// Bus is the peripheral interconnect: it routes word accesses to the
// devices through the declarative address map and aggregates their
// interrupt requests into the single CPU IRQ line. Interrupt priority is
// the device order: timer above ADC (the radio never interrupts).
type Bus struct {
	cfg      Config
	symbolic bool

	timer *Timer
	adc   *ADC
	radio *Radio
	devs  []Device // address-map Tag indexes this slice; also IRQ priority order
	m     *Map
}

// NewBus builds the peripheral subsystem. symbolic selects the analysis
// mode: the ADC completion becomes a windowed symbolic event and sample
// data reads as X.
func NewBus(cfg Config, symbolic bool) *Bus {
	cfg = cfg.Normalized()
	b := &Bus{
		cfg:      cfg,
		symbolic: symbolic,
		timer:    &Timer{},
		adc: &ADC{
			symbolic: symbolic,
			minLat:   uint64(cfg.MinLatency),
			maxLat:   uint64(cfg.MaxLatency),
			concLat:  uint64(cfg.ConcreteLatency),
		},
		radio: &Radio{busyCycles: uint16(cfg.RadioBusyCycles)},
	}
	b.devs = []Device{b.timer, b.adc, b.radio}
	areas := make([]Area, len(b.devs))
	for i, d := range b.devs {
		var start uint32
		switch d.(type) {
		case *Timer:
			start = TACTL
		case *ADC:
			start = ADCTL
		case *Radio:
			start = RFCTL
		}
		areas[i] = Area{Name: d.Name(), Start: start, End: start + 6, Tag: i}
	}
	b.m = MustMap(areas...)
	return b
}

// Config returns the normalized configuration the bus runs with.
func (b *Bus) Config() Config { return b.cfg }

// AddressMap exposes the device address areas (Tag = device index).
func (b *Bus) AddressMap() *Map { return b.m }

// Timer returns the timer device (test and example hook).
func (b *Bus) Timer() *Timer { return b.timer }

// ADC returns the ADC device (test and example hook).
func (b *Bus) ADC() *ADC { return b.adc }

// Radio returns the radio device (test and example hook).
func (b *Bus) Radio() *Radio { return b.radio }

// Claims reports whether addr belongs to a device register.
func (b *Bus) Claims(addr uint16) bool {
	_, ok := b.m.Lookup(addr)
	return ok
}

// Reset returns every device to power-on state.
func (b *Bus) Reset() {
	for _, d := range b.devs {
		d.Reset()
	}
}

// Tick advances every device one cycle.
func (b *Bus) Tick(now uint64) {
	for _, d := range b.devs {
		d.Tick(now)
	}
}

// Read services a word load from device space in the three-valued
// domain.
func (b *Bus) Read(addr uint16) (val, xmask uint16, err error) {
	a, ok := b.m.Lookup(addr)
	if !ok {
		return 0, 0, fmt.Errorf("periph: no device at %#04x", addr)
	}
	val, xmask = b.devs[a.Tag].Read(addr)
	return val, xmask, nil
}

// Write services a word store to device space.
func (b *Bus) Write(addr uint16, v uint16, now uint64) error {
	a, ok := b.m.Lookup(addr)
	if !ok {
		return fmt.Errorf("periph: no device at %#04x", addr)
	}
	return b.devs[a.Tag].Write(addr, v, now)
}

// Line is the aggregated IRQ line at cycle now: H when any device has a
// concrete pending interrupt, X while the ADC's arrival window is open
// (completion possible but not certain — the symbolic event the
// exploration forks on), L otherwise.
func (b *Bus) Line(now uint64) logic.Trit {
	for _, d := range b.devs {
		if d.Pending() {
			return logic.H
		}
	}
	if b.adc.MaybePending(now) {
		return logic.X
	}
	return logic.L
}

// Deliver resolves the open symbolic event as "arrived" — the taken
// direction of an IRQ fork. The ADC flag latches, so the line reads a
// concrete H until the CPU fetches the vector.
func (b *Bus) Deliver() { b.adc.ForceDeliver() }

// TakeVector is the CPU's vector fetch: it picks the highest-priority
// pending device, acknowledges it (hardware flag clear), and returns the
// ROM address of its vector-table entry. ok is false for a spurious
// fetch with nothing pending.
func (b *Bus) TakeVector() (vec uint16, ok bool) {
	for _, d := range b.devs {
		if d.Pending() {
			d.Ack()
			return d.Vector(), true
		}
	}
	return 0, false
}

// BusState is the flat, comparable snapshot of every device register —
// cheap enough to copy into the per-cycle rolling snapshot the symbolic
// engine keeps.
type BusState struct {
	TimerEn, TimerIE, TimerIFG bool
	TimerCnt, TimerCcr         uint16

	ADCIE, ADCIFG, ADCArmed bool
	ADCTrig                 uint64
	ADCSample, ADCSeq       uint16

	RadioBusy, RadioTX, RadioSent uint16
}

// State captures the device state.
func (b *Bus) State() BusState {
	return BusState{
		TimerEn: b.timer.en, TimerIE: b.timer.ie, TimerIFG: b.timer.ifg,
		TimerCnt: b.timer.cnt, TimerCcr: b.timer.ccr,
		ADCIE: b.adc.ie, ADCIFG: b.adc.ifg, ADCArmed: b.adc.armed,
		ADCTrig: b.adc.trig, ADCSample: b.adc.sample, ADCSeq: b.adc.seq,
		RadioBusy: b.radio.busy, RadioTX: b.radio.tx, RadioSent: b.radio.sent,
	}
}

// SetState restores a captured device state.
func (b *Bus) SetState(st BusState) {
	b.timer.en, b.timer.ie, b.timer.ifg = st.TimerEn, st.TimerIE, st.TimerIFG
	b.timer.cnt, b.timer.ccr = st.TimerCnt, st.TimerCcr
	b.adc.ie, b.adc.ifg, b.adc.armed = st.ADCIE, st.ADCIFG, st.ADCArmed
	b.adc.trig, b.adc.sample, b.adc.seq = st.ADCTrig, st.ADCSample, st.ADCSeq
	b.radio.busy, b.radio.tx, b.radio.sent = st.RadioBusy, st.RadioTX, st.RadioSent
}

// Hash folds the device state into an FNV-style digest for execution-tree
// state merging. While the ADC's arrival window is open the digest also
// mixes the absolute cycle: two states that look identical but sit at
// different distances from the window's end have different futures, so
// merging them would be unsound.
func (b *Bus) Hash(now uint64) uint64 {
	const prime = 1099511628211
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	bit := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	mix(bit(b.timer.en) | bit(b.timer.ie)<<1 | bit(b.timer.ifg)<<2 |
		uint64(b.timer.cnt)<<3 | uint64(b.timer.ccr)<<19)
	mix(bit(b.adc.ie) | bit(b.adc.ifg)<<1 | bit(b.adc.armed)<<2 |
		uint64(b.adc.sample)<<3 | uint64(b.adc.seq)<<19)
	mix(b.adc.trig)
	mix(uint64(b.radio.busy) | uint64(b.radio.tx)<<16 | uint64(b.radio.sent)<<32)
	if b.adc.MaybePending(now) || (b.symbolic && b.adc.armed) {
		mix(now)
	}
	return h
}
