// Package ulp430 contains the gate-level ULP430 processor — the
// silicon-proven-class design under analysis — and the System harness
// that couples it to behavioral memory for simulation.
//
// The processor is a multi-cycle, 16-bit, MSP430-ISA-subset core built
// structurally from ULP65 standard cells, organised into the same
// microarchitectural modules the paper reports in its breakdowns
// (Figure 3.6): frontend (fetch, decode, state machine, PC), exec_unit
// (register file, ALU, status register), mem_backbone (bus registers,
// address adder, read-data routing), multiplier (memory-mapped 16x16
// array multiplier), watchdog, sfr (P1OUT, halt), dbg, and clk_module.
//
// Bus protocol (registered, one access per cycle): during a cycle with
// men=1 the memory observes mab/mwr/mdb_out (all flip-flop outputs) and
// drives mdb_in combinationally; a consuming state captures the data at
// the cycle's end. The state machine:
//
//	BOOT → FETCH → [SOFF] → [SRC_RD] → [DOFF] → [DST_RD] → EXEC → [WR] → FETCH
//
// matching the cycle model of isa.Instr.Cycles exactly (asserted by the
// differential tests against the behavioral reference).
//
// Interrupts: at every instruction boundary (the cycle that would enter
// FETCH) with GIE set, an asserted irq input diverts the state machine
// through IRQ1 → IRQ2 → IRQ3: push the continuation PC, push SR and
// clear GIE, then fetch the handler address through the vector
// indirection port (soc.IRQVecFetch — the peripheral bus substitutes the
// pending device's vector). RETI returns in two cycles, RETI1 (pop SR,
// restoring GIE) and RETI2 (pop PC). The boundary indicator is exported
// as irq_win; the symbolic engine forks there when the irq line is X.
package ulp430

import (
	"repro/internal/circuit"
	"repro/internal/netlist"
	"repro/internal/soc"
)

// State-machine one-hot bit indices (exported for COI reporting).
const (
	StBoot = iota
	StFetch
	StSoff
	StSrcRd
	StDoff
	StDstRd
	StExec
	StWr
	StIrq1
	StIrq2
	StIrq3
	StReti1
	StReti2
	NumStates
)

// StateName returns a short name for a state index.
func StateName(i int) string {
	return [...]string{"BOOT", "FETCH", "SOFF", "SRC_RD", "DOFF", "DST_RD",
		"EXEC", "WR", "IRQ1", "IRQ2", "IRQ3", "RETI1", "RETI2"}[i]
}

// BuildCPU constructs the gate-level ULP430 netlist.
func BuildCPU() (*netlist.Netlist, error) {
	b := circuit.NewBuilder("ulp430")
	fe := b.InModule("frontend")
	ex := b.InModule("exec_unit")
	alu := b.InModule("exec_unit.alu")
	rf := b.InModule("exec_unit.register_file")
	mb := b.InModule("mem_backbone")
	mul := b.InModule("multiplier")
	wdg := b.InModule("watchdog")
	sfr := b.InModule("sfr")
	dbg := b.InModule("dbg")

	one := b.One()
	zero := b.Zero()
	zero16 := b.Const(0, 16)

	// --- primary inputs -------------------------------------------------
	rst := b.InputBit("rst")
	mdbIn := b.Input("mdb_in", 16)
	brForceEn := b.InputBit("br_force_en")
	brForceVal := b.InputBit("br_force_val")
	irqIn := b.InputBit("irq")

	// --- registers declared up front (feedback) --------------------------
	pc := fe.Reg("pc", 16)
	ir := fe.Reg("ir", 16)
	state := fe.Reg("state", NumStates)
	sr := ex.Reg("sr", 16)
	srcReg := ex.Reg("srcreg", 16)
	dstReg := ex.Reg("dstreg", 16)
	dstAddr := mb.Reg("dstaddr", 16)
	mab := mb.Reg("mab", 16)
	mdbOut := mb.Reg("mdb_out", 16)
	men := mb.Reg("men", 1)
	mwr := mb.Reg("mwr", 1)

	// Register file: R1 (SP) and R4..R15. R0/R2/R3 are architectural
	// (PC/SR/constant generator).
	rfRegs := make(map[int]*circuit.Reg)
	for _, r := range rfRegNums {
		rfRegs[r] = rf.Reg(regName(r), 16)
	}

	st := state.Q
	stBoot, stFetch, stSoff, stSrcRd := st[StBoot], st[StFetch], st[StSoff], st[StSrcRd]
	stDoff, stDstRd, stExec, stWr := st[StDoff], st[StDstRd], st[StExec], st[StWr]
	stIrq1, stIrq2, stIrq3 := st[StIrq1], st[StIrq2], st[StIrq3]
	stReti1, stReti2 := st[StReti1], st[StReti2]

	// --- peripheral registers -------------------------------------------
	wdtCtl := wdg.Reg("wdtctl", 16)
	wdtCnt := wdg.Reg("wdtcnt", 16)
	p1out := sfr.Reg("p1out", 16)
	haltR := sfr.Reg("halt", 1)
	op1 := mul.Reg("op1", 16)
	op2 := mul.Reg("op2", 16)
	resLo := mul.Reg("reslo", 16)
	resHi := mul.Reg("reshi", 16)
	mulGo := mul.Reg("mul_go", 1)

	// --- read-data routing (mem_backbone) --------------------------------
	// rdata = internal peripheral data when mab addresses an internal
	// register, else the external memory bus.
	mabIs := func(addr uint16) netlist.NetID { return mb.EqualConst(mab.Q, uint64(addr)) }
	isWDTCTL := mabIs(soc.WDTCTL)
	isP1OUT := mabIs(soc.P1OUT)
	isHALT := mabIs(soc.HALTREG)
	isMPY := mb.Or(mabIs(soc.MPY), mabIs(soc.MPYS))
	isOP2 := mabIs(soc.OP2)
	isRESLO := mabIs(soc.RESLO)
	isRESHI := mabIs(soc.RESHI)
	isPeriph := mb.OrN(isWDTCTL, isP1OUT, isHALT, isMPY, isOP2, isRESLO, isRESHI)

	periphData := zero16
	periphData = mb.MuxV(isWDTCTL, periphData, wdtCtl.Q)
	periphData = mb.MuxV(isP1OUT, periphData, p1out.Q)
	periphData = mb.MuxV(isMPY, periphData, op1.Q)
	periphData = mb.MuxV(isRESLO, periphData, resLo.Q)
	periphData = mb.MuxV(isRESHI, periphData, resHi.Q)
	rdata := mb.MuxV(isPeriph, mdbIn, periphData)

	// --- instruction decode (frontend) ------------------------------------
	// During FETCH the instruction flows straight from rdata; afterwards
	// it is held in IR.
	iw := fe.MuxV(stFetch, ir.Q, rdata)
	top := iw[12:16]
	isJump := fe.AndN(fe.Not(iw[15]), fe.Not(iw[14]), iw[13])
	isFmt2 := fe.AndN(fe.Not(iw[15]), fe.Not(iw[14]), fe.Not(iw[13]), iw[12], fe.Not(iw[11]), fe.Not(iw[10]))
	isFmt1 := fe.Or(iw[15], iw[14])

	opIs := func(v uint64) netlist.NetID { return fe.And(isFmt1, fe.EqualConst(top, v)) }
	isMOV := opIs(0x4)
	isADD := opIs(0x5)
	isADDC := opIs(0x6)
	isSUBC := opIs(0x7)
	isSUB := opIs(0x8)
	isCMP := opIs(0x9)
	isBIT := opIs(0xB)
	isBIC := opIs(0xC)
	isBIS := opIs(0xD)
	isXOR := opIs(0xE)
	isAND := opIs(0xF)

	op2f := iw[7:10]
	fmt2Is := func(v uint64) netlist.NetID { return fe.And(isFmt2, fe.EqualConst(op2f, v)) }
	isRRC := fmt2Is(0)
	isSWPB := fmt2Is(1)
	isRRA := fmt2Is(2)
	isSXT := fmt2Is(3)
	isPUSH := fmt2Is(4)
	isCALL := fmt2Is(5)
	isRETI := fmt2Is(6)
	isPushCall := fe.Or(isPUSH, isCALL)

	srcF := iw[8:12]
	dstF := iw[0:4]
	as0, as1 := iw[4], iw[5]
	ad := iw[7]

	// Effective source-operand register field: Format II operands live in
	// the dst field. Operand-flow signals are gated to operand-carrying
	// formats — for jumps the As/Ad bit positions hold offset bits.
	isOperand := fe.Or(isFmt1, isFmt2)
	effSrcR := fe.MuxV(isFmt2, srcF, dstF)
	srcIsR3 := fe.EqualConst(effSrcR, 3)
	srcIsR2 := fe.EqualConst(effSrcR, 2)
	srcIsR0 := fe.EqualConst(effSrcR, 0)
	isCGsrc := fe.Or(srcIsR3, fe.And(srcIsR2, as1))
	srcIsImm := fe.AndN(as1, as0, srcIsR0)
	srcIsAbs := fe.AndN(fe.Not(as1), as0, srcIsR2)
	needSOFF := fe.And(isOperand,
		fe.Or(fe.AndN(fe.Not(as1), as0, fe.Not(srcIsR3)), srcIsImm))
	srcMemDirect := fe.AndN(isOperand, as1, fe.Not(isCGsrc), fe.Not(srcIsImm))
	srcFromMem := fe.Or(fe.And(needSOFF, fe.Not(srcIsImm)), srcMemDirect)
	autoInc := fe.AndN(isOperand, as1, as0, fe.Not(isCGsrc), fe.Not(srcIsImm))

	needDOFF := fe.And(isFmt1, ad)
	dstIsR2 := fe.EqualConst(dstF, 2)
	dstIsAbs := fe.And(needDOFF, dstIsR2)
	needDSTRD := fe.And(needDOFF, fe.Not(isMOV))
	fmt2WB := fe.AndN(isFmt2, fe.Not(isPushCall), fe.Or(as1, as0))
	fmt1WR := fe.AndN(needDOFF, fe.Not(isCMP), fe.Not(isBIT))
	needWR := fe.OrN(fmt1WR, isPushCall, fmt2WB)
	// RETI matches the Format II register-write shape (As=0, dst=0) but
	// updates PC/SP/SR through its own dedicated paths below.
	regWrEXEC := fe.And(fe.Not(isRETI), fe.Or(
		fe.AndN(isFmt1, fe.Not(ad), fe.Not(isCMP), fe.Not(isBIT)),
		fe.AndN(isFmt2, fe.Not(isPushCall), fe.Not(as1), fe.Not(as0))))
	writesFlags := fe.OrN(isADD, isADDC, isSUB, isSUBC, isCMP, isBIT, isXOR, isAND, isRRC, isRRA, isSXT)
	dstIsPC := fe.And(fe.EqualConst(dstF, 0), regWrEXEC)
	dstIsSR := fe.And(dstIsR2, regWrEXEC)

	// --- next-state logic --------------------------------------------------
	goSOFF := fe.And(stFetch, needSOFF)
	goSRCRD := fe.Or(fe.And(stFetch, srcMemDirect), fe.And(stSoff, fe.Not(srcIsImm)))
	goDOFF := fe.And(needDOFF, fe.OrN(
		fe.AndN(stFetch, fe.Not(needSOFF), fe.Not(srcMemDirect)),
		fe.And(stSoff, srcIsImm),
		stSrcRd))
	goDSTRD := fe.And(stDoff, needDSTRD)
	goEXEC := fe.OrN(
		fe.AndN(stFetch, fe.Not(needSOFF), fe.Not(srcMemDirect), fe.Not(needDOFF)),
		fe.AndN(stSoff, srcIsImm, fe.Not(needDOFF)),
		fe.And(stSrcRd, fe.Not(needDOFF)),
		fe.And(stDoff, fe.Not(needDSTRD)),
		stDstRd)
	goWR := fe.And(stExec, needWR)
	// goFETCHraw marks the instruction boundary: the cycle after which the
	// next FETCH would begin. With GIE set and the irq line asserted, the
	// boundary diverts into the interrupt-entry sequence instead.
	goFETCHraw := fe.OrN(stBoot,
		fe.AndN(stExec, fe.Not(needWR), fe.Not(isRETI)),
		stWr, stIrq3, stReti2)
	gie := sr.Q[3]
	takeIRQ := fe.AndN(irqIn, gie, goFETCHraw, fe.Not(rst))
	irqWin := fe.AndN(goFETCHraw, gie, fe.Not(rst))
	goFETCH := fe.And(goFETCHraw, fe.Not(takeIRQ))
	goIRQ1 := takeIRQ
	goIRQ2 := stIrq1
	goIRQ3 := stIrq2
	goRETI1 := fe.And(stExec, isRETI)
	goRETI2 := stReti1

	// State register: BOOT is set while rst is high; the others reset low.
	fe.DriveReg(state, []netlist.NetID{
		rst, // BOOT
		fe.And(goFETCH, fe.Not(rst)),
		fe.And(goSOFF, fe.Not(rst)),
		fe.And(goSRCRD, fe.Not(rst)),
		fe.And(goDOFF, fe.Not(rst)),
		fe.And(goDSTRD, fe.Not(rst)),
		fe.And(goEXEC, fe.Not(rst)),
		fe.And(goWR, fe.Not(rst)),
		fe.And(goIRQ1, fe.Not(rst)),
		fe.And(goIRQ2, fe.Not(rst)),
		fe.And(goIRQ3, fe.Not(rst)),
		fe.And(goRETI1, fe.Not(rst)),
		fe.And(goRETI2, fe.Not(rst)),
	}, netlist.None, netlist.None)

	// --- register-file read ports -----------------------------------------
	rfOptions := make([][]netlist.NetID, 16)
	rfOptions[0] = pc.Q
	rfOptions[1] = rfRegs[1].Q
	rfOptions[2] = sr.Q
	rfOptions[3] = zero16
	for r := 4; r <= 15; r++ {
		rfOptions[r] = rfRegs[r].Q
	}
	rfSrc := rf.MuxTree(srcF, rfOptions)
	rfDst := rf.MuxTree(dstF, rfOptions)
	spQ := rfRegs[1].Q

	// Effective base register value for operand addressing.
	effBase := fe.MuxV(isFmt2, rfSrc, rfDst)

	// --- address adder (mem_backbone) ---------------------------------------
	// A operand: SOFF: operand base (0 for absolute); DOFF: dst base (0 for
	// absolute); SRC_RD: base (autoincrement); EXEC: PC (jump) or SP
	// (push/call).
	aSoff := mb.MuxV(srcIsAbs, effBase, zero16)
	aDoff := mb.MuxV(dstIsAbs, rfDst, zero16)
	aExec := mb.MuxV(isJump, spQ, pc.Q)
	addrA := mb.MuxV(stSoff, mb.MuxV(stDoff, mb.MuxV(stSrcRd, aExec, effBase), aDoff), aSoff)
	// B operand: offsets from memory, +2 for autoincrement, -2 for stack
	// pushes, or the doubled sign-extended jump offset.
	off2x := make([]netlist.NetID, 16)
	off2x[0] = zero
	for i := 1; i <= 10; i++ {
		off2x[i] = iw[i-1]
	}
	for i := 11; i < 16; i++ {
		off2x[i] = iw[9]
	}
	bExec := mb.MuxV(isJump, mb.Const(0xFFFE, 16), off2x)
	bSrcRd := mb.Const(2, 16)
	addrB := mb.MuxV(stSoff, mb.MuxV(stDoff, mb.MuxV(stSrcRd, bExec, bSrcRd), rdata), rdata)
	adderOut, _ := mb.Adder(addrA, addrB, zero)

	// PC incrementer (dedicated, frontend).
	pcInc := fe.Inc(pc.Q, 2)

	// Stack-pointer steppers for interrupt entry/return. The IRQ pushes
	// and RETI pops land in cycles where the register-file write port is
	// otherwise idle, so SP updates ride the normal port. All three values
	// derive combinationally from the SP as of the *start* of the cycle:
	// at the end of IRQ1 the SP register takes spm2 while mab takes spm4,
	// both against the pre-decrement SP.
	spm2 := mb.Inc(spQ, 0xFFFE)
	spm4 := mb.Inc(spm2, 0xFFFE)
	spp2 := mb.Inc(spQ, 2)

	// --- constant generator -------------------------------------------------
	// R3: 0, 1, 2, -1 by As; R2 (As=10/11): 4, 8.
	cgR3 := fe.MuxV(as1,
		fe.MuxV(as0, fe.Const(0, 16), fe.Const(1, 16)),
		fe.MuxV(as0, fe.Const(2, 16), fe.Const(0xFFFF, 16)))
	cgR2 := fe.MuxV(as0, fe.Const(4, 16), fe.Const(8, 16))
	cgVal := fe.MuxV(srcIsR3, cgR2, cgR3)

	// --- ALU (exec_unit.alu) -------------------------------------------------
	srcVal := alu.MuxV(isCGsrc,
		alu.MuxV(alu.Or(srcFromMem, srcIsImm),
			alu.MuxV(isFmt2, rfSrc, rfDst),
			srcReg.Q),
		cgVal)
	dstVal := alu.MuxV(isFmt1,
		alu.MuxV(alu.Or(as1, as0), rfDst, srcReg.Q), // Format II operand
		alu.MuxV(ad, rfDst, dstReg.Q))

	flagC, flagZ, flagN, flagV := sr.Q[0], sr.Q[1], sr.Q[2], sr.Q[8]

	isSubLike := alu.OrN(isSUB, isSUBC, isCMP)
	isAddLike := alu.OrN(isADD, isADDC, isSUB, isSUBC, isCMP)
	aluB := alu.MuxV(isSubLike, srcVal, alu.NotV(srcVal))
	cin := alu.Mux(alu.Or(isSUB, isCMP),
		alu.Mux(alu.Or(isADDC, isSUBC), zero, flagC),
		one)
	sum, couts := alu.Adder(dstVal, aluB, cin)
	coutMSB := couts[15]
	ovf := alu.And(alu.Xnor(dstVal[15], aluB[15]), alu.Xor(sum[15], dstVal[15]))

	andRes := alu.AndV(srcVal, dstVal)
	bicRes := alu.AndV(alu.NotV(srcVal), dstVal)
	bisRes := alu.OrV(srcVal, dstVal)
	xorRes := alu.XorV(srcVal, dstVal)

	// Shifter results (wiring only).
	rrcRes := append(append([]netlist.NetID{}, dstVal[1:16]...), flagC)
	rraRes := append(append([]netlist.NetID{}, dstVal[1:16]...), dstVal[15])
	swpbRes := append(append([]netlist.NetID{}, dstVal[8:16]...), dstVal[0:8]...)
	sxtRes := make([]netlist.NetID, 16)
	copy(sxtRes, dstVal[0:8])
	for i := 8; i < 16; i++ {
		sxtRes[i] = dstVal[7]
	}

	result := srcVal // MOV and PUSH/CALL pass the source through
	result = alu.MuxV(isAddLike, result, sum)
	result = alu.MuxV(alu.Or(isAND, isBIT), result, andRes)
	result = alu.MuxV(isBIC, result, bicRes)
	result = alu.MuxV(isBIS, result, bisRes)
	result = alu.MuxV(isXOR, result, xorRes)
	result = alu.MuxV(isRRC, result, rrcRes)
	result = alu.MuxV(isRRA, result, rraRes)
	result = alu.MuxV(isSWPB, result, swpbRes)
	result = alu.MuxV(isSXT, result, sxtRes)

	zNew := alu.IsZero(result)
	nNew := result[15]
	logicFlag := alu.OrN(isAND, isBIT, isXOR, isSXT)
	cNew := alu.Mux(isAddLike,
		alu.Mux(alu.Or(isRRC, isRRA),
			alu.Mux(logicFlag, flagC, alu.Not(zNew)),
			dstVal[0]),
		coutMSB)
	vNew := alu.Mux(isAddLike,
		alu.Mux(isXOR, zero, alu.And(srcVal[15], dstVal[15])),
		ovf)

	// --- jump condition (frontend) -------------------------------------------
	cond := iw[10:13]
	jeqT := flagZ
	jneT := fe.Not(flagZ)
	jcT := flagC
	jncT := fe.Not(flagC)
	jnT := flagN
	jgeT := fe.Xnor(flagN, flagV)
	jlT := fe.Xor(flagN, flagV)
	takenRaw := fe.MuxTree(cond, [][]netlist.NetID{
		{jneT}, {jeqT}, {jncT}, {jcT}, {jnT}, {jgeT}, {jlT}, {one},
	})[0]
	taken := fe.Mux(brForceEn, takenRaw, brForceVal)
	jumpExec := fe.And(stExec, isJump)

	// --- PC update -------------------------------------------------------------
	pcExec := fe.MuxV(isJump,
		fe.MuxV(dstIsPC, pc.Q, result),
		fe.MuxV(taken, pc.Q, adderOut))
	pcWr := fe.MuxV(isCALL, pc.Q, srcReg.Q)
	pcIn := pc.Q
	pcIn = fe.MuxV(fe.OrN(stFetch, stSoff, stDoff), pcIn, pcInc)
	pcIn = fe.MuxV(stExec, pcIn, pcExec)
	pcIn = fe.MuxV(stWr, pcIn, pcWr)
	// Vector loads: boot (reset vector), interrupt entry (IRQ3 reads the
	// handler address through the vector port), and RETI2 (popped PC).
	pcIn = fe.MuxV(fe.OrN(stBoot, stIrq3, stReti2), pcIn, rdata)
	fe.DriveReg(pc, pcIn, netlist.None, netlist.None)

	// IR loads during FETCH.
	fe.DriveReg(ir, rdata, netlist.None, stFetch)

	// SRCREG: immediate at SOFF, memory data at SRC_RD, call target at EXEC.
	srcRegIn := rdata
	srcRegIn = ex.MuxV(ex.And(stExec, isCALL), srcRegIn, srcVal)
	srcRegEn := ex.OrN(ex.And(stSoff, srcIsImm), stSrcRd, ex.And(stExec, isCALL))
	ex.DriveReg(srcReg, srcRegIn, netlist.None, srcRegEn)

	// DSTREG: memory data at DST_RD.
	ex.DriveReg(dstReg, rdata, netlist.None, stDstRd)

	// DSTADDR: computed destination address at DOFF; operand address (for
	// Format II write-back) at SRC_RD.
	dstAddrIn := mb.MuxV(stDoff, mab.Q, adderOut)
	dstAddrEn := mb.Or(stDoff, mb.And(stSrcRd, fmt2WB))
	mb.DriveReg(dstAddr, dstAddrIn, netlist.None, dstAddrEn)

	// --- status register --------------------------------------------------------
	srFlags := make([]netlist.NetID, 16)
	copy(srFlags, sr.Q)
	srFlags[0] = cNew
	srFlags[1] = zNew
	srFlags[2] = nNew
	srFlags[8] = vNew
	// Interrupt entry clears GIE at the end of IRQ1 — the same edge that
	// latches the *old* SR (GIE still set) into mdb_out for the push, so
	// RETI restores an interruptible state. RETI1 pops the whole SR.
	srGieClr := make([]netlist.NetID, 16)
	copy(srGieClr, sr.Q)
	srGieClr[3] = zero
	srIn := sr.Q
	srIn = ex.MuxV(ex.AndN(stExec, writesFlags), srIn, srFlags)
	srIn = ex.MuxV(ex.And(stExec, dstIsSR), srIn, result)
	srIn = ex.MuxV(stIrq1, srIn, srGieClr)
	srIn = ex.MuxV(stReti1, srIn, rdata)
	ex.DriveReg(sr, srIn, rst, netlist.None)

	// --- register-file write port -------------------------------------------------
	// Interrupt entry/return SP stepping: IRQ1/IRQ2 decrement by 2 per
	// push, RETI1/RETI2 increment by 2 per pop — cycles in which no other
	// register-file write can occur.
	spState := rf.OrN(stIrq1, stIrq2, stReti1, stReti2)
	spStep := rf.MuxV(rf.Or(stReti1, stReti2), spm2, spp2)
	wrIdx := rf.MuxV(stSrcRd, rf.MuxV(isPushCall, dstF, rf.Const(1, 4)), effSrcR)
	wrIdx = rf.MuxV(spState, wrIdx, rf.Const(1, 4))
	wrData := rf.MuxV(rf.And(stExec, rf.Not(isPushCall)), adderOut, result)
	wrData = rf.MuxV(spState, wrData, spStep)
	wrEn := rf.OrN(
		rf.And(stSrcRd, autoInc),
		rf.And(stExec, regWrEXEC),
		rf.And(stExec, isPushCall),
		spState)
	wrDec := rf.Decoder(wrIdx, wrEn)
	// Fixed register order: map iteration order would vary per process,
	// permuting cell creation and with it the (order-sensitive, float)
	// energy summations — netlist builds must be bit-reproducible.
	for _, r := range rfRegNums {
		rf.DriveReg(rfRegs[r], wrData, netlist.None, wrDec[r])
	}

	// --- memory interface registers -------------------------------------------------
	mabNext := pc.Q // EXEC and default: hold at PC to minimize toggling
	mabNext = mb.MuxV(goFETCH, mabNext, pcIn)
	// Extension-word reads address the *next* PC value: coming from FETCH
	// the PC increments past the opcode; coming from SRC_RD it already
	// points at the destination extension word and holds.
	mabNext = mb.MuxV(mb.Or(goSOFF, goDOFF), mabNext, pcIn)
	mabNext = mb.MuxV(goSRCRD, mabNext, mb.MuxV(stFetch, adderOut, effBase))
	mabNext = mb.MuxV(goDSTRD, mabNext, adderOut)
	mabNext = mb.MuxV(goWR, mabNext, mb.MuxV(isPushCall, dstAddr.Q, adderOut))
	// Interrupt entry: PC push at SP-2, SR push at SP-4, then the vector
	// indirection port. RETI: SR pop at SP, PC pop at SP+2 (IRQ3 and
	// RETI2 flow back into FETCH through goFETCH above).
	mabNext = mb.MuxV(goIRQ1, mabNext, spm2)
	mabNext = mb.MuxV(stIrq1, mabNext, spm4)
	mabNext = mb.MuxV(stIrq2, mabNext, mb.Const(soc.IRQVecFetch, 16))
	mabNext = mb.MuxV(goRETI1, mabNext, spQ)
	mabNext = mb.MuxV(stReti1, mabNext, spp2)
	mabIn := mb.MuxV(rst, mabNext, mb.Const(soc.ROMEnd-2, 16))
	mb.DriveReg(mab, mabIn, netlist.None, netlist.None)

	menIn := mb.Or(rst, mb.Not(goEXEC))
	mb.DriveReg(men, []netlist.NetID{menIn}, netlist.None, netlist.None)
	mwrIn := mb.And(mb.OrN(goWR, goIRQ1, stIrq1), mb.Not(rst))
	mb.DriveReg(mwr, []netlist.NetID{mwrIn}, netlist.None, netlist.None)

	wdataIn := mb.MuxV(isPUSH, mb.MuxV(isCALL, result, pc.Q), srcVal)
	wdataIn = mb.MuxV(goIRQ1, wdataIn, pcIn) // continuation PC
	wdataIn = mb.MuxV(stIrq1, wdataIn, sr.Q) // SR, GIE still set
	mdbOutEn := mb.OrN(mb.And(stExec, needWR), goIRQ1, stIrq1)
	mb.DriveReg(mdbOut, wdataIn, netlist.None, mdbOutEn)

	// --- peripherals ------------------------------------------------------------------
	wrStrobe := mwr.Q[0]
	wrWDT := wdg.And(wrStrobe, isWDTCTL)
	wdg.DriveReg(wdtCtl, mdbOut.Q, rst, wrWDT)
	wdtHold := wdtCtl.Q[7]
	wdg.DriveReg(wdtCnt, wdg.Inc(wdtCnt.Q, 1), rst, wdg.Not(wdtHold))

	wrP1 := sfr.And(wrStrobe, isP1OUT)
	sfr.DriveReg(p1out, mdbOut.Q, rst, wrP1)
	wrHalt := sfr.And(wrStrobe, isHALT)
	haltSet := sfr.And(wrHalt, sfr.OrN(mdbOut.Q...))
	sfr.DriveReg(haltR, []netlist.NetID{sfr.Or(haltR.Q[0], haltSet)}, rst, netlist.None)

	wrOP1 := mul.And(wrStrobe, isMPY)
	mul.DriveReg(op1, mdbOut.Q, netlist.None, wrOP1)
	wrOP2 := mul.And(wrStrobe, isOP2)
	mul.DriveReg(op2, mdbOut.Q, netlist.None, wrOP2)
	mul.DriveReg(mulGo, []netlist.NetID{wrOP2}, rst, netlist.None)
	product := mul.Multiplier(op1.Q, op2.Q)
	mul.DriveReg(resLo, product[0:16], netlist.None, mulGo.Q[0])
	mul.DriveReg(resHi, product[16:32], netlist.None, mulGo.Q[0])

	// dbg: idle debug-interface registers (present in the breakdown,
	// inactive during normal runs).
	dbgCtl := dbg.Reg("dbg_ctl", 16)
	dbg.DriveReg(dbgCtl, dbgCtl.Q, rst, dbg.Zero())
	dbgStat := dbg.Reg("dbg_stat", 8)
	dbg.DriveReg(dbgStat, dbgStat.Q, rst, dbg.Zero())

	// Clock tree trunk.
	b.ClockBuffers(24, rst)

	// --- ports ---------------------------------------------------------------------------
	b.Output("mab", mab.Q)
	b.Output("mdb_out", mdbOut.Q)
	b.Output("men", men.Q)
	b.Output("mwr", mwr.Q)
	b.Output("halt", haltR.Q)
	b.Output("pc", pc.Q)
	b.Output("ir", ir.Q)
	b.Output("state", state.Q)
	b.Output("sr", sr.Q)
	b.Output("p1out", p1out.Q)
	b.Output("wdtcnt", wdtCnt.Q)
	b.Output("reslo", resLo.Q)
	b.Output("reshi", resHi.Q)
	b.Output("jump_exec", []netlist.NetID{jumpExec})
	b.Output("jump_taken", []netlist.NetID{taken})
	b.Output("irq_win", []netlist.NetID{irqWin})
	b.Output("sp", spQ)
	for r := 4; r <= 15; r++ {
		b.Output(regName(r), rfRegs[r].Q)
	}

	if err := b.N.Build(); err != nil {
		return nil, err
	}
	return b.N, nil
}

// rfRegNums lists the register-file registers in the one canonical order
// both construction and write-port wiring iterate: a single source of
// truth, and a fixed order so netlist builds stay bit-reproducible.
var rfRegNums = []int{1, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}

func regName(r int) string {
	return map[int]string{1: "sp_r1", 4: "r4", 5: "r5", 6: "r6", 7: "r7",
		8: "r8", 9: "r9", 10: "r10", 11: "r11", 12: "r12", 13: "r13",
		14: "r14", 15: "r15"}[r]
}
