// Package energy implements the paper's input-independent peak energy
// computation (Section 3.3) over the annotated symbolic execution tree:
// the peak energy of an application is bounded by the execution path with
// the highest sum of per-cycle peak power multiplied by the clock period.
//
//   - For an input-dependent branch, peak energy takes the higher-energy
//     side.
//   - Input-independent loops never fork, so their iterations are simply
//     simulated and summed exactly.
//   - Input-dependent loops appear as cycles in the tree's merge graph;
//     they require an iteration bound (the binary's .loopbound annotation,
//     standing in for the paper's "static analysis or user input"), and
//     contribute bound × (energy of one worst-case pass) — a conservative
//     upper bound.
package energy

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/symx"
)

// Result is the peak-energy bound for one application.
type Result struct {
	// EnergyJ is the peak energy bound in joules.
	EnergyJ float64
	// Cycles is the runtime (in cycles) of the bounding path, with loop
	// bounds applied.
	Cycles float64
	// NPEJPerCycle is the normalized peak energy (J/cycle): the maximum
	// average rate at which the application can consume energy.
	NPEJPerCycle float64
}

// PeakEnergy computes the peak energy bound of an explored tree. Segment
// payloads must be the power sink's per-cycle mW traces. clockHz converts
// power to per-cycle energy.
func PeakEnergy(tree *symx.Tree, img *isa.Image, clockHz float64) (Result, error) {
	if tree.Root == nil {
		return Result{}, fmt.Errorf("energy: empty tree")
	}
	g := newGraph(tree)

	// Segment energies in joules and lengths in cycles.
	segE := make([]float64, len(tree.Nodes))
	segC := make([]float64, len(tree.Nodes))
	for i, n := range tree.Nodes {
		trace, ok := n.Data.([]float64)
		if !ok {
			return Result{}, fmt.Errorf("energy: node %d payload is %T, want []float64 (power trace)", n.ID, n.Data)
		}
		sum := 0.0
		for _, mw := range trace {
			sum += mw
		}
		segE[i] = sum * 1e-3 / clockHz
		segC[i] = float64(n.Len)
	}

	sccs := tarjan(g)
	// Map node -> SCC index; detect cyclic SCCs.
	sccOf := make([]int, len(tree.Nodes))
	for si, members := range sccs {
		for _, id := range members {
			sccOf[id] = si
		}
	}
	cyclic := make([]bool, len(sccs))
	for si, members := range sccs {
		if len(members) > 1 {
			cyclic[si] = true
			continue
		}
		id := members[0]
		for _, succ := range g.succ[id] {
			if succ == id {
				cyclic[si] = true
			}
		}
	}

	// Condensation DAG: process SCCs in reverse topological order
	// (tarjan emits them in reverse topological order already: an SCC is
	// emitted only after all SCCs it can reach).
	bestE := make([]float64, len(sccs))
	bestC := make([]float64, len(sccs))
	for si, members := range sccs {
		// Gather external successors.
		extE, extC := 0.0, 0.0
		for _, id := range members {
			for _, succ := range g.succ[id] {
				if sccOf[succ] != si {
					se, sc := bestE[sccOf[succ]], bestC[sccOf[succ]]
					if se > extE {
						extE, extC = se, sc
					}
				}
			}
		}
		if !cyclic[si] {
			id := members[0]
			bestE[si] = segE[id] + extE
			bestC[si] = segC[id] + extC
			continue
		}
		// Input-dependent loop: need an iteration bound from one of the
		// SCC's branch instructions.
		bound, boundPC, found := 0, uint16(0), false
		var loopE, loopC float64
		for _, id := range members {
			n := tree.Nodes[id]
			loopE += segE[id]
			loopC += segC[id]
			if b, ok := img.LoopBounds[n.BranchPC]; ok && n.BranchPC != 0 {
				if !found || b > bound {
					bound, boundPC, found = b, n.BranchPC, true
				}
			}
		}
		if !found {
			pcs := []uint16{}
			for _, id := range members {
				if tree.Nodes[id].BranchPC != 0 {
					pcs = append(pcs, tree.Nodes[id].BranchPC)
				}
			}
			return Result{}, fmt.Errorf("energy: input-dependent loop through branch(es) %#04x has no .loopbound annotation", pcs)
		}
		_ = boundPC
		bestE[si] = float64(bound)*loopE + extE
		bestC[si] = float64(bound)*loopC + extC
	}

	rootSCC := sccOf[tree.Root.ID]
	res := Result{EnergyJ: bestE[rootSCC], Cycles: bestC[rootSCC]}
	if res.Cycles > 0 {
		res.NPEJPerCycle = res.EnergyJ / res.Cycles
	}
	return res, nil
}

// graph is the segment DAG-with-back-edges induced by the tree.
type graph struct {
	succ [][]int
}

func newGraph(t *symx.Tree) *graph {
	g := &graph{succ: make([][]int, len(t.Nodes))}
	for _, n := range t.Nodes {
		switch n.Kind {
		case symx.KindBranch:
			if n.Taken != nil {
				g.succ[n.ID] = append(g.succ[n.ID], n.Taken.ID)
			}
			if n.NotTaken != nil {
				g.succ[n.ID] = append(g.succ[n.ID], n.NotTaken.ID)
			}
		case symx.KindMerge:
			if n.MergeTo != nil {
				g.succ[n.ID] = append(g.succ[n.ID], n.MergeTo.ID)
			}
		}
	}
	return g
}

// tarjan computes strongly connected components; components are emitted
// in reverse topological order of the condensation.
func tarjan(g *graph) [][]int {
	n := len(g.succ)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var sccs [][]int
	counter := 0

	type frame struct {
		v, pi int
	}
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		work := []frame{{start, 0}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.pi == 0 {
				index[v] = counter
				low[v] = counter
				counter++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.pi < len(g.succ[v]) {
				w := g.succ[v][f.pi]
				f.pi++
				if index[w] == -1 {
					work = append(work, frame{w, 0})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// All successors done.
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, comp)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return sccs
}
