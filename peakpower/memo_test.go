package peakpower

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/symx"
)

// These tests pin the memoization soundness contract (DESIGN.md,
// "Memoization and copy-on-write soundness"): per-level replay is a pure
// engine-internal speedup, so the sealed Report must be byte-identical
// with memo on or off, at any worker count, across a crash/resume, and
// when the exploration is distributed over a fleet. The existing golden
// files were generated before memoization existed, which makes them the
// ground truth both modes must reproduce.

// TestMemoDeterminism: a loop-heavy analysis with memoization enabled
// seals the same bytes as the memo-off baseline at every worker count,
// and actually exercises the cache (nonzero hits and misses) — a suite
// where the memo never fires would vacuously pass the identity checks.
func TestMemoDeterminism(t *testing.T) {
	a := analyzer(t)
	ctx := context.Background()
	base, err := a.AnalyzeBench(ctx, "tHold", WithMemo(false), WithExploreWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, &base.Report)
	if base.MemoHits != 0 || base.MemoMisses != 0 {
		t.Fatalf("memo-off run reports memo traffic: hits=%d misses=%d", base.MemoHits, base.MemoMisses)
	}

	for _, w := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			res, err := a.AnalyzeBench(ctx, "tHold", WithMemo(true), WithExploreWorkers(w))
			if err != nil {
				t.Fatal(err)
			}
			if got := reportBytes(t, &res.Report); !bytes.Equal(got, want) {
				t.Fatalf("memoized report differs from memo-off baseline")
			}
			if res.Hash != base.Hash {
				t.Fatalf("memoized hash %s != baseline %s", res.Hash, base.Hash)
			}
			if res.MemoHits == 0 || res.MemoMisses == 0 {
				t.Fatalf("memo never exercised on tHold: hits=%d misses=%d", res.MemoHits, res.MemoMisses)
			}
		})
	}
}

// TestMemoOffMatchesGoldens: the golden report files predate the
// memoization layer, and TestReportGolden already replays them with the
// memo on (the default). This is the other half: disabling the memo must
// reproduce the same pinned bytes, so the two modes are provably
// interchangeable against the committed ground truth.
func TestMemoOffMatchesGoldens(t *testing.T) {
	for _, name := range goldenBenches {
		t.Run(name, func(t *testing.T) {
			res, err := analyzer(t).AnalyzeBench(context.Background(), name, WithCOI(4), WithMemo(false))
			if err != nil {
				t.Fatal(err)
			}
			got := marshalIndented(t, &res.Report)
			want, err := os.ReadFile(filepath.Join("testdata", "report_"+name+".golden.json"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("memo-off report for %s diverged from the golden file", name)
			}
		})
	}
}

// TestMemoCheckpointResume: an analysis killed mid-exploration and
// resumed from its journal, with memoization enabled on both
// incarnations, seals the memo-off baseline bytes. The resumed process
// starts with a cold memo whose hit/miss pattern differs from the
// uninterrupted run — the Report must not notice.
func TestMemoCheckpointResume(t *testing.T) {
	a := analyzer(t)
	img, err := Assemble("ckpt", ckptTestApp)
	if err != nil {
		t.Fatal(err)
	}
	base, err := a.AnalyzeImage(context.Background(), img, WithMemo(false))
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, &base.Report)

	path := filepath.Join(t.TempDir(), "job.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	_, err = a.AnalyzeImage(ctx, img,
		WithMemo(true), WithCheckpoint(path), WithExploreWorkers(2),
		WithProgress(func(p Progress) {
			if p.Cycles >= 40 {
				cancel()
			}
		}, 1))
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, serr := os.Stat(path); serr != nil {
		t.Fatalf("no journal after crash: %v", serr)
	}

	res, err := a.AnalyzeImage(context.Background(), img,
		WithMemo(true), WithCheckpoint(path), WithExploreWorkers(2))
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := reportBytes(t, &res.Report); !bytes.Equal(got, want) {
		t.Fatal("memoized resume differs from the memo-off uninterrupted baseline")
	}
}

// TestMemoFleetTwoWorkers: the exploration distributed over two fleet
// workers — each with its own private System and memo cache — fills a
// journal whose ordinary local seal reproduces the memo-off baseline
// bytes. This drives symx.RemoteQueue directly, the same scheduler the
// HTTP coordinator wraps.
func TestMemoFleetTwoWorkers(t *testing.T) {
	a := analyzer(t)
	img, err := Assemble("ckpt", ckptTestApp)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	base, err := a.AnalyzeImage(ctx, img, WithMemo(false))
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, &base.Report)

	plan := a.PlanImage(img, WithMemo(true))
	path := filepath.Join(t.TempDir(), "job.ckpt")
	q, err := symx.OpenRemoteQueue(symx.CheckpointConfig{
		Path:  path,
		Tag:   plan.Key(),
		Codec: plan.Codec(),
	}, plan.ExploreOptions(ctx))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sys, sink, err := plan.NewWorker()
			if err != nil {
				q.Fail(err)
				return
			}
			for {
				task, baseCycles, baseNodes, ok := q.Lease()
				if !ok {
					if q.Err() != nil || q.Done() {
						return
					}
					time.Sleep(time.Millisecond)
					continue
				}
				res, err := symx.RunRemoteTask(sys, sink, plan.ExploreOptions(ctx), plan.Codec(), task, q, baseCycles, baseNodes)
				if err != nil {
					if errors.Is(err, symx.ErrStaleTask) {
						continue
					}
					q.Fail(err)
					return
				}
				if _, err := q.Complete(task.ID, res); err != nil && !errors.Is(err, symx.ErrStaleTask) {
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := q.Err(); err != nil {
		t.Fatalf("fleet exploration: %v", err)
	}
	if !q.Done() {
		t.Fatal("fleet exploration left live tasks")
	}
	q.Close()

	// The ordinary checkpoint seal replays the fleet-filled journal
	// without executing anything.
	res, err := a.AnalyzeImage(ctx, img, WithMemo(true), WithCheckpoint(path))
	if err != nil {
		t.Fatalf("seal: %v", err)
	}
	if got := reportBytes(t, &res.Report); !bytes.Equal(got, want) {
		t.Fatal("fleet-explored report differs from the memo-off single-process baseline")
	}
}

// TestCacheKeyIgnoresMemo: memoization cannot change the result, so it
// must not partition the analysis cache — both modes hit the same entry.
func TestCacheKeyIgnoresMemo(t *testing.T) {
	a := analyzer(t)
	img, err := BenchImage("mult")
	if err != nil {
		t.Fatal(err)
	}
	on := a.cacheKey(img, a.resolve([]Option{WithMemo(true)}))
	off := a.cacheKey(img, a.resolve([]Option{WithMemo(false)}))
	if on != off {
		t.Fatalf("cache key depends on the memo mode: %s vs %s", on, off)
	}
}
