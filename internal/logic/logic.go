// Package logic implements the three-valued logic domain used by the
// symbolic gate-level simulator: the values 0, 1, and X (unknown).
//
// X models "any possible value": it is the abstraction the paper's
// input-independent activity analysis propagates for every signal that
// cannot be constrained by the application binary (Section 3.1). All
// operators are monotone over the information ordering (X above 0 and 1),
// so a concrete execution is always a refinement of a symbolic one — the
// property the validation experiments of Section 3.4 check end to end.
package logic

import "fmt"

// Trit is a three-valued logic level.
type Trit uint8

const (
	// L is logic low (0).
	L Trit = 0
	// H is logic high (1).
	H Trit = 1
	// X is the unknown value: it stands for "either 0 or 1".
	X Trit = 2
)

// FromBool converts a Go bool to a Trit.
func FromBool(b bool) Trit {
	if b {
		return H
	}
	return L
}

// FromBit converts the low bit of v to a Trit.
func FromBit(v uint64) Trit {
	if v&1 == 1 {
		return H
	}
	return L
}

// Known reports whether t is a definite 0 or 1.
func (t Trit) Known() bool { return t != X }

// IsH reports whether t is definitely 1.
func (t Trit) IsH() bool { return t == H }

// IsL reports whether t is definitely 0.
func (t Trit) IsL() bool { return t == L }

// Bit returns the concrete bit value of t; it panics if t is X.
// Use only on values already checked with Known.
func (t Trit) Bit() uint64 {
	switch t {
	case L:
		return 0
	case H:
		return 1
	}
	panic("logic: Bit() on X")
}

// String renders t as "0", "1", or "x" (VCD conventions).
func (t Trit) String() string {
	switch t {
	case L:
		return "0"
	case H:
		return "1"
	case X:
		return "x"
	}
	return fmt.Sprintf("Trit(%d)", uint8(t))
}

// Rune returns the single-character VCD representation of t.
func (t Trit) Rune() byte {
	switch t {
	case L:
		return '0'
	case H:
		return '1'
	default:
		return 'x'
	}
}

// ParseTrit converts a character ('0', '1', 'x'/'X') to a Trit.
func ParseTrit(c byte) (Trit, error) {
	switch c {
	case '0':
		return L, nil
	case '1':
		return H, nil
	case 'x', 'X', 'z', 'Z':
		return X, nil
	}
	return X, fmt.Errorf("logic: invalid trit character %q", c)
}

// Not returns three-valued NOT.
func Not(a Trit) Trit {
	switch a {
	case L:
		return H
	case H:
		return L
	}
	return X
}

// And returns three-valued AND. A controlling 0 dominates X.
func And(a, b Trit) Trit {
	if a == L || b == L {
		return L
	}
	if a == H && b == H {
		return H
	}
	return X
}

// Or returns three-valued OR. A controlling 1 dominates X.
func Or(a, b Trit) Trit {
	if a == H || b == H {
		return H
	}
	if a == L && b == L {
		return L
	}
	return X
}

// Xor returns three-valued XOR; any X input makes the output X.
func Xor(a, b Trit) Trit {
	if a == X || b == X {
		return X
	}
	if a == b {
		return L
	}
	return H
}

// Nand returns three-valued NAND.
func Nand(a, b Trit) Trit { return Not(And(a, b)) }

// Nor returns three-valued NOR.
func Nor(a, b Trit) Trit { return Not(Or(a, b)) }

// Xnor returns three-valued XNOR.
func Xnor(a, b Trit) Trit { return Not(Xor(a, b)) }

// Mux returns three-valued 2:1 multiplexer output: s==0 selects a, s==1
// selects b. When s is X the result is known only if both inputs agree —
// the standard "pessimistic X" mux semantics used by gate-level simulators.
func Mux(s, a, b Trit) Trit {
	switch s {
	case L:
		return a
	case H:
		return b
	}
	if a == b && a != X {
		return a
	}
	return X
}

// Eq reports whether a and b are the same symbol (X equals X here: this is
// symbol identity, not logical equivalence).
func Eq(a, b Trit) bool { return a == b }

// Word is a little-endian vector of trits: Word[0] is bit 0 (LSB).
type Word []Trit

// NewWord returns an n-bit word with every bit set to fill.
func NewWord(n int, fill Trit) Word {
	w := make(Word, n)
	if fill != L {
		for i := range w {
			w[i] = fill
		}
	}
	return w
}

// FromUint converts the low n bits of v into a concrete Word.
func FromUint(v uint64, n int) Word {
	w := make(Word, n)
	for i := 0; i < n; i++ {
		w[i] = FromBit(v >> uint(i))
	}
	return w
}

// AllX returns an n-bit word of all X.
func AllX(n int) Word { return NewWord(n, X) }

// Known reports whether every bit of w is a definite 0 or 1.
func (w Word) Known() bool {
	for _, t := range w {
		if t == X {
			return false
		}
	}
	return true
}

// HasX reports whether any bit of w is X.
func (w Word) HasX() bool { return !w.Known() }

// Uint returns the concrete value of w; ok is false if any bit is X.
func (w Word) Uint() (v uint64, ok bool) {
	for i, t := range w {
		if t == X {
			return 0, false
		}
		v |= t.Bit() << uint(i)
	}
	return v, true
}

// MustUint returns the concrete value of w and panics if any bit is X.
func (w Word) MustUint() uint64 {
	v, ok := w.Uint()
	if !ok {
		panic("logic: MustUint on word containing X")
	}
	return v
}

// Clone returns an independent copy of w.
func (w Word) Clone() Word {
	c := make(Word, len(w))
	copy(c, w)
	return c
}

// Equal reports symbol-wise equality of two words.
func (w Word) Equal(o Word) bool {
	if len(w) != len(o) {
		return false
	}
	for i := range w {
		if w[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders w MSB-first, e.g. "0001x0xx".
func (w Word) String() string {
	buf := make([]byte, len(w))
	for i := range w {
		buf[len(w)-1-i] = w[i].Rune()
	}
	return string(buf)
}

// ParseWord parses an MSB-first string of '0'/'1'/'x' characters.
func ParseWord(s string) (Word, error) {
	w := make(Word, len(s))
	for i := 0; i < len(s); i++ {
		t, err := ParseTrit(s[i])
		if err != nil {
			return nil, err
		}
		w[len(s)-1-i] = t
	}
	return w, nil
}

// Refines reports whether concrete word c is a refinement of symbolic word
// s: every known bit of s matches c, and c itself is fully known. This is
// the soundness relation used by the Section 3.4 validation: any value
// observable in a real execution must refine the symbolic value.
func Refines(c, s Word) bool {
	if len(c) != len(s) || !c.Known() {
		return false
	}
	for i := range s {
		if s[i] != X && s[i] != c[i] {
			return false
		}
	}
	return true
}
