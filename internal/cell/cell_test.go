package cell

import (
	"testing"

	"repro/internal/logic"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		name := k.String()
		got, err := KindByName(name)
		if err != nil || got != k {
			t.Errorf("KindByName(%q) = %v, %v; want %v", name, got, err, k)
		}
	}
	if _, err := KindByName("FOO99"); err == nil {
		t.Error("expected error for unknown name")
	}
}

func TestNumInputs(t *testing.T) {
	want := map[Kind]int{
		Tie0: 0, Tie1: 0, Inv: 1, Buf: 1, Nand2: 2, Nor2: 2, And2: 2,
		Or2: 2, Xor2: 2, Xnor2: 2, Mux2: 3, Dff: 1, Dffr: 2, Dffre: 3,
	}
	for k, n := range want {
		if got := k.NumInputs(); got != n {
			t.Errorf("%v.NumInputs() = %d, want %d", k, got, n)
		}
	}
}

func TestSequential(t *testing.T) {
	for _, k := range Kinds() {
		want := k == Dff || k == Dffr || k == Dffre
		if got := k.Sequential(); got != want {
			t.Errorf("%v.Sequential() = %v", k, got)
		}
	}
}

func TestEvalCombinational(t *testing.T) {
	l, h, x := logic.L, logic.H, logic.X
	cases := []struct {
		k       Kind
		a, b, c logic.Trit
		want    logic.Trit
	}{
		{Tie0, x, x, x, l},
		{Tie1, x, x, x, h},
		{Inv, l, x, x, h},
		{Inv, x, x, x, x},
		{Buf, h, x, x, h},
		{Nand2, h, h, x, l},
		{Nand2, l, x, x, h},
		{Nor2, l, l, x, h},
		{Nor2, h, x, x, l},
		{And2, h, x, x, x},
		{And2, l, x, x, l},
		{Or2, h, x, x, h},
		{Xor2, h, l, x, h},
		{Xor2, h, x, x, x},
		{Xnor2, h, h, x, h},
		{Mux2, l, h, l, h},
		{Mux2, h, h, l, l},
		{Mux2, x, h, h, h},
		{Mux2, x, h, l, x},
	}
	for _, tc := range cases {
		if got := Eval(tc.k, tc.a, tc.b, tc.c, x); got != tc.want {
			t.Errorf("Eval(%v, %v,%v,%v) = %v, want %v", tc.k, tc.a, tc.b, tc.c, got, tc.want)
		}
	}
}

func TestEvalDFF(t *testing.T) {
	l, h, x := logic.L, logic.H, logic.X
	// Plain DFF: next = D
	if Eval(Dff, h, x, x, l) != h || Eval(Dff, x, x, x, h) != x {
		t.Fatal("Dff next-state wrong")
	}
	// DFFR: reset dominates
	if Eval(Dffr, h, h, x, h) != l {
		t.Fatal("Dffr reset should force 0")
	}
	if Eval(Dffr, h, l, x, l) != h {
		t.Fatal("Dffr no-reset should load D")
	}
	// X reset with D=0: both reset and load give 0.
	if Eval(Dffr, l, x, x, h) != l {
		t.Fatal("Dffr X-reset with D=0 should be 0")
	}
	if Eval(Dffr, h, x, x, h) != x {
		t.Fatal("Dffr X-reset with D=1 should be X")
	}
	// DFFRE: enable gating
	if Eval(Dffre, h, l, l, l) != l {
		t.Fatal("Dffre EN=0 should hold state")
	}
	if Eval(Dffre, h, l, h, l) != h {
		t.Fatal("Dffre EN=1 should load D")
	}
	if Eval(Dffre, h, h, h, h) != l {
		t.Fatal("Dffre reset dominates")
	}
	// X enable: hold and load agree -> known
	if Eval(Dffre, h, l, x, h) != h {
		t.Fatal("Dffre X-enable agreement should stay known")
	}
	if Eval(Dffre, h, l, x, l) != x {
		t.Fatal("Dffre X-enable disagreement should be X")
	}
	// X reset, but D=0 and held state 0 -> 0 either way
	if Eval(Dffre, l, x, x, l) != l {
		t.Fatal("Dffre all-paths-0 should be 0")
	}
}

// Property: DFF next-state functions are monotone w.r.t. X refinement of
// the reset/enable pins.
func TestDFFMonotone(t *testing.T) {
	vals := []logic.Trit{logic.L, logic.H, logic.X}
	conc := func(v logic.Trit) []logic.Trit {
		if v == logic.X {
			return []logic.Trit{logic.L, logic.H}
		}
		return []logic.Trit{v}
	}
	refines := func(c, s logic.Trit) bool { return s == logic.X || s == c }
	for _, d := range vals {
		for _, r := range vals {
			for _, e := range vals {
				for _, q := range []logic.Trit{logic.L, logic.H} {
					sym := Eval(Dffre, d, r, e, q)
					for _, cd := range conc(d) {
						for _, cr := range conc(r) {
							for _, ce := range conc(e) {
								if got := Eval(Dffre, cd, cr, ce, q); !refines(got, sym) {
									t.Fatalf("Dffre not monotone: D=%v R=%v E=%v q=%v sym=%v got=%v", d, r, e, q, sym, got)
								}
							}
						}
					}
				}
			}
		}
	}
}

func TestLibraryCharacterization(t *testing.T) {
	lib := ULP65()
	if lib.Name != "ULP65" || lib.FeatureNM != 65 {
		t.Fatal("library identity wrong")
	}
	// XOR must cost more than NAND; DFFs must have clock-pin energy.
	if lib.Params(Xor2).MaxEnergy() <= lib.Params(Nand2).MaxEnergy() {
		t.Error("XOR2 should cost more than NAND2")
	}
	for _, k := range []Kind{Dff, Dffr, Dffre} {
		if lib.Params(k).EnergyClk <= 0 {
			t.Errorf("%v should have clock-pin energy", k)
		}
	}
	for _, k := range []Kind{Inv, Nand2, Mux2} {
		if lib.Params(k).EnergyClk != 0 {
			t.Errorf("%v should have no clock-pin energy", k)
		}
	}
	// Every active cell has positive leakage and area.
	for _, k := range Kinds() {
		p := lib.Params(k)
		if p.LeakageNW <= 0 || p.AreaUM2 <= 0 {
			t.Errorf("%v has nonpositive leakage/area", k)
		}
	}
}

func TestMaxTransition(t *testing.T) {
	lib := ULP65()
	for _, k := range Kinds() {
		first, second, e := lib.MaxTransition(k)
		if first == second {
			t.Errorf("%v: MaxTransition must be a transition", k)
		}
		if e != lib.Params(k).MaxEnergy() {
			t.Errorf("%v: energy %v != MaxEnergy %v", k, e, lib.Params(k).MaxEnergy())
		}
		// The claimed transition's energy must match TransitionEnergy.
		if got := lib.TransitionEnergy(k, first, second); k != Tie0 && k != Tie1 && got != e {
			t.Errorf("%v: TransitionEnergy(max) = %v, want %v", k, got, e)
		}
	}
}

func TestTransitionEnergy(t *testing.T) {
	lib := ULP65()
	if lib.TransitionEnergy(Nand2, logic.L, logic.H) != lib.Params(Nand2).EnergyRise {
		t.Error("rise energy wrong")
	}
	if lib.TransitionEnergy(Nand2, logic.H, logic.L) != lib.Params(Nand2).EnergyFall {
		t.Error("fall energy wrong")
	}
	if lib.TransitionEnergy(Nand2, logic.H, logic.H) != 0 {
		t.Error("no transition should be zero energy")
	}
	if lib.TransitionEnergy(Nand2, logic.X, logic.H) != 0 ||
		lib.TransitionEnergy(Nand2, logic.L, logic.X) != 0 {
		t.Error("X endpoints contribute no concrete energy")
	}
}

func TestScaledLibrary(t *testing.T) {
	base := ULP65()
	s := base.Scaled(2.0, 3.0)
	for _, k := range Kinds() {
		b, p := base.Params(k), s.Params(k)
		if p.EnergyRise != 2*b.EnergyRise || p.EnergyFall != 2*b.EnergyFall || p.EnergyClk != 2*b.EnergyClk {
			t.Errorf("%v energies not scaled", k)
		}
		if p.LeakageNW != 3*b.LeakageNW {
			t.Errorf("%v leakage not scaled", k)
		}
		if p.AreaUM2 != b.AreaUM2 {
			t.Errorf("%v area should not scale", k)
		}
	}
	if ULP130().FeatureNM != 130 {
		t.Error("ULP130 identity wrong")
	}
	// 130nm must be more energy-hungry than 65nm.
	if ULP130().Params(Dff).EnergyRise <= base.Params(Dff).EnergyRise {
		t.Error("ULP130 should cost more energy than ULP65")
	}
}
