package circuit

import (
	"testing"
	"testing/quick"

	"repro/internal/cell"
	"repro/internal/gsim"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// harness builds the netlist, creates a simulator, and returns an
// evaluate function: set named inputs, step once, read named output.
func harness(t *testing.T, b *Builder) *gsim.Simulator {
	t.Helper()
	if err := b.N.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return gsim.New(b.N, cell.ULP65(), nil)
}

func TestAdderExhaustive4(t *testing.T) {
	b := NewBuilder("adder4")
	a := b.Input("a", 4)
	c := b.Input("b", 4)
	ci := b.InputBit("ci")
	sum, couts := b.Adder(a, c, ci)
	b.Output("sum", sum)
	b.Output("co", []netlist.NetID{couts[3]})
	s := harness(t, b)
	for av := uint64(0); av < 16; av++ {
		for bv := uint64(0); bv < 16; bv++ {
			for civ := uint64(0); civ < 2; civ++ {
				s.SetPortUint("a", av)
				s.SetPortUint("b", bv)
				s.SetPortUint("ci", civ)
				s.Step()
				got, ok := s.PortUint("sum")
				co, ok2 := s.PortUint("co")
				if !ok || !ok2 {
					t.Fatalf("X output for %d+%d+%d", av, bv, civ)
				}
				want := av + bv + civ
				if got != want&0xF || co != want>>4 {
					t.Fatalf("%d+%d+%d = %d co %d, want %d co %d", av, bv, civ, got, co, want&0xF, want>>4)
				}
			}
		}
	}
}

func TestSubExhaustive4(t *testing.T) {
	b := NewBuilder("sub4")
	a := b.Input("a", 4)
	c := b.Input("b", 4)
	diff, couts := b.Sub(a, c)
	b.Output("diff", diff)
	b.Output("noborrow", []netlist.NetID{couts[3]})
	s := harness(t, b)
	for av := uint64(0); av < 16; av++ {
		for bv := uint64(0); bv < 16; bv++ {
			s.SetPortUint("a", av)
			s.SetPortUint("b", bv)
			s.Step()
			got, _ := s.PortUint("diff")
			nb, _ := s.PortUint("noborrow")
			if got != (av-bv)&0xF {
				t.Fatalf("%d-%d = %d, want %d", av, bv, got, (av-bv)&0xF)
			}
			wantNB := uint64(0)
			if av >= bv {
				wantNB = 1
			}
			if nb != wantNB {
				t.Fatalf("%d-%d noborrow = %d, want %d", av, bv, nb, wantNB)
			}
		}
	}
}

func TestMultiplierExhaustive4x4(t *testing.T) {
	b := NewBuilder("mul4")
	a := b.Input("a", 4)
	c := b.Input("b", 4)
	p := b.Multiplier(a, c)
	b.Output("p", p)
	s := harness(t, b)
	for av := uint64(0); av < 16; av++ {
		for bv := uint64(0); bv < 16; bv++ {
			s.SetPortUint("a", av)
			s.SetPortUint("b", bv)
			s.Step()
			got, ok := s.PortUint("p")
			if !ok || got != av*bv {
				t.Fatalf("%d*%d = %d (ok=%v), want %d", av, bv, got, ok, av*bv)
			}
		}
	}
}

func TestMultiplier8x8Property(t *testing.T) {
	b := NewBuilder("mul8")
	a := b.Input("a", 8)
	c := b.Input("b", 8)
	p := b.Multiplier(a, c)
	b.Output("p", p)
	s := harness(t, b)
	f := func(av, bv uint8) bool {
		s.SetPortUint("a", uint64(av))
		s.SetPortUint("b", uint64(bv))
		s.Step()
		got, ok := s.PortUint("p")
		return ok && got == uint64(av)*uint64(bv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMuxTreeAndDecoder(t *testing.T) {
	b := NewBuilder("mux")
	sel := b.Input("sel", 3)
	opts := make([][]netlist.NetID, 8)
	for i := range opts {
		opts[i] = b.Const(uint64(i*3+1), 8)
	}
	out := b.MuxTree(sel, opts)
	b.Output("out", out)
	dec := b.Decoder(sel, b.One())
	b.Output("dec", dec)
	s := harness(t, b)
	for v := uint64(0); v < 8; v++ {
		s.SetPortUint("sel", v)
		s.Step()
		got, _ := s.PortUint("out")
		if got != v*3+1 {
			t.Fatalf("mux sel=%d got %d want %d", v, got, v*3+1)
		}
		d, _ := s.PortUint("dec")
		if d != 1<<v {
			t.Fatalf("dec sel=%d got %b want %b", v, d, 1<<v)
		}
	}
}

func TestComparatorsAndReductions(t *testing.T) {
	b := NewBuilder("cmp")
	a := b.Input("a", 6)
	c := b.Input("b", 6)
	b.Output("eqc", []netlist.NetID{b.EqualConst(a, 37)})
	b.Output("eqv", []netlist.NetID{b.EqualV(a, c)})
	b.Output("zero", []netlist.NetID{b.IsZero(a)})
	s := harness(t, b)
	check := func(av, bv uint64) {
		s.SetPortUint("a", av)
		s.SetPortUint("b", bv)
		s.Step()
		eqc, _ := s.PortUint("eqc")
		eqv, _ := s.PortUint("eqv")
		z, _ := s.PortUint("zero")
		if (eqc == 1) != (av == 37) {
			t.Fatalf("eqc(%d) = %d", av, eqc)
		}
		if (eqv == 1) != (av == bv) {
			t.Fatalf("eqv(%d,%d) = %d", av, bv, eqv)
		}
		if (z == 1) != (av == 0) {
			t.Fatalf("zero(%d) = %d", av, z)
		}
	}
	for _, av := range []uint64{0, 1, 36, 37, 38, 63} {
		for _, bv := range []uint64{0, 37, av} {
			check(av, bv)
		}
	}
}

func TestRegisterTiming(t *testing.T) {
	b := NewBuilder("reg")
	d := b.Input("d", 8)
	rst := b.InputBit("rst")
	en := b.InputBit("en")
	q := b.RegV("r", d, rst, en)
	b.Output("q", q)
	s := harness(t, b)

	// Reset for one cycle: q must be 0 afterwards.
	s.SetPortUint("rst", 1)
	s.SetPortUint("en", 0)
	s.SetPortUint("d", 0xAB)
	s.Step()
	s.Step()
	if got, ok := s.PortUint("q"); !ok || got != 0 {
		t.Fatalf("after reset q=%v ok=%v", got, ok)
	}
	// Load with enable: the D value present in cycle c is captured at the
	// edge that begins cycle c+1.
	s.SetPortUint("rst", 0)
	s.SetPortUint("en", 1)
	s.SetPortUint("d", 0x5C)
	s.Step() // d=0x5C settled during this cycle
	s.Step() // captured at this edge
	if got, _ := s.PortUint("q"); got != 0x5C {
		t.Fatalf("q=%#x, want 0x5c", got)
	}
	// Enable low holds.
	s.SetPortUint("en", 0)
	s.SetPortUint("d", 0xFF)
	s.Step()
	s.Step()
	s.Step()
	if got, _ := s.PortUint("q"); got != 0x5C {
		t.Fatalf("hold failed: q=%#x", got)
	}
}

func TestConstAndLogicVectors(t *testing.T) {
	b := NewBuilder("vec")
	a := b.Input("a", 8)
	c := b.Input("b", 8)
	b.Output("and", b.AndV(a, c))
	b.Output("or", b.OrV(a, c))
	b.Output("xor", b.XorV(a, c))
	b.Output("not", b.NotV(a))
	b.Output("k", b.Const(0xC3, 8))
	b.Output("inc", b.Inc(a, 2))
	s := harness(t, b)
	f := func(av, bv uint8) bool {
		s.SetPortUint("a", uint64(av))
		s.SetPortUint("b", uint64(bv))
		s.Step()
		and, _ := s.PortUint("and")
		or, _ := s.PortUint("or")
		xor, _ := s.PortUint("xor")
		not, _ := s.PortUint("not")
		k, _ := s.PortUint("k")
		inc, _ := s.PortUint("inc")
		return and == uint64(av&bv) && or == uint64(av|bv) &&
			xor == uint64(av^bv) && not == uint64(^av) && k == 0xC3 &&
			inc == uint64(av+2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestModulePlacement(t *testing.T) {
	b := NewBuilder("top")
	a := b.InputBit("a")
	rst := b.InputBit("rst")
	sub := b.InModule("exec_unit.alu")
	_ = sub.Not(a)
	b.ClockBuffers(3, rst)
	if err := b.N.Build(); err != nil {
		t.Fatal(err)
	}
	st := b.N.Stats(cell.ULP65())
	if st.ByModule["exec_unit"] == 0 {
		t.Fatalf("exec_unit cells missing: %v", st.ByModule)
	}
	if st.ByModule["clk_module"] < 4 { // divider DFF + 3 bufs
		t.Fatalf("clk_module cells missing: %v", st.ByModule)
	}
}

func TestClockBuffersToggleEveryCycle(t *testing.T) {
	b := NewBuilder("clk")
	rst := b.InputBit("rst")
	b.ClockBuffers(2, rst)
	s := harness(t, b)
	s.SetPortUint("rst", 1)
	s.Step()
	s.Step()
	s.SetPortUint("rst", 0)
	s.Step() // reset deassertion is sampled at the next edge
	leaf := b.N.Port("clk_tree_leaf")[0]
	// Out of reset, the divider toggles every cycle: the clock tree is
	// always active — the paper's power floor.
	last := s.Val(leaf)
	for i := 0; i < 6; i++ {
		s.Step()
		if s.Val(leaf) == logic.X {
			t.Fatal("divider should be concrete after reset")
		}
		if s.Val(leaf) == last {
			t.Fatalf("cycle %d: clock leaf did not toggle", i)
		}
		if !s.Active(leaf) {
			t.Fatalf("cycle %d: clock leaf should be active", i)
		}
		last = s.Val(leaf)
	}
}

func TestDriveRegPanics(t *testing.T) {
	b := NewBuilder("p")
	r := b.Reg("r", 2)
	d := b.Input("d", 2)
	b.DriveReg(r, d, netlist.None, netlist.None)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double drive")
		}
	}()
	b.DriveReg(r, d, netlist.None, netlist.None)
}

func TestMuxTreeSizePanics(t *testing.T) {
	b := NewBuilder("p")
	sel := b.Input("sel", 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong option count")
		}
	}()
	b.MuxTree(sel, [][]netlist.NetID{b.Const(0, 4)})
}

func TestSharedTies(t *testing.T) {
	b := NewBuilder("ties")
	if b.Zero() != b.Zero() || b.One() != b.One() {
		t.Fatal("tie nets should be shared")
	}
	sub := b.InModule("x")
	if sub.Zero() != b.Zero() {
		t.Fatal("tie nets should be shared across module views")
	}
}
