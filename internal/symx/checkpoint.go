// Crash-safe checkpointing for parallel symbolic exploration.
//
// A Checkpointer turns an ExploreParallel run into an event-sourced
// journal: every published task is appended as a "pub" record (its
// portable start state, accumulated fork forces, and sink seed) before it
// becomes stealable, and every finished task as a "done" record (its
// segment chain, cycle count, and the sink's per-task observations). In
// checkpoint mode every fork is published — no worker-local fork stacks —
// so a task is exactly one segment chain from its start state to one
// terminal, and the journal's done-set is a consistent partial exploration
// at any instant.
//
// Resume replays the journal instead of re-exploring. The LIVE task set
// is computed top-down from the root: a done record names the exact child
// task it published at each branch (its final incarnation's children), so
// a task is live iff its publisher is live and done AND names it. Live
// done tasks are reconstructed from their records; live pending tasks are
// re-enqueued under their recorded identities. Everything else is an
// orphan and is discarded: its publisher either re-runs deterministically
// and re-publishes the same logical fork under a fresh identity, or — if
// the publisher did complete — its done record names the publisher's
// final-incarnation child, permanently superseding children published by
// earlier crashed incarnations (without the explicit naming, a twice-
// crashed task's completion would resurrect stale children and the same
// logical fork would be explored twice). Only live done tasks seed the
// claim table, so the claim-before-explore partition guarantees the
// resumed totals (cycles, nodes, paths) equal the uninterrupted run's
// exactly — which is what makes resumed runs seal bit-identical Reports.
//
// Durability posture: records are appended under one mutex and the file is
// synced every SyncEvery records, so a SIGKILL loses at most the unsynced
// tail; a torn or corrupted line truncates the journal at that point on
// load (everything after it is treated as lost — safe, it only creates
// orphans). The FIRST failed append permanently disables writing: a
// journal with an internal gap would break the pub-before-done prefix
// invariants, so the run degrades to un-checkpointed rather than risk a
// misleading journal.
package symx

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/faultfs"
	"repro/internal/ulp430"
)

// CheckpointCodec serializes the sink-specific opaque values that ride the
// journal: task seeds (ptask.seed / WorkerSink.SpawnSeed) and segment
// payloads (Node.Data / Sink.Segment). The engine cannot know their
// concrete types, so the sink's package supplies the codec. Both Marshal
// methods must accept nil (and Unmarshal must return it for the nil
// encoding), and Unmarshal(Marshal(v)) must be semantically identical to v
// — for payloads feeding float aggregation, bit-identical.
type CheckpointCodec interface {
	MarshalSeed(seed interface{}) ([]byte, error)
	UnmarshalSeed(data []byte) (interface{}, error)
	MarshalPayload(data interface{}) ([]byte, error)
	UnmarshalPayload(data []byte) (interface{}, error)
}

// TaskMarshaler is the additional sink capability checkpointing requires:
// serializing the current task's observations (candidates, per-task
// activity) for the done record. The sink package also provides the
// matching replay (e.g. power.MergeParallelReplay).
type TaskMarshaler interface {
	// MarshalTask serializes the observations of the task begun by the
	// last BeginTask. Called after the task's final observation, before
	// EndTask.
	MarshalTask() ([]byte, error)
}

// CheckpointConfig configures a Checkpointer.
type CheckpointConfig struct {
	// Path is the journal file. Its directory must exist.
	Path string
	// Tag identifies the analysis (image + resolved options); a journal
	// recorded under a different tag refuses to resume.
	Tag string
	// Codec serializes sink seeds and segment payloads.
	Codec CheckpointCodec
	// FS is the filesystem; nil means the real one.
	FS faultfs.FS
	// SyncEvery syncs the journal every n records (<=0: every 8).
	SyncEvery int
}

// NewCheckpointer creates the journal handle for one ExploreParallel run
// (pass it as ParallelOptions.Checkpoint). It does not touch the disk
// until the run starts.
func NewCheckpointer(cfg CheckpointConfig) *Checkpointer {
	if cfg.FS == nil {
		cfg.FS = faultfs.OS{}
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 8
	}
	return &Checkpointer{cfg: cfg}
}

// Checkpointer journals one exploration run and replays a prior journal on
// resume. Safe for concurrent use by the exploration workers.
type Checkpointer struct {
	cfg CheckpointConfig

	mu        sync.Mutex
	f         faultfs.File
	sinceSync int
	werr      error // first write failure; latches, disables writing
}

// Err returns the first journal write failure, if any. A failed journal
// never fails the exploration — the run completes un-checkpointed — but
// callers that promised durability can surface this.
func (ck *Checkpointer) Err() error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.werr
}

// ckptRec is one journal line. Kind "hdr" opens the journal, "pub"
// records a published task, "done" a finished one.
type ckptRec struct {
	T  string `json:"t"`
	ID int    `json:"id,omitempty"`

	// hdr
	Tag string `json:"tag,omitempty"`

	// pub
	Parent  int    `json:"parent,omitempty"` // publisher task; -1 for the root
	Seq     int    `json:"seq,omitempty"`    // branch index inside the publisher's chain
	BasePos int    `json:"base,omitempty"`
	BrEn    bool   `json:"bre,omitempty"`
	BrVal   bool   `json:"brv,omitempty"`
	IrqEn   bool   `json:"ire,omitempty"`
	IrqVal  bool   `json:"irv,omitempty"`
	Seed    []byte `json:"seed,omitempty"`
	State   []byte `json:"state,omitempty"` // gzipped ulp430.EncodePortable; empty for the root

	// done
	Cycles int        `json:"cycles,omitempty"`
	Sink   []byte     `json:"sink,omitempty"`
	Nodes  []ckptNode `json:"nodes,omitempty"`
	// Kids names the task published at each branch of the chain, in
	// branch order — the liveness witness that supersedes children
	// published by earlier crashed incarnations of this task.
	Kids []int `json:"kids,omitempty"`
}

// ckptNode is one segment of a done task's chain, in creation order: every
// node but the last is a KindBranch whose NotTaken is the next entry.
type ckptNode struct {
	Len         int    `json:"len"`
	Kind        int    `json:"kind"`
	IRQ         bool   `json:"irq,omitempty"`
	PC          uint16 `json:"pc,omitempty"`
	Key         uint64 `json:"key,omitempty"`
	Key2        uint64 `json:"key2,omitempty"` // ForkKey.Hi (Key is .Lo)
	StreamStart int    `json:"ss,omitempty"`
	Payload     []byte `json:"data,omitempty"`
}

// resumeState is what a journal replay hands back to ExploreParallel.
type resumeState struct {
	nodes    []*Node          // reconstructed segments of live done tasks
	pending  []*ptask         // live tasks awaiting (re-)execution, by ID
	replayed map[int][]byte   // task ID -> sink blob, live done tasks
	claims   map[ForkKey]*Node // branch-key claims to seed
	cycles   int64
	paths    int64
	nextID   int
	rootPub  bool // the journal already holds the root's pub record

	raw       []byte // journal bytes as read
	prefixLen int    // length of the consistent prefix of raw
}

func gzipBytes(data []byte) []byte {
	var b bytes.Buffer
	zw := gzip.NewWriter(&b)
	zw.Write(data)
	zw.Close()
	return b.Bytes()
}

func gunzipBytes(data []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return io.ReadAll(zr)
}

// open loads any existing journal (resuming from its live records) and
// opens it for appending. Called once, before workers start.
func (ck *Checkpointer) open() (*resumeState, error) {
	rs, err := ck.load()
	if err != nil {
		return nil, err
	}
	if rs.prefixLen < len(rs.raw) {
		// Drop the torn or corrupt tail before appending: records written
		// after unreadable bytes could never be read back by a later
		// resume (load stops at the first bad line).
		if err := faultfs.WriteAtomic(ck.cfg.FS, ck.cfg.Path, rs.raw[:rs.prefixLen], 0o644); err != nil {
			return nil, fmt.Errorf("symx: checkpoint journal truncate: %w", err)
		}
	}
	rs.raw = nil
	f, err := ck.cfg.FS.OpenAppend(ck.cfg.Path)
	if err != nil {
		return nil, fmt.Errorf("symx: checkpoint journal: %w", err)
	}
	ck.mu.Lock()
	ck.f = f
	ck.mu.Unlock()
	if !rs.rootPub {
		// Fresh journal: stamp the header before any task record.
		ck.append(&ckptRec{T: "hdr", Tag: ck.cfg.Tag})
	}
	return rs, nil
}

// close syncs and closes the journal file.
func (ck *Checkpointer) close() {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if ck.f != nil {
		if ck.werr == nil {
			ck.f.Sync()
		}
		ck.f.Close()
		ck.f = nil
	}
}

// append writes one record (newline-terminated JSON). On the first
// failure it latches werr and drops every subsequent record: the journal
// must stay a prefix of the event stream, never a subsequence.
func (ck *Checkpointer) append(rec *ckptRec) {
	line, err := json.Marshal(rec)
	if err != nil {
		// Records are plain data; a marshal failure is a programming error.
		panic(fmt.Sprintf("symx: checkpoint record marshal: %v", err))
	}
	line = append(line, '\n')
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if ck.werr != nil || ck.f == nil {
		return
	}
	if _, err := ck.f.Write(line); err != nil {
		ck.werr = err
		return
	}
	ck.sinceSync++
	if ck.sinceSync >= ck.cfg.SyncEvery {
		ck.sinceSync = 0
		if err := ck.f.Sync(); err != nil {
			ck.werr = err
		}
	}
}

// writePub journals a task publication. Must complete before the task is
// handed to the scheduler (the pub-before-done prefix invariant).
func (ck *Checkpointer) writePub(t *ptask, parent, seq int) error {
	rec := &ckptRec{
		T: "pub", ID: t.id, Parent: parent, Seq: seq, BasePos: t.basePos,
		BrEn: t.forces.brEn, BrVal: t.forces.brVal,
		IrqEn: t.forces.irqEn, IrqVal: t.forces.irqVal,
	}
	seed, err := ck.cfg.Codec.MarshalSeed(t.seed)
	if err != nil {
		return fmt.Errorf("symx: checkpoint seed marshal: %w", err)
	}
	rec.Seed = seed
	if t.state != nil {
		rec.State = gzipBytes(ulp430.EncodePortable(t.state))
	}
	ck.append(rec)
	return nil
}

// writeDone journals a finished task: its cycle count, segment chain,
// published children, and the sink's per-task observations.
func (ck *Checkpointer) writeDone(id, cycles int, nodes []*Node, kids []int, sinkBlob []byte) error {
	rec := &ckptRec{T: "done", ID: id, Cycles: cycles, Sink: sinkBlob}
	if len(kids) > 0 {
		rec.Kids = append([]int(nil), kids...)
	}
	rec.Nodes = make([]ckptNode, len(nodes))
	for i, n := range nodes {
		payload, err := ck.cfg.Codec.MarshalPayload(n.Data)
		if err != nil {
			return fmt.Errorf("symx: checkpoint payload marshal: %w", err)
		}
		rec.Nodes[i] = ckptNode{
			Len: n.Len, Kind: int(n.Kind), IRQ: n.IRQ, PC: n.BranchPC,
			Key: n.key.Lo, Key2: n.key.Hi,
			StreamStart: n.streamStart, Payload: payload,
		}
	}
	ck.append(rec)
	return nil
}

// load parses the journal and computes the resume state. A missing file is
// a fresh run. The journal is read as a prefix: the first unparseable or
// unterminated line (a torn tail, or corruption) ends it.
func (ck *Checkpointer) load() (*resumeState, error) {
	rs := &resumeState{replayed: map[int][]byte{}, claims: map[ForkKey]*Node{}}
	data, err := ck.cfg.FS.ReadFile(ck.cfg.Path)
	if err != nil {
		return rs, nil // fresh (or unreadable — treated as fresh) journal
	}

	type pubRec struct {
		rec  *ckptRec
		live bool
	}
	rs.raw = data
	pubs := map[int]*pubRec{}
	dones := map[int]*ckptRec{}
	sawHdr := false
parse:
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn tail
		}
		line := data[:nl]
		rec := &ckptRec{}
		if err := json.Unmarshal(line, rec); err != nil {
			break // corrupted line: everything after it is lost
		}
		switch rec.T {
		case "hdr":
			if rec.Tag != ck.cfg.Tag {
				return nil, fmt.Errorf("symx: checkpoint journal %s belongs to a different analysis (tag %q, want %q)", ck.cfg.Path, rec.Tag, ck.cfg.Tag)
			}
			sawHdr = true
		case "pub":
			if _, dup := pubs[rec.ID]; !dup {
				pubs[rec.ID] = &pubRec{rec: rec}
			}
			if rec.ID >= rs.nextID {
				rs.nextID = rec.ID + 1
			}
		case "done":
			if _, dup := dones[rec.ID]; !dup {
				dones[rec.ID] = rec
			}
		default:
			// Unknown record kind: written by a newer version. Stop here —
			// the prefix up to it is still consistent.
			break parse
		}
		data = data[nl+1:]
	}
	rs.prefixLen = len(rs.raw) - len(data)
	if len(pubs) > 0 && !sawHdr {
		return nil, fmt.Errorf("symx: checkpoint journal %s has task records but no header", ck.cfg.Path)
	}

	// A task is live iff its publisher is live and done AND the publisher's
	// done record names it at the matching branch — i.e. the publisher's
	// FINAL incarnation published it. Children published by earlier crashed
	// incarnations of a task are never named by its done record, so they
	// stay orphans no matter how many crash/resume generations intervened.
	// Computed top-down from the root.
	var liveIDs []int
	var stack []int
	for id, p := range pubs {
		if p.rec.Parent < 0 {
			p.live = true
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		d := dones[id]
		if d == nil {
			continue // live but pending: re-enqueued below
		}
		liveIDs = append(liveIDs, id)
		for seq, kid := range d.Kids {
			p, ok := pubs[kid]
			if ok && !p.live && p.rec.Parent == id && p.rec.Seq == seq {
				p.live = true
				stack = append(stack, kid)
			}
		}
	}
	sort.Ints(liveIDs)

	// Reconstruct the live done tasks' segment chains.
	firstNode := map[int]*Node{}
	byTask := map[int][]*Node{}
	for _, id := range liveIDs {
		d := dones[id]
		if len(d.Nodes) == 0 {
			return nil, fmt.Errorf("symx: checkpoint journal %s: done task %d has no segments", ck.cfg.Path, id)
		}
		chain := make([]*Node, len(d.Nodes))
		for i, cn := range d.Nodes {
			payload, err := ck.cfg.Codec.UnmarshalPayload(cn.Payload)
			if err != nil {
				return nil, fmt.Errorf("symx: checkpoint journal %s: task %d segment %d payload: %w", ck.cfg.Path, id, i, err)
			}
			n := &Node{
				Len: cn.Len, Kind: NodeKind(cn.Kind), IRQ: cn.IRQ,
				BranchPC: cn.PC, Data: payload,
				key:  ForkKey{Lo: cn.Key, Hi: cn.Key2},
				task: id, streamStart: cn.StreamStart, seq: i,
			}
			chain[i] = n
			if i > 0 {
				if chain[i-1].Kind != KindBranch {
					return nil, fmt.Errorf("symx: checkpoint journal %s: task %d has a non-branch mid-chain segment", ck.cfg.Path, id)
				}
				chain[i-1].NotTaken = n
			}
		}
		last := chain[len(chain)-1]
		if last.Kind == KindBranch {
			return nil, fmt.Errorf("symx: checkpoint journal %s: task %d chain ends on a branch", ck.cfg.Path, id)
		}
		firstNode[id] = chain[0]
		byTask[id] = chain
		rs.nodes = append(rs.nodes, chain...)
		rs.cycles += int64(d.Cycles)
		rs.paths++
		rs.replayed[id] = d.Sink
		for _, n := range chain {
			if n.Kind == KindBranch {
				if prev, dup := rs.claims[n.key]; dup && prev != n {
					return nil, fmt.Errorf("symx: checkpoint journal %s: fork key %#x:%#x claimed by two live tasks", ck.cfg.Path, n.key.Lo, n.key.Hi)
				}
				rs.claims[n.key] = n
			}
		}
	}

	// Graft each live task onto its publisher's branch node, and build the
	// pending task list.
	var pendingIDs []int
	for id, p := range pubs {
		if !p.live {
			continue
		}
		if dones[id] == nil {
			pendingIDs = append(pendingIDs, id)
		}
		if p.rec.Parent >= 0 {
			chain := byTask[p.rec.Parent]
			if p.rec.Seq >= len(chain) || chain[p.rec.Seq].Kind != KindBranch {
				return nil, fmt.Errorf("symx: checkpoint journal %s: task %d grafts onto a non-branch segment of task %d", ck.cfg.Path, id, p.rec.Parent)
			}
			if first, ok := firstNode[id]; ok {
				chain[p.rec.Seq].Taken = first
			}
		} else {
			rs.rootPub = true
		}
	}
	sort.Ints(pendingIDs)
	for _, id := range pendingIDs {
		rec := pubs[id].rec
		t := &ptask{
			id:      id,
			basePos: rec.BasePos,
			forces: forkForces{
				brEn: rec.BrEn, brVal: rec.BrVal,
				irqEn: rec.IrqEn, irqVal: rec.IrqVal,
			},
		}
		seed, err := ck.cfg.Codec.UnmarshalSeed(rec.Seed)
		if err != nil {
			return nil, fmt.Errorf("symx: checkpoint journal %s: task %d seed: %w", ck.cfg.Path, id, err)
		}
		t.seed = seed
		if len(rec.State) > 0 {
			raw, err := gunzipBytes(rec.State)
			if err != nil {
				return nil, fmt.Errorf("symx: checkpoint journal %s: task %d state: %w", ck.cfg.Path, id, err)
			}
			st, err := ulp430.DecodePortable(raw)
			if err != nil {
				return nil, fmt.Errorf("symx: checkpoint journal %s: task %d state: %w", ck.cfg.Path, id, err)
			}
			t.state = st
		}
		if rec.Parent >= 0 {
			t.branch = byTask[rec.Parent][rec.Seq]
		}
		rs.pending = append(rs.pending, t)
	}
	return rs, nil
}
