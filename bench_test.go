package repro

// The benchmark harness: one testing.B target per table and figure of
// the paper (the per-experiment index of DESIGN.md), plus ablation
// benches for the design decisions DESIGN.md calls out. Each benchmark
// regenerates its experiment end to end; the rendered output of the
// full set is produced by `go run ./cmd/figures`.

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/cell"
	"repro/internal/figures"
	"repro/internal/gsim"
	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/symx"
	"repro/internal/ulp430"
	"repro/peakpower"
)

var (
	cfgOnce sync.Once
	cfg     *figures.Config
	cfgErr  error
)

// sharedConfig reuses one experimental setup (and its caches) across all
// benchmark targets, like the paper's single synthesized design.
func sharedConfig(b *testing.B) *figures.Config {
	b.Helper()
	cfgOnce.Do(func() {
		cfg, cfgErr = figures.NewConfig(io.Discard)
		if cfg != nil {
			cfg.ProfileRuns = 3
		}
	})
	if cfgErr != nil {
		b.Fatal(cfgErr)
	}
	return cfg
}

// fastSet is the benchmark subset used by sweep-style experiments to
// keep single-iteration timings reasonable; the cmd/figures tool runs
// all 14.
var fastSet = []string{"mult", "binSearch", "tea8", "tHold", "intAVG", "PI"}

func BenchmarkFig2_2_MeasuredPeakPower(b *testing.B) {
	c := sharedConfig(b)
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig22(fastSet); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2_3_InstPowerProfile(b *testing.B) {
	c := sharedConfig(b)
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig23(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1_5_PeakCycleActivity(b *testing.B) {
	c := sharedConfig(b)
	for i := 0; i < b.N; i++ {
		th, pi, err := c.Fig15()
		if err != nil {
			b.Fatal(err)
		}
		if pi <= th {
			b.Fatalf("PI (%d gates) must exercise more of the processor at its peak than tHold (%d)", pi, th)
		}
	}
}

func BenchmarkFig3_2_EvenOddAssignment(b *testing.B) {
	c := sharedConfig(b)
	for i := 0; i < b.N; i++ {
		if err := c.Fig32(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_3_PeakPowerTraces(b *testing.B) {
	c := sharedConfig(b)
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig33(fastSet); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_4_ToggleContainment(b *testing.B) {
	c := sharedConfig(b)
	for i := 0; i < b.N; i++ {
		res, err := c.Fig34("mult",
			[]uint16{1, 0, 2, 0, 1, 2, 0, 1},
			[]uint16{0xFFFF, 0xAAAA, 0xF731, 0x8001, 0x7FFF, 0x5555, 0xFF0F, 0xFFFE})
		if err != nil {
			b.Fatal(err)
		}
		if res.InputOnly != 0 {
			b.Fatalf("%d gates toggled outside the X-based set", res.InputOnly)
		}
	}
}

func BenchmarkFig3_5_TraceBound(b *testing.B) {
	c := sharedConfig(b)
	for i := 0; i < b.N; i++ {
		x, in, err := c.Fig35()
		if err != nil {
			b.Fatal(err)
		}
		for cyc := range in {
			if cyc < len(x) && in[cyc] > x[cyc]+1e-9 {
				b.Fatalf("cycle %d: input-based %.4f exceeds X-based %.4f", cyc, in[cyc], x[cyc])
			}
		}
	}
}

func BenchmarkFig3_6_COIAnalysis(b *testing.B) {
	c := sharedConfig(b)
	for i := 0; i < b.N; i++ {
		cois, err := c.Fig36()
		if err != nil {
			b.Fatal(err)
		}
		if len(cois) == 0 {
			b.Fatal("no cycles of interest")
		}
	}
}

func BenchmarkFig4_1_PeakPower(b *testing.B) {
	c := sharedConfig(b)
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig41(fastSet); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_1_NPE(b *testing.B) {
	c := sharedConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := c.Fig41(fastSet)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.MaxNPE <= 0 {
				b.Fatal("missing NPE data")
			}
		}
	}
}

func BenchmarkFig5_1_PeakPowerComparison(b *testing.B) {
	c := sharedConfig(b)
	for i := 0; i < b.N; i++ {
		rows, agg, err := c.Fig51(fastSet)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			// The paper's ordering: X-based bounds observed; guardbanded
			// and application-oblivious techniques are looser.
			if !(r.XBased >= r.InputBased && r.GBInput > r.XBased*0.99 &&
				r.DesignTool > r.XBased && r.GBStress > r.XBased) {
				b.Fatalf("technique ordering violated for %s: %+v", r.Bench, r)
			}
		}
		if agg.VsGBInputPct <= 0 || agg.VsDesignPct <= 0 {
			b.Fatalf("aggregates: %+v", agg)
		}
	}
}

func BenchmarkFig5_2_NPEComparison(b *testing.B) {
	c := sharedConfig(b)
	for i := 0; i < b.N; i++ {
		rows, _, err := c.Fig52(fastSet)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.XBased > r.GBInput || r.XBased > r.DesignTool {
				b.Fatalf("NPE ordering violated for %s", r.Bench)
			}
		}
	}
}

func BenchmarkTable5_1_HarvesterReduction(b *testing.B) {
	c := sharedConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := c.Table51(fastSet)
		if err != nil {
			b.Fatal(err)
		}
		for base, row := range rows {
			if row[len(row)-1] <= 0 {
				b.Fatalf("no harvester reduction vs %s", base)
			}
		}
	}
}

func BenchmarkTable5_2_BatteryReduction(b *testing.B) {
	c := sharedConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := c.Table52(fastSet)
		if err != nil {
			b.Fatal(err)
		}
		for base, row := range rows {
			if row[len(row)-1] <= 0 {
				b.Fatalf("no battery reduction vs %s", base)
			}
		}
	}
}

func BenchmarkFig5_4_OptPeakReduction(b *testing.B) {
	c := sharedConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := c.Fig54([]string{"mult", "binSearch", "rle"})
		if err != nil {
			b.Fatal(err)
		}
		improved := false
		for _, r := range rows {
			if r.PeakReductionPct > 0 {
				improved = true
			}
		}
		if !improved {
			b.Fatal("optimizations improved nothing")
		}
	}
}

func BenchmarkFig5_5_OptTrace(b *testing.B) {
	c := sharedConfig(b)
	for i := 0; i < b.N; i++ {
		before, after, err := c.Fig55()
		if err != nil {
			b.Fatal(err)
		}
		if len(before) == 0 || len(after) <= len(before) {
			b.Fatal("optimized trace should be longer (inserted NOPs)")
		}
	}
}

func BenchmarkFig5_6_OptOverhead(b *testing.B) {
	c := sharedConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := c.Fig54([]string{"mult", "rle"})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Applied && r.PerfDegradationPct < 0 {
				b.Fatalf("%s: negative overhead?", r.Bench)
			}
		}
	}
}

// --- ablations (DESIGN.md §4) -----------------------------------------

// BenchmarkAblationStateMerging demonstrates what Algorithm 1's
// seen-state merging is for: tHold's input-dependent wait loop is finite
// to analyze only because a re-encountered (branch, state) pair merges.
// With merging disabled, exploration must exhaust any cycle budget.
func BenchmarkAblationStateMerging(b *testing.B) {
	bb := bench.ByName("tHold")
	img, err := bb.Image()
	if err != nil {
		b.Fatal(err)
	}
	nl, err := ulp430.BuildCPU()
	if err != nil {
		b.Fatal(err)
	}
	m := power.Model{Lib: cell.ULP65(), ClockHz: 100e6}
	run := func(disable bool, budget int) (cycles int, err error) {
		sys, serr := ulp430.NewSystem(nl, m.Lib, img, ulp430.SymbolicInputs, nil)
		if serr != nil {
			b.Fatal(serr)
		}
		sink := power.NewSink(sys, m, img, 0)
		tree, err := symx.Explore(sys, sink, symx.Options{
			MaxCycles: budget, MaxNodes: 120000, DisableMerge: disable,
		})
		if err != nil {
			return 0, err
		}
		return tree.Cycles, nil
	}
	for i := 0; i < b.N; i++ {
		mc, err := run(false, bb.MaxCycles)
		if err != nil {
			b.Fatalf("merged exploration must terminate: %v", err)
		}
		// Any budget, however large, is exhausted without merging; a
		// modest one demonstrates it quickly (50x the merged cost).
		if _, err := run(true, 50*mc); err == nil {
			b.Fatal("unmerged exploration of a wait loop should exhaust its budget")
		}
		b.ReportMetric(float64(mc), "merged-cycles")
	}
}

// BenchmarkAblationAlgorithmTwo compares Algorithm 2's consistent
// even/odd assignment against the naive "every active-X gate takes its
// maximum transition every cycle" bound — identical here by construction
// (the streaming rule IS the per-cycle max), and against the
// no-activity-annotation bound (every X gate toggles), which is what the
// activity analysis buys.
func BenchmarkAblationAlgorithmTwo(b *testing.B) {
	img, err := isa.Assemble("ablation", `
.org 0x0200
v: .input 4
.org 0xf000
.entry main
main:
    mov #0x0080, &0x0120
    mov &v, r4
    add &v+2, r4
    xor &v+4, r4
    and &v+6, r4
    mov r4, &0x0208
    mov #1, &0x0126
spin: jmp spin
`)
	if err != nil {
		b.Fatal(err)
	}
	nl, err := ulp430.BuildCPU()
	if err != nil {
		b.Fatal(err)
	}
	m := power.Model{Lib: cell.ULP65(), ClockHz: 100e6}
	for i := 0; i < b.N; i++ {
		sys, err := ulp430.NewSystem(nl, m.Lib, img, ulp430.SymbolicInputs, nil)
		if err != nil {
			b.Fatal(err)
		}
		sys.Reset()
		w, err := power.Capture(sys, 40)
		if err != nil {
			b.Fatal(err)
		}
		peak, _, _ := power.AlgorithmTwo(w, m)
		best := 0.0
		for _, p := range peak {
			if p > best {
				best = p
			}
		}
		// Naive bound: every X-valued gate (active or not) toggles at max
		// energy.
		naive := naiveBound(w, m)
		if naive <= best {
			b.Fatalf("activity annotation must tighten the bound: naive %.3f vs alg2 %.3f", naive, best)
		}
		b.ReportMetric(naive/best, "naive-looseness-x")
	}
}

func naiveBound(w *power.Window, m power.Model) float64 {
	best := 0.0
	for c := 1; c < len(w.Vals); c++ {
		e := 0.0
		for g, k := range w.Kinds {
			p := m.Lib.Params(k)
			e += p.EnergyClk
			if w.Vals[c][g] == 2 /* X */ || w.Vals[c-1][g] != w.Vals[c][g] {
				_, _, max := m.Lib.MaxTransition(k)
				e += max
			}
		}
		if pw := m.PowerMW(e); pw > best {
			best = pw
		}
	}
	return best
}

// BenchmarkAnalyzeSuite measures raw co-analysis throughput over the
// fast subset (the tool-runtime datapoint).
func BenchmarkAnalyzeSuite(b *testing.B) {
	c := sharedConfig(b)
	for i := 0; i < b.N; i++ {
		for _, name := range fastSet {
			if _, err := c.Req(name); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- gate-engine benchmarks (PERFORMANCE.md) --------------------------

var engineVariants = []struct {
	name   string
	engine gsim.Engine
}{
	{"packed", gsim.EnginePacked},
	{"scalar", gsim.EngineScalar},
}

// BenchmarkEngineStepConcrete is the settle-loop micro-benchmark: raw
// Step throughput of each gate engine over a concrete execution of the
// mult benchmark (restored to the post-reset state whenever it halts).
func BenchmarkEngineStepConcrete(b *testing.B) {
	bb := bench.ByName("mult")
	img, err := bb.Image()
	if err != nil {
		b.Fatal(err)
	}
	nl, err := ulp430.BuildCPU()
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range engineVariants {
		b.Run(v.name, func(b *testing.B) {
			sys, err := ulp430.NewSystemEngine(v.engine, nl, cell.ULP65(), img,
				ulp430.ConcreteInputs, []uint16{3, 5, 7, 2, 1, 9, 4, 8})
			if err != nil {
				b.Fatal(err)
			}
			sys.Reset()
			snap := sys.Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sys.Halted() {
					sys.Restore(snap)
				}
				sys.Step()
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}

// BenchmarkEngineExploreSymbolic measures one full symbolic exploration
// (Algorithm 1 + streaming power sink) per iteration — the co-analysis
// inner loop, X values in flight.
func BenchmarkEngineExploreSymbolic(b *testing.B) {
	bb := bench.ByName("binSearch")
	img, err := bb.Image()
	if err != nil {
		b.Fatal(err)
	}
	nl, err := ulp430.BuildCPU()
	if err != nil {
		b.Fatal(err)
	}
	m := power.Model{Lib: cell.ULP65(), ClockHz: 100e6}
	for _, v := range engineVariants {
		b.Run(v.name, func(b *testing.B) {
			cycles := 0
			for i := 0; i < b.N; i++ {
				sys, err := ulp430.NewSystemEngine(v.engine, nl, m.Lib, img, ulp430.SymbolicInputs, nil)
				if err != nil {
					b.Fatal(err)
				}
				sink := power.NewSink(sys, m, img, 8)
				tree, err := symx.Explore(sys, sink, symx.Options{MaxCycles: 2 * bb.MaxCycles})
				if err != nil {
					b.Fatal(err)
				}
				cycles += tree.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
		})
	}
}

// BenchmarkEngineCoAnalysis is the end-to-end macro-benchmark behind
// PERFORMANCE.md's headline number: a fresh, uncached peakpower
// co-analysis of three representative Table 4.1 benchmarks per
// iteration, per engine. The packed/scalar ns/op ratio is the engine
// speedup.
func BenchmarkEngineCoAnalysis(b *testing.B) {
	a, err := peakpower.New()
	if err != nil {
		b.Fatal(err)
	}
	apps := []string{"mult", "tHold", "binSearch"}
	for _, v := range engineVariants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, name := range apps {
					if _, err := a.AnalyzeBench(context.Background(), name, peakpower.WithEngine(v.engine)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkMemo measures the whole-step memoization (PERFORMANCE.md,
// "Engine speed round 2") by running the same fresh co-analysis with the
// memo table on and off. The sealed Reports are byte-identical either
// way (peakpower's memo determinism suite asserts it); this benchmark
// captures only the replay speedup. sensorDuty and adcSample are the
// convergent, loop-heavy explorations the step table targets; tHold and
// binSearch are path-divergent controls where probation must cut the
// table's overhead to noise.
func BenchmarkMemo(b *testing.B) {
	a, err := peakpower.New()
	if err != nil {
		b.Fatal(err)
	}
	for _, app := range []string{"tHold", "binSearch", "sensorDuty", "adcSample"} {
		for _, memo := range []bool{false, true} {
			b.Run(fmt.Sprintf("%s/memo=%v", app, memo), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := a.AnalyzeBench(context.Background(), app,
						peakpower.WithMemo(memo)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkExploreWorkers scales the work-stealing parallel exploration
// across worker counts on sensorDuty — the widest interrupt-forking tree
// in the suite (dozens of pending fork points, so work actually
// distributes). The result is bit-identical at every count (asserted by
// peakpower's determinism suite); this benchmark measures only the
// wall-clock effect. On a single-core host the expected curve is flat:
// the workers multiplex one CPU (see PERFORMANCE.md).
func BenchmarkExploreWorkers(b *testing.B) {
	a, err := peakpower.New()
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := a.AnalyzeBench(context.Background(), "sensorDuty",
					peakpower.WithExploreWorkers(w)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
