// Package soc pins down the ULP430 system-on-chip memory map shared by
// the behavioral reference simulator (isim), the gate-level system
// (ulp430), and the benchmarks. The layout mirrors a small MSP430-class
// microcontroller: low peripheral space, 2 KiB of SRAM, 4 KiB of program
// ROM, and a reset vector at the top of the address space.
//
// The layout has one source of truth: the declarative Layout address map
// (built on internal/periph's area map). The region predicates below are
// lookups into it, so the predicates, the gate-level bus routing, and the
// behavioral simulator can never disagree about what lives where.
package soc

import "repro/internal/periph"

// Memory regions (byte addresses; all accesses are word-aligned).
const (
	// RAMStart is the first byte of SRAM.
	RAMStart = 0x0200
	// RAMEnd is one past the last byte of SRAM (2 KiB).
	RAMEnd = 0x0A00
	// ROMStart is the first byte of program ROM.
	ROMStart = 0xF000
	// ROMEnd is one past the last byte of ROM (the vector area is inside).
	ROMEnd = 0x10000
	// StackTop is the conventional initial stack pointer.
	StackTop = RAMEnd
)

// Peripheral registers.
const (
	// WDTCTL is the watchdog control register; bit 7 (WDTHOLD) stops the
	// free-running watchdog counter.
	WDTCTL = 0x0120
	// P1IN is the input port: reads return external input (X under
	// symbolic simulation — the paper's "set all peripheral port inputs
	// to Xs", Algorithm 1 line 11).
	P1IN = 0x0122
	// P1OUT is the output port register.
	P1OUT = 0x0124
	// HALTREG ends simulation when written with a non-zero value; it is
	// the SoC's "end of application" signal (Algorithm 1's END marker).
	HALTREG = 0x0126
	// MPY is the hardware multiplier's first operand (unsigned multiply).
	MPY = 0x0130
	// MPYS aliases MPY (the signed-multiply register of the MSP430
	// multiplier; this implementation treats it as unsigned — documented
	// simplification, the benchmarks use unsigned multiplies).
	MPYS = 0x0132
	// OP2 is the multiplier's second operand; writing it triggers the
	// multiplication.
	OP2 = 0x0138
	// RESLO holds the low 16 bits of the product.
	RESLO = 0x013A
	// RESHI holds the high 16 bits of the product.
	RESHI = 0x013C
)

// WDTHold is the WDTCTL bit that freezes the watchdog counter.
const WDTHold = 0x0080

// IRQVecFetch is the vector indirection port: during interrupt entry the
// CPU issues its vector read at this fixed address and the peripheral
// bus substitutes the pending device's vector-table entry (priority:
// timer above ADC). The address sits inside ROM but below the vector
// table, where no program places code.
const IRQVecFetch = 0xFFF0

// Area tags classifying the Layout map's regions.
const (
	// TagRAM marks SRAM.
	TagRAM = iota
	// TagROM marks program ROM.
	TagROM
	// TagCoreReg marks the core peripheral registers (watchdog, port,
	// halt, multiplier) implemented inside the CPU model itself.
	TagCoreReg
	// TagDevice marks the memory-mapped device space served by
	// internal/periph's bus (timer, ADC, radio). Without a bus attached
	// the space is unpopulated and accesses fault.
	TagDevice
)

// Layout is the SoC address map: every addressable region, its extent,
// and its classification tag. It is the single source of truth — the
// predicates below and the simulators' bus routing all consult it.
var Layout = periph.MustMap(
	periph.Area{Name: "sysregs", Start: WDTCTL, End: HALTREG + 2, Tag: TagCoreReg},
	periph.Area{Name: "mpy", Start: MPY, End: MPYS + 2, Tag: TagCoreReg},
	periph.Area{Name: "mpyres", Start: OP2, End: RESHI + 2, Tag: TagCoreReg},
	periph.Area{Name: "timer", Start: periph.TACTL, End: periph.TACCR + 2, Tag: TagDevice},
	periph.Area{Name: "adc", Start: periph.ADCTL, End: periph.ADDATA + 2, Tag: TagDevice},
	periph.Area{Name: "radio", Start: periph.RFCTL, End: periph.RFTX + 2, Tag: TagDevice},
	periph.Area{Name: "sram", Start: RAMStart, End: RAMEnd, Tag: TagRAM},
	periph.Area{Name: "rom", Start: ROMStart, End: ROMEnd, Tag: TagROM},
)

// tagOf classifies an address; areas are word-granular, so any byte of a
// mapped word classifies like the word.
func tagOf(a uint16) (int, bool) {
	area, ok := Layout.Lookup(a)
	if !ok {
		return 0, false
	}
	return area.Tag, true
}

// InRAM reports whether byte address a lies in SRAM.
func InRAM(a uint16) bool {
	t, ok := tagOf(a)
	return ok && t == TagRAM
}

// InROM reports whether byte address a lies in program ROM.
func InROM(a uint16) bool {
	t, ok := tagOf(a)
	return ok && t == TagROM
}

// IsPeripheral reports whether byte address a is a core peripheral
// register (implemented inside the CPU model, not on the device bus).
func IsPeripheral(a uint16) bool {
	t, ok := tagOf(a)
	return ok && t == TagCoreReg
}

// InDeviceSpace reports whether byte address a belongs to the
// memory-mapped device bus (timer/ADC/radio registers).
func InDeviceSpace(a uint16) bool {
	t, ok := tagOf(a)
	return ok && t == TagDevice
}

// RegionName names the region containing a, or "unmapped".
func RegionName(a uint16) string {
	area, ok := Layout.Lookup(a)
	if !ok {
		return "unmapped"
	}
	return area.Name
}
