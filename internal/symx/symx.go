// Package symx implements Algorithm 1 of the paper: input-independent
// gate activity analysis by symbolic simulation of an application binary
// on the gate-level processor netlist.
//
// The engine drives a ulp430.System in SymbolicInputs mode. Unknown (X)
// values propagate from input regions and port reads; when an X reaches
// the jump-condition logic (the paper's "X propagates to the inputs of
// the program counter"), the engine forks: it rewinds one cycle, forces
// the condition each way in turn, and explores both successors
// depth-first, exactly as Algorithm 1's stack of un-processed execution
// paths. A fork whose pre-branch processor state (flip-flops + RAM) has
// been seen before is not re-explored — the merging rule that lets the
// analysis terminate on input-dependent loops.
//
// Interrupts extend the same rule to asynchronous arrival: with a
// peripheral bus attached (ulp430.EnableInterrupts), an open symbolic
// arrival window drives the CPU's request line to X, and every
// interruptible instruction boundary inside the window
// (ulp430.IRQCondUnknown) is a fork point — arrived here versus
// deferred past this boundary. One cycle can fork twice (a conditional
// jump's EXEC cycle is also an instruction boundary): the resolve loop
// rewinds and re-steps until every control condition of the cycle is
// concrete, accumulating the forced directions, and the merge key mixes
// those forces so partially-resolved states are never conflated.
//
// The result is the annotated symbolic execution tree: segments of
// straight-line cycles whose per-cycle observations are collected by a
// caller-supplied Sink (package power provides the peak-power sink), and
// branch/end/merge terminals.
//
// Exploration is engineered around the gate engine's snapshot costs:
// the one-cycle-back rolling snapshot reuses one buffer set
// (SnapshotInto), and fork snapshots are recycled through a
// per-exploration pool (CloneInto) the moment the pending direction has
// been restored — with the packed engine's bit-plane state, a fork
// costs a ~3 KB copy and no allocation in steady state.
package symx

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ulp430"
)

// Budget exhaustion sentinels, matchable with errors.Is. Explore wraps
// them with the concrete limit and a diagnosis.
var (
	// ErrCycleBudget reports that exploration exceeded Options.MaxCycles.
	ErrCycleBudget = errors.New("cycle budget exhausted")
	// ErrNodeBudget reports that the tree exceeded Options.MaxNodes.
	ErrNodeBudget = errors.New("node budget exhausted")
)

// Sink observes every simulated cycle along the current path, with
// rewind support for depth-first exploration. Positions are cycle counts
// along the current root-to-here path.
type Sink interface {
	// OnCycle is called after each simulated cycle (the system is settled).
	OnCycle(sys *ulp430.System)
	// Pos returns the current path position (cycles since the root).
	Pos() int
	// Rewind discards observations at positions >= pos.
	Rewind(pos int)
	// Segment extracts the payload of the half-open range [from, Pos()),
	// to be stored on the tree node covering it.
	Segment(from int) interface{}
}

// NodeKind classifies how a tree segment terminates.
type NodeKind uint8

const (
	// KindBranch ends at an input-dependent conditional jump (or, with
	// IRQ set, an unresolved interrupt arrival); Taken and NotTaken are
	// its children.
	KindBranch NodeKind = iota
	// KindEnd ends with the application halting.
	KindEnd
	// KindMerge ends because the pre-branch state was already explored;
	// MergeTo is the equivalent branch node.
	KindMerge
)

// Node is one segment of the symbolic execution tree: Len straight-line
// cycles followed by a terminal. A node of a double-forked cycle (jump
// EXEC that is also an interruptible boundary) may have Len 0.
type Node struct {
	// ID is the node's index in Tree.Nodes.
	ID int
	// Len is the number of cycles in the segment.
	Len int
	// Data is the sink payload for this segment.
	Data interface{}
	// Kind is the terminal classification.
	Kind NodeKind
	// IRQ marks a KindBranch/KindMerge that forks on interrupt arrival
	// (Taken = arrived at this boundary, NotTaken = deferred) rather than
	// on a jump condition.
	IRQ bool
	// BranchPC is the address of the forking jump, or of the instruction
	// boundary for an IRQ fork (KindBranch/KindMerge).
	BranchPC uint16
	// Taken and NotTaken are the successors of a KindBranch node. The
	// forked cycle itself is the first cycle of each child segment.
	Taken, NotTaken *Node
	// MergeTo is the already-explored branch node (KindMerge).
	MergeTo *Node

	// key is the merge key of a fork terminal (KindBranch/KindMerge):
	// the 128-bit pre-branch state key mixed with the accumulated fork
	// forces. The sequential engine resolves keys against its seen map
	// immediately; the parallel engine records them here and resolves
	// branch-versus-merge in canonical order during assembly.
	key ForkKey
	// seq is the node's index in its task's creation order — the
	// coordinate checkpoint pub records use to graft a published task
	// onto its publisher's branch node across a restart.
	seq int
	// task and streamStart locate the segment inside the parallel
	// exploration that produced it: the owning task and the index of the
	// segment's first observation in that task's observation stream.
	// Canonical observation order is (final ID, stream index) — the
	// sort key the sink merge uses. Zero for sequential exploration.
	task        int
	streamStart int
}

// Tree is the symbolic execution tree of one application.
type Tree struct {
	// Root is the entry segment (starts at the first cycle after reset).
	Root *Node
	// Nodes lists all segments in creation order.
	Nodes []*Node
	// Paths counts explored terminals (KindEnd + KindMerge).
	Paths int
	// Cycles counts total simulated cycles (including re-simulated fork
	// cycles once per direction).
	Cycles int
}

// Progress is a snapshot of exploration statistics, delivered to the
// Options.Progress hook.
type Progress struct {
	// Cycles is the total simulated cycle count so far.
	Cycles int
	// Nodes is the number of tree segments created so far.
	Nodes int
	// Paths is the number of explored terminals so far.
	Paths int
}

// Options bound the exploration.
type Options struct {
	// MaxCycles caps total simulated cycles (default 2,000,000).
	MaxCycles int
	// MaxNodes caps tree nodes (default 10,000).
	MaxNodes int
	// DisableMerge turns off Algorithm 1's seen-state path merging —
	// exploration degenerates to a pure tree. Only useful for the
	// ablation study quantifying what merging saves; input-dependent
	// wait loops will not terminate with merging disabled.
	DisableMerge bool
	// Ctx, when non-nil, is polled every cancelCheckEvery simulated
	// cycles; once it is canceled or its deadline passes, Explore
	// returns promptly with an error wrapping Ctx.Err() (matchable via
	// errors.Is with context.Canceled / context.DeadlineExceeded).
	Ctx context.Context
	// Progress, when non-nil, is called from the exploring goroutine
	// roughly every ProgressEvery simulated cycles and once when
	// exploration finishes (on success or failure). It must be fast and
	// must not call back into the exploration.
	Progress func(Progress)
	// ProgressEvery is the Progress reporting period in simulated
	// cycles (default 8192).
	ProgressEvery int
}

// cancelCheckEvery is the context-poll period in simulated cycles. One
// simulated cycle costs ~0.25 ms of wall time (a full netlist settle),
// so even a fine period keeps Ctx.Err() invisible in profiles while
// bounding cancellation latency to a few milliseconds.
const cancelCheckEvery = 32

func (o Options) withDefaults() Options {
	if o.MaxCycles == 0 {
		o.MaxCycles = 2_000_000
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 10_000
	}
	if o.ProgressEvery <= 0 {
		o.ProgressEvery = 8192
	}
	return o
}

// forkForces is the set of control-condition overrides a forked cycle is
// re-stepped under. A double-forked cycle accumulates both.
type forkForces struct {
	brEn, brVal   bool // force the jump condition
	irqEn, irqVal bool // force the interrupt arrival
}

// with returns f extended by one more forced condition.
func (f forkForces) with(irq, dir bool) forkForces {
	if irq {
		f.irqEn, f.irqVal = true, dir
	} else {
		f.brEn, f.brVal = true, dir
	}
	return f
}

// ForkKey is the exploration's 128-bit merge key: the system's dual
// state hash (ulp430.System.StateKey) mixed with the accumulated fork
// forces, one independent multiplier per word. Two states merge only
// when both words agree — a joint collision across two independently
// mixed 64-bit hashes — which is what lets the engine treat key
// equality as state equality (DESIGN.md "Merge keys"). Key values are
// transient: they appear in the checkpoint journal and the fleet wire
// protocol (both private, single-run formats) but never in a sealed
// Report, so the key function may evolve freely.
type ForkKey struct {
	Lo, Hi uint64
}

// key folds the force set into the merge key: the same pre-cycle state
// under different already-decided directions has different futures.
func (f forkForces) key() ForkKey {
	var k uint64
	if f.brEn {
		k |= 1
	}
	if f.brVal {
		k |= 2
	}
	if f.irqEn {
		k |= 4
	}
	if f.irqVal {
		k |= 8
	}
	return ForkKey{Lo: k * 0x9E3779B97F4A7C15, Hi: k * 0xA24BAED4963EE407}
}

// stateKey is the merge key of the system's current state under the
// accumulated forces.
func stateKey(sys *ulp430.System, pending forkForces) ForkKey {
	lo, hi := sys.StateKey()
	fk := pending.key()
	return ForkKey{Lo: lo ^ fk.Lo, Hi: hi ^ fk.Hi}
}

// Budget errors are built in one place so the sequential and parallel
// engines fail with byte-identical text.
func cycleBudgetErr(max int) error {
	return fmt.Errorf("symx: exceeded %d cycles (unbounded exploration? add smaller inputs or check for un-merged input-dependent loops): %w", max, ErrCycleBudget)
}

func nodeBudgetErr(max int) error {
	return fmt.Errorf("symx: exceeded %d tree nodes: %w", max, ErrNodeBudget)
}

type pendingFork struct {
	snap    *ulp430.SysSnapshot // state before the forked cycle
	sinkPos int
	branch  *Node
	forces  forkForces // full force set for the direction still to explore
}

// Explore runs Algorithm 1 to completion. The system must be freshly
// created in SymbolicInputs mode; Explore performs the reset itself.
func Explore(sys *ulp430.System, sink Sink, opts Options) (*Tree, error) {
	opts = opts.withDefaults()
	sys.Reset()

	tree := &Tree{}
	if opts.Progress != nil {
		// Final snapshot on every exit path, success or failure.
		defer func() {
			opts.Progress(Progress{Cycles: tree.Cycles, Nodes: len(tree.Nodes), Paths: tree.Paths})
		}()
	}
	nextProgress := opts.ProgressEvery
	nextCancel := cancelCheckEvery
	newNode := func() *Node {
		n := &Node{ID: len(tree.Nodes)}
		tree.Nodes = append(tree.Nodes, n)
		return n
	}
	tree.Root = newNode()

	seen := make(map[ForkKey]*Node)
	var stack []pendingFork

	cur := tree.Root
	segStart := sink.Pos()

	// Rolling one-cycle-back snapshot (reused buffers, cloned only at
	// fork points).
	roll := &ulp430.SysSnapshot{}

	// Fork snapshots come from a free pool: a pending fork's snapshot is
	// dead as soon as pop has restored it, so its buffers (the packed
	// engine's bit-planes) are recycled for the next fork instead of
	// reallocating per branch. The pool is local to this exploration —
	// per-goroutine state, never shared (the parallel engine gives each
	// worker its own).
	var snapPool snapPool

	finishSegment := func(kind NodeKind) {
		cur.Kind = kind
		cur.Len = sink.Pos() - segStart
		cur.Data = sink.Segment(segStart)
	}

	// pending is the force set for the cycle about to be (re-)stepped:
	// empty on the mainline, the popped fork's accumulated directions
	// right after pop.
	var pending forkForces

	// applyForces stages every accumulated override before a re-step.
	// They must all be re-applied each time — Restore resets the force
	// nets and the one-shot IRQ override alike.
	applyForces := func() {
		if pending.brEn {
			sys.ForceBranch(pending.brVal)
		}
		if pending.irqEn {
			sys.ForceIRQ(pending.irqVal)
		}
	}

	// pop resumes the next pending fork direction, or returns false. The
	// outer loop re-snapshots and re-steps the forked cycle under the
	// restored force set.
	pop := func() bool {
		if len(stack) == 0 {
			return false
		}
		pf := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sys.Restore(pf.snap)
		snapPool.put(pf.snap)
		sink.Rewind(pf.sinkPos)
		child := newNode()
		pf.branch.Taken = child
		cur = child
		segStart = pf.sinkPos
		pending = pf.forces
		return true
	}

outer:
	for {
		if err := sys.Err(); err != nil {
			return nil, err
		}
		if opts.Ctx != nil && tree.Cycles >= nextCancel {
			nextCancel = tree.Cycles + cancelCheckEvery
			if err := opts.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("symx: exploration aborted after %d cycles (%d paths): %w",
					tree.Cycles, tree.Paths, err)
			}
		}
		if opts.Progress != nil && tree.Cycles >= nextProgress {
			nextProgress = tree.Cycles + opts.ProgressEvery
			opts.Progress(Progress{Cycles: tree.Cycles, Nodes: len(tree.Nodes), Paths: tree.Paths})
		}
		if sys.Halted() {
			finishSegment(KindEnd)
			tree.Paths++
			if !pop() {
				return tree, nil
			}
			continue
		}
		// Budgets are exact: exploration fails if and only if the total
		// exceeds the cap, detected the moment a counter crosses it (the
		// cycle counter is also checked inside the resolve loop, where
		// fork re-steps accumulate between visits here). Exactness is
		// what lets the parallel engine — whose workers interleave
		// nondeterministically — reproduce the same success-or-failure
		// decision from shared atomic counters.
		if tree.Cycles > opts.MaxCycles {
			return nil, cycleBudgetErr(opts.MaxCycles)
		}
		if len(tree.Nodes) > opts.MaxNodes {
			return nil, nodeBudgetErr(opts.MaxNodes)
		}

		sys.SnapshotInto(roll)
		rollPos := sink.Pos()

		// Resolve loop: re-step the cycle until every control condition is
		// concrete. Jump conditions resolve before interrupt arrival, so a
		// double-forked cycle always forks in the same order — the tree
		// shape (and the sealed report derived from it) is deterministic.
		for {
			applyForces()
			sys.Step()
			sys.ClearForce()
			tree.Cycles++
			if tree.Cycles > opts.MaxCycles {
				return nil, cycleBudgetErr(opts.MaxCycles)
			}

			isIRQ := false
			if sys.JumpCondUnknown() {
				// The cycle just simulated is the EXEC of an
				// input-dependent jump.
			} else if sys.IRQCondUnknown() {
				isIRQ = true
			} else {
				break // fully resolved
			}

			// Rewind the cycle; this segment terminates at a fork.
			sys.Restore(roll)
			pc, _ := sys.PC()
			key := stateKey(sys, pending)
			if prior, ok := seen[key]; ok && !opts.DisableMerge {
				finishSegment(KindMerge)
				cur.BranchPC = pc
				cur.IRQ = isIRQ
				cur.MergeTo = prior
				tree.Paths++
				if !pop() {
					return tree, nil
				}
				continue outer
			}
			finishSegment(KindBranch)
			cur.BranchPC = pc
			cur.IRQ = isIRQ
			seen[key] = cur
			branch := cur

			// The system is at the roll state here (just restored), so
			// the fork snapshot is captured copy-on-write from the live
			// planes — O(words changed since the anchor), not a full
			// plane copy.
			snap := snapPool.take()
			sys.CaptureFork(snap)
			stack = append(stack, pendingFork{
				snap: snap, sinkPos: rollPos, branch: branch,
				forces: pending.with(isIRQ, true),
			})
			// Continue depth-first down the not-taken / not-arrived
			// direction: re-step this same cycle with the extended forces.
			child := newNode()
			branch.NotTaken = child
			cur = child
			segStart = rollPos
			pending = pending.with(isIRQ, false)
		}

		sink.OnCycle(sys)
		pending = forkForces{}

		// A fully unknown PC that is not a forkable jump condition means
		// an input-dependent computed branch target — out of scope for
		// the fork rule, and an analysis error rather than silence.
		if _, known := sys.Sim.PortUint("pc"); !known {
			return nil, fmt.Errorf("symx: PC became X at cycle %d — input-dependent branch target (computed jump/call on input data) is not supported", sys.Sim.Cycle())
		}
	}
}

// IRQForks counts the branch nodes that fork on interrupt arrival — the
// number of distinct arrival decisions the exploration covered.
func (t *Tree) IRQForks() int {
	n := 0
	for _, nd := range t.Nodes {
		if nd.Kind == KindBranch && nd.IRQ {
			n++
		}
	}
	return n
}

// CountKind returns the number of nodes with the given kind.
func (t *Tree) CountKind(k NodeKind) int {
	n := 0
	for _, nd := range t.Nodes {
		if nd.Kind == k {
			n++
		}
	}
	return n
}

// Walk visits every node (parents before children).
func (t *Tree) Walk(f func(*Node)) {
	var rec func(*Node)
	visited := make(map[int]bool)
	rec = func(n *Node) {
		if n == nil || visited[n.ID] {
			return
		}
		visited[n.ID] = true
		f(n)
		rec(n.NotTaken)
		rec(n.Taken)
	}
	rec(t.Root)
}
