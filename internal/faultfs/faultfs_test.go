package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs := OS{}
	p := filepath.Join(dir, "a", "b.txt")
	if err := fs.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(p, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(p)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	f, err := fs.OpenAppend(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(" world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, _ = fs.ReadFile(p)
	if string(got) != "hello world" {
		t.Fatalf("after append: %q", got)
	}
}

func TestHookedInjectsPerOp(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("boom")
	var failOp Op
	fs := Hooked{Hook: func(op Op, path string) error {
		if op == failOp {
			return boom
		}
		return nil
	}}
	p := filepath.Join(dir, "x")

	failOp = OpWrite
	if err := fs.WriteFile(p, []byte("x"), 0o644); !errors.Is(err, boom) {
		t.Fatalf("write fault not injected: %v", err)
	}
	failOp = ""
	if err := fs.WriteFile(p, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	failOp = OpRead
	if _, err := fs.ReadFile(p); !errors.Is(err, boom) {
		t.Fatalf("read fault not injected: %v", err)
	}
	failOp = OpSync
	f, err := fs.OpenAppend(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sync fault not injected: %v", err)
	}
}

func TestWriteAtomicFaults(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "obj")
	boom := errors.New("disk full")

	// A write fault leaves no target file at all.
	fs := Hooked{Hook: func(op Op, path string) error {
		if op == OpWrite {
			return boom
		}
		return nil
	}}
	if err := WriteAtomic(fs, p, []byte("data"), 0o644); !errors.Is(err, boom) {
		t.Fatalf("want injected write error, got %v", err)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatalf("target exists after failed atomic write")
	}

	// A rename fault leaves no target and cleans the temp file.
	fs = Hooked{Hook: func(op Op, path string) error {
		if op == OpRename {
			return boom
		}
		return nil
	}}
	if err := WriteAtomic(fs, p, []byte("data"), 0o644); !errors.Is(err, boom) {
		t.Fatalf("want injected rename error, got %v", err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}

	// No faults: committed atomically.
	if err := WriteAtomic(OS{}, p, []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(p)
	if string(got) != "data" {
		t.Fatalf("content %q", got)
	}
}

func TestRemoveAll(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "s", "t")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "f"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := RemoveAll(OS{}, filepath.Join(dir, "s")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "s")); !os.IsNotExist(err) {
		t.Fatalf("directory survives RemoveAll")
	}
	// Removing a missing path is not an error.
	if err := RemoveAll(OS{}, filepath.Join(dir, "absent")); err != nil {
		t.Fatal(err)
	}
}

func TestCounterSchedules(t *testing.T) {
	var c Counter
	if c.Next(OpWrite) != 1 || c.Next(OpWrite) != 2 || c.Next(OpRead) != 1 {
		t.Fatal("counter sequence wrong")
	}
}
