package peakpower

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/cell"
	"repro/internal/isa"
)

// Cache is a content-addressed, in-memory analysis cache: results are keyed
// by the hash of the analyzed image plus the fully resolved configuration
// (target, library characterization, clock, budgets, COI depth, engine), so
// a hit is guaranteed to be the same analysis — not merely the same
// application name. Attach one with WithCache; a second Analyze of the same
// image and options is then served from the cache without re-exploration.
// Concurrent lookups of the same key single-flight: one analysis runs, the
// rest wait for it and share its result.
//
// Cached results are shared: a hit returns the same *Result pointer that
// the original analysis produced. Results are read-only by contract, so
// sharing is safe; do not mutate a Result obtained from a cached analyzer.
// A Cache is safe for concurrent use and may back any number of Analyzers
// (the key includes the target, so distinct designs never collide).
type Cache struct {
	mu       sync.Mutex
	max      int
	lru      *list.List // most recent at front; values are *cacheEntry
	byKey    map[string]*list.Element
	inflight map[string]*flight
	disk     *DiskStore
	hits     uint64
	diskHits uint64
	misses   uint64
}

type cacheEntry struct {
	key string
	res *Result
}

// flight is one in-progress analysis other callers of the same key wait
// on instead of exploring redundantly (single-flight).
type flight struct {
	done chan struct{}
	err  error
}

// NewCache creates an analysis cache holding at most maxEntries results
// (least-recently-used eviction); maxEntries <= 0 means unbounded.
func NewCache(maxEntries int) *Cache {
	return &Cache{
		max:      maxEntries,
		lru:      list.New(),
		byKey:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// do returns the cached result for key or computes it, deduplicating
// concurrent computations: while one caller (the leader) runs compute,
// other callers of the same key block on the leader instead of exploring
// the same analysis redundantly, then take the freshly cached result as a
// hit. A waiting caller's own ctx still cancels its wait. A leader failure
// is shared with the waiters — except cancellation/deadline errors, which
// are private to the leader's context: there the waiters retry, and at
// most one becomes the next leader.
func (c *Cache) do(ctx context.Context, key string, compute func() (*Result, error)) (*Result, error) {
	for {
		c.mu.Lock()
		if el, ok := c.byKey[key]; ok {
			c.hits++
			c.lru.MoveToFront(el)
			res := el.Value.(*cacheEntry).res
			c.mu.Unlock()
			return res, nil
		}
		if f, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
				if f.err != nil {
					return nil, f.err
				}
				continue // re-check: success landed in the cache, or a canceled leader elects a new one
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		c.misses++
		f := &flight{done: make(chan struct{})}
		c.inflight[key] = f
		c.mu.Unlock()
		// The leader checks the disk tier before computing, still inside the
		// single flight: concurrent callers of the key wait on one disk read
		// (or one analysis), never a stampede of either.
		return c.lead(key, f, func() (*Result, error) {
			if res, ok := c.diskLoad(key); ok {
				return res, nil
			}
			res, err := compute()
			if err == nil && res != nil && c.disk != nil {
				// Write-through, best effort: a full disk must not fail an
				// analysis that succeeded. The failure stays visible on
				// DiskStore.Err / Stats for readiness probes.
				_ = c.disk.Store(key, &res.Report)
			}
			return res, err
		})
	}
}

// AttachDisk adds a disk tier: memory misses are served from the store
// when a verified entry exists, and fresh analyses are written through to
// it. A disk hit carries only the sealed Report — the live handles (Tree,
// Peaks, the image) did not survive the original process — so callers
// needing those re-analyze without a cache. Call before the cache is in
// use; a nil store detaches.
func (c *Cache) AttachDisk(d *DiskStore) {
	c.mu.Lock()
	c.disk = d
	c.mu.Unlock()
}

// diskLoad consults the disk tier, rehydrating a hit into a Report-only
// Result (the lead defer caches it in memory like a computed one).
func (c *Cache) diskLoad(key string) (*Result, bool) {
	c.mu.Lock()
	d := c.disk
	c.mu.Unlock()
	if d == nil {
		return nil, false
	}
	rep, ok := d.Load(key)
	if !ok {
		return nil, false
	}
	c.mu.Lock()
	c.diskHits++
	c.mu.Unlock()
	return &Result{Report: *rep}, true
}

// lead runs compute as the key's single-flight leader and settles the
// flight — including on panic, which would otherwise leave the flight
// registered forever and wedge the key for every future caller (a
// recovered server goroutine must not poison the cache).
func (c *Cache) lead(key string, f *flight, compute func() (*Result, error)) (res *Result, err error) {
	defer func() {
		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil && res != nil {
			c.putLocked(key, res)
		}
		// A deterministic analysis failure (budget, unsupported construct)
		// would fail identically for every waiter — share it instead of
		// letting each waiter serially re-run the doomed exploration. A
		// cancellation or deadline belongs to the leader's context only;
		// after a panic (err == nil, res == nil) waiters simply retry.
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			f.err = err
		}
		c.mu.Unlock()
		close(f.done)
	}()
	return compute()
}

// putLocked stores a successful analysis, evicting the least-recently-used
// entry beyond the capacity bound. Callers hold c.mu.
func (c *Cache) putLocked(key string, res *Result) {
	if el, ok := c.byKey[key]; ok {
		// A concurrent analysis of the same work finished first; keep the
		// existing entry so all callers share one result.
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(&cacheEntry{key: key, res: res})
	if c.max > 0 && c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	// Hits counts lookups served from the in-memory tier.
	Hits uint64 `json:"hits"`
	// DiskHits counts memory misses served from the disk tier.
	DiskHits uint64 `json:"disk_hits,omitempty"`
	// Misses counts lookups that required a fresh analysis (disk hits
	// included — they register as a miss of the memory tier first).
	Misses uint64 `json:"misses"`
	// Entries is the current number of cached results.
	Entries int `json:"entries"`
}

// Stats returns the cache's hit/miss counters and size.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, DiskHits: c.diskHits, Misses: c.misses, Entries: c.lru.Len()}
}

// ImageHash returns a stable content hash of an assembled image: name,
// entry point, initialized words, input regions, and loop bounds — every
// part of the binary the analysis observes. It is the image component of
// the cache key and a convenient identity for logs and service requests.
func ImageHash(img *Image) string {
	h := sha256.New()
	writeImage(h, img)
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// writeImage streams the analysis-relevant image content deterministically.
func writeImage(w io.Writer, img *isa.Image) {
	fmt.Fprintf(w, "name=%s\nentry=%#04x\n", img.Name, img.Entry)
	addrs := make([]int, 0, len(img.Words))
	for a := range img.Words {
		addrs = append(addrs, int(a))
	}
	sort.Ints(addrs)
	for _, a := range addrs {
		fmt.Fprintf(w, "w %#04x %#04x\n", a, img.Words[uint16(a)])
	}
	for _, r := range img.Inputs {
		fmt.Fprintf(w, "in %#04x %d\n", r.Addr, r.Words)
	}
	lbs := make([]int, 0, len(img.LoopBounds))
	for a := range img.LoopBounds {
		lbs = append(lbs, int(a))
	}
	sort.Ints(lbs)
	for _, a := range lbs {
		fmt.Fprintf(w, "lb %#04x %d\n", a, img.LoopBounds[uint16(a)])
	}
}

// cacheKey fingerprints one analysis: the image content plus every resolved
// configuration knob that influences the result. Options that cannot change
// the outcome (progress reporting, worker count, the cache itself) are
// deliberately excluded, so e.g. a progress-instrumented re-run still hits.
func (a *Analyzer) cacheKey(img *Image, cfg config) string {
	h := sha256.New()
	fmt.Fprintf(h, "schema=%d\ntarget=%s\n", SchemaVersion, a.target.Name())
	writeImage(h, img)
	fmt.Fprintf(h, "lib=%s feature=%d\n", cfg.lib.Name, cfg.lib.FeatureNM)
	for _, k := range cell.Kinds() {
		p := cfg.lib.Params(k)
		fmt.Fprintf(h, "cell %s %g %g %g %g %g\n",
			k, p.EnergyRise, p.EnergyFall, p.EnergyClk, p.LeakageNW, p.AreaUM2)
	}
	fmt.Fprintf(h, "clock=%g maxCycles=%d maxNodes=%d coi=%d engine=%s\n",
		cfg.clockHz, cfg.maxCycles, cfg.maxNodes, cfg.coiK, cfg.engine)
	if cfg.irq != nil {
		// Already normalized by WithInterrupts, so equal effective
		// configurations key identically.
		fmt.Fprintf(h, "irq min=%d max=%d conc=%d radio=%d\n",
			cfg.irq.MinLatency, cfg.irq.MaxLatency, cfg.irq.ConcreteLatency, cfg.irq.RadioBusyCycles)
	}
	return hex.EncodeToString(h.Sum(nil))
}
