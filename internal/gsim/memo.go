package gsim

import (
	"math/bits"

	"repro/internal/netlist"
)

// Per-level packed-result memoization — the fine-grained, opt-in memo
// tier (EnableLevelMemo). Loop-heavy programs revisit near-identical
// symbolic states every iteration: a level's fan-in words take values
// the engine has already evaluated, and the gather programs recompute
// an answer the table already holds. The memo table keys each level's
// evaluation on the exact values of the plane words its ReadMask
// covers and replays the level's output region on a hit.
//
// Unlike the whole-step table (stepmemo.go, the EnableMemo default),
// the per-level grain catches partial repeats — states that differ in
// a few words replay every level outside the difference's cone. The
// price is a hash over each dirty level's read words every cycle,
// which competes with an evaluator that already skips clean batches;
// it pays off only when replays dominate (e.g. long-division orbits,
// where >90% of dirty levels replay), which is why it is not on by
// default.
//
// Soundness (DESIGN.md "Memoization and copy-on-write soundness"):
//
//   - A level's output region is a pure function of its ReadMask words:
//     the plan builder marks every word any gather run reads, levels
//     only read strictly lower levels, and a batch skipped inside a
//     dirty level retains outputs equal to evaluating its (unchanged)
//     inputs. Replaying a recorded output region for identical read
//     words is therefore exact, not approximate.
//   - Hash collisions cannot corrupt results: the stored source words
//     are compared in full before a hit is taken. A collision verifies
//     unequal, evaluates normally, and overwrites the entry.
//   - Replay marks dirty words by compare-on-copy — exactly the words
//     whose value changes, which is the same dirty set evalBatch's
//     store would produce. Downstream level skipping and the
//     copy-on-write since-mask therefore see identical dirt whether a
//     level was evaluated or replayed, so memo on/off is invisible to
//     everything but wall-clock time.
//
// Source words are captured before the level runs: a ReadMask word can
// share a 64-bit boundary with the level's own output region, so the
// post-eval value of a "read" word is not the value the level read.
const (
	memoBasis = 0x9E3779B97F4A7C15
	memoPrime = 1099511628211

	// memoProbationLookups / memoProbationHits: each level's hit rate
	// is re-checked every window of lookups, and a window below the
	// threshold disables the level for good — a level that does not
	// replay (straight-line code, a loop whose live state never
	// repeats) must stop paying the hash-and-record tax quickly,
	// because its misses are pure overhead. The window is short enough
	// that a non-repeating program disables every level within its
	// first ~64 dirty cycles, and the threshold low enough that slow
	// loops (long bodies, so the first hits arrive late) survive
	// probation.
	memoProbationLookups = 64
	memoProbationHits    = 8

	// defaultMemoBytes bounds one simulator's table; when full,
	// existing entries still serve hits but no new entries land.
	defaultMemoBytes = 16 << 20
)

// memoEntry holds one recorded evaluation: the exact source words
// (for collision-proof verification) and the raw output-region words
// (masked to the level's lanes on replay).
type memoEntry struct {
	src []uint64
	out []uint64
}

// memoLevel is one level's table and precomputed geometry.
type memoLevel struct {
	read           []int32 // plane word indices covered by the level's ReadMask
	outLo, outHi   int32   // inclusive plane-word range of the output region
	loMask, hiMask uint64  // lane-validity masks for the boundary words
	entries        map[uint64]*memoEntry
	src            []uint64 // capture scratch: 2 words (v,k) per read word
	lookups, hits  uint32
	disabled       bool
}

// memoTable is a per-simulator (single-goroutine) memo store.
type memoTable struct {
	levels   []memoLevel
	bytes    int
	maxBytes int

	// pending carries a miss from lookup to record across the level's
	// evaluation; -1 when nothing is to be recorded.
	pending   int
	pendKey   uint64
	pendEntry *memoEntry

	// Per-step counters drained into the Simulator's atomics.
	stepHits, stepMisses uint64
}

func newMemoTable(plan *netlist.PackedPlan, maxBytes int) *memoTable {
	mt := &memoTable{
		levels:   make([]memoLevel, len(plan.Levels)),
		maxBytes: maxBytes,
		pending:  -1,
	}
	for li := range plan.Levels {
		lv := &plan.Levels[li]
		ml := &mt.levels[li]
		for mw, m := range lv.ReadMask {
			base := int32(mw) << 6
			for m != 0 {
				b := int32(bits.TrailingZeros64(m))
				m &= m - 1
				ml.read = append(ml.read, base+b)
			}
		}
		if len(lv.Batches) == 0 || len(ml.read) == 0 {
			// Nothing to key on (or to write): a read-free level can
			// only go dirty on the forced first settle, which memo
			// skips anyway.
			ml.disabled = true
			continue
		}
		first := lv.Batches[0].FirstPos
		last := &lv.Batches[len(lv.Batches)-1]
		end := last.FirstPos + int32(len(last.Cells)) // exclusive bit position
		ml.outLo = first >> 6
		ml.outHi = (end - 1) >> 6
		ml.loMask = ^uint64(0) << uint(first&63)
		ml.hiMask = ^uint64(0) >> uint(63-(end-1)&63)
		ml.entries = make(map[uint64]*memoEntry)
		ml.src = make([]uint64, 0, 2*len(ml.read))
	}
	return mt
}

// lookup hashes level li's current source words and replays a verified
// hit, returning true (the caller skips evaluation). On a miss it
// captures the source words and leaves them pending for record.
//
// The hit path copies nothing: the hash is computed straight off the
// planes and a candidate entry is verified by comparing its stored
// source words against the live planes, so a level in its replaying
// steady state pays one hash, one compare, and the masked output copy.
// Only a miss — which must record — pays the source capture.
func (mt *memoTable) lookup(p *packedSim, li int) bool {
	mt.pending = -1
	ml := &mt.levels[li]
	if ml.disabled {
		return false
	}
	h := uint64(memoBasis)
	for _, w := range ml.read {
		h = (h ^ p.curV[w]) * memoPrime
		h = (h ^ p.curK[w]) * memoPrime
	}
	ml.lookups++
	e := ml.entries[h]
	if e != nil && mt.verify(p, ml, e) {
		ml.hits++
		mt.stepHits++
		mt.replay(p, ml, e)
		return true
	}
	mt.stepMisses++
	if ml.lookups >= memoProbationLookups {
		if ml.hits < memoProbationHits {
			ml.disabled = true
			ml.entries = nil
			ml.src = nil
			return false
		}
		ml.lookups, ml.hits = 0, 0
	}
	src := ml.src[:0]
	for _, w := range ml.read {
		src = append(src, p.curV[w], p.curK[w])
	}
	ml.src = src
	mt.pending = li
	mt.pendKey = h
	mt.pendEntry = e // stale or colliding entry to overwrite in place
	return false
}

// verify compares an entry's recorded source words against the live
// planes — the collision-proof check a replay requires.
func (mt *memoTable) verify(p *packedSim, ml *memoLevel, e *memoEntry) bool {
	i := 0
	for _, w := range ml.read {
		if e.src[i] != p.curV[w] || e.src[i+1] != p.curK[w] {
			return false
		}
		i += 2
	}
	return true
}

// replay copies a recorded output region into the current planes,
// masked to the level's lanes, marking dirty exactly the words whose
// value changes (compare-on-copy — the same dirt evaluation would
// produce).
func (mt *memoTable) replay(p *packedSim, ml *memoLevel, e *memoEntry) {
	i := 0
	for w := ml.outLo; w <= ml.outHi; w++ {
		m := ^uint64(0)
		if w == ml.outLo {
			m &= ml.loMask
		}
		if w == ml.outHi {
			m &= ml.hiMask
		}
		nv := p.curV[w]&^m | e.out[i]&m
		nk := p.curK[w]&^m | e.out[i+1]&m
		if nv != p.curV[w] || nk != p.curK[w] {
			p.curV[w] = nv
			p.curK[w] = nk
			p.markDirty(w)
		}
		i += 2
	}
}

// record stores the just-evaluated output region for the pending miss.
// A full table overwrites colliding entries but admits no new ones.
func (mt *memoTable) record(p *packedSim) {
	li := mt.pending
	if li < 0 {
		return
	}
	mt.pending = -1
	ml := &mt.levels[li]
	e := mt.pendEntry
	if e == nil {
		nOut := 2 * int(ml.outHi-ml.outLo+1)
		size := (len(ml.src) + nOut) * 8
		if mt.bytes+size > mt.maxBytes {
			return
		}
		e = &memoEntry{
			src: make([]uint64, len(ml.src)),
			out: make([]uint64, nOut),
		}
		mt.bytes += size
		ml.entries[mt.pendKey] = e
	}
	copy(e.src, ml.src)
	i := 0
	for w := ml.outLo; w <= ml.outHi; w++ {
		e.out[i] = p.curV[w]
		e.out[i+1] = p.curK[w]
		i += 2
	}
}
