package logic

// Bit-plane representation of the three-valued domain: a vector of up to
// 64 trits is held as two uint64 planes, v (value) and k (known). Bit i
// is known iff k bit i is 1, in which case v bit i holds the concrete
// value; unknown (X) positions have k bit 0. The representation is kept
// canonical — v&^k == 0, i.e. the value bit of an X position is always
// 0 — so that two trit vectors are symbol-identical exactly when both
// their planes are equal, and a toggle mask is a pair of XORs:
//
//	changed := (v1 ^ v2) | (k1 ^ k2)
//
// The Plane* functions below are the word-parallel counterparts of the
// scalar operators in this package: each evaluates its gate function on
// all 64 lanes at once, preserving canonical form. They are the
// primitive layer of the bit-packed gate engine in internal/gsim; an
// exhaustive property test checks every lane combination against the
// scalar operators.

// PlaneFromTrit returns the single-lane plane encoding of t in bit 0.
func PlaneFromTrit(t Trit) (v, k uint64) {
	switch t {
	case L:
		return 0, 1
	case H:
		return 1, 1
	}
	return 0, 0
}

// TritFromPlane decodes lane bit of a (v, k) plane pair.
func TritFromPlane(v, k uint64, bit uint) Trit {
	if k>>bit&1 == 0 {
		return X
	}
	return Trit(v >> bit & 1)
}

// PlaneNot is the word-parallel Not.
func PlaneNot(av, ak uint64) (v, k uint64) {
	return ^av & ak, ak
}

// PlaneBuf is the word-parallel identity.
func PlaneBuf(av, ak uint64) (v, k uint64) {
	return av, ak
}

// PlaneAnd is the word-parallel And: a controlling known 0 dominates X.
func PlaneAnd(av, ak, bv, bk uint64) (v, k uint64) {
	one := av & bv
	zero := (ak &^ av) | (bk &^ bv)
	return one, one | zero
}

// PlaneOr is the word-parallel Or: a controlling known 1 dominates X.
func PlaneOr(av, ak, bv, bk uint64) (v, k uint64) {
	one := av | bv
	zero := (ak &^ av) & (bk &^ bv)
	return one, one | zero
}

// PlaneXor is the word-parallel Xor: any X input lane yields X.
func PlaneXor(av, ak, bv, bk uint64) (v, k uint64) {
	k = ak & bk
	return (av ^ bv) & k, k
}

// PlaneXnor is the word-parallel Xnor.
func PlaneXnor(av, ak, bv, bk uint64) (v, k uint64) {
	k = ak & bk
	return ^(av ^ bv) & k, k
}

// PlaneNand is the word-parallel Nand.
func PlaneNand(av, ak, bv, bk uint64) (v, k uint64) {
	one := av & bv
	zero := (ak &^ av) | (bk &^ bv)
	return zero, one | zero
}

// PlaneNor is the word-parallel Nor.
func PlaneNor(av, ak, bv, bk uint64) (v, k uint64) {
	one := av | bv
	zero := (ak &^ av) & (bk &^ bv)
	return zero, one | zero
}

// PlaneMux is the word-parallel 2:1 mux (s selects a when 0, b when 1),
// with the standard pessimistic-X semantics of Mux: an X select lane is
// known only where both data lanes agree on a known value.
func PlaneMux(sv, sk, av, ak, bv, bk uint64) (v, k uint64) {
	s0 := sk &^ sv // select known 0
	s1 := sv       // select known 1 (canonical: sv implies sk)
	agree := ak & bk &^ (av ^ bv)
	sx := ^sk
	k = s0&ak | s1&bk | sx&agree
	v = (s0&av | s1&bv | sx&agree&av) & k
	return v, k
}
