package cell

import (
	"testing"

	"repro/internal/logic"
)

// TestEvalPlanesMatchesEvalExhaustive checks EvalPlanes against Eval for
// every cell kind over every combination of three-valued inputs and
// state — the packed engine's per-gate semantics are exactly the scalar
// engine's.
func TestEvalPlanesMatchesEvalExhaustive(t *testing.T) {
	trits := []logic.Trit{logic.L, logic.H, logic.X}
	lanes := []uint{0, 17, 63}
	for _, kind := range Kinds() {
		for _, a := range trits {
			for _, b := range trits {
				for _, c := range trits {
					for _, q := range trits {
						want := Eval(kind, a, b, c, q)
						for _, bit := range lanes {
							av, ak := logic.PlaneFromTrit(a)
							bv, bk := logic.PlaneFromTrit(b)
							cv, ck := logic.PlaneFromTrit(c)
							qv, qk := logic.PlaneFromTrit(q)
							v, k := EvalPlanes(kind,
								av<<bit, ak<<bit, bv<<bit, bk<<bit,
								cv<<bit, ck<<bit, qv<<bit, qk<<bit)
							if v&^k != 0 {
								t.Fatalf("%v(%v,%v,%v,q=%v): non-canonical planes", kind, a, b, c, q)
							}
							if got := logic.TritFromPlane(v, k, bit); got != want {
								t.Fatalf("%v(%v,%v,%v,q=%v) lane %d = %v, want %v",
									kind, a, b, c, q, bit, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// TestEvalPlanesLaneIndependence packs 64 distinct input combinations
// into one word call and checks each lane individually.
func TestEvalPlanesLaneIndependence(t *testing.T) {
	trits := []logic.Trit{logic.L, logic.H, logic.X}
	var as, bs, cs, qs [64]logic.Trit
	var av, ak, bv, bk, cv, ck, qv, qk uint64
	for i := 0; i < 64; i++ {
		as[i] = trits[i%3]
		bs[i] = trits[(i/3)%3]
		cs[i] = trits[(i/9)%3]
		qs[i] = trits[(i/27)%3]
		set := func(t logic.Trit, v, k *uint64) {
			lv, lk := logic.PlaneFromTrit(t)
			*v |= lv << uint(i)
			*k |= lk << uint(i)
		}
		set(as[i], &av, &ak)
		set(bs[i], &bv, &bk)
		set(cs[i], &cv, &ck)
		set(qs[i], &qv, &qk)
	}
	for _, kind := range Kinds() {
		v, k := EvalPlanes(kind, av, ak, bv, bk, cv, ck, qv, qk)
		for i := uint(0); i < 64; i++ {
			want := Eval(kind, as[i], bs[i], cs[i], qs[i])
			if got := logic.TritFromPlane(v, k, i); got != want {
				t.Fatalf("%v lane %d: got %v, want %v", kind, i, got, want)
			}
		}
	}
}
