GO ?= go
BENCH_JSON ?= BENCH_$(shell date +%F).json

# The bench targets pipe `go test` into benchjson; without pipefail a
# failing benchmark run would still exit 0 via the converter.
SHELL := /usr/bin/env bash
.SHELLFLAGS := -o pipefail -c

.PHONY: all build vet test race race-irq race-parallel fuzz-smoke bench bench-smoke profile serve smoke crash-smoke example-smoke ci clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector — exercises the peakpower
# package's concurrency contract (shared Analyzer, AnalyzeAll pool).
race:
	$(GO) test -race ./...

# Interrupt-path tests only, under the race detector: the peripheral
# bus, IRQ entry/return, symbolic arrival forking (sequential and
# parallel), and the public WithInterrupts surface. Fast enough to run
# on every commit.
race-irq:
	$(GO) test -race -run 'Interrupt|IRQ|Periph|Timer|ADC|Radio|Vector|Bus|Parallel' \
		./internal/periph/... ./internal/ulp430/... ./internal/symx/... ./peakpower/...

# The parallel-exploration determinism suite under the race detector:
# the work-stealing engine's tree/budget/error parity with the
# sequential engine, the canonical candidate merge, and the sealed
# Report's bit-identity across worker counts.
race-parallel:
	$(GO) test -race -run 'Parallel|ExploreWorkers|SnapPool|FuzzExplore|EnginesAgree' \
		./internal/symx/... ./internal/gsim/... ./peakpower/...

# Memo-soundness guard: the memo tables (whole-step default, per-level
# opt-in) are pure execution-speed mechanisms, so sealed Reports must be
# byte-identical with memoization on or off — across engines, worker
# counts, SIGKILL-resume, and a 2-worker fleet, all diffed against the
# committed golden hashes. CI fails here if a memo change ever leaks
# into Report bytes.
memo-guard:
	$(GO) test -count=1 -run 'TestMemo|TestCacheKeyIgnoresMemo' ./peakpower/

# Short native-fuzz session over the sequential-vs-parallel differential
# target: generated programs and interrupt windows, trees and power
# reductions required to agree exactly. CI's fuzz smoke.
fuzz-smoke:
	$(GO) test -fuzz=FuzzExplore -fuzztime=10s ./internal/symx/

# The table/figure-regenerating benchmark harness plus the gate-engine
# benchmarks; results are captured as a BENCH_*.json trajectory point
# (see PERFORMANCE.md).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' . | tee /dev/stderr | $(GO) run ./cmd/benchjson -out $(BENCH_JSON)

# One-iteration smoke form of the same run — CI's per-commit artifact.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' . | tee /dev/stderr | $(GO) run ./cmd/benchjson -out $(BENCH_JSON)

# CPU/heap profile of the packed engine under the end-to-end macro
# benchmark; the recipe PERFORMANCE.md documents.
profile:
	$(GO) test -run='^$$' -bench='BenchmarkEngineCoAnalysis/packed' -benchtime=5x \
		-cpuprofile=cpu.prof -memprofile=mem.prof .
	$(GO) tool pprof -top -nodecount=20 cpu.prof

# Run the HTTP analysis service (see cmd/peakpowerd and README).
serve:
	$(GO) run ./cmd/peakpowerd -addr :8090

# End-to-end service smoke: start peakpowerd, POST one analysis, assert
# HTTP 200 and a parseable sealed Report (also CI's smoke step).
SMOKE_ADDR ?= 127.0.0.1:8097
smoke:
	$(GO) build -o /tmp/peakpowerd ./cmd/peakpowerd
	/tmp/peakpowerd -addr $(SMOKE_ADDR) & pid=$$!; \
	trap 'kill $$pid' EXIT; \
	for i in $$(seq 1 50); do \
		curl -sf http://$(SMOKE_ADDR)/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	curl -sf http://$(SMOKE_ADDR)/healthz | grep -q '"status":"ok"' && \
	code=$$(curl -s -o /tmp/peakpowerd-smoke.json -w '%{http_code}' \
		-X POST http://$(SMOKE_ADDR)/v1/analyze \
		-d '{"target":"ulp430","bench":"mult","options":{"coi":4}}') && \
	test "$$code" = 200 && \
	grep -q '"schema":2' /tmp/peakpowerd-smoke.json && \
	grep -q '"hash":"sha256:' /tmp/peakpowerd-smoke.json && \
	echo "peakpowerd smoke: OK ($$(wc -c < /tmp/peakpowerd-smoke.json) bytes)"

# Crash-recovery smoke: SIGKILL a real peakpowerd mid-exploration (its
# job's checkpoint journal visibly growing), restart it on the same data
# directory, and require the resumed job's sealed Report to be
# byte-identical to an uninterrupted analysis — at two exploration
# worker counts. The durable-restart and fault-injection suites ride
# along.
crash-smoke:
	$(GO) test -count=1 -v -run 'TestDaemonCrashResume|TestJobDurableRestartRecovery|TestCheckpointResume' \
		./cmd/peakpowerd/ ./peakpower/

# End-to-end example smoke: the interrupt-driven sensornode walkthrough
# (symbolic bound vs a concrete sweep over every arrival latency) plus
# the CLI's -irq path. Both must exit 0; sensornode additionally
# self-checks that no swept arrival exceeds the symbolic bound.
example-smoke:
	$(GO) run ./examples/sensornode
	$(GO) run ./cmd/peakpower -bench adcSample -irq 8:20

# Multi-node smoke: a coordinator peakpowerd plus two worker replicas
# split one real benchmark exploration over the fleet HTTP protocol
# (zero coordinator local slots, so every task crosses a lease), and the
# sealed Report must hash-match a single-node sequential analysis. The
# in-process fleet determinism and lease-expiry suites ride along.
fleet-smoke:
	$(GO) test -count=1 -v -run 'TestFleet' ./cmd/peakpowerd/
	./scripts/fleet_smoke.sh

ci: build vet race race-irq race-parallel memo-guard fuzz-smoke smoke crash-smoke fleet-smoke example-smoke

clean:
	$(GO) clean ./...
	rm -f cpu.prof mem.prof repro.test
