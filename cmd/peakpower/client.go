package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/peakpower"
)

// serverRequest is the POST /v1/analyze and /v1/jobs body peakpowerd
// accepts (mirrored here; the commands share no package).
type serverRequest struct {
	Target  string        `json:"target,omitempty"`
	Bench   string        `json:"bench,omitempty"`
	Name    string        `json:"name,omitempty"`
	Source  string        `json:"source,omitempty"`
	Options serverOptions `json:"options"`
}

type serverOptions struct {
	MaxCycles      int                        `json:"max_cycles,omitempty"`
	COI            int                        `json:"coi,omitempty"`
	Engine         string                     `json:"engine,omitempty"`
	TimeoutMS      int                        `json:"timeout_ms,omitempty"`
	ExploreWorkers int                        `json:"explore_workers,omitempty"`
	Interrupts     *peakpower.InterruptConfig `json:"interrupts,omitempty"`
}

// retryableError marks a failure worth retrying: transport errors, 429
// (queue full), 503 (draining), and other 5xx. retryAfter carries the
// server's Retry-After hint in seconds (-1 when absent).
type retryableError struct {
	err        error
	retryAfter int
}

func (e *retryableError) Error() string { return e.err.Error() }

// client talks to a peakpowerd with jittered-exponential-backoff retries
// that honor the server's Retry-After. Submissions go through the async
// job API, so a slow analysis survives transient client-server hiccups:
// the job keeps running server-side while the client re-polls.
type client struct {
	base     string
	hc       *http.Client
	attempts int
	poll     time.Duration
}

func newClient(base string, attempts int) *client {
	return &client{
		base:     strings.TrimRight(base, "/"),
		hc:       &http.Client{Timeout: 30 * time.Second},
		attempts: attempts,
		poll:     250 * time.Millisecond,
	}
}

// backoff is the wait before retry number attempt (0-based): the server's
// Retry-After when it gave one, otherwise exponential from 250ms with
// half-range jitter, capped at 5s. The jitter uses the top-level rand
// functions, which are safe for concurrent use — one client may serve
// batch retries from several goroutines at once.
func (c *client) backoff(attempt, retryAfter int) time.Duration {
	if retryAfter >= 0 {
		return time.Duration(retryAfter) * time.Second
	}
	if attempt > 20 {
		attempt = 20 // clamp the shift; the cap below rules anyway
	}
	d := 250 * time.Millisecond << attempt
	if d <= 0 || d > 5*time.Second {
		d = 5 * time.Second
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// roundTrip performs one HTTP exchange, classifying the outcome:
// (body, nil) on 2xx, a *retryableError on transient statuses, a plain
// error (with the server's structured message) otherwise.
func (c *client) roundTrip(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, &retryableError{err: err, retryAfter: -1}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return 0, nil, &retryableError{err: fmt.Errorf("reading response: %w", err), retryAfter: -1}
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp.StatusCode, data, nil
	}
	serr := fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, serverMessage(data))
	if resp.StatusCode == http.StatusTooManyRequests ||
		resp.StatusCode == http.StatusServiceUnavailable ||
		resp.StatusCode >= 500 {
		ra := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
		return resp.StatusCode, nil, &retryableError{err: serr, retryAfter: ra}
	}
	return resp.StatusCode, nil, serr
}

// parseRetryAfter reads a Retry-After header in either RFC 9110 form —
// delay-seconds or an HTTP-date — into whole seconds from now (rounded
// up, clamped at zero for dates already past). -1 means absent or
// unparseable: the caller falls back to its own backoff.
func parseRetryAfter(s string, now time.Time) int {
	if s == "" {
		return -1
	}
	if secs, err := strconv.Atoi(s); err == nil {
		if secs < 0 {
			return -1
		}
		return secs
	}
	t, err := http.ParseTime(s)
	if err != nil {
		return -1
	}
	d := t.Sub(now)
	if d <= 0 {
		return 0
	}
	return int((d + time.Second - 1) / time.Second)
}

func serverMessage(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(body))
}

// do is roundTrip under the retry policy. On exhausting the budget
// against a backpressuring server it exits with exitRetryable (5) —
// distinguishable by scripts from analysis failures — after printing the
// server's Retry-After hint.
func (c *client) do(ctx context.Context, method, path string, body []byte) []byte {
	var last *retryableError
	for attempt := 0; attempt < c.attempts; attempt++ {
		_, data, err := c.roundTrip(ctx, method, path, body)
		if err == nil {
			return data
		}
		re, ok := err.(*retryableError)
		if !ok {
			fatal(exitAnalysis, err)
		}
		last = re
		if attempt == c.attempts-1 {
			break
		}
		wait := c.backoff(attempt, re.retryAfter)
		fmt.Fprintf(os.Stderr, "peakpower: %v (retry %d/%d in %s)\n",
			re.err, attempt+1, c.attempts-1, wait.Round(time.Millisecond))
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			fatal(exitAnalysis, ctx.Err())
		}
	}
	if last.retryAfter >= 0 {
		fmt.Fprintf(os.Stderr, "peakpower: server says Retry-After: %ds\n", last.retryAfter)
	}
	fatal(exitRetryable, fmt.Errorf("server still backpressured after %d attempts: %w", c.attempts, last.err))
	panic("unreachable")
}

// analyze submits the request as an async job and polls it to a terminal
// state, returning the verified Report. The job API (not /v1/analyze)
// means a dropped poll response costs a re-poll, never a re-exploration.
func (c *client) analyze(ctx context.Context, req *serverRequest) *peakpower.Report {
	body, err := json.Marshal(req)
	if err != nil {
		fatal(exitUsage, err)
	}
	var acc struct {
		ID        string `json:"id"`
		StatusURL string `json:"status_url"`
	}
	if err := json.Unmarshal(c.do(ctx, http.MethodPost, "/v1/jobs", body), &acc); err != nil {
		fatal(exitAnalysis, fmt.Errorf("decoding job submission response: %w", err))
	}
	fmt.Fprintf(os.Stderr, "peakpower: job %s accepted\n", acc.ID)

	for {
		var st struct {
			State  string          `json:"state"`
			Report json.RawMessage `json:"report"`
			Error  string          `json:"error"`
		}
		if err := json.Unmarshal(c.do(ctx, http.MethodGet, acc.StatusURL, nil), &st); err != nil {
			fatal(exitAnalysis, fmt.Errorf("decoding job status: %w", err))
		}
		switch st.State {
		case "done":
			// DecodeReport re-verifies the schema and the content hash, so
			// a Report corrupted in transit (or by the server's disk) is
			// rejected here, client-side.
			rep, err := peakpower.DecodeReport(st.Report)
			if err != nil {
				fatal(exitAnalysis, fmt.Errorf("job %s: served report failed verification: %w", acc.ID, err))
			}
			return rep
		case "failed":
			fatal(exitAnalysis, fmt.Errorf("job %s: %s", acc.ID, st.Error))
		}
		select {
		case <-time.After(c.poll):
		case <-ctx.Done():
			fatal(exitAnalysis, fmt.Errorf("job %s: %w (job keeps running server-side)", acc.ID, ctx.Err()))
		}
	}
}

// serverMain is main's -server branch: build the wire request from the
// same flags the in-process path uses and render the served Report with
// the usual -json / text output.
func serverMain(ctx context.Context, server string, retries int, req *serverRequest, coi int, trace, jsonOut bool) {
	if retries < 1 {
		retries = 1
	}
	rep := newClient(server, retries).analyze(ctx, req)
	if jsonOut {
		printJSON(rep)
		return
	}
	fmt.Fprintf(os.Stderr, "peakpower: report verified (%s)\n", rep.Hash)
	report(&peakpower.Result{Report: *rep}, coi, trace, jsonOut)
}
