package soc

import (
	"testing"

	"repro/internal/periph"
)

// TestRegionBoundaries walks every region edge of the declarative
// Layout: the byte just below, the first byte, the last byte, and the
// byte just past each mapped area must classify exactly.
func TestRegionBoundaries(t *testing.T) {
	type class struct {
		ram, rom, core, dev bool
		name                string
	}
	classify := func(a uint16) class {
		return class{InRAM(a), InROM(a), IsPeripheral(a), InDeviceSpace(a), RegionName(a)}
	}
	for _, tc := range []struct {
		addr uint16
		want class
	}{
		{0x0000, class{name: "unmapped"}},
		{WDTCTL - 2, class{name: "unmapped"}},
		{WDTCTL, class{core: true, name: "sysregs"}},
		{P1IN, class{core: true, name: "sysregs"}},
		{HALTREG, class{core: true, name: "sysregs"}},
		{HALTREG + 2, class{name: "unmapped"}},
		{MPY, class{core: true, name: "mpy"}},
		{MPYS, class{core: true, name: "mpy"}},
		{OP2, class{core: true, name: "mpyres"}},
		{RESLO, class{core: true, name: "mpyres"}},
		{RESHI, class{core: true, name: "mpyres"}},
		{RESHI + 2, class{name: "unmapped"}},
		{periph.TACTL, class{dev: true, name: "timer"}},
		{periph.TACCR, class{dev: true, name: "timer"}},
		{periph.TACCR + 2, class{name: "unmapped"}},
		{periph.ADCTL, class{dev: true, name: "adc"}},
		{periph.ADDATA, class{dev: true, name: "adc"}},
		{periph.RFCTL, class{dev: true, name: "radio"}},
		{periph.RFTX, class{dev: true, name: "radio"}},
		{periph.RFTX + 2, class{name: "unmapped"}},
		{RAMStart - 1, class{name: "unmapped"}},
		{RAMStart, class{ram: true, name: "sram"}},
		{RAMEnd - 1, class{ram: true, name: "sram"}},
		{RAMEnd, class{name: "unmapped"}},
		{ROMStart - 1, class{name: "unmapped"}},
		{ROMStart, class{rom: true, name: "rom"}},
		{IRQVecFetch, class{rom: true, name: "rom"}},
		{periph.VecTimer, class{rom: true, name: "rom"}},
		{periph.VecADC, class{rom: true, name: "rom"}},
		{0xFFFF, class{rom: true, name: "rom"}},
	} {
		if got := classify(tc.addr); got != tc.want {
			t.Errorf("%#04x: got %+v, want %+v", tc.addr, got, tc.want)
		}
	}
}

// TestRegionsAreExclusive asserts the predicates partition the address
// space: no address is ever in two regions at once.
func TestRegionsAreExclusive(t *testing.T) {
	for a := uint32(0); a <= 0xFFFF; a += 2 {
		addr := uint16(a)
		n := 0
		for _, in := range []bool{InRAM(addr), InROM(addr), IsPeripheral(addr), InDeviceSpace(addr)} {
			if in {
				n++
			}
		}
		if n > 1 {
			t.Fatalf("%#04x classified into %d regions", addr, n)
		}
		if n == 0 && RegionName(addr) != "unmapped" {
			t.Fatalf("%#04x: no predicate claims it but RegionName says %q", addr, RegionName(addr))
		}
		if n == 1 && RegionName(addr) == "unmapped" {
			t.Fatalf("%#04x: claimed by a predicate but unnamed", addr)
		}
	}
}

// TestLayoutCoversVectors pins the interrupt plumbing's address
// assumptions: the vector indirection port and both vector-table entries
// live in ROM, above all application code the benchmarks place.
func TestLayoutCoversVectors(t *testing.T) {
	if !InROM(IRQVecFetch) {
		t.Fatal("IRQVecFetch must be a ROM address")
	}
	if IRQVecFetch >= periph.VecTimer {
		t.Fatal("vector indirection port must sit below the vector table")
	}
	if periph.VecTimer+2 != periph.VecADC {
		t.Fatal("vector table entries must be adjacent words")
	}
}
