package peakpower

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bench"
	"repro/internal/cell"
	"repro/internal/gsim"
	"repro/internal/isa"
	"repro/internal/netlist"
	"repro/internal/opt"
	"repro/internal/sizing"
	"repro/internal/ulp430"
)

// Target is one analyzable gate-level design point: it knows how to build
// its netlist, which library and clock it operates at, which benchmarks it
// ships, its default exploration budgets, and how to couple the netlist to
// behavioral memory. The co-analysis engine itself (Algorithm 1 + 2) is
// target-independent; plugging in a Target is all it takes to analyze a
// different design or design variant, and one program can sweep several
// registered targets as design points (the Chapter 5 workflow).
//
// The method signatures use this module's internal representations, so
// Targets are implemented inside this module (internal/ulp430 provides the
// standard core and the DesignVariant helper that internal/sizing and
// internal/opt derive their variants from).
type Target interface {
	// Name is the registry key (e.g. "ulp430"); see NewFor.
	Name() string
	// Description summarizes the design point for listings.
	Description() string
	// Build constructs the target's gate-level netlist. It is called once
	// per Analyzer; the result is shared read-only by every analysis.
	Build() (*netlist.Netlist, error)
	// Library is the target's default standard-cell library / operating
	// point (overridable per analysis with WithLibrary).
	Library() *cell.Library
	// ClockHz is the target's default clock (overridable with WithClockHz).
	ClockHz() float64
	// Budgets are the target's default exploration limits (overridable
	// with WithMaxCycles / WithMaxNodes).
	Budgets() (maxCycles, maxNodes int)
	// Benchmarks is the target's built-in benchmark suite.
	Benchmarks() []*bench.Benchmark
	// NewSystem couples the built netlist to behavioral memory under the
	// chosen engine, library, and input mode.
	NewSystem(engine gsim.Engine, nl *netlist.Netlist, lib *cell.Library, img *isa.Image, mode ulp430.InputMode, inputs []uint16) (*ulp430.System, error)
}

// DefaultTarget is the target New analyzes: the standard ULP430 core.
const DefaultTarget = "ulp430"

var (
	targetMu    sync.RWMutex
	targetReg   = make(map[string]Target)
	targetOrder []string
)

func init() {
	MustRegisterTarget(ulp430.Standard())
	MustRegisterTarget(sizing.SizedTarget())
	MustRegisterTarget(opt.GatedTarget())
}

// RegisterTarget adds a design point to the registry under t.Name().
// Registering an empty name or a name already taken is an error.
func RegisterTarget(t Target) error {
	if t == nil || t.Name() == "" {
		return fmt.Errorf("peakpower: RegisterTarget: target must have a name")
	}
	targetMu.Lock()
	defer targetMu.Unlock()
	if _, dup := targetReg[t.Name()]; dup {
		return fmt.Errorf("peakpower: RegisterTarget: target %q already registered", t.Name())
	}
	targetReg[t.Name()] = t
	targetOrder = append(targetOrder, t.Name())
	return nil
}

// MustRegisterTarget is RegisterTarget, panicking on error; intended for
// registration from init functions.
func MustRegisterTarget(t Target) {
	if err := RegisterTarget(t); err != nil {
		panic(err)
	}
}

// TargetByName resolves a registered target.
func TargetByName(name string) (Target, bool) {
	targetMu.RLock()
	defer targetMu.RUnlock()
	t, ok := targetReg[name]
	return t, ok
}

// TargetInfo describes one registered target for listings (CLI -list-targets,
// the service's GET /v1/targets).
type TargetInfo struct {
	// Name is the registry key, accepted by NewFor.
	Name string `json:"name"`
	// Description summarizes the design point.
	Description string `json:"description"`
	// Library names the target's default standard-cell library.
	Library string `json:"library"`
	// ClockHz is the target's default clock frequency.
	ClockHz float64 `json:"clock_hz"`
	// Benchmarks lists the target's built-in benchmark names.
	Benchmarks []string `json:"benchmarks"`
}

// Targets lists the registered design points sorted by name, so listings
// (CLI -list-targets, the service's GET /v1/targets) are deterministic
// regardless of registration order.
func Targets() []TargetInfo {
	targetMu.RLock()
	defer targetMu.RUnlock()
	names := append([]string(nil), targetOrder...)
	sort.Strings(names)
	out := make([]TargetInfo, 0, len(names))
	for _, name := range names {
		t := targetReg[name]
		info := TargetInfo{
			Name:        t.Name(),
			Description: t.Description(),
			Library:     t.Library().Name,
			ClockHz:     t.ClockHz(),
		}
		for _, b := range t.Benchmarks() {
			info.Benchmarks = append(info.Benchmarks, b.Name)
		}
		out = append(out, info)
	}
	return out
}

// TargetBenchmarks lists a registered target's built-in benchmark suite,
// sorted by name so the listing (and the GET /v1/benchmarks response
// built from it) is byte-stable across processes. Unknown targets wrap
// ErrUnknownTarget.
func TargetBenchmarks(target string) ([]BenchInfo, error) {
	t, ok := TargetByName(target)
	if !ok {
		return nil, fmt.Errorf("%w: %q (see Targets)", ErrUnknownTarget, target)
	}
	infos := benchInfos(t.Benchmarks())
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos, nil
}

// NewFor builds an Analyzer for a registered target. The target's library,
// clock, and exploration budgets seed the analyzer defaults; options
// override them, and every Analyze* method accepts the same options as
// per-call overrides. Unknown names wrap ErrUnknownTarget. ctx is checked
// before the netlist construction begins (the build itself is not
// interruptible).
func NewFor(ctx context.Context, target string, opts ...Option) (*Analyzer, error) {
	t, ok := TargetByName(target)
	if !ok {
		return nil, fmt.Errorf("%w: %q (see Targets)", ErrUnknownTarget, target)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("peakpower: building target %s: %w", target, err)
	}
	cfg := defaultConfig()
	cfg.lib = t.Library()
	cfg.clockHz = t.ClockHz()
	cfg.maxCycles, cfg.maxNodes = t.Budgets()
	for _, o := range opts {
		o(&cfg)
	}
	nl, err := t.Build()
	if err != nil {
		return nil, fmt.Errorf("peakpower: building %s netlist: %w", target, err)
	}
	return &Analyzer{nl: nl, target: t, def: cfg}, nil
}
