package main

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/url"
	"time"

	"repro/internal/jobstore"
)

// webhookSignatureHeader carries the HMAC-SHA256 of the delivery body,
// keyed by -webhook-secret, as "sha256=<hex>". Receivers verify it with
// a constant-time compare before trusting the payload.
const webhookSignatureHeader = "X-Peakpower-Signature"

// validateCallbackURL accepts the callback_url a job submission may
// carry: an absolute http or https URL.
func validateCallbackURL(raw string) error {
	u, err := url.Parse(raw)
	if err != nil {
		return fmt.Errorf("callback_url: %w", err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return fmt.Errorf("callback_url must be an absolute http(s) URL, got %q", raw)
	}
	return nil
}

// signWebhook computes the signature header value for a delivery body.
func signWebhook(secret string, body []byte) string {
	mac := hmac.New(sha256.New, []byte(secret))
	mac.Write(body)
	return "sha256=" + hex.EncodeToString(mac.Sum(nil))
}

// notifyWebhook is the job runner's terminal-state hook: if the job was
// submitted with a callback_url, deliver its final status (the same
// body GET /v1/jobs/{id} would answer) asynchronously with retries.
func (s *server) notifyWebhook(j *jobstore.Job) {
	var req analyzeRequest
	if err := json.Unmarshal(j.Request, &req); err != nil || req.CallbackURL == "" {
		return
	}
	resp := jobStatusResponse{
		ID:          j.ID,
		State:       string(j.State),
		Attempts:    j.Attempts,
		SubmittedAt: j.SubmittedAt,
		Report:      j.Result,
		Error:       j.Error,
	}
	if !j.FinishedAt.IsZero() {
		t := j.FinishedAt
		resp.FinishedAt = &t
	}
	body, err := json.Marshal(resp)
	if err != nil {
		log.Printf("peakpowerd: webhook for job %s: encoding status: %v", j.ID, err)
		return
	}
	go s.deliverWebhook(j.ID, req.CallbackURL, body)
}

// webhookBackoff is the wait before retry number attempt (1-based):
// exponential from 250ms with full-range jitter, capped at 30s. The
// doubling is a loop rather than a shift so a large attempt count can
// never overflow into a zero or negative duration — rand.Int63n panics
// on a non-positive argument — and the jitter base is always >= 250ms.
func webhookBackoff(attempt int) time.Duration {
	const (
		base = 250 * time.Millisecond
		max  = 30 * time.Second
	)
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d + time.Duration(rand.Int63n(int64(d)))
}

// deliverWebhook posts one signed delivery with jittered-backoff
// retries. Any 2xx acknowledges; the attempt budget is small — a
// webhook is a notification, the job record remains pollable either way.
func (s *server) deliverWebhook(jobID, callbackURL string, body []byte) {
	const attempts = 4
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(webhookBackoff(attempt))
		}
		req, err := http.NewRequest(http.MethodPost, callbackURL, bytes.NewReader(body))
		if err != nil {
			log.Printf("peakpowerd: webhook for job %s: %v", jobID, err)
			mWebhooksFail.Add(1)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Peakpower-Job", jobID)
		if s.webhookSecret != "" {
			req.Header.Set(webhookSignatureHeader, signWebhook(s.webhookSecret, body))
		}
		resp, err := s.webhookClient.Do(req)
		if err != nil {
			log.Printf("peakpowerd: webhook for job %s (attempt %d/%d): %v", jobID, attempt+1, attempts, err)
			continue
		}
		resp.Body.Close()
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			mWebhooksOK.Add(1)
			return
		}
		log.Printf("peakpowerd: webhook for job %s (attempt %d/%d): HTTP %d", jobID, attempt+1, attempts, resp.StatusCode)
	}
	mWebhooksFail.Add(1)
	log.Printf("peakpowerd: webhook for job %s undeliverable after %d attempts", jobID, attempts)
}
